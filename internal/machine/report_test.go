package machine

import (
	"strings"
	"testing"

	memp "repro/internal/mem"
)

func TestSnapshotCapturesCounters(t *testing.T) {
	m := New(DefaultConfig())
	m.Retire(100)
	m.Data(0x1000, 8)
	m.Fetch(0x400000, 16)
	m.CondBranch(0x400010, true)
	c := m.Snapshot()
	if c.Instructions != 100 || c.Cycles == 0 {
		t.Fatalf("snapshot: %+v", c)
	}
	if c.L1DMisses != 1 || c.L1IMisses != 1 {
		t.Fatalf("miss counts: %+v", c)
	}
	if c.BranchLookups != 1 {
		t.Fatalf("branch lookups: %d", c.BranchLookups)
	}
}

func TestCountersSub(t *testing.T) {
	m := New(DefaultConfig())
	m.Retire(50)
	before := m.Snapshot()
	m.Retire(25)
	m.Data(0x2000, 8)
	d := m.Snapshot().Sub(before)
	if d.Instructions != 25 {
		t.Fatalf("delta instructions = %d", d.Instructions)
	}
	if d.L1DMisses != 1 {
		t.Fatalf("delta L1D misses = %d", d.L1DMisses)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Cycles: 10, Instructions: 5, L1DMisses: 2, TLBHits: 1, BTBMispredicts: 3}
	b := Counters{Cycles: 7, Instructions: 4, L1DMisses: 1, L2Hits: 6, BTBMispredicts: 2}
	sum := a.Add(b)
	if sum.Cycles != 17 || sum.Instructions != 9 || sum.L1DMisses != 3 ||
		sum.TLBHits != 1 || sum.L2Hits != 6 || sum.BTBMispredicts != 5 {
		t.Fatalf("sum = %+v", sum)
	}
	if sum.Sub(b) != a {
		t.Fatal("Add and Sub disagree")
	}
}

func TestCountersIPC(t *testing.T) {
	c := Counters{Cycles: 200, Instructions: 100}
	if c.IPC() != 0.5 {
		t.Fatalf("IPC = %v", c.IPC())
	}
	if (Counters{}).IPC() != 0 {
		t.Fatal("zero-cycle IPC should be 0")
	}
}

func TestCountersString(t *testing.T) {
	m := New(DefaultConfig())
	m.Retire(10)
	m.Data(0x1000, 8)
	s := m.Snapshot().String()
	for _, want := range []string{"cycles", "instructions", "IPC", "L1D misses", "TLB misses", "mispredicted"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestPhysicalTranslationDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) uint64 {
		m := New(DefaultConfig())
		m.SetPhysicalSeed(seed)
		// Touch many pages; L2/L3 behaviour depends on frame assignment.
		for i := 0; i < 4096; i++ {
			m.Data(pageAddr(i), 8)
		}
		return m.Cycles
	}
	if run(5) != run(5) {
		t.Fatal("same physical seed, different cycles")
	}
}

func TestPhysicalTranslationPreservesPageColor(t *testing.T) {
	m := New(DefaultConfig())
	m.SetPhysicalSeed(9)
	for page := uint64(0); page < 64; page++ {
		virt := page * 4096
		phys := uint64(m.translate(memp.Addr(virt)))
		if phys%4096 != 0 {
			t.Fatalf("frame not page aligned: %#x", phys)
		}
		if (phys/4096)&7 != page&7 {
			t.Fatalf("page color not preserved: page %d -> frame %d", page, phys/4096)
		}
	}
}

func TestPhysicalTranslationStablePerPage(t *testing.T) {
	m := New(DefaultConfig())
	m.SetPhysicalSeed(11)
	a := m.translate(0x10000000)
	b := m.translate(0x10000040) // same page
	if uint64(a)/4096 != uint64(b)/4096 {
		t.Fatal("same virtual page translated to different frames")
	}
	if m.translate(0x10000000) != a {
		t.Fatal("translation not memoized")
	}
}

func pageAddr(i int) memp.Addr { return memp.Addr(0x10000000 + i*4096) }
