package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/interp"
)

// TestRebuildQuarantinesBadBlocks seeds a store with good and damaged
// blocks, deletes the index, and reopens: the rebuild must quarantine every
// damaged block (moved aside, never deleted — a corrupt block is evidence)
// and index the good ones, not abort.
func TestRebuildQuarantinesBadBlocks(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	good := []string{"astar|good-1", "bzip2|good-2"}
	for i, k := range good {
		if err := s.Put(k, 2, uint64(i), fakeResults(2)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	// Three damage modes: a truncated block (torn write), a corrupted
	// payload (bitrot caught by the integrity hash), and a foreign-schema
	// JSON file that is not a block at all.
	if err := s.Put("mcf|truncated", 2, 9, fakeResults(2)); err != nil {
		t.Fatalf("put truncated: %v", err)
	}
	truncPath := s.blockPath("mcf|truncated")
	buf, err := os.ReadFile(truncPath)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(truncPath, buf[:len(buf)/3], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if err := s.Put("milc|bitrot", 2, 9, fakeResults(2)); err != nil {
		t.Fatalf("put bitrot: %v", err)
	}
	rotPath := s.blockPath("milc|bitrot")
	rot, err := os.ReadFile(rotPath)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	evil := strings.Replace(string(rot), `"Seconds": 1.5`, `"Seconds": 6.66`, 1)
	if evil == string(rot) {
		t.Fatalf("no payload byte found to corrupt")
	}
	if err := os.WriteFile(rotPath, []byte(evil), 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	foreignPath := filepath.Join(dir, "blocks", "zz", "not-a-block.json")
	if err := os.MkdirAll(filepath.Dir(foreignPath), 0o755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := os.WriteFile(foreignPath, []byte(`{"schema":999}`), 0o644); err != nil {
		t.Fatalf("write foreign: %v", err)
	}

	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatalf("remove index: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("rebuild open: %v", err)
	}
	if s2.Len() != len(good) {
		t.Fatalf("rebuilt index holds %d blocks, want %d", s2.Len(), len(good))
	}
	for i, k := range good {
		if s2.Get(k, 2, uint64(i)) == nil {
			t.Fatalf("good block %s lost in rebuild", k)
		}
	}
	for _, p := range []string{truncPath, rotPath, foreignPath} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("damaged block %s still in the block tree", p)
		}
		q := filepath.Join(dir, "quarantine", filepath.Base(p))
		if _, err := os.Stat(q); err != nil {
			t.Fatalf("damaged block not quarantined at %s: %v", q, err)
		}
	}
}

// gcStoreFixture builds a store holding one fresh block and three stale
// ones (old generation, unknown engine, pre-schema key).
func gcStoreFixture(t *testing.T) (*Store, string, []string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fresh := KeyFor("astar", experiment.Config{Scale: 0.1}, 2, 5)
	stale := []string{
		fmt.Sprintf("astar|old|engine=compiled|gen=%d", experiment.SemanticsGeneration-1),
		fmt.Sprintf("astar|odd|engine=quantum|gen=%d", experiment.SemanticsGeneration),
		"astar|preschema",
	}
	for i, k := range append([]string{fresh}, stale...) {
		if err := s.Put(k, 2, uint64(i), fakeResults(2)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	return s, fresh, stale
}

// TestGCEvictsStaleBlocks checks eviction targets exactly the blocks the
// current build can never serve again, and that dry-run touches nothing.
func TestGCEvictsStaleBlocks(t *testing.T) {
	s, fresh, stale := gcStoreFixture(t)

	dry, err := s.GC(GCOptions{DryRun: true})
	if err != nil {
		t.Fatalf("dry-run gc: %v", err)
	}
	if dry.Scanned != 4 || dry.Kept != 1 || dry.Evicted != 3 || !dry.DryRun {
		t.Fatalf("dry-run report %+v, want scanned=4 kept=1 evicted=3", dry)
	}
	if s.Len() != 4 {
		t.Fatalf("dry run changed the store: %d blocks", s.Len())
	}
	for i, k := range stale {
		if s.Get(k, 2, uint64(i+1)) == nil {
			t.Fatalf("dry run evicted %s", k)
		}
	}

	rep, err := s.GC(GCOptions{})
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if rep.Evicted != 3 || rep.Kept != 1 || rep.BytesReclaimed <= 0 {
		t.Fatalf("gc report %+v, want evicted=3 kept=1 and bytes reclaimed", rep)
	}
	if len(rep.EvictedSample) != 3 {
		t.Fatalf("evicted sample %v, want all 3 keys", rep.EvictedSample)
	}
	if s.Get(fresh, 2, 0) == nil {
		t.Fatalf("gc evicted the fresh block")
	}
	for i, k := range stale {
		if s.Get(k, 2, uint64(i+1)) != nil {
			t.Fatalf("stale block %s survived gc", k)
		}
	}
	// The rewritten index must match a from-scratch rebuild (no dangling
	// entries for evicted blocks).
	if s.Len() != 1 {
		t.Fatalf("store holds %d blocks after gc, want 1", s.Len())
	}
	again, err := s.GC(GCOptions{})
	if err != nil {
		t.Fatalf("second gc: %v", err)
	}
	if again.Evicted != 0 || again.Kept != 1 {
		t.Fatalf("second gc report %+v, want nothing left to evict", again)
	}
}

// TestGCQuarantinesCorruptBlocks: a corrupt block found during GC is moved
// aside, not deleted, and counted.
func TestGCQuarantinesCorruptBlocks(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	key := KeyFor("astar", experiment.Config{Scale: 0.1}, 2, 5)
	if err := s.Put(key, 2, 5, fakeResults(2)); err != nil {
		t.Fatalf("put: %v", err)
	}
	path := s.blockPath(key)
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	rep, err := s.GC(GCOptions{})
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if rep.Quarantined != 1 || rep.Evicted != 0 {
		t.Fatalf("report %+v, want quarantined=1 evicted=0", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", filepath.Base(path))); err != nil {
		t.Fatalf("corrupt block not quarantined: %v", err)
	}
}

// TestStaleKey pins the staleness predicate's edges.
func TestStaleKey(t *testing.T) {
	freshKey := Extend("astar|x", interp.EngineCompiled)
	cases := []struct {
		key   string
		stale bool
	}{
		{freshKey, false},
		{Extend("astar|x", interp.EngineWalk), false},
		{"astar|x", true},
		{fmt.Sprintf("astar|x|engine=compiled|gen=%d", experiment.SemanticsGeneration+1), true},
		{"astar|x|engine=compiled|gen=zebra", true},
		{fmt.Sprintf("astar|x|engine=quantum|gen=%d", experiment.SemanticsGeneration), true},
		{fmt.Sprintf("astar|x|gen=%d", experiment.SemanticsGeneration), true},
	}
	for _, tc := range cases {
		if stale, reason := staleKey(tc.key); stale != tc.stale {
			t.Errorf("staleKey(%q) = %v (%s), want %v", tc.key, stale, reason, tc.stale)
		}
	}
}

// TestStateArea covers the durable state area: atomic save/load/list/delete
// plus the name guard that keeps documents inside the area.
func TestStateArea(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	area, err := s.StateArea("campaigns")
	if err != nil {
		t.Fatalf("state area: %v", err)
	}
	if buf, err := area.Load("c0001"); err != nil || buf != nil {
		t.Fatalf("load of missing doc = (%q, %v), want (nil, nil)", buf, err)
	}
	if err := area.Save("c0001", []byte(`{"v":1}`)); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := area.Save("c0001", []byte(`{"v":2}`)); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if err := area.Save("c0002", []byte(`{"v":3}`)); err != nil {
		t.Fatalf("save second: %v", err)
	}
	buf, err := area.Load("c0001")
	if err != nil || string(buf) != `{"v":2}` {
		t.Fatalf("load = (%q, %v), want the overwritten doc", buf, err)
	}
	names, err := area.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(names) != 2 || names[0] != "c0001" || names[1] != "c0002" {
		t.Fatalf("list = %v, want [c0001 c0002]", names)
	}
	if err := area.Delete("c0001"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := area.Delete("c0001"); err != nil {
		t.Fatalf("re-delete should be a no-op: %v", err)
	}
	names, _ = area.List()
	if len(names) != 1 || names[0] != "c0002" {
		t.Fatalf("list after delete = %v", names)
	}
	for _, bad := range []string{"", "../escape", "a/b", ".hidden", "sp ace"} {
		if _, err := s.StateArea(bad); err == nil {
			t.Errorf("StateArea(%q) accepted", bad)
		}
		if err := area.Save(bad, []byte("x")); err == nil {
			t.Errorf("Save(%q) accepted", bad)
		}
	}
	// The area must survive a store reopen (same directory layout).
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	area2, err := s2.StateArea("campaigns")
	if err != nil {
		t.Fatalf("reopen area: %v", err)
	}
	if buf, err := area2.Load("c0002"); err != nil || string(buf) != `{"v":3}` {
		t.Fatalf("doc lost across reopen: (%q, %v)", buf, err)
	}
}

// TestStateAreaAppendLog covers the append-only event journal: ordered
// appends, torn-tail tolerance, .jsonl logs staying out of List, and the
// name guard.
func TestStateAreaAppendLog(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	area, err := s.StateArea("campaigns")
	if err != nil {
		t.Fatalf("state area: %v", err)
	}
	if buf, err := area.LoadLog("c0001.events"); err != nil || buf != nil {
		t.Fatalf("load of missing log = (%q, %v), want (nil, nil)", buf, err)
	}
	if err := area.AppendLog("c0001.events", []byte(`{"n":1}`)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := area.AppendLog("c0001.events", []byte(`{"n":2}`+"\n")); err != nil {
		t.Fatalf("append with newline: %v", err)
	}
	buf, err := area.LoadLog("c0001.events")
	if err != nil || string(buf) != "{\"n\":1}\n{\"n\":2}\n" {
		t.Fatalf("load log = (%q, %v)", buf, err)
	}
	// Logs never surface as documents.
	if err := area.Save("c0001", []byte(`{"v":1}`)); err != nil {
		t.Fatalf("save: %v", err)
	}
	names, err := area.List()
	if err != nil || len(names) != 1 || names[0] != "c0001" {
		t.Fatalf("list = (%v, %v), want just the document", names, err)
	}
	// A torn final line (crash mid-append) is dropped on read.
	if err := os.WriteFile(filepath.Join(dir, "campaigns", "c0001.events.jsonl"),
		[]byte("{\"n\":1}\n{\"n\":2}\n{\"torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	buf, err = area.LoadLog("c0001.events")
	if err != nil || string(buf) != "{\"n\":1}\n{\"n\":2}\n" {
		t.Fatalf("torn tail not dropped: (%q, %v)", buf, err)
	}
	// A log that is nothing but a torn line reads as empty.
	if err := os.WriteFile(filepath.Join(dir, "campaigns", "torn.jsonl"), []byte("{\"t"), 0o644); err != nil {
		t.Fatal(err)
	}
	if buf, err := area.LoadLog("torn"); err != nil || buf != nil {
		t.Fatalf("all-torn log = (%q, %v), want (nil, nil)", buf, err)
	}
	for _, bad := range []string{"", "../escape", "a/b", ".hidden"} {
		if err := area.AppendLog(bad, []byte("x")); err == nil {
			t.Errorf("AppendLog(%q) accepted", bad)
		}
		if _, err := area.LoadLog(bad); err == nil {
			t.Errorf("LoadLog(%q) accepted", bad)
		}
	}
}
