package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-12, "Phi(0)")
	approx(t, NormalCDF(1.959963985), 0.975, 1e-6, "Phi(1.96)")
	approx(t, NormalCDF(-1.644853627), 0.05, 1e-6, "Phi(-1.645)")
	approx(t, NormalCDF(3), 0.9986501, 1e-6, "Phi(3)")
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(u uint16) bool {
		p := (float64(u) + 0.5) / 65536
		z := NormalQuantile(p)
		return math.Abs(NormalCDF(z)-p) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	approx(t, NormalQuantile(0.975), 1.959963985, 1e-8, "z(0.975)")
	approx(t, NormalQuantile(0.5), 0, 1e-12, "z(0.5)")
	approx(t, NormalQuantile(0.05), -1.644853627, 1e-8, "z(0.05)")
	approx(t, NormalQuantile(0.999), 3.090232306, 1e-8, "z(0.999)")
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Critical values from standard t tables.
	approx(t, StudentTCDF(2.045, 29), 0.975, 5e-4, "T29(2.045)")
	approx(t, StudentTCDF(1.697, 30), 0.95, 5e-4, "T30(1.697)")
	approx(t, StudentTCDF(0, 10), 0.5, 1e-12, "T10(0)")
	approx(t, StudentTCDF(-2.045, 29), 0.025, 5e-4, "T29(-2.045)")
}

func TestFCDFKnownValues(t *testing.T) {
	// F table: F(0.95; 1, 17) = 4.451, F(0.95; 2, 10) = 4.103.
	approx(t, FCDF(4.451, 1, 17), 0.95, 1e-3, "F(4.451;1,17)")
	approx(t, FCDF(4.103, 2, 10), 0.95, 1e-3, "F(4.103;2,10)")
	approx(t, FCDF(6.411, 1, 17), 0.9786, 2e-3, "F(6.411;1,17)") // the paper's -O2 F-value
	approx(t, FCDF(1.335, 1, 17), 0.736, 5e-3, "F(1.335;1,17)")  // the paper's -O3 F-value
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	approx(t, ChiSquareCDF(3.841, 1), 0.95, 1e-3, "chi2(3.841;1)")
	approx(t, ChiSquareCDF(18.307, 10), 0.95, 1e-3, "chi2(18.307;10)")
}

func TestDescriptives(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, Variance(xs), 32.0/7, 1e-12, "variance")
	approx(t, Median(xs), 4.5, 1e-12, "median")
	approx(t, Quantile(xs, 0), 2, 1e-12, "q0")
	approx(t, Quantile(xs, 1), 9, 1e-12, "q1")
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should give NaN")
	}
}

func TestWelchTDetectsDifference(t *testing.T) {
	r := rng.NewMarsaglia(1)
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
		ys[i] = 11 + r.NormFloat64() // one sigma apart
	}
	res := WelchT(xs, ys)
	if !res.Significant(0.05) {
		t.Fatalf("1-sigma mean shift not detected: p=%v", res.P)
	}
}

func TestWelchTNullCalibration(t *testing.T) {
	// Under the null, about 5% of tests should reject at alpha=0.05.
	r := rng.NewMarsaglia(7)
	rejections := 0
	const trials = 2000
	for k := 0; k < trials; k++ {
		xs := make([]float64, 15)
		ys := make([]float64, 15)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		if WelchT(xs, ys).Significant(0.05) {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate < 0.03 || rate > 0.07 {
		t.Fatalf("type-I error rate %.3f far from 0.05", rate)
	}
}

func TestTTestSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewMarsaglia(seed)
		xs := make([]float64, 12)
		ys := make([]float64, 12)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = 0.5 + r.NormFloat64()
		}
		a := WelchT(xs, ys)
		b := WelchT(ys, xs)
		return math.Abs(a.P-b.P) < 1e-12 && math.Abs(a.Statistic+b.Statistic) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTTestScaleInvariance(t *testing.T) {
	// p-values must be invariant to affine unit changes (cycles vs seconds).
	r := rng.NewMarsaglia(3)
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = 5 + r.NormFloat64()
		ys[i] = 5.4 + r.NormFloat64()
	}
	scale := func(v []float64, a, b float64) []float64 {
		out := make([]float64, len(v))
		for i := range v {
			out[i] = a*v[i] + b
		}
		return out
	}
	p1 := WelchT(xs, ys).P
	p2 := WelchT(scale(xs, 3.2e9, 17), scale(ys, 3.2e9, 17)).P
	approx(t, p2, p1, 1e-9, "scale-invariant p")
}

func TestPairedTMatchesHandComputation(t *testing.T) {
	// Differences: mean 2.4, sample sd sqrt(1280.4/9); t = 2.4/(sd/sqrt(10)).
	x := []float64{125, 115, 130, 140, 140, 115, 140, 125, 140, 135}
	y := []float64{110, 122, 125, 120, 140, 124, 123, 137, 135, 145}
	res := PairedT(x, y)
	sd := math.Sqrt(1280.4 / 9)
	wantT := 2.4 / (sd / math.Sqrt(10))
	approx(t, res.Statistic, wantT, 1e-9, "paired t statistic")
	wantP := 2 * (1 - StudentTCDF(wantT, 9))
	approx(t, res.P, wantP, 1e-9, "paired t p-value")
	if res.P < 0.4 || res.P > 0.7 {
		t.Fatalf("p=%v outside the plausible range for this data", res.P)
	}
}

func TestWilcoxonDetectsShift(t *testing.T) {
	r := rng.NewMarsaglia(11)
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		v := r.NormFloat64()
		xs[i] = v
		ys[i] = v + 1.2 + 0.2*r.NormFloat64()
	}
	if res := WilcoxonSignedRank(xs, ys); !res.Significant(0.01) {
		t.Fatalf("clear shift not detected: p=%v", res.P)
	}
}

func TestWilcoxonNullBehavior(t *testing.T) {
	r := rng.NewMarsaglia(13)
	rejections := 0
	const trials = 1000
	for k := 0; k < trials; k++ {
		xs := make([]float64, 20)
		ys := make([]float64, 20)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		if WilcoxonSignedRank(xs, ys).Significant(0.05) {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate < 0.02 || rate > 0.08 {
		t.Fatalf("Wilcoxon type-I rate %.3f far from 0.05", rate)
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	r := rng.NewMarsaglia(17)
	xs := make([]float64, 25)
	ys := make([]float64, 25)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = 1.0 + r.NormFloat64()
	}
	if res := MannWhitneyU(xs, ys); !res.Significant(0.05) {
		t.Fatalf("shift not detected: p=%v", res.P)
	}
}

func TestShapiroWilkAcceptsNormal(t *testing.T) {
	r := rng.NewMarsaglia(19)
	accept := 0
	const trials = 200
	for k := 0; k < trials; k++ {
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = 5 + 2*r.NormFloat64()
		}
		if !ShapiroWilk(xs).Significant(0.05) {
			accept++
		}
	}
	// Should accept ~95%.
	if accept < trials*88/100 {
		t.Fatalf("Shapiro-Wilk rejected normal data too often: %d/%d accepted", accept, trials)
	}
}

func TestShapiroWilkRejectsSkewed(t *testing.T) {
	r := rng.NewMarsaglia(23)
	reject := 0
	const trials = 200
	for k := 0; k < trials; k++ {
		xs := make([]float64, 30)
		for i := range xs {
			v := r.NormFloat64()
			xs[i] = math.Exp(v) // lognormal: strongly skewed
		}
		if ShapiroWilk(xs).Significant(0.05) {
			reject++
		}
	}
	if reject < trials*80/100 {
		t.Fatalf("Shapiro-Wilk missed lognormal skew: only %d/%d rejected", reject, trials)
	}
}

func TestShapiroWilkRejectsBimodal(t *testing.T) {
	r := rng.NewMarsaglia(29)
	reject := 0
	const trials = 200
	for k := 0; k < trials; k++ {
		xs := make([]float64, 30)
		for i := range xs {
			if r.Intn(2) == 0 {
				xs[i] = -3 + 0.3*r.NormFloat64()
			} else {
				xs[i] = 3 + 0.3*r.NormFloat64()
			}
		}
		if ShapiroWilk(xs).Significant(0.05) {
			reject++
		}
	}
	if reject < trials*90/100 {
		t.Fatalf("Shapiro-Wilk missed bimodality: only %d/%d rejected", reject, trials)
	}
}

func TestShapiroWilkOutlierSample(t *testing.T) {
	// A sample with one large outlier (236 among 148..195) must yield a
	// clearly sub-unity W and a small p-value.
	x := []float64{148, 154, 158, 160, 161, 162, 166, 170, 182, 195, 236}
	res := ShapiroWilk(x)
	if res.Statistic > 0.9 || res.Statistic < 0.5 {
		t.Fatalf("W = %v implausible for this outlier sample", res.Statistic)
	}
	if res.P > 0.05 {
		t.Fatalf("outlier-laden sample got p=%v; expected rejection", res.P)
	}
}

func TestShapiroWilkPValueCalibration(t *testing.T) {
	// Under the null, p-values must be approximately Uniform(0,1): check
	// the empirical CDF at several thresholds. This pins both the W
	// computation and Royston's p transformation.
	r := rng.NewMarsaglia(53)
	const trials = 2000
	ps := make([]float64, 0, trials)
	for k := 0; k < trials; k++ {
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		ps = append(ps, ShapiroWilk(xs).P)
	}
	for _, threshold := range []float64{0.05, 0.1, 0.25, 0.5, 0.75} {
		below := 0
		for _, p := range ps {
			if p < threshold {
				below++
			}
		}
		rate := float64(below) / trials
		if math.Abs(rate-threshold) > 0.05 {
			t.Errorf("P(p < %.2f) = %.3f; p-values not uniform under the null", threshold, rate)
		}
	}
}

func TestShapiroWilkNearPerfectNormal(t *testing.T) {
	// Exact normal quantiles should give W very close to 1.
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = NormalQuantile((float64(i) + 0.5) / 50)
	}
	res := ShapiroWilk(xs)
	if res.Statistic < 0.98 {
		t.Fatalf("W = %v for exact normal quantiles", res.Statistic)
	}
	if res.Significant(0.05) {
		t.Fatalf("perfect normal sample rejected: p=%v", res.P)
	}
}

func TestBrownForsytheEqualVariances(t *testing.T) {
	r := rng.NewMarsaglia(31)
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = 5 + r.NormFloat64() // same variance, different mean
	}
	if res := BrownForsythe(a, b); res.Significant(0.05) {
		t.Fatalf("equal variances rejected: p=%v", res.P)
	}
}

func TestBrownForsytheUnequalVariances(t *testing.T) {
	r := rng.NewMarsaglia(37)
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = 4 * r.NormFloat64()
	}
	if res := BrownForsythe(a, b); !res.Significant(0.05) {
		t.Fatalf("4x variance difference not detected: p=%v", res.P)
	}
}

func TestRMANOVADetectsTreatment(t *testing.T) {
	// 18 subjects × 2 treatments with a consistent +0.5 effect over
	// subject-specific baselines.
	r := rng.NewMarsaglia(41)
	data := make([][]float64, 18)
	for s := range data {
		base := 10 + 5*r.NormFloat64() // huge between-subject spread
		data[s] = []float64{base + 0.1*r.NormFloat64(), base + 0.5 + 0.1*r.NormFloat64()}
	}
	res := RepeatedMeasuresANOVA(data)
	if !res.Significant(0.05) {
		t.Fatalf("consistent within-subject effect not detected: F=%v p=%v", res.FValue, res.P)
	}
	if res.DFTreatment != 1 || res.DFError != 17 {
		t.Fatalf("df = (%v, %v), want (1, 17)", res.DFTreatment, res.DFError)
	}
	// Between-subject variance must dominate SSSubjects, not the error term.
	if res.SSSubjects < res.SSError {
		t.Fatal("subject variance leaked into the error term")
	}
}

func TestRMANOVANullBehavior(t *testing.T) {
	r := rng.NewMarsaglia(43)
	rejections := 0
	const trials = 1000
	for k := 0; k < trials; k++ {
		data := make([][]float64, 18)
		for s := range data {
			base := 10 + 5*r.NormFloat64()
			data[s] = []float64{base + 0.3*r.NormFloat64(), base + 0.3*r.NormFloat64()}
		}
		if RepeatedMeasuresANOVA(data).Significant(0.05) {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate < 0.03 || rate > 0.08 {
		t.Fatalf("RM-ANOVA type-I rate %.3f far from 0.05", rate)
	}
}

func TestQQNormalShape(t *testing.T) {
	r := rng.NewMarsaglia(47)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 3 + 2*r.NormFloat64()
	}
	pts := QQNormal(xs, 2)
	if len(pts) != 100 {
		t.Fatalf("got %d points", len(pts))
	}
	// Points of a normal sample normalized by the true sigma lie near the
	// diagonal; check the middle quartiles.
	for _, p := range pts[25:75] {
		if math.Abs(p.Observed-p.Theoretical) > 0.5 {
			t.Fatalf("mid-distribution QQ point far from diagonal: %+v", p)
		}
	}
	// Monotone in both coordinates.
	for i := 1; i < len(pts); i++ {
		if pts[i].Theoretical < pts[i-1].Theoretical || pts[i].Observed < pts[i-1].Observed {
			t.Fatal("QQ points not monotone")
		}
	}
}

func TestRanksHandleTies(t *testing.T) {
	rk := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if rk[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", rk, want)
		}
	}
}

func TestGammaFunctionsComplement(t *testing.T) {
	f := func(a8, x8 uint8) bool {
		a := float64(a8%50)/5 + 0.1
		x := float64(x8) / 10
		p, q := GammaP(a, x), GammaQ(a, x)
		return math.Abs(p+q-1) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("incomplete beta endpoints wrong")
	}
	approx(t, RegIncBeta(0.5, 0.5, 0.5), 0.5, 1e-10, "I_0.5(0.5,0.5)")
}
