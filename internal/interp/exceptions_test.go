package interp_test

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
)

// buildThrower builds: thrower(x) throws x*3 when x is odd, else returns
// x*2; main invokes it for i in 0..9, sinking results and caught values.
func buildThrower() *ir.Module {
	mb := ir.NewModuleBuilder("exc")
	th := mb.Func("thrower", 1)
	x := th.Param(0)
	odd := th.And(x, th.ConstI(1))
	th.If(odd, func() {
		th.Throw(th.Mul(x, th.ConstI(3)))
	}, nil)
	th.Ret(th.Mul(x, th.ConstI(2)))

	main := mb.Func("main", 0)
	main.LoopN(10, func(i ir.Reg) {
		handler := main.NewBlock()
		cont := main.NewBlock()
		r := main.Invoke(th.Index(), handler, i)
		main.Jmp(cont)
		main.SetBlock(handler)
		main.Sink(r) // caught value
		main.Jmp(cont)
		main.SetBlock(cont)
		main.Sink(r) // result (or caught value twice when thrown)
	})
	main.Ret(ir.NoReg)
	return mb.Module()
}

func execNative(t *testing.T, m *ir.Module) interp.Result {
	t.Helper()
	m.Finalize()
	ir.ComputeSizes(m)
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(machine.DefaultConfig())
	res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: &interp.NativeRuntime{
		FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
		Stack: as.StackBase(), Heap: heap.NewSegregated(as), Mach: mach,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestThrowCaughtByInvoke(t *testing.T) {
	// Expected output: even i takes the normal path (one sink of 2i); odd i
	// throws, so the handler sinks 3i and the join block sinks it again.
	want := uint64(0)
	for i := int64(0); i < 10; i++ {
		if i%2 == 1 {
			want = want*1099511628211 + uint64(3*i)
			want = want*1099511628211 + uint64(3*i)
		} else {
			want = want*1099511628211 + uint64(2*i)
		}
	}
	got := execNative(t, buildThrower()).Output
	if got != want {
		t.Fatalf("output %#x, want %#x", got, want)
	}
}

func TestUncaughtExceptionAborts(t *testing.T) {
	mb := ir.NewModuleBuilder("boom")
	main := mb.Func("main", 0)
	main.Throw(main.ConstI(0xdead))
	main.Ret(ir.NoReg)
	m := mb.Module()
	m.Finalize()
	ir.ComputeSizes(m)
	as := mem.NewAddressSpace()
	img, _ := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	mach := machine.New(machine.DefaultConfig())
	_, err := interp.Run(m, interp.Options{Machine: mach, Runtime: &interp.NativeRuntime{
		FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
		Stack: as.StackBase(), Mach: mach,
	}})
	if err == nil || !strings.Contains(err.Error(), "uncaught exception") {
		t.Fatalf("uncaught exception not reported: %v", err)
	}
}

func TestThrowUnwindsNestedFrames(t *testing.T) {
	// main --invoke--> a --call--> b --call--> c --throw-->
	// The exception must unwind through b and a to main's handler, and the
	// simulated stack pointer must be fully restored (verified by looping).
	mb := ir.NewModuleBuilder("nest")
	c := mb.Func("c", 1)
	c.Slot("pad", 256)
	c.Throw(c.Add(c.Param(0), c.ConstI(1000)))
	c.Ret(ir.NoReg)
	b := mb.Func("b", 1)
	b.Slot("pad", 512)
	b.Ret(b.Call(c.Index(), b.Param(0)))
	a := mb.Func("a", 1)
	a.Slot("pad", 1024)
	a.Ret(a.Call(b.Index(), a.Param(0)))

	main := mb.Func("main", 0)
	main.LoopN(2000, func(i ir.Reg) { // would overflow the stack if SP leaked
		handler := main.NewBlock()
		cont := main.NewBlock()
		r := main.Invoke(a.Index(), handler, i)
		main.Jmp(cont)
		main.SetBlock(handler)
		main.Jmp(cont)
		main.SetBlock(cont)
		main.Sink(main.And(r, main.ConstI(0xffff)))
	})
	main.Ret(ir.NoReg)
	res := execNative(t, mb.Module())
	if res.Output == 0 {
		t.Fatal("no output")
	}
}

func TestExceptionsLayoutInvariantUnderStabilizer(t *testing.T) {
	m, err := compiler.Compile(buildThrower(), compiler.Options{Level: compiler.O2, Stabilize: true})
	if err != nil {
		t.Fatal(err)
	}
	ref := execNative(t, m)
	for seed := uint64(0); seed < 3; seed++ {
		as := mem.NewAddressSpace()
		img, _ := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
		mach := machine.New(machine.DefaultConfig())
		st, err := core.New(m, mach, as, img.FuncAddrs, img.GlobalAddrs, core.Options{
			Code: true, Stack: true, Heap: true,
			Rerandomize: true, Interval: 2_000, FineGrainCode: true, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: st})
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != ref.Output {
			t.Fatalf("seed %d: exceptions under stabilizer changed output", seed)
		}
	}
}

func TestUnwindingHasCost(t *testing.T) {
	// Throwing through three frames must cost more than returning through
	// them: compare the thrower loop against an equivalent non-throwing one.
	mb := ir.NewModuleBuilder("costly")
	c := mb.Func("c", 1)
	c.Throw(c.Param(0))
	c.Ret(ir.NoReg)
	b := mb.Func("b", 1)
	b.Ret(b.Call(c.Index(), b.Param(0)))
	main := mb.Func("main", 0)
	main.LoopN(100, func(i ir.Reg) {
		h := main.NewBlock()
		cont := main.NewBlock()
		r := main.Invoke(b.Index(), h, i)
		main.Jmp(cont)
		main.SetBlock(h)
		main.Jmp(cont)
		main.SetBlock(cont)
		main.Sink(r)
	})
	main.Ret(ir.NoReg)
	throwing := execNative(t, mb.Module())

	mb2 := ir.NewModuleBuilder("calm")
	c2 := mb2.Func("c", 1)
	c2.Ret(c2.Param(0))
	b2 := mb2.Func("b", 1)
	b2.Ret(b2.Call(c2.Index(), b2.Param(0)))
	main2 := mb2.Func("main", 0)
	main2.LoopN(100, func(i ir.Reg) {
		main2.Sink(main2.Call(b2.Index(), i))
	})
	main2.Ret(ir.NoReg)
	calm := execNative(t, mb2.Module())

	if throwing.Cycles <= calm.Cycles {
		t.Fatalf("throwing loop (%d cycles) not costlier than plain calls (%d)",
			throwing.Cycles, calm.Cycles)
	}
}
