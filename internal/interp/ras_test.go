package interp_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
)

// mockRuntime wraps NativeRuntime and imposes relocation-table indirection
// on every call and global access, recording the slots it handed out.
type mockRuntime struct {
	interp.NativeRuntime
	slotBase  mem.Addr
	callSlots int
	globSlots int
}

func (m *mockRuntime) RelocCall(curFn, callee int) (mem.Addr, bool) {
	m.callSlots++
	return m.slotBase + mem.Addr(callee)*8, true
}

func (m *mockRuntime) RelocGlobal(curFn, g int) (mem.Addr, bool) {
	m.globSlots++
	return m.slotBase + 0x1000 + mem.Addr(g)*8, true
}

func buildCallProgram(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModuleBuilder("callprog")
	g := mb.GlobalInit("g", []int64{5})
	leaf := mb.Func("leaf", 1)
	leaf.Ret(leaf.Add(leaf.Param(0), leaf.LoadG(g, 0, ir.NoReg)))
	main := mb.Func("main", 0)
	s := main.ConstI(0)
	main.LoopN(10, func(i ir.Reg) {
		main.MovTo(s, main.Add(s, main.Call(leaf.Index(), i)))
	})
	main.Sink(s)
	main.Ret(ir.NoReg)
	m := mb.Module()
	m.Finalize()
	ir.ComputeSizes(m)
	return m
}

func TestRelocIndirectionChargedPerUse(t *testing.T) {
	m := buildCallProgram(t)
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatal(err)
	}

	run := func(rt interp.Runtime, mach *machine.Machine) interp.Result {
		res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: rt})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	machPlain := machine.New(machine.DefaultConfig())
	plainRT := &interp.NativeRuntime{
		FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
		Stack: as.StackBase(), Heap: nil, Mach: machPlain,
	}
	plain := run(plainRT, machPlain)

	machMock := machine.New(machine.DefaultConfig())
	mock := &mockRuntime{
		NativeRuntime: interp.NativeRuntime{
			FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
			Stack: as.StackBase(), Heap: nil, Mach: machMock,
		},
		slotBase: 0x30000000,
	}
	indirect := run(mock, machMock)

	if indirect.Output != plain.Output {
		t.Fatal("relocation indirection changed program output")
	}
	// 10 calls from main (reloc'd) + 1 entry call (not reloc'd: no caller).
	if mock.callSlots != 10 {
		t.Fatalf("call slots consulted %d times, want 10", mock.callSlots)
	}
	// leaf loads g once per invocation.
	if mock.globSlots != 10 {
		t.Fatalf("global slots consulted %d times, want 10", mock.globSlots)
	}
	// Each consultation costs at least the extra load instruction.
	if indirect.Instructions <= plain.Instructions {
		t.Fatalf("indirection retired %d instructions, plain %d",
			indirect.Instructions, plain.Instructions)
	}
}

func TestRASPredictsNestedReturns(t *testing.T) {
	// A chain of nested calls within the RAS depth must produce no return
	// mispredictions (no Mispredict stalls beyond those from branches).
	mb := ir.NewModuleBuilder("nest")
	fns := make([]*ir.FuncBuilder, 8)
	for i := range fns {
		fns[i] = mb.Func("f", 1)
	}
	for i, f := range fns {
		if i+1 < len(fns) {
			f.Ret(f.Call(fns[i+1].Index(), f.Param(0)))
		} else {
			f.Ret(f.Add(f.Param(0), f.ConstI(1)))
		}
	}
	main := mb.Func("main", 0)
	s := main.ConstI(0)
	main.LoopN(50, func(i ir.Reg) {
		main.MovTo(s, main.Add(s, main.Call(fns[0].Index(), i)))
	})
	main.Sink(s)
	main.Ret(ir.NoReg)
	m := mb.Module()
	m.Finalize()
	ir.ComputeSizes(m)

	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(machine.DefaultConfig())
	_, err = interp.Run(m, interp.Options{Machine: mach, Runtime: &interp.NativeRuntime{
		FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
		Stack: as.StackBase(), Mach: mach,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Direction mispredicts come from the loop; target mispredicts must be
	// zero — the depth-8 nest fits the 16-entry RAS and calls are direct.
	if mach.BP.TargetMispredicts != 0 {
		t.Fatalf("got %d target mispredicts in a RAS-friendly nest", mach.BP.TargetMispredicts)
	}
}

func TestRASOverflowMispredicts(t *testing.T) {
	// Recursion deeper than the RAS forces return mispredictions (modeled
	// as Mispredict stalls); the run must still complete correctly.
	mb := ir.NewModuleBuilder("deep")
	rec := mb.Func("rec", 1)
	n := rec.Param(0)
	res := rec.Mov(n)
	cond := rec.CmpLE(n, rec.ConstI(0))
	rec.If(cond, nil, func() {
		rec.MovTo(res, rec.Add(n, rec.Call(rec.Index(), rec.Sub(n, rec.ConstI(1)))))
	})
	rec.Ret(res)
	main := mb.Func("main", 0)
	main.Sink(main.Call(rec.Index(), main.ConstI(64))) // depth 64 > RAS 16
	main.Ret(ir.NoReg)
	m := mb.Module()
	m.Finalize()
	ir.ComputeSizes(m)

	as := mem.NewAddressSpace()
	img, _ := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)

	mach := machine.New(machine.DefaultConfig())
	res2, err := interp.Run(m, interp.Options{Machine: mach, Runtime: &interp.NativeRuntime{
		FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
		Stack: as.StackBase(), Mach: mach,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// sum 1..64 + final 0 = 2080; checksum of single sink is the value.
	if res2.Output != 2080 {
		t.Fatalf("deep recursion output %d, want 2080", res2.Output)
	}
}

func TestProfileAttributesCycles(t *testing.T) {
	m := buildCallProgram(t)
	as := mem.NewAddressSpace()
	img, _ := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	mach := machine.New(machine.DefaultConfig())
	res, err := interp.Run(m, interp.Options{
		Machine: mach,
		Profile: true,
		Runtime: &interp.NativeRuntime{
			FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
			Stack: as.StackBase(), Mach: mach,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile) != len(m.Funcs) {
		t.Fatalf("profile has %d entries for %d functions", len(res.Profile), len(m.Funcs))
	}
	var total uint64
	for _, c := range res.Profile {
		total += c
	}
	if total == 0 {
		t.Fatal("empty profile")
	}
	// Exclusive attribution must not double count: the sum of per-function
	// cycles cannot exceed the machine's total.
	if total > res.Cycles {
		t.Fatalf("profile sum %d exceeds total cycles %d", total, res.Cycles)
	}
	// Both main and leaf did real work.
	leaf := m.FuncIndex("leaf")
	mainIdx := m.FuncIndex("main")
	if res.Profile[leaf] == 0 || res.Profile[mainIdx] == 0 {
		t.Fatalf("attribution missing: leaf=%d main=%d", res.Profile[leaf], res.Profile[mainIdx])
	}
}
