// Package heap implements the simulated heap allocators from §3.2 of the
// paper: a power-of-two size-segregated base allocator, a TLSF (two-level
// segregated fits) base allocator, a DieHard-style randomized allocator, and
// STABILIZER's shuffling layer that wraps a base allocator to randomize the
// addresses it returns.
//
// Allocators hand out simulated addresses obtained from a mem.AddressSpace;
// object contents live in interpreter structures, so allocators only manage
// address arithmetic and free lists — exactly the part whose policy decides
// memory layout.
package heap

import (
	"fmt"

	"repro/internal/mem"
)

// Allocator is a simulated malloc/free pair.
type Allocator interface {
	// Alloc returns the simulated address of a new object of the given
	// size in bytes. Addresses are at least 16-byte aligned.
	Alloc(size uint64) mem.Addr
	// Free releases an address previously returned by Alloc. Freeing an
	// unknown address panics: in this simulation that is always a bug in
	// the caller, never user error.
	Free(addr mem.Addr)
	// Name identifies the allocator in experiment output.
	Name() string
}

// MinAlign is the minimum alignment of every allocation.
const MinAlign = 16

// sizeClass returns the power-of-two size class index for a request:
// class i holds objects of 2^(i+4) bytes (16, 32, 64, ...).
func sizeClass(size uint64) int {
	if size == 0 {
		size = 1
	}
	c := 0
	s := uint64(MinAlign)
	for s < size {
		s <<= 1
		c++
	}
	return c
}

// classSize returns the byte size of class c.
func classSize(c int) uint64 { return MinAlign << c }

const (
	numClasses = 18 // 16 B .. 2 MiB
	chunkSize  = 1 << 16
)

// Segregated is the power-of-two, size-segregated base allocator the paper
// uses by default. Freed objects go to a per-class LIFO free list and are
// preferentially reused — the conventional locality-friendly policy that
// makes heap layout deterministic and history-dependent.
type Segregated struct {
	as    *mem.AddressSpace
	flag  mem.MapFlag
	free  [numClasses][]mem.Addr
	curs  [numClasses]mem.Addr // bump cursor within the current chunk
	lim   [numClasses]mem.Addr
	sizes map[mem.Addr]int // live object -> class
	large map[mem.Addr]bool
}

// NewSegregated returns a segregated allocator drawing from as.
func NewSegregated(as *mem.AddressSpace) *Segregated {
	return NewSegregatedAt(as, mem.MapAnywhere)
}

// NewSegregatedAt returns a segregated allocator whose chunks are mapped
// with the given placement flag. The STABILIZER code heap uses MapLow32 so
// relocated functions stay reachable by 32-bit jumps (§3.5).
func NewSegregatedAt(as *mem.AddressSpace, flag mem.MapFlag) *Segregated {
	return &Segregated{as: as, flag: flag, sizes: make(map[mem.Addr]int), large: make(map[mem.Addr]bool)}
}

// Name implements Allocator.
func (s *Segregated) Name() string { return "segregated" }

// Alloc implements Allocator. Requests beyond the largest class are mapped
// directly (rounded to pages), like real malloc's mmap path.
func (s *Segregated) Alloc(size uint64) mem.Addr {
	c := sizeClass(size)
	if c >= numClasses {
		r := s.as.Map(size, s.flag)
		s.large[r.Base] = true
		return r.Base
	}
	if n := len(s.free[c]); n > 0 {
		a := s.free[c][n-1]
		s.free[c] = s.free[c][:n-1]
		s.sizes[a] = c
		return a
	}
	if s.curs[c] == s.lim[c] {
		r := s.as.Map(chunkSize, s.flag)
		s.curs[c], s.lim[c] = r.Base, r.End()
	}
	a := s.curs[c]
	s.curs[c] += mem.Addr(classSize(c))
	s.sizes[a] = c
	return a
}

// Free implements Allocator.
func (s *Segregated) Free(addr mem.Addr) {
	if s.large[addr] {
		delete(s.large, addr)
		return // large mappings are not recycled
	}
	c, ok := s.sizes[addr]
	if !ok {
		panic(fmt.Sprintf("heap: segregated free of unknown address %#x", uint64(addr)))
	}
	delete(s.sizes, addr)
	s.free[c] = append(s.free[c], addr)
}

// SizeOf returns the usable size of a live object (its class size), used by
// wrapping layers.
func (s *Segregated) SizeOf(addr mem.Addr) (uint64, bool) {
	if c, ok := s.sizes[addr]; ok {
		return classSize(c), true
	}
	if s.large[addr] {
		return 0, true
	}
	return 0, false
}
