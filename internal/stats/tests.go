package stats

import (
	"math"
	"sort"
)

// TestResult reports a hypothesis test: the statistic, its p-value (two
// sided unless stated otherwise), and the degrees of freedom used.
type TestResult struct {
	Statistic float64
	P         float64
	DF        float64
}

// Significant reports whether the test rejects at level alpha.
func (r TestResult) Significant(alpha float64) bool {
	return !math.IsNaN(r.P) && r.P < alpha
}

// WelchT runs the two-sample Welch t-test (unequal variances) for the null
// hypothesis that the two population means are equal (§2.4).
func WelchT(xs, ys []float64) TestResult {
	nx, ny := float64(len(xs)), float64(len(ys))
	if nx < 2 || ny < 2 {
		return TestResult{P: math.NaN()}
	}
	mx, my := Mean(xs), Mean(ys)
	vx, vy := Variance(xs), Variance(ys)
	se2 := vx/nx + vy/ny
	if se2 == 0 {
		// Identical constants: no evidence of a difference if means equal,
		// certain difference otherwise.
		if mx == my {
			return TestResult{Statistic: 0, P: 1, DF: nx + ny - 2}
		}
		return TestResult{Statistic: math.Inf(1), P: 0, DF: nx + ny - 2}
	}
	t := (mx - my) / math.Sqrt(se2)
	df := se2 * se2 / ((vx*vx)/(nx*nx*(nx-1)) + (vy*vy)/(ny*ny*(ny-1)))
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	return TestResult{Statistic: t, P: p, DF: df}
}

// StudentT runs the classic pooled-variance two-sample t-test.
func StudentT(xs, ys []float64) TestResult {
	nx, ny := float64(len(xs)), float64(len(ys))
	if nx < 2 || ny < 2 {
		return TestResult{P: math.NaN()}
	}
	mx, my := Mean(xs), Mean(ys)
	vx, vy := Variance(xs), Variance(ys)
	df := nx + ny - 2
	sp2 := ((nx-1)*vx + (ny-1)*vy) / df
	se := math.Sqrt(sp2 * (1/nx + 1/ny))
	if se == 0 {
		if mx == my {
			return TestResult{Statistic: 0, P: 1, DF: df}
		}
		return TestResult{Statistic: math.Inf(1), P: 0, DF: df}
	}
	t := (mx - my) / se
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	return TestResult{Statistic: t, P: p, DF: df}
}

// PairedT runs the paired t-test on equal-length samples.
func PairedT(xs, ys []float64) TestResult {
	if len(xs) != len(ys) || len(xs) < 2 {
		return TestResult{P: math.NaN()}
	}
	d := make([]float64, len(xs))
	for i := range xs {
		d[i] = xs[i] - ys[i]
	}
	n := float64(len(d))
	md := Mean(d)
	sd := StdDev(d)
	if sd == 0 {
		if md == 0 {
			return TestResult{Statistic: 0, P: 1, DF: n - 1}
		}
		return TestResult{Statistic: math.Inf(1), P: 0, DF: n - 1}
	}
	t := md / (sd / math.Sqrt(n))
	p := 2 * (1 - StudentTCDF(math.Abs(t), n-1))
	return TestResult{Statistic: t, P: p, DF: n - 1}
}

// WilcoxonSignedRank runs the paired Wilcoxon signed-rank test with the
// normal approximation (plus tie and continuity corrections) — the
// non-parametric fallback §6 uses for benchmarks whose execution times are
// not normal.
func WilcoxonSignedRank(xs, ys []float64) TestResult {
	if len(xs) != len(ys) {
		return TestResult{P: math.NaN()}
	}
	var diffs []float64
	for i := range xs {
		if d := xs[i] - ys[i]; d != 0 {
			diffs = append(diffs, d)
		}
	}
	n := float64(len(diffs))
	if n < 2 {
		return TestResult{P: math.NaN()}
	}
	abs := make([]float64, len(diffs))
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	rk := ranks(abs)
	wPlus := 0.0
	for i, d := range diffs {
		if d > 0 {
			wPlus += rk[i]
		}
	}
	mu := n * (n + 1) / 4
	sigma2 := n * (n + 1) * (2*n + 1) / 24
	// Tie correction.
	sort.Float64s(abs)
	for i := 0; i < len(abs); {
		j := i
		for j+1 < len(abs) && abs[j+1] == abs[i] {
			j++
		}
		t := float64(j - i + 1)
		if t > 1 {
			sigma2 -= t * (t*t - 1) / 48
		}
		i = j + 1
	}
	if sigma2 <= 0 {
		return TestResult{P: math.NaN()}
	}
	z := (wPlus - mu - math.Copysign(0.5, wPlus-mu)) / math.Sqrt(sigma2)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	return TestResult{Statistic: z, P: p, DF: n}
}

// MannWhitneyU runs the two-sample rank-sum test (normal approximation with
// tie correction), the unpaired non-parametric alternative.
func MannWhitneyU(xs, ys []float64) TestResult {
	nx, ny := float64(len(xs)), float64(len(ys))
	if nx < 2 || ny < 2 {
		return TestResult{P: math.NaN()}
	}
	all := append(append([]float64(nil), xs...), ys...)
	rk := ranks(all)
	rx := 0.0
	for i := range xs {
		rx += rk[i]
	}
	u := rx - nx*(nx+1)/2
	mu := nx * ny / 2
	n := nx + ny
	// Tie correction on the pooled sample.
	sort.Float64s(all)
	tieSum := 0.0
	for i := 0; i < len(all); {
		j := i
		for j+1 < len(all) && all[j+1] == all[i] {
			j++
		}
		t := float64(j - i + 1)
		if t > 1 {
			tieSum += t * (t*t - 1)
		}
		i = j + 1
	}
	sigma2 := nx * ny / 12 * ((n + 1) - tieSum/(n*(n-1)))
	if sigma2 <= 0 {
		return TestResult{P: math.NaN()}
	}
	z := (u - mu - math.Copysign(0.5, u-mu)) / math.Sqrt(sigma2)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	return TestResult{Statistic: z, P: p, DF: n - 2}
}

// BrownForsythe tests homogeneity of variance across groups using the
// median-centered Levene statistic (Table 1). It returns the F statistic and
// p-value for the null hypothesis that all groups share one variance.
func BrownForsythe(groups ...[]float64) TestResult {
	k := len(groups)
	if k < 2 {
		return TestResult{P: math.NaN()}
	}
	var z [][]float64
	total := 0
	for _, g := range groups {
		if len(g) < 2 {
			return TestResult{P: math.NaN()}
		}
		med := Median(g)
		zi := make([]float64, len(g))
		for i, x := range g {
			zi[i] = math.Abs(x - med)
		}
		z = append(z, zi)
		total += len(g)
	}
	grand := 0.0
	for _, zi := range z {
		for _, v := range zi {
			grand += v
		}
	}
	grand /= float64(total)

	num, den := 0.0, 0.0
	for _, zi := range z {
		mi := Mean(zi)
		num += float64(len(zi)) * (mi - grand) * (mi - grand)
		for _, v := range zi {
			den += (v - mi) * (v - mi)
		}
	}
	df1 := float64(k - 1)
	df2 := float64(total - k)
	if den == 0 {
		return TestResult{P: math.NaN()}
	}
	f := (num / df1) / (den / df2)
	return TestResult{Statistic: f, P: 1 - FCDF(f, df1, df2), DF: df1}
}
