package main

import (
	"context"
	"testing"

	"repro/internal/experiment"
	"repro/internal/spec"
)

// TestHeadlineClaims pins the repository's thesis end to end at reduced
// scale. Every run is seeded, so these assertions are deterministic: if a
// change flips one, it changed the system's measured behaviour, not luck.
func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("headline integration test skipped in -short mode")
	}

	// Claim 1 (Table 1): astar is non-normal under one-time randomization
	// and normal under re-randomization; cactusADM is non-normal under
	// both. Run at scale 0.5 with the seed the recorded results use.
	sub := func(names ...string) []spec.Benchmark {
		out := make([]spec.Benchmark, 0, len(names))
		for _, n := range names {
			b, ok := spec.ByName(n)
			if !ok {
				t.Fatalf("unknown benchmark %s", n)
			}
			out = append(out, b)
		}
		return out
	}
	norm, err := experiment.Normality(context.Background(), experiment.NormalityOptions{
		Scale: 1.0, Runs: 30, Seed: 2013,
		Suite: sub("astar", "cactusADM"),
	})
	if err != nil {
		t.Fatal(err)
	}
	astar, cactus := norm.Rows[0], norm.Rows[1]
	cv := func(xs []float64) float64 {
		m, s2 := 0.0, 0.0
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		for _, x := range xs {
			s2 += (x - m) * (x - m)
		}
		return s2 / m / m // variance/mean², monotone in CV
	}
	// astar's layout luck is strong and re-randomizable: variance shrinks
	// by a large factor under re-randomization.
	astarShrink := cv(astar.SamplesOnce) / cv(astar.SamplesRerand)
	if astarShrink < 2 {
		t.Errorf("astar variance shrink %.2fx under re-randomization; expected large", astarShrink)
	}
	// cactusADM's luck lives in unmovable startup allocations:
	// re-randomization cannot shrink its variance the way it shrinks
	// astar's.
	cactusShrink := cv(cactus.SamplesOnce) / cv(cactus.SamplesRerand)
	if cactusShrink > astarShrink/2 {
		t.Errorf("cactusADM variance shrank %.2fx vs astar's %.2fx; its luck should persist",
			cactusShrink, astarShrink)
	}
	// And the normalization direction: astar's SW p must improve.
	if astar.SWRerand <= astar.SWOnce {
		t.Errorf("astar SW p did not improve: once %.3f, rerand %.3f",
			astar.SWOnce, astar.SWRerand)
	}

	// Claim 2 (Figure 6): overhead ordering — perlbench (many functions)
	// costs far more than lbm (one regular kernel), and both are positive.
	ovh, err := experiment.Overhead(context.Background(), experiment.OverheadOptions{
		Scale: 0.5, Runs: 10, Seed: 2013,
		Suite: sub("perlbench", "lbm"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var perl, lbm float64
	for _, row := range ovh.Rows {
		if row.Benchmark == "perlbench" {
			perl = row.Overhead[len(ovh.Configs)-1]
		} else {
			lbm = row.Overhead[len(ovh.Configs)-1]
		}
	}
	if lbm <= 0 || perl <= 0 {
		t.Errorf("overheads must be positive: perlbench %.3f, lbm %.3f", perl, lbm)
	}
	if perl < 3*lbm {
		t.Errorf("perlbench overhead (%.1f%%) should dwarf lbm's (%.1f%%)", perl*100, lbm*100)
	}

	// Claim 3 (§6.1): across a broad subset, -O2 vs -O1 shows a clear
	// treatment effect while -O3 vs -O2 does not (the headline ANOVA
	// asymmetry). Ten benchmarks keep the runtime modest; the asymmetry is
	// robust to the subset.
	sp, err := experiment.Speedup(context.Background(), experiment.SpeedupOptions{
		Scale: 0.5, Runs: 12, Seed: 2013,
		Suite: sub("astar", "bzip2", "gcc", "hmmer", "lbm",
			"libquantum", "milc", "namd", "sphinx3", "zeusmp"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sp.ANOVAO2.FValue <= sp.ANOVAO3.FValue {
		t.Errorf("expected F(O2 vs O1) > F(O3 vs O2): got %.3f vs %.3f",
			sp.ANOVAO2.FValue, sp.ANOVAO3.FValue)
	}
	if sp.ANOVAO3.Significant(0.05) {
		t.Errorf("-O3 vs -O2 came out significant (p=%.4f); the headline claim failed",
			sp.ANOVAO3.P)
	}
}
