package interp_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
)

// execModule links and runs m natively, failing the test on error.
func execModule(t *testing.T, m *ir.Module, opts ...func(*interp.Options)) interp.Result {
	t.Helper()
	res, err := tryExec(m, opts...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func tryExec(m *ir.Module, opts ...func(*interp.Options)) (interp.Result, error) {
	m.Finalize()
	ir.ComputeSizes(m)
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		return interp.Result{}, err
	}
	mach := machine.New(machine.DefaultConfig())
	o := interp.Options{
		Machine: mach,
		Runtime: &interp.NativeRuntime{
			FuncAddrs:   img.FuncAddrs,
			GlobalAddrs: img.GlobalAddrs,
			Stack:       as.StackBase(),
			Heap:        heap.NewSegregated(as),
			Mach:        mach,
		},
	}
	for _, f := range opts {
		f(&o)
	}
	return interp.Run(m, o)
}

func TestArithmeticSemantics(t *testing.T) {
	mb := ir.NewModuleBuilder("arith")
	f := mb.Func("main", 0)
	a := f.ConstI(100)
	b := f.ConstI(7)
	f.Sink(f.Add(a, b))           // 107
	f.Sink(f.Sub(a, b))           // 93
	f.Sink(f.Mul(a, b))           // 700
	f.Sink(f.Div(a, b))           // 14
	f.Sink(f.Rem(a, b))           // 2
	f.Sink(f.Div(a, f.ConstI(0))) // 0 (saturating)
	f.Sink(f.CmpLT(b, a))         // 1
	f.Sink(f.CmpLE(a, a))         // 1
	f.Sink(f.CmpEQ(a, b))         // 0
	f.Sink(f.Shl(b, f.ConstI(3))) // 56
	f.Sink(f.Shr(a, f.ConstI(2))) // 25
	f.Ret(ir.NoReg)
	m := mb.Module()

	// Mirror the checksum.
	want := uint64(0)
	for _, v := range []uint64{107, 93, 700, 14, 2, 0, 1, 1, 0, 56, 25} {
		want = want*1099511628211 + v
	}
	if got := execModule(t, m).Output; got != want {
		t.Fatalf("output %#x, want %#x", got, want)
	}
}

func TestFloatSemantics(t *testing.T) {
	mb := ir.NewModuleBuilder("float")
	f := mb.Func("main", 0)
	x := f.ConstF(2.5)
	y := f.ConstF(4.0)
	f.Sink(f.F2I(f.FMul(x, y)))                  // 10
	f.Sink(f.F2I(f.FDiv(y, x)))                  // 1 (1.6 truncated)
	f.Sink(f.FCmpLT(x, y))                       // 1
	f.Sink(f.F2I(f.FSub(f.I2F(f.ConstI(7)), x))) // 4 (4.5 truncated)
	f.Ret(ir.NoReg)
	want := uint64(0)
	for _, v := range []uint64{10, 1, 1, 4} {
		want = want*1099511628211 + v
	}
	if got := execModule(t, mb.Module()).Output; got != want {
		t.Fatalf("output %#x, want %#x", got, want)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	mb := ir.NewModuleBuilder("fib")
	fib := mb.Func("fib", 1)
	n := fib.Param(0)
	res := fib.Mov(n)
	cond := fib.CmpLE(n, fib.ConstI(1))
	fib.If(cond, nil, func() {
		a := fib.Call(fib.Index(), fib.Sub(n, fib.ConstI(1)))
		b := fib.Call(fib.Index(), fib.Sub(n, fib.ConstI(2)))
		fib.MovTo(res, fib.Add(a, b))
	})
	fib.Ret(res)
	main := mb.Func("main", 0)
	main.Sink(main.Call(fib.Index(), main.ConstI(15)))
	main.Ret(ir.NoReg)
	want := uint64(0)*1099511628211 + 610
	if got := execModule(t, mb.Module()).Output; got != want {
		t.Fatalf("fib(15): output %#x, want %#x", got, want)
	}
}

func TestHeapRoundTrip(t *testing.T) {
	mb := ir.NewModuleBuilder("heap")
	f := mb.Func("main", 0)
	p := f.Alloc(128)
	f.LoopN(16, func(i ir.Reg) {
		f.StoreH(p, 0, i, f.Mul(i, i))
	})
	sum := f.ConstI(0)
	f.LoopN(16, func(i ir.Reg) {
		f.MovTo(sum, f.Add(sum, f.LoadH(p, 0, i)))
	})
	f.Free(p)
	f.Sink(sum) // sum of squares 0..15 = 1240
	f.Ret(ir.NoReg)
	want := uint64(0)*1099511628211 + 1240
	if got := execModule(t, mb.Module()).Output; got != want {
		t.Fatalf("output %#x, want %#x", got, want)
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	mb := ir.NewModuleBuilder("uaf")
	f := mb.Func("main", 0)
	p := f.Alloc(64)
	f.Free(p)
	f.Sink(f.LoadH(p, 0, ir.NoReg))
	f.Ret(ir.NoReg)
	_, err := tryExec(mb.Module())
	if err == nil || !strings.Contains(err.Error(), "use after free") {
		t.Fatalf("use after free not detected: %v", err)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	mb := ir.NewModuleBuilder("df")
	f := mb.Func("main", 0)
	p := f.Alloc(64)
	f.Free(p)
	f.Free(p)
	f.Ret(ir.NoReg)
	_, err := tryExec(mb.Module())
	if err == nil || !strings.Contains(err.Error(), "free") {
		t.Fatalf("double free not detected: %v", err)
	}
}

func TestHeapBoundsChecked(t *testing.T) {
	mb := ir.NewModuleBuilder("oob")
	f := mb.Func("main", 0)
	p := f.Alloc(64)
	f.Sink(f.LoadH(p, 64, ir.NoReg)) // one past the end
	f.Ret(ir.NoReg)
	_, err := tryExec(mb.Module())
	if err == nil || !strings.Contains(err.Error(), "outside object") {
		t.Fatalf("out-of-bounds not detected: %v", err)
	}
}

func TestPointerSinkRejected(t *testing.T) {
	// Sinking a pointer would make program output depend on layout, which
	// would invalidate every experiment; the interpreter must refuse.
	mb := ir.NewModuleBuilder("psink")
	f := mb.Func("main", 0)
	p := f.Alloc(64)
	f.Sink(p)
	f.Ret(ir.NoReg)
	_, err := tryExec(mb.Module())
	if err == nil || !strings.Contains(err.Error(), "layout-dependent") {
		t.Fatalf("pointer sink not rejected: %v", err)
	}
}

func TestStackOverflowDetected(t *testing.T) {
	mb := ir.NewModuleBuilder("so")
	rec := mb.Func("rec", 1)
	rec.Slot("pad", 1024)
	rec.CallVoid(rec.Index(), rec.Param(0))
	rec.Ret(ir.NoReg)
	main := mb.Func("main", 0)
	main.CallVoid(rec.Index(), main.ConstI(0))
	main.Ret(ir.NoReg)
	_, err := tryExec(mb.Module(), func(o *interp.Options) { o.StackLimit = 64 << 10 })
	if !errors.Is(err, interp.ErrStackOverflow) {
		t.Fatalf("expected stack overflow, got %v", err)
	}
}

func TestMaxStepsEnforced(t *testing.T) {
	mb := ir.NewModuleBuilder("inf")
	f := mb.Func("main", 0)
	loop := f.NewBlock()
	f.Jmp(loop)
	f.SetBlock(loop)
	f.Jmp(loop)
	_, err := tryExec(mb.Module(), func(o *interp.Options) { o.MaxSteps = 1000 })
	if !errors.Is(err, interp.ErrMaxSteps) {
		t.Fatalf("expected step budget error, got %v", err)
	}
}

func TestStepBudgetErrorIsStructured(t *testing.T) {
	mb := ir.NewModuleBuilder("inf")
	f := mb.Func("main", 0)
	loop := f.NewBlock()
	f.Jmp(loop)
	f.SetBlock(loop)
	f.Jmp(loop)
	_, err := tryExec(mb.Module(), func(o *interp.Options) { o.MaxSteps = 1000 })
	var be *interp.StepBudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected *StepBudgetError, got %T: %v", err, err)
	}
	if be.Budget != 1000 {
		t.Fatalf("budget %d, want 1000", be.Budget)
	}
	if be.Steps <= be.Budget {
		t.Fatalf("steps retired %d not past budget %d", be.Steps, be.Budget)
	}
	// The structured error still matches the sentinel for existing callers.
	if !errors.Is(err, interp.ErrMaxSteps) {
		t.Fatalf("StepBudgetError does not match ErrMaxSteps: %v", err)
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("error message %q does not mention the budget", err)
	}
}

func TestInterruptHookAbortsRun(t *testing.T) {
	mb := ir.NewModuleBuilder("inf")
	f := mb.Func("main", 0)
	loop := f.NewBlock()
	f.Jmp(loop)
	f.SetBlock(loop)
	f.Jmp(loop)
	abort := errors.New("watchdog fired")
	polls := 0
	_, err := tryExec(mb.Module(), func(o *interp.Options) {
		o.Interrupt = func() error {
			polls++
			if polls >= 3 {
				return abort
			}
			return nil
		}
	})
	if !errors.Is(err, abort) {
		t.Fatalf("expected interrupt error, got %v", err)
	}
	if polls != 3 {
		t.Fatalf("interrupt polled %d times, want 3", polls)
	}
}

func TestGlobalBoundsChecked(t *testing.T) {
	mb := ir.NewModuleBuilder("gb")
	g := mb.Global("g", 16)
	f := mb.Func("main", 0)
	f.Sink(f.LoadG(g, 16, ir.NoReg))
	f.Ret(ir.NoReg)
	_, err := tryExec(mb.Module())
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("global OOB not detected: %v", err)
	}
}

func TestStackSlotBoundsChecked(t *testing.T) {
	mb := ir.NewModuleBuilder("sb")
	f := mb.Func("main", 0)
	s := f.Slot("s", 16)
	f.Sink(f.LoadS(s, 24, ir.NoReg))
	f.Ret(ir.NoReg)
	_, err := tryExec(mb.Module())
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("stack OOB not detected: %v", err)
	}
}

func TestGlobalsInitialized(t *testing.T) {
	mb := ir.NewModuleBuilder("gi")
	g := mb.GlobalInit("g", []int64{11, 22, 33})
	f := mb.Func("main", 0)
	f.Sink(f.LoadG(g, 8, ir.NoReg))
	f.Sink(f.LoadG(g, 0, f.ConstI(2)))
	f.Ret(ir.NoReg)
	want := (uint64(0)*1099511628211+22)*1099511628211 + 33
	if got := execModule(t, mb.Module()).Output; got != want {
		t.Fatalf("output %#x, want %#x", got, want)
	}
}

func TestOutputIdenticalAcrossLinkOrders(t *testing.T) {
	// The whole methodology depends on semantics being layout-free.
	mb := ir.NewModuleBuilder("layoutfree")
	a := mb.Func("a", 1)
	a.Ret(a.Mul(a.Param(0), a.ConstI(3)))
	b := mb.Func("b", 1)
	b.Ret(b.Add(b.Param(0), b.ConstI(17)))
	main := mb.Func("main", 0)
	s := main.ConstI(0)
	main.LoopN(50, func(i ir.Reg) {
		main.MovTo(s, main.Add(s, main.Call(a.Index(), main.Call(b.Index(), i))))
	})
	main.Sink(s)
	main.Ret(ir.NoReg)
	m := mb.Module()
	m.Finalize()
	ir.ComputeSizes(m)

	var outputs []uint64
	var cycles []uint64
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}}
	for _, order := range orders {
		as := mem.NewAddressSpace()
		img, err := compiler.Link(m, order, as)
		if err != nil {
			t.Fatal(err)
		}
		mach := machine.New(machine.DefaultConfig())
		res, err := interp.Run(m, interp.Options{
			Machine: mach,
			Runtime: &interp.NativeRuntime{
				FuncAddrs:   img.FuncAddrs,
				GlobalAddrs: img.GlobalAddrs,
				Stack:       as.StackBase(),
				Heap:        heap.NewSegregated(as),
				Mach:        mach,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, res.Output)
		cycles = append(cycles, res.Cycles)
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Fatalf("outputs differ across link orders: %v", outputs)
	}
	if cycles[0] == 0 {
		t.Fatal("no cycles charged")
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	mb := ir.NewModuleBuilder("det")
	f := mb.Func("main", 0)
	s := f.ConstI(1)
	f.LoopN(100, func(i ir.Reg) {
		f.MovTo(s, f.Xor(f.Mul(s, f.ConstI(31)), i))
	})
	f.Sink(s)
	f.Ret(ir.NoReg)
	m := mb.Module()
	r1 := execModule(t, m)
	r2 := execModule(t, m)
	if r1.Output != r2.Output || r1.Cycles != r2.Cycles {
		t.Fatalf("identical runs differ: %+v vs %+v", r1, r2)
	}
}

func TestSecondsPositive(t *testing.T) {
	mb := ir.NewModuleBuilder("sec")
	f := mb.Func("main", 0)
	f.Sink(f.ConstI(1))
	f.Ret(ir.NoReg)
	res := execModule(t, mb.Module())
	if res.Seconds <= 0 {
		t.Fatalf("Seconds = %v", res.Seconds)
	}
}

func TestMissingSizesRejected(t *testing.T) {
	mb := ir.NewModuleBuilder("nosize")
	f := mb.Func("main", 0)
	f.Ret(ir.NoReg)
	m := mb.Module() // finalized but never sized
	mach := machine.New(machine.DefaultConfig())
	_, err := interp.Run(m, interp.Options{Machine: mach, Runtime: &interp.NativeRuntime{Mach: mach}})
	if err == nil || !strings.Contains(err.Error(), "ComputeSizes") {
		t.Fatalf("unsized module accepted: %v", err)
	}
}
