package spec

import "repro/internal/ir"

// ExtendedSuite returns the five C++ benchmarks the paper had to omit —
// "omnetpp, xalancbmk, dealII, soplex, and povray are not run because they
// use exceptions, which STABILIZER does not yet support" (§5) — built on
// this reproduction's implemented exception support (ir.Invoke / ir.Throw,
// the §5 planned work). They are kept out of Suite() so the paper's tables
// stay 18-benchmark comparable; harness options can append them.
func ExtendedSuite() []Benchmark {
	return []Benchmark{omnetpp(), xalancbmk(), dealII(), soplex(), povray()}
}

// FullSuite returns Suite() plus ExtendedSuite().
func FullSuite() []Benchmark {
	return append(Suite(), ExtendedSuite()...)
}

// ByNameFull looks a benchmark up across both suites.
func ByNameFull(name string) (Benchmark, bool) {
	for _, b := range FullSuite() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// invokeSink emits an invoke of fn whose exceptions are caught, folded into
// an accumulator, and execution continues — the ubiquitous C++ try/catch
// loop shape.
func invokeSink(fb *ir.FuncBuilder, fn int32, acc ir.Reg, args ...ir.Reg) {
	handler := fb.NewBlock()
	cont := fb.NewBlock()
	r := fb.Invoke(fn, handler, args...)
	fb.Jmp(cont)
	fb.SetBlock(handler)
	fb.MovTo(acc, fb.Xor(acc, r)) // catch: fold the exception value
	fb.Jmp(cont)
	fb.SetBlock(cont)
	fb.MovTo(acc, fb.Add(acc, r))
}

func omnetpp() Benchmark {
	return Benchmark{
		Name: "omnetpp", Lang: "c++",
		Notes: "discrete-event network simulation: an event loop dispatching handler functions over heap-allocated messages, with exceptions for cancelled events",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("omnetpp")
			handlers := addHashChain(mb, "module", 40)

			// deliver(msg, kind): processes a message, throwing when the
			// LCG marks the event cancelled (~1/8 of deliveries).
			deliver := mb.Func("deliver", 2)
			msg, kind := deliver.Param(0), deliver.Param(1)
			v := deliver.LoadH(msg, 0, ir.NoReg)
			cancel := deliver.CmpEQ(deliver.And(v, deliver.ConstI(7)), deliver.ConstI(5))
			deliver.If(cancel, func() {
				deliver.Throw(deliver.Xor(v, deliver.ConstI(0xcab)))
			}, nil)
			out := deliver.Mov(v)
			for k := 0; k < 4; k++ {
				deliver.MovTo(out, deliver.Call(handlers[k*7], deliver.Add(out, kind)))
			}
			deliver.Ret(out)

			main := mb.Func("main", 0)
			acc := main.ConstI(0x5eed)
			x := main.ConstI(17)
			main.LoopN(n(scale, 9000), func(i ir.Reg) {
				main.MovTo(x, lcgStep(main, x))
				msg := main.Alloc(64)
				main.StoreH(msg, 0, ir.NoReg, x)
				main.StoreH(msg, 8, ir.NoReg, i)
				kind := main.Rem(main.Shr(x, main.ConstI(40)), main.ConstI(8))
				invokeSink(main, deliver.Index(), acc, msg, kind)
				main.Free(msg)
			})
			main.Sink(acc)
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func xalancbmk() Benchmark {
	return Benchmark{
		Name: "xalancbmk", Lang: "c++",
		Notes: "XSLT processor: tokenizing sweeps over a document buffer with parse-error exceptions and a dispatch table of template handlers",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("xalancbmk")
			doc := mb.Global("document", 96<<10)
			handlers := addHashChain(mb, "template", 60)
			disp := addDispatch(mb, "apply", handlers[:10])

			// parse(pos): reads a token; malformed tokens (low bits 0b110)
			// throw a parse error.
			parse := mb.Func("parse", 1)
			pos := parse.Param(0)
			tok := parse.LoadG(doc, 0, pos)
			bad := parse.CmpEQ(parse.And(tok, parse.ConstI(7)), parse.ConstI(6))
			parse.If(bad, func() {
				parse.Throw(parse.Xor(tok, parse.ConstI(0xe44)))
			}, nil)
			parse.Ret(parse.Xor(tok, parse.Shr(tok, parse.ConstI(9))))

			main := mb.Func("main", 0)
			// Fill the document deterministically.
			seedv := main.ConstI(99)
			main.LoopN((96<<10)/8, func(i ir.Reg) {
				main.MovTo(seedv, lcgStep(main, seedv))
				main.StoreG(doc, 0, i, seedv)
			})
			acc := main.ConstI(1)
			main.LoopN(n(scale, 9000), func(i ir.Reg) {
				p := main.Rem(main.Mul(i, main.ConstI(37)), main.ConstI((96<<10)/8))
				invokeSink(main, parse.Index(), acc, p)
			})
			d := main.Call(disp, main.ConstI(7), main.ConstI(n(scale, 2500)))
			main.Sink(main.Add(acc, d))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func dealII() Benchmark {
	return Benchmark{
		Name: "dealII", Lang: "c++",
		Notes: "finite-element analysis: FP matrix kernels with singularity exceptions thrown from the factorization inner loop",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("dealII")
			mm := addMatMulFP(mb, "assemble", 12)

			// factor(ptr, words, iters): FP sweep that throws when a pivot
			// becomes (near-)singular.
			factor := mb.Func("factor", 3)
			ptr, words, iters := factor.Param(0), factor.Param(1), factor.Param(2)
			acc := factor.ConstF(1.0)
			factor.Loop(iters, func(it ir.Reg) {
				idx := factor.Rem(it, words)
				pivot := factor.LoadHF(ptr, 0, idx)
				scaled := factor.FMul(pivot, factor.ConstF(0.9999))
				factor.StoreHF(ptr, 0, idx, scaled)
				// Singularity: the quantized pivot hits a sentinel residue.
				q := factor.F2I(factor.FMul(scaled, factor.ConstF(1<<16)))
				sing := factor.CmpEQ(factor.And(q, factor.ConstI(1023)), factor.ConstI(511))
				factor.If(sing, func() {
					factor.Throw(q)
				}, nil)
				factor.MovTo(acc, factor.FAdd(factor.FMul(acc, factor.ConstF(0.5)), scaled))
			})
			factor.Ret(factor.F2I(factor.FMul(acc, factor.ConstF(4096))))

			main := mb.Func("main", 0)
			grid := main.Alloc(4096 * 8)
			main.LoopN(4096, func(i ir.Reg) {
				main.StoreHF(grid, 0, i, main.FAdd(main.ConstF(1.0), main.FMul(main.I2F(i), main.ConstF(3e-5))))
			})
			macc := main.ConstI(3)
			main.LoopN(n(scale, 60), func(round ir.Reg) {
				invokeSink(main, factor.Index(), macc, grid, main.ConstI(4096), main.ConstI(450))
			})
			mat := main.Alloc(3 * 12 * 12 * 8)
			main.LoopN(2*12*12, func(i ir.Reg) {
				main.StoreHF(mat, 0, i, main.FAdd(main.ConstF(0.02), main.I2F(i)))
			})
			main.Sink(main.Add(macc, main.Call(mm, mat)))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func soplex() Benchmark {
	return Benchmark{
		Name: "soplex", Lang: "c++",
		Notes: "simplex LP solver: pivoting sweeps over a sparse-ish tableau with degenerate-pivot exceptions and heap churn for basis updates",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("soplex")
			churn := addHeapChurn(mb, "basis", []int64{48, 96})

			pivotFn := mb.Func("pivot", 2) // (tableau, col)
			tab, col := pivotFn.Param(0), pivotFn.Param(1)
			best := pivotFn.ConstF(0)
			pivotFn.LoopN(96, func(r ir.Reg) {
				at := pivotFn.Add(pivotFn.Mul(r, pivotFn.ConstI(64)), col)
				v := pivotFn.LoadHF(tab, 0, at)
				isBetter := pivotFn.FCmpLT(best, v)
				pivotFn.If(isBetter, func() { pivotFn.MovTo(best, v) }, nil)
			})
			q := pivotFn.F2I(pivotFn.FMul(best, pivotFn.ConstF(1<<12)))
			degen := pivotFn.CmpEQ(pivotFn.And(q, pivotFn.ConstI(255)), pivotFn.ConstI(137))
			pivotFn.If(degen, func() { pivotFn.Throw(q) }, nil)
			pivotFn.Ret(q)

			main := mb.Func("main", 0)
			tableau := main.Alloc(96 * 64 * 8)
			main.LoopN(96*64, func(i ir.Reg) {
				main.StoreHF(tableau, 0, i, main.FMul(main.I2F(main.And(i, main.ConstI(1023))), main.ConstF(0.017)))
			})
			acc := main.ConstI(7)
			main.LoopN(n(scale, 900), func(it ir.Reg) {
				col := main.Rem(main.Mul(it, main.ConstI(29)), main.ConstI(64))
				invokeSink(main, pivotFn.Index(), acc, tableau, col)
			})
			c := main.Call(churn, main.ConstI(11), main.ConstI(n(scale, 800)))
			main.Sink(main.Add(acc, c))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

func povray() Benchmark {
	return Benchmark{
		Name: "povray", Lang: "c++",
		Notes: "ray tracing: recursive ray bounces with max-depth exceptions, FP vector math, branchy intersection tests",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("povray")
			maze := addBranchMaze(mb, "intersect", 5, 4)

			// trace(x, depth): recursive bounce; throws past depth 12.
			trace := mb.Func("trace", 2)
			x, depth := trace.Param(0), trace.Param(1)
			tooDeep := trace.CmpLE(trace.ConstI(12), depth)
			trace.If(tooDeep, func() {
				trace.Throw(trace.Xor(x, trace.ConstI(0xbeef)))
			}, nil)
			fx := trace.I2F(x)
			// Shading: an unrolled lighting loop, the per-ray FP work that
			// dominates a real tracer.
			lum := trace.FMul(fx, trace.ConstF(0.301))
			for l := 0; l < 10; l++ {
				lum = trace.FAdd(trace.FMul(lum, trace.ConstF(0.83)), trace.FMul(fx, trace.ConstF(0.021+float64(l)*0.003)))
			}
			shade := trace.F2I(trace.FMul(trace.FAdd(lum, trace.ConstF(0.25)), trace.ConstF(64)))
			res := trace.Mov(shade)
			bounce := trace.CmpEQ(trace.And(x, trace.ConstI(3)), trace.ConstI(1))
			trace.If(bounce, func() {
				nx := trace.Xor(trace.Shr(x, trace.ConstI(2)), shade)
				trace.MovTo(res, trace.Add(res, trace.Call(trace.Index(), nx, trace.Add(depth, trace.ConstI(1)))))
			}, nil)
			trace.Ret(res)

			main := mb.Func("main", 0)
			acc := main.ConstI(0xace)
			seed := main.ConstI(5)
			main.LoopN(n(scale, 4000), func(i ir.Reg) {
				main.MovTo(seed, lcgStep(main, seed))
				ray := main.Shr(seed, main.ConstI(17))
				invokeSink(main, trace.Index(), acc, ray, main.ConstI(0))
			})
			m := main.Call(maze, main.ConstI(13), main.ConstI(n(scale, 900)))
			main.Sink(main.Add(acc, m))
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}
