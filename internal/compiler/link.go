package compiler

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/rng"
)

// Image is a linked program: every function and global has a fixed address.
// It is the "one sample from the space of layouts" the paper's introduction
// warns about — and the thing the link-order bias experiment permutes.
type Image struct {
	Module      *ir.Module
	FuncAddrs   []mem.Addr
	GlobalAddrs []mem.Addr
	Order       []int // link order used
}

// DefaultOrder returns the identity link order.
func DefaultOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// RandomOrder returns a random permutation of n function indices — the
// "randomized link order" baseline of Figure 6.
func RandomOrder(n int, r *rng.Marsaglia) []int {
	order := DefaultOrder(n)
	r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// Link lays the module out in the address space: functions in the given link
// order in the text segment, globals in declaration order in the data
// segment. The module must be sized (Compile does this).
func Link(m *ir.Module, order []int, as *mem.AddressSpace) (*Image, error) {
	if len(order) != len(m.Funcs) {
		return nil, fmt.Errorf("compiler: link order has %d entries for %d functions", len(order), len(m.Funcs))
	}
	seen := make([]bool, len(m.Funcs))
	img := &Image{
		Module:      m,
		FuncAddrs:   make([]mem.Addr, len(m.Funcs)),
		GlobalAddrs: make([]mem.Addr, len(m.Globals)),
		Order:       append([]int(nil), order...),
	}
	for _, fi := range order {
		if fi < 0 || fi >= len(m.Funcs) || seen[fi] {
			return nil, fmt.Errorf("compiler: invalid link order entry %d", fi)
		}
		seen[fi] = true
		f := m.Funcs[fi]
		if f.Size == 0 {
			return nil, fmt.Errorf("compiler: function %s has no size; compile first", f.Name)
		}
		img.FuncAddrs[fi] = as.PlaceCode(f.Size, ir.FuncAlign)
	}
	for gi, g := range m.Globals {
		img.GlobalAddrs[gi] = as.PlaceGlobal(g.Size, 8)
	}
	return img, nil
}
