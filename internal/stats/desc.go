package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean; NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance; NaN for fewer than
// two values.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the sample median; NaN for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the p-quantile (type-7 interpolation, the R default).
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 || p < 0 || p > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n == 1 {
		return s[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo])
}

// QQPoint is one point of a quantile-quantile plot.
type QQPoint struct {
	Theoretical float64 // normal quantile
	Observed    float64 // sample quantile
}

// QQNormal returns the points of a normal QQ plot for xs: the i'th order
// statistic against Phi^-1((i - 0.5)/n). Samples are shifted to zero mean
// and scaled by the given reference standard deviation, matching Figure 5's
// presentation (normalize to the re-randomized samples' deviation so slopes
// compare variance).
func QQNormal(xs []float64, refStd float64) []QQPoint {
	n := len(xs)
	if n == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := Mean(s)
	if refStd == 0 || math.IsNaN(refStd) {
		refStd = StdDev(s)
	}
	pts := make([]QQPoint, n)
	for i := range s {
		p := (float64(i) + 0.5) / float64(n)
		pts[i] = QQPoint{
			Theoretical: NormalQuantile(p),
			Observed:    (s[i] - m) / refStd,
		}
	}
	return pts
}

// ranks assigns average ranks (1-based) to the values, handling ties by
// averaging; used by the Wilcoxon tests.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	rk := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			rk[idx[k]] = avg
		}
		i = j + 1
	}
	return rk
}
