package compiler

import (
	"fmt"

	"repro/internal/ir"
)

// FPConstToGlobal implements the STABILIZER compiler transformation of §3.3:
// every non-zero floating-point constant becomes a global variable read
// through a (relocatable) indirect access, because code generation would
// otherwise embed constant-pool references that cannot move with the
// function. Identical constants share one global.
type FPConstToGlobal struct{}

// Name implements Pass.
func (FPConstToGlobal) Name() string { return "fpconst2global" }

// Run implements Pass.
func (FPConstToGlobal) Run(m *ir.Module) {
	pool := map[int64]int32{} // constant bits -> global index
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpConstF || in.Imm == 0 {
					continue // zero stays an immediate (xorps)
				}
				g, ok := pool[in.Imm]
				if !ok {
					g = int32(len(m.Globals))
					name := fmt.Sprintf("__sz_fpconst_%x", uint64(in.Imm))
					m.Globals = append(m.Globals, ir.Global{Name: name, Size: 8, Init: []int64{in.Imm}})
					pool[in.Imm] = g
				}
				*in = ir.Instr{Op: ir.OpLoadGF, Dst: in.Dst, A: ir.NoReg, B: ir.NoReg, Sym: g}
			}
		}
	}
}

// OutlineConversions implements the second §3.3 transformation: int-to-float
// and float-to-int conversions generate implicit global references that
// STABILIZER cannot rewrite, so they are replaced by calls to per-module
// conversion functions, which are the only code the runtime does not
// relocate.
type OutlineConversions struct{}

// Name implements Pass.
func (OutlineConversions) Name() string { return "outlineconv" }

// Run implements Pass.
func (OutlineConversions) Run(m *ir.Module) {
	i2f, f2i := int32(-1), int32(-1)
	needI2F, needF2I := false, false
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				switch b.Instrs[i].Op {
				case ir.OpI2F:
					needI2F = true
				case ir.OpF2I:
					needF2I = true
				}
			}
		}
	}
	if !needI2F && !needF2I {
		return
	}
	if needI2F {
		i2f = addConversionFunc(m, "__sz_i2f", ir.OpI2F)
	}
	if needF2I {
		f2i = addConversionFunc(m, "__sz_f2i", ir.OpF2I)
	}
	for _, f := range m.Funcs {
		if f.NoRelocate {
			continue // don't rewrite the outlines themselves
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpI2F:
					*in = ir.Instr{Op: ir.OpCall, Dst: in.Dst, A: ir.NoReg, B: ir.NoReg, Sym: i2f, Args: []ir.Reg{in.A}}
				case ir.OpF2I:
					*in = ir.Instr{Op: ir.OpCall, Dst: in.Dst, A: ir.NoReg, B: ir.NoReg, Sym: f2i, Args: []ir.Reg{in.A}}
				}
			}
		}
	}
	m.Finalize()
}

// addConversionFunc appends a one-instruction, non-relocatable conversion
// function and returns its index.
func addConversionFunc(m *ir.Module, name string, op ir.Op) int32 {
	f := &ir.Function{Name: name, Params: 1, NumRegs: 2, NoRelocate: true}
	f.Blocks = []*ir.Block{{
		Instrs: []ir.Instr{{Op: op, Dst: 1, A: 0, B: ir.NoReg}},
		Term:   ir.Terminator{Kind: ir.TermRet, Val: 1, Cond: ir.NoReg},
	}}
	m.Funcs = append(m.Funcs, f)
	return int32(len(m.Funcs) - 1)
}
