package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Level is a log severity.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name used in log lines.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int8(l))
}

// ParseLevel parses a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Field is one structured key/value pair on a log line.
type Field struct {
	Key   string
	Value any
}

// F builds a field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger writes leveled structured JSONL: one JSON object per line with
// "level" and "msg" first, then base fields, then per-call fields, in
// insertion order. A nil *Logger discards everything, so call sites need
// no nil checks. Timestamps are off by default — log lines are part of a
// deterministic run's output — and opt-in via WallClock, which adds a
// clearly marked "t_wall_ns_nongolden" field.
type Logger struct {
	mu        *sync.Mutex
	w         io.Writer
	min       Level
	wallClock bool
	base      []Field
}

// NewLogger returns a logger writing to w at the given minimum level.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, min: min}
}

// WallClock returns a logger that stamps each line with the wall-clock
// time in a field marked non-golden. For CLI run logs, not golden tests.
func (l *Logger) WallClock() *Logger {
	if l == nil {
		return nil
	}
	out := *l
	out.wallClock = true
	return &out
}

// With returns a logger that adds fields to every line. The receiver is
// unchanged; the writer and lock are shared.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	out := *l
	out.base = append(append([]Field(nil), l.base...), fields...)
	return &out
}

// Enabled reports whether lines at the given level are emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.min
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

func (l *Logger) log(level Level, msg string, fields []Field) {
	if !l.Enabled(level) {
		return
	}
	var buf bytes.Buffer
	buf.WriteString(`{"level":`)
	writeJSONValue(&buf, level.String())
	buf.WriteString(`,"msg":`)
	writeJSONValue(&buf, msg)
	for _, f := range l.base {
		writeField(&buf, f)
	}
	for _, f := range fields {
		writeField(&buf, f)
	}
	if l.wallClock {
		writeField(&buf, F("t_wall_ns_nongolden", time.Now().UnixNano()))
	}
	buf.WriteString("}\n")
	l.mu.Lock()
	l.w.Write(buf.Bytes())
	l.mu.Unlock()
}

func writeField(buf *bytes.Buffer, f Field) {
	buf.WriteByte(',')
	writeJSONValue(buf, f.Key)
	buf.WriteByte(':')
	writeJSONValue(buf, f.Value)
}

// writeJSONValue marshals one value; unmarshalable values degrade to their
// fmt rendering rather than corrupting the line.
func writeJSONValue(buf *bytes.Buffer, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	buf.Write(b)
}
