package interp_test

import (
	"errors"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/trap"
)

// Two fixture programs whose digests are pinned below. The Arch and Exec
// constants are golden values: they may only change when the digest
// definition itself changes (a new event kind, a different fold), never as a
// side effect of refactoring the interpreter or runtime — that would mean
// the oracle's baseline silently moved.

func digestFixtureA() *ir.Module {
	mb := ir.NewModuleBuilder("digestA")
	mb.GlobalInit("g0", []int64{2, 4})
	f := mb.Func("main", 0)
	s := f.Slot("s0", 8)
	f.StoreS(s, 0, ir.NoReg, f.ConstI(21))
	p := f.Alloc(16)
	f.StoreH(p, 8, ir.NoReg, f.LoadG(0, 0, ir.NoReg))
	f.Sink(f.Add(f.LoadH(p, 8, ir.NoReg), f.LoadS(s, 0, ir.NoReg)))
	f.Free(p)
	f.StoreG(0, 8, ir.NoReg, f.ConstI(9))
	f.Sink(f.LoadG(0, 8, ir.NoReg))
	f.Ret(f.ConstI(5))
	return mb.Module()
}

// digestFixtureB ends in a double free, pinning the EvTrap path.
func digestFixtureB() *ir.Module {
	mb := ir.NewModuleBuilder("digestB")
	f := mb.Func("main", 0)
	p := f.Alloc(32)
	f.StoreH(p, 0, ir.NoReg, f.ConstI(1))
	f.Sink(f.LoadH(p, 0, ir.NoReg))
	f.Free(p)
	f.Free(p)
	f.Ret(ir.NoReg)
	return mb.Module()
}

func TestGoldenDigests(t *testing.T) {
	run := func(m *ir.Module, wantTrap trap.Kind) interp.Digest {
		t.Helper()
		rec := interp.NewRecorder()
		_, err := tryExec(m, func(o *interp.Options) { o.Record = rec })
		if wantTrap == 0 {
			if err != nil {
				t.Fatalf("run: %v", err)
			}
		} else {
			tr := trap.AsTrap(err)
			if tr == nil || tr.Kind != wantTrap {
				t.Fatalf("want %v trap, got: %v", wantTrap, err)
			}
		}
		return rec.Digest()
	}

	a := run(digestFixtureA(), 0)
	b := run(digestFixtureB(), trap.DoubleFree)

	const (
		wantArchA = uint64(0x2acb64f98d411d77)
		wantExecA = uint64(0x1827530a2e992ffa)
		wantArchB = uint64(0x48e8e923a27cf36b)
		wantExecB = uint64(0xdd452755725001c2)
	)
	if a.Arch != wantArchA || a.Exec != wantExecA {
		t.Errorf("fixture A digest (arch=%#x exec=%#x), want (arch=%#x exec=%#x)",
			a.Arch, a.Exec, wantArchA, wantExecA)
	}
	if b.Arch != wantArchB || b.Exec != wantExecB {
		t.Errorf("fixture B digest (arch=%#x exec=%#x), want (arch=%#x exec=%#x)",
			b.Arch, b.Exec, wantArchB, wantExecB)
	}
}

// TestDigestTraceRetention: a tracer retains events in order and reports
// truncation honestly.
func TestDigestTraceRetention(t *testing.T) {
	full := interp.NewTracer(0) // default capacity
	_, err := tryExec(digestFixtureA(), func(o *interp.Options) { o.Record = full })
	if err != nil {
		t.Fatal(err)
	}
	d := full.Digest()
	if len(d.Events) == 0 || d.Truncated {
		t.Fatalf("trace not retained: %d events, truncated=%v", len(d.Events), d.Truncated)
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Step < d.Events[i-1].Step {
			t.Fatalf("trace out of order at %d: %v after %v", i, d.Events[i], d.Events[i-1])
		}
	}
	last := d.Events[len(d.Events)-1]
	if last.Kind != interp.EvExit || last.Val != 5 {
		t.Fatalf("last event %v, want exit with value 5", last)
	}

	tiny := interp.NewTracer(2)
	_, err = tryExec(digestFixtureA(), func(o *interp.Options) { o.Record = tiny })
	if err != nil {
		t.Fatal(err)
	}
	td := tiny.Digest()
	if len(td.Events) != 2 || !td.Truncated {
		t.Fatalf("tiny tracer retained %d events, truncated=%v", len(td.Events), td.Truncated)
	}
	// Hashes must not depend on retention.
	if td.Arch != d.Arch || td.Exec != d.Exec {
		t.Fatal("digest hashes depend on trace capacity")
	}
}

// TestDigestLayoutInvariance: the same module run under different allocators
// yields identical digests — nothing address-shaped leaks into the hash.
func TestDigestUncaughtException(t *testing.T) {
	mb := ir.NewModuleBuilder("boom")
	f := mb.Func("main", 0)
	f.Sink(f.ConstI(3))
	f.Throw(f.ConstI(0xbad))
	m := mb.Module()

	rec := interp.NewRecorder()
	_, err := tryExec(m, func(o *interp.Options) { o.Record = rec })
	var ue *interp.UncaughtError
	if !errors.As(err, &ue) || ue.Value != 0xbad {
		t.Fatalf("want UncaughtError{0xbad}, got %v", err)
	}
	d := rec.Digest()
	if len(d.Events) != 0 {
		t.Fatalf("hash-only recorder retained %d events", len(d.Events))
	}
	if d.Arch == 0 {
		t.Fatal("zero arch digest")
	}
}
