// Package rng provides the pseudo-random number generators used throughout
// the STABILIZER reproduction.
//
// The paper's runtime uses the Marsaglia multiply-with-carry generator
// inherited from DieHard; we implement the same recurrence here. An
// lrand48-style 48-bit linear congruential generator is provided as the
// libc comparator for the NIST randomness experiments (§3.2 of the paper).
// All generators are deterministic given a seed so that every experiment in
// this repository is reproducible.
package rng

import "math"

// Marsaglia is the multiply-with-carry pseudo-random number generator used
// by DieHard and by the STABILIZER runtime. It combines two MWC sequences
// and has a period long enough for any experiment in this repository.
//
// The zero value is not useful; construct with NewMarsaglia.
type Marsaglia struct {
	z uint32
	w uint32
}

// NewMarsaglia returns a Marsaglia generator seeded from seed. The two
// internal state words are derived from the seed with a SplitMix-style
// scrambler so that nearby seeds produce unrelated streams.
func NewMarsaglia(seed uint64) *Marsaglia {
	s := splitMix(seed)
	z := uint32(s)
	w := uint32(s >> 32)
	// The MWC recurrence degenerates if a state word is 0 or the modulus
	// complement; nudge away from the absorbing states.
	if z == 0 || z == 0x9068ffff {
		z = 362436069
	}
	if w == 0 || w == 0x464fffff {
		w = 521288629
	}
	return &Marsaglia{z: z, w: w}
}

// Next returns the next 32 random bits.
func (m *Marsaglia) Next() uint32 {
	m.z = 36969*(m.z&65535) + (m.z >> 16)
	m.w = 18000*(m.w&65535) + (m.w >> 16)
	return (m.z << 16) + m.w
}

// Next64 returns the next 64 random bits by concatenating two draws.
func (m *Marsaglia) Next64() uint64 {
	hi := uint64(m.Next())
	lo := uint64(m.Next())
	return hi<<32 | lo
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Rejection sampling removes modulo bias.
func (m *Marsaglia) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint32(n)
	// Largest multiple of bound that fits in 32 bits.
	limit := ^uint32(0) - ^uint32(0)%bound
	for {
		v := m.Next()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Uint64n returns a uniformly distributed integer in [0, n). It panics if
// n == 0.
func (m *Marsaglia) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	limit := ^uint64(0) - ^uint64(0)%n
	for {
		v := m.Next64()
		if v < limit {
			return v % n
		}
	}
}

// Float64 returns a uniformly distributed float in [0, 1).
func (m *Marsaglia) Float64() float64 {
	return float64(m.Next64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normally distributed value using the
// Marsaglia polar method (fittingly).
func (m *Marsaglia) NormFloat64() float64 {
	for {
		u := 2*m.Float64() - 1
		v := 2*m.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Split returns a new generator whose stream is statistically independent of
// the receiver's. It is used to hand independent streams to subsystems
// (heap, code layout, stack pads) so that enabling one randomization does not
// perturb the draws seen by another — a property §2.5 of the paper relies on
// when randomizations are enabled independently.
func (m *Marsaglia) Split() *Marsaglia {
	return NewMarsaglia(m.Next64())
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap, exactly
// as the STABILIZER shuffling layer does for its startup fill.
func (m *Marsaglia) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := m.Intn(i + 1)
		swap(i, j)
	}
}

// Lrand48 mimics glibc's lrand48: a 48-bit linear congruential generator
// returning 31-bit values. It is the "libc" comparator stream in the
// NIST randomness table of §3.2.
type Lrand48 struct {
	state uint64
}

// NewLrand48 returns an lrand48-style generator seeded as srand48 would:
// the high 32 bits from the seed, low 16 bits set to 0x330e.
func NewLrand48(seed uint32) *Lrand48 {
	return &Lrand48{state: uint64(seed)<<16 | 0x330e}
}

const (
	lcgA    = 0x5deece66d
	lcgC    = 0xb
	lcgMask = (1 << 48) - 1
)

// Next returns the next value in [0, 2^31).
func (l *Lrand48) Next() uint32 {
	l.state = (l.state*lcgA + lcgC) & lcgMask
	return uint32(l.state >> 17)
}

// splitMix is the SplitMix64 scrambler, used only for seed derivation.
func splitMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
