package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestTwoWayANOVADetectsMainEffects(t *testing.T) {
	r := rng.NewMarsaglia(1)
	// 4 benchmarks × 2 treatments × 10 replicates: benchmark effect huge,
	// treatment effect present, no interaction.
	data := make([][][]float64, 4)
	for i := range data {
		base := float64(i) * 10
		data[i] = make([][]float64, 2)
		for j := range data[i] {
			treat := float64(j) * 0.8
			cell := make([]float64, 10)
			for k := range cell {
				cell[k] = base + treat + 0.3*r.NormFloat64()
			}
			data[i][j] = cell
		}
	}
	res := TwoWayANOVA(data)
	if res.PA >= 0.001 {
		t.Fatalf("benchmark main effect missed: p=%v", res.PA)
	}
	if res.PB >= 0.01 {
		t.Fatalf("treatment main effect missed: p=%v", res.PB)
	}
	if res.PInteraction < 0.05 {
		t.Fatalf("phantom interaction: p=%v", res.PInteraction)
	}
	if res.DFA != 3 || res.DFB != 1 || res.DFInteraction != 3 || res.DFError != 72 {
		t.Fatalf("df wrong: %+v", res)
	}
}

func TestTwoWayANOVADetectsInteraction(t *testing.T) {
	r := rng.NewMarsaglia(2)
	// The treatment helps benchmark 0 and hurts benchmark 1: pure
	// interaction, no average treatment effect.
	data := make([][][]float64, 2)
	for i := range data {
		data[i] = make([][]float64, 2)
		for j := range data[i] {
			sign := 1.0
			if i == 1 {
				sign = -1
			}
			cell := make([]float64, 12)
			for k := range cell {
				cell[k] = 5 + sign*float64(j) + 0.2*r.NormFloat64()
			}
			data[i][j] = cell
		}
	}
	res := TwoWayANOVA(data)
	if res.PInteraction >= 0.001 {
		t.Fatalf("interaction missed: p=%v", res.PInteraction)
	}
	if res.PB < 0.05 {
		t.Fatalf("phantom average treatment effect: p=%v", res.PB)
	}
}

func TestTwoWayANOVARejectsBadShapes(t *testing.T) {
	if !math.IsNaN(TwoWayANOVA(nil).FA) {
		t.Fatal("nil accepted")
	}
	ragged := [][][]float64{
		{{1, 2}, {3, 4}},
		{{1, 2}}, // missing a cell
	}
	if !math.IsNaN(TwoWayANOVA(ragged).FA) {
		t.Fatal("ragged design accepted")
	}
	single := [][][]float64{
		{{1}, {2}},
		{{3}, {4}},
	}
	if !math.IsNaN(TwoWayANOVA(single).FA) {
		t.Fatal("single replicate accepted (no error term)")
	}
}

func TestTwoWayANOVANullCalibration(t *testing.T) {
	r := rng.NewMarsaglia(3)
	rejections := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		data := make([][][]float64, 3)
		for i := range data {
			data[i] = make([][]float64, 2)
			for j := range data[i] {
				cell := make([]float64, 6)
				for k := range cell {
					cell[k] = r.NormFloat64()
				}
				data[i][j] = cell
			}
		}
		if TwoWayANOVA(data).PB < 0.05 {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate < 0.02 || rate > 0.09 {
		t.Fatalf("two-way ANOVA type-I rate %.3f far from 0.05", rate)
	}
}

func TestTQuantileInvertsCDF(t *testing.T) {
	for _, df := range []float64{3, 10, 29} {
		for _, p := range []float64{0.05, 0.5, 0.9, 0.975} {
			q := tQuantile(p, df)
			if math.Abs(StudentTCDF(q, df)-p) > 1e-9 {
				t.Fatalf("tQuantile(%v, %v) = %v does not invert", p, df, q)
			}
		}
	}
	// Known value: t(0.975, 29) ≈ 2.045.
	if q := tQuantile(0.975, 29); math.Abs(q-2.045) > 5e-3 {
		t.Fatalf("t(0.975,29) = %v", q)
	}
}

func TestMeanCICoverage(t *testing.T) {
	r := rng.NewMarsaglia(4)
	covered := 0
	const trials = 1000
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 12)
		for i := range xs {
			xs[i] = 3 + 2*r.NormFloat64()
		}
		lo, hi := MeanCI(xs, 0.05)
		if lo <= 3 && 3 <= hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Fatalf("95%% CI covered the true mean %.1f%% of the time", rate*100)
	}
}

func TestDiffCICoversTrueDifference(t *testing.T) {
	r := rng.NewMarsaglia(5)
	covered := 0
	const trials = 1000
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 15)
		ys := make([]float64, 15)
		for i := range xs {
			xs[i] = 10 + r.NormFloat64()
			ys[i] = 9 + r.NormFloat64() // true difference 1
		}
		lo, hi := DiffCI(xs, ys, 0.05)
		if lo <= 1 && 1 <= hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Fatalf("95%% diff CI covered truth %.1f%% of the time", rate*100)
	}
}
