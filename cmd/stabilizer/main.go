// Command stabilizer runs one benchmark under a chosen randomization
// configuration and reports timing, machine counters, and runtime activity.
//
// Usage:
//
//	stabilizer -bench astar [-code] [-stack] [-heap] [-rerand]
//	           [-interval 25000] [-runs 5] [-seed 1] [-O 2] [-scale 1]
//	           [-noise 0] [-j n] [-compare]
//	stabilizer verify [-bench name] [-seeds 3] [-O 0,1,2,3]
//	           [-allocs segregated,tlsf,diehard,shuffle] [-scale 0.1] [-j n]
//	stabilizer prof -bench astar [-runs n] [-seed n] [-top n]
//	           [-folded out.folded] [-trace out.json] [-code] [-all] ...
//
// With -compare, it also runs natively and prints the overhead. The verify
// subcommand runs the semantic-invariance oracle over the suite and the
// example programs, exiting 1 with a divergence report if any randomization
// or optimization cell changes observable behaviour. The prof subcommand is
// the layout-attribution profiler (same engine as cmd/szprof): per-function
// counter attribution, folded stacks, a Perfetto flame chart, and the
// cache-set conflict report.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/interp"
	"repro/internal/profcli"
	"repro/internal/spec"
	"repro/internal/stats"
)

func main() {
	// Subcommand dispatch: `stabilizer verify` runs the semantic-invariance
	// oracle (see verify.go), `stabilizer prof` the layout-attribution
	// profiler; everything else is the original flag CLI.
	if len(os.Args) > 1 && os.Args[1] == "verify" {
		os.Exit(runVerify(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "prof" {
		os.Exit(profcli.Main(os.Args[2:], os.Stdout, os.Stderr))
	}

	bench := flag.String("bench", "", "benchmark name")
	code := flag.Bool("code", false, "randomize code")
	stack := flag.Bool("stack", false, "randomize stack")
	heapR := flag.Bool("heap", false, "randomize heap")
	all := flag.Bool("all", false, "shorthand for -code -stack -heap -rerand")
	rerand := flag.Bool("rerand", false, "re-randomize periodically")
	interval := flag.Uint64("interval", 25_000, "re-randomization interval (cycles)")
	runs := flag.Int("runs", 5, "number of runs")
	seed := flag.Uint64("seed", 1, "base seed")
	level := flag.Int("O", 2, "optimization level")
	scale := flag.Float64("scale", 1.0, "workload scale")
	noise := flag.Float64("noise", 0, "relative stddev of simulated system noise: 0 = default (0.25%), negative = disabled, max 1 (values above 1 are rejected)")
	jobs := flag.Int("j", 0, "parallel workers for the runs (0 = $SZ_PARALLEL or GOMAXPROCS, 1 = sequential); identical results at any value")
	compare := flag.Bool("compare", false, "also run natively and report overhead")
	counters := flag.Bool("counters", false, "print perf-stat-style machine counters for the last run")
	profile := flag.Bool("profile", false, "print per-function cycle attribution for the last run")
	engine := flag.String("engine", "", "interpreter engine: compiled (default) or walk")
	flag.Parse()

	experiment.SetParallelism(*jobs)

	b, ok := spec.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "stabilizer: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	optLevel, err := compiler.ParseLevel(*level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stabilizer: %v\n", err)
		os.Exit(2)
	}
	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stabilizer: %v\n", err)
		os.Exit(2)
	}
	if *all {
		*code, *stack, *heapR, *rerand = true, true, true, true
	}

	opts := &core.Options{
		Code: *code, Stack: *stack, Heap: *heapR,
		Rerandomize: *rerand, Interval: *interval,
	}
	cfg := experiment.Config{Scale: *scale, Level: optLevel, Noise: *noise, Profile: *profile, Engine: eng}
	if *code || *stack || *heapR {
		cfg.Stabilizer = opts
	}
	cc, err := experiment.CompileBench(b, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stabilizer: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s %s (-O%d), randomizations: %s, rerand: %v\n",
		b.Name, b.Lang, *level, opts.EnabledString(), *rerand)
	ctx, stop := experiment.NotifyShutdown(context.Background(), os.Stderr)
	defer stop()
	// Collect shards the seed range across -j workers; per-run results come
	// back in seed order, identical to a sequential loop.
	set, err := cc.Collect(ctx, *runs, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stabilizer: %v\n", err)
		os.Exit(1)
	}
	for i, r := range set.Results {
		fmt.Printf("  run %2d: %.6fs  (%d instructions, %d cycles, output %#x)\n",
			i, r.Seconds, r.Instructions, r.Cycles, r.Output)
	}
	samples := set.Seconds
	var last experiment.RunResult
	if len(set.Results) > 0 {
		last = set.Results[len(set.Results)-1]
	}
	if cfg.Stabilizer != nil {
		fmt.Printf("runtime: %d relocations, %d re-randomizations, %d adaptive triggers (last run)\n",
			last.Relocations, last.Rerands, last.AdaptiveTriggers)
	}
	if *counters {
		fmt.Print(last.Counters)
	}
	if *profile && last.Profile != nil {
		type entry struct {
			name   string
			cycles uint64
		}
		entries := make([]entry, 0, len(last.Profile))
		for fi, cyc := range last.Profile {
			if cyc > 0 {
				entries = append(entries, entry{cc.Module.Funcs[fi].Name, cyc})
			}
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].cycles > entries[j].cycles })
		fmt.Println("hot functions (exclusive cycles, last run):")
		for i, e := range entries {
			if i >= 12 {
				fmt.Printf("  ... and %d more\n", len(entries)-i)
				break
			}
			fmt.Printf("  %10d  %5.1f%%  %s\n", e.cycles,
				float64(e.cycles)/float64(last.Cycles)*100, e.name)
		}
	}
	if len(samples) >= 2 {
		fmt.Printf("mean %.6fs  stddev %.6fs  cv %.2f%%\n",
			stats.Mean(samples), stats.StdDev(samples),
			stats.StdDev(samples)/stats.Mean(samples)*100)
	} else {
		fmt.Printf("mean %.6fs\n", stats.Mean(samples))
	}

	if *compare {
		nat, err := experiment.CompileBench(b, experiment.Config{Scale: *scale, Level: optLevel, Engine: eng})
		if err != nil {
			fmt.Fprintf(os.Stderr, "stabilizer: %v\n", err)
			os.Exit(1)
		}
		nss, err := nat.Collect(ctx, *runs, *seed+1000)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stabilizer: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("native mean %.6fs -> overhead %+.1f%%\n",
			stats.Mean(nss.Seconds), (stats.Mean(samples)/stats.Mean(nss.Seconds)-1)*100)
	}
}
