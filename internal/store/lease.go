package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultinject"
)

// Coordination is the store's coordinator-election area:
// <dir>/coordination/, beside blocks/ and campaigns/. Two `szfarm serve`
// processes pointing at the same store race for a single lease here; the
// winner is the active coordinator, the loser polls as a standby.
//
// The protocol needs no server, only the store's filesystem:
//
//   - epoch-<n>.claim files, created with O_CREATE|O_EXCL, make epoch
//     acquisition mutually exclusive: exactly one process can create the
//     file for epoch n, so the epoch sequence is a monotonic fencing token.
//     The highest claim on disk names the authoritative epoch and holder.
//   - lease.json is the holder's heartbeat document ({epoch, holder,
//     expires}), rewritten atomically on every renewal. It is only
//     meaningful while its epoch matches the highest claim — a deposed
//     holder's late renewal write carries a stale epoch and is ignored, so
//     the renewal race cannot resurrect a stolen lease.
//
// Safety does not rest on clocks: expiry only gates when a standby may
// CLAIM the next epoch; whether a coordinator may still WRITE is decided by
// comparing its fencing epoch against the highest claim (LeaseHandle.Check),
// which is exact. A partitioned or paused coordinator whose lease was taken
// over finds every subsequent journal/store write rejected.
type Coordination struct {
	dir string
}

// LeaseSchema versions lease.json and the claim-file payloads.
const LeaseSchema = 1

// claimKeep is how many superseded claim files acquisition leaves behind
// for post-mortems before pruning older ones.
const claimKeep = 8

// coordLeaseDoc is the on-disk lease.json heartbeat document.
type coordLeaseDoc struct {
	Schema  int    `json:"schema"`
	Epoch   uint64 `json:"epoch"`
	Holder  string `json:"holder"`
	Expires int64  `json:"expires_unix_nano"`
}

// claimDoc is an epoch-claim file's payload: who claimed the epoch and the
// TTL their first heartbeat will honor, so observers can treat a claim whose
// lease.json has not landed yet as held rather than free.
type claimDoc struct {
	Schema   int           `json:"schema"`
	Holder   string        `json:"holder"`
	Acquired int64         `json:"acquired_unix_nano"`
	TTL      time.Duration `json:"ttl_nano"`
}

// LeaseInfo is an observation of the coordination area, for standby
// polling, /v1/coordinator reporting, and the gc guard.
type LeaseInfo struct {
	// Held reports whether some coordinator currently holds the lease
	// (heartbeat unexpired, or a fresh claim whose first heartbeat is
	// still pending).
	Held bool `json:"held"`
	// Epoch is the highest claimed epoch (0 when the area is empty).
	Epoch uint64 `json:"epoch"`
	// Holder identifies the claimant of that epoch.
	Holder string `json:"holder,omitempty"`
	// ExpiresIn is how long the current heartbeat has left (0 when not
	// held or unknown).
	ExpiresIn time.Duration `json:"expires_in,omitempty"`
}

// FencedError rejects a write from a coordinator whose fencing epoch has
// been superseded: another process claimed a newer epoch, so this one is
// deposed and must stop writing.
type FencedError struct {
	// OurEpoch is the deposed coordinator's fencing epoch.
	OurEpoch uint64
	// Epoch and Holder name the superseding claim.
	Epoch  uint64
	Holder string
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("store: coordination fencing: epoch %d superseded by epoch %d (held by %s); this coordinator is deposed",
		e.OurEpoch, e.Epoch, e.Holder)
}

// Coordination returns the store's coordination area. The directory is not
// created until an acquisition attempt, so observing (or GC-guarding) a
// store never mutates it.
func (s *Store) Coordination() *Coordination {
	return &Coordination{dir: filepath.Join(s.dir, "coordination")}
}

// Dir returns the coordination area's directory (for log lines and CI
// artifact uploads).
func (c *Coordination) Dir() string { return c.dir }

func (c *Coordination) leasePath() string { return filepath.Join(c.dir, "lease.json") }

func (c *Coordination) claimPath(epoch uint64) string {
	return filepath.Join(c.dir, fmt.Sprintf("epoch-%016d.claim", epoch))
}

// maxClaim scans the claim files and returns the highest epoch and its
// payload. A missing directory is epoch 0 (never claimed).
func (c *Coordination) maxClaim() (uint64, claimDoc, error) {
	entries, err := os.ReadDir(c.dir)
	if os.IsNotExist(err) {
		return 0, claimDoc{}, nil
	}
	if err != nil {
		return 0, claimDoc{}, fmt.Errorf("store: coordination: %w", err)
	}
	var max uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "epoch-") || !strings.HasSuffix(name, ".claim") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "epoch-"), ".claim"), 10, 64)
		if err != nil || n == 0 {
			continue
		}
		if n > max {
			max = n
		}
	}
	if max == 0 {
		return 0, claimDoc{}, nil
	}
	var doc claimDoc
	if buf, err := os.ReadFile(c.claimPath(max)); err == nil {
		// A torn or foreign claim payload degrades to an anonymous claim:
		// the epoch number (the fencing token) lives in the file name and
		// stays authoritative.
		_ = json.Unmarshal(buf, &doc)
	}
	return max, doc, nil
}

// readLease reads lease.json; a missing or torn document returns ok=false
// (the claim files remain authoritative for the epoch).
func (c *Coordination) readLease() (coordLeaseDoc, bool) {
	buf, err := os.ReadFile(c.leasePath())
	if err != nil {
		return coordLeaseDoc{}, false
	}
	var doc coordLeaseDoc
	if json.Unmarshal(buf, &doc) != nil || doc.Schema != LeaseSchema {
		return coordLeaseDoc{}, false
	}
	return doc, true
}

// Observe reports the coordination area's current state without mutating
// it: the highest claimed epoch, its holder, and whether the lease is live
// at `now` (heartbeat unexpired, or claim younger than its TTL while the
// first heartbeat is still in flight).
func (c *Coordination) Observe(now time.Time) (LeaseInfo, error) {
	epoch, claim, err := c.maxClaim()
	if err != nil {
		return LeaseInfo{}, err
	}
	if epoch == 0 {
		return LeaseInfo{}, nil
	}
	info := LeaseInfo{Epoch: epoch, Holder: claim.Holder}
	if doc, ok := c.readLease(); ok && doc.Epoch == epoch {
		info.Holder = doc.Holder
		if exp := time.Unix(0, doc.Expires); exp.After(now) {
			info.Held = true
			info.ExpiresIn = exp.Sub(now)
		}
		return info, nil
	}
	// No (current-epoch) heartbeat yet: the claim itself holds the lease
	// for one TTL from its acquisition, covering the window between the
	// O_EXCL claim and the first lease.json write.
	if claim.TTL > 0 {
		if exp := time.Unix(0, claim.Acquired).Add(claim.TTL); exp.After(now) {
			info.Held = true
			info.ExpiresIn = exp.Sub(now)
		}
	}
	return info, nil
}

// TryAcquire attempts to take the coordination lease as `holder`. When the
// current lease is live, it returns (nil, info) — the caller is a standby
// and should poll. When the lease is free (never claimed, expired, or
// released), it claims the next epoch with an O_CREATE|O_EXCL claim file —
// losing that race to a concurrent standby returns (nil, info) too — and
// writes the first heartbeat. The returned handle carries the fencing
// epoch for Check/Renew/Release.
func (c *Coordination) TryAcquire(holder string, ttl time.Duration, now time.Time) (*LeaseHandle, LeaseInfo, error) {
	if holder == "" {
		return nil, LeaseInfo{}, fmt.Errorf("store: coordination: empty holder identity")
	}
	if ttl <= 0 {
		return nil, LeaseInfo{}, fmt.Errorf("store: coordination: non-positive ttl %s", ttl)
	}
	if err := faultinject.Hit(context.Background(), faultinject.SiteLeaseAcquire); err != nil {
		return nil, LeaseInfo{}, err
	}
	info, err := c.Observe(now)
	if err != nil {
		return nil, info, err
	}
	if info.Held {
		return nil, info, nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return nil, info, fmt.Errorf("store: coordination: %w", err)
	}
	epoch := info.Epoch + 1
	claim, err := json.Marshal(claimDoc{Schema: LeaseSchema, Holder: holder, Acquired: now.UnixNano(), TTL: ttl})
	if err != nil {
		return nil, info, err
	}
	f, err := os.OpenFile(c.claimPath(epoch), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			// A concurrent standby claimed this epoch first; report what we
			// now observe and keep polling.
			info, oerr := c.Observe(now)
			return nil, info, oerr
		}
		return nil, info, fmt.Errorf("store: coordination: claiming epoch %d: %w", epoch, err)
	}
	_, werr := f.Write(claim)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		// The claim file exists (the epoch is ours) but its payload may be
		// torn; the heartbeat below still establishes holder and expiry.
		werr = nil
	}
	h := &LeaseHandle{coord: c, epoch: epoch, holder: holder}
	if err := h.writeHeartbeat(ttl, now); err != nil {
		return nil, info, err
	}
	c.pruneClaims(epoch)
	held := LeaseInfo{Held: true, Epoch: epoch, Holder: holder, ExpiresIn: ttl}
	return h, held, nil
}

// pruneClaims removes superseded claim files older than the last claimKeep
// epochs. Best-effort hygiene: failures are ignored (a stale claim file
// below the maximum changes nothing).
func (c *Coordination) pruneClaims(current uint64) {
	if current <= claimKeep {
		return
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "epoch-") || !strings.HasSuffix(name, ".claim") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "epoch-"), ".claim"), 10, 64)
		if err == nil && n <= current-claimKeep {
			os.Remove(filepath.Join(c.dir, name))
		}
	}
}

// LeaseHandle is a held coordination lease: the fencing epoch plus the
// operations a coordinator performs with it. The zero value is not valid;
// handles come from TryAcquire.
type LeaseHandle struct {
	coord  *Coordination
	epoch  uint64
	holder string
}

// Epoch returns the handle's fencing epoch.
func (h *LeaseHandle) Epoch() uint64 { return h.epoch }

// Holder returns the identity the lease was acquired under.
func (h *LeaseHandle) Holder() string { return h.holder }

// Check verifies the handle still names the authoritative epoch; a
// *FencedError means another coordinator claimed a newer epoch and every
// write guarded by this check must be refused. The comparison is against
// the claim files, not the heartbeat document, so it cannot be fooled by
// this holder's own stale renewal racing a takeover. The lease-steal fault
// site fires before the read, letting chaos tests depose the holder at the
// worst possible moment.
func (h *LeaseHandle) Check() error {
	if h == nil {
		return nil
	}
	if err := faultinject.Hit(context.Background(), faultinject.SiteLeaseSteal); err != nil {
		return err
	}
	epoch, claim, err := h.coord.maxClaim()
	if err != nil {
		return err
	}
	if epoch != h.epoch {
		return &FencedError{OurEpoch: h.epoch, Epoch: epoch, Holder: claim.Holder}
	}
	return nil
}

// Renew extends the heartbeat by ttl from now. It first re-verifies the
// fencing epoch — a holder that was deposed while paused (GC stall, VM
// migration, clock skew) learns it here and must stop. The lease-renew
// fault site lets tests delay a renewal past expiry to simulate exactly
// that skew.
func (h *LeaseHandle) Renew(ttl time.Duration, now time.Time) error {
	if err := faultinject.Hit(context.Background(), faultinject.SiteLeaseRenew); err != nil {
		return err
	}
	if err := h.Check(); err != nil {
		return err
	}
	return h.writeHeartbeat(ttl, now)
}

// Release gives the lease up immediately: the heartbeat is rewritten
// already-expired, so a standby's next poll can claim the successor epoch
// without waiting out the TTL. Releasing a superseded handle is a no-op.
func (h *LeaseHandle) Release(now time.Time) error {
	if err := h.Check(); err != nil {
		var fe *FencedError
		if ok := asFenced(err, &fe); ok {
			return nil
		}
		return err
	}
	return h.writeHeartbeat(-time.Second, now)
}

func asFenced(err error, target **FencedError) bool {
	fe, ok := err.(*FencedError)
	if ok {
		*target = fe
	}
	return ok
}

// writeHeartbeat atomically rewrites lease.json for this handle's epoch.
func (h *LeaseHandle) writeHeartbeat(ttl time.Duration, now time.Time) error {
	buf, err := json.MarshalIndent(coordLeaseDoc{
		Schema: LeaseSchema, Epoch: h.epoch, Holder: h.holder,
		Expires: now.Add(ttl).UnixNano(),
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := atomicWrite(h.coord.leasePath(), append(buf, '\n')); err != nil {
		return fmt.Errorf("store: coordination heartbeat: %w", err)
	}
	return nil
}
