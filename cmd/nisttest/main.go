// Command nisttest runs the NIST SP 800-22 subset on pseudo-random and
// allocator address streams — the §3.2 randomness evaluation, standalone.
//
// Usage:
//
//	nisttest [-values 12000] [-seed 2013] [-lo 6] [-hi 13] [-n 1,16,64,256]
//	         [-j n]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiment"
)

func main() {
	values := flag.Int("values", 12000, "values per stream")
	seed := flag.Uint64("seed", 2013, "seed")
	lo := flag.Int("lo", 6, "lowest extracted address bit")
	hi := flag.Int("hi", 13, "highest extracted address bit")
	ns := flag.String("n", "1,16,256", "shuffling-layer depths to test")
	jobs := flag.Int("j", 0, "parallel workers for the table rows (0 = $SZ_PARALLEL or GOMAXPROCS, 1 = sequential); identical results at any value")
	flag.Parse()

	experiment.SetParallelism(*jobs)

	var depths []int
	for _, s := range strings.Split(*ns, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "nisttest: bad -n entry %q\n", s)
			os.Exit(2)
		}
		depths = append(depths, v)
	}

	ctx, stop := experiment.NotifyShutdown(context.Background(), os.Stderr)
	defer stop()
	r, err := experiment.NIST(ctx, experiment.NISTOptions{
		Values: *values, Seed: *seed, LoBit: *lo, HiBit: *hi, ShuffleN: depths,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nisttest: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(r.Table())
}
