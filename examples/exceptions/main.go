// Exceptions: the paper omitted five SPEC C++ benchmarks "because they use
// exceptions, which STABILIZER does not yet support" and lists exception
// support as planned work (§5). This reproduction implements it; here the
// five benchmarks run under full randomization, their exception traffic is
// visible in the unwinding costs, and their outputs stay layout-invariant.
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/spec"
	"repro/internal/stats"
)

func main() {
	fmt.Println("The five C++ benchmarks the paper could not run:")
	fmt.Println()

	st := core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Interval: 25_000}
	for _, b := range spec.ExtendedSuite() {
		nat, err := experiment.CompileBench(b, experiment.Config{Scale: 0.5, Level: compiler.O2})
		if err != nil {
			log.Fatal(err)
		}
		ns, err := nat.Samples(8, 10)
		if err != nil {
			log.Fatal(err)
		}
		stab, err := experiment.CompileBench(b, experiment.Config{Scale: 0.5, Level: compiler.O2, Stabilizer: &st})
		if err != nil {
			log.Fatal(err)
		}
		ss, err := stab.Samples(8, 20)
		if err != nil {
			log.Fatal(err)
		}

		// Outputs must match between native and stabilized runs.
		rn, _ := nat.Run(1)
		rs, _ := stab.Run(2)
		match := "outputs match"
		if rn.Output != rs.Output {
			match = "OUTPUT MISMATCH (bug!)"
		}
		fmt.Printf("%-10s native %.6fs, stabilized %.6fs (%+.1f%% overhead), %s\n",
			b.Name, stats.Mean(ns), stats.Mean(ss),
			(stats.Mean(ss)/stats.Mean(ns)-1)*100, match)
	}

	fmt.Println()
	fmt.Println("Every benchmark throws and catches across frames while the runtime")
	fmt.Println("relocates functions, pads stacks, and shuffles the heap under it.")
}
