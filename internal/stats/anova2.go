package stats

import "math"

// TwoWayANOVAResult partitions variance for a benchmark × treatment design
// with replication: the "total variance ... broken down by source: the
// fraction due to differences between benchmarks, the impact of
// optimizations, interactions between the independent factors, and random
// variation between runs" of §6.1.
type TwoWayANOVAResult struct {
	// Main effect of factor A (benchmarks) and factor B (treatments), and
	// their interaction; each with its F statistic and p-value.
	FA, FB, FInteraction float64
	PA, PB, PInteraction float64

	DFA, DFB, DFInteraction, DFError float64
	SSA, SSB, SSInteraction, SSError float64
}

// TwoWayANOVA runs a balanced two-way fixed-effects ANOVA.
//
// data[a][b] holds the replicated observations of factor level a (e.g. a
// benchmark) under factor level b (e.g. an optimization level); every cell
// must have the same number ≥2 of replicates.
func TwoWayANOVA(data [][][]float64) TwoWayANOVAResult {
	bad := TwoWayANOVAResult{
		FA: math.NaN(), FB: math.NaN(), FInteraction: math.NaN(),
		PA: math.NaN(), PB: math.NaN(), PInteraction: math.NaN(),
	}
	a := len(data)
	if a < 2 {
		return bad
	}
	b := len(data[0])
	if b < 2 {
		return bad
	}
	n := len(data[0][0])
	if n < 2 {
		return bad
	}
	for _, row := range data {
		if len(row) != b {
			return bad
		}
		for _, cell := range row {
			if len(cell) != n {
				return bad
			}
		}
	}
	fa, fb, fn := float64(a), float64(b), float64(n)

	grand := 0.0
	for _, row := range data {
		for _, cell := range row {
			for _, v := range cell {
				grand += v
			}
		}
	}
	grand /= fa * fb * fn

	meanA := make([]float64, a)
	meanB := make([]float64, b)
	cellMean := make([][]float64, a)
	for i, row := range data {
		cellMean[i] = make([]float64, b)
		for j, cell := range row {
			s := 0.0
			for _, v := range cell {
				s += v
			}
			cellMean[i][j] = s / fn
			meanA[i] += s
			meanB[j] += s
		}
		meanA[i] /= fb * fn
	}
	for j := range meanB {
		meanB[j] /= fa * fn
	}

	var ssA, ssB, ssAB, ssE float64
	for i := range meanA {
		d := meanA[i] - grand
		ssA += fb * fn * d * d
	}
	for j := range meanB {
		d := meanB[j] - grand
		ssB += fa * fn * d * d
	}
	for i, row := range data {
		for j, cell := range row {
			di := cellMean[i][j] - meanA[i] - meanB[j] + grand
			ssAB += fn * di * di
			for _, v := range cell {
				dv := v - cellMean[i][j]
				ssE += dv * dv
			}
		}
	}

	dfA := fa - 1
	dfB := fb - 1
	dfAB := dfA * dfB
	dfE := fa * fb * (fn - 1)
	msE := ssE / dfE

	res := TwoWayANOVAResult{
		DFA: dfA, DFB: dfB, DFInteraction: dfAB, DFError: dfE,
		SSA: ssA, SSB: ssB, SSInteraction: ssAB, SSError: ssE,
	}
	if msE == 0 {
		res.FA, res.FB, res.FInteraction = math.Inf(1), math.Inf(1), math.Inf(1)
		res.PA, res.PB, res.PInteraction = 0, 0, 0
		return res
	}
	res.FA = (ssA / dfA) / msE
	res.FB = (ssB / dfB) / msE
	res.FInteraction = (ssAB / dfAB) / msE
	res.PA = 1 - FCDF(res.FA, dfA, dfE)
	res.PB = 1 - FCDF(res.FB, dfB, dfE)
	res.PInteraction = 1 - FCDF(res.FInteraction, dfAB, dfE)
	return res
}

// MeanCI returns the two-sided (1-alpha) t-based confidence interval for the
// mean of xs.
func MeanCI(xs []float64, alpha float64) (lo, hi float64) {
	n := float64(len(xs))
	if n < 2 {
		return math.NaN(), math.NaN()
	}
	m := Mean(xs)
	se := StdDev(xs) / math.Sqrt(n)
	t := tQuantile(1-alpha/2, n-1)
	return m - t*se, m + t*se
}

// DiffCI returns the Welch two-sided (1-alpha) confidence interval for
// mean(xs) - mean(ys).
func DiffCI(xs, ys []float64, alpha float64) (lo, hi float64) {
	nx, ny := float64(len(xs)), float64(len(ys))
	if nx < 2 || ny < 2 {
		return math.NaN(), math.NaN()
	}
	d := Mean(xs) - Mean(ys)
	vx, vy := Variance(xs), Variance(ys)
	se2 := vx/nx + vy/ny
	if se2 == 0 {
		return d, d
	}
	df := se2 * se2 / ((vx*vx)/(nx*nx*(nx-1)) + (vy*vy)/(ny*ny*(ny-1)))
	t := tQuantile(1-alpha/2, df)
	se := math.Sqrt(se2)
	return d - t*se, d + t*se
}

// tQuantile inverts StudentTCDF by bisection (monotone, well-conditioned).
func tQuantile(p, df float64) float64 {
	if p <= 0 || p >= 1 || df <= 0 {
		return math.NaN()
	}
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
