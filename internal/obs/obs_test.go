package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// ---- metrics ----

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Add(2)
	if got := r.Counter("a").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	r.Gauge("g").Set(4.5)
	if got := r.Gauge("g").Value(); got != 4.5 {
		t.Errorf("gauge = %v, want 4.5", got)
	}
	h := r.Histogram("h")
	for _, v := range []float64{0.5, 1.5, 1.6, 100} {
		h.Observe(v)
	}
	s, _ := h.snapshot()
	if s.Count != 4 || s.Min != 0.5 || s.Max != 100 {
		t.Errorf("histogram snapshot = %+v", s)
	}
	if s.Sum != 0.5+1.5+1.6+100 {
		t.Errorf("histogram sum = %v", s.Sum)
	}
	// 1.5 and 1.6 share the (1, 2] bucket.
	if got := s.Buckets["le_2^1"]; got != 2 {
		t.Errorf("bucket le_2^1 = %d, want 2; buckets: %v", got, s.Buckets)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	s := r.Snapshot(true)
	if s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Errorf("nil registry snapshot should be empty: %+v", s)
	}
}

func TestHistogramUnderflowBucket(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(-3)
	s, _ := h.snapshot()
	if got := s.Buckets["underflow"]; got != 2 {
		t.Errorf("underflow bucket = %d, want 2", got)
	}
}

func TestGoldenSnapshotExcludesNonGoldenAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Inc()
	r.Gauge("pool.workers").Set(8) // environmental: varies with -j
	r.Histogram("wall").NonGolden().Observe(1.23)
	r.Histogram("cycles").Observe(42)

	golden := r.Snapshot(false)
	if golden.Gauges != nil {
		t.Errorf("golden snapshot includes gauges: %v", golden.Gauges)
	}
	if golden.NonGolden != nil {
		t.Errorf("golden snapshot includes non-golden histograms: %v", golden.NonGolden)
	}
	if _, ok := golden.Histograms["cycles"]; !ok {
		t.Error("golden snapshot dropped a golden histogram")
	}

	full := r.Snapshot(true)
	if full.Gauges["pool.workers"] != 8 {
		t.Errorf("full snapshot gauges = %v", full.Gauges)
	}
	if _, ok := full.NonGolden["wall"]; !ok {
		t.Error("full snapshot missing the non-golden histogram")
	}
}

// TestNonGoldenCounters pins the farm counters' discipline: a counter
// marked NonGolden (lease grants, missed heartbeats, requeues — events
// that depend on worker scheduling and wall-clock timing) is excluded from
// golden snapshots and reported under non_golden_counters in full ones.
func TestNonGoldenCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.store.hits").Add(3) // deterministic: golden
	r.Counter("campaign.leases.granted").NonGolden().Add(5)

	golden := r.Snapshot(false)
	if _, ok := golden.Counters["campaign.leases.granted"]; ok {
		t.Error("golden snapshot includes a non-golden counter")
	}
	if golden.NonGoldenCounters != nil {
		t.Errorf("golden snapshot carries non_golden_counters: %v", golden.NonGoldenCounters)
	}
	if golden.Counters["campaign.store.hits"] != 3 {
		t.Errorf("golden counters = %v", golden.Counters)
	}

	full := r.Snapshot(true)
	if full.NonGoldenCounters["campaign.leases.granted"] != 5 {
		t.Errorf("full snapshot non_golden_counters = %v", full.NonGoldenCounters)
	}
	if _, ok := full.Counters["campaign.leases.granted"]; ok {
		t.Error("full snapshot double-reports the non-golden counter under counters")
	}

	// NonGolden returns the same counter (chaining at the registration
	// site), and looking the name up again preserves the marking.
	if r.Counter("campaign.leases.granted").Value() != 5 {
		t.Error("NonGolden chaining lost the counter identity")
	}
	r.Counter("campaign.leases.granted").Inc()
	if got := r.Snapshot(true).NonGoldenCounters["campaign.leases.granted"]; got != 6 {
		t.Errorf("re-looked-up counter snapshot = %d, want 6", got)
	}
}

func TestSnapshotEncodeDeterministic(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Inc()
		}
		buf, err := r.Snapshot(false).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a := build([]string{"x", "y", "z"})
	b := build([]string{"z", "x", "y"})
	if !bytes.Equal(a, b) {
		t.Errorf("snapshot encoding depends on registration order:\n%s\n%s", a, b)
	}
}

func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Histogram("h").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	s, _ := r.Histogram("h").snapshot()
	if s.Count != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", s.Count)
	}
}

// ---- logging ----

func TestLoggerJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).With(F("cell", "astar -O2"))
	l.Debug("dropped", F("k", 1))
	l.Warn("kept", F("attempt", 2), F("err", "boom"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (debug below min level): %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, lines[0])
	}
	if rec["level"] != "warn" || rec["msg"] != "kept" {
		t.Errorf("level/msg = %v/%v", rec["level"], rec["msg"])
	}
	if rec["cell"] != "astar -O2" {
		t.Errorf("base field cell = %v", rec["cell"])
	}
	if rec["attempt"] != float64(2) || rec["err"] != "boom" {
		t.Errorf("fields = %v", rec)
	}
	if _, ok := rec["t_wall_ns_nongolden"]; ok {
		t.Error("timestamp present without WallClock()")
	}
}

func TestLoggerWallClock(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, LevelInfo).WallClock().Info("hi")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := rec["t_wall_ns_nongolden"]; !ok {
		t.Errorf("WallClock logger line missing t_wall_ns_nongolden: %v", rec)
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("nothing", F("k", "v"))
	l.With(F("a", 1)).WallClock().Error("still nothing")
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

// ---- tracing ----

func TestTracerSpansValidate(t *testing.T) {
	tr := NewTracer()
	end := tr.Span("compile", "astar", map[string]any{"level": "-O2"})
	inner := tr.Span("run", "cell", nil)
	inner()
	end()
	tr.Instant("note", "checkpoint-hit", nil)

	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Errorf("tracer output fails validation: %v", err)
	}
	// Overlapping spans get distinct lanes.
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Tid == events[1].Tid {
		t.Errorf("overlapping spans share tid %d", events[0].Tid)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Span("a", "b", nil)()
	tr.Instant("a", "b", nil)
	if tr.Events() != nil {
		t.Error("nil tracer has events")
	}
}

func TestValidateTraceRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"not json":        `nonsense`,
		"no traceEvents":  `{"foo": []}`,
		"unknown phase":   `[{"name":"x","ph":"Q","ts":0,"pid":1,"tid":1}]`,
		"missing pid":     `[{"name":"x","ph":"X","ts":0,"tid":1}]`,
		"float tid":       `[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1.5}]`,
		"missing ts":      `[{"name":"x","ph":"X","pid":1,"tid":1}]`,
		"negative dur":    `[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]`,
		"nameless B":      `[{"ph":"B","ts":0,"pid":1,"tid":1}]`,
		"E without B":     `[{"ph":"E","ts":0,"pid":1,"tid":1}]`,
		"unclosed B":      `[{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}]`,
		"crossed nesting": `[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1},{"name":"b","ph":"B","ts":1,"pid":1,"tid":1},{"name":"a","ph":"E","ts":2,"pid":1,"tid":1},{"name":"b","ph":"E","ts":3,"pid":1,"tid":1}]`,
	}
	for label, data := range cases {
		if err := ValidateTrace([]byte(data)); err == nil {
			t.Errorf("%s: ValidateTrace accepted an invalid trace", label)
		}
	}
}

func TestValidateTraceAcceptsBothForms(t *testing.T) {
	array := `[{"name":"x","ph":"X","ts":0,"dur":5,"pid":1,"tid":1}]`
	object := `{"traceEvents": [{"name":"x","ph":"X","ts":0,"dur":5,"pid":1,"tid":1}]}`
	meta := `[{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"sim"}}]`
	balanced := `[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1},{"name":"a","ph":"E","ts":2,"pid":1,"tid":1}]`
	for label, data := range map[string]string{"array": array, "object": object, "metadata": meta, "balancedBE": balanced} {
		if err := ValidateTrace([]byte(data)); err != nil {
			t.Errorf("%s: ValidateTrace rejected a valid trace: %v", label, err)
		}
	}
}

func TestWriteTraceJSONDeterministic(t *testing.T) {
	events := []TraceEvent{
		{Name: "a", Cat: "sim", Ph: "B", Ts: 1, Pid: 1, Tid: 1},
		{Name: "a", Ph: "E", Ts: 5, Pid: 1, Tid: 1},
	}
	var b1, b2 bytes.Buffer
	if err := WriteTraceJSON(&b1, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceJSON(&b2, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("WriteTraceJSON is not deterministic")
	}
}
