package trace_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/trace"
)

func TestSamplerZeroWindowDefault(t *testing.T) {
	mach := machine.New(machine.DefaultConfig())
	s := trace.New(nil, mach, 0)
	if got := s.Series().WindowCycles; got != 50_000 {
		t.Errorf("zero window defaulted to %d cycles, want 50000", got)
	}
}

func TestSamplerFinalPartialWindowFlush(t *testing.T) {
	// A window far larger than the whole run: Tick never fires a capture,
	// so the only window is the partial one Series() flushes at the end.
	series, res := runTraced(t, 1<<40)
	if len(series.Windows) != 1 {
		t.Fatalf("got %d windows, want exactly the flushed partial one", len(series.Windows))
	}
	w := series.Windows[0]
	if w.Cycles != res.Cycles || w.Instructions != res.Instructions {
		t.Errorf("partial window (%d cycles, %d instrs) != run totals (%d, %d)",
			w.Cycles, w.Instructions, res.Cycles, res.Instructions)
	}
	if w.StartCycle != 0 {
		t.Errorf("partial window starts at cycle %d, want 0", w.StartCycle)
	}
}

func TestSamplerSeriesIdempotent(t *testing.T) {
	// Series() flushes the partial window; calling it again must not
	// append an empty duplicate.
	m := buildTwoPhase()
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(machine.DefaultConfig())
	sampler := trace.New(&interp.NativeRuntime{
		FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
		Stack: as.StackBase(), Mach: mach,
	}, mach, 20_000)
	if _, err := interp.Run(m, interp.Options{Machine: mach, Runtime: sampler}); err != nil {
		t.Fatal(err)
	}
	n1 := len(sampler.Series().Windows)
	n2 := len(sampler.Series().Windows)
	if n1 != n2 {
		t.Errorf("second Series() call changed window count: %d -> %d", n1, n2)
	}
}

// TestSamplerWrapsStabilizerRuntime checks the sampler is runtime-agnostic:
// wrapped around the STABILIZER runtime it must observe the same
// conservation law (window deltas sum to the machine totals) as around the
// native runtime, re-randomization pauses included.
func TestSamplerWrapsStabilizerRuntime(t *testing.T) {
	m, err := compiler.Compile(buildTwoPhase(), compiler.Options{Level: compiler.O0, Stabilize: true})
	if err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(machine.DefaultConfig())
	st, err := core.New(m, mach, as, img.FuncAddrs, img.GlobalAddrs, core.Options{
		Code: true, Stack: true, Heap: true,
		Rerandomize: true, Interval: 25_000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sampler := trace.New(st, mach, 20_000)
	res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: sampler})
	if err != nil {
		t.Fatal(err)
	}
	series := sampler.Series()
	if len(series.Windows) < 2 {
		t.Fatalf("only %d windows sampled under the STABILIZER runtime", len(series.Windows))
	}
	var cyc, instr uint64
	for _, w := range series.Windows {
		cyc += w.Cycles
		instr += w.Instructions
	}
	if cyc != res.Cycles || instr != res.Instructions {
		t.Errorf("window sums (%d cycles, %d instrs) != run totals (%d, %d)",
			cyc, instr, res.Cycles, res.Instructions)
	}
	if st.Stats.Rerands == 0 {
		t.Error("re-randomization never fired; the wrapping test is vacuous")
	}
}
