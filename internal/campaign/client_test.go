package campaign

import (
	"net/http"
	"testing"
	"time"
)

// TestParseRetryAfter pins both RFC 9110 Retry-After forms — delay-seconds
// and HTTP-date — and the cap that keeps a misbehaving server from parking
// a worker fleet for minutes. The cap is deliberately higher than the
// client's own backoff ceiling: a server-directed delay may stretch the
// schedule, but only up to retryAfterCap.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 2, 3, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"7", 7 * time.Second},
		{" 2 ", 2 * time.Second},
		{"0", 0},
		{"-3", 0},   // negative delay: no wait
		{"soon", 0}, // malformed: ignore the hint
		{"86400", retryAfterCap},
		{now.Add(10 * time.Second).Format(http.TimeFormat), 10 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // date in the past
		{now.Add(10 * time.Minute).Format(http.TimeFormat), retryAfterCap},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
	if retryAfterCap <= retryBackoffCap {
		t.Fatalf("retryAfterCap %s must exceed the client's own backoff ceiling %s", retryAfterCap, retryBackoffCap)
	}
}

// TestClientServerListParsing pins the comma-separated failover list:
// whitespace and trailing slashes are trimmed, empties dropped, and a
// single-server value behaves exactly as before.
func TestClientServerListParsing(t *testing.T) {
	c := NewClient(" http://a:1/ , http://b:2 ,")
	list := c.serverList()
	if len(list) != 2 || list[0] != "http://a:1" || list[1] != "http://b:2" {
		t.Fatalf("serverList = %v", list)
	}
	if got := c.base(); got != "http://a:1" {
		t.Fatalf("base = %q, want the first listed server", got)
	}
	single := NewClient("http://only:3")
	if got := single.base(); got != "http://only:3" {
		t.Fatalf("single-server base = %q", got)
	}
}
