package stats

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// Bootstrap confidence intervals for the regression gate (Kalibera & Jones:
// report effect sizes with confidence intervals, not bare p-values). All
// resampling is driven by the repo's seeded Marsaglia generator, so every CI
// is reproducible and identical across worker counts.

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies inside the closed interval.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// HalfWidth returns half the interval's width.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// resample fills out with a bootstrap resample of xs (sampling with
// replacement) using r.
func resample(r *rng.Marsaglia, xs, out []float64) {
	for i := range out {
		out[i] = xs[r.Intn(len(xs))]
	}
}

// BootstrapCI returns the percentile bootstrap confidence interval for
// stat(xs) at the given confidence level (e.g. 0.95), using b replicates
// seeded from seed. It returns a degenerate interval for samples the
// statistic cannot vary on (n < 2 or zero range).
func BootstrapCI(xs []float64, stat func([]float64) float64, b int, confidence float64, seed uint64) Interval {
	if len(xs) == 0 || b < 2 || confidence <= 0 || confidence >= 1 {
		return Interval{Lo: math.NaN(), Hi: math.NaN()}
	}
	if len(xs) < 2 || sampleRange(xs) == 0 {
		v := stat(xs)
		return Interval{Lo: v, Hi: v}
	}
	thetas := bootstrapThetas(xs, stat, b, seed)
	alpha := (1 - confidence) / 2
	return Interval{Lo: Quantile(thetas, alpha), Hi: Quantile(thetas, 1-alpha)}
}

// BootstrapBCaCI returns the bias-corrected and accelerated (BCa) bootstrap
// confidence interval for stat(xs) (Efron 1987): the percentile interval's
// endpoints are shifted by the bias correction z0 (how asymmetrically the
// bootstrap distribution sits around the point estimate) and the
// acceleration a (the statistic's skewness under jackknife deletion).
func BootstrapBCaCI(xs []float64, stat func([]float64) float64, b int, confidence float64, seed uint64) Interval {
	if len(xs) == 0 || b < 2 || confidence <= 0 || confidence >= 1 {
		return Interval{Lo: math.NaN(), Hi: math.NaN()}
	}
	if len(xs) < 2 || sampleRange(xs) == 0 {
		v := stat(xs)
		return Interval{Lo: v, Hi: v}
	}
	theta := stat(xs)
	thetas := bootstrapThetas(xs, stat, b, seed)

	// Jackknife replicates for the acceleration.
	jack := make([]float64, len(xs))
	del := make([]float64, 0, len(xs)-1)
	for i := range xs {
		del = del[:0]
		del = append(del, xs[:i]...)
		del = append(del, xs[i+1:]...)
		jack[i] = stat(del)
	}
	return bcaInterval(theta, thetas, jack, confidence)
}

// RatioStat is the two-sample statistic the gate bootstraps: the ratio of
// means old/new — the speedup of new over old when times shrink.
func RatioStat(old, new []float64) float64 { return Mean(old) / Mean(new) }

// BootstrapRatioCI returns percentile and BCa confidence intervals for the
// ratio of means old/new, resampling the two samples independently (they
// come from independent sets of runs). The BCa acceleration uses the
// delete-one jackknife over both samples.
func BootstrapRatioCI(old, new []float64, b int, confidence float64, seed uint64) (percentile, bca Interval) {
	nan := Interval{Lo: math.NaN(), Hi: math.NaN()}
	if len(old) == 0 || len(new) == 0 || b < 2 || confidence <= 0 || confidence >= 1 {
		return nan, nan
	}
	theta := RatioStat(old, new)
	if (len(old) < 2 && len(new) < 2) || (sampleRange(old) == 0 && sampleRange(new) == 0) {
		iv := Interval{Lo: theta, Hi: theta}
		return iv, iv
	}
	r := rng.NewMarsaglia(seed ^ 0xb007_57a9)
	thetas := make([]float64, b)
	ro := make([]float64, len(old))
	rn := make([]float64, len(new))
	for i := range thetas {
		resample(r, old, ro)
		resample(r, new, rn)
		thetas[i] = RatioStat(ro, rn)
	}
	sort.Float64s(thetas)
	alpha := (1 - confidence) / 2
	percentile = Interval{Lo: Quantile(thetas, alpha), Hi: Quantile(thetas, 1-alpha)}

	// Delete-one jackknife across both samples.
	jack := make([]float64, 0, len(old)+len(new))
	del := make([]float64, 0, len(old)+len(new))
	for i := range old {
		del = del[:0]
		del = append(del, old[:i]...)
		del = append(del, old[i+1:]...)
		jack = append(jack, RatioStat(del, new))
	}
	for i := range new {
		del = del[:0]
		del = append(del, new[:i]...)
		del = append(del, new[i+1:]...)
		jack = append(jack, RatioStat(old, del))
	}
	bca = bcaInterval(theta, thetas, jack, confidence)
	return percentile, bca
}

// bootstrapThetas returns b sorted bootstrap replicates of stat on xs.
func bootstrapThetas(xs []float64, stat func([]float64) float64, b int, seed uint64) []float64 {
	r := rng.NewMarsaglia(seed ^ 0xb007_57a9)
	thetas := make([]float64, b)
	buf := make([]float64, len(xs))
	for i := range thetas {
		resample(r, xs, buf)
		thetas[i] = stat(buf)
	}
	sort.Float64s(thetas)
	return thetas
}

// bcaInterval assembles a BCa interval from the point estimate, the sorted
// bootstrap replicates, and the jackknife replicates.
func bcaInterval(theta float64, sortedThetas, jack []float64, confidence float64) Interval {
	b := len(sortedThetas)
	// Bias correction: the normal quantile of the fraction of replicates
	// below the point estimate (clamped away from 0 and 1).
	below := 0
	for _, t := range sortedThetas {
		if t < theta {
			below++
		}
	}
	frac := float64(below) / float64(b)
	if frac <= 0 {
		frac = 1 / float64(2*b)
	}
	if frac >= 1 {
		frac = 1 - 1/float64(2*b)
	}
	z0 := NormalQuantile(frac)

	// Acceleration from the jackknife skewness.
	jm := Mean(jack)
	num, den := 0.0, 0.0
	for _, j := range jack {
		d := jm - j
		num += d * d * d
		den += d * d
	}
	a := 0.0
	if den > 0 {
		a = num / (6 * math.Pow(den, 1.5))
	}

	alpha := (1 - confidence) / 2
	adj := func(z float64) float64 {
		zt := z0 + z
		return NormalCDF(z0 + zt/(1-a*zt))
	}
	lo := adj(NormalQuantile(alpha))
	hi := adj(NormalQuantile(1 - alpha))
	return Interval{Lo: Quantile(sortedThetas, lo), Hi: Quantile(sortedThetas, hi)}
}

// sampleRange returns max - min.
func sampleRange(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max - min
}
