package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/stats"
)

// OverheadConfigs are the randomization combinations of Figure 6, in its
// legend order.
func OverheadConfigs() []core.Options {
	return []core.Options{
		{Code: true, Rerandomize: true},
		{Code: true, Stack: true, Rerandomize: true},
		{Code: true, Heap: true, Stack: true, Rerandomize: true},
	}
}

// OverheadRow is one benchmark's bar group in Figure 6.
type OverheadRow struct {
	Benchmark string
	// Overhead[i] is mean(stabilized)/mean(baseline) - 1 for
	// OverheadConfigs()[i]; the baseline is native execution with
	// randomized link order, exactly as in the paper.
	Overhead []float64
}

// OverheadResult is the Figure 6 reproduction.
type OverheadResult struct {
	Rows    []OverheadRow
	Configs []string
	Runs    int
}

// OverheadOptions configures the experiment.
type OverheadOptions struct {
	Scale    float64
	Runs     int
	Seed     uint64
	Interval uint64
	Suite    []spec.Benchmark
}

func (o *OverheadOptions) defaults() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Runs == 0 {
		o.Runs = 30
	}
	if o.Interval == 0 {
		o.Interval = 25_000
	}
	if o.Suite == nil {
		o.Suite = spec.Suite()
	}
}

// Overhead measures STABILIZER's cost per randomization combination against
// the randomized-link-order baseline (Figure 6).
func Overhead(ctx context.Context, opts OverheadOptions) (*OverheadResult, error) {
	opts.defaults()
	configs := OverheadConfigs()
	res := &OverheadResult{Runs: opts.Runs}
	for _, c := range configs {
		res.Configs = append(res.Configs, c.EnabledString())
	}
	rows := make([]OverheadRow, len(opts.Suite))
	pool := NewPool(0)
	err := pool.ForEach(ctx, len(opts.Suite), func(ctx context.Context, bi int) error {
		b := opts.Suite[bi]
		base, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2, RandomLinkOrder: true})
		if err != nil {
			return err
		}
		baseSamples, err := base.Collect(ctx, opts.Runs, opts.Seed+uint64(bi)*10_000)
		if err != nil {
			return err
		}
		baseMean := stats.Mean(baseSamples.Seconds)

		row := OverheadRow{Benchmark: b.Name}
		for ci, cfg := range configs {
			cfg.Interval = opts.Interval
			cc, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2, Stabilizer: &cfg})
			if err != nil {
				return err
			}
			samples, err := cc.Collect(ctx, opts.Runs, opts.Seed+uint64(bi)*10_000+uint64(ci+1)*1000)
			if err != nil {
				return err
			}
			row.Overhead = append(row.Overhead, stats.Mean(samples.Seconds)/baseMean-1)
		}
		rows[bi] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// MedianOverhead returns the median across benchmarks for the full
// (code.heap.stack) configuration — the paper's headline "<7% median".
func (r *OverheadResult) MedianOverhead() float64 {
	last := len(r.Configs) - 1
	vals := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		vals = append(vals, row.Overhead[last])
	}
	return stats.Median(vals)
}

// Figure renders Figure 6 as a table, sorted by full-configuration overhead
// as the paper's bar chart is.
func (r *OverheadResult) Figure() string {
	rows := append([]OverheadRow(nil), r.Rows...)
	last := len(r.Configs) - 1
	sort.Slice(rows, func(i, j int) bool { return rows[i].Overhead[last] < rows[j].Overhead[last] })

	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6: overhead of STABILIZER vs randomized link order (%d runs)\n", r.Runs)
	fmt.Fprintf(&sb, "%-12s", "Benchmark")
	for _, c := range r.Configs {
		fmt.Fprintf(&sb, " %16s", c)
	}
	sb.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-12s", row.Benchmark)
		for _, o := range row.Overhead {
			fmt.Fprintf(&sb, " %+15.1f%%", o*100)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "median overhead (all randomizations): %+.1f%%\n", r.MedianOverhead()*100)
	return sb.String()
}
