package trace_test

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/trace"
)

// buildTwoPhase builds a program with a cheap phase then a memory-bound one.
func buildTwoPhase() *ir.Module {
	mb := ir.NewModuleBuilder("twophase")
	g := mb.Global("arr", 512<<10)
	f := mb.Func("main", 0)
	x := f.ConstI(1)
	f.LoopN(40_000, func(i ir.Reg) {
		f.MovTo(x, f.Add(f.Mul(x, f.ConstI(33)), i))
	})
	f.LoopN(20_000, func(i ir.Reg) {
		idx := f.Rem(f.Mul(i, f.ConstI(97)), f.ConstI((512<<10)/8))
		v := f.LoadG(g, 0, idx)
		f.StoreG(g, 0, idx, f.Add(v, i))
		f.MovTo(x, f.Xor(x, v))
	})
	f.Sink(x)
	f.Ret(ir.NoReg)
	m := mb.Module()
	m.Finalize()
	ir.ComputeSizes(m)
	return m
}

func runTraced(t *testing.T, window uint64) (*trace.Series, interp.Result) {
	t.Helper()
	m := buildTwoPhase()
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(machine.DefaultConfig())
	inner := &interp.NativeRuntime{
		FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
		Stack: as.StackBase(), Heap: heap.NewSegregated(as), Mach: mach,
	}
	sampler := trace.New(inner, mach, window)
	res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: sampler})
	if err != nil {
		t.Fatal(err)
	}
	return sampler.Series(), res
}

func TestSamplerCapturesWindows(t *testing.T) {
	series, res := runTraced(t, 20_000)
	if len(series.Windows) < 5 {
		t.Fatalf("only %d windows for a %d-cycle run", len(series.Windows), res.Cycles)
	}
	// Window deltas must sum to the run's totals (within the final flush).
	var cyc, instr uint64
	for _, w := range series.Windows {
		cyc += w.Cycles
		instr += w.Instructions
	}
	if cyc != res.Cycles || instr != res.Instructions {
		t.Fatalf("window sums (%d cycles, %d instrs) != run totals (%d, %d)",
			cyc, instr, res.Cycles, res.Instructions)
	}
}

func TestSamplerDoesNotPerturbExecution(t *testing.T) {
	// The sampler is pure observation: output must match an untraced run.
	m := buildTwoPhase()
	run := func(traced bool) interp.Result {
		as := mem.NewAddressSpace()
		img, _ := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
		mach := machine.New(machine.DefaultConfig())
		var rt interp.Runtime = &interp.NativeRuntime{
			FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
			Stack: as.StackBase(), Heap: heap.NewSegregated(as), Mach: mach,
		}
		if traced {
			rt = trace.New(rt, mach, 10_000)
		}
		res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: rt})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	traced := run(true)
	if plain.Output != traced.Output || plain.Cycles != traced.Cycles {
		t.Fatalf("sampler perturbed the run: %+v vs %+v", plain, traced)
	}
}

func TestPhaseDetection(t *testing.T) {
	series, _ := runTraced(t, 20_000)
	// Two starkly different phases: IPC must vary and the detector must see
	// at least two phases.
	if n := series.PhaseCount(0.10); n < 2 {
		t.Fatalf("phase detector found %d phases in a two-phase program", n)
	}
	ipc := series.IPCSeries()
	min, max := ipc[0], ipc[0]
	for _, v := range ipc {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max < 1.2*min {
		t.Fatalf("IPC spread too small for a two-phase program: [%v, %v]", min, max)
	}
}

func TestSparkline(t *testing.T) {
	if trace.Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	s := trace.Sparkline([]float64{0, 0.5, 1})
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline length %d, want 3", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] >= runes[2] {
		t.Fatal("sparkline not monotone for ascending input")
	}
	flat := trace.Sparkline([]float64{2, 2, 2})
	fr := []rune(flat)
	if fr[0] != fr[1] || fr[1] != fr[2] {
		t.Fatal("flat series should render identical runes")
	}
}

func TestSeriesString(t *testing.T) {
	series, _ := runTraced(t, 20_000)
	s := series.String()
	for _, want := range []string{"windows", "IPC", "miss rate", "phases"} {
		if !strings.Contains(s, want) {
			t.Errorf("series string missing %q", want)
		}
	}
}
