// Heaprand: explore the shuffling layer of §3.2 — how deep must N be before
// heap addresses look random, and what does the layer cost?
//
// Prints the NIST pass counts per depth and a micro-benchmark of
// malloc/free throughput for the base allocator versus the shuffled one.
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/experiment"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/rng"
)

func main() {
	fmt.Println("== address randomness by shuffling depth (NIST pass count of 7) ==")
	res, err := experiment.NIST(context.Background(), experiment.NISTOptions{
		Values:   12000,
		Seed:     7,
		ShuffleN: []int{1, 4, 16, 64, 256, 1024},
	})
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		passes := 0
		for _, r := range row.Results {
			if r.Pass() {
				passes++
			}
		}
		fmt.Printf("%-16s %d/7\n", row.Source, passes)
	}
	fmt.Println("\nThe paper settles on N = 256: deep enough to randomize the cache")
	fmt.Println("index bits, shallow enough to stay cheap (§3.2).")

	fmt.Println("\n== allocator cost (host time for 1M malloc/free pairs) ==")
	bench := func(name string, a heap.Allocator) {
		start := time.Now()
		for i := 0; i < 1_000_000; i++ {
			p, err := a.Alloc(64)
			if err == nil {
				err = a.Free(p)
			}
			if err != nil {
				panic(err)
			}
		}
		fmt.Printf("%-24s %v\n", name, time.Since(start).Round(time.Millisecond))
	}
	bench("segregated (base)", heap.NewSegregated(mem.NewAddressSpace()))
	bench("tlsf (base)", heap.NewTLSF(mem.NewAddressSpace(), 1<<22))
	bench("shuffle(segregated)", heap.NewShuffle(heap.NewSegregated(mem.NewAddressSpace()), rng.NewMarsaglia(1), 256))
	bench("diehard", heap.NewDieHard(mem.NewAddressSpace(), rng.NewMarsaglia(2)))
}
