package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/store"
)

// TestObservabilityEndToEnd is the acceptance test for farm observability:
// a campaign runs across two coordinator incarnations (epoch 1 crashes
// with a cell leased to a worker that never reports; epoch 2 takes over,
// expires the lease — the forced requeue — and real workers finish it),
// and afterwards
//
//   - the durable event journal reconstructs into a valid Chrome trace,
//   - every attempt of the requeued cell shares the campaign's one trace
//     ID across both coordinators,
//   - the merged artifact is byte-identical to a no-observability local
//     run, with provenance available only as strippable decoration,
//   - /metrics exposes the counters that moved, in Prometheus text format.
func TestObservabilityEndToEnd(t *testing.T) {
	spec := testSpec()
	baseline := localBaseline(t, spec)
	dir := t.TempDir()

	// Epoch 1: coord-a grants astar to a worker that will never report and
	// completes bzip2 normally, then "crashes".
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	handleA, _, err := stA.Coordination().TryAcquire("coord-a", 30*time.Minute, time.Now())
	if err != nil || handleA == nil {
		t.Fatalf("acquire lease A: %v %v", handleA, err)
	}
	coordA, err := NewCoordinator(CoordinatorOptions{
		Store: stA, Obs: obs.NewScope(), Identity: "coord-a", Fence: handleA,
	})
	if err != nil {
		t.Fatalf("coordinator A: %v", err)
	}
	id, _, _, err := coordA.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	coordA.mu.Lock()
	traceA := coordA.byID[id].trace
	coordA.mu.Unlock()
	if traceA == "" {
		t.Fatalf("campaign has no trace id")
	}

	dead := coordA.Acquire("w-dead")
	if dead.Lease == nil {
		t.Fatalf("no lease for the doomed worker")
	}
	if dead.Lease.Trace != traceA || dead.Lease.Span != obs.SpanID(id, dead.Lease.Bench, 1) {
		t.Fatalf("lease carries trace %q span %q, want %q / %q",
			dead.Lease.Trace, dead.Lease.Span, traceA, obs.SpanID(id, dead.Lease.Bench, 1))
	}
	deadCell := dead.Lease.Bench

	second := coordA.Acquire("w-live")
	if second.Lease == nil {
		t.Fatalf("no second lease")
	}
	started := time.Now()
	results := computeLease(t, second.Lease)
	if err := coordA.Complete(second.Lease.ID, CompleteRequest{
		Worker: "w-live", Results: results,
		Trace: second.Lease.Trace, Span: second.Lease.Span,
		SpanRecord: &SpanRecord{
			Trace: second.Lease.Trace, Span: second.Lease.Span, Worker: "w-live",
			StartUnixNs: started.UnixNano(), EndUnixNs: time.Now().UnixNano(),
		},
	}); err != nil {
		t.Fatalf("complete on A: %v", err)
	}
	// kill -9: coord-a is abandoned with deadCell leased.

	// Epoch 2: coord-b takes over an hour later; every persisted lease is
	// expired from its clock, so the doomed lease requeues on first contact.
	stB, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	handleB, _, err := stB.Coordination().TryAcquire("coord-b", 30*time.Minute, futureClock())
	if err != nil || handleB == nil {
		t.Fatalf("takeover: %v %v", handleB, err)
	}
	coordB, err := NewCoordinator(CoordinatorOptions{
		Store: stB, Obs: obs.NewScope(), Identity: "coord-b", Fence: handleB, now: futureClock,
	})
	if err != nil {
		t.Fatalf("coordinator B: %v", err)
	}
	coordB.mu.Lock()
	traceB := coordB.byID[id].trace
	coordB.mu.Unlock()
	if traceB != traceA {
		t.Fatalf("restored trace %q != submitted trace %q: failover broke the trace", traceB, traceA)
	}

	ts := httptest.NewServer(coordB.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	runWorkers(t, client, 2)
	final, err := client.WaitDone(context.Background(), id, 10*time.Millisecond)
	if err != nil || final.State != StateDone {
		t.Fatalf("campaign did not finish: %+v %v", final, err)
	}

	// Golden surface: the merged artifact is byte-identical to the
	// uninterrupted local run.
	merged, err := client.Artifact(context.Background(), id)
	if err != nil {
		t.Fatalf("artifact: %v", err)
	}
	if !bytes.Equal(merged, baseline) {
		t.Fatalf("artifact with observability enabled differs from baseline")
	}

	// Provenance rides as a strippable non-golden decoration.
	decorated, err := client.ArtifactProvenance(context.Background(), id)
	if err != nil {
		t.Fatalf("artifact with provenance: %v", err)
	}
	if bytes.Equal(decorated, merged) {
		t.Fatalf("?provenance=1 returned the plain artifact")
	}
	art, err := bench.ReadBytes(decorated)
	if err != nil {
		t.Fatalf("decorated artifact does not parse: %v", err)
	}
	deadProv := art.Find(deadCell).Provenance
	if deadProv == nil {
		t.Fatalf("cell %s has no provenance", deadCell)
	}
	if deadProv.Trace != traceA || deadProv.Coordinator != "coord-b" || deadProv.Attempts < 2 {
		t.Fatalf("provenance %+v, want trace %s via coord-b with >=2 attempts", deadProv, traceA)
	}
	if deadProv.Epoch != handleB.Epoch() {
		t.Fatalf("provenance epoch %d, want %d", deadProv.Epoch, handleB.Epoch())
	}
	art.StripProvenance()
	stripped, err := art.Encode()
	if err != nil {
		t.Fatalf("re-encode stripped artifact: %v", err)
	}
	if !bytes.Equal(stripped, baseline) {
		t.Fatalf("stripping provenance does not recover the golden bytes")
	}

	// The durable journal spans both incarnations and reconstructs into a
	// valid trace whose lease grants all share the campaign's trace ID.
	journal, err := coordB.EventJournal(id)
	if err != nil || len(journal) == 0 {
		t.Fatalf("event journal: %v (len %d)", err, len(journal))
	}
	grants := 0
	deadGrants := 0
	for _, raw := range bytes.Split(journal, []byte("\n")) {
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var line struct {
			Msg   string `json:"msg"`
			Cell  string `json:"cell"`
			Trace string `json:"trace"`
		}
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("journal line does not parse: %v\n%s", err, raw)
		}
		if line.Msg != "lease granted" {
			continue
		}
		grants++
		if line.Trace != traceA {
			t.Fatalf("lease granted with trace %q, want %q:\n%s", line.Trace, traceA, raw)
		}
		if line.Cell == deadCell {
			deadGrants++
		}
	}
	if grants < 3 || deadGrants < 2 {
		t.Fatalf("journal has %d grants (%d for %s), want >=3 total and >=2 for the requeued cell",
			grants, deadGrants, deadCell)
	}

	tl, err := BuildTimeline(journal, id)
	if err != nil {
		t.Fatalf("BuildTimeline: %v", err)
	}
	if tl.Trace != traceA || tl.Report.Failovers < 1 {
		t.Fatalf("timeline trace %q failovers %d, want %q / >=1", tl.Trace, tl.Report.Failovers, traceA)
	}
	trace1, err := tl.EncodeTrace()
	if err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	if err := obs.ValidateTrace(trace1); err != nil {
		t.Fatalf("reconstructed farm trace fails validation: %v", err)
	}
	tl2, err := BuildTimeline(journal, id)
	if err != nil {
		t.Fatalf("second BuildTimeline: %v", err)
	}
	trace2, err := tl2.EncodeTrace()
	if err != nil {
		t.Fatalf("second EncodeTrace: %v", err)
	}
	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("timeline reconstruction is not deterministic")
	}

	// /metrics speaks Prometheus text and carries the farm counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("/metrics: status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	samples, err := obs.ParseProm(body)
	if err != nil {
		t.Fatalf("/metrics output does not parse: %v\n%s", err, body)
	}
	if samples["sz_campaign_cells_completed"] < 1 {
		t.Fatalf("sz_campaign_cells_completed = %v, want >=1", samples["sz_campaign_cells_completed"])
	}
	if samples["sz_campaign_leases_expired"] < 1 {
		t.Fatalf("sz_campaign_leases_expired = %v, want >=1 (the forced requeue)", samples["sz_campaign_leases_expired"])
	}
	if _, ok := samples["sz_campaign_queue_wait_seconds_count"]; !ok {
		t.Fatalf("queue-wait histogram missing from /metrics:\n%s", body)
	}
	if _, ok := samples[`sz_campaign_tenant_pending{tenant="default"}`]; !ok {
		t.Fatalf("per-tenant gauge missing from /metrics:\n%s", body)
	}

	// Follow-mode events terminate on a finished campaign and deliver the
	// ring's lines.
	var evBuf bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := client.Events(ctx, id, true, &evBuf); err != nil {
		t.Fatalf("follow events: %v", err)
	}
	if !strings.Contains(evBuf.String(), `"msg":"campaign complete"`) {
		t.Fatalf("followed events missing completion:\n%s", evBuf.String())
	}
}

// TestStandbyServesMetrics pins that a standby coordinator — which 503s
// the protocol — still answers GET /metrics, so both members of an HA pair
// are scrapable.
func TestStandbyServesMetrics(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	scope := obs.NewScope()
	scope.Metrics.Counter("ha.promotions").NonGolden()
	standby, err := NewHAServer(HAOptions{
		Coordinator: CoordinatorOptions{Store: st},
		Identity:    "standby-co",
		Obs:         scope,
	})
	if err != nil {
		t.Fatalf("standby: %v", err)
	}
	ts := httptest.NewServer(standby)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("standby /metrics status %d, want 200", resp.StatusCode)
	}
	if _, err := obs.ParseProm(body); err != nil {
		t.Fatalf("standby /metrics does not parse: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "sz_ha_promotions") {
		t.Fatalf("standby /metrics missing ha counters:\n%s", body)
	}
}

// TestEventsFollowReportsRingGap pins the follow-mode gap marker: a
// cursor that fell behind a wrapped ring sees an explicit comment line
// instead of a silent hole.
func TestEventsFollowReportsRingGap(t *testing.T) {
	coord, _, client := newFarm(t, CoordinatorOptions{Obs: obs.NewScope(), EventLogCap: 16})
	resp, err := client.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	runWorkers(t, client, 2)
	// Wrap the ring past its 16-line cap so a from-zero follow starts
	// behind the window.
	coord.mu.Lock()
	ring := coord.byID[resp.ID].events
	for i := 0; ring.seq <= len(ring.lines); i++ {
		ring.append([]byte(fmt.Sprintf(`{"msg":"filler %d"}`+"\n", i)))
	}
	dropped := ring.seq - ring.n
	coord.mu.Unlock()
	if dropped == 0 {
		t.Fatalf("ring did not wrap")
	}
	var buf bytes.Buffer
	if err := client.Events(context.Background(), resp.ID, true, &buf); err != nil {
		t.Fatalf("follow: %v", err)
	}
	first, _, _ := strings.Cut(buf.String(), "\n")
	if !strings.HasPrefix(first, "# gap=") || !strings.Contains(first, "ring wrapped") {
		t.Fatalf("follow output does not lead with the gap marker:\n%s", buf.String())
	}
	// One-shot output stays pure JSONL: no marker.
	var oneShot bytes.Buffer
	if err := client.Events(context.Background(), resp.ID, false, &oneShot); err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	if strings.Contains(oneShot.String(), "# gap=") {
		t.Fatalf("one-shot events output contains the follow-mode gap marker")
	}
}
