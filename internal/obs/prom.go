package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the metrics
// registry. The exposition is an operational surface — scrapers want
// everything the process knows right now — so it always includes the
// non-golden section. Golden byte-identity applies to snapshots and
// artifacts, never to /metrics.
//
// Dotted registry names map to underscored Prometheus names under an
// "sz_" prefix: "campaign.cells.completed" → "sz_campaign_cells_completed".
// A registry name may carry a label suffix in curly braces
// (`campaign.tenant.pending{tenant="ci"}`); the base name becomes the
// metric family and the braces pass through as the sample's labels, so
// per-tenant gauges land as one family with a tenant label.

// promContentType is the exposition content type scrapers expect.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromHandler serves the registry in Prometheus text format. Nil-receiver
// safe: a nil registry serves an empty exposition.
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		WriteProm(w, r.Snapshot(true))
	})
}

// WriteProm renders a snapshot in Prometheus text format. Families are
// sorted by name; within a family, samples follow sorted registry-key
// order (so labeled variants sort by label) and histogram buckets keep
// ascending-le order with +Inf last. Equal snapshots render to equal
// bytes.
func WriteProm(w io.Writer, s Snapshot) error {
	fams := map[string]*promFamily{}
	add := func(raw, typ string, samples ...promSample) {
		base, _ := splitPromName(raw)
		f, ok := fams[base]
		if !ok {
			f = &promFamily{name: base, typ: typ}
			fams[base] = f
		}
		f.samples = append(f.samples, samples...)
	}
	for _, k := range sortedKeys(s.Counters) {
		base, labels := splitPromName(k)
		add(k, "counter", promSample{name: base, labels: labels, value: formatPromValue(float64(s.Counters[k]))})
	}
	for _, k := range sortedKeys(s.NonGoldenCounters) {
		base, labels := splitPromName(k)
		add(k, "counter", promSample{name: base, labels: labels, value: formatPromValue(float64(s.NonGoldenCounters[k]))})
	}
	for _, k := range sortedKeys(s.Gauges) {
		base, labels := splitPromName(k)
		add(k, "gauge", promSample{name: base, labels: labels, value: formatPromValue(s.Gauges[k])})
	}
	for _, k := range sortedKeys(s.Histograms) {
		add(k, "histogram", histSamples(k, s.Histograms[k])...)
	}
	for _, k := range sortedKeys(s.NonGolden) {
		add(k, "histogram", histSamples(k, s.NonGolden[k])...)
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, smp := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", smp.name, smp.labels, smp.value); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type promFamily struct {
	name    string
	typ     string
	samples []promSample
}

type promSample struct {
	name   string
	labels string // "{k=\"v\",...}" or ""
	value  string
}

// histSamples expands one histogram into cumulative _bucket series plus
// _sum and _count, recovering numeric bounds from the snapshot's
// "le_2^k" keys. The underflow bucket (zero, negative, non-finite
// observations) folds into the smallest bound.
func histSamples(raw string, h HistogramSnapshot) []promSample {
	base, labels := splitPromName(raw)
	type bound struct {
		le float64
		n  uint64
	}
	bounds := make([]bound, 0, len(h.Buckets))
	for key, n := range h.Buckets {
		bounds = append(bounds, bound{le: bucketKeyBound(key), n: n})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].le < bounds[j].le })
	samples := make([]promSample, 0, len(bounds)+3)
	var cum uint64
	for _, b := range bounds {
		cum += b.n
		samples = append(samples, promSample{
			name:   base + "_bucket",
			labels: mergeLabel(labels, "le", formatPromValue(b.le)),
			value:  formatPromValue(float64(cum)),
		})
	}
	samples = append(samples,
		promSample{name: base + "_bucket", labels: mergeLabel(labels, "le", "+Inf"), value: formatPromValue(float64(h.Count))},
		promSample{name: base + "_sum", labels: labels, value: formatPromValue(h.Sum)},
		promSample{name: base + "_count", labels: labels, value: formatPromValue(float64(h.Count))},
	)
	return samples
}

// bucketKeyBound parses a HistogramSnapshot bucket key back to its
// numeric upper bound.
func bucketKeyBound(key string) float64 {
	if key == "underflow" {
		return math.Ldexp(1, histMinExp)
	}
	exp, err := strconv.Atoi(strings.TrimPrefix(key, "le_2^"))
	if err != nil {
		return math.Inf(1)
	}
	return math.Ldexp(1, exp)
}

// splitPromName maps a registry name to (prometheus family name, label
// suffix). The label suffix, when present, passes through with its
// quoting intact.
func splitPromName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i:]
	} else {
		base = name
	}
	var b strings.Builder
	b.Grow(len(base) + 3)
	b.WriteString("sz_")
	for _, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String(), labels
}

// mergeLabel inserts one more label into an existing "{...}" suffix (or
// starts one), escaping the value per the exposition format.
func mergeLabel(labels, key, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	pair := key + `="` + esc + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + pair + "}"
}

// formatPromValue renders a sample value the way Prometheus expects:
// shortest round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseProm is a minimal exposition-format checker used by tests and the
// CI smoke job: it verifies comment lines are well-formed HELP/TYPE
// entries and every sample line parses as `name[{labels}] value`,
// returning the samples keyed by name+labels.
func ParseProm(data []byte) (map[string]float64, error) {
	series := map[string]float64{}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				return nil, fmt.Errorf("prom: line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				if len(parts) != 4 {
					return nil, fmt.Errorf("prom: line %d: malformed TYPE %q", ln+1, line)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom: line %d: unknown type %q", ln+1, parts[3])
				}
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("prom: line %d: no value in %q", ln+1, line)
		}
		name, val := line[:sp], line[sp+1:]
		if !validPromSampleName(name) {
			return nil, fmt.Errorf("prom: line %d: bad sample name %q", ln+1, name)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: bad value %q: %v", ln+1, val, err)
		}
		series[name] = v
	}
	return series, nil
}

// validPromSampleName accepts `name` or `name{label="v",...}`.
func validPromSampleName(s string) bool {
	name := s
	if i := strings.IndexByte(s, '{'); i >= 0 {
		if !strings.HasSuffix(s, "}") {
			return false
		}
		name = s[:i]
	}
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
