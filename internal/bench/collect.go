package bench

import (
	"context"
	"fmt"
	"hash/fnv"

	"repro/internal/experiment"
	"repro/internal/spec"
	"repro/internal/stats"
)

// CollectOptions configures artifact collection.
type CollectOptions struct {
	// Suite is the benchmark set (default spec.Suite()).
	Suite []spec.Benchmark
	// Config is the cell every benchmark runs under (scale, opt level,
	// stabilizer, noise). Config.Scale == 0 means 1.0.
	Config experiment.Config
	// Runs is the fixed sample count per benchmark (default 20); in
	// adaptive mode it is the starting count (minimum MinAdaptiveRuns).
	Runs int
	// Seed is the master seed; each benchmark's seed base is derived from
	// it and the benchmark name, so artifacts stay comparable when the
	// suite is subset or reordered.
	Seed uint64
	// Commit labels the artifact with the source revision (optional).
	Commit string
	// Throughput additionally records per-run host wall-clock times in the
	// artifact's non-golden HostSeconds field, for simulator-throughput
	// gating (retired instructions per host second). Off by default so
	// golden artifacts stay byte-identical across hosts and reruns.
	Throughput bool

	// Adaptive enables μOpTime-style adaptive stopping: sampling continues
	// in batches until the bootstrap CI half-width on the mean, relative
	// to the mean, reaches TargetRel — or MaxRuns is exhausted.
	Adaptive bool
	// TargetRel is the target relative CI half-width (default 0.005).
	TargetRel float64
	// Confidence is the CI level for the stopping rule (default 0.95).
	Confidence float64
	// BatchRuns is how many runs are added per round (default 10).
	BatchRuns int
	// MaxRuns is the adaptive run budget per benchmark (default 200).
	MaxRuns int
	// BootstrapB is the replicate count for the stopping CI (default 400;
	// the stopping rule needs stability, not tail precision).
	BootstrapB int
}

// MinAdaptiveRuns is the floor on the initial adaptive sample: below this
// a bootstrap CI on the mean is too coarse to steer by.
const MinAdaptiveRuns = 8

func (o *CollectOptions) defaults() {
	if o.Suite == nil {
		o.Suite = spec.Suite()
	}
	// Host timing happens inside the runner; the experiment config is the
	// channel that reaches it.
	o.Config.Throughput = o.Throughput
	if o.Runs == 0 {
		o.Runs = 20
	}
	if o.Adaptive {
		if o.Runs < MinAdaptiveRuns {
			o.Runs = MinAdaptiveRuns
		}
		if o.TargetRel == 0 {
			o.TargetRel = 0.005
		}
		if o.Confidence == 0 {
			o.Confidence = 0.95
		}
		if o.BatchRuns == 0 {
			o.BatchRuns = 10
		}
		if o.MaxRuns == 0 {
			o.MaxRuns = 200
		}
		if o.MaxRuns < o.Runs {
			o.MaxRuns = o.Runs
		}
		if o.BootstrapB == 0 {
			o.BootstrapB = 400
		}
	}
}

// SeedBase derives a benchmark's seed range start from the master seed and
// the benchmark name (FNV-1a), so the same benchmark gets the same seeds no
// matter which subset of the suite is collected. Exported because the
// campaign coordinator must shard cells with exactly this derivation for
// its merged artifacts to be byte-identical to a local collection.
func SeedBase(seed uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed + h.Sum64()
}

// Collect runs every benchmark in the suite under the configured cell and
// returns the artifact. Runs execute on the default experiment pool; the
// samples are bit-identical at any worker count because each run is fully
// determined by its seed. In adaptive mode each benchmark keeps sampling in
// batches until the stopping rule fires (see CollectOptions.Adaptive).
func Collect(ctx context.Context, opts CollectOptions) (*Artifact, error) {
	opts.defaults()
	if err := validateCollect(&opts); err != nil {
		return nil, err
	}
	art := &Artifact{Meta: metaFor(opts), Metrics: &MetricsSummary{}}
	for _, b := range opts.Suite {
		entry, err := collectOne(ctx, b, opts, art.Metrics)
		if err != nil {
			return nil, err
		}
		art.Benchmarks = append(art.Benchmarks, entry)
	}
	art.normalize()
	return art, nil
}

func validateCollect(opts *CollectOptions) error {
	if opts.Runs < 1 {
		return fmt.Errorf("bench: Runs=%d, need at least 1", opts.Runs)
	}
	if opts.Adaptive && (opts.TargetRel <= 0 || opts.TargetRel >= 1) {
		return fmt.Errorf("bench: adaptive TargetRel=%v must be in (0, 1)", opts.TargetRel)
	}
	if opts.Adaptive && (opts.Confidence <= 0 || opts.Confidence >= 1) {
		return fmt.Errorf("bench: adaptive Confidence=%v must be in (0, 1)", opts.Confidence)
	}
	return nil
}

func metaFor(opts CollectOptions) Meta {
	stab := "native"
	if opts.Config.Stabilizer != nil {
		stab = "stab:" + opts.Config.Stabilizer.EnabledString()
	}
	scale := opts.Config.Scale
	if scale == 0 {
		scale = 1.0
	}
	noise := opts.Config.Noise
	if noise == 0 {
		noise = experiment.DefaultNoise
	}
	if noise < 0 {
		noise = 0
	}
	return Meta{
		Schema:     SchemaVersion,
		Unit:       UnitSimulatedSeconds,
		Seed:       opts.Seed,
		Scale:      scale,
		Level:      opts.Config.Level.String(),
		Stabilizer: stab,
		Noise:      noise,
		Commit:     opts.Commit,
		Engine:     opts.Config.Engine.String(),
	}
}

func collectOne(ctx context.Context, b spec.Benchmark, opts CollectOptions, met *MetricsSummary) (Benchmark, error) {
	cc, err := experiment.CompileBench(b, opts.Config)
	if err != nil {
		return Benchmark{}, err
	}
	base := SeedBase(opts.Seed, b.Name)
	entry := Benchmark{Name: b.Name, SeedBase: base}

	grow := func(n int) error {
		ss, err := cc.Collect(ctx, n, base+uint64(len(entry.Seconds)))
		if err != nil {
			return err
		}
		entry.Seconds = append(entry.Seconds, ss.Seconds...)
		for _, r := range ss.Results {
			entry.Cycles = append(entry.Cycles, r.Cycles)
			entry.Instructions = append(entry.Instructions, r.Instructions)
			if opts.Throughput {
				entry.HostSeconds = append(entry.HostSeconds, r.HostSeconds)
			}
		}
		// Per-run counters are stored in checkpoint cells, so a resumed
		// collection replays them and the summary stays byte-identical.
		met.add(MetricsSummary{TotalRuns: len(ss.Results), Counters: ss.Counters})
		return nil
	}

	if err := grow(opts.Runs); err != nil {
		return Benchmark{}, err
	}
	if opts.Adaptive {
		// The stopping CI uses a seed derived from the benchmark's, so the
		// decision sequence — and therefore the artifact — is reproducible.
		bootSeed := base ^ 0xada9_71fe
		for {
			iv := stats.BootstrapCI(entry.Seconds, stats.Mean, opts.BootstrapB, opts.Confidence, bootSeed)
			mean := stats.Mean(entry.Seconds)
			entry.RelHalfWidth = iv.HalfWidth() / mean
			if entry.RelHalfWidth <= opts.TargetRel {
				entry.Stopped = StoppedTarget
				break
			}
			if len(entry.Seconds) >= opts.MaxRuns {
				entry.Stopped = StoppedBudget
				break
			}
			batch := opts.BatchRuns
			if rem := opts.MaxRuns - len(entry.Seconds); batch > rem {
				batch = rem
			}
			if err := grow(batch); err != nil {
				return Benchmark{}, err
			}
		}
	}
	entry.Runs = len(entry.Seconds)
	return entry, nil
}
