package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/compiler"
	"repro/internal/spec"
	"repro/internal/stats"
)

// LinkOrderRow reports one benchmark's sensitivity to link order — the §1
// claim that "simply changing the link order of object files can cause
// performance to decrease by as much as 57%".
type LinkOrderRow struct {
	Benchmark string
	// Best, Worst, and Default are mean execution times (seconds) over the
	// repeats for the fastest order found, the slowest, and the default
	// (declaration) order.
	Best, Worst, Default float64
	// MaxDegradation = Worst/Best - 1.
	MaxDegradation float64
}

// LinkOrderResult is the link-order bias experiment.
type LinkOrderResult struct {
	Rows   []LinkOrderRow
	Orders int
	Runs   int
}

// LinkOrderOptions configures the experiment.
type LinkOrderOptions struct {
	Scale  float64
	Orders int // how many random link orders to try per benchmark
	Runs   int // repeats per order (averaged to suppress noise)
	Seed   uint64
	Suite  []spec.Benchmark
}

func (o *LinkOrderOptions) defaults() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Orders == 0 {
		o.Orders = 32
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.Suite == nil {
		o.Suite = spec.Suite()
	}
}

// LinkOrder measures execution time across random link orders.
func LinkOrder(ctx context.Context, opts LinkOrderOptions) (*LinkOrderResult, error) {
	opts.defaults()
	res := &LinkOrderResult{Orders: opts.Orders, Runs: opts.Runs}
	for bi, b := range opts.Suite {
		// Default order.
		cd, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2})
		if err != nil {
			return nil, err
		}
		dss, err := cd.Collect(ctx, opts.Runs, opts.Seed+uint64(bi)*50_000)
		if err != nil {
			return nil, err
		}
		def := stats.Mean(dss.Seconds)

		cl, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2, RandomLinkOrder: true})
		if err != nil {
			return nil, err
		}
		// Each link order is an independent cell; sweep them in parallel
		// and reduce best/worst afterwards in order.
		means := make([]float64, opts.Orders)
		pool := NewPool(0)
		err = pool.ForEachLabeled(ctx, b.Name+" link orders", opts.Orders,
			func(ctx context.Context, o int) error {
				// Same seed within an order across repeats keeps the order
				// fixed while the noise draw varies: seed selects the order
				// deterministically inside Run.
				var sum float64
				for rep := 0; rep < opts.Runs; rep++ {
					// Noise and physical layout must vary per repeat while
					// the link order stays fixed: Run's RNG derives both from
					// the seed, so re-derive the same order by reusing the
					// seed and accept shared noise; averaging is done across
					// orders instead. One run per order is the paper's
					// protocol too.
					r, err := cl.RunCtx(ctx, opts.Seed+uint64(bi)*50_000+uint64(o)+1)
					if err != nil {
						return err
					}
					sum += r.Seconds
				}
				means[o] = sum / float64(opts.Runs)
				return nil
			})
		if err != nil {
			return nil, err
		}
		best, worst := def, def
		for _, mean := range means {
			if mean < best {
				best = mean
			}
			if mean > worst {
				worst = mean
			}
		}
		res.Rows = append(res.Rows, LinkOrderRow{
			Benchmark:      b.Name,
			Best:           best,
			Worst:          worst,
			Default:        def,
			MaxDegradation: worst/best - 1,
		})
	}
	return res, nil
}

// Table renders the experiment, worst offenders first.
func (r *LinkOrderResult) Table() string {
	rows := append([]LinkOrderRow(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].MaxDegradation > rows[j].MaxDegradation })
	var sb strings.Builder
	fmt.Fprintf(&sb, "Link-order bias: %d random orders per benchmark\n", r.Orders)
	fmt.Fprintf(&sb, "%-12s %12s %12s %12s %12s\n", "Benchmark", "best (s)", "worst (s)", "default (s)", "worst/best")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-12s %12.5f %12.5f %12.5f %+11.1f%%\n",
			row.Benchmark, row.Best, row.Worst, row.Default, row.MaxDegradation*100)
	}
	return sb.String()
}

// EnvSizeRow is one environment-size point for one benchmark.
type EnvSizeRow struct {
	Benchmark string
	// Seconds[i] is the mean time with environment size EnvSizes[i].
	Seconds []float64
}

// EnvSizeResult is the Mytkowicz-style environment-size bias experiment:
// changing only the size of the (simulated) environment block moves the
// stack base and with it performance.
type EnvSizeResult struct {
	Rows     []EnvSizeRow
	EnvSizes []uint64
	Runs     int
}

// EnvSizeOptions configures the experiment.
type EnvSizeOptions struct {
	Scale    float64
	Runs     int
	Seed     uint64
	EnvSizes []uint64
	Suite    []spec.Benchmark
}

func (o *EnvSizeOptions) defaults() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Runs == 0 {
		o.Runs = 5
	}
	if o.EnvSizes == nil {
		for s := uint64(0); s <= 4096; s += 256 {
			o.EnvSizes = append(o.EnvSizes, s)
		}
	}
	if o.Suite == nil {
		// The effect is per-benchmark similar; default to a stack-sensitive
		// subset to keep runtime sane.
		names := []string{"gcc", "perlbench", "sjeng"}
		for _, n := range names {
			b, _ := spec.ByName(n)
			o.Suite = append(o.Suite, b)
		}
	}
}

// EnvSize sweeps the environment block size.
func EnvSize(ctx context.Context, opts EnvSizeOptions) (*EnvSizeResult, error) {
	opts.defaults()
	res := &EnvSizeResult{EnvSizes: opts.EnvSizes, Runs: opts.Runs}
	// The benchmark × size grid is one flat set of independent cells; all
	// of them share a single compiled module per benchmark via the compile
	// cache (EnvSize varies only the runtime environment block).
	nb, np := len(opts.Suite), len(opts.EnvSizes)
	rows := make([]EnvSizeRow, nb)
	for bi, b := range opts.Suite {
		rows[bi] = EnvSizeRow{Benchmark: b.Name, Seconds: make([]float64, np)}
	}
	pool := NewPool(0)
	err := pool.ForEach(ctx, nb*np, func(ctx context.Context, k int) error {
		bi, si := k/np, k%np
		cc, err := CompileBench(opts.Suite[bi], Config{Scale: opts.Scale, Level: compiler.O2, EnvSize: opts.EnvSizes[si]})
		if err != nil {
			return err
		}
		ss, err := cc.Collect(ctx, opts.Runs, opts.Seed+uint64(bi)*10_000+uint64(si)*100)
		if err != nil {
			return err
		}
		rows[bi].Seconds[si] = stats.Mean(ss.Seconds)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the sweep with each benchmark's range.
func (r *EnvSizeResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Environment-size bias (%d runs per point)\n", r.Runs)
	fmt.Fprintf(&sb, "%-12s %10s %12s %12s %9s\n", "Benchmark", "points", "min (s)", "max (s)", "range")
	for _, row := range r.Rows {
		min, max := row.Seconds[0], row.Seconds[0]
		for _, s := range row.Seconds {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		fmt.Fprintf(&sb, "%-12s %10d %12.5f %12.5f %+8.1f%%\n",
			row.Benchmark, len(row.Seconds), min, max, (max/min-1)*100)
	}
	return sb.String()
}
