package heap

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/trap"
)

// mustAlloc and mustFree are helpers for workloads that cannot
// legitimately fault.
func mustAlloc(t *testing.T, a Allocator, size uint64) mem.Addr {
	t.Helper()
	addr, err := a.Alloc(size)
	if err != nil {
		t.Fatalf("%s: Alloc(%d): %v", a.Name(), size, err)
	}
	return addr
}

func mustFree(t *testing.T, a Allocator, addr mem.Addr) {
	t.Helper()
	if err := a.Free(addr); err != nil {
		t.Fatalf("%s: Free(%#x): %v", a.Name(), uint64(addr), err)
	}
}

func TestSizeClass(t *testing.T) {
	cases := []struct {
		size uint64
		cls  int
	}{
		{0, 0}, {1, 0}, {16, 0}, {17, 1}, {32, 1}, {33, 2}, {64, 2},
		{1024, 6}, {1 << 20, 16},
	}
	for _, c := range cases {
		if got := sizeClass(c.size); got != c.cls {
			t.Errorf("sizeClass(%d) = %d, want %d", c.size, got, c.cls)
		}
	}
}

func TestClassSizeCoversRequest(t *testing.T) {
	f := func(sz uint32) bool {
		size := uint64(sz)%(1<<20) + 1
		c := sizeClass(size)
		return classSize(c) >= size && (c == 0 || classSize(c-1) < size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// exerciseAllocator runs a deterministic alloc/free workload and checks the
// fundamental invariants: alignment, no overlap among live objects, and no
// double-handout.
func exerciseAllocator(t *testing.T, a Allocator) {
	t.Helper()
	r := rng.NewMarsaglia(1234)
	type obj struct {
		addr mem.Addr
		size uint64
	}
	var live []obj
	for step := 0; step < 4000; step++ {
		if len(live) > 0 && (r.Intn(2) == 0 || len(live) > 500) {
			i := r.Intn(len(live))
			mustFree(t, a, live[i].addr)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint64(r.Intn(2000) + 1)
		addr := mustAlloc(t, a, size)
		if uint64(addr)%MinAlign != 0 {
			t.Fatalf("%s: address %#x not %d-aligned", a.Name(), uint64(addr), MinAlign)
		}
		for _, o := range live {
			if addr < o.addr+mem.Addr(o.size) && o.addr < addr+mem.Addr(size) {
				t.Fatalf("%s: allocation [%#x,%d) overlaps live [%#x,%d)",
					a.Name(), uint64(addr), size, uint64(o.addr), o.size)
			}
		}
		live = append(live, obj{addr, size})
	}
}

func TestSegregatedInvariants(t *testing.T) {
	exerciseAllocator(t, NewSegregated(mem.NewAddressSpace()))
}

func TestTLSFInvariants(t *testing.T) {
	a := NewTLSF(mem.NewAddressSpace(), 1<<22)
	exerciseAllocator(t, a)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDieHardInvariants(t *testing.T) {
	exerciseAllocator(t, NewDieHard(mem.NewAddressSpace(), rng.NewMarsaglia(7)))
}

func TestShuffleInvariants(t *testing.T) {
	as := mem.NewAddressSpace()
	exerciseAllocator(t, NewShuffle(NewSegregated(as), rng.NewMarsaglia(7), DefaultShuffleN))
}

func TestShuffleOverTLSFInvariants(t *testing.T) {
	as := mem.NewAddressSpace()
	exerciseAllocator(t, NewShuffle(NewTLSF(as, 1<<22), rng.NewMarsaglia(7), DefaultShuffleN))
}

func TestSegregatedReusesFreedMemory(t *testing.T) {
	s := NewSegregated(mem.NewAddressSpace())
	a := mustAlloc(t, s, 64)
	mustFree(t, s, a)
	b := mustAlloc(t, s, 64)
	if a != b {
		t.Fatalf("segregated LIFO reuse broken: freed %#x, got %#x", uint64(a), uint64(b))
	}
}

func TestSegregatedLargeObject(t *testing.T) {
	s := NewSegregated(mem.NewAddressSpace())
	a := mustAlloc(t, s, 64<<20)
	mustFree(t, s, a) // must not fault
}

func TestTLSFCoalescing(t *testing.T) {
	tl := NewTLSF(mem.NewAddressSpace(), 1<<20)
	a := mustAlloc(t, tl, 128)
	b := mustAlloc(t, tl, 128)
	c := mustAlloc(t, tl, 128)
	mustFree(t, tl, a)
	mustFree(t, tl, c)
	mustFree(t, tl, b) // should merge all three with the wilderness
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// After full coalescing a pool-sized allocation must succeed without
	// growing: count mapped regions before and after.
	as2 := mem.NewAddressSpace()
	tl2 := NewTLSF(as2, 1<<20)
	x := mustAlloc(t, tl2, 1<<12)
	mustFree(t, tl2, x)
	before := len(as2.Mapped())
	mustAlloc(t, tl2, 1<<20-64)
	if len(as2.Mapped()) != before {
		t.Fatal("TLSF grew despite a fully coalesced pool")
	}
}

func TestTLSFGrowth(t *testing.T) {
	tl := NewTLSF(mem.NewAddressSpace(), 1<<16)
	var addrs []mem.Addr
	for i := 0; i < 100; i++ {
		addrs = append(addrs, mustAlloc(t, tl, 4096))
	}
	for _, a := range addrs {
		mustFree(t, tl, a)
	}
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTLSFLazyPool(t *testing.T) {
	// The pool is mapped on first use, not at construction.
	as := mem.NewAddressSpace()
	tl := NewTLSF(as, 1<<20)
	if len(as.Mapped()) != 0 {
		t.Fatal("NewTLSF mapped its pool eagerly")
	}
	mustAlloc(t, tl, 64)
	if len(as.Mapped()) != 1 {
		t.Fatal("first allocation did not map the pool")
	}
}

func TestTLSFRandomWorkloadProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tl := NewTLSF(mem.NewAddressSpace(), 1<<20)
		r := rng.NewMarsaglia(seed)
		var live []mem.Addr
		for i := 0; i < 300; i++ {
			if len(live) > 0 && r.Intn(2) == 0 {
				j := r.Intn(len(live))
				if err := tl.Free(live[j]); err != nil {
					return false
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				a, err := tl.Alloc(uint64(r.Intn(8192) + 1))
				if err != nil {
					return false
				}
				live = append(live, a)
			}
		}
		return tl.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDieHardNoImmediateReuse(t *testing.T) {
	// DieHard's defining property: a freed address is unlikely to be
	// returned by the very next allocation.
	d := NewDieHard(mem.NewAddressSpace(), rng.NewMarsaglia(3))
	reused := 0
	for i := 0; i < 200; i++ {
		a := mustAlloc(t, d, 64)
		mustFree(t, d, a)
		if mustAlloc(t, d, 64) == a {
			reused++
		}
	}
	if reused > 5 {
		t.Fatalf("diehard reused the freed address %d/200 times", reused)
	}
}

func TestShuffleDisplacesBaseOrder(t *testing.T) {
	// The shuffling layer must break the base allocator's deterministic
	// bump order: consecutive allocations should rarely be adjacent.
	as := mem.NewAddressSpace()
	sh := NewShuffle(NewSegregated(as), rng.NewMarsaglia(5), DefaultShuffleN)
	prev := mustAlloc(t, sh, 64)
	adjacent := 0
	for i := 0; i < 500; i++ {
		cur := mustAlloc(t, sh, 64)
		if cur == prev+64 {
			adjacent++
		}
		prev = cur
	}
	if adjacent > 25 {
		t.Fatalf("shuffled heap produced %d/500 sequential allocations", adjacent)
	}
}

func TestShufflePermutationProperty(t *testing.T) {
	// Every address handed out by the layer came from the base allocator,
	// and the layer never hands out the same address twice while live.
	as := mem.NewAddressSpace()
	base := NewSegregated(as)
	sh := NewShuffle(base, rng.NewMarsaglia(11), 16)
	seen := map[mem.Addr]bool{}
	var live []mem.Addr
	r := rng.NewMarsaglia(12)
	for i := 0; i < 2000; i++ {
		if len(live) > 0 && r.Intn(3) == 0 {
			j := r.Intn(len(live))
			mustFree(t, sh, live[j])
			delete(seen, live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		a := mustAlloc(t, sh, 48)
		if seen[a] {
			t.Fatalf("address %#x handed out while live", uint64(a))
		}
		seen[a] = true
		live = append(live, a)
	}
}

func TestShuffleLargeObjectBypass(t *testing.T) {
	as := mem.NewAddressSpace()
	sh := NewShuffle(NewSegregated(as), rng.NewMarsaglia(1), DefaultShuffleN)
	a := mustAlloc(t, sh, 32<<20)
	mustFree(t, sh, a) // must not fault
}

func TestAllocatorExhaustionReported(t *testing.T) {
	// Under a tight map budget every allocator reports exhaustion as an
	// out-of-memory trap instead of aborting the process (satellite for
	// the old tlsf growth panic).
	builders := []struct {
		name  string
		build func(as *mem.AddressSpace) Allocator
	}{
		{"segregated", func(as *mem.AddressSpace) Allocator { return NewSegregated(as) }},
		{"tlsf", func(as *mem.AddressSpace) Allocator { return NewTLSF(as, 1<<16) }},
		{"diehard", func(as *mem.AddressSpace) Allocator { return NewDieHard(as, rng.NewMarsaglia(9)) }},
		{"shuffle", func(as *mem.AddressSpace) Allocator {
			return NewShuffle(NewSegregated(as), rng.NewMarsaglia(9), 16)
		}},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			as := mem.NewAddressSpace()
			as.SetMapLimit(1 << 16)
			a := b.build(as)
			var err error
			for i := 0; i < 1_000_000; i++ {
				if _, err = a.Alloc(4096); err != nil {
					break
				}
			}
			tr := trap.AsTrap(err)
			if tr == nil || tr.Kind != trap.OutOfMemory {
				t.Fatalf("%s exhaustion reported %v, want out-of-memory trap", b.name, err)
			}
		})
	}
}

func TestDieHardGrowsPastHalfFull(t *testing.T) {
	// DieHard doubles a size class that reaches half occupancy instead of
	// failing: allocator capacity policy must not be observable to the
	// program (the oracle compares allocators cell against cell).
	d := NewDieHard(mem.NewAddressSpace(), rng.NewMarsaglia(21))
	seen := make(map[mem.Addr]bool)
	for i := 0; i < 3*dieHardSlots; i++ {
		a, err := d.Alloc(16)
		if err != nil {
			t.Fatalf("alloc %d failed despite unlimited address space: %v", i, err)
		}
		if seen[a] {
			t.Fatalf("alloc %d returned live address %#x twice", i, uint64(a))
		}
		seen[a] = true
	}
	// Growth keeps occupancy at or below half in every class.
	for c, dc := range d.cls {
		if dc != nil && dc.used*2 > dc.slots {
			t.Fatalf("class %d at %d/%d used: over half full", c, dc.used, dc.slots)
		}
	}
}

func BenchmarkSegregatedAllocFree(b *testing.B) {
	s := NewSegregated(mem.NewAddressSpace())
	for i := 0; i < b.N; i++ {
		a, _ := s.Alloc(64)
		s.Free(a)
	}
}

func BenchmarkTLSFAllocFree(b *testing.B) {
	tl := NewTLSF(mem.NewAddressSpace(), 1<<24)
	for i := 0; i < b.N; i++ {
		a, _ := tl.Alloc(64)
		tl.Free(a)
	}
}

func BenchmarkShuffleAllocFree(b *testing.B) {
	sh := NewShuffle(NewSegregated(mem.NewAddressSpace()), rng.NewMarsaglia(1), DefaultShuffleN)
	for i := 0; i < b.N; i++ {
		a, _ := sh.Alloc(64)
		sh.Free(a)
	}
}
