package experiment

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
)

// PhasesResult tests §4's phase-behavior argument: a program whose execution
// alternates through distinct phases must still come out normally
// distributed under re-randomization, because each phase decomposes into
// normalized subprograms.
type PhasesResult struct {
	// TraceText is the sampled counter series of one native run, showing
	// the phases exist.
	TraceText  string
	PhaseCount int
	// Normality of execution times with one-time vs re-randomization.
	SWOnce, SWRerand float64
	CVOnce, CVRerand float64
	Runs             int
}

// PhasesOptions configures the experiment.
type PhasesOptions struct {
	Scale    float64
	Runs     int
	Seed     uint64
	Interval uint64
}

func (o *PhasesOptions) defaults() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Runs == 0 {
		o.Runs = 30
	}
	if o.Interval == 0 {
		o.Interval = 25_000
	}
}

// phasedBenchmark builds a program with three starkly different phases:
// a compute-bound integer loop, a memory-bound pointer chase, and a branchy
// maze — repeated twice (A B C A B C), the SimPoint-style structure §4
// appeals to.
func phasedBenchmark() spec.Benchmark {
	return spec.Benchmark{
		Name: "phased", Lang: "synthetic",
		Notes: "three alternating phases: integer compute, pointer chase, branch maze",
		Build: func(scale float64) *ir.Module {
			mb := ir.NewModuleBuilder("phased")

			compute := mb.Func("compute", 2)
			x := compute.Mov(compute.Param(0))
			compute.Loop(compute.Param(1), func(i ir.Reg) {
				for u := 0; u < 8; u++ {
					compute.MovTo(x, compute.Add(compute.Mul(x, compute.ConstI(37)), compute.ConstI(int64(u+1))))
				}
			})
			compute.Ret(x)

			build := mb.Func("build", 1)
			nodes := build.Param(0)
			table := build.Alloc(1 << 19)
			build.Loop(nodes, func(j ir.Reg) {
				nd := build.Alloc(32)
				build.StoreH(nd, 8, ir.NoReg, j)
				build.StoreH(table, 0, j, nd)
			})
			build.Loop(nodes, func(j ir.Reg) {
				nd := build.LoadH(table, 0, j)
				k := build.Rem(build.Add(build.Mul(j, build.ConstI(2654435761)), build.ConstI(1)), nodes)
				build.StoreH(nd, 0, ir.NoReg, build.LoadH(table, 0, k))
			})
			build.Ret(table)

			chase := mb.Func("chase", 2)
			p := chase.LoadH(chase.Param(0), 0, ir.NoReg)
			chase.Loop(chase.Param(1), func(i ir.Reg) {
				chase.MovTo(p, chase.LoadH(p, 0, ir.NoReg))
			})
			chase.Ret(chase.LoadH(p, 8, ir.NoReg))

			maze := mb.Func("maze", 2)
			seed, rounds := maze.Param(0), maze.Param(1)
			mx := maze.Mov(seed)
			macc := maze.ConstI(0)
			maze.Loop(rounds, func(i ir.Reg) {
				maze.MovTo(mx, maze.Add(maze.Mul(mx, maze.ConstI(6364136223846793005)), maze.ConstI(1442695040888963407)))
				for d := 0; d < 10; d++ {
					nib := maze.And(maze.Shr(mx, maze.ConstI(int64(d*5+1))), maze.ConstI(15))
					var cond ir.Reg
					if d%2 == 0 {
						cond = maze.CmpLT(nib, maze.ConstI(13))
					} else {
						cond = maze.CmpLT(maze.ConstI(12), nib)
					}
					maze.If(cond, func() {
						maze.MovTo(macc, maze.Add(macc, maze.ConstI(int64(d+1))))
					}, func() {
						maze.MovTo(macc, maze.Xor(macc, maze.ConstI(int64(d*3+7))))
					})
				}
			})
			maze.Ret(macc)

			main := mb.Func("main", 0)
			ring := main.Call(build.Index(), main.ConstI(scaleN(scale, 8000)))
			acc := main.ConstI(0)
			main.LoopN(2, func(rep ir.Reg) {
				a := main.Call(compute.Index(), main.Add(main.ConstI(99), rep), main.ConstI(scaleN(scale, 14000)))
				bv := main.Call(chase.Index(), ring, main.ConstI(scaleN(scale, 60000)))
				cv := main.Call(maze.Index(), main.Add(main.ConstI(7), rep), main.ConstI(scaleN(scale, 6000)))
				main.MovTo(acc, main.Add(acc, main.Add(a, main.Add(bv, cv))))
			})
			main.Sink(acc)
			main.Ret(ir.NoReg)
			return mb.Module()
		},
	}
}

// scaleN scales a trip count.
func scaleN(scale float64, base int64) int64 {
	v := int64(scale * float64(base))
	if v < 1 {
		return 1
	}
	return v
}

// Phases runs the experiment.
func Phases(ctx context.Context, opts PhasesOptions) (*PhasesResult, error) {
	opts.defaults()
	b := phasedBenchmark()

	// 1. Trace one native run to show the phases.
	src, err := compiler.Compile(b.Build(opts.Scale), compiler.Options{Level: compiler.O2})
	if err != nil {
		return nil, err
	}
	as := mem.NewAddressSpace()
	img, err := compiler.Link(src, compiler.DefaultOrder(len(src.Funcs)), as)
	if err != nil {
		return nil, err
	}
	mach := machine.New(machine.DefaultConfig())
	mach.SetPhysicalSeed(rng.NewMarsaglia(opts.Seed).Next64())
	sampler := trace.New(&interp.NativeRuntime{
		FuncAddrs: img.FuncAddrs, GlobalAddrs: img.GlobalAddrs,
		Stack: as.StackBase(), Heap: heap.NewTLSF(as, 1<<22), Mach: mach,
	}, mach, 40_000)
	if _, err := interp.Run(src, interp.Options{Machine: mach, Runtime: sampler}); err != nil {
		return nil, err
	}
	series := sampler.Series()

	// 2. Normality with one-time vs re-randomization.
	once := core.Options{Code: true, Stack: true, Heap: true}
	co, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2, Stabilizer: &once})
	if err != nil {
		return nil, err
	}
	sso, err := co.Collect(ctx, opts.Runs, opts.Seed+100)
	if err != nil {
		return nil, err
	}
	so := sso.Seconds
	rr := core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Interval: opts.Interval}
	cr, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2, Stabilizer: &rr})
	if err != nil {
		return nil, err
	}
	ssr, err := cr.Collect(ctx, opts.Runs, opts.Seed+200)
	if err != nil {
		return nil, err
	}
	sr := ssr.Seconds

	return &PhasesResult{
		TraceText:  series.String(),
		PhaseCount: series.PhaseCount(0.10),
		SWOnce:     stats.ShapiroWilk(so).P,
		SWRerand:   stats.ShapiroWilk(sr).P,
		CVOnce:     stats.StdDev(so) / stats.Mean(so),
		CVRerand:   stats.StdDev(sr) / stats.Mean(sr),
		Runs:       opts.Runs,
	}, nil
}

// Table renders the experiment.
func (r *PhasesResult) Table() string {
	var sb strings.Builder
	sb.WriteString("Phase behavior (§4): a multi-phase program under STABILIZER\n")
	sb.WriteString(r.TraceText)
	fmt.Fprintf(&sb, "\none-time randomization:  Shapiro-Wilk p=%.3f, CV %.2f%%\n", r.SWOnce, r.CVOnce*100)
	fmt.Fprintf(&sb, "re-randomization:        Shapiro-Wilk p=%.3f, CV %.2f%%\n", r.SWRerand, r.CVRerand*100)
	if r.SWRerand >= 0.05 {
		sb.WriteString("-> normal under re-randomization despite the phases, as §4 argues\n")
	}
	return sb.String()
}
