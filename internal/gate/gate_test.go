package gate

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/experiment"
	"repro/internal/stats"
)

// synthetic builds an artifact whose benchmarks each carry n deterministic
// normal-shaped samples around the given means.
func synthetic(n int, means map[string]float64) *bench.Artifact {
	a := &bench.Artifact{
		Meta: bench.Meta{Schema: bench.SchemaVersion, Unit: bench.UnitSimulatedSeconds,
			Seed: 1, Scale: 1, Level: "-O2", Stabilizer: "native", Noise: 0.0025},
	}
	for name, mu := range means {
		xs := make([]float64, n)
		for i := range xs {
			p := (float64(i) + 0.5) / float64(n)
			xs[i] = mu * (1 + 0.0025*stats.NormalQuantile(p))
		}
		a.Benchmarks = append(a.Benchmarks, bench.Benchmark{
			Name: name, SeedBase: 0, Runs: n, Seconds: xs,
		})
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// scaled returns a copy of the artifact with every sample multiplied by f.
func scaled(a *bench.Artifact, f float64, only ...string) *bench.Artifact {
	buf, err := a.Encode()
	if err != nil {
		panic(err)
	}
	out, err := bench.ReadBytes(buf)
	if err != nil {
		panic(err)
	}
	pick := map[string]bool{}
	for _, n := range only {
		pick[n] = true
	}
	for i := range out.Benchmarks {
		if len(only) > 0 && !pick[out.Benchmarks[i].Name] {
			continue
		}
		for j := range out.Benchmarks[i].Seconds {
			out.Benchmarks[i].Seconds[j] *= f
		}
	}
	return out
}

func TestIdenticalArtifactsPass(t *testing.T) {
	a := synthetic(20, map[string]float64{"astar": 0.5, "mcf": 1.2, "lbm": 2.0})
	rep, err := Compare(a, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fail || rep.Failures != 0 {
		t.Fatalf("identical artifacts failed the gate: %s", rep.Table())
	}
	for _, r := range rep.Rows {
		if r.Verdict != Indistinguishable {
			t.Errorf("%s: verdict %s on identical samples", r.Benchmark, r.Verdict)
		}
		if r.Speedup != 1 {
			t.Errorf("%s: speedup %v on identical samples", r.Benchmark, r.Speedup)
		}
		if !r.BCa.Contains(1) || !r.Percentile.Contains(1) {
			t.Errorf("%s: CI excludes 1 on identical samples: %+v %+v", r.Benchmark, r.BCa, r.Percentile)
		}
	}
}

func TestInjectedSlowdownRegresses(t *testing.T) {
	old := synthetic(20, map[string]float64{"astar": 0.5, "mcf": 1.2, "lbm": 2.0})
	new := scaled(old, 1.05, "mcf")
	rep, err := Compare(old, new, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mcf *Row
	for i := range rep.Rows {
		if rep.Rows[i].Benchmark == "mcf" {
			mcf = &rep.Rows[i]
		} else if rep.Rows[i].Verdict != Indistinguishable {
			t.Errorf("%s: verdict %s, want indistinguishable", rep.Rows[i].Benchmark, rep.Rows[i].Verdict)
		}
	}
	if mcf == nil {
		t.Fatal("mcf row missing")
	}
	if mcf.Verdict != Regressed {
		t.Fatalf("mcf verdict = %s, want regressed\n%s", mcf.Verdict, rep.Table())
	}
	if mcf.PAdj >= 0.05 {
		t.Errorf("mcf adjusted p = %v, want < 0.05", mcf.PAdj)
	}
	if mcf.BCa.Contains(1) || mcf.BCa.Hi >= 1 {
		t.Errorf("mcf BCa CI %+v should lie entirely below 1", mcf.BCa)
	}
	if got := mcf.Slowdown(); math.Abs(got-0.05) > 0.005 {
		t.Errorf("mcf slowdown = %v, want ~0.05", got)
	}
	if mcf.CohensD <= 0 || mcf.CliffsDelta <= 0 {
		t.Errorf("effect sizes should be positive for a slowdown: d=%v δ=%v", mcf.CohensD, mcf.CliffsDelta)
	}
	if !rep.Fail || rep.Failures != 1 {
		t.Errorf("gate: fail=%v failures=%d, want one failure", rep.Fail, rep.Failures)
	}
	if !strings.Contains(rep.Table(), "GATE FAIL") {
		t.Errorf("table missing GATE FAIL:\n%s", rep.Table())
	}
}

func TestImprovementDoesNotFail(t *testing.T) {
	old := synthetic(20, map[string]float64{"astar": 0.5, "mcf": 1.2})
	new := scaled(old, 1/1.05, "mcf")
	rep, err := Compare(old, new, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.Benchmark == "mcf" && r.Verdict != Improved {
			t.Errorf("mcf verdict = %s, want improved", r.Verdict)
		}
	}
	if rep.Fail {
		t.Errorf("an improvement failed the gate:\n%s", rep.Table())
	}
}

func TestThresholdGatesSmallRegressions(t *testing.T) {
	old := synthetic(30, map[string]float64{"mcf": 1.0})
	new := scaled(old, 1.02, "mcf")
	// 2% real slowdown: significant, but below a 5% threshold.
	rep, err := Compare(old, new, Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows[0].Verdict != Regressed {
		t.Fatalf("verdict = %s, want regressed", rep.Rows[0].Verdict)
	}
	if rep.Fail {
		t.Errorf("sub-threshold regression failed the gate:\n%s", rep.Table())
	}
	// The default 1% threshold does fail it.
	rep, err = Compare(old, new, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fail {
		t.Errorf("2%% regression passed the default gate:\n%s", rep.Table())
	}
}

func TestIncomparableAndPartialArtifacts(t *testing.T) {
	a := synthetic(10, map[string]float64{"astar": 0.5, "mcf": 1.2})
	b := synthetic(10, map[string]float64{"mcf": 1.2, "lbm": 2.0})
	rep, err := Compare(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Benchmark != "mcf" {
		t.Errorf("rows = %+v, want just mcf", rep.Rows)
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "astar" ||
		len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "lbm" {
		t.Errorf("OnlyOld=%v OnlyNew=%v", rep.OnlyOld, rep.OnlyNew)
	}

	c := synthetic(10, map[string]float64{"astar": 0.5})
	c.Meta.Scale = 0.5
	if _, err := Compare(a, c, Options{}); err == nil {
		t.Error("comparing artifacts at different scales should error")
	}
	c = synthetic(10, map[string]float64{"astar": 0.5})
	c.Meta.Stabilizer = "stab:code"
	if _, err := Compare(a, c, Options{}); err == nil {
		t.Error("comparing native vs stabilized artifacts should error")
	}
	// A different master seed is fine: independent samples, same question.
	c = synthetic(10, map[string]float64{"astar": 0.5})
	c.Meta.Seed = 999
	if _, err := Compare(a, c, Options{}); err != nil {
		t.Errorf("different seeds should be comparable: %v", err)
	}
}

func TestCompareDeterministic(t *testing.T) {
	old := synthetic(15, map[string]float64{"astar": 0.5, "mcf": 1.2})
	new := scaled(old, 1.01)
	r1, err := Compare(old, new, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compare(old, new, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Error("comparison is not deterministic")
	}
}

// TestFullSuiteSameSeedNoFalsePositives is the acceptance criterion: two
// artifacts collected with the same seed must report zero regressions on
// every benchmark of the suite, and an injected 5% slowdown must be flagged
// with a CI excluding 1.0.
func TestFullSuiteSameSeedNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("collects the full suite")
	}
	opts := bench.CollectOptions{
		Config: experiment.Config{Scale: 0.05, Level: compiler.O2},
		Runs:   8,
		Seed:   2013,
	}
	baseline, err := bench.Collect(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	head, err := bench.Collect(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Compare(baseline, head, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fail {
		t.Fatalf("same-seed comparison failed the gate:\n%s", rep.Table())
	}
	for _, r := range rep.Rows {
		if r.Verdict != Indistinguishable {
			t.Errorf("%s: verdict %s on same-seed samples", r.Benchmark, r.Verdict)
		}
	}
	if len(rep.Rows) != len(baseline.Benchmarks) {
		t.Errorf("compared %d of %d benchmarks", len(rep.Rows), len(baseline.Benchmarks))
	}

	slow := scaled(head, 1.05)
	rep, err = Compare(baseline, slow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fail {
		t.Fatalf("5%% suite-wide slowdown passed the gate:\n%s", rep.Table())
	}
	for _, r := range rep.Rows {
		if r.Verdict != Regressed {
			t.Errorf("%s: verdict %s under a 5%% slowdown", r.Benchmark, r.Verdict)
		}
		if r.PAdj >= 0.05 {
			t.Errorf("%s: adjusted p %v >= 0.05", r.Benchmark, r.PAdj)
		}
		if r.BCa.Hi >= 1 {
			t.Errorf("%s: BCa CI %+v does not exclude 1.0", r.Benchmark, r.BCa)
		}
	}
}
