package oracle

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ir"
)

// fuzzVerify pumps one generated program through compile → link →
// differential execution over a reduced matrix (two seeds keep a fuzz
// iteration cheap; the full default matrix runs in the unit tests and the
// verify CLI). Any divergence is a real bug in a pass, the runtime, or an
// allocator — fail loudly with the localized report.
func fuzzVerify(t *testing.T, seed uint64, cfg ir.GenConfig) {
	m := ir.Generate(seed, cfg)
	opts := Options{Seeds: []uint64{1, 2}, MaxSteps: 20_000_000}
	if _, err := Verify(fmt.Sprintf("gen%d", seed), m, opts); err != nil {
		var div *Divergence
		if errors.As(err, &div) {
			t.Fatalf("seed %d:\n%s", seed, div.Report())
		}
		t.Fatalf("seed %d: %v", seed, err)
	}
}

// FuzzDifferential feeds well-formed generated programs through the full
// pipeline and asserts semantic invariance across the matrix.
func FuzzDifferential(f *testing.F) {
	for _, s := range []uint64{1, 7, 42, 1234, 99991} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		fuzzVerify(t, seed, ir.GenConfig{})
	})
}

// FuzzEngineDifferential stresses the engine axis specifically: a single
// seed and allocator (so layout is pinned) with both execution engines
// across all optimization levels. Faults are enabled — trap paths are where
// an engine divergence would most plausibly hide — and the step budget is
// raised relative to fuzzVerify since the matrix is much smaller.
func FuzzEngineDifferential(f *testing.F) {
	for _, s := range []uint64{3, 17, 256, 7777, 123457} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		m := ir.Generate(seed, ir.GenConfig{Faults: seed%2 == 0})
		opts := Options{
			Seeds:      []uint64{1},
			Allocators: []string{"shuffle"},
			MaxSteps:   50_000_000,
		}
		if _, err := Verify(fmt.Sprintf("eng%d", seed), m, opts); err != nil {
			var div *Divergence
			if errors.As(err, &div) {
				t.Fatalf("seed %d:\n%s", seed, div.Report())
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}

// FuzzTrapEquivalence plants a deterministic heap-misuse fault in every
// generated program and asserts fault equivalence: the same trap kind in
// every cell, at the same retired step under every layout.
func FuzzTrapEquivalence(f *testing.F) {
	for _, s := range []uint64{2, 11, 64, 4096, 31337} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		fuzzVerify(t, seed, ir.GenConfig{Faults: true})
	})
}
