package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
)

// Profiler attributes windows of machine-counter deltas to the executing
// function and call stack. The interpreter feeds it one window per basic
// block (and around calls) via ProfileWindow; the profiler never imports
// the interpreter — it just satisfies interp's Observer interface
// structurally.
//
// The time axis everywhere is simulated cycles, so every output (folded
// stacks, flame-chart events, the attribution table, the conflict report)
// is deterministic under a fixed seed.
type Profiler struct {
	mod   *ir.Module
	cfg   machine.Config
	perFn []machine.Counters
	total machine.Counters

	folded map[string]machine.Counters

	flame     []TraceEvent
	prevStack []int

	// Layout captured by CaptureLayout: per-set line counts for each
	// function's code (L1I, L2) and each global's data (L1D).
	codeL1I, codeL2 []map[uint64]int
	dataL1D         []map[uint64]int
	layoutCaptured  bool
}

// NewProfiler returns a profiler for module m running on a machine built
// from cfg. cfg is needed to map addresses to cache sets for the conflict
// report.
func NewProfiler(m *ir.Module, cfg machine.Config) *Profiler {
	return &Profiler{
		mod:    m,
		cfg:    cfg,
		perFn:  make([]machine.Counters, len(m.Funcs)),
		folded: map[string]machine.Counters{},
	}
}

// ProfileWindow attributes one window of counter deltas to the call stack
// (innermost function last). This is interp's Observer hook; stack is
// borrowed and must not be retained.
func (p *Profiler) ProfileWindow(stack []int, delta machine.Counters) {
	if len(stack) == 0 {
		return
	}
	leaf := stack[len(stack)-1]
	p.perFn[leaf] = p.perFn[leaf].Add(delta)
	p.folded[p.stackKey(stack)] = p.folded[p.stackKey(stack)].Add(delta)

	// Flame chart: diff against the previous window's stack, closing and
	// opening frames at the current simulated-cycle timestamp.
	ts := float64(p.total.Cycles)
	common := 0
	for common < len(p.prevStack) && common < len(stack) && p.prevStack[common] == stack[common] {
		common++
	}
	for i := len(p.prevStack) - 1; i >= common; i-- {
		p.flame = append(p.flame, TraceEvent{
			Name: p.fnName(p.prevStack[i]), Cat: "sim", Ph: "E", Ts: ts, Pid: 1, Tid: 1,
		})
	}
	for i := common; i < len(stack); i++ {
		p.flame = append(p.flame, TraceEvent{
			Name: p.fnName(stack[i]), Cat: "sim", Ph: "B", Ts: ts, Pid: 1, Tid: 1,
		})
	}
	p.prevStack = append(p.prevStack[:0], stack...)
	p.total = p.total.Add(delta)
}

func (p *Profiler) fnName(fn int) string { return p.mod.Funcs[fn].Name }

func (p *Profiler) stackKey(stack []int) string {
	var sb strings.Builder
	for i, fn := range stack {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(p.fnName(fn))
	}
	return sb.String()
}

// CaptureLayout records where each function's code and each global's data
// sit in the cache index space, so Profile can name set conflicts. Call it
// after the run, while the runtime is still alive: under randomization the
// queried addresses are the run's actual (final) layout.
//
// L1I and L1D are virtually indexed, so virtual addresses are exact. The
// L2 is physically indexed, but the simulated OS does page coloring
// (machine.SetPhysicalSeed preserves the low page bits that cover the L2's
// index period), so L2 sets are virtual-equivalent too. The L3's index
// bits are at the mercy of the random frame allocator and are deliberately
// not reported.
func (p *Profiler) CaptureLayout(codeBase func(fn int) mem.Addr, globalAddr func(g int) mem.Addr) {
	l1i := machine.NewCache(p.cfg.L1I)
	l1d := machine.NewCache(p.cfg.L1D)
	l2 := machine.NewCache(p.cfg.L2)
	p.codeL1I = make([]map[uint64]int, len(p.mod.Funcs))
	p.codeL2 = make([]map[uint64]int, len(p.mod.Funcs))
	for fi, f := range p.mod.Funcs {
		base := codeBase(fi)
		p.codeL1I[fi] = setFootprint(l1i, base, f.Size)
		p.codeL2[fi] = setFootprint(l2, base, f.Size)
	}
	p.dataL1D = make([]map[uint64]int, len(p.mod.Globals))
	for gi, g := range p.mod.Globals {
		p.dataL1D[gi] = setFootprint(l1d, globalAddr(gi), g.Size)
	}
	p.layoutCaptured = true
}

// setFootprint counts, for each cache set, how many distinct lines of
// [base, base+size) map to it.
func setFootprint(c *machine.Cache, base mem.Addr, size uint64) map[uint64]int {
	out := map[uint64]int{}
	if size == 0 {
		return out
	}
	line := c.LineSize()
	first := uint64(base) &^ (line - 1)
	last := (uint64(base) + size - 1) &^ (line - 1)
	for l := first; ; l += line {
		out[c.SetOf(mem.Addr(l))]++
		if l >= last {
			break
		}
	}
	return out
}

// Conflict names one pair of entities whose footprints overload shared
// cache sets: in the sets they share, their combined line count exceeds
// the associativity, so they evict each other.
type Conflict struct {
	Level string // "L1I", "L1D", or "L2"
	Kind  string // "code" (function pair) or "data" (global pair)
	A, B  string
	// SharedSets counts sets where both entities are present and combined
	// lines exceed the ways.
	SharedSets int
	// OverflowLines sums, over those sets, the lines beyond associativity —
	// the capacity shortfall that forces evictions.
	OverflowLines int
	// Misses is the attributed miss count at this level for the pair
	// (sum of both functions' attributed misses; zero for data conflicts,
	// which have no per-global attribution).
	Misses uint64
	// Score orders the report: overflow weighted by observed misses.
	Score float64
}

// Profile is the finished result of one (or several merged) profiled runs.
type Profile struct {
	// FuncNames[i] names function i, indexing PerFn.
	FuncNames []string
	// PerFn holds each function's exclusive attributed counters.
	PerFn []machine.Counters
	// Total is the sum of all windows.
	Total machine.Counters
	// Conflicts is the set-conflict report, highest score first. Empty
	// unless CaptureLayout was called before Profile.
	Conflicts []Conflict

	folded map[string]machine.Counters
	flame  []TraceEvent
}

// Profile finalizes the profiler: closes the flame chart's open frames,
// computes the set-conflict report from the captured layout, and returns
// the result. The profiler can keep accumulating afterwards, but Profile
// should be treated as the end of a run.
func (p *Profiler) Profile() *Profile {
	ts := float64(p.total.Cycles)
	for i := len(p.prevStack) - 1; i >= 0; i-- {
		p.flame = append(p.flame, TraceEvent{
			Name: p.fnName(p.prevStack[i]), Cat: "sim", Ph: "E", Ts: ts, Pid: 1, Tid: 1,
		})
	}
	p.prevStack = p.prevStack[:0]

	pr := &Profile{
		FuncNames: make([]string, len(p.mod.Funcs)),
		PerFn:     append([]machine.Counters(nil), p.perFn...),
		Total:     p.total,
		folded:    map[string]machine.Counters{},
		flame:     append([]TraceEvent(nil), p.flame...),
	}
	for i, f := range p.mod.Funcs {
		pr.FuncNames[i] = f.Name
	}
	for k, v := range p.folded {
		pr.folded[k] = v
	}
	if p.layoutCaptured {
		pr.Conflicts = p.conflicts()
	}
	return pr
}

// conflicts scores every entity pair per cache level.
func (p *Profiler) conflicts() []Conflict {
	var out []Conflict
	fnNames := make([]string, len(p.mod.Funcs))
	fnL1IMiss := make([]uint64, len(p.mod.Funcs))
	fnL2Miss := make([]uint64, len(p.mod.Funcs))
	for i, f := range p.mod.Funcs {
		fnNames[i] = f.Name
		fnL1IMiss[i] = p.perFn[i].L1IMisses
		fnL2Miss[i] = p.perFn[i].L2Misses
	}
	gNames := make([]string, len(p.mod.Globals))
	for i, g := range p.mod.Globals {
		gNames[i] = g.Name
	}
	out = append(out, pairConflicts("L1I", "code", p.cfg.L1I.Ways, fnNames, p.codeL1I, fnL1IMiss)...)
	out = append(out, pairConflicts("L2", "code", p.cfg.L2.Ways, fnNames, p.codeL2, fnL2Miss)...)
	out = append(out, pairConflicts("L1D", "data", p.cfg.L1D.Ways, gNames, p.dataL1D, nil)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// pairConflicts finds entity pairs whose combined per-set lines exceed the
// associativity. misses (may be nil) gives per-entity attributed misses at
// this level.
func pairConflicts(level, kind string, ways int, names []string, footprints []map[uint64]int, misses []uint64) []Conflict {
	var out []Conflict
	for a := 0; a < len(footprints); a++ {
		fa := footprints[a]
		if len(fa) == 0 {
			continue
		}
		for b := a + 1; b < len(footprints); b++ {
			fb := footprints[b]
			if len(fb) == 0 {
				continue
			}
			// Iterate the smaller footprint.
			small, large := fa, fb
			if len(fb) < len(fa) {
				small, large = fb, fa
			}
			shared, overflow := 0, 0
			for set, n := range small {
				m, ok := large[set]
				if !ok {
					continue
				}
				if n+m > ways {
					shared++
					overflow += n + m - ways
				}
			}
			if shared == 0 {
				continue
			}
			var miss uint64
			if misses != nil {
				miss = misses[a] + misses[b]
			}
			na, nb := names[a], names[b]
			if na > nb {
				na, nb = nb, na
			}
			out = append(out, Conflict{
				Level: level, Kind: kind, A: na, B: nb,
				SharedSets: shared, OverflowLines: overflow, Misses: miss,
				Score: float64(overflow) * float64(1+miss),
			})
		}
	}
	return out
}

// FoldedStacks renders the profile in flamegraph folded-stack format, one
// "frame;frame;frame cycles" line per distinct stack, sorted by stack for
// byte-stable output. Feed it to inferno/flamegraph.pl or speedscope.
func (pr *Profile) FoldedStacks() string {
	keys := make([]string, 0, len(pr.folded))
	for k := range pr.folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s %d\n", k, pr.folded[k].Cycles)
	}
	return sb.String()
}

// FlameEvents returns the flame-chart trace events (B/E pairs on the
// simulated-cycle time axis, rendered by Perfetto as a flame chart when
// microseconds are read as cycles).
func (pr *Profile) FlameEvents() []TraceEvent {
	return append([]TraceEvent(nil), pr.flame...)
}

// ConflictsFor filters the conflict report by cache level.
func (pr *Profile) ConflictsFor(level string) []Conflict {
	var out []Conflict
	for _, c := range pr.Conflicts {
		if c.Level == level {
			out = append(out, c)
		}
	}
	return out
}

// Table renders the top-N functions by attributed cycles, perf-report
// style. Deterministic: ties break by name.
func (pr *Profile) Table(topN int) string {
	type row struct {
		name string
		c    machine.Counters
	}
	rows := make([]row, 0, len(pr.PerFn))
	for i, c := range pr.PerFn {
		if c.Cycles == 0 && c.Instructions == 0 {
			continue
		}
		rows = append(rows, row{pr.FuncNames[i], c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].c.Cycles != rows[j].c.Cycles {
			return rows[i].c.Cycles > rows[j].c.Cycles
		}
		return rows[i].name < rows[j].name
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %12s %6s %10s %10s %10s %10s %10s %10s\n",
		"function", "cycles", "cyc%", "instrs", "L1I-miss", "L1D-miss", "L2-miss", "L3-miss", "br-miss")
	for _, r := range rows {
		pct := 0.0
		if pr.Total.Cycles > 0 {
			pct = float64(r.c.Cycles) / float64(pr.Total.Cycles) * 100
		}
		fmt.Fprintf(&sb, "%-20s %12d %5.1f%% %10d %10d %10d %10d %10d %10d\n",
			r.name, r.c.Cycles, pct, r.c.Instructions,
			r.c.L1IMisses, r.c.L1DMisses, r.c.L2Misses, r.c.L3Misses,
			r.c.DirectionMispredicts+r.c.BTBMispredicts)
	}
	return sb.String()
}

// ConflictReport renders the set-conflict report as text: per cache level,
// the top pairs whose footprints overload shared sets.
func (pr *Profile) ConflictReport(topN int) string {
	var sb strings.Builder
	for _, level := range []string{"L1I", "L1D", "L2"} {
		cs := pr.ConflictsFor(level)
		if len(cs) == 0 {
			continue
		}
		if topN > 0 && len(cs) > topN {
			cs = cs[:topN]
		}
		fmt.Fprintf(&sb, "%s set conflicts:\n", level)
		for _, c := range cs {
			fmt.Fprintf(&sb, "  %-18s <-> %-18s  %4d sets over capacity, %5d overflow lines",
				c.A, c.B, c.SharedSets, c.OverflowLines)
			if c.Kind == "code" {
				fmt.Fprintf(&sb, ", %8d attributed misses", c.Misses)
			}
			sb.WriteByte('\n')
		}
	}
	if sb.Len() == 0 {
		return "no set conflicts detected\n"
	}
	return sb.String()
}

// MergeProfiles merges per-run profiles from the same module into one:
// counters sum (order-independent), folded stacks sum, and each run's
// flame events keep their own pid lane so Perfetto shows runs side by
// side. The conflict report is taken from the first profile that has one
// (each run has its own layout; the first seed's is the one reported).
// Returns nil for an empty input.
func MergeProfiles(profiles []*Profile) *Profile {
	if len(profiles) == 0 {
		return nil
	}
	out := &Profile{
		FuncNames: append([]string(nil), profiles[0].FuncNames...),
		PerFn:     make([]machine.Counters, len(profiles[0].PerFn)),
		folded:    map[string]machine.Counters{},
	}
	for pi, p := range profiles {
		out.Total = out.Total.Add(p.Total)
		for i, c := range p.PerFn {
			out.PerFn[i] = out.PerFn[i].Add(c)
		}
		for k, v := range p.folded {
			out.folded[k] = out.folded[k].Add(v)
		}
		for _, ev := range p.flame {
			ev.Pid = int64(pi + 1)
			out.flame = append(out.flame, ev)
		}
		if out.Conflicts == nil && len(p.Conflicts) > 0 {
			out.Conflicts = append([]Conflict(nil), p.Conflicts...)
		}
	}
	return out
}
