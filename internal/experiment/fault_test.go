package experiment

// Recovery-path tests: every failure mode the engine claims to survive —
// worker panics, injected transient faults, watchdog timeouts, checkpoint
// store failures — is exercised here, mostly through the deterministic
// fault-injection harness (internal/faultinject). CI runs these (plus the
// resume tests) as a dedicated job: -run 'Fault|Panic|Resume'.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/faultinject"
	"repro/internal/interp"
)

// TestPoolPanicRecoveredCancelsWorkers is the panic-isolation contract: a
// panicking work item is recovered into a *PanicError carrying the cell
// label and item index, the rest of the pool is cancelled (blocked
// siblings wake up instead of deadlocking), and the panic is the error
// ForEach reports.
func TestPoolPanicRecoveredCancelsWorkers(t *testing.T) {
	pool := NewPool(8)
	// bad is the first item of worker 1's shard (64/8 = 8 items per
	// worker): every other worker parks on its own first item, so only the
	// panic can unblock them — reaching the end of this test proves the
	// recovered panic cancelled the pool.
	const n, bad = 64, 8
	err := pool.ForEachLabeled(context.Background(), "panic-cell", n, func(ctx context.Context, i int) error {
		if i == bad {
			panic("boom")
		}
		// Every other item parks until cancellation: if the panic failed
		// to cancel the pool, this test would hang.
		<-ctx.Done()
		return ctx.Err()
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T), want *PanicError", err, err)
	}
	if pe.Label != "panic-cell" || pe.Index != bad {
		t.Errorf("PanicError label=%q index=%d, want %q/%d", pe.Label, pe.Index, "panic-cell", bad)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError value=%v stack=%d bytes, want boom with a stack", pe.Value, len(pe.Stack))
	}
	if !strings.Contains(err.Error(), "panic-cell") {
		t.Errorf("error text %q does not name the cell", err)
	}
}

// TestPoolPanicSequential covers the workers<=1 fast path, which recovers
// panics on the caller's goroutine.
func TestPoolPanicSequential(t *testing.T) {
	pool := NewPool(1)
	ran := 0
	err := pool.ForEach(context.Background(), 5, func(ctx context.Context, i int) error {
		ran++
		if i == 2 {
			panic(i)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("error %v, want *PanicError at index 2", err)
	}
	if ran != 3 {
		t.Errorf("ran %d items, want 3 (sequential stop at the panic)", ran)
	}
}

// TestFaultInjectedPanicFailsCellNotProcess drives a panic through the
// fault injector into a real cell: the sweep fails with a *CellError
// wrapping the *PanicError, with no retry (panics are deterministic) and
// without killing the process.
func TestFaultInjectedPanicFailsCellNotProcess(t *testing.T) {
	defer faultinject.Activate(1, faultinject.Fault{
		Site: faultinject.SitePoolWorker, Nth: 3, Kind: faultinject.KindPanic,
	})()
	defer ResetRetryReport()
	b := subset(t, "astar")[0]
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cc.Collect(context.Background(), 6, 1)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v (%T), want *CellError", err, err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("cell error %v does not wrap a *PanicError", err)
	}
	if ce.Attempts != 1 {
		t.Errorf("panicking cell took %d attempts, want 1 (panics are not retried)", ce.Attempts)
	}
	if !strings.Contains(ce.Label, "astar") {
		t.Errorf("cell label %q does not identify the benchmark", ce.Label)
	}
}

// TestFaultPanicAtCellSetupIsolated arms a panic at the cell-start site,
// which fires on the caller's goroutine (outside any pool worker) — the
// collectOnce boundary must still convert it to an error.
func TestFaultPanicAtCellSetupIsolated(t *testing.T) {
	defer faultinject.Activate(1, faultinject.Fault{
		Site: faultinject.SiteCellStart, Nth: 1, Kind: faultinject.KindPanic,
	})()
	defer ResetRetryReport()
	b := subset(t, "astar")[0]
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cc.Collect(context.Background(), 2, 1)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T), want a recovered *PanicError", err, err)
	}
	if pe.Index != -1 {
		t.Errorf("setup panic recorded index %d, want -1", pe.Index)
	}
}

// TestFaultTransientRetrySucceeds injects a one-shot transient error into
// a pool worker: the first attempt fails, the retry succeeds, the retry is
// visible in RetryReport, and the samples are identical to an undisturbed
// collection (determinism survives the retry).
func TestFaultTransientRetrySucceeds(t *testing.T) {
	b := subset(t, "astar")[0]
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := cc.Collect(context.Background(), 4, 7)
	if err != nil {
		t.Fatal(err)
	}

	ResetRetryReport()
	deactivate := faultinject.Activate(1, faultinject.Fault{
		Site: faultinject.SitePoolWorker, Nth: 2, Kind: faultinject.KindError,
	})
	defer deactivate()
	got, err := cc.Collect(context.Background(), 4, 7)
	if err != nil {
		t.Fatalf("transient fault was not retried away: %v", err)
	}
	if !reflect.DeepEqual(got, clean) {
		t.Error("samples after a retried transient fault differ from an undisturbed collection")
	}
	rep := RetryReport()
	if !strings.Contains(rep, "astar") || !strings.Contains(rep, "2 attempts") {
		t.Errorf("RetryReport %q does not record the retried cell", rep)
	}
	deactivate()
	ResetRetryReport()
}

// TestFaultTransientRetriesExhausted caps retries at zero and checks the
// transient failure surfaces as a *CellError that unwraps to the injected
// fault.
func TestFaultTransientRetriesExhausted(t *testing.T) {
	defer faultinject.Activate(1, faultinject.Fault{
		Site: faultinject.SitePoolWorker, Nth: 1, Kind: faultinject.KindError,
	})()
	SetCellRetries(0)
	defer SetCellRetries(-1)
	defer ResetRetryReport()
	b := subset(t, "astar")[0]
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cc.Collect(context.Background(), 2, 1)
	var ce *CellError
	if !errors.As(err, &ce) || ce.Attempts != 1 {
		t.Fatalf("error %v, want *CellError after 1 attempt", err)
	}
	var fe *faultinject.Error
	if !errors.As(err, &fe) {
		t.Fatalf("cell error %v does not unwrap to the injected fault", err)
	}
}

// TestFaultWatchdogTimeoutRetried hangs the first work item until the cell
// watchdog fires; the timeout is classified transient, the retry runs
// without the (one-shot) fault, and the samples match a clean collection.
func TestFaultWatchdogTimeoutRetried(t *testing.T) {
	b := subset(t, "astar")[0]
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := cc.Collect(context.Background(), 3, 21)
	if err != nil {
		t.Fatal(err)
	}

	ResetRetryReport()
	deactivate := faultinject.Activate(1, faultinject.Fault{
		Site: faultinject.SitePoolWorker, Nth: 1, Kind: faultinject.KindHang,
	})
	defer deactivate()
	SetCellTimeout(300 * time.Millisecond)
	defer SetCellTimeout(0)
	got, err := cc.Collect(context.Background(), 3, 21)
	if err != nil {
		t.Fatalf("watchdog timeout was not retried away: %v", err)
	}
	if !reflect.DeepEqual(got, clean) {
		t.Error("samples after a watchdog-retried cell differ from an undisturbed collection")
	}
	if !strings.Contains(RetryReport(), "astar") {
		t.Errorf("RetryReport %q does not record the timed-out cell", RetryReport())
	}
	deactivate()
	ResetRetryReport()
}

// TestFaultCompileCacheNotPoisoned panics inside the compile cache: the
// first CompileBench fails with an error (not a process death) and the
// failed entry is evicted, so the next CompileBench of the same cell
// succeeds instead of replaying the cached failure.
func TestFaultCompileCacheNotPoisoned(t *testing.T) {
	deactivate := faultinject.Activate(1, faultinject.Fault{
		Site: faultinject.SiteCompileCache, Nth: 1, Kind: faultinject.KindPanic,
	})
	defer deactivate()
	b := subset(t, "libquantum")[0]
	// A scale×level no other test compiles, so the cache is cold here.
	cfg := Config{Scale: testScale * 0.7, Level: compiler.O1}
	if _, err := CompileBench(b, cfg); err == nil {
		t.Fatal("CompileBench succeeded through an injected compile panic")
	} else if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("compile error %v does not report the panic", err)
	}
	deactivate()
	if _, err := CompileBench(b, cfg); err != nil {
		t.Fatalf("compile cache still poisoned after the fault: %v", err)
	}
}

// TestFaultStepBudgetStructuredError (S3): a budget-exhausted cell fails
// the sweep cleanly with a *CellError that unwraps to the structured
// *interp.StepBudgetError — label, attempt count, and steps retired all
// recoverable by the caller.
func TestFaultStepBudgetStructuredError(t *testing.T) {
	defer ResetRetryReport()
	b := subset(t, "astar")[0]
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2, MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	var serr error
	withParallelism(t, 4, func() {
		_, serr = cc.Collect(context.Background(), 8, 1)
	})
	var ce *CellError
	if !errors.As(serr, &ce) {
		t.Fatalf("error %v (%T), want *CellError", serr, serr)
	}
	if !strings.Contains(ce.Label, "astar") {
		t.Errorf("cell label %q does not identify the benchmark", ce.Label)
	}
	if ce.Attempts != 1 {
		t.Errorf("deterministic budget failure took %d attempts, want 1 (no retry)", ce.Attempts)
	}
	var be *interp.StepBudgetError
	if !errors.As(serr, &be) {
		t.Fatalf("cell error %v does not unwrap to *interp.StepBudgetError", serr)
	}
	if be.Budget != 50 || be.Steps < be.Budget {
		t.Errorf("StepBudgetError steps=%d budget=%d, want steps >= budget == 50", be.Steps, be.Budget)
	}
	if !errors.Is(serr, interp.ErrMaxSteps) {
		t.Error("cell error does not match interp.ErrMaxSteps")
	}
}
