package stats

import (
	"math"
	"testing"
)

func TestBenjaminiHochbergGolden(t *testing.T) {
	// R: p.adjust(c(0.01, 0.04, 0.03, 0.005), "BH") = 0.02 0.04 0.04 0.02
	got := BenjaminiHochberg([]float64{0.01, 0.04, 0.03, 0.005})
	want := []float64{0.02, 0.04, 0.04, 0.02}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("adj[%d] = %.6f, want %.6f", i, got[i], want[i])
		}
	}
}

func TestBenjaminiHochberg1995Example(t *testing.T) {
	// The 15 p-values of Benjamini & Hochberg (1995), Table 1; golden
	// values from R's p.adjust(p, "BH").
	p := []float64{0.0001, 0.0004, 0.0019, 0.0095, 0.0201, 0.0278, 0.0298,
		0.0344, 0.0459, 0.3240, 0.4262, 0.5719, 0.6528, 0.7590, 1.0000}
	want := []float64{0.0015, 0.0030, 0.0095, 0.035625, 0.0603, 0.06385714,
		0.06385714, 0.0645, 0.0765, 0.486, 0.58118182, 0.714875,
		0.75323077, 0.81321429, 1.0}
	got := BenjaminiHochberg(p)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Errorf("adj[%d] = %.8f, want %.8f", i, got[i], want[i])
		}
	}
}

func TestBenjaminiHochbergProperties(t *testing.T) {
	// NaNs pass through and do not inflate the family size.
	got := BenjaminiHochberg([]float64{0.01, math.NaN(), 0.04})
	if !math.IsNaN(got[1]) {
		t.Errorf("NaN p-value not preserved: %v", got[1])
	}
	// Family of two: 0.01*2/1 = 0.02, 0.04*2/2 = 0.04.
	if math.Abs(got[0]-0.02) > 1e-12 || math.Abs(got[2]-0.04) > 1e-12 {
		t.Errorf("NaN inflated family size: %v", got)
	}

	// Adjusted values never fall below the raw ones and never exceed 1.
	ps := []float64{0.9, 0.99, 0.5, 0.02, 0.0001, 1.0}
	for i, a := range BenjaminiHochberg(ps) {
		if a < ps[i] || a > 1 {
			t.Errorf("adj[%d] = %v out of range for p = %v", i, a, ps[i])
		}
	}

	// A single test is untouched.
	if got := BenjaminiHochberg([]float64{0.03}); got[0] != 0.03 {
		t.Errorf("single p adjusted: %v", got[0])
	}
	if got := BenjaminiHochberg(nil); len(got) != 0 {
		t.Errorf("nil input: %v", got)
	}
}
