package store

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/spec"
)

// fakeResults builds a small deterministic result slice.
func fakeResults(n int) []experiment.RunResult {
	out := make([]experiment.RunResult, n)
	for i := range out {
		out[i] = experiment.RunResult{
			Seconds:      1.5 + float64(i)*0.25,
			Cycles:       uint64(1000 + i),
			Instructions: uint64(500 + i),
			Output:       uint64(i) * 7,
			Counters:     machine.Counters{},
		}
	}
	return out
}

func TestKeyForExtendsCellKey(t *testing.T) {
	cfg := experiment.Config{Scale: 0.25, Engine: interp.EngineWalk}
	key := KeyFor("astar", cfg, 5, 42)
	cell := experiment.CellKey("astar", cfg, 5, 42)
	if !strings.HasPrefix(key, cell) {
		t.Fatalf("store key %q does not extend cell key %q", key, cell)
	}
	if !strings.Contains(key, "|engine=walk|") && !strings.HasSuffix(key, "|engine=walk|gen=1") {
		if !strings.Contains(key, "|engine=walk") {
			t.Fatalf("store key %q missing engine tag", key)
		}
	}
	if key == Extend(cell, interp.EngineCompiled) {
		t.Fatalf("walk and compiled store keys collide: %q", key)
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	key := KeyFor("astar", experiment.Config{Scale: 0.1}, 4, 99)
	want := fakeResults(4)
	if err := s.Put(key, 4, 99, want); err != nil {
		t.Fatalf("put: %v", err)
	}
	got := s.Get(key, 4, 99)
	if got == nil {
		t.Fatalf("get after put missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip changed results:\n got %+v\nwant %+v", got, want)
	}
	// Wrong run range is a miss, not wrong data.
	if s.Get(key, 5, 99) != nil {
		t.Fatalf("get with wrong runs hit")
	}
	if s.Get(key, 4, 100) != nil {
		t.Fatalf("get with wrong seed base hit")
	}
	// Re-put of an existing key is a silent no-op.
	if err := s.Put(key, 4, 99, want); err != nil {
		t.Fatalf("idempotent put: %v", err)
	}
	hits, misses, puts := s.Stats()
	if hits != 1 || misses != 2 || puts != 1 {
		t.Fatalf("stats hits=%d misses=%d puts=%d, want 1/2/1", hits, misses, puts)
	}
}

func TestPutRejectsShortResults(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Put("k", 4, 0, fakeResults(3)); err == nil {
		t.Fatalf("put with 3 results for 4 runs succeeded")
	}
}

func TestCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	key := "astar|corrupt-case"
	if err := s.Put(key, 3, 7, fakeResults(3)); err != nil {
		t.Fatalf("put: %v", err)
	}
	path := s.blockPath(key)

	// Flip a payload byte: the integrity hash must catch it.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read block: %v", err)
	}
	evil := []byte(strings.Replace(string(buf), `"Seconds": 1.5`, `"Seconds": 9.5`, 1))
	if string(evil) == string(buf) {
		t.Fatalf("test did not find a payload byte to corrupt in %s", buf)
	}
	if err := os.WriteFile(path, evil, 0o644); err != nil {
		t.Fatalf("write corrupt block: %v", err)
	}
	if got := s.Get(key, 3, 7); got != nil {
		t.Fatalf("corrupt block served results: %+v", got)
	}

	// Truncation is a miss.
	if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if s.Get(key, 3, 7) != nil {
		t.Fatalf("truncated block served results")
	}

	// A block whose payload is internally consistent but stored under the
	// wrong slot (foreign key) is a miss.
	if err := s.Put("other|key", 3, 7, fakeResults(3)); err != nil {
		t.Fatalf("put other: %v", err)
	}
	foreign, err := os.ReadFile(s.blockPath("other|key"))
	if err != nil {
		t.Fatalf("read other: %v", err)
	}
	if err := os.WriteFile(path, foreign, 0o644); err != nil {
		t.Fatalf("plant foreign block: %v", err)
	}
	if s.Get(key, 3, 7) != nil {
		t.Fatalf("foreign block served results")
	}
}

func TestIndexRebuild(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	keys := []string{"astar|a", "bzip2|b", "mcf|c"}
	for i, k := range keys {
		if err := s.Put(k, 2, uint64(i), fakeResults(2)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	idx1, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatalf("read index: %v", err)
	}

	// Delete the index; reopening must rebuild it byte-identically.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatalf("remove index: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s2.Len() != len(keys) {
		t.Fatalf("rebuilt index has %d blocks, want %d", s2.Len(), len(keys))
	}
	idx2, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatalf("read rebuilt index: %v", err)
	}
	if string(idx1) != string(idx2) {
		t.Fatalf("rebuilt index differs from incrementally maintained one:\n%s\nvs\n%s", idx1, idx2)
	}

	// A corrupt index file is rebuilt, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatalf("corrupt index: %v", err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("open with corrupt index: %v", err)
	}
	if s3.Len() != len(keys) {
		t.Fatalf("corrupt-index reopen found %d blocks, want %d", s3.Len(), len(keys))
	}
	for _, e := range s3.Index() {
		if e.Bench != benchOf(e.Key) {
			t.Fatalf("index entry %q has bench %q", e.Key, e.Bench)
		}
	}
}

// TestCellSourceAdapter runs a real collection through the store-backed
// CellSource twice: the second pass must be served from the store and
// produce identical samples, and the keys in the store must carry the
// engine tag.
func TestCellSourceAdapter(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	b, _ := spec.ByName("astar")
	cfg := experiment.Config{Scale: 0.05}
	cc, err := experiment.CompileBench(b, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ctx := experiment.WithCellStore(context.Background(), s.Cells(interp.EngineCompiled))
	first, err := cc.Collect(ctx, 3, 11)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d blocks after collect, want 1", s.Len())
	}
	if e := s.Index()[0]; !strings.Contains(e.Key, "|engine=compiled|") && !strings.Contains(e.Key, "|engine=compiled") {
		t.Fatalf("stored key %q missing engine tag", e.Key)
	}
	second, err := cc.Collect(experiment.WithStoreOnly(ctx), 3, 11)
	if err != nil {
		t.Fatalf("store-only collect: %v", err)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatalf("store-served results differ from computed ones")
	}
	hits, _, _ := s.Stats()
	if hits != 1 {
		t.Fatalf("store hits=%d, want 1", hits)
	}
}
