// Package stats implements the statistical machinery the paper's evaluation
// rests on: the Shapiro-Wilk normality test (Table 1), the Brown-Forsythe
// variance test (Table 1), Student's and Welch's t-tests (§2.4, Figure 7),
// the Wilcoxon signed-rank test for non-normal benchmarks (§6), one-way
// repeated-measures ANOVA (§6.1), and the distribution functions they need.
//
// Everything is implemented from standard published algorithms (AS R94 for
// Shapiro-Wilk, Acklam's rational approximation plus a Halley refinement for
// the normal quantile, continued-fraction incomplete beta and gamma) using
// only the standard library.
package stats

import "math"

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z with NormalCDF(z) = p, for p in (0, 1).
// It uses Acklam's rational approximation refined by one Halley step, giving
// near machine precision.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	a := [...]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [...]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [...]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [...]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley step against the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// lnBeta returns ln(Beta(a, b)).
func lnBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// evaluated with the Lentz continued fraction.
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	bt := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lnBeta(a, b))
	if x < (a+1)/(a+b+2) {
		return bt * betacf(a, b, x) / a
	}
	return 1 - bt*betacf(b, a, 1-x)/b
}

// betacf is the continued-fraction kernel for RegIncBeta.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T <= t) for Student's t with df degrees of freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t >= 0 {
		return 1 - p
	}
	return p
}

// FCDF returns P(F <= f) for the F distribution with (df1, df2) degrees of
// freedom.
func FCDF(f, df1, df2 float64) float64 {
	if f <= 0 {
		return 0
	}
	x := df1 * f / (df1*f + df2)
	return RegIncBeta(df1/2, df2/2, x)
}

// GammaP returns the regularized lower incomplete gamma P(a, x); GammaQ is
// its complement. These power the chi-square CDF and the NIST tests.
func GammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// GammaQ returns the regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaCF(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*3e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaCF(a, x float64) float64 {
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 3e-16 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X <= x) for a chi-square with df degrees of freedom.
func ChiSquareCDF(x, df float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaP(df/2, x/2)
}
