// Fast-path entry points for the compiled execution engine.
//
// The tree-walk interpreter drives the machine through the general
// Fetch/Data calls, which re-derive line splits, set indices, and tags on
// every access. The compiled engine instead precomputes those per layout
// epoch (PrepareFetch → PreLine) and issues accesses through FetchPre and
// Data8, which perform *exactly* the same cache, TLB, and counter
// transitions as the general paths — the equivalence the cross-engine
// differential suite pins down. Any behavioural difference between these
// functions and Fetch/Data is a bug.
package machine

import "repro/internal/mem"

// PreLine is one instruction-fetch cache line with its set-index/tag
// computations memoized: the line's address plus the (tag, set base) pair
// for the TLB and the L1I cache it will be looked up in. A PreLine is valid
// only for the Machine that built it (set geometry is configuration-bound)
// and for as long as the code it covers stays put — i.e. one layout epoch.
type PreLine struct {
	Addr           mem.Addr
	TLBTag, L1ITag uint64
	TLBSet, L1ISet int32 // base index into the cache's tag array
}

// preLine memoizes one line's lookup coordinates for cache c.
func preLineFor(c *Cache, a mem.Addr) (tag uint64, base int32) {
	line := c.line(a)
	return line | 1<<63, int32(line&c.setMask) * int32(c.ways)
}

// PrepareFetch appends to out one PreLine per L1I cache line spanned by the
// code bytes in [a, a+size) — the same span Fetch(a, size) walks — with the
// TLB and L1I lookup coordinates precomputed.
func (m *Machine) PrepareFetch(a mem.Addr, size uint64, out []PreLine) []PreLine {
	line := m.L1I.granularity
	first := uint64(a) &^ (line - 1)
	last := (uint64(a) + size - 1) &^ (line - 1)
	for l := first; ; l += line {
		p := PreLine{Addr: mem.Addr(l)}
		p.TLBTag, p.TLBSet = preLineFor(m.TLB, mem.Addr(l))
		p.L1ITag, p.L1ISet = preLineFor(m.L1I, mem.Addr(l))
		out = append(out, p)
		if l >= last {
			break
		}
	}
	return out
}

// accessPre is Cache.Access with the set-index/tag computation hoisted out:
// identical hit/miss/eviction/LRU behaviour, lookup coordinates supplied by
// the caller. The MRU probe indexes the tag array directly so the hit path
// builds no slice header; only the cold path materializes the set.
func (c *Cache) accessPre(tag uint64, base int32) bool {
	if c.tags[base] == tag {
		c.Hits++
		return true
	}
	return c.accessCold(c.tags[base:int(base)+c.ways], tag)
}

// accessCold handles an access whose tag is not in the MRU way: scan the
// remaining ways, move-to-front on a hit, install with LRU eviction on a
// miss. Split out so accessPre's MRU-hit path stays small enough to inline.
// Every path through here moves tags, so Gen always advances.
func (c *Cache) accessCold(set []uint64, tag uint64) bool {
	c.Gen++
	for i := 1; i < len(set); i++ {
		if set[i] == tag {
			copy(set[1:i+1], set[:i])
			set[0] = tag
			c.Hits++
			return true
		}
	}
	c.Misses++
	if set[len(set)-1] != 0 {
		c.Evictions++
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = tag
	return false
}

// FetchPre charges instruction fetch for a precomputed line span. It is
// counter- and state-equivalent to the Fetch call the lines were prepared
// from: per line, a TLB access, an L1I access, and on an L1I miss the
// physical translate → L2 → L3 ladder with the same cost charges.
func (m *Machine) FetchPre(lines []PreLine) {
	for i := range lines {
		p := &lines[i]
		if !m.TLB.accessPre(p.TLBTag, p.TLBSet) {
			m.Cycles += m.Costs.TLBMiss
		}
		if m.L1I.accessPre(p.L1ITag, p.L1ISet) {
			continue
		}
		m.missBelowL1(p.Addr)
	}
}

// FetchSteady charges instruction fetch for a precomputed line span in the
// steady state of a hot loop: every line hits in the MRU way of both the
// TLB and the L1I. An MRU hit mutates nothing but the hit counter, so the
// span's whole effect collapses to two bulk counter adds and no cycle
// charge — exactly what FetchPre would have done line by line. The
// verification probes are pure reads, so when any line is not an MRU hit
// the function returns false having changed nothing and the caller replays
// the span through FetchPre unchanged.
func (m *Machine) FetchSteady(lines []PreLine) bool {
	tt, it := m.TLB.tags, m.L1I.tags
	for i := range lines {
		p := &lines[i]
		if tt[p.TLBSet] != p.TLBTag || it[p.L1ISet] != p.L1ITag {
			return false
		}
	}
	n := uint64(len(lines))
	m.TLB.Hits += n
	m.L1I.Hits += n
	return true
}

// missBelowL1 runs the physically-indexed part of the hierarchy after an L1
// miss, charging the same cost ladder as memAccess.
func (m *Machine) missBelowL1(a mem.Addr) {
	phys := m.translate(a)
	if m.L2.Access(phys) {
		m.Cycles += m.Costs.L1Miss
		return
	}
	if m.L3.Access(phys) {
		m.Cycles += m.Costs.L1Miss + m.Costs.L2Miss
		return
	}
	m.Cycles += m.Costs.L1Miss + m.Costs.L2Miss + m.Costs.L3Miss
}

// Data8 performs Data(a, 8) through one call: the dominant access shape of
// the interpreter (every load, store, return-address push, and relocation
// slot read is 8 bytes). Counter- and state-equivalent to Data(a, 8).
//
// The fast path probes the MRU way of the TLB set and the L1D set directly:
// when both hold the line (the steady state of a hot loop) the access is a
// pair of MRU hits, which mutate nothing but the two hit counters — exactly
// what Access would have done. The body is small enough to inline into the
// compiled engine's dispatch loop; any other outcome, and line straddles,
// take data8Slow, the general path.
func (m *Machine) Data8(a mem.Addr) {
	t, d := m.TLB, m.L1D
	tl := uint64(a) >> t.lineShift
	dl := uint64(a) >> d.lineShift
	if uint64(a)&(d.granularity-1) <= d.granularity-8 &&
		t.tags[(tl&t.setMask)*uint64(t.ways)] == tl|1<<63 &&
		d.tags[(dl&d.setMask)*uint64(d.ways)] == dl|1<<63 {
		t.Hits++
		d.Hits++
		return
	}
	m.data8Slow(a)
}

// MRUView exposes the lookup geometry of the cache's MRU way so the
// compiled engine can open-code Data8's resident-line probe inside its own
// dispatch loop (a cross-package call cannot inline). The returned tag
// array is the live one and its identity is stable — Flush clears it in
// place — so a caller may hold it for the Machine's lifetime. The probe
// contract is the one Data8's fast path relies on: for a non-straddling
// address a, if tags[(a>>lineShift&setMask)*ways] == a>>lineShift|1<<63 in
// both the TLB and the L1D, the access is a pair of MRU hits whose only
// state change is Hits++ on each (both exported fields).
func (c *Cache) MRUView() (tags []uint64, lineShift uint, setMask, ways uint64) {
	return c.tags, c.lineShift, c.setMask, uint64(c.ways)
}

// data8Slow is Data8's general path: line straddles and anything that is
// not a double MRU hit, charged exactly as Data(a, 8) would.
func (m *Machine) data8Slow(a mem.Addr) {
	line := m.L1D.granularity
	la := uint64(a) &^ (line - 1)
	if uint64(a)-la > line-8 {
		// Straddles two lines; take the general path's loop shape.
		m.memAccess(mem.Addr(la), m.L1D)
		m.memAccess(mem.Addr(la+line), m.L1D)
		return
	}
	if !m.TLB.Access(mem.Addr(la)) {
		m.Cycles += m.Costs.TLBMiss
	}
	if m.L1D.Access(mem.Addr(la)) {
		return
	}
	m.missBelowL1(mem.Addr(la))
}
