// Package store is the content-addressed result store of the benchmarking
// farm: a directory of immutable sample blocks, one per experimental cell,
// addressed by the cell's configuration fingerprint. The fingerprint is the
// engine's own cell key (experiment.CellKey — the same definition
// checkpoints use) extended with the interpreter engine tag and the
// simulator's SemanticsGeneration, so a long-lived store shared across
// campaigns, users, and builds never serves results whose meaning has
// drifted.
//
// Determinism is what makes the store sound: a cell key fully determines
// its samples, so serving a stored block is indistinguishable from
// re-running the cell, and a campaign served entirely from the store merges
// to an artifact byte-identical to a computed one. The store therefore
// needs no invalidation policy beyond the key itself — a repeated question
// costs a cache hit, forever.
//
// Layout:
//
//	<dir>/blocks/<aa>/<sha256(key)>.json   one cell's sample block
//	<dir>/index.json                       advisory listing of all blocks
//
// Block files are written atomically (temp + rename) and carry an integrity
// hash over their canonical payload; a corrupt, truncated, mismatched, or
// foreign-schema block degrades to a miss, never to wrong data. The index
// is an advisory accelerator for humans and tooling (`szfarm status`, the
// CI artifact upload): lookups never trust it, and Open rebuilds it from
// the blocks on disk when it is missing or stale.
package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/experiment"
	"repro/internal/interp"
	"repro/internal/obs"
)

// BlockSchema versions the block-file layout; blocks with another schema
// are ignored (a miss) rather than trusted.
const BlockSchema = 1

// IndexSchema versions the index-file layout.
const IndexSchema = 1

// KeyFor returns the store key for one cell: experiment.CellKey extended
// with the engine tag and semantics generation. Callers must resolve
// engine defaults into cfg.Engine first (the coordinator does this at
// submit time); a zero Engine means the compiled engine, matching
// interp.Engine's zero value.
func KeyFor(benchName string, cfg experiment.Config, runs int, seedBase uint64) string {
	return Extend(experiment.CellKey(benchName, cfg, runs, seedBase), cfg.Engine)
}

// Extend turns a checkpoint cell key into a store key. Both engines
// provably collect identical samples (the cross-engine differential suite),
// but a shared store is longer-lived than that proof: keeping hits within
// one engine means a future engine bug can never cross-contaminate stored
// results, at the cost of one redundant computation per engine. The
// generation tag retires every stored block at once when the simulator's
// sample semantics change (experiment.SemanticsGeneration).
func Extend(cellKey string, engine interp.Engine) string {
	return fmt.Sprintf("%s|engine=%s|gen=%d", cellKey, engine, experiment.SemanticsGeneration)
}

// Cells adapts the store to experiment.CellSource for one engine: cell
// keys arriving from the collection path (experiment.CellKey strings) are
// extended with the engine tag and semantics generation before addressing
// the store. Callers must pass the engine the collection actually runs
// under (the resolved Config.Engine), or hits and writes land in the wrong
// engine's namespace.
func (s *Store) Cells(engine interp.Engine) experiment.CellSource {
	return cellAdapter{s: s, engine: engine}
}

type cellAdapter struct {
	s      *Store
	engine interp.Engine
}

func (a cellAdapter) Lookup(key string, runs int, seedBase uint64) []experiment.RunResult {
	return a.s.Get(Extend(key, a.engine), runs, seedBase)
}

func (a cellAdapter) Store(_ context.Context, key string, runs int, seedBase uint64, results []experiment.RunResult) error {
	return a.s.Put(Extend(key, a.engine), runs, seedBase, results)
}

// blockFile is the on-disk form of one cell. Payload is the canonical
// (compact json.Marshal) encoding of blockPayload; SHA256 is the hex digest
// of those canonical bytes, so any bit damage to the payload — or a
// hash-collision landing a foreign key in this file's slot — is detected on
// read.
type blockFile struct {
	Schema  int             `json:"schema"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

type blockPayload struct {
	Key      string                 `json:"key"`
	Bench    string                 `json:"bench"`
	Runs     int                    `json:"runs"`
	SeedBase uint64                 `json:"seed_base"`
	Results  []experiment.RunResult `json:"results"`
}

// IndexEntry describes one stored block in the advisory index.
type IndexEntry struct {
	Key      string `json:"key"`
	Bench    string `json:"bench"`
	Runs     int    `json:"runs"`
	SeedBase uint64 `json:"seed_base"`
	SHA256   string `json:"sha256"`
	Size     int64  `json:"size"`
}

type indexFile struct {
	Schema int          `json:"schema"`
	Blocks []IndexEntry `json:"blocks"`
}

// Store is an open result store. Methods are safe for concurrent use
// within one process; cross-process writers are safe too (atomic renames),
// though their index updates may race — which only staleness-tolerates the
// advisory index, never lookups.
type Store struct {
	dir string

	mu     sync.Mutex
	index  map[string]IndexEntry // by key
	hits   int
	misses int
	puts   int

	// Obs, when non-nil, receives store counters (store.get.hits,
	// store.get.misses, store.put.blocks, store.put.bytes — all golden:
	// deterministic given the store contents and the query sequence) and
	// corruption warnings. Set it before concurrent use.
	Obs *obs.Scope
}

// Open opens (creating if needed) a store directory and loads or rebuilds
// its index.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blocks"), 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{dir: dir, index: map[string]IndexEntry{}}
	if err := s.loadIndex(); err != nil {
		// A broken index is rebuilt, not fatal: blocks are the truth.
		s.index = map[string]IndexEntry{}
		if rerr := s.rebuildIndex(); rerr != nil {
			return nil, rerr
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed blocks.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats reports lookup and write activity since Open.
func (s *Store) Stats() (hits, misses, puts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.puts
}

// Index returns the indexed blocks sorted by key.
func (s *Store) Index() []IndexEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]IndexEntry, 0, len(s.index))
	for _, e := range s.index {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (s *Store) metrics() *obs.Registry {
	if s.Obs != nil {
		return s.Obs.Metrics
	}
	return nil
}

func (s *Store) warnf(format string, args ...any) {
	if s.Obs != nil && s.Obs.Log != nil {
		s.Obs.Log.Warn(fmt.Sprintf(format, args...))
		return
	}
	fmt.Fprintf(os.Stderr, "store: %s\n", fmt.Sprintf(format, args...))
}

// keyHash is the content address of a key.
func keyHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// blockPath maps a key to its block file. The leading byte pair shards the
// directory so a million-cell store does not put a million entries in one
// directory.
func (s *Store) blockPath(key string) string {
	h := keyHash(key)
	return filepath.Join(s.dir, "blocks", h[:2], h+".json")
}

// benchOf extracts the benchmark name from a cell key (its first |-field;
// the format is pinned by experiment.CellKey's doc contract).
func benchOf(key string) string {
	if i := strings.IndexByte(key, '|'); i >= 0 {
		return key[:i]
	}
	return key
}

// Get returns the stored results for a cell, or nil when absent. Every
// failure mode — missing file, corrupt JSON, schema or integrity mismatch,
// foreign key in the slot, wrong run range — is a miss with a warning,
// never an error: re-collection is deterministic, so dropping a bad block
// is always safe.
func (s *Store) Get(key string, runs int, seedBase uint64) []experiment.RunResult {
	path := s.blockPath(key)
	miss := func() []experiment.RunResult {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		s.metrics().Counter("store.get.misses").Inc()
		return nil
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.warnf("%s: %v (treated as a miss)", path, err)
		}
		return miss()
	}
	var f blockFile
	if err := json.Unmarshal(buf, &f); err != nil {
		s.warnf("%s: corrupt block: %v (treated as a miss)", path, err)
		return miss()
	}
	if f.Schema != BlockSchema {
		s.warnf("%s: block schema %d, this build reads %d (treated as a miss)", path, f.Schema, BlockSchema)
		return miss()
	}
	canon, err := canonicalPayload(f.Payload)
	if err != nil {
		s.warnf("%s: %v (treated as a miss)", path, err)
		return miss()
	}
	if got := hashHex(canon); got != f.SHA256 {
		s.warnf("%s: integrity hash mismatch (stored %s, computed %s; treated as a miss)", path, f.SHA256, got)
		return miss()
	}
	var p blockPayload
	if err := json.Unmarshal(canon, &p); err != nil {
		s.warnf("%s: corrupt payload: %v (treated as a miss)", path, err)
		return miss()
	}
	if p.Key != key {
		// SHA-256 collision or a foreign file copied into the slot.
		s.warnf("%s: block holds key %q, wanted %q (treated as a miss)", path, p.Key, key)
		return miss()
	}
	if p.Runs != runs || p.SeedBase != seedBase || len(p.Results) != runs {
		s.warnf("%s: run range mismatch (treated as a miss)", path)
		return miss()
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	s.metrics().Counter("store.get.hits").Inc()
	return p.Results
}

// Put stores a completed cell atomically and updates the index. Writing an
// existing key is a no-op (blocks are immutable; determinism means the
// incumbent is as good as the newcomer).
func (s *Store) Put(key string, runs int, seedBase uint64, results []experiment.RunResult) error {
	if len(results) != runs {
		return fmt.Errorf("store: put %q: %d results for %d runs", key, len(results), runs)
	}
	path := s.blockPath(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	payload, err := json.Marshal(blockPayload{
		Key:      key,
		Bench:    benchOf(key),
		Runs:     runs,
		SeedBase: seedBase,
		Results:  results,
	})
	if err != nil {
		return fmt.Errorf("store: encode block: %w", err)
	}
	buf, err := json.MarshalIndent(blockFile{
		Schema:  BlockSchema,
		SHA256:  hashHex(payload),
		Payload: payload,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode block: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	if err := atomicWrite(path, buf); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	s.mu.Lock()
	s.puts++
	s.index[key] = IndexEntry{
		Key: key, Bench: benchOf(key), Runs: runs, SeedBase: seedBase,
		SHA256: hashHex(payload), Size: int64(len(buf)),
	}
	s.mu.Unlock()
	s.metrics().Counter("store.put.blocks").Inc()
	s.metrics().Counter("store.put.bytes").Add(uint64(len(buf)))
	if err := s.writeIndex(); err != nil {
		// The index is advisory; a failed update is a warning, not a lost
		// block.
		s.warnf("updating index: %v (blocks are unaffected)", err)
	}
	return nil
}

// canonicalPayload compacts a payload to the exact bytes Put hashed:
// json.Compact preserves the original token bytes, and Put wrote the
// payload from json.Marshal (already compact), so the indent that
// MarshalIndent applied to the enclosing file compacts back to the
// canonical form.
func canonicalPayload(raw json.RawMessage) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return nil, fmt.Errorf("compacting payload: %w", err)
	}
	return buf.Bytes(), nil
}

func hashHex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// atomicWrite writes buf to path via temp + rename so a crash mid-write
// never leaves a truncated block behind.
func atomicWrite(path string, buf []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// loadIndex reads index.json into memory.
func (s *Store) loadIndex() error {
	buf, err := os.ReadFile(filepath.Join(s.dir, "index.json"))
	if os.IsNotExist(err) {
		return s.rebuildIndex()
	}
	if err != nil {
		return err
	}
	var f indexFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return err
	}
	if f.Schema != IndexSchema {
		return fmt.Errorf("store: index schema %d, this build reads %d", f.Schema, IndexSchema)
	}
	for _, e := range f.Blocks {
		s.index[e.Key] = e
	}
	return nil
}

// rebuildIndex scans the block directories and rewrites the index from
// what is actually on disk. Corrupt, truncated, or foreign blocks are
// quarantined — moved aside into <dir>/quarantine/ so a later Put of the
// same key is not blocked by Put's exists-check short-circuit — and the
// rebuild continues; only a failed directory walk aborts it.
func (s *Store) rebuildIndex() error {
	s.mu.Lock()
	s.index = map[string]IndexEntry{}
	s.mu.Unlock()
	root := filepath.Join(s.dir, "blocks")
	var bad []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			s.warnf("%s: %v (quarantined by index rebuild)", path, err)
			bad = append(bad, path)
			return nil
		}
		var f blockFile
		if err := json.Unmarshal(buf, &f); err != nil || f.Schema != BlockSchema {
			s.warnf("%s: unreadable or foreign block (quarantined by index rebuild)", path)
			bad = append(bad, path)
			return nil
		}
		var p blockPayload
		canon, err := canonicalPayload(f.Payload)
		if err != nil || json.Unmarshal(canon, &p) != nil || hashHex(canon) != f.SHA256 {
			s.warnf("%s: corrupt block (quarantined by index rebuild)", path)
			bad = append(bad, path)
			return nil
		}
		s.mu.Lock()
		s.index[p.Key] = IndexEntry{
			Key: p.Key, Bench: p.Bench, Runs: p.Runs, SeedBase: p.SeedBase,
			SHA256: f.SHA256, Size: int64(len(buf)),
		}
		s.mu.Unlock()
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: rebuild index: %w", err)
	}
	for _, path := range bad {
		s.quarantine(path)
	}
	return s.writeIndex()
}

// quarantine moves a damaged block file into <dir>/quarantine/, keeping
// its name. Failures degrade to a warning — the block is already excluded
// from the index, so quarantine is hygiene, not correctness.
func (s *Store) quarantine(path string) {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		s.warnf("quarantining %s: %v (left in place)", path, err)
		return
	}
	dst := filepath.Join(qdir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		s.warnf("quarantining %s: %v (left in place)", path, err)
		return
	}
	s.metrics().Counter("store.quarantined.blocks").Inc()
}

// writeIndex atomically rewrites index.json, sorted by key so equal stores
// produce byte-identical indexes.
func (s *Store) writeIndex() error {
	f := indexFile{Schema: IndexSchema, Blocks: s.Index()}
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(s.dir, "index.json"), append(buf, '\n'))
}
