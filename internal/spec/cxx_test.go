package spec_test

import (
	"testing"

	"repro/internal/spec"
)

func TestExtendedSuiteNames(t *testing.T) {
	want := []string{"omnetpp", "xalancbmk", "dealII", "soplex", "povray"}
	ext := spec.ExtendedSuite()
	if len(ext) != len(want) {
		t.Fatalf("extended suite has %d benchmarks", len(ext))
	}
	for i, b := range ext {
		if b.Name != want[i] {
			t.Errorf("extended[%d] = %s, want %s", i, b.Name, want[i])
		}
		if b.Lang != "c++" {
			t.Errorf("%s: lang %q, want c++", b.Name, b.Lang)
		}
	}
	if len(spec.FullSuite()) != 23 {
		t.Fatalf("full suite has %d benchmarks, want 23", len(spec.FullSuite()))
	}
	if _, ok := spec.ByNameFull("soplex"); !ok {
		t.Fatal("ByNameFull missed soplex")
	}
}

func TestExtendedSuiteRunsAndIsLayoutInvariant(t *testing.T) {
	for _, b := range spec.ExtendedSuite() {
		native := runBench(t, b, false, 0)
		if native.Instructions == 0 || native.Output == 0 {
			t.Errorf("%s: empty run", b.Name)
			continue
		}
		for seed := uint64(1); seed <= 2; seed++ {
			stab := runBench(t, b, true, seed)
			if stab.Output != native.Output {
				t.Errorf("%s: stabilized output differs (seed %d)", b.Name, seed)
			}
		}
	}
}

func TestExtendedSuiteActuallyThrows(t *testing.T) {
	// Every extended benchmark must exercise its exception paths: run with
	// a tiny scale and verify via deterministic replay that the invoke
	// handler path contributes to output. We can't observe throws directly
	// from outside, so check structurally: each module contains OpThrow and
	// at least one invoke (OpCall with a handler).
	for _, b := range spec.ExtendedSuite() {
		m := b.Build(0.05)
		throws, invokes := 0, 0
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				for i := range blk.Instrs {
					in := &blk.Instrs[i]
					switch {
					case in.Op.String() == "throw":
						throws++
					case in.Op.String() == "call" && in.Imm != 0:
						invokes++
					}
				}
			}
		}
		if throws == 0 || invokes == 0 {
			t.Errorf("%s: throws=%d invokes=%d", b.Name, throws, invokes)
		}
	}
}
