package campaign

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/store"
)

// TestCoordinatorFailoverFinishesCampaign is the acceptance test for fenced
// failover: two coordinator incarnations share one store through the
// coordination lease. The active (epoch 1) is killed mid-campaign with one
// cell done and one leased; a standby takes over the expired lease at epoch
// 2, replays the journal, and workers finish the campaign against it. The
// deposed coordinator's late writes are rejected by its stale fencing
// epoch, and the merged artifact is byte-identical to a fault-free local
// run.
func TestCoordinatorFailoverFinishesCampaign(t *testing.T) {
	spec := testSpec()
	baseline := localBaseline(t, spec)
	dir := t.TempDir()

	// Incarnation A holds the coordination lease at epoch 1.
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	handleA, _, err := stA.Coordination().TryAcquire("coord-a", 30*time.Minute, time.Now())
	if err != nil || handleA == nil {
		t.Fatalf("acquire lease A: %v %v", handleA, err)
	}
	coordA, err := NewCoordinator(CoordinatorOptions{
		Store: stA, Obs: obs.NewScope(), Identity: "coord-a", Fence: handleA,
	})
	if err != nil {
		t.Fatalf("coordinator A: %v", err)
	}
	id, cells, _, err := coordA.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	first := coordA.Acquire("doomed")
	if first.Lease == nil {
		t.Fatalf("no first lease")
	}
	if err := coordA.Complete(first.Lease.ID, CompleteRequest{
		Worker: "doomed", Results: computeLease(t, first.Lease),
	}); err != nil {
		t.Fatalf("complete first cell: %v", err)
	}
	second := coordA.Acquire("doomed")
	if second.Lease == nil {
		t.Fatalf("no second lease")
	}
	// kill -9 here: coordA is abandoned with the second cell leased and the
	// coordination lease still on disk, unrenewed.

	// A standby an hour later finds the heartbeat expired, claims fencing
	// epoch 2, and promotes through the ordinary restart path.
	stB, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	handleB, _, err := stB.Coordination().TryAcquire("coord-b", 30*time.Minute, futureClock())
	if err != nil || handleB == nil {
		t.Fatalf("standby could not take over the expired lease: %v %v", handleB, err)
	}
	if handleB.Epoch() != handleA.Epoch()+1 {
		t.Fatalf("takeover epoch %d, want %d", handleB.Epoch(), handleA.Epoch()+1)
	}
	coordB, err := NewCoordinator(CoordinatorOptions{
		Store: stB, Obs: obs.NewScope(), Identity: "coord-b", Fence: handleB, now: futureClock,
	})
	if err != nil {
		t.Fatalf("coordinator B: %v", err)
	}
	stat, ok := coordB.Status(id)
	if !ok || stat.State != StateRunning || stat.Done != 1 {
		t.Fatalf("restored status %+v ok=%v, want running with 1 done", stat, ok)
	}

	// The deposed coordinator is fenced off: its completion cannot reach the
	// store, and its submissions are refused outright.
	var fenced *store.FencedError
	err = coordA.Complete(second.Lease.ID, CompleteRequest{
		Worker: "doomed", Results: fakeResults(second.Lease.Runs),
	})
	if !errors.As(err, &fenced) {
		t.Fatalf("deposed Complete = %v, want *store.FencedError", err)
	}
	if _, _, _, err := coordA.Submit(spec); !errors.As(err, &fenced) {
		t.Fatalf("deposed Submit = %v, want *store.FencedError", err)
	}

	// Workers pointed at the promoted coordinator finish the campaign.
	ts := httptest.NewServer(coordB.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	runWorkers(t, client, 2)
	final, err := client.WaitDone(context.Background(), id, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != StateDone || final.Done != cells {
		t.Fatalf("final status %+v, want done %d/%d", final, cells, cells)
	}
	// Exactly the one orphaned cell crossed the failover un-done; the
	// deposed coordinator's fenced completion must not have stored a block.
	if got := coordB.metrics().Counter("campaign.cells.completed").Value(); got != 1 {
		t.Fatalf("B completed %d cells, want 1", got)
	}
	if got := stB.Len(); got != cells {
		t.Fatalf("store holds %d blocks, want %d", got, cells)
	}

	merged, err := client.Artifact(context.Background(), id)
	if err != nil {
		t.Fatalf("artifact: %v", err)
	}
	if !bytes.Equal(merged, baseline) {
		t.Fatalf("artifact after failover differs from uninterrupted local run")
	}
	// The client observed the promoted identity and epoch from the response
	// headers.
	holder, epoch := client.ObservedCoordinator()
	if holder != "coord-b" || epoch != 2 {
		t.Fatalf("observed coordinator %s epoch %d, want coord-b epoch 2", holder, epoch)
	}
}

// TestLeaseStealFencesDeposedCoordinator deposes a live coordinator at the
// worst possible moment — between a completion's lease resolution and its
// store write — using the lease-steal fault site, and pins every fenced
// surface: the store write is refused, the journal document stays
// byte-for-byte intact, and new submissions are rejected.
func TestLeaseStealFencesDeposedCoordinator(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	coordn := st.Coordination()
	handle, _, err := coordn.TryAcquire("active", time.Hour, time.Now())
	if err != nil || handle == nil {
		t.Fatalf("acquire lease: %v %v", handle, err)
	}
	c, err := NewCoordinator(CoordinatorOptions{
		Store: st, Obs: obs.NewScope(), Identity: "active", Fence: handle,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	spec := testSpec()
	spec.Benchmarks = []string{"astar"}
	id, _, _, err := c.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	grant := c.Acquire("w")
	if grant.Lease == nil {
		t.Fatalf("no lease")
	}
	journal := filepath.Join(dir, "campaigns", id+".json")
	preSteal, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("journal before steal: %v", err)
	}

	// Arm the steal: the next fence check — the one guarding this
	// completion's store write — fires the hook, which claims epoch 2 as a
	// rival process would after the active's (simulated) silence.
	deactivate := faultinject.Activate(1, faultinject.Fault{
		Site: faultinject.SiteLeaseSteal, Kind: faultinject.KindHook, Nth: 1,
		Hook: func() {
			h2, _, err := coordn.TryAcquire("usurper", time.Hour, time.Now().Add(2*time.Hour))
			if err != nil || h2 == nil {
				t.Errorf("usurper takeover failed: %v %v", h2, err)
			}
		},
	})
	defer deactivate()

	err = c.Complete(grant.Lease.ID, CompleteRequest{Worker: "w", Results: fakeResults(grant.Lease.Runs)})
	var fenced *store.FencedError
	if !errors.As(err, &fenced) {
		t.Fatalf("completion after steal = %v, want *store.FencedError", err)
	}
	if fenced.OurEpoch != 1 || fenced.Epoch != 2 || fenced.Holder != "usurper" {
		t.Fatalf("FencedError = %+v, want epoch 1 superseded by usurper's 2", fenced)
	}
	if got := st.Len(); got != 0 {
		t.Fatalf("deposed completion stored %d blocks, want 0", got)
	}
	if got := c.metrics().Counter("campaign.fenced.writes").Value(); got == 0 {
		t.Fatalf("fenced-write counter did not move")
	}

	// The deposed journal write is refused and the pre-steal document
	// survives untouched — the usurper replayed it at promotion.
	c.mu.Lock()
	c.persistLocked(c.byID[id])
	c.mu.Unlock()
	if got := c.metrics().Counter("campaign.persist.fenced").Value(); got != 1 {
		t.Fatalf("fenced persists = %d, want 1", got)
	}
	postSteal, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("journal after steal: %v", err)
	}
	if !bytes.Equal(preSteal, postSteal) {
		t.Fatalf("deposed coordinator modified the journal document")
	}

	if _, _, _, err := c.Submit(testSpec()); !errors.As(err, &fenced) {
		t.Fatalf("deposed Submit = %v, want *store.FencedError", err)
	}
}

// TestClientFailsOverToActiveCoordinator points a client at a standby
// first: the standby's 503 + Retry-After is retryable, the retry loop
// reprobes /v1/coordinator across the server list, and the exchange lands
// on the active coordinator — all inside one call.
func TestClientFailsOverToActiveCoordinator(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	active, err := NewCoordinator(CoordinatorOptions{
		Store: st, Obs: obs.NewScope(), Identity: "active-co",
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	standby, err := NewHAServer(HAOptions{
		Coordinator: CoordinatorOptions{Store: st},
		Identity:    "standby-co",
		CoordTTL:    90 * time.Millisecond, // keeps the standby's Retry-After at its 1s floor
		Obs:         obs.NewScope(),
	})
	if err != nil {
		t.Fatalf("standby: %v", err)
	}
	// standby.Run never starts: it stays in the standby role, answering
	// probes and 503ing the protocol.
	tsStandby := httptest.NewServer(standby)
	defer tsStandby.Close()
	tsActive := httptest.NewServer(active.Handler())
	defer tsActive.Close()

	client := NewClient(tsStandby.URL + "," + tsActive.URL)
	client.RetryBase = time.Millisecond
	resp, err := client.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("submit through standby-first list: %v", err)
	}
	if resp.Cells != 2 {
		t.Fatalf("submit response %+v", resp)
	}
	holder, _ := client.ObservedCoordinator()
	if holder != "active-co" {
		t.Fatalf("observed coordinator %q, want active-co", holder)
	}
	info, err := client.Coordinator(context.Background())
	if err != nil || info.Role != RoleActive || info.Self != "active-co" {
		t.Fatalf("post-failover probe %+v err=%v, want active-co active", info, err)
	}
}

// TestHAServerElectionAndFailover runs the live election loop: two
// HAServers over one store directory, exactly one promotes; cancelling the
// active releases the lease and the standby promotes at the next epoch.
func TestHAServerElectionAndFailover(t *testing.T) {
	dir := t.TempDir()
	mk := func(id string) *HAServer {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatalf("%s: open store: %v", id, err)
		}
		ha, err := NewHAServer(HAOptions{
			Coordinator: CoordinatorOptions{Store: st, Obs: obs.NewScope()},
			Identity:    id,
			CoordTTL:    200 * time.Millisecond,
			Obs:         obs.NewScope(),
		})
		if err != nil {
			t.Fatalf("%s: new HA server: %v", id, err)
		}
		return ha
	}
	waitRole := func(s *HAServer, id, role string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if s.Role() == role {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("%s: role %q not reached (still %q)", id, role, s.Role())
	}

	haA := mk("node-a")
	ctxA, cancelA := context.WithCancel(context.Background())
	doneA := make(chan error, 1)
	go func() { doneA <- haA.Run(ctxA) }()
	waitRole(haA, "node-a", RoleActive)

	haB := mk("node-b")
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	doneB := make(chan error, 1)
	go func() { doneB <- haB.Run(ctxB) }()
	// B must hold at standby while A's lease is live.
	time.Sleep(250 * time.Millisecond)
	if haB.Role() != RoleStandby {
		t.Fatalf("two active coordinators on one store")
	}

	// Graceful failover: cancelling A releases the lease; B promotes at its
	// next poll with the successor epoch.
	cancelA()
	if err := <-doneA; err != nil {
		t.Fatalf("A's election loop: %v", err)
	}
	if haA.Role() != RoleStandby {
		t.Fatalf("cancelled server still claims the active role")
	}
	waitRole(haB, "node-b", RoleActive)
	co := haB.Coordinator()
	if co == nil {
		t.Fatalf("promoted standby has no coordinator")
	}
	if info := co.Info(); info.Epoch != 2 || info.Self != "node-b" {
		t.Fatalf("promoted coordinator info %+v, want node-b at epoch 2", info)
	}

	cancelB()
	if err := <-doneB; err != nil {
		t.Fatalf("B's election loop: %v", err)
	}
}
