package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testClock() (func() time.Time, func(time.Duration)) {
	now := time.Unix(1_700_000_000, 0)
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestLeaseAcquireRenewRelease(t *testing.T) {
	s := openStore(t)
	now, advance := testClock()
	coord := s.Coordination()

	info, err := coord.Observe(now())
	if err != nil {
		t.Fatalf("Observe on empty area: %v", err)
	}
	if info.Held || info.Epoch != 0 {
		t.Fatalf("empty area observed as %+v", info)
	}

	h, info, err := coord.TryAcquire("alpha", 10*time.Second, now())
	if err != nil {
		t.Fatalf("TryAcquire: %v", err)
	}
	if h == nil {
		t.Fatalf("acquisition on a free lease failed: %+v", info)
	}
	if h.Epoch() != 1 || h.Holder() != "alpha" {
		t.Fatalf("handle = epoch %d holder %s, want 1/alpha", h.Epoch(), h.Holder())
	}

	// A second process cannot acquire while the lease is live.
	h2, info, err := coord.TryAcquire("beta", 10*time.Second, now())
	if err != nil || h2 != nil {
		t.Fatalf("concurrent acquire: handle=%v err=%v", h2, err)
	}
	if !info.Held || info.Holder != "alpha" || info.Epoch != 1 {
		t.Fatalf("standby observed %+v, want held by alpha at epoch 1", info)
	}

	// Renewal extends the heartbeat past what the original TTL allowed.
	advance(8 * time.Second)
	if err := h.Renew(10*time.Second, now()); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	advance(8 * time.Second) // 16s after acquire, 8s after renew: still held
	if h2, _, _ := coord.TryAcquire("beta", 10*time.Second, now()); h2 != nil {
		t.Fatalf("acquired a renewed live lease")
	}
	if err := h.Check(); err != nil {
		t.Fatalf("Check on live lease: %v", err)
	}

	// Release lets a successor in immediately, with the next epoch.
	if err := h.Release(now()); err != nil {
		t.Fatalf("Release: %v", err)
	}
	h2, _, err = coord.TryAcquire("beta", 10*time.Second, now())
	if err != nil || h2 == nil {
		t.Fatalf("acquire after release: handle=%v err=%v", h2, err)
	}
	if h2.Epoch() != 2 {
		t.Fatalf("successor epoch = %d, want 2", h2.Epoch())
	}
}

func TestLeaseExpiryAllowsTakeoverAndFencesOldHolder(t *testing.T) {
	s := openStore(t)
	now, advance := testClock()
	coord := s.Coordination()

	h1, _, err := coord.TryAcquire("alpha", 5*time.Second, now())
	if err != nil || h1 == nil {
		t.Fatalf("TryAcquire: %v %v", h1, err)
	}

	// Before expiry the standby polls; after expiry it takes over.
	advance(3 * time.Second)
	if h, _, _ := coord.TryAcquire("beta", 5*time.Second, now()); h != nil {
		t.Fatalf("takeover before expiry")
	}
	advance(3 * time.Second)
	h2, _, err := coord.TryAcquire("beta", 5*time.Second, now())
	if err != nil || h2 == nil {
		t.Fatalf("takeover after expiry: %v %v", h2, err)
	}
	if h2.Epoch() != h1.Epoch()+1 {
		t.Fatalf("takeover epoch = %d, want %d", h2.Epoch(), h1.Epoch()+1)
	}

	// The deposed holder's Check, Renew, and (via Renew) every fenced
	// write are rejected with FencedError naming the superseding claim.
	err = h1.Check()
	fe, ok := err.(*FencedError)
	if !ok {
		t.Fatalf("deposed Check = %v, want *FencedError", err)
	}
	if fe.OurEpoch != 1 || fe.Epoch != 2 || fe.Holder != "beta" {
		t.Fatalf("FencedError = %+v", fe)
	}
	if err := h1.Renew(5*time.Second, now()); err == nil {
		t.Fatalf("deposed Renew succeeded")
	}
	// The new holder is unaffected, even after the deposed renewal attempt.
	if err := h2.Check(); err != nil {
		t.Fatalf("new holder fenced by deposed writer: %v", err)
	}
	info, err := coord.Observe(now())
	if err != nil || !info.Held || info.Holder != "beta" || info.Epoch != 2 {
		t.Fatalf("post-takeover observation %+v err=%v", info, err)
	}
}

func TestLeaseEpochClaimIsExclusive(t *testing.T) {
	// Two standbys racing for the same expired lease: exactly one wins,
	// decided by the O_EXCL claim-file create. Simulated by pre-creating
	// the claim the second acquirer would need.
	s := openStore(t)
	now, _ := testClock()
	coord := s.Coordination()

	if err := os.MkdirAll(coord.Dir(), 0o755); err != nil {
		t.Fatal(err)
	}
	// A rival claims epoch 1 between our Observe and our claim attempt; the
	// pre-created file makes our O_EXCL create fail exactly like losing
	// that race.
	if err := os.WriteFile(coord.claimPath(1), []byte(`{"schema":1,"holder":"rival","acquired":0,"ttl_nano":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	h, _, err := coord.TryAcquire("late", 5*time.Second, now())
	if err != nil {
		t.Fatalf("TryAcquire after lost race: %v", err)
	}
	if h != nil && h.Epoch() == 1 {
		t.Fatalf("two holders claimed epoch 1")
	}
}

func TestLeaseClaimPruning(t *testing.T) {
	s := openStore(t)
	now, advance := testClock()
	coord := s.Coordination()

	for i := 0; i < claimKeep+4; i++ {
		h, _, err := coord.TryAcquire("holder", time.Second, now())
		if err != nil || h == nil {
			t.Fatalf("cycle %d: %v %v", i, h, err)
		}
		if err := h.Release(now()); err != nil {
			t.Fatalf("cycle %d release: %v", i, err)
		}
		advance(2 * time.Second)
	}
	entries, err := os.ReadDir(coord.Dir())
	if err != nil {
		t.Fatal(err)
	}
	claims := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".claim" {
			claims++
		}
	}
	if claims > claimKeep {
		t.Fatalf("%d claim files retained, want <= %d", claims, claimKeep)
	}
	// Pruning must never lose the authoritative (max) epoch.
	info, err := coord.Observe(now())
	if err != nil || info.Epoch != uint64(claimKeep+4) {
		t.Fatalf("post-prune epoch = %d err=%v, want %d", info.Epoch, err, claimKeep+4)
	}
}

func TestGCRefusesHeldLease(t *testing.T) {
	s := openStore(t)
	coord := s.Coordination()
	h, _, err := coord.TryAcquire("live-coordinator", time.Hour, time.Now())
	if err != nil || h == nil {
		t.Fatalf("TryAcquire: %v %v", h, err)
	}

	if _, err := s.GC(GCOptions{}); err == nil {
		t.Fatalf("GC ran against a held lease")
	} else if _, ok := err.(*LeaseHeldError); !ok {
		t.Fatalf("GC error = %T %v, want *LeaseHeldError", err, err)
	}
	// Dry runs and forced runs proceed.
	if _, err := s.GC(GCOptions{DryRun: true}); err != nil {
		t.Fatalf("dry-run GC refused: %v", err)
	}
	if _, err := s.GC(GCOptions{Force: true}); err != nil {
		t.Fatalf("forced GC refused: %v", err)
	}
	// A released lease frees GC.
	if err := h.Release(time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(GCOptions{}); err != nil {
		t.Fatalf("GC after release: %v", err)
	}
}
