package ir

import (
	"fmt"
	"math"
)

// ModuleBuilder constructs a Module incrementally.
type ModuleBuilder struct {
	m *Module
}

// NewModuleBuilder returns a builder for a module with the given name.
func NewModuleBuilder(name string) *ModuleBuilder {
	return &ModuleBuilder{m: &Module{Name: name}}
}

// Global declares a global of size bytes and returns its index.
func (mb *ModuleBuilder) Global(name string, size uint64) int32 {
	mb.m.Globals = append(mb.m.Globals, Global{Name: name, Size: (size + 7) &^ 7})
	return int32(len(mb.m.Globals) - 1)
}

// GlobalInit declares a global initialized with the given words.
func (mb *ModuleBuilder) GlobalInit(name string, words []int64) int32 {
	g := Global{Name: name, Size: uint64(len(words)) * 8, Init: words}
	mb.m.Globals = append(mb.m.Globals, g)
	return int32(len(mb.m.Globals) - 1)
}

// Func starts a new function with the given parameter count and returns its
// builder. The function's index is assigned immediately, so mutually
// recursive call graphs can be constructed by declaring functions first.
func (mb *ModuleBuilder) Func(name string, params int) *FuncBuilder {
	f := &Function{Name: name, Params: params, NumRegs: params}
	mb.m.Funcs = append(mb.m.Funcs, f)
	fb := &FuncBuilder{f: f, index: int32(len(mb.m.Funcs) - 1), cur: -1}
	fb.entry = fb.NewBlock()
	fb.SetBlock(fb.entry)
	return fb
}

// Module finalizes and returns the module.
func (mb *ModuleBuilder) Module() *Module {
	mb.m.Finalize()
	return mb.m
}

// FuncBuilder builds one function. It keeps a current-block cursor; emit
// methods append to the current block.
type FuncBuilder struct {
	f     *Function
	index int32
	cur   int
	entry int
}

// Index returns the function's index in the module.
func (fb *FuncBuilder) Index() int32 { return fb.index }

// Param returns the register holding the i'th parameter.
func (fb *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= fb.f.Params {
		panic(fmt.Sprintf("ir: function %s has no parameter %d", fb.f.Name, i))
	}
	return Reg(i)
}

// Slot declares a stack slot of size bytes and returns its index.
func (fb *FuncBuilder) Slot(name string, size uint64) int32 {
	fb.f.Slots = append(fb.f.Slots, StackSlot{Name: name, Size: (size + 7) &^ 7})
	return int32(len(fb.f.Slots) - 1)
}

// NewBlock appends an empty block and returns its index. It does not change
// the cursor.
func (fb *FuncBuilder) NewBlock() int {
	fb.f.Blocks = append(fb.f.Blocks, &Block{})
	return len(fb.f.Blocks) - 1
}

// SetBlock moves the emission cursor.
func (fb *FuncBuilder) SetBlock(b int) { fb.cur = b }

// CurrentBlock returns the cursor position.
func (fb *FuncBuilder) CurrentBlock() int { return fb.cur }

// NoRelocate marks the function as unmovable by the STABILIZER runtime.
func (fb *FuncBuilder) NoRelocate() { fb.f.NoRelocate = true }

func (fb *FuncBuilder) newReg() Reg {
	r := Reg(fb.f.NumRegs)
	fb.f.NumRegs++
	return r
}

func (fb *FuncBuilder) emit(i Instr) Reg {
	b := fb.f.Blocks[fb.cur]
	if b.Term.Kind != TermNone {
		panic(fmt.Sprintf("ir: emitting into terminated block %d of %s", fb.cur, fb.f.Name))
	}
	b.Instrs = append(b.Instrs, i)
	return i.Dst
}

// ConstI materializes an integer constant.
func (fb *FuncBuilder) ConstI(v int64) Reg {
	return fb.emit(Instr{Op: OpConstI, Dst: fb.newReg(), A: NoReg, B: NoReg, Imm: v})
}

// ConstF materializes a floating-point constant.
func (fb *FuncBuilder) ConstF(v float64) Reg {
	return fb.emit(Instr{Op: OpConstF, Dst: fb.newReg(), A: NoReg, B: NoReg, Imm: int64(math.Float64bits(v))})
}

// Mov copies a register.
func (fb *FuncBuilder) Mov(a Reg) Reg {
	return fb.emit(Instr{Op: OpMov, Dst: fb.newReg(), A: a, B: NoReg})
}

// MovTo copies src into an existing register (the IR's assignment form, used
// for loop-carried variables).
func (fb *FuncBuilder) MovTo(dst, src Reg) {
	fb.emit(Instr{Op: OpMov, Dst: dst, A: src, B: NoReg})
}

// Bin emits a two-operand instruction.
func (fb *FuncBuilder) Bin(op Op, a, b Reg) Reg {
	return fb.emit(Instr{Op: op, Dst: fb.newReg(), A: a, B: b})
}

// Convenience arithmetic wrappers.
func (fb *FuncBuilder) Add(a, b Reg) Reg    { return fb.Bin(OpAdd, a, b) }
func (fb *FuncBuilder) Sub(a, b Reg) Reg    { return fb.Bin(OpSub, a, b) }
func (fb *FuncBuilder) Mul(a, b Reg) Reg    { return fb.Bin(OpMul, a, b) }
func (fb *FuncBuilder) Div(a, b Reg) Reg    { return fb.Bin(OpDiv, a, b) }
func (fb *FuncBuilder) Rem(a, b Reg) Reg    { return fb.Bin(OpRem, a, b) }
func (fb *FuncBuilder) And(a, b Reg) Reg    { return fb.Bin(OpAnd, a, b) }
func (fb *FuncBuilder) Or(a, b Reg) Reg     { return fb.Bin(OpOr, a, b) }
func (fb *FuncBuilder) Xor(a, b Reg) Reg    { return fb.Bin(OpXor, a, b) }
func (fb *FuncBuilder) Shl(a, b Reg) Reg    { return fb.Bin(OpShl, a, b) }
func (fb *FuncBuilder) Shr(a, b Reg) Reg    { return fb.Bin(OpShr, a, b) }
func (fb *FuncBuilder) FAdd(a, b Reg) Reg   { return fb.Bin(OpFAdd, a, b) }
func (fb *FuncBuilder) FSub(a, b Reg) Reg   { return fb.Bin(OpFSub, a, b) }
func (fb *FuncBuilder) FMul(a, b Reg) Reg   { return fb.Bin(OpFMul, a, b) }
func (fb *FuncBuilder) FDiv(a, b Reg) Reg   { return fb.Bin(OpFDiv, a, b) }
func (fb *FuncBuilder) CmpEQ(a, b Reg) Reg  { return fb.Bin(OpCmpEQ, a, b) }
func (fb *FuncBuilder) CmpLT(a, b Reg) Reg  { return fb.Bin(OpCmpLT, a, b) }
func (fb *FuncBuilder) CmpLE(a, b Reg) Reg  { return fb.Bin(OpCmpLE, a, b) }
func (fb *FuncBuilder) FCmpLT(a, b Reg) Reg { return fb.Bin(OpFCmpLT, a, b) }

// I2F converts an integer register to floating point.
func (fb *FuncBuilder) I2F(a Reg) Reg {
	return fb.emit(Instr{Op: OpI2F, Dst: fb.newReg(), A: a, B: NoReg})
}

// F2I truncates a floating-point register to integer.
func (fb *FuncBuilder) F2I(a Reg) Reg {
	return fb.emit(Instr{Op: OpF2I, Dst: fb.newReg(), A: a, B: NoReg})
}

// LoadG loads globals[g] at byte offset off (+ 8*idx if idx != NoReg).
func (fb *FuncBuilder) LoadG(g int32, off int64, idx Reg) Reg {
	return fb.emit(Instr{Op: OpLoadG, Dst: fb.newReg(), A: idx, B: NoReg, Imm: off, Sym: g})
}

// StoreG stores val into globals[g] at byte offset off (+ 8*idx).
func (fb *FuncBuilder) StoreG(g int32, off int64, idx Reg, val Reg) {
	fb.emit(Instr{Op: OpStoreG, Dst: NoReg, A: idx, B: val, Imm: off, Sym: g})
}

// LoadGF is the floating-point (alignment-sensitive) global load.
func (fb *FuncBuilder) LoadGF(g int32, off int64, idx Reg) Reg {
	return fb.emit(Instr{Op: OpLoadGF, Dst: fb.newReg(), A: idx, B: NoReg, Imm: off, Sym: g})
}

// StoreGF is the floating-point global store.
func (fb *FuncBuilder) StoreGF(g int32, off int64, idx Reg, val Reg) {
	fb.emit(Instr{Op: OpStoreGF, Dst: NoReg, A: idx, B: val, Imm: off, Sym: g})
}

// LoadS loads the stack slot at byte offset off (+ 8*idx).
func (fb *FuncBuilder) LoadS(slot int32, off int64, idx Reg) Reg {
	return fb.emit(Instr{Op: OpLoadS, Dst: fb.newReg(), A: idx, B: NoReg, Imm: off, Sym: slot})
}

// StoreS stores val into the stack slot at byte offset off (+ 8*idx).
func (fb *FuncBuilder) StoreS(slot int32, off int64, idx Reg, val Reg) {
	fb.emit(Instr{Op: OpStoreS, Dst: NoReg, A: idx, B: val, Imm: off, Sym: slot})
}

// LoadSF / StoreSF are the floating-point stack accesses.
func (fb *FuncBuilder) LoadSF(slot int32, off int64, idx Reg) Reg {
	return fb.emit(Instr{Op: OpLoadSF, Dst: fb.newReg(), A: idx, B: NoReg, Imm: off, Sym: slot})
}

func (fb *FuncBuilder) StoreSF(slot int32, off int64, idx Reg, val Reg) {
	fb.emit(Instr{Op: OpStoreSF, Dst: NoReg, A: idx, B: val, Imm: off, Sym: slot})
}

// LoadH loads *(ptr + off + 8*idx).
func (fb *FuncBuilder) LoadH(ptr Reg, off int64, idx Reg) Reg {
	return fb.emit(Instr{Op: OpLoadH, Dst: fb.newReg(), A: ptr, B: idx, Imm: off})
}

// StoreH stores val to *(ptr + off + 8*idx). The value register rides in the
// Dst slot (see Instr documentation).
func (fb *FuncBuilder) StoreH(ptr Reg, off int64, idx Reg, val Reg) {
	fb.emit(Instr{Op: OpStoreH, Dst: val, A: ptr, B: idx, Imm: off})
}

// LoadHF / StoreHF are the floating-point heap accesses.
func (fb *FuncBuilder) LoadHF(ptr Reg, off int64, idx Reg) Reg {
	return fb.emit(Instr{Op: OpLoadHF, Dst: fb.newReg(), A: ptr, B: idx, Imm: off})
}

func (fb *FuncBuilder) StoreHF(ptr Reg, off int64, idx Reg, val Reg) {
	fb.emit(Instr{Op: OpStoreHF, Dst: val, A: ptr, B: idx, Imm: off})
}

// Alloc allocates size heap bytes and returns the pointer register.
func (fb *FuncBuilder) Alloc(size int64) Reg {
	return fb.emit(Instr{Op: OpAlloc, Dst: fb.newReg(), A: NoReg, B: NoReg, Imm: size})
}

// Free releases a heap pointer.
func (fb *FuncBuilder) Free(ptr Reg) {
	fb.emit(Instr{Op: OpFree, Dst: NoReg, A: ptr, B: NoReg})
}

// Call invokes the function with index fn and returns the result register.
func (fb *FuncBuilder) Call(fn int32, args ...Reg) Reg {
	as := append([]Reg(nil), args...)
	return fb.emit(Instr{Op: OpCall, Dst: fb.newReg(), A: NoReg, B: NoReg, Sym: fn, Args: as})
}

// Invoke is a call with an exception handler: if the callee (or anything it
// calls) throws, control transfers to the handler block and the returned
// register holds the exception value instead of the call result.
func (fb *FuncBuilder) Invoke(fn int32, handler int, args ...Reg) Reg {
	as := append([]Reg(nil), args...)
	return fb.emit(Instr{Op: OpCall, Dst: fb.newReg(), A: NoReg, B: NoReg,
		Sym: fn, Imm: int64(handler) + 1, Args: as})
}

// Throw raises v as an exception, unwinding to the nearest Invoke handler.
func (fb *FuncBuilder) Throw(v Reg) {
	fb.emit(Instr{Op: OpThrow, Dst: NoReg, A: v, B: NoReg})
}

// CallVoid invokes fn, discarding any result.
func (fb *FuncBuilder) CallVoid(fn int32, args ...Reg) {
	as := append([]Reg(nil), args...)
	fb.emit(Instr{Op: OpCall, Dst: NoReg, A: NoReg, B: NoReg, Sym: fn, Args: as})
}

// Sink mixes an integer register into the program output.
func (fb *FuncBuilder) Sink(a Reg) {
	fb.emit(Instr{Op: OpSink, Dst: NoReg, A: a, B: NoReg})
}

// SinkF mixes a floating-point register into the program output.
func (fb *FuncBuilder) SinkF(a Reg) {
	fb.emit(Instr{Op: OpSinkF, Dst: NoReg, A: a, B: NoReg})
}

func (fb *FuncBuilder) terminate(t Terminator) {
	b := fb.f.Blocks[fb.cur]
	if b.Term.Kind != TermNone {
		panic(fmt.Sprintf("ir: block %d of %s already terminated", fb.cur, fb.f.Name))
	}
	b.Term = t
}

// Jmp terminates the current block with an unconditional jump.
func (fb *FuncBuilder) Jmp(target int) {
	fb.terminate(Terminator{Kind: TermJmp, Then: target, Cond: NoReg, Val: NoReg})
}

// Br terminates the current block with a conditional branch.
func (fb *FuncBuilder) Br(cond Reg, then, els int) {
	fb.terminate(Terminator{Kind: TermBr, Cond: cond, Then: then, Else: els, Val: NoReg})
}

// Ret terminates the current block with a return.
func (fb *FuncBuilder) Ret(val Reg) {
	fb.terminate(Terminator{Kind: TermRet, Val: val, Cond: NoReg})
}

// Loop emits a counted loop running body n times (n from a register).
// It allocates the induction register, emits header/body/exit blocks, and
// leaves the cursor in the exit block. The body callback receives the
// induction register (counting 0..n-1) and must not terminate the block it
// is left in; Loop adds the back edge.
func (fb *FuncBuilder) Loop(n Reg, body func(i Reg)) {
	i := fb.ConstI(0)
	header := fb.NewBlock()
	bodyBlk := fb.NewBlock()
	exit := fb.NewBlock()
	fb.Jmp(header)

	fb.SetBlock(header)
	cond := fb.CmpLT(i, n)
	fb.Br(cond, bodyBlk, exit)

	fb.SetBlock(bodyBlk)
	body(i)
	one := fb.ConstI(1)
	next := fb.Add(i, one)
	fb.MovTo(i, next)
	fb.Jmp(header)

	fb.SetBlock(exit)
}

// LoopN is Loop with a constant trip count.
func (fb *FuncBuilder) LoopN(n int64, body func(i Reg)) {
	fb.Loop(fb.ConstI(n), body)
}

// If emits an if/else diamond. Either branch callback may be nil. The cursor
// ends in the join block.
func (fb *FuncBuilder) If(cond Reg, then func(), els func()) {
	thenBlk := fb.NewBlock()
	elseBlk := fb.NewBlock()
	join := fb.NewBlock()
	fb.Br(cond, thenBlk, elseBlk)

	fb.SetBlock(thenBlk)
	if then != nil {
		then()
	}
	if fb.f.Blocks[fb.cur].Term.Kind == TermNone {
		fb.Jmp(join)
	}

	fb.SetBlock(elseBlk)
	if els != nil {
		els()
	}
	if fb.f.Blocks[fb.cur].Term.Kind == TermNone {
		fb.Jmp(join)
	}

	fb.SetBlock(join)
}
