package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMarsagliaDeterminism(t *testing.T) {
	a := NewMarsaglia(42)
	b := NewMarsaglia(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestMarsagliaSeedsDiffer(t *testing.T) {
	a := NewMarsaglia(1)
	b := NewMarsaglia(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestMarsagliaDegenerateSeeds(t *testing.T) {
	// Seeds whose scrambled state would be absorbing must still produce a
	// working generator.
	for _, seed := range []uint64{0, 1, math.MaxUint64} {
		m := NewMarsaglia(seed)
		seen := map[uint32]bool{}
		for i := 0; i < 100; i++ {
			seen[m.Next()] = true
		}
		if len(seen) < 90 {
			t.Fatalf("seed %d produced only %d distinct values in 100 draws", seed, len(seen))
		}
	}
}

func TestIntnRange(t *testing.T) {
	m := NewMarsaglia(7)
	for _, n := range []int{1, 2, 3, 10, 255, 256, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := m.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewMarsaglia(1).Intn(0)
}

func TestUint64nRange(t *testing.T) {
	m := NewMarsaglia(9)
	for i := 0; i < 1000; i++ {
		if v := m.Uint64n(37); v >= 37 {
			t.Fatalf("Uint64n(37) = %d", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square goodness of fit over 16 buckets. With 16000 draws the
	// 99.9% critical value for 15 df is ~37.7.
	m := NewMarsaglia(123)
	const buckets, draws = 16, 16000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[m.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("chi-square %.2f exceeds 99.9%% critical value", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	m := NewMarsaglia(5)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		f := m.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	m := NewMarsaglia(11)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := m.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean %.4f far from 0", mean)
	}
	if math.Abs(variance-1) > 0.08 {
		t.Fatalf("normal variance %.4f far from 1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	m := NewMarsaglia(77)
	child := m.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if m.Next() == child.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matched parent %d/100 times", same)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size)%64 + 1
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		NewMarsaglia(seed).Shuffle(n, func(i, j int) {
			vals[i], vals[j] = vals[j], vals[i]
		})
		seen := make([]bool, n)
		for _, v := range vals {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformity(t *testing.T) {
	// Every element should land in every position with roughly equal
	// probability. 3 elements, 6000 shuffles; expect ~2000 per cell.
	m := NewMarsaglia(99)
	var counts [3][3]int
	for trial := 0; trial < 6000; trial++ {
		vals := [3]int{0, 1, 2}
		m.Shuffle(3, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for pos, v := range vals {
			counts[v][pos]++
		}
	}
	for v := range counts {
		for pos := range counts[v] {
			c := counts[v][pos]
			if c < 1700 || c > 2300 {
				t.Fatalf("element %d at position %d seen %d times; expected ~2000", v, pos, c)
			}
		}
	}
}

func TestLrand48KnownSequence(t *testing.T) {
	// The generator must be a pure LCG: verify the recurrence directly.
	l := NewLrand48(0)
	state := uint64(0)<<16 | 0x330e
	for i := 0; i < 100; i++ {
		state = (state*lcgA + lcgC) & lcgMask
		want := uint32(state >> 17)
		if got := l.Next(); got != want {
			t.Fatalf("draw %d: got %d want %d", i, got, want)
		}
	}
}

func TestLrand48Is31Bit(t *testing.T) {
	l := NewLrand48(12345)
	for i := 0; i < 10000; i++ {
		if v := l.Next(); v >= 1<<31 {
			t.Fatalf("lrand48 value %d exceeds 31 bits", v)
		}
	}
}

func BenchmarkMarsagliaNext(b *testing.B) {
	m := NewMarsaglia(1)
	for i := 0; i < b.N; i++ {
		_ = m.Next()
	}
}

func BenchmarkMarsagliaIntn(b *testing.B) {
	m := NewMarsaglia(1)
	for i := 0; i < b.N; i++ {
		_ = m.Intn(256)
	}
}
