// Package gate compares two benchmark artifacts the way the paper says
// performance should be compared: with a test chosen by a normality screen,
// an effect-size point estimate wrapped in bootstrap confidence intervals
// (Kalibera & Jones), and multiple-comparison correction across the suite.
// The verdict feeds CI: the gate fails iff a statistically significant
// regression exceeds a configurable threshold.
package gate

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/stats"
)

// Verdict classifies one benchmark's old-vs-new comparison.
type Verdict string

const (
	// Improved: the corrected test rejects equality and the BCa interval
	// on the speedup lies entirely above 1.
	Improved Verdict = "improved"
	// Regressed: the corrected test rejects equality and the BCa interval
	// lies entirely below 1.
	Regressed Verdict = "regressed"
	// Indistinguishable: everything else — the honest default the paper
	// argues most "wins" actually are.
	Indistinguishable Verdict = "indistinguishable"
)

// Options configures a comparison.
type Options struct {
	// Alpha is the family-wise significance level applied to the
	// BH-corrected p-values (default 0.05).
	Alpha float64
	// Threshold is the minimum point-estimate slowdown (new/old - 1) a
	// significant regression needs before it fails the gate (default 0.01:
	// a statistically real but sub-1% regression warns without failing).
	Threshold float64
	// Confidence is the bootstrap CI level (default 0.95).
	Confidence float64
	// Bootstrap is the resampling replicate count (default 2000).
	Bootstrap int
	// Seed drives the bootstrap resampling (default 1); the comparison is
	// deterministic given the artifacts and this seed.
	Seed uint64
	// ShapiroAlpha is the normality-screen level choosing Welch-t vs
	// Mann-Whitney (default 0.05, as in §6).
	ShapiroAlpha float64
	// MinIPSRatio, when positive, additionally gates simulator throughput:
	// the headline benchmark's NewIPS/OldIPS (retired instructions per host
	// second) must be at least this ratio or the gate fails. Requires both
	// artifacts to carry host times (collected with Throughput on); host
	// time is non-golden telemetry, so this gate compares like-for-like
	// only when both artifacts come from the same host.
	MinIPSRatio float64
	// IPSBench names the headline benchmark for the throughput gate; empty
	// selects the benchmark with the most retired instructions in the
	// baseline (the heaviest workload — cactusADM in the default suite).
	IPSBench string
}

func (o *Options) defaults() {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.Threshold == 0 {
		o.Threshold = 0.01
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Bootstrap == 0 {
		o.Bootstrap = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ShapiroAlpha == 0 {
		o.ShapiroAlpha = 0.05
	}
}

// Row is one benchmark's comparison.
type Row struct {
	Benchmark        string
	OldRuns, NewRuns int
	OldMean, NewMean float64
	// Speedup is mean(old)/mean(new): above 1 the new artifact is faster.
	Speedup float64
	// Percentile and BCa are bootstrap confidence intervals on Speedup.
	Percentile, BCa stats.Interval
	// Test names the significance test the normality screen picked:
	// "welch-t" when both samples pass Shapiro-Wilk, "mann-whitney"
	// otherwise.
	Test string
	// P is the raw p-value; PAdj is after Benjamini-Hochberg across the
	// suite.
	P, PAdj float64
	// CohensD and CliffsDelta measure the effect size of new relative to
	// old: positive values mean the new samples are larger (slower).
	CohensD, CliffsDelta float64
	Verdict              Verdict
	// OldIPS and NewIPS are simulator throughput — total retired
	// instructions divided by total host seconds — for artifacts collected
	// with host timing on; zero when either side lacks it. Non-golden:
	// host-dependent, reported and gated but never part of the verdict.
	OldIPS, NewIPS float64
}

// IPSRatio is NewIPS/OldIPS, or 0 when either side lacks host timing.
func (r Row) IPSRatio() float64 {
	if r.OldIPS <= 0 || r.NewIPS <= 0 {
		return 0
	}
	return r.NewIPS / r.OldIPS
}

// Slowdown returns the point-estimate relative slowdown of new vs old
// (positive = slower).
func (r Row) Slowdown() float64 { return r.NewMean/r.OldMean - 1 }

// FailsGate reports whether this row alone would fail the gate at the given
// threshold.
func (r Row) FailsGate(threshold float64) bool {
	return r.Verdict == Regressed && r.Slowdown() > threshold
}

// Report is a full artifact comparison.
type Report struct {
	Rows []Row
	// OnlyOld and OnlyNew list benchmarks present in just one artifact
	// (skipped, but surfaced so a silently shrinking suite is visible).
	OnlyOld, OnlyNew []string
	Alpha, Threshold float64
	Confidence       float64
	// Failures counts rows that fail the gate; Fail is Failures > 0 or a
	// throughput-gate failure.
	Failures int
	Fail     bool
	// Throughput gate (active only when Options.MinIPSRatio > 0):
	// IPSBenchmark is the headline benchmark, IPSRatio its NewIPS/OldIPS,
	// MinIPSRatio the floor, IPSFail the verdict.
	IPSBenchmark string
	IPSRatio     float64
	MinIPSRatio  float64
	IPSFail      bool
}

// Compare evaluates the new artifact against the old baseline. Both must
// carry the same unit and collection configuration (scale, level,
// stabilizer) — comparing across configurations answers a different
// question than "did this commit regress performance".
func Compare(old, new *bench.Artifact, opts Options) (*Report, error) {
	opts.defaults()
	if err := comparable(old, new); err != nil {
		return nil, err
	}
	rep := &Report{Alpha: opts.Alpha, Threshold: opts.Threshold, Confidence: opts.Confidence}

	var names []string
	for _, b := range old.Benchmarks {
		if new.Find(b.Name) != nil {
			names = append(names, b.Name)
		} else {
			rep.OnlyOld = append(rep.OnlyOld, b.Name)
		}
	}
	for _, b := range new.Benchmarks {
		if old.Find(b.Name) == nil {
			rep.OnlyNew = append(rep.OnlyNew, b.Name)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		ob, nb := old.Find(name), new.Find(name)
		rep.Rows = append(rep.Rows, compareOne(ob, nb, opts))
	}

	// Correct across the whole suite, then assign verdicts.
	ps := make([]float64, len(rep.Rows))
	for i, r := range rep.Rows {
		ps[i] = r.P
	}
	adj := stats.BenjaminiHochberg(ps)
	for i := range rep.Rows {
		r := &rep.Rows[i]
		r.PAdj = adj[i]
		r.Verdict = verdict(*r, opts.Alpha)
		if r.FailsGate(opts.Threshold) {
			rep.Failures++
		}
	}
	rep.Fail = rep.Failures > 0
	if opts.MinIPSRatio > 0 {
		if err := gateIPS(rep, old, opts); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// gateIPS applies the throughput floor to the headline benchmark.
func gateIPS(rep *Report, old *bench.Artifact, opts Options) error {
	rep.MinIPSRatio = opts.MinIPSRatio
	idx := -1
	if opts.IPSBench != "" {
		for i, row := range rep.Rows {
			if row.Benchmark == opts.IPSBench {
				idx = i
			}
		}
		if idx < 0 {
			return fmt.Errorf("gate: throughput benchmark %q is not in both artifacts", opts.IPSBench)
		}
	} else {
		// Headline = the heaviest baseline workload with host timing.
		var best uint64
		for i, row := range rep.Rows {
			ob := old.Find(row.Benchmark)
			if total := sumU64(ob.Instructions); row.IPSRatio() > 0 && total >= best {
				best, idx = total, i
			}
		}
		if idx < 0 {
			return fmt.Errorf("gate: no benchmark carries host timing on both sides; collect both artifacts with throughput on")
		}
	}
	row := rep.Rows[idx]
	rep.IPSBenchmark = row.Benchmark
	rep.IPSRatio = row.IPSRatio()
	if rep.IPSRatio == 0 {
		return fmt.Errorf("gate: benchmark %q lacks host timing in one artifact; collect both with throughput on", row.Benchmark)
	}
	rep.IPSFail = rep.IPSRatio < opts.MinIPSRatio
	rep.Fail = rep.Fail || rep.IPSFail
	return nil
}

// comparable rejects artifact pairs whose samples measure different things.
func comparable(old, new *bench.Artifact) error {
	mo, mn := old.Meta, new.Meta
	mo.Commit, mn.Commit = "", ""
	mo.Seed, mn.Seed = 0, 0       // different seeds are fine: independent samples
	mo.Schema, mn.Schema = 0, 0   // a schema-1 baseline stays comparable to schema-2 artifacts
	mo.Engine, mn.Engine = "", "" // engines produce identical samples; the tag is informational
	if mo != mn {
		return fmt.Errorf("gate: artifacts are not comparable (unit/scale/level/stabilizer/noise differ):\n  old: %+v\n  new: %+v", mo, mn)
	}
	return nil
}

func compareOne(ob, nb *bench.Benchmark, opts Options) Row {
	row := Row{
		Benchmark: ob.Name,
		OldRuns:   ob.Runs, NewRuns: nb.Runs,
		OldMean: stats.Mean(ob.Seconds), NewMean: stats.Mean(nb.Seconds),
		CohensD:     stats.CohensD(ob.Seconds, nb.Seconds),
		CliffsDelta: stats.CliffsDelta(ob.Seconds, nb.Seconds),
	}
	row.Speedup = row.OldMean / row.NewMean
	row.OldIPS = ips(ob)
	row.NewIPS = ips(nb)

	// §6's screening: parametric only when both samples look normal.
	normalOld := stats.ShapiroWilk(ob.Seconds).P >= opts.ShapiroAlpha
	normalNew := stats.ShapiroWilk(nb.Seconds).P >= opts.ShapiroAlpha
	var tr stats.TestResult
	if normalOld && normalNew {
		row.Test = "welch-t"
		tr = stats.WelchT(ob.Seconds, nb.Seconds)
	} else {
		row.Test = "mann-whitney"
		tr = stats.MannWhitneyU(ob.Seconds, nb.Seconds)
	}
	row.P = tr.P

	// Bootstrap the speedup. The seed mixes in the benchmark name so every
	// row resamples independently but reproducibly.
	row.Percentile, row.BCa = stats.BootstrapRatioCI(
		ob.Seconds, nb.Seconds, opts.Bootstrap, opts.Confidence, rowSeed(opts.Seed, ob.Name))
	return row
}

// ips is the benchmark's simulator throughput: total retired instructions
// per total host second. Zero when the artifact lacks either series (older
// schema, or collected without host timing) or the host time is degenerate.
func ips(b *bench.Benchmark) float64 {
	if len(b.Instructions) == 0 || len(b.HostSeconds) != len(b.Instructions) {
		return 0
	}
	var host float64
	for _, s := range b.HostSeconds {
		host += s
	}
	if host <= 0 {
		return 0
	}
	return float64(sumU64(b.Instructions)) / host
}

func sumU64(xs []uint64) uint64 {
	var t uint64
	for _, x := range xs {
		t += x
	}
	return t
}

// rowSeed derives a per-benchmark bootstrap seed (FNV-1a over the name).
func rowSeed(seed uint64, name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return seed ^ h
}

// verdict requires the corrected test and the BCa interval to agree before
// calling a difference real — the gate's guard against the bare-p-value
// reasoning the paper criticizes.
func verdict(r Row, alpha float64) Verdict {
	if math.IsNaN(r.PAdj) || r.PAdj >= alpha {
		return Indistinguishable
	}
	switch {
	case r.BCa.Lo > 1:
		return Improved
	case r.BCa.Hi < 1:
		return Regressed
	default:
		return Indistinguishable
	}
}

// Table renders the comparison in the repo's table style.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Regression gate: speedup = old/new with %g%% BCa bootstrap CIs, BH-corrected at α = %g\n",
		r.Confidence*100, r.Alpha)
	fmt.Fprintf(&sb, "%-12s %5s %9s %21s %13s %9s %8s %7s  %s\n",
		"Benchmark", "runs", "speedup", "BCa CI", "test", "p(adj)", "d", "δ", "verdict")
	for _, row := range r.Rows {
		mark := " "
		if row.FailsGate(r.Threshold) {
			mark = "!"
		}
		fmt.Fprintf(&sb, "%-12s %5d %9.4f [%9.4f,%9.4f] %13s %9.4f %8.2f %7.2f  %s%s\n",
			row.Benchmark, row.NewRuns, row.Speedup, row.BCa.Lo, row.BCa.Hi,
			row.Test, row.PAdj, row.CohensD, row.CliffsDelta, row.Verdict, mark)
	}
	if len(r.OnlyOld) > 0 {
		fmt.Fprintf(&sb, "only in baseline (skipped): %s\n", strings.Join(r.OnlyOld, ", "))
	}
	if len(r.OnlyNew) > 0 {
		fmt.Fprintf(&sb, "only in head (skipped): %s\n", strings.Join(r.OnlyNew, ", "))
	}
	improved, regressed := 0, 0
	for _, row := range r.Rows {
		switch row.Verdict {
		case Improved:
			improved++
		case Regressed:
			regressed++
		}
	}
	fmt.Fprintf(&sb, "%d improved, %d regressed, %d indistinguishable of %d compared\n",
		improved, regressed, len(r.Rows)-improved-regressed, len(r.Rows))
	if hasIPS := func() bool {
		for _, row := range r.Rows {
			if row.IPSRatio() > 0 {
				return true
			}
		}
		return false
	}(); hasIPS {
		fmt.Fprintf(&sb, "Simulator throughput (retired instructions / host second, non-golden):\n")
		fmt.Fprintf(&sb, "%-12s %14s %14s %9s\n", "Benchmark", "old ips", "new ips", "delta")
		for _, row := range r.Rows {
			if ratio := row.IPSRatio(); ratio > 0 {
				fmt.Fprintf(&sb, "%-12s %14.3e %14.3e %8.2fx\n",
					row.Benchmark, row.OldIPS, row.NewIPS, ratio)
			}
		}
	}
	if r.MinIPSRatio > 0 {
		verdict := "meets"
		if r.IPSFail {
			verdict = "MISSES"
		}
		fmt.Fprintf(&sb, "throughput gate: %s at %.2fx %s the %.2fx floor\n",
			r.IPSBenchmark, r.IPSRatio, verdict, r.MinIPSRatio)
	}
	switch {
	case r.Failures > 0:
		fmt.Fprintf(&sb, "GATE FAIL: %d regression(s) above the %+.1f%% threshold (marked !)\n",
			r.Failures, r.Threshold*100)
	case r.IPSFail:
		fmt.Fprintf(&sb, "GATE FAIL: throughput %.2fx below the %.2fx floor\n", r.IPSRatio, r.MinIPSRatio)
	default:
		fmt.Fprintf(&sb, "GATE PASS: no corrected regression above the %+.1f%% threshold\n",
			r.Threshold*100)
	}
	return sb.String()
}
