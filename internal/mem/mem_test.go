package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/trap"
)

func TestAlignUp(t *testing.T) {
	cases := []struct {
		a     Addr
		align uint64
		want  Addr
	}{
		{0, 16, 0},
		{1, 16, 16},
		{16, 16, 16},
		{17, 16, 32},
		{4095, 4096, 4096},
		{4096, 4096, 4096},
	}
	for _, c := range cases {
		if got := c.a.AlignUp(c.align); got != c.want {
			t.Errorf("AlignUp(%#x, %d) = %#x, want %#x", uint64(c.a), c.align, uint64(got), uint64(c.want))
		}
	}
}

func TestAlignUpProperty(t *testing.T) {
	f := func(a uint32, shift uint8) bool {
		align := uint64(1) << (shift % 13)
		got := Addr(a).AlignUp(align)
		return uint64(got)%align == 0 && got >= Addr(a) && uint64(got) < uint64(a)+align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPage(t *testing.T) {
	if Addr(0).Page() != 0 || Addr(4095).Page() != 0 || Addr(4096).Page() != 1 {
		t.Fatal("page arithmetic wrong")
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 0x1000, Size: 0x1000}
	if r.Contains(0xfff) || !r.Contains(0x1000) || !r.Contains(0x1fff) || r.Contains(0x2000) {
		t.Fatal("Contains boundaries wrong")
	}
	if r.End() != 0x2000 {
		t.Fatalf("End = %#x", uint64(r.End()))
	}
}

func TestPlaceCodeSequential(t *testing.T) {
	as := NewAddressSpace()
	a := as.PlaceCode(100, 16)
	b := as.PlaceCode(100, 16)
	if a != CodeBase {
		t.Fatalf("first function at %#x, want %#x", uint64(a), uint64(CodeBase))
	}
	if b != a+Addr(112) { // 100 rounded up to 112 by the next 16-alignment
		t.Fatalf("second function at %#x, want %#x", uint64(b), uint64(a+112))
	}
}

func TestPlaceGlobalAlignment(t *testing.T) {
	as := NewAddressSpace()
	as.PlaceGlobal(3, 1)
	g := as.PlaceGlobal(8, 8)
	if uint64(g)%8 != 0 {
		t.Fatalf("global not 8-aligned: %#x", uint64(g))
	}
}

// mustMap is a test helper for call sites that cannot legitimately fail.
func mustMap(t *testing.T, as *AddressSpace, size uint64, flag MapFlag) Region {
	t.Helper()
	r, err := as.Map(size, flag)
	if err != nil {
		t.Fatalf("Map(%d, %d): %v", size, flag, err)
	}
	return r
}

func TestMapAnywherePageRounding(t *testing.T) {
	as := NewAddressSpace()
	r := mustMap(t, as, 1, MapAnywhere)
	if r.Size != PageSize {
		t.Fatalf("size %d, want one page", r.Size)
	}
	r2 := mustMap(t, as, PageSize+1, MapAnywhere)
	if r2.Size != 2*PageSize {
		t.Fatalf("size %d, want two pages", r2.Size)
	}
	if r2.Base != r.End() {
		t.Fatal("mmap regions not contiguous")
	}
}

func TestMapLow32Fallback(t *testing.T) {
	as := NewAddressSpace()
	as.SetLow32Limit(MmapLow32 + 2*PageSize)
	a := mustMap(t, as, PageSize, MapLow32)
	b := mustMap(t, as, PageSize, MapLow32)
	c := mustMap(t, as, PageSize, MapLow32)
	if !Below4G(a.Base) || !Below4G(b.Base) {
		t.Fatal("first two low32 maps should be below 4G")
	}
	if Below4G(c.Base) {
		t.Fatal("third map should have fallen back to high memory")
	}
}

func TestMapUnknownFlagTraps(t *testing.T) {
	as := NewAddressSpace()
	_, err := as.Map(PageSize, MapFlag(99))
	tr := trap.AsTrap(err)
	if tr == nil || tr.Kind != trap.InvalidMap {
		t.Fatalf("Map with unknown flag returned %v, want invalid-map trap", err)
	}
}

func TestMapLimitTraps(t *testing.T) {
	as := NewAddressSpace()
	as.SetMapLimit(2 * PageSize)
	mustMap(t, as, PageSize, MapAnywhere)
	mustMap(t, as, PageSize, MapAnywhere)
	_, err := as.Map(PageSize, MapAnywhere)
	tr := trap.AsTrap(err)
	if tr == nil || tr.Kind != trap.OutOfMemory {
		t.Fatalf("Map past budget returned %v, want out-of-memory trap", err)
	}
	// Lifting the cap makes the same request succeed again.
	as.SetMapLimit(0)
	mustMap(t, as, PageSize, MapAnywhere)
}

func TestMapRegionsDisjoint(t *testing.T) {
	as := NewAddressSpace()
	sizes := []uint64{1, 4096, 8192, 100, 12288}
	flags := []MapFlag{MapAnywhere, MapLow32, MapHigh, MapAnywhere, MapLow32}
	for i, s := range sizes {
		mustMap(t, as, s, flags[i])
	}
	regions := as.Mapped()
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.Base < b.End() && b.Base < a.End() {
				t.Fatalf("regions %d and %d overlap: %+v %+v", i, j, a, b)
			}
		}
	}
}

func TestEnvDisplacesStack(t *testing.T) {
	plain := NewAddressSpace()
	withEnv := NewAddressSpaceEnv(100)
	if withEnv.StackBase() >= plain.StackBase() {
		t.Fatal("environment block did not displace the stack downward")
	}
	// Displacement is the env size rounded to 16.
	if got := plain.StackBase() - withEnv.StackBase(); got != 112 {
		t.Fatalf("displacement %d, want 112", got)
	}
}

func TestEnvDisplacementMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return NewAddressSpaceEnv(hi).StackBase() <= NewAddressSpaceEnv(lo).StackBase()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentsDoNotCollide(t *testing.T) {
	as := NewAddressSpace()
	for i := 0; i < 1000; i++ {
		as.PlaceCode(256, 16)
		as.PlaceGlobal(64, 8)
	}
	if as.codeCursor >= GlobalsBase {
		t.Fatal("code segment ran into globals")
	}
	if as.globCursor >= MmapBase {
		t.Fatal("globals segment ran into mmap region")
	}
}

func TestASLRRandomizesMapPlacement(t *testing.T) {
	seq := []int{3, 0, 7}
	i := 0
	as := NewAddressSpace()
	as.SetASLR(func(n int) int { v := seq[i%len(seq)]; i++; return v })
	r1 := mustMap(t, as, PageSize, MapAnywhere)
	r2 := mustMap(t, as, PageSize, MapAnywhere)
	if r1.Base != MmapBase+3*PageSize {
		t.Fatalf("first ASLR map at %#x", uint64(r1.Base))
	}
	if r2.Base != r1.End() { // gap of 0 pages
		t.Fatalf("second ASLR map at %#x, want %#x", uint64(r2.Base), uint64(r1.End()))
	}
	r3 := mustMap(t, as, PageSize, MapLow32)
	if r3.Base != MmapLow32+7*PageSize {
		t.Fatalf("low32 ASLR map at %#x", uint64(r3.Base))
	}
}
