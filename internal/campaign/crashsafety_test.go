package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/experiment"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/store"
)

// computeLease computes a lease's cell through the real engine — the same
// path a worker takes — so crash tests put genuine blocks in the store.
func computeLease(t *testing.T, l *Lease) []experiment.RunResult {
	t.Helper()
	b, ok := BenchByName(l.Bench)
	if !ok {
		t.Fatalf("unknown bench %q", l.Bench)
	}
	cc, err := experiment.CompileBench(b, l.Config)
	if err != nil {
		t.Fatalf("compile %s: %v", l.Bench, err)
	}
	ss, err := cc.Collect(context.Background(), l.Runs, l.SeedBase)
	if err != nil {
		t.Fatalf("collect %s: %v", l.Bench, err)
	}
	return ss.Results
}

// localBaseline collects the spec locally — the bytes every farm topology
// must reproduce.
func localBaseline(t *testing.T, spec Spec) []byte {
	t.Helper()
	opts, err := spec.CollectOptions()
	if err != nil {
		t.Fatalf("collect options: %v", err)
	}
	art, err := bench.Collect(context.Background(), opts)
	if err != nil {
		t.Fatalf("local collect: %v", err)
	}
	buf, err := art.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf
}

// futureClock is a coordinator clock far enough ahead of the crashed
// process's wall clock that every persisted lease is already expired.
func futureClock() time.Time { return time.Now().Add(time.Hour) }

// TestCoordinatorRestartResumesCampaign is the acceptance test for durable
// coordinator state: a coordinator killed without warning mid-campaign (one
// cell done, one leased to a worker that never reports back) is restarted
// against the same store directory; workers finish the campaign, no cell is
// lost or double-counted, and the merged artifact is byte-identical to an
// uninterrupted local run.
func TestCoordinatorRestartResumesCampaign(t *testing.T) {
	spec := testSpec()
	baseline := localBaseline(t, spec)
	dir := t.TempDir()

	// Incarnation A: complete the first cell, lease the second, then crash
	// (the coordinator object is simply abandoned — kill -9 has no goodbye).
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	coordA, err := NewCoordinator(CoordinatorOptions{Store: stA, Obs: obs.NewScope()})
	if err != nil {
		t.Fatalf("coordinator A: %v", err)
	}
	id, cells, hits, err := coordA.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if cells != 2 || hits != 0 {
		t.Fatalf("submit cells=%d hits=%d, want 2/0", cells, hits)
	}
	first := coordA.Acquire("doomed")
	if first.Lease == nil {
		t.Fatalf("no first lease")
	}
	if err := coordA.Complete(first.Lease.ID, CompleteRequest{
		Worker: "doomed", Results: computeLease(t, first.Lease),
	}); err != nil {
		t.Fatalf("complete first cell: %v", err)
	}
	second := coordA.Acquire("doomed")
	if second.Lease == nil {
		t.Fatalf("no second lease")
	}
	// Crash here: the second cell is leased, its worker will never report.

	// Incarnation B: same store directory, fresh process. Its clock is an
	// hour ahead, so the orphaned lease is stale on arrival.
	stB, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	coordB, err := NewCoordinator(CoordinatorOptions{
		Store: stB, Obs: obs.NewScope(), now: futureClock,
	})
	if err != nil {
		t.Fatalf("coordinator B: %v", err)
	}
	if got := coordB.metrics().Counter("campaign.restored").Value(); got != 1 {
		t.Fatalf("campaigns restored = %d, want 1", got)
	}
	stat, ok := coordB.Status(id)
	if !ok {
		t.Fatalf("campaign %s not restored", id)
	}
	if stat.State != StateRunning || stat.Done != 1 {
		t.Fatalf("restored status %+v, want running with 1 done", stat)
	}

	ts := httptest.NewServer(coordB.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	runWorkers(t, client, 2)

	final, err := client.WaitDone(context.Background(), id, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != StateDone || final.Done != cells {
		t.Fatalf("final status %+v, want done %d/%d", final, cells, cells)
	}
	// Exactly one cell crossed the restart un-done, and exactly one
	// completion happened in incarnation B: nothing lost, nothing repeated.
	if got := coordB.metrics().Counter("campaign.cells.completed").Value(); got != 1 {
		t.Fatalf("B completed %d cells, want 1", got)
	}
	// The dead worker's lease must have been retired, not double-dispatched.
	if got := stB.Len(); got != cells {
		t.Fatalf("store holds %d blocks, want %d", got, cells)
	}

	merged, err := client.Artifact(context.Background(), id)
	if err != nil {
		t.Fatalf("artifact: %v", err)
	}
	if !bytes.Equal(merged, baseline) {
		t.Fatalf("artifact after crash+restart differs from uninterrupted local run")
	}
	// The durable document survives and is valid JSON on disk.
	if _, err := os.Stat(filepath.Join(dir, "campaigns", id+".json")); err != nil {
		t.Fatalf("campaign document missing: %v", err)
	}
}

// TestRestartRecoversStoreOnlyCompletions covers the narrow crash window
// between a completion's store write and its state journal: the block is in
// the store but the persisted cell still says "leased". Restart must
// recover the cell as done from the store — the store is the source of
// truth for finished work.
func TestRestartRecoversStoreOnlyCompletions(t *testing.T) {
	spec := testSpec()
	spec.Benchmarks = spec.Benchmarks[:1]
	dir := t.TempDir()
	stA, _ := store.Open(dir)
	coordA, err := NewCoordinator(CoordinatorOptions{Store: stA, Obs: obs.NewScope()})
	if err != nil {
		t.Fatalf("coordinator A: %v", err)
	}
	id, _, _, err := coordA.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	grant := coordA.Acquire("w")
	if grant.Lease == nil {
		t.Fatalf("no lease")
	}
	// The worker's Put lands...
	cell := spec.Cells()[0]
	if err := stA.Put(cell.StoreKey, cell.Runs, cell.SeedBase, fakeResults(cell.Runs)); err != nil {
		t.Fatalf("put: %v", err)
	}
	// ...and the coordinator dies before Complete updates the journal.

	stB, _ := store.Open(dir)
	coordB, err := NewCoordinator(CoordinatorOptions{Store: stB, Obs: obs.NewScope(), now: futureClock})
	if err != nil {
		t.Fatalf("coordinator B: %v", err)
	}
	stat, ok := coordB.Status(id)
	if !ok || stat.State != StateDone || stat.Done != 1 {
		t.Fatalf("restored status %+v, want done 1/1 (recovered from store)", stat)
	}
	if coordB.Acquire("w2").Remaining != 0 {
		t.Fatalf("recovered campaign still advertises work")
	}
}

// TestReleaseReturnsCellWithoutBurningAttempt pins the drain contract: a
// released lease requeues its cell immediately and restores the attempt
// count, so draining a worker fleet cannot walk a cell toward MaxAttempts.
func TestReleaseReturnsCellWithoutBurningAttempt(t *testing.T) {
	st, _ := store.Open(t.TempDir())
	c, err := NewCoordinator(CoordinatorOptions{Store: st, Obs: obs.NewScope()})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	spec := testSpec()
	spec.Benchmarks = []string{"astar"}
	if _, _, _, err := c.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	for round := 1; round <= 5; round++ {
		grant := c.Acquire("drainer")
		if grant.Lease == nil {
			t.Fatalf("round %d: no lease", round)
		}
		if grant.Lease.Attempt != 1 {
			t.Fatalf("round %d: attempt %d, want 1 (release must not burn attempts)", round, grant.Lease.Attempt)
		}
		if !c.Release(grant.Lease.ID, "drainer") {
			t.Fatalf("round %d: release refused", round)
		}
		if c.Release(grant.Lease.ID, "drainer") {
			t.Fatalf("round %d: double release accepted", round)
		}
	}
	if c.Release(9999, "nobody") {
		t.Fatalf("release of unknown lease accepted")
	}
}

// TestCompleteIdempotency: a retried completion carrying the same
// idempotency key returns the original outcome instead of reprocessing —
// the torn-response case — and the cell is counted exactly once.
func TestCompleteIdempotency(t *testing.T) {
	st, _ := store.Open(t.TempDir())
	c, err := NewCoordinator(CoordinatorOptions{Store: st, Obs: obs.NewScope()})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	spec := testSpec()
	spec.Benchmarks = []string{"astar"}
	id, _, _, err := c.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	grant := c.Acquire("w")
	req := CompleteRequest{Worker: "w", Results: fakeResults(spec.Runs), IdempotencyKey: "lease-1"}
	if err := c.Complete(grant.Lease.ID, req); err != nil {
		t.Fatalf("complete: %v", err)
	}
	// The response was torn; the client retries the identical post.
	if err := c.Complete(grant.Lease.ID, req); err != nil {
		t.Fatalf("retried complete: %v", err)
	}
	if got := c.metrics().Counter("campaign.cells.completed").Value(); got != 1 {
		t.Fatalf("cells completed = %d, want 1", got)
	}
	if got := c.metrics().Counter("campaign.completions.deduped").Value(); got != 1 {
		t.Fatalf("completions deduped = %d, want 1", got)
	}
	stat, _ := c.Status(id)
	if stat.State != StateDone {
		t.Fatalf("campaign %+v, want done", stat)
	}
	// Without a key the same retry would have surfaced "unknown lease".
	if err := c.Complete(grant.Lease.ID, CompleteRequest{Worker: "w", Results: fakeResults(spec.Runs)}); err == nil {
		t.Fatalf("keyless retry of a resolved lease did not error")
	}
}

// TestSubmitOverloadSheds: past the open-cell bound, submissions shed with
// a typed overload error — HTTP 429 with Retry-After, not a queue that
// grows until the process dies.
func TestSubmitOverloadSheds(t *testing.T) {
	_, _, client := newFarm(t, CoordinatorOptions{Obs: obs.NewScope(), MaxPendingCells: 1})
	client.MaxAttempts = 1 // do not retry the 429 into the deadline
	_, err := client.Submit(context.Background(), testSpec())
	if err == nil {
		t.Fatalf("2-cell submit accepted over a 1-cell bound")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 429 {
		t.Fatalf("error = %v, want HTTP 429", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("429 carried no Retry-After hint: %+v", se)
	}

	// The typed error is visible without HTTP too.
	st, _ := store.Open(t.TempDir())
	c, err := NewCoordinator(CoordinatorOptions{Store: st, Obs: obs.NewScope(), MaxPendingCells: 1})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	_, _, _, err = c.Submit(testSpec())
	var over *OverloadError
	if !errors.As(err, &over) || over.Limit != 1 {
		t.Fatalf("error = %v, want *OverloadError with limit 1", err)
	}
}

// TestEventRing pins the ring's cursor semantics: cursors are monotonic
// line ordinals, a reader behind a wrap resumes at the oldest retained
// line (and learns how many lines it lost), and a caught-up reader gets
// nothing.
func TestEventRing(t *testing.T) {
	r := newEventRing(4)
	for i := 0; i < 10; i++ {
		r.append([]byte(fmt.Sprintf("l%d\n", i)))
	}
	buf, next, dropped := r.since(0) // cursor far behind the wrap
	if string(buf) != "l6\nl7\nl8\nl9\n" || next != 10 || dropped != 6 {
		t.Fatalf("since(0) = (%q, %d, %d), want last 4 lines, cursor 10, 6 dropped", buf, next, dropped)
	}
	if buf, next, dropped := r.since(8); string(buf) != "l8\nl9\n" || next != 10 || dropped != 0 {
		t.Fatalf("since(8) = (%q, %d, %d)", buf, next, dropped)
	}
	if buf, next, dropped := r.since(10); len(buf) != 0 || next != 10 || dropped != 0 {
		t.Fatalf("since(10) = (%q, %d, %d), want empty", buf, next, dropped)
	}
	r.append([]byte("l10\n"))
	if buf, next, dropped := r.since(10); string(buf) != "l10\n" || next != 11 || dropped != 0 {
		t.Fatalf("since(10) after append = (%q, %d, %d)", buf, next, dropped)
	}
}

// TestEventsAcrossWrap runs a campaign under a minimum-size event ring: the
// events endpooint must keep working (serving the retained tail) even after
// the log wrapped.
func TestEventsAcrossWrap(t *testing.T) {
	_, _, client := newFarm(t, CoordinatorOptions{Obs: obs.NewScope(), EventLogCap: 16})
	resp, err := client.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	runWorkers(t, client, 2)
	var buf bytes.Buffer
	if err := client.Events(context.Background(), resp.ID, false, &buf); err != nil {
		t.Fatalf("events: %v", err)
	}
	log := strings.TrimSpace(buf.String())
	lines := strings.Split(log, "\n")
	if len(lines) == 0 || len(lines) > 16 {
		t.Fatalf("got %d event lines, want 1..16 (ring bound)", len(lines))
	}
	// The newest lines survive a wrap; the terminal event is the newest.
	if !strings.Contains(lines[len(lines)-1], `"msg":"campaign complete"`) {
		t.Fatalf("last retained event is not the completion:\n%s", log)
	}
}

// TestChaosProtocolFaults arms a hostile network — dropped requests, an
// injected 503, a torn completion response, a duplicated completion — and
// checks the farm converges to the same bytes anyway: retries absorb the
// faults, idempotency keys absorb the duplicates, and no cell is lost or
// double-counted.
func TestChaosProtocolFaults(t *testing.T) {
	spec := testSpec()
	baseline := localBaseline(t, spec)

	deactivate := faultinject.Activate(7,
		faultinject.Fault{Site: faultinject.SiteNetAcquire, Kind: faultinject.KindDrop, Nth: 1},
		faultinject.Fault{Site: faultinject.SiteNetComplete, Kind: faultinject.Kind5xx, Nth: 1},
		faultinject.Fault{Site: faultinject.SiteNetComplete, Kind: faultinject.KindTorn, Nth: 2},
		faultinject.Fault{Site: faultinject.SiteNetComplete, Kind: faultinject.KindDup, Nth: 3},
		faultinject.Fault{Site: faultinject.SiteCoordAcquire, Kind: faultinject.KindError, Nth: 3},
	)
	defer deactivate()

	c, _, client := newFarm(t, CoordinatorOptions{Obs: obs.NewScope()})
	client.RetryBase = time.Millisecond
	resp, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	runWorkers(t, client, 2)
	deactivate() // the assertion path below should run fault-free

	final, err := client.WaitDone(context.Background(), resp.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != StateDone || final.Done != resp.Cells {
		t.Fatalf("final status %+v, want all %d cells done", final, resp.Cells)
	}
	if got := c.metrics().Counter("campaign.cells.completed").Value(); got != uint64(resp.Cells) {
		t.Fatalf("cells completed = %d, want %d (faults must not double-count)", got, resp.Cells)
	}
	merged, err := client.Artifact(context.Background(), resp.ID)
	if err != nil {
		t.Fatalf("artifact: %v", err)
	}
	if !bytes.Equal(merged, baseline) {
		t.Fatalf("artifact under protocol chaos differs from fault-free local run")
	}
}

// TestTornCampaignDocsSkippedNotFatal: damaged documents in the campaigns/
// state area — a torn write predating the atomic-write layer, a document
// from a future schema, one whose cells no longer marry to its spec — must
// never prevent a coordinator from starting. Each is skipped with a
// counter; intact neighbors restore normally.
func TestTornCampaignDocsSkippedNotFatal(t *testing.T) {
	dir := t.TempDir()
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	coordA, err := NewCoordinator(CoordinatorOptions{Store: stA, Obs: obs.NewScope()})
	if err != nil {
		t.Fatalf("coordinator A: %v", err)
	}
	id, _, _, err := coordA.Submit(testSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	writeDoc := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, "campaigns", name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeDoc("c0100.json", `{"schema":1,"id":"c0100","spec":{"benchmarks":["as`) // torn mid-write
	writeDoc("c0101.json", `{"schema":99,"id":"c0101"}`)                         // future schema
	writeDoc("c0102.json", `{"schema":1,"id":"c0102","spec":{},"cells":[{"bench":"ghost"}]}`)

	stB, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	coordB, err := NewCoordinator(CoordinatorOptions{Store: stB, Obs: obs.NewScope(), now: futureClock})
	if err != nil {
		t.Fatalf("coordinator refused to start over damaged documents: %v", err)
	}
	if got := coordB.metrics().Counter("campaign.docs.skipped").Value(); got != 3 {
		t.Fatalf("documents skipped = %d, want 3", got)
	}
	if got := coordB.metrics().Counter("campaign.restored").Value(); got != 1 {
		t.Fatalf("campaigns restored = %d, want 1", got)
	}
	if _, ok := coordB.Status(id); !ok {
		t.Fatalf("intact campaign %s lost among damaged neighbors", id)
	}
}

// TestWorkerDrainReleasesLease: a worker whose drain flag rises while it
// holds a lease hands the lease back immediately — the coordinator sees a
// released (not TTL-expired) lease, the cell requeues at its original
// attempt count, and a successor finishes the campaign. Both shutdown
// stages are covered: the graceful drain (ErrStopped) and the hard cancel,
// whose release runs on an independent context because the worker's own is
// already dead.
func TestWorkerDrainReleasesLease(t *testing.T) {
	c, _, client := newFarm(t, CoordinatorOptions{Obs: obs.NewScope()})
	spec := testSpec()
	spec.Benchmarks = []string{"astar"}
	resp, err := client.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Stage one: SIGTERM (drain) arrives between acquiring the lease and
	// starting the collection — the engine refuses the cell with ErrStopped
	// and the worker must release, not abandon.
	w := &Worker{Client: client, Name: "drainer", Poll: 5 * time.Millisecond, Obs: obs.NewScope()}
	ctx, drain := experiment.WithDrain(context.Background())
	grant, err := client.Acquire(ctx, w.Name)
	if err != nil || grant.Lease == nil {
		t.Fatalf("acquire: %+v, %v", grant, err)
	}
	drain()
	w.runLease(ctx, grant.Lease)
	if got := c.metrics().Counter("campaign.leases.released").Value(); got != 1 {
		t.Fatalf("leases released = %d, want 1", got)
	}
	stat, _ := c.Status(resp.ID)
	if stat.State != StateRunning || stat.Pending != 1 {
		t.Fatalf("status after drain %+v, want the cell back in pending", stat)
	}

	// Stage two: hard cancel mid-lease. The release still goes out,
	// best-effort, on a short background deadline.
	hardCtx, cancel := context.WithCancel(context.Background())
	grant2, err := client.Acquire(hardCtx, w.Name)
	if err != nil || grant2.Lease == nil {
		t.Fatalf("second acquire: %+v, %v", grant2, err)
	}
	if grant2.Lease.Attempt != 1 {
		t.Fatalf("second lease attempt = %d, want 1 (release must not burn attempts)", grant2.Lease.Attempt)
	}
	cancel()
	w.runLease(hardCtx, grant2.Lease)
	if got := c.metrics().Counter("campaign.leases.released").Value(); got != 2 {
		t.Fatalf("leases released = %d, want 2 (hard cancel must still release)", got)
	}

	// A successor worker finishes the campaign at attempt 1.
	runWorkers(t, client, 1)
	final, err := client.WaitDone(context.Background(), resp.ID, 10*time.Millisecond)
	if err != nil || final.State != StateDone {
		t.Fatalf("campaign did not finish after drain: %+v, %v", final, err)
	}
	if got := c.metrics().Counter("campaign.requeues").Value(); got != 0 {
		t.Fatalf("requeues = %d, want 0 (releases are not failures)", got)
	}
}
