// Command experiments regenerates every table and figure from the paper's
// evaluation (see DESIGN.md's per-experiment index):
//
//	linkorder  — §1's link-order bias measurement
//	envsize    — §1's environment-size bias (Mytkowicz et al.)
//	nist       — §3.2's randomness table
//	normality  — Table 1 + Figure 5 (Shapiro-Wilk / Brown-Forsythe / QQ)
//	overhead   — Figure 6 (overhead by randomization combination)
//	speedup    — Figure 7 + §6.1 ANOVA (-O2 vs -O1, -O3 vs -O2)
//	interval   — ablation: §4's periods-per-run normality claim
//	adaptive   — ablation: §8's counter-triggered re-randomization
//	phases     — §4's phase-behavior claim (trace + normality)
//	deployment — §1's suggested deployment-time outlier-reduction use case
//	shuffledepth — ablation: §3.2's shuffling-depth cost claim
//
// Usage:
//
//	experiments [-only name[,name...]] [-quick] [-scale f] [-runs n]
//	            [-seed n] [-qq benchmark] [-j n] [-progress=false]
//	            [-checkpoint dir] [-resume dir] [-cell-timeout d] [-retries n]
//	            [-verify-semantics [-verify-O 0,1,2,3]]
//	            [-metrics file [-metrics-full]] [-trace file]
//	            [-log file [-log-level lvl]]
//
// With -verify-semantics, the semantic-invariance oracle sweeps every
// benchmark across seeds, optimization levels, and heap allocators before
// any experiment runs, aborting with a divergence report if randomization
// is observable to any program.
//
// Runs execute in parallel (-j workers, or SZ_PARALLEL, or GOMAXPROCS);
// results are bit-identical at every worker count because each run is fully
// determined by its seed.
//
// Long campaigns are crash-safe: with -checkpoint (or -resume) every
// completed cell is flushed to disk, the first SIGINT/SIGTERM drains
// in-flight cells and checkpoints them before exiting with status 130, and
// -resume <dir> replays completed cells — same-seed determinism makes the
// resumed output byte-identical to an uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/compiler"
	"repro/internal/experiment"
	"repro/internal/interp"
	"repro/internal/oracle"
	"repro/internal/spec"
)

// experimentNames is the valid -only vocabulary; unknown names are rejected
// up front instead of silently running nothing.
var experimentNames = []string{
	"linkorder", "envsize", "nist", "normality", "overhead", "speedup",
	"interval", "shuffledepth", "adaptive", "deployment", "phases",
}

func main() {
	only := flag.String("only", "", "comma-separated experiment subset (default: all)")
	quick := flag.Bool("quick", false, "reduced scale and run counts (CI mode)")
	scale := flag.Float64("scale", 1.0, "workload scale")
	runs := flag.Int("runs", 30, "runs per configuration")
	seed := flag.Uint64("seed", 2013, "master seed")
	qq := flag.String("qq", "", "also print Figure 5 QQ data for this benchmark")
	csvDir := flag.String("csv", "", "also write each experiment's data as CSV into this directory")
	svgDir := flag.String("svg", "", "also render figures as SVG into this directory")
	charts := flag.Bool("charts", false, "also render bar-chart views of the figures")
	cxx := flag.Bool("cxx", false, "include the five C++ benchmarks the paper omitted (exception support implemented here)")
	list := flag.Bool("list", false, "list the available experiments")
	jobs := flag.Int("j", 0, "parallel workers (0 = $SZ_PARALLEL or GOMAXPROCS, 1 = sequential); identical results at any value")
	progress := flag.Bool("progress", true, "write per-cell progress/throughput lines to stderr")
	checkpoint := flag.String("checkpoint", "", "flush completed cells to this directory (crash-safe; enables -resume later)")
	resume := flag.String("resume", "", "resume from this checkpoint directory, skipping completed cells (implies -checkpoint)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell watchdog deadline (0 = derive from -scale, negative = off)")
	retries := flag.Int("retries", -1, "retries per cell after a transient failure or timeout (negative = default)")
	verify := flag.Bool("verify-semantics", false, "pre-flight: run the semantic-invariance oracle over the suite before any experiment; abort on divergence")
	verifyO := flag.String("verify-O", "0,1,2,3", "comma-separated optimization levels the pre-flight sweeps")
	metricsOut := flag.String("metrics", "", "write an engine-metrics snapshot (JSON) to this file at exit; golden fields only, byte-identical at any -j")
	metricsFull := flag.Bool("metrics-full", false, "include wall-clock histograms and gauges in -metrics (real but not reproducible)")
	traceOut := flag.String("trace", "", "write engine spans as Chrome trace-event JSON to this file at exit (open in ui.perfetto.dev)")
	logOut := flag.String("log", "", "write the structured JSONL run log to this file")
	logLevel := flag.String("log-level", "info", "minimum -log level: debug, info, warn, error")
	engine := flag.String("engine", "", "interpreter engine: compiled (default) or walk; samples are identical, only host time differs")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
		os.Exit(2)
	}
	if *runs < 1 {
		fail("-runs %d: need at least 1 run per configuration", *runs)
	}
	if *scale <= 0 || math.IsNaN(*scale) || math.IsInf(*scale, 0) {
		fail("-scale %v: must be a positive finite workload scale", *scale)
	}
	// Validate the pre-flight's -O list up front even when -verify-semantics
	// is off, so a typo fails fast instead of after a long campaign.
	var verifyLevels []compiler.OptLevel
	for _, part := range strings.Split(*verifyO, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fail("-verify-O %q: %v", *verifyO, err)
		}
		lv, err := compiler.ParseLevel(n)
		if err != nil {
			fail("-verify-O: %v", err)
		}
		verifyLevels = append(verifyLevels, lv)
	}

	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		fail("%v", err)
	}
	experiment.SetDefaultEngine(eng)

	experiment.SetParallelism(*jobs)
	if *progress {
		experiment.SetProgress(os.Stderr)
	}
	flushObs, err := experiment.InstallObs(experiment.ObsFiles{
		Metrics: *metricsOut, Full: *metricsFull,
		Trace: *traceOut,
		Log:   *logOut, LogLevel: *logLevel,
	})
	if err != nil {
		fail("%v", err)
	}

	if *list {
		fmt.Println(`linkorder     E1: link-order bias (§1)
envsize       E2: environment-size bias (§1, Mytkowicz et al.)
nist          E3: randomness of heap addresses (§3.2)
normality     E4+E5: Table 1 and Figure 5 (Shapiro-Wilk, Brown-Forsythe, QQ)
overhead      E6: Figure 6 (overhead by randomization combination)
speedup       E7+E8: Figure 7 and the §6.1 ANOVA
interval      E9: ablation — randomization periods vs normality (§4)
shuffledepth  E10: ablation — shuffle depth and heap substrates (§3.2, §7)
adaptive      E11: extension — counter-triggered re-randomization (§8)
deployment    E13: extension — deployment-time outlier reduction (§1)
phases        E14: extension — phase behavior under re-randomization (§4)`)
		return
	}

	suite := spec.Suite()
	if *cxx {
		suite = spec.FullSuite()
	}

	if *quick {
		*scale = 0.25
		if *runs > 15 {
			*runs = 15
		}
	}

	// Fault-tolerance policy: watchdog deadline (after -quick has settled
	// the scale), retry budget, shutdown signals, and the checkpoint.
	switch {
	case *cellTimeout > 0:
		experiment.SetCellTimeout(*cellTimeout)
	case *cellTimeout == 0:
		experiment.SetCellTimeout(experiment.DefaultCellTimeout(*scale))
	default:
		experiment.SetCellTimeout(0)
	}
	experiment.SetCellRetries(*retries)

	ctx, stop := experiment.NotifyShutdown(context.Background(), os.Stderr)
	defer stop()

	ckptDir := *checkpoint
	if *resume != "" {
		if ckptDir != "" && ckptDir != *resume {
			fail("-resume %s and -checkpoint %s name different directories", *resume, ckptDir)
		}
		ckptDir = *resume
	}
	var ckpt *experiment.Checkpoint
	if ckptDir != "" {
		var err error
		ckpt, err = experiment.OpenCheckpoint(ckptDir)
		if err != nil {
			fail("%v", err)
		}
		ctx = experiment.WithCheckpoint(ctx, ckpt)
	}

	// Semantic-invariance pre-flight: the experiments measure *performance*
	// across random layouts, and every statistic downstream assumes layout
	// never leaks into behaviour. -verify-semantics proves that assumption
	// on this build before spending hours measuring it.
	if *verify {
		fmt.Println("==== verify-semantics (pre-flight) ====")
		start := time.Now()
		rep, err := experiment.VerifySemantics(ctx, suite, experiment.VerifyOptions{
			Scale:   *scale,
			Workers: *jobs,
			Oracle:  oracle.Options{Levels: verifyLevels},
		})
		if err != nil {
			fail("verify-semantics: %v", err)
		}
		fmt.Print(rep)
		if rep.Failed() {
			fmt.Fprintln(os.Stderr, "experiments: semantic-invariance verification failed; not running experiments on a build whose behaviour depends on layout")
			os.Exit(1)
		}
		fmt.Printf("all %d cells agree (verify-semantics in %s)\n\n", rep.Cells, time.Since(start).Round(time.Millisecond))
	}

	valid := map[string]bool{}
	for _, n := range experimentNames {
		valid[n] = true
	}
	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			n = strings.TrimSpace(n)
			if !valid[n] {
				sorted := append([]string(nil), experimentNames...)
				sort.Strings(sorted)
				fail("-only %q: unknown experiment; valid names: %s", n, strings.Join(sorted, ", "))
			}
			want[n] = true
		}
	}
	enabled := func(name string) bool { return len(want) == 0 || want[name] }

	// report prints the end-of-campaign telemetry — cells that needed
	// retries, checkpoint reuse — and flushes the -metrics/-trace/-log
	// artifacts. It runs on every exit path, so an interrupted or failed
	// campaign still leaves its telemetry behind.
	report := func() {
		if r := experiment.RetryReport(); r != "" {
			fmt.Fprint(os.Stderr, r)
		}
		if ckpt != nil {
			stored, reused := ckpt.Stats()
			fmt.Fprintf(os.Stderr, "checkpoint %s: %d cells stored, %d reused\n", ckpt.Dir(), stored, reused)
		}
		if err := flushObs(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing telemetry: %v\n", err)
		}
	}

	run := func(name string, f func() error) {
		if !enabled(name) {
			return
		}
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			if errors.Is(err, experiment.ErrStopped) || errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "experiments: %s interrupted: %v\n", name, err)
				if ckpt != nil {
					fmt.Fprintf(os.Stderr, "experiments: completed cells are saved; rerun with -resume %s to continue\n", ckpt.Dir())
				}
				report()
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			report()
			os.Exit(1)
		}
		fmt.Printf("(%s in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	defer report()

	run("linkorder", func() error {
		r, err := experiment.LinkOrder(ctx, experiment.LinkOrderOptions{
			Scale: *scale, Seed: *seed, Orders: 32, Runs: 3,
		})
		if err != nil {
			return err
		}
		fmt.Print(r.Table())
		if *charts {
			fmt.Print(r.Chart())
		}
		return maybeCSV(*csvDir, r.WriteCSV)
	})

	run("envsize", func() error {
		r, err := experiment.EnvSize(ctx, experiment.EnvSizeOptions{
			Scale: *scale, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(r.Table())
		return maybeCSV(*csvDir, r.WriteCSV)
	})

	run("nist", func() error {
		r, err := experiment.NIST(ctx, experiment.NISTOptions{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Print(r.Table())
		return maybeCSV(*csvDir, r.WriteCSV)
	})

	run("normality", func() error {
		r, err := experiment.Normality(ctx, experiment.NormalityOptions{
			Scale: *scale, Runs: *runs, Seed: *seed, Suite: suite,
		})
		if err != nil {
			return err
		}
		fmt.Print(r.Table())
		fmt.Println(r.Summary())
		if *qq != "" {
			fmt.Print(r.QQFigure(*qq))
		}
		if err := maybeCSV(*svgDir, r.WriteSVG); err != nil {
			return err
		}
		return maybeCSV(*csvDir, r.WriteCSV)
	})

	run("overhead", func() error {
		r, err := experiment.Overhead(ctx, experiment.OverheadOptions{
			Scale: *scale, Runs: *runs, Seed: *seed, Suite: suite,
		})
		if err != nil {
			return err
		}
		fmt.Print(r.Figure())
		if *charts {
			fmt.Print(r.Chart())
		}
		if err := maybeCSV(*svgDir, r.WriteSVG); err != nil {
			return err
		}
		return maybeCSV(*csvDir, r.WriteCSV)
	})

	run("interval", func() error {
		r, err := experiment.RerandInterval(ctx, experiment.IntervalAblationOptions{
			Scale: *scale, Runs: *runs, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(r.Table())
		if err := maybeCSV(*svgDir, r.WriteSVG); err != nil {
			return err
		}
		return maybeCSV(*csvDir, r.WriteCSV)
	})

	run("shuffledepth", func() error {
		r, err := experiment.ShuffleDepth(ctx, experiment.ShuffleDepthOptions{
			Scale: *scale, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(r.Table())
		return maybeCSV(*csvDir, r.WriteCSV)
	})

	run("deployment", func() error {
		r, err := experiment.Deployment(ctx, experiment.DeploymentOptions{
			Scale: *scale, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(r.Table())
		return nil
	})

	run("phases", func() error {
		r, err := experiment.Phases(ctx, experiment.PhasesOptions{
			Scale: *scale, Runs: *runs, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(r.Table())
		return nil
	})

	run("adaptive", func() error {
		r, err := experiment.Adaptive(ctx, experiment.AdaptiveOptions{
			Scale: *scale, Runs: *runs, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(r.Table())
		return maybeCSV(*csvDir, r.WriteCSV)
	})

	run("speedup", func() error {
		r, err := experiment.Speedup(ctx, experiment.SpeedupOptions{
			Scale: *scale, Runs: *runs, Seed: *seed, Suite: suite,
		})
		if err != nil {
			return err
		}
		fmt.Print(r.Figure())
		fmt.Print(r.ANOVATable())
		if *charts {
			fmt.Print(r.Chart())
		}
		if err := maybeCSV(*svgDir, r.WriteSVG); err != nil {
			return err
		}
		return maybeCSV(*csvDir, r.WriteCSV)
	})
}

// maybeCSV invokes the writer when a CSV directory was requested.
func maybeCSV(dir string, write func(string) error) error {
	if dir == "" {
		return nil
	}
	return write(dir)
}
