package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/stats"
)

// DeploymentRow summarizes one benchmark's outlier exposure.
type DeploymentRow struct {
	Benchmark string
	// Native: each sample is one "shipped binary" — one draw from the
	// space of layouts (one-time randomization), measured once. A fleet of
	// builds differs in exactly this way: each compile/link/environment
	// combination fixes a layout for the binary's whole life.
	NativeMedian, NativeP95, NativeWorst float64
	// Stabilized: each sample is one run under re-randomization.
	StabMedian, StabP95, StabWorst float64
}

// DeploymentResult explores the use case §1 mentions but does not evaluate:
// "STABILIZER's low overhead means that it could be used at deployment time
// to reduce the risk of performance outliers." Shipping N differently-laid-
// out binaries natively yields a spread of permanent layout luck; running
// under STABILIZER, every instance re-randomizes its way to the mean, so the
// worst case tightens toward the median.
type DeploymentResult struct {
	Rows    []DeploymentRow
	Samples int
}

// DeploymentOptions configures the experiment.
type DeploymentOptions struct {
	Scale    float64
	Samples  int // binaries / runs per benchmark
	Seed     uint64
	Interval uint64
	Suite    []spec.Benchmark
}

func (o *DeploymentOptions) defaults() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Samples == 0 {
		o.Samples = 40
	}
	if o.Interval == 0 {
		o.Interval = 25_000
	}
	if o.Suite == nil {
		// The layout-luck-heavy benchmarks where outliers live.
		names := []string{"astar", "gobmk", "sjeng", "gcc"}
		for _, n := range names {
			b, _ := spec.ByName(n)
			o.Suite = append(o.Suite, b)
		}
	}
}

// Deployment runs the comparison.
func Deployment(ctx context.Context, opts DeploymentOptions) (*DeploymentResult, error) {
	opts.defaults()
	res := &DeploymentResult{Samples: opts.Samples}
	rows := make([]DeploymentRow, len(opts.Suite))
	pool := NewPool(0)
	err := pool.ForEach(ctx, len(opts.Suite), func(ctx context.Context, bi int) error {
		b := opts.Suite[bi]
		once := core.Options{Code: true, Stack: true, Heap: true}
		nat, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2, Stabilizer: &once})
		if err != nil {
			return err
		}
		natSamples, err := nat.Collect(ctx, opts.Samples, opts.Seed+uint64(bi)*10_000)
		if err != nil {
			return err
		}

		st := core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Interval: opts.Interval}
		stab, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2, Stabilizer: &st})
		if err != nil {
			return err
		}
		stabSamples, err := stab.Collect(ctx, opts.Samples, opts.Seed+uint64(bi)*10_000+5_000)
		if err != nil {
			return err
		}

		rows[bi] = DeploymentRow{
			Benchmark:    b.Name,
			NativeMedian: stats.Median(natSamples.Seconds),
			NativeP95:    stats.Quantile(natSamples.Seconds, 0.95),
			NativeWorst:  maxOf(natSamples.Seconds),
			StabMedian:   stats.Median(stabSamples.Seconds),
			StabP95:      stats.Quantile(stabSamples.Seconds, 0.95),
			StabWorst:    maxOf(stabSamples.Seconds),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

func maxOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)-1]
}

// Table renders the comparison as tail-over-median ratios.
func (r *DeploymentResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Deployment-time outlier risk (%d binaries/runs per benchmark)\n", r.Samples)
	fmt.Fprintf(&sb, "tail latitude = p95/median and worst/median; closer to 1.0 is safer\n")
	fmt.Fprintf(&sb, "%-12s | %22s | %22s\n", "", "fixed layouts (builds)", "re-randomized")
	fmt.Fprintf(&sb, "%-12s | %10s %10s | %10s %10s\n", "Benchmark", "p95/med", "worst/med", "p95/med", "worst/med")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s | %10.3f %10.3f | %10.3f %10.3f\n",
			row.Benchmark,
			row.NativeP95/row.NativeMedian, row.NativeWorst/row.NativeMedian,
			row.StabP95/row.StabMedian, row.StabWorst/row.StabMedian)
	}
	return sb.String()
}
