package heap

import (
	"repro/internal/mem"
	"repro/internal/rng"
)

// DefaultShuffleN is the shuffling-layer depth the paper settles on after
// NIST testing (§3.2): N = 256 randomizes the cache-index bits of heap
// addresses as well as DieHard does, at a fraction of the cost.
const DefaultShuffleN = 256

// Shuffle is STABILIZER's shuffling layer (Figure 1): it wraps a
// deterministic base allocator in a size-N array per size class. At first
// use the array is filled with N objects from the base heap and shuffled
// with Fisher-Yates. Each malloc allocates a fresh object from the base
// heap, swaps it with a random array slot, and returns the swapped-out
// pointer; each free swaps the freed pointer into a random slot and returns
// the displaced pointer to the base heap. malloc and free are each one
// iteration of the inside-out Fisher-Yates shuffle.
type Shuffle struct {
	base  Allocator
	r     *rng.Marsaglia
	n     int
	slots [numClasses][]mem.Addr
	sizes map[mem.Addr]uint64 // live (handed-out) object -> request size
	freed map[mem.Addr]bool   // released by the program, not re-issued
}

// NewShuffle wraps base in a shuffling layer of depth n (use
// DefaultShuffleN), drawing randomness from r.
func NewShuffle(base Allocator, r *rng.Marsaglia, n int) *Shuffle {
	if n <= 0 {
		panic("heap: shuffle layer depth must be positive")
	}
	return &Shuffle{
		base:  base,
		r:     r,
		n:     n,
		sizes: make(map[mem.Addr]uint64),
		freed: make(map[mem.Addr]bool),
	}
}

// Name implements Allocator.
func (s *Shuffle) Name() string { return "shuffle(" + s.base.Name() + ")" }

// fill performs the startup fill for one size class: N base allocations
// followed by a Fisher-Yates shuffle.
func (s *Shuffle) fill(c int) ([]mem.Addr, error) {
	arr := make([]mem.Addr, s.n)
	sz := classSize(c)
	for i := range arr {
		a, err := s.base.Alloc(sz)
		if err != nil {
			return nil, err
		}
		arr[i] = a
	}
	s.r.Shuffle(len(arr), func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
	s.slots[c] = arr
	return arr, nil
}

// Alloc implements Allocator.
func (s *Shuffle) Alloc(size uint64) (mem.Addr, error) {
	c := sizeClass(size)
	if c >= numClasses {
		// Large objects bypass the layer, as in the paper (STABILIZER
		// "cannot break apart large heap allocations").
		a, err := s.base.Alloc(size)
		if err != nil {
			return 0, err
		}
		s.sizes[a] = size
		delete(s.freed, a)
		return a, nil
	}
	arr := s.slots[c]
	if arr == nil {
		var err error
		if arr, err = s.fill(c); err != nil {
			return 0, err
		}
	}
	p, err := s.base.Alloc(classSize(c))
	if err != nil {
		return 0, err
	}
	i := s.r.Intn(s.n)
	p, arr[i] = arr[i], p
	s.sizes[p] = size
	delete(s.freed, p)
	return p, nil
}

// Free implements Allocator.
func (s *Shuffle) Free(addr mem.Addr) error {
	size, ok := s.sizes[addr]
	if !ok {
		return freeTrap(s.freed, addr, "shuffle")
	}
	delete(s.sizes, addr)
	s.freed[addr] = true
	c := sizeClass(size)
	if c >= numClasses {
		return s.base.Free(addr)
	}
	arr := s.slots[c]
	if arr == nil {
		var err error
		if arr, err = s.fill(c); err != nil {
			return err
		}
	}
	i := s.r.Intn(s.n)
	addr, arr[i] = arr[i], addr
	return s.base.Free(addr)
}
