package compiler_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/rng"
)

// fuzzRun executes a module natively with the given link order.
func fuzzRun(t *testing.T, m *ir.Module, order []int) (interp.Result, error) {
	t.Helper()
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, order, as)
	if err != nil {
		return interp.Result{}, err
	}
	mach := machine.New(machine.DefaultConfig())
	return interp.Run(m, interp.Options{
		Machine:  mach,
		MaxSteps: 50_000_000,
		Runtime: &interp.NativeRuntime{
			FuncAddrs:   img.FuncAddrs,
			GlobalAddrs: img.GlobalAddrs,
			Stack:       as.StackBase(),
			Heap:        heap.NewSegregated(as),
			Mach:        mach,
		},
	})
}

// TestFuzzPassesPreserveSemantics is the compiler's strongest correctness
// test: across many random programs, every optimization level (with and
// without the STABILIZER transformations) must produce the -O0 output.
func TestFuzzPassesPreserveSemantics(t *testing.T) {
	const programs = 60
	for seed := uint64(0); seed < programs; seed++ {
		src := ir.Generate(seed, ir.GenConfig{})
		ref, err := compiler.Compile(src, compiler.Options{Level: compiler.O0})
		if err != nil {
			t.Fatalf("seed %d: O0 compile: %v", seed, err)
		}
		want, err := fuzzRun(t, ref, compiler.DefaultOrder(len(ref.Funcs)))
		if err != nil {
			t.Fatalf("seed %d: O0 run: %v", seed, err)
		}
		for _, level := range []compiler.OptLevel{compiler.O1, compiler.O2, compiler.O3} {
			for _, stab := range []bool{false, true} {
				m, err := compiler.Compile(src, compiler.Options{Level: level, Stabilize: stab})
				if err != nil {
					t.Fatalf("seed %d %v stab=%v: compile: %v", seed, level, stab, err)
				}
				got, err := fuzzRun(t, m, compiler.DefaultOrder(len(m.Funcs)))
				if err != nil {
					t.Fatalf("seed %d %v stab=%v: run: %v", seed, level, stab, err)
				}
				if got.Output != want.Output {
					t.Errorf("seed %d: %v stab=%v changed output %#x -> %#x",
						seed, level, stab, want.Output, got.Output)
				}
			}
		}
	}
}

// TestFuzzLinkOrderInvariance checks that link order never changes a random
// program's output (only its cost).
func TestFuzzLinkOrderInvariance(t *testing.T) {
	r := rng.NewMarsaglia(99)
	for seed := uint64(100); seed < 130; seed++ {
		src := ir.Generate(seed, ir.GenConfig{})
		m, err := compiler.Compile(src, compiler.Options{Level: compiler.O2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := fuzzRun(t, m, compiler.DefaultOrder(len(m.Funcs)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := fuzzRun(t, m, compiler.RandomOrder(len(m.Funcs), r.Split()))
		if err != nil {
			t.Fatalf("seed %d permuted: %v", seed, err)
		}
		if got.Output != want.Output {
			t.Errorf("seed %d: link order changed output", seed)
		}
	}
}

// TestFuzzStabilizerInvariance checks that full randomization (including the
// fine-grain §8 extension) never changes a random program's output.
func TestFuzzStabilizerInvariance(t *testing.T) {
	for seed := uint64(200); seed < 230; seed++ {
		src := ir.Generate(seed, ir.GenConfig{})
		m, err := compiler.Compile(src, compiler.Options{Level: compiler.O2, Stabilize: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := fuzzRun(t, m, compiler.DefaultOrder(len(m.Funcs)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, fine := range []bool{false, true} {
			as := mem.NewAddressSpace()
			img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			mach := machine.New(machine.DefaultConfig())
			st, err := core.New(m, mach, as, img.FuncAddrs, img.GlobalAddrs, core.Options{
				Code: true, Stack: true, Heap: true,
				Rerandomize: true, Interval: 5_000,
				FineGrainCode: fine,
				Seed:          seed * 31,
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			got, err := interp.Run(m, interp.Options{Machine: mach, Runtime: st, MaxSteps: 50_000_000})
			if err != nil {
				t.Fatalf("seed %d fine=%v: %v", seed, fine, err)
			}
			if got.Output != want.Output {
				t.Errorf("seed %d fine=%v: stabilizer changed output", seed, fine)
			}
		}
	}
}
