// Package nist implements the subset of the NIST SP 800-22 statistical test
// suite that §3.2 of the paper uses to validate heap randomization:
// Frequency, BlockFrequency, CumulativeSums, Runs, LongestRun, FFT
// (spectral), and Rank. The paper reports that lrand48, DieHard, and the
// shuffled heap with N = 256 pass the first six with >95% confidence and
// fail only Rank.
//
// Tests consume a Bits stream; BitsFromValues builds one from the index bits
// (bits 6–17 on the paper's Core 2) of a sequence of addresses or generator
// outputs.
package nist

import (
	"math"
	"math/bits"
	"math/cmplx"

	"repro/internal/stats"
)

// Bits is a packed bit stream.
type Bits struct {
	words []uint64
	n     int
}

// NewBits returns an empty stream with capacity hint n.
func NewBits(n int) *Bits {
	return &Bits{words: make([]uint64, 0, (n+63)/64)}
}

// Append adds the low `count` bits of v (LSB first) to the stream.
func (b *Bits) Append(v uint64, count int) {
	for i := 0; i < count; i++ {
		if b.n%64 == 0 {
			b.words = append(b.words, 0)
		}
		if v&(1<<uint(i)) != 0 {
			b.words[b.n/64] |= 1 << uint(b.n%64)
		}
		b.n++
	}
}

// Len returns the number of bits.
func (b *Bits) Len() int { return b.n }

// Bit returns bit i as 0 or 1.
func (b *Bits) Bit(i int) int {
	return int(b.words[i/64]>>uint(i%64)) & 1
}

// Ones returns the total number of one bits.
func (b *Bits) Ones() int {
	total := 0
	for i, w := range b.words {
		if i == len(b.words)-1 && b.n%64 != 0 {
			w &= (1 << uint(b.n%64)) - 1
		}
		total += bits.OnesCount64(w)
	}
	return total
}

// BitsFromValues extracts bits [lo, hi] (inclusive) from each value and
// concatenates them. For heap addresses the paper uses the cache index bits,
// 6 through 17.
func BitsFromValues(values []uint64, lo, hi int) *Bits {
	count := hi - lo + 1
	b := NewBits(len(values) * count)
	for _, v := range values {
		b.Append(v>>uint(lo), count)
	}
	return b
}

// Result is one test outcome. The NIST criterion at the 1% level is
// P >= 0.01; the paper quotes >95% confidence, so Pass uses alpha = 0.05.
type Result struct {
	Name string
	P    float64
}

// Pass reports success at the conventional alpha = 0.05 (>95% confidence).
func (r Result) Pass() bool { return !math.IsNaN(r.P) && r.P >= 0.05 }

// Frequency is the monobit test.
func Frequency(b *Bits) Result {
	n := b.Len()
	s := 2*b.Ones() - n
	sObs := math.Abs(float64(s)) / math.Sqrt(float64(n))
	return Result{Name: "Frequency", P: math.Erfc(sObs / math.Sqrt2)}
}

// BlockFrequency tests the proportion of ones within M-bit blocks.
func BlockFrequency(b *Bits, m int) Result {
	n := b.Len()
	nBlocks := n / m
	if nBlocks == 0 {
		return Result{Name: "BlockFrequency", P: math.NaN()}
	}
	chi2 := 0.0
	for blk := 0; blk < nBlocks; blk++ {
		ones := 0
		for i := blk * m; i < (blk+1)*m; i++ {
			ones += b.Bit(i)
		}
		pi := float64(ones) / float64(m)
		chi2 += (pi - 0.5) * (pi - 0.5)
	}
	chi2 *= 4 * float64(m)
	return Result{Name: "BlockFrequency", P: stats.GammaQ(float64(nBlocks)/2, chi2/2)}
}

// CumulativeSums is the forward cusum test.
func CumulativeSums(b *Bits) Result {
	n := b.Len()
	sum, z := 0, 0
	for i := 0; i < n; i++ {
		sum += 2*b.Bit(i) - 1
		if a := abs(sum); a > z {
			z = a
		}
	}
	if z == 0 {
		return Result{Name: "CumulativeSums", P: 0}
	}
	fn := float64(n)
	fz := float64(z)
	sqn := math.Sqrt(fn)
	p := 1.0
	start := (-n/z + 1) / 4
	end := (n/z - 1) / 4
	for k := start; k <= end; k++ {
		fk := float64(k)
		p -= stats.NormalCDF((4*fk+1)*fz/sqn) - stats.NormalCDF((4*fk-1)*fz/sqn)
	}
	start = (-n/z - 3) / 4
	for k := start; k <= end; k++ {
		fk := float64(k)
		p += stats.NormalCDF((4*fk+3)*fz/sqn) - stats.NormalCDF((4*fk+1)*fz/sqn)
	}
	return Result{Name: "CumulativeSums", P: clampP(p)}
}

// Runs tests the number of uninterrupted runs of identical bits.
func Runs(b *Bits) Result {
	n := b.Len()
	pi := float64(b.Ones()) / float64(n)
	if math.Abs(pi-0.5) >= 2/math.Sqrt(float64(n)) {
		return Result{Name: "Runs", P: 0}
	}
	v := 1
	for i := 0; i < n-1; i++ {
		if b.Bit(i) != b.Bit(i+1) {
			v++
		}
	}
	fn := float64(n)
	num := math.Abs(float64(v) - 2*fn*pi*(1-pi))
	den := 2 * math.Sqrt(2*fn) * pi * (1 - pi)
	return Result{Name: "Runs", P: math.Erfc(num / den)}
}

// LongestRun tests the longest run of ones within 128-bit blocks
// (the n >= 6272 parameterization: K = 5, M = 128).
func LongestRun(b *Bits) Result {
	const m = 128
	n := b.Len()
	nBlocks := n / m
	if nBlocks < 49 {
		return Result{Name: "LongestRun", P: math.NaN()}
	}
	piTable := []float64{0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124}
	var v [6]int
	for blk := 0; blk < nBlocks; blk++ {
		longest, cur := 0, 0
		for i := blk * m; i < (blk+1)*m; i++ {
			if b.Bit(i) == 1 {
				cur++
				if cur > longest {
					longest = cur
				}
			} else {
				cur = 0
			}
		}
		switch {
		case longest <= 4:
			v[0]++
		case longest >= 9:
			v[5]++
		default:
			v[longest-4]++
		}
	}
	chi2 := 0.0
	for i, pi := range piTable {
		expected := float64(nBlocks) * pi
		d := float64(v[i]) - expected
		chi2 += d * d / expected
	}
	return Result{Name: "LongestRun", P: stats.GammaQ(5.0/2, chi2/2)}
}

// FFT is the discrete Fourier transform (spectral) test. The stream is
// truncated to the largest power-of-two length for the radix-2 transform.
func FFT(b *Bits) Result {
	n := 1
	for n*2 <= b.Len() {
		n *= 2
	}
	if n < 64 {
		return Result{Name: "FFT", P: math.NaN()}
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = complex(float64(2*b.Bit(i)-1), 0)
	}
	fft(x)
	threshold := math.Sqrt(math.Log(1/0.05) * float64(n))
	n0 := 0.95 * float64(n) / 2
	n1 := 0
	for i := 0; i < n/2; i++ {
		if cmplx.Abs(x[i]) < threshold {
			n1++
		}
	}
	d := (float64(n1) - n0) / math.Sqrt(float64(n)*0.95*0.05/4)
	return Result{Name: "FFT", P: math.Erfc(math.Abs(d) / math.Sqrt2)}
}

// fft is an in-place iterative radix-2 Cooley-Tukey transform.
func fft(x []complex128) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Rect(1, step*float64(k))
				a := x[start+k]
				bv := x[start+k+half] * w
				x[start+k] = a + bv
				x[start+k+half] = a - bv
			}
		}
	}
}

// Rank is the binary matrix rank test over 32×32 matrices.
func Rank(b *Bits) Result {
	const m = 32
	n := b.Len()
	nMat := n / (m * m)
	if nMat < 38 {
		return Result{Name: "Rank", P: math.NaN()}
	}
	var f32, f31, rest int
	for mat := 0; mat < nMat; mat++ {
		var rows [m]uint32
		base := mat * m * m
		for r := 0; r < m; r++ {
			var row uint32
			for c := 0; c < m; c++ {
				if b.Bit(base+r*m+c) == 1 {
					row |= 1 << uint(c)
				}
			}
			rows[r] = row
		}
		switch rank32(rows) {
		case 32:
			f32++
		case 31:
			f31++
		default:
			rest++
		}
	}
	// Asymptotic class probabilities from SP 800-22.
	p32, p31, pRest := 0.2888, 0.5776, 0.1336
	fN := float64(nMat)
	chi2 := sq(float64(f32)-p32*fN)/(p32*fN) +
		sq(float64(f31)-p31*fN)/(p31*fN) +
		sq(float64(rest)-pRest*fN)/(pRest*fN)
	return Result{Name: "Rank", P: math.Exp(-chi2 / 2)}
}

// rank32 computes the GF(2) rank of a 32×32 bit matrix.
func rank32(rows [32]uint32) int {
	rank := 0
	for col := 0; col < 32; col++ {
		pivot := -1
		for r := rank; r < 32; r++ {
			if rows[r]&(1<<uint(col)) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for r := 0; r < 32; r++ {
			if r != rank && rows[r]&(1<<uint(col)) != 0 {
				rows[r] ^= rows[rank]
			}
		}
		rank++
	}
	return rank
}

// Suite runs all seven tests on the stream.
func Suite(b *Bits) []Result {
	return []Result{
		Frequency(b),
		BlockFrequency(b, 128),
		CumulativeSums(b),
		Runs(b),
		LongestRun(b),
		FFT(b),
		Rank(b),
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sq(x float64) float64 { return x * x }

func clampP(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
