package profcli

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// -update regenerates the golden files; run `go test ./internal/profcli
// -update` after an intentional format change and review the diff.
var update = flag.Bool("update", false, "rewrite golden files")

// runMain drives the CLI and captures its streams.
func runMain(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = Main(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestGoldenArtifacts pins the three output formats — folded stacks, the
// flame-chart trace-event JSON, and the report text — for a fixed seed.
// These are the formats external tools parse (flamegraph.pl, speedscope,
// Perfetto), so changes must be deliberate.
func TestGoldenArtifacts(t *testing.T) {
	dir := t.TempDir()
	folded := filepath.Join(dir, "q.folded")
	trace := filepath.Join(dir, "q.trace.json")
	code, stdout, stderr := runMain(t,
		"-bench", "quickstart", "-scale", "0.05", "-O", "0", "-seed", "1",
		"-top", "4", "-folded", folded, "-trace", trace)
	if code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, stderr)
	}

	check := func(name string, got []byte) {
		t.Helper()
		golden := filepath.Join("testdata", name)
		if *update {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run `go test ./internal/profcli -update` to create)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}
	foldedBytes, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	traceBytes, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	check("quickstart.folded", foldedBytes)
	check("quickstart.trace.json", traceBytes)
	check("quickstart.report.txt", []byte(stdout))

	if err := obs.ValidateTrace(traceBytes); err != nil {
		t.Errorf("golden trace does not validate: %v", err)
	}
}

// TestProfileByteIdentical reruns the same profile and requires identical
// artifacts: the whole profiler pipeline is on the simulated-cycle axis.
func TestProfileByteIdentical(t *testing.T) {
	collect := func() (string, string, string) {
		dir := t.TempDir()
		folded := filepath.Join(dir, "f")
		trace := filepath.Join(dir, "t")
		code, stdout, stderr := runMain(t,
			"-bench", "quickstart", "-scale", "0.05", "-O", "1", "-runs", "3",
			"-seed", "42", "-all", "-folded", folded, "-trace", trace)
		if code != 0 {
			t.Fatalf("exit %d; stderr:\n%s", code, stderr)
		}
		fb, err := os.ReadFile(folded)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		return string(fb), string(tb), stdout
	}
	f1, t1, s1 := collect()
	f2, t2, s2 := collect()
	if f1 != f2 {
		t.Error("folded stacks differ between identical invocations")
	}
	if t1 != t2 {
		t.Error("trace JSON differs between identical invocations")
	}
	if s1 != s2 {
		t.Error("report differs between identical invocations")
	}
}

func TestValidateTraceMode(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"traceEvents": [
  {"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}
]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runMain(t, "-validate-trace", good); code != 0 {
		t.Errorf("valid trace rejected (exit %d): %s", code, stderr)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"ph":"E","ts":0,"pid":1,"tid":1}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runMain(t, "-validate-trace", bad); code == 0 {
		t.Error("invalid trace accepted")
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runMain(t); code != exitUsage {
		t.Errorf("no args: exit %d, want %d", code, exitUsage)
	}
	if code, _, stderr := runMain(t, "-bench", "no-such-bench"); code != exitUsage || !strings.Contains(stderr, "unknown benchmark") {
		t.Errorf("unknown bench: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := runMain(t, "-bench", "quickstart", "-runs", "0"); code != exitUsage {
		t.Errorf("zero runs: exit %d, want %d", code, exitUsage)
	}
}
