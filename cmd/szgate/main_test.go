package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/experiment"
	"repro/internal/interp"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/store"
)

// writeSynthetic writes an artifact with n deterministic normal-shaped
// samples per benchmark to dir/name and returns the path.
func writeSynthetic(t *testing.T, dir, name string, n int, means map[string]float64, mutate func(*bench.Artifact)) string {
	t.Helper()
	a := &bench.Artifact{
		Meta: bench.Meta{Schema: bench.SchemaVersion, Unit: bench.UnitSimulatedSeconds,
			Seed: 1, Scale: 1, Level: "-O2", Stabilizer: "native", Noise: 0.0025},
	}
	for bname, mu := range means {
		xs := make([]float64, n)
		for i := range xs {
			p := (float64(i) + 0.5) / float64(n)
			xs[i] = mu * (1 + 0.0025*stats.NormalQuantile(p))
		}
		a.Benchmarks = append(a.Benchmarks, bench.Benchmark{Name: bname, Runs: n, Seconds: xs})
	}
	if mutate != nil {
		mutate(a)
	}
	path := filepath.Join(dir, name)
	buf, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	means := map[string]float64{"astar": 0.5, "mcf": 1.2}
	base := writeSynthetic(t, dir, "base.json", 20, means, nil)
	same := writeSynthetic(t, dir, "same.json", 20, means, nil)
	slow := writeSynthetic(t, dir, "slow.json", 20, means, func(a *bench.Artifact) {
		for i := range a.Benchmarks {
			for j := range a.Benchmarks[i].Seconds {
				a.Benchmarks[i].Seconds[j] *= 1.25
			}
		}
	})

	t.Run("pass", func(t *testing.T) {
		var out bytes.Buffer
		code, err := cmdCompare([]string{"-boot", "300", base, same}, &out)
		if err != nil {
			t.Fatal(err)
		}
		if code != exitOK {
			t.Fatalf("exit code %d on identical artifacts, want %d\n%s", code, exitOK, out.String())
		}
		if !strings.Contains(out.String(), "astar") {
			t.Errorf("gate table missing benchmark rows:\n%s", out.String())
		}
	})

	t.Run("regression", func(t *testing.T) {
		var out bytes.Buffer
		code, err := cmdCompare([]string{"-boot", "300", base, slow}, &out)
		if err != nil {
			t.Fatal(err)
		}
		if code != exitGateFail {
			t.Fatalf("exit code %d on 25%% regression, want %d\n%s", code, exitGateFail, out.String())
		}
	})
}

func TestCompareInfraErrors(t *testing.T) {
	dir := t.TempDir()
	means := map[string]float64{"astar": 0.5}
	base := writeSynthetic(t, dir, "base.json", 20, means, nil)

	t.Run("missing file", func(t *testing.T) {
		var out bytes.Buffer
		code, err := cmdCompare([]string{base, filepath.Join(dir, "nope.json")}, &out)
		if code != exitInfra || err == nil {
			t.Fatalf("code=%d err=%v, want exit %d with error", code, err, exitInfra)
		}
	})

	t.Run("schema mismatch", func(t *testing.T) {
		// Encode refuses to produce an unknown schema, so rewrite the
		// serialized field the way a future build's artifact would carry it.
		raw, err := os.ReadFile(base)
		if err != nil {
			t.Fatal(err)
		}
		cur := []byte(fmt.Sprintf(`"schema": %d`, bench.SchemaVersion))
		rewritten := bytes.Replace(raw, cur, []byte(`"schema": 100`), 1)
		if bytes.Equal(rewritten, raw) {
			t.Fatalf("schema field %s not found in artifact; fixture is stale", cur)
		}
		future := filepath.Join(dir, "future.json")
		if err := os.WriteFile(future, rewritten, 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		code, err := cmdCompare([]string{base, future}, &out)
		if code != exitInfra || err == nil {
			t.Fatalf("code=%d err=%v, want exit %d with error", code, err, exitInfra)
		}
	})

	t.Run("incomparable configs", func(t *testing.T) {
		other := writeSynthetic(t, dir, "otherscale.json", 20, means, func(a *bench.Artifact) {
			a.Meta.Scale = 2
		})
		var out bytes.Buffer
		code, err := cmdCompare([]string{base, other}, &out)
		if code != exitInfra || err == nil {
			t.Fatalf("code=%d err=%v, want exit %d with error", code, err, exitInfra)
		}
	})

	t.Run("wrong arg count", func(t *testing.T) {
		var out bytes.Buffer
		code, err := cmdCompare([]string{base}, &out)
		if code != exitInfra || err == nil {
			t.Fatalf("code=%d err=%v, want exit %d with usage error", code, err, exitInfra)
		}
	})
}

// TestCompareStoreParity pins the -store contract: gating against a
// store-assembled artifact must reproduce the file-based compare exactly —
// same exit code, same gate table — because the store assembly is the same
// collection path that would have written new.json.
func TestCompareStoreParity(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "cells")
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	b, _ := spec.ByName("astar")
	ctx := experiment.WithCellStore(context.Background(), st.Cells(interp.EngineCompiled))
	art, err := bench.Collect(ctx, bench.CollectOptions{
		Suite:  []spec.Benchmark{b},
		Config: experiment.Config{Scale: 0.05, Level: compiler.O2},
		Runs:   6,
		Seed:   77,
	})
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	newPath := filepath.Join(dir, "new.json")
	if err := art.WriteFile(newPath); err != nil {
		t.Fatalf("write new: %v", err)
	}

	// Two baselines: the collection itself (a pass) and a faster past (the
	// collection is then a regression candidate). The verdicts themselves
	// don't matter — their parity across file and store paths does.
	writeOld := func(name string, speedup float64) string {
		old := *art
		old.Benchmarks = append([]bench.Benchmark(nil), art.Benchmarks...)
		for i := range old.Benchmarks {
			scaled := append([]float64(nil), old.Benchmarks[i].Seconds...)
			for j := range scaled {
				scaled[j] *= speedup
			}
			old.Benchmarks[i].Seconds = scaled
		}
		path := filepath.Join(dir, name)
		if err := old.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	storeArgs := []string{"-store", storeDir, "-bench", "astar",
		"-runs", "6", "-scale", "0.05", "-collect-seed", "77"}
	for _, tc := range []struct {
		name string
		old  string
	}{
		{"same baseline", writeOld("same.json", 1.0)},
		{"faster baseline", writeOld("fast.json", 0.5)},
	} {
		var fileOut, storeOut bytes.Buffer
		fileCode, err := cmdCompare([]string{"-boot", "300", tc.old, newPath}, &fileOut)
		if err != nil {
			t.Fatalf("%s: file compare: %v", tc.name, err)
		}
		storeCode, err := cmdCompare(append(append([]string{"-boot", "300"}, storeArgs...), tc.old), &storeOut)
		if err != nil {
			t.Fatalf("%s: store compare: %v", tc.name, err)
		}
		if fileCode != storeCode {
			t.Errorf("%s: file compare exit %d, store compare exit %d", tc.name, fileCode, storeCode)
		}
		if fileOut.String() != storeOut.String() {
			t.Errorf("%s: gate tables differ\nfile:\n%s\nstore:\n%s", tc.name, fileOut.String(), storeOut.String())
		}
	}

	// A cell the store never saw is infrastructure, not a verdict.
	missArgs := []string{"-store", storeDir, "-bench", "astar",
		"-runs", "6", "-scale", "0.05", "-collect-seed", "78"}
	var out bytes.Buffer
	code, err := cmdCompare(append(missArgs, writeOld("old.json", 1.0)), &out)
	if code != exitInfra || err == nil {
		t.Fatalf("store miss: code=%d err=%v, want exit %d with error", code, err, exitInfra)
	}
}
