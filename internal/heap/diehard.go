package heap

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/rng"
)

// DieHard is a miniature DieHard-style randomized allocator: per size class
// it holds a bitmap-managed region sized heapMultiplier times larger than
// needed, and satisfies each request by probing random slots until a free
// one is found. Unlike conventional allocators it never prefers
// recently-freed memory, and its sparse, random placement inflates TLB
// pressure — the overhead the paper cites as the reason STABILIZER moved to
// a shuffled segregated heap.
type DieHard struct {
	as    *mem.AddressSpace
	r     *rng.Marsaglia
	cls   [numClasses]*dieHardClass
	sizes map[mem.Addr]int
	large map[mem.Addr]bool
}

type dieHardClass struct {
	region mem.Region
	bitmap []uint64
	slots  uint64
	used   uint64
}

// dieHardSlots is the number of slots per size-class region. With a
// occupancy cap of 1/2 the allocator stays O(1) in expectation.
const dieHardSlots = 1 << 14

// NewDieHard returns a DieHard-style allocator drawing from as and taking
// randomness from r.
func NewDieHard(as *mem.AddressSpace, r *rng.Marsaglia) *DieHard {
	return &DieHard{as: as, r: r, sizes: make(map[mem.Addr]int), large: make(map[mem.Addr]bool)}
}

// Name implements Allocator.
func (d *DieHard) Name() string { return "diehard" }

func (d *DieHard) class(c int) *dieHardClass {
	if d.cls[c] == nil {
		size := classSize(c) * dieHardSlots
		d.cls[c] = &dieHardClass{
			region: d.as.Map(size, mem.MapAnywhere),
			bitmap: make([]uint64, dieHardSlots/64),
			slots:  dieHardSlots,
		}
	}
	return d.cls[c]
}

// Alloc implements Allocator by random probing.
func (d *DieHard) Alloc(size uint64) mem.Addr {
	c := sizeClass(size)
	if c >= numClasses {
		r := d.as.Map(size, mem.MapAnywhere)
		d.large[r.Base] = true
		return r.Base
	}
	dc := d.class(c)
	if dc.used*2 >= dc.slots {
		panic(fmt.Sprintf("heap: diehard class %d over half full (miniature heap; raise dieHardSlots)", c))
	}
	for {
		slot := d.r.Uint64n(dc.slots)
		w, b := slot/64, slot%64
		if dc.bitmap[w]&(1<<b) == 0 {
			dc.bitmap[w] |= 1 << b
			dc.used++
			a := dc.region.Base + mem.Addr(slot*classSize(c))
			d.sizes[a] = c
			return a
		}
	}
}

// Free implements Allocator.
func (d *DieHard) Free(addr mem.Addr) {
	if d.large[addr] {
		delete(d.large, addr)
		return
	}
	c, ok := d.sizes[addr]
	if !ok {
		panic(fmt.Sprintf("heap: diehard free of unknown address %#x", uint64(addr)))
	}
	delete(d.sizes, addr)
	dc := d.cls[c]
	slot := uint64(addr-dc.region.Base) / classSize(c)
	w, b := slot/64, slot%64
	if dc.bitmap[w]&(1<<b) == 0 {
		panic(fmt.Sprintf("heap: diehard double free at %#x", uint64(addr)))
	}
	dc.bitmap[w] &^= 1 << b
	dc.used--
}
