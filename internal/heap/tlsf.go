package heap

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// TLSF is a two-level segregated fits allocator (Masmano et al.), the
// paper's optional base allocator. It manages a contiguous pool with
// good-fit free lists indexed by a first level (size magnitude) and second
// level (linear subdivision), with immediate coalescing of physical
// neighbours — constant-time malloc and free with low fragmentation.
type TLSF struct {
	as       *mem.AddressSpace
	pool     mem.Region
	blocks   map[mem.Addr]*tlsfBlock // all blocks by base address
	freeList [tlsfFL][tlsfSL]*tlsfBlock
	flBitmap uint32
	slBitmap [tlsfFL]uint32
}

const (
	tlsfFL      = 30 // first-level buckets: sizes up to 2^30
	tlsfSLShift = 4  // 16 second-level subdivisions
	tlsfSL      = 1 << tlsfSLShift
	tlsfMinSize = 32
)

type tlsfBlock struct {
	addr     mem.Addr
	size     uint64
	free     bool
	physPrev *tlsfBlock // physically previous block (by address)
	physNext *tlsfBlock
	freePrev *tlsfBlock // free-list links
	freeNext *tlsfBlock
	fl, sl   int
}

// NewTLSF returns a TLSF allocator with a pool of poolSize bytes drawn
// from as.
func NewTLSF(as *mem.AddressSpace, poolSize uint64) *TLSF {
	t := &TLSF{as: as, blocks: make(map[mem.Addr]*tlsfBlock)}
	t.pool = as.Map(poolSize, mem.MapAnywhere)
	b := &tlsfBlock{addr: t.pool.Base, size: t.pool.Size, free: true}
	t.blocks[b.addr] = b
	t.insertFree(b)
	return t
}

// Name implements Allocator.
func (t *TLSF) Name() string { return "tlsf" }

// mapping computes the (first, second) level indices for a size.
func tlsfMapping(size uint64) (int, int) {
	if size < tlsfMinSize {
		size = tlsfMinSize
	}
	fl := bits.Len64(size) - 1
	sl := int((size >> (uint(fl) - tlsfSLShift)) - tlsfSL)
	if fl >= tlsfFL {
		fl = tlsfFL - 1
		sl = tlsfSL - 1
	}
	return fl, sl
}

func (t *TLSF) insertFree(b *tlsfBlock) {
	fl, sl := tlsfMapping(b.size)
	b.fl, b.sl = fl, sl
	b.free = true
	b.freePrev = nil
	b.freeNext = t.freeList[fl][sl]
	if b.freeNext != nil {
		b.freeNext.freePrev = b
	}
	t.freeList[fl][sl] = b
	t.flBitmap |= 1 << uint(fl)
	t.slBitmap[fl] |= 1 << uint(sl)
}

func (t *TLSF) removeFree(b *tlsfBlock) {
	if b.freePrev != nil {
		b.freePrev.freeNext = b.freeNext
	} else {
		t.freeList[b.fl][b.sl] = b.freeNext
	}
	if b.freeNext != nil {
		b.freeNext.freePrev = b.freePrev
	}
	if t.freeList[b.fl][b.sl] == nil {
		t.slBitmap[b.fl] &^= 1 << uint(b.sl)
		if t.slBitmap[b.fl] == 0 {
			t.flBitmap &^= 1 << uint(b.fl)
		}
	}
	b.free = false
	b.freePrev, b.freeNext = nil, nil
}

// findSuitable locates a free block of at least size bytes, searching the
// same second-level list and then larger buckets via the bitmaps.
func (t *TLSF) findSuitable(size uint64) *tlsfBlock {
	fl, sl := tlsfMapping(size)
	// Round up within the second level so any block in the list fits.
	slMap := t.slBitmap[fl] & (^uint32(0) << uint(sl))
	if slMap == 0 {
		flMap := t.flBitmap & (^uint32(0) << uint(fl+1))
		if flMap == 0 {
			return nil
		}
		fl = bits.TrailingZeros32(flMap)
		slMap = t.slBitmap[fl]
		if slMap == 0 {
			return nil
		}
	}
	sl = bits.TrailingZeros32(slMap)
	for b := t.freeList[fl][sl]; b != nil; b = b.freeNext {
		if b.size >= size {
			return b
		}
	}
	// The head list can contain blocks slightly smaller than requested at
	// the mapped (fl, sl); fall back to the next larger bucket.
	flMap := t.flBitmap & (^uint32(0) << uint(fl+1))
	if flMap == 0 {
		return nil
	}
	fl = bits.TrailingZeros32(flMap)
	sl = bits.TrailingZeros32(t.slBitmap[fl])
	return t.freeList[fl][sl]
}

// Alloc implements Allocator.
func (t *TLSF) Alloc(size uint64) mem.Addr {
	size = (size + MinAlign - 1) &^ (MinAlign - 1)
	if size < tlsfMinSize {
		size = tlsfMinSize
	}
	b := t.findSuitable(size)
	if b == nil {
		// Grow: map another pool region the size of the original (or the
		// request, whichever is larger) and retry.
		grow := t.pool.Size
		if size > grow {
			grow = size
		}
		r := t.as.Map(grow, mem.MapAnywhere)
		nb := &tlsfBlock{addr: r.Base, size: r.Size, free: true}
		t.blocks[nb.addr] = nb
		t.insertFree(nb)
		b = t.findSuitable(size)
		if b == nil {
			panic("heap: tlsf could not satisfy allocation after growth")
		}
	}
	t.removeFree(b)
	// Split the remainder if it is big enough to be useful.
	if b.size >= size+tlsfMinSize {
		rest := &tlsfBlock{
			addr:     b.addr + mem.Addr(size),
			size:     b.size - size,
			physPrev: b,
			physNext: b.physNext,
		}
		if rest.physNext != nil {
			rest.physNext.physPrev = rest
		}
		b.physNext = rest
		b.size = size
		t.blocks[rest.addr] = rest
		t.insertFree(rest)
	}
	return b.addr
}

// Free implements Allocator, coalescing with free physical neighbours.
func (t *TLSF) Free(addr mem.Addr) {
	b, ok := t.blocks[addr]
	if !ok || b.free {
		panic(fmt.Sprintf("heap: tlsf free of unknown or free address %#x", uint64(addr)))
	}
	if next := b.physNext; next != nil && next.free {
		t.removeFree(next)
		delete(t.blocks, next.addr)
		b.size += next.size
		b.physNext = next.physNext
		if b.physNext != nil {
			b.physNext.physPrev = b
		}
	}
	if prev := b.physPrev; prev != nil && prev.free {
		t.removeFree(prev)
		delete(t.blocks, b.addr)
		prev.size += b.size
		prev.physNext = b.physNext
		if prev.physNext != nil {
			prev.physNext.physPrev = prev
		}
		b = prev
	}
	t.insertFree(b)
}

// CheckInvariants validates the physical chain and free lists; tests call it
// after randomized workloads.
func (t *TLSF) CheckInvariants() error {
	for addr, b := range t.blocks {
		if b.addr != addr {
			return fmt.Errorf("tlsf: block map key %#x != block addr %#x", uint64(addr), uint64(b.addr))
		}
		if b.physNext != nil {
			if b.physNext.addr != b.addr+mem.Addr(b.size) {
				return fmt.Errorf("tlsf: physical chain gap at %#x", uint64(b.addr))
			}
			if b.physNext.physPrev != b {
				return fmt.Errorf("tlsf: broken physical back link at %#x", uint64(b.addr))
			}
			if b.free && b.physNext.free {
				return fmt.Errorf("tlsf: adjacent free blocks not coalesced at %#x", uint64(b.addr))
			}
		}
	}
	for fl := 0; fl < tlsfFL; fl++ {
		for sl := 0; sl < tlsfSL; sl++ {
			for b := t.freeList[fl][sl]; b != nil; b = b.freeNext {
				if !b.free {
					return fmt.Errorf("tlsf: non-free block %#x on free list", uint64(b.addr))
				}
			}
		}
	}
	return nil
}
