// Package ir defines the intermediate representation for programs in this
// reproduction: a register-machine IR organized as modules of functions,
// functions of basic blocks, and blocks of typed instructions.
//
// It plays the role LLVM bitcode plays in the paper: the optimization passes
// in internal/compiler transform it (changing both real work and code
// layout), the static linker assigns it addresses, and internal/interp
// executes it against the simulated machine. The STABILIZER compiler
// transformations of §3 (floating-point constant extraction, int/float
// conversion outlining, stack pad instrumentation) are passes over this IR.
package ir

import "fmt"

// Reg is a virtual register index within a function. Registers hold 64-bit
// values; integer instructions interpret them as int64, floating-point
// instructions as IEEE-754 bits. Heap pointers are encoded values (see
// interp). NoReg marks an unused operand slot.
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Op enumerates instruction opcodes.
type Op uint8

const (
	// OpNop does nothing (used by passes to delete instructions in place).
	OpNop Op = iota

	// Constants and moves.
	OpConstI // Dst = Imm
	OpConstF // Dst = float64 from Imm bits
	OpMov    // Dst = A

	// Integer arithmetic (operands as int64).
	OpAdd // Dst = A + B
	OpSub // Dst = A - B
	OpMul // Dst = A * B
	OpDiv // Dst = A / B (B==0 yields 0, like saturating hardware)
	OpRem // Dst = A % B (B==0 yields 0)
	OpAnd // Dst = A & B
	OpOr  // Dst = A | B
	OpXor // Dst = A ^ B
	OpShl // Dst = A << (B & 63)
	OpShr // Dst = A >> (B & 63) (logical)

	// Floating-point arithmetic (operands as float64 bits).
	OpFAdd // Dst = A + B
	OpFSub // Dst = A - B
	OpFMul // Dst = A * B
	OpFDiv // Dst = A / B

	// Comparisons produce 0 or 1.
	OpCmpEQ  // Dst = A == B
	OpCmpLT  // Dst = A < B (signed)
	OpCmpLE  // Dst = A <= B (signed)
	OpFCmpLT // Dst = A < B (float)

	// Conversions. Under STABILIZER these are outlined into per-module
	// conversion functions (§3.3), since their implicit constant pools
	// cannot be relocated.
	OpI2F // Dst = float64(int64(A))
	OpF2I // Dst = int64(float64(A))

	// Global memory. Sym is the global index; the byte address is
	// global base + Imm + 8*(index register A, if present).
	OpLoadG  // Dst = globals[Sym][...] as integer
	OpStoreG // globals[Sym][...] = B
	OpLoadGF // floating-point load (alignment-sensitive)
	OpStoreGF

	// Stack memory. Sym is the stack slot index within the current frame;
	// byte address is slot base + Imm + 8*(index register A, if present).
	OpLoadS
	OpStoreS
	OpLoadSF
	OpStoreSF

	// Heap memory. A is the pointer register; byte address is
	// pointer + Imm + 8*(index register B, if present).
	OpLoadH  // Dst = *(A + Imm + 8*B)
	OpStoreH // *(A + Imm + 8*B) = Dst operandB? see encoding below
	OpLoadHF
	OpStoreHF

	// Heap management.
	OpAlloc // Dst = malloc(Imm) — Imm is the size in bytes
	OpFree  // free(A)

	// Calls. Sym is the callee function index; Args are the arguments;
	// Dst receives the return value (NoReg for none). Imm holds the
	// handler block index + 1 for invoke-style calls (0 = no handler): if
	// the callee throws, control transfers to the handler block with the
	// exception value in Dst.
	OpCall

	// OpThrow raises the value in A as an exception: execution unwinds
	// frame by frame to the nearest enclosing invoke handler; an uncaught
	// exception terminates the program with an error. This is the
	// exception support the paper lists as planned work (§5: "We plan to
	// add support for exceptions by rewriting LLVM's exception handling
	// intrinsics to invoke STABILIZER-specific runtime support").
	OpThrow

	// Output. Sink instructions mix a register into the program's output
	// checksum; they are the observable behaviour passes must preserve.
	OpSink  // integer
	OpSinkF // floating-point

	opCount
)

// Instr is one IR instruction.
//
// Operand conventions by opcode:
//
//	stores (OpStore*): B is the value register; A is the index register for
//	global/stack forms. For OpStoreH, A is the pointer and the value
//	register is Dst (reusing the otherwise-unused destination slot), and B
//	is the optional index register.
type Instr struct {
	Op   Op
	Dst  Reg
	A, B Reg
	Imm  int64
	Sym  int32 // global / stack slot / function index, per opcode
	Args []Reg // call arguments
}

// TermKind enumerates block terminators.
type TermKind uint8

const (
	// TermNone marks an unterminated block (invalid in a finished function).
	TermNone TermKind = iota
	TermJmp           // unconditional jump to Then
	TermBr            // if Cond != 0 goto Then else Else
	TermRet           // return Val (NoReg for none)
)

// Terminator ends a basic block.
type Terminator struct {
	Kind TermKind
	Cond Reg
	Then int // block index
	Else int
	Val  Reg
}

// Block is a basic block: straight-line instructions plus one terminator.
type Block struct {
	Instrs []Instr
	Term   Terminator

	// Layout, filled in by the compiler's size model: byte offset of the
	// block within its function, its encoded size, and the number of live
	// (non-nop) instructions.
	Off  uint64
	Size uint64
	Live uint64
}

// StackSlot describes one slot in a function's frame.
type StackSlot struct {
	Name string
	Size uint64 // bytes (multiple of 8)
	Off  uint64 // byte offset within the frame, filled by Finalize
}

// Function is a single IR function.
type Function struct {
	Name    string
	Params  int // parameters arrive in registers 0..Params-1
	NumRegs int
	Blocks  []*Block
	Slots   []StackSlot

	// FrameSize is the frame footprint in bytes, filled by Finalize.
	FrameSize uint64
	// Size is the encoded code size in bytes including padding, filled by
	// the compiler's size model.
	Size uint64

	// NoRelocate marks functions the STABILIZER runtime must not move
	// (the int/float conversion outlines, §3.3).
	NoRelocate bool
}

// Global is a module-level variable.
type Global struct {
	Name string
	Size uint64  // bytes
	Init []int64 // optional initial words (zero-filled beyond)
}

// Module is a compilation unit: functions plus globals. Function index 0 is
// reserved by convention for main (the entry point), mirroring the paper's
// interposition on main.
type Module struct {
	Name    string
	Funcs   []*Function
	Globals []Global
}

// FuncIndex returns the index of the named function, or -1.
func (m *Module) FuncIndex(name string) int {
	for i, f := range m.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Entry returns the entry function index (named "main" if present, else 0).
func (m *Module) Entry() int {
	if i := m.FuncIndex("main"); i >= 0 {
		return i
	}
	return 0
}

// Finalize computes frame layouts. It must be called (directly or via the
// compiler pipeline) before execution.
func (m *Module) Finalize() {
	for _, f := range m.Funcs {
		off := uint64(0)
		for i := range f.Slots {
			f.Slots[i].Off = off
			off += (f.Slots[i].Size + 7) &^ 7
		}
		// Saved return address + frame pointer, as in Figure 4.
		f.FrameSize = off + 16
	}
}

// opNames maps opcodes to mnemonics for String/debugging.
var opNames = [...]string{
	OpNop: "nop", OpConstI: "consti", OpConstF: "constf", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpCmpEQ: "cmpeq", OpCmpLT: "cmplt", OpCmpLE: "cmple", OpFCmpLT: "fcmplt",
	OpI2F: "i2f", OpF2I: "f2i",
	OpLoadG: "loadg", OpStoreG: "storeg", OpLoadGF: "loadgf", OpStoreGF: "storegf",
	OpLoadS: "loads", OpStoreS: "stores", OpLoadSF: "loadsf", OpStoreSF: "storesf",
	OpLoadH: "loadh", OpStoreH: "storeh", OpLoadHF: "loadhf", OpStoreHF: "storehf",
	OpAlloc: "alloc", OpFree: "free", OpCall: "call", OpThrow: "throw",
	OpSink: "sink", OpSinkF: "sinkf",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsLoad reports whether the opcode reads memory.
func (o Op) IsLoad() bool {
	switch o {
	case OpLoadG, OpLoadGF, OpLoadS, OpLoadSF, OpLoadH, OpLoadHF:
		return true
	}
	return false
}

// IsStore reports whether the opcode writes memory.
func (o Op) IsStore() bool {
	switch o {
	case OpStoreG, OpStoreGF, OpStoreS, OpStoreSF, OpStoreH, OpStoreHF:
		return true
	}
	return false
}

// IsFloat reports whether the opcode operates on floating-point values.
func (o Op) IsFloat() bool {
	switch o {
	case OpConstF, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFCmpLT,
		OpLoadGF, OpStoreGF, OpLoadSF, OpStoreSF, OpLoadHF, OpStoreHF, OpSinkF:
		return true
	}
	return false
}

// HasSideEffects reports whether an instruction with this opcode can be
// removed when its destination is dead.
func (o Op) HasSideEffects() bool {
	switch o {
	case OpStoreG, OpStoreGF, OpStoreS, OpStoreSF, OpStoreH, OpStoreHF,
		OpAlloc, OpFree, OpCall, OpSink, OpSinkF, OpThrow:
		return true
	}
	return o.IsLoad() // loads are kept conservative: heap/global state may alias
}

// EncodedSize returns the modeled x86-64 encoding size in bytes for an
// instruction with this opcode. The size model drives code layout: it
// determines function sizes, cache line spans, and therefore conflict
// behaviour.
func (o Op) EncodedSize() uint64 {
	switch o {
	case OpNop:
		return 0
	case OpConstI, OpConstF:
		return 7 // mov reg, imm
	case OpMov:
		return 3
	case OpMul, OpDiv, OpRem:
		return 4
	case OpI2F, OpF2I:
		return 5 // cvt instructions
	case OpCall:
		return 5 // call rel32
	case OpThrow:
		return 5 // call into the unwinder
	case OpAlloc, OpFree:
		return 5 // call into the allocator
	case OpSink, OpSinkF:
		return 4
	default:
		if o.IsLoad() || o.IsStore() {
			return 6 // mov with SIB + disp
		}
		return 3 // reg-reg ALU
	}
}

// termSize is the modeled encoding size of a terminator.
func (t Terminator) EncodedSize() uint64 {
	switch t.Kind {
	case TermJmp:
		return 5
	case TermBr:
		return 6 // cmp+jcc fused
	case TermRet:
		return 1
	}
	return 0
}
