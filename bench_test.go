// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation. Each benchmark regenerates (a reduced-scale version
// of) its artifact and prints it once; `cmd/experiments` produces the
// full-scale versions.
//
//	go test -bench=. -benchmem
//
// The per-iteration cost measured by testing.B is the cost of regenerating
// the artifact; the printed tables are the reproduction itself. After each
// table benchmark the harness also writes the per-iteration regeneration
// wall times as a BENCH_<name>.json artifact (internal/bench schema), so
// the repo's own performance trajectory accumulates as durable files —
// compare two checkouts' artifacts with `szgate compare`. Disable with
// -artifactdir "".
package main

import (
	"context"
	"flag"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/spec"
)

var (
	benchFull   = flag.Bool("benchfull", false, "run benchmark harness at full paper scale")
	artifactDir = flag.String("artifactdir", ".", "directory for BENCH_<name>.json harness artifacts (empty disables)")
)

func benchParams() (scale float64, runs int) {
	if *benchFull {
		return 1.0, 30
	}
	return 0.2, 10
}

// printOnce guards table output so -benchtime loops print each artifact once.
var printOnce sync.Map

func printArtifact(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

// regenerate times each b.N iteration of a table regeneration, prints the
// table once, and writes the wall-time samples as BENCH_<key>.json.
func regenerate(b *testing.B, key string, f func() (string, error)) {
	b.Helper()
	secs := make([]float64, 0, b.N)
	for i := 0; i < b.N; i++ {
		start := time.Now()
		table, err := f()
		if err != nil {
			b.Fatal(err)
		}
		secs = append(secs, time.Since(start).Seconds())
		printArtifact(b, key, table)
	}
	writeBenchArtifact(b, key, secs)
}

// writeBenchArtifact persists one table benchmark's regeneration times. The
// artifact uses the wall-seconds unit: unlike the simulated-seconds
// artifacts szgate collects, these measure the host machine, so they are
// noisy — but two checkouts benchmarked on the same machine gate cleanly.
func writeBenchArtifact(b *testing.B, key string, secs []float64) {
	b.Helper()
	if *artifactDir == "" || len(secs) == 0 {
		return
	}
	scale, _ := benchParams()
	art := &bench.Artifact{
		Meta: bench.Meta{
			Schema:     bench.SchemaVersion,
			Unit:       bench.UnitWallSeconds,
			Seed:       2013,
			Scale:      scale,
			Level:      "mixed",
			Stabilizer: "harness",
		},
		Benchmarks: []bench.Benchmark{
			{Name: key, Runs: len(secs), Seconds: secs},
		},
	}
	path := filepath.Join(*artifactDir, "BENCH_"+key+".json")
	if err := art.WriteFile(path); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
}

// BenchmarkE1FigLinkOrder regenerates the §1 link-order bias measurement.
func BenchmarkE1FigLinkOrder(b *testing.B) {
	scale, _ := benchParams()
	regenerate(b, "linkorder", func() (string, error) {
		res, err := experiment.LinkOrder(context.Background(), experiment.LinkOrderOptions{
			Scale: scale, Orders: 12, Runs: 2, Seed: 2013,
		})
		if err != nil {
			return "", err
		}
		return res.Table(), nil
	})
}

// BenchmarkE2FigEnvSize regenerates the §1 environment-size bias sweep.
func BenchmarkE2FigEnvSize(b *testing.B) {
	scale, _ := benchParams()
	regenerate(b, "envsize", func() (string, error) {
		res, err := experiment.EnvSize(context.Background(), experiment.EnvSizeOptions{
			Scale: scale, Runs: 3, Seed: 2013,
			EnvSizes: []uint64{0, 1024, 2048, 3072, 4096},
		})
		if err != nil {
			return "", err
		}
		return res.Table(), nil
	})
}

// BenchmarkE3TableNIST regenerates the §3.2 randomness table.
func BenchmarkE3TableNIST(b *testing.B) {
	regenerate(b, "nist", func() (string, error) {
		res, err := experiment.NIST(context.Background(), experiment.NISTOptions{Seed: 2013})
		if err != nil {
			return "", err
		}
		return res.Table(), nil
	})
}

// BenchmarkE4E5TableNormality regenerates Table 1 (and the Figure 5 QQ data
// behind it).
func BenchmarkE4E5TableNormality(b *testing.B) {
	scale, runs := benchParams()
	regenerate(b, "normality", func() (string, error) {
		res, err := experiment.Normality(context.Background(), experiment.NormalityOptions{
			Scale: scale, Runs: runs, Seed: 2013,
		})
		if err != nil {
			return "", err
		}
		return res.Table() + res.Summary(), nil
	})
}

// BenchmarkE6FigOverhead regenerates Figure 6.
func BenchmarkE6FigOverhead(b *testing.B) {
	scale, runs := benchParams()
	regenerate(b, "overhead", func() (string, error) {
		res, err := experiment.Overhead(context.Background(), experiment.OverheadOptions{
			Scale: scale, Runs: runs, Seed: 2013,
		})
		if err != nil {
			return "", err
		}
		return res.Figure(), nil
	})
}

// BenchmarkE7E8FigSpeedupANOVA regenerates Figure 7 and the §6.1 ANOVA.
func BenchmarkE7E8FigSpeedupANOVA(b *testing.B) {
	scale, runs := benchParams()
	regenerate(b, "speedup", func() (string, error) {
		res, err := experiment.Speedup(context.Background(), experiment.SpeedupOptions{
			Scale: scale, Runs: runs, Seed: 2013,
		})
		if err != nil {
			return "", err
		}
		return res.Figure() + res.ANOVATable(), nil
	})
}

// BenchmarkRunNative measures the simulator's own throughput: one native run
// of each benchmark at reduced scale.
func BenchmarkRunNative(b *testing.B) {
	scale, _ := benchParams()
	for _, bench := range spec.Suite() {
		b.Run(bench.Name, func(b *testing.B) {
			cc, err := experiment.CompileBench(bench, experiment.Config{Scale: scale, Level: compiler.O2})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var instrs uint64
			for i := 0; i < b.N; i++ {
				r, err := cc.Run(uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				instrs = r.Instructions
			}
			b.ReportMetric(float64(instrs), "sim-instrs/op")
		})
	}
}

// BenchmarkRunStabilized measures a fully randomized run of each benchmark.
func BenchmarkRunStabilized(b *testing.B) {
	scale, _ := benchParams()
	st := core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Interval: 25_000}
	for _, bench := range spec.Suite() {
		b.Run(bench.Name, func(b *testing.B) {
			cc, err := experiment.CompileBench(bench, experiment.Config{Scale: scale, Level: compiler.O2, Stabilizer: &st})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cc.Run(uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
