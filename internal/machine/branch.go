package machine

import "repro/internal/mem"

// BranchPredictor models a bimodal (2-bit saturating counter) direction
// predictor plus a direct-mapped branch target buffer. Both tables are
// indexed by low-order bits of the branch address, so two branches whose
// addresses coincide modulo the table size interfere — the "branch aliasing"
// the paper credits for code-randomization speedups on astar, hmmer, mcf,
// and namd (§5.2).
type BranchPredictor struct {
	counters []uint8    // 2-bit saturating counters, initialized weakly taken
	btb      []mem.Addr // predicted targets
	btbTags  []uint64
	mask     uint64
	btbMask  uint64

	Lookups              uint64
	DirectionMispredicts uint64
	TargetMispredicts    uint64
}

// NewBranchPredictor builds a predictor with the given table sizes (powers of
// two). Typical values: 4096 counters, 1024 BTB entries.
func NewBranchPredictor(counterEntries, btbEntries int) *BranchPredictor {
	if counterEntries <= 0 || counterEntries&(counterEntries-1) != 0 {
		panic("machine: counter table size must be a positive power of two")
	}
	if btbEntries <= 0 || btbEntries&(btbEntries-1) != 0 {
		panic("machine: BTB size must be a positive power of two")
	}
	bp := &BranchPredictor{
		counters: make([]uint8, counterEntries),
		btb:      make([]mem.Addr, btbEntries),
		btbTags:  make([]uint64, btbEntries),
		mask:     uint64(counterEntries - 1),
		btbMask:  uint64(btbEntries - 1),
	}
	for i := range bp.counters {
		bp.counters[i] = 2 // weakly taken
	}
	return bp
}

// index hashes a branch address into the counter table. Only low-order bits
// participate, preserving the aliasing behaviour of real bimodal tables.
func (bp *BranchPredictor) index(pc mem.Addr) uint64 {
	return (uint64(pc) >> 2) & bp.mask
}

// Conditional records the outcome of a conditional branch at pc and reports
// whether the direction was mispredicted.
func (bp *BranchPredictor) Conditional(pc mem.Addr, taken bool) bool {
	bp.Lookups++
	i := bp.index(pc)
	c := bp.counters[i]
	predictTaken := c >= 2
	if taken && c < 3 {
		bp.counters[i] = c + 1
	} else if !taken && c > 0 {
		bp.counters[i] = c - 1
	}
	if predictTaken != taken {
		bp.DirectionMispredicts++
		return true
	}
	return false
}

// Indirect records an indirect control transfer (call through a pointer,
// return via the BTB path) from pc to target and reports whether the target
// was mispredicted.
func (bp *BranchPredictor) Indirect(pc mem.Addr, target mem.Addr) bool {
	bp.Lookups++
	i := (uint64(pc) >> 2) & bp.btbMask
	tag := uint64(pc) | 1<<63
	hit := bp.btbTags[i] == tag && bp.btb[i] == target
	bp.btbTags[i] = tag
	bp.btb[i] = target
	if !hit {
		bp.TargetMispredicts++
		return true
	}
	return false
}

// ResetCounters zeroes the statistics but keeps learned state.
func (bp *BranchPredictor) ResetCounters() {
	bp.Lookups, bp.DirectionMispredicts, bp.TargetMispredicts = 0, 0, 0
}

// Flush forgets all learned state, as after a context switch.
func (bp *BranchPredictor) Flush() {
	for i := range bp.counters {
		bp.counters[i] = 2
	}
	for i := range bp.btbTags {
		bp.btbTags[i] = 0
	}
}
