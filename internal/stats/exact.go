package stats

import "math"

// exactSignedRankCDF returns P(W+ <= w) for the Wilcoxon signed-rank
// statistic under the null with n untied nonzero differences, computed by
// dynamic programming over the 2^n equally likely sign assignments.
func exactSignedRankCDF(w float64, n int) float64 {
	maxSum := n * (n + 1) / 2
	// counts[s] = number of sign assignments with rank-sum s.
	counts := make([]float64, maxSum+1)
	counts[0] = 1
	for r := 1; r <= n; r++ {
		for s := maxSum; s >= r; s-- {
			counts[s] += counts[s-r]
		}
	}
	total := math.Ldexp(1, n) // 2^n
	cum := 0.0
	limit := int(math.Floor(w + 1e-9))
	if limit > maxSum {
		limit = maxSum
	}
	for s := 0; s <= limit; s++ {
		cum += counts[s]
	}
	return cum / total
}

// exactWilcoxonThreshold is the largest sample size that uses the exact
// distribution; beyond it the normal approximation is accurate.
const exactWilcoxonThreshold = 25

// WilcoxonSignedRankExact is WilcoxonSignedRank with the exact null
// distribution for small samples (n ≤ 25 nonzero, untied differences) and
// the normal approximation otherwise. Ties force the approximation, whose
// variance correction the exact distribution has no analogue for.
func WilcoxonSignedRankExact(xs, ys []float64) TestResult {
	if len(xs) != len(ys) {
		return TestResult{P: math.NaN()}
	}
	var diffs []float64
	for i := range xs {
		if d := xs[i] - ys[i]; d != 0 {
			diffs = append(diffs, d)
		}
	}
	n := len(diffs)
	if n < 2 {
		return TestResult{P: math.NaN()}
	}
	abs := make([]float64, n)
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	rk := ranks(abs)
	// Detect ties: any non-integral rank means ties.
	tied := false
	for _, r := range rk {
		if r != math.Trunc(r) {
			tied = true
			break
		}
	}
	if tied || n > exactWilcoxonThreshold {
		return WilcoxonSignedRank(xs, ys)
	}
	wPlus := 0.0
	for i, d := range diffs {
		if d > 0 {
			wPlus += rk[i]
		}
	}
	// Two-sided: double the smaller tail.
	maxSum := float64(n * (n + 1) / 2)
	lower := exactSignedRankCDF(wPlus, n)
	upper := exactSignedRankCDF(maxSum-wPlus, n)
	p := 2 * math.Min(lower, upper)
	if p > 1 {
		p = 1
	}
	return TestResult{Statistic: wPlus, P: p, DF: float64(n)}
}

// OneSampleT tests whether the mean of xs differs from mu.
func OneSampleT(xs []float64, mu float64) TestResult {
	n := float64(len(xs))
	if n < 2 {
		return TestResult{P: math.NaN()}
	}
	m := Mean(xs)
	se := StdDev(xs) / math.Sqrt(n)
	if se == 0 {
		if m == mu {
			return TestResult{Statistic: 0, P: 1, DF: n - 1}
		}
		return TestResult{Statistic: math.Inf(1), P: 0, DF: n - 1}
	}
	t := (m - mu) / se
	return TestResult{Statistic: t, P: 2 * (1 - StudentTCDF(math.Abs(t), n-1)), DF: n - 1}
}
