// Package faultinject is a deterministic fault-injection harness for the
// experiment engine. Tests (and CI) activate a plan of faults — panic,
// transient error, delay, or hang — that fire at the Nth hit of a named
// call site, then drive a sweep and assert that every recovery path
// (panic isolation, watchdog timeout, transient retry) actually runs.
//
// The hook is a plain runtime check, not a build tag: instrumented sites
// call Hit, which is a single atomic load when no plan is active, so the
// production binary pays nothing measurable and CI needs no special build.
// Given the same plan and a sequential pool, the fired faults are fully
// deterministic; under a parallel pool the Nth hit is whichever worker
// gets there first, which is still bounded and race-free.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Instrumented call sites in the experiment engine.
const (
	// SitePoolWorker is hit once per pool work item, before the item runs.
	SitePoolWorker = "pool.worker"
	// SiteCellStart is hit once per compile/run cell, before collection.
	SiteCellStart = "cell.start"
	// SiteCompileCache is hit inside the compile cache, before compiling.
	SiteCompileCache = "compile.cache"
	// SiteCheckpointStore is hit before a checkpoint cell file is written.
	SiteCheckpointStore = "checkpoint.store"
)

// Kind selects what a fault does when it fires.
type Kind int

const (
	// KindError returns an *Error (Transient() == true) from Hit.
	KindError Kind = iota + 1
	// KindPanic panics with a recognizable message.
	KindPanic
	// KindDelay sleeps for Fault.Delay (respecting ctx), then proceeds.
	KindDelay
	// KindHang blocks until the site's context is cancelled and returns
	// the context error — a runaway cell that only a watchdog can stop.
	KindHang
	// KindHook calls Fault.Hook and proceeds; used by tests to trigger
	// external events (e.g. a drain) at a deterministic point.
	KindHook
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindHang:
		return "hang"
	case KindHook:
		return "hook"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one rule in a plan.
type Fault struct {
	// Site names the instrumented call site the fault arms.
	Site string
	// Nth is the 1-based hit ordinal the fault fires on. 0 derives a
	// small deterministic ordinal from the plan seed and the site name.
	Nth uint64
	// Kind selects the failure mode.
	Kind Kind
	// Delay is the sleep for KindDelay.
	Delay time.Duration
	// Hook is called for KindHook.
	Hook func()
	// Repeat fires the fault on every hit >= Nth instead of exactly once.
	Repeat bool
}

// Error is the injected transient failure returned by KindError faults.
// It satisfies the Transient predicate, so the engine's retry policy
// treats it as worth retrying.
type Error struct {
	Site string
	Hit  uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected transient error at %s (hit %d)", e.Site, e.Hit)
}

// Transient marks the error as retryable.
func (e *Error) Transient() bool { return true }

// Transient reports whether any error in err's chain declares itself
// transient (worth retrying) via a `Transient() bool` method.
func Transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// plan is one activated fault set with its per-site hit counters.
type plan struct {
	faults []Fault
	mu     sync.Mutex
	hits   map[string]uint64
	fired  []bool
}

var active atomic.Pointer[plan]

// Activate installs a fault plan and returns its deactivation function.
// Faults with Nth == 0 get a deterministic ordinal in [1, 8] derived from
// seed and the site name, so seeded campaigns vary where they strike
// without losing reproducibility. Plans do not stack: activating a new
// plan replaces the previous one; the returned func removes only the plan
// it belongs to (deferred deactivation cannot clobber a newer plan).
func Activate(seed uint64, faults ...Fault) (deactivate func()) {
	p := &plan{
		faults: append([]Fault(nil), faults...),
		hits:   make(map[string]uint64),
		fired:  make([]bool, len(faults)),
	}
	for i := range p.faults {
		if p.faults[i].Nth == 0 {
			h := fnv.New64a()
			fmt.Fprintf(h, "%d|%s|%d", seed, p.faults[i].Site, i)
			p.faults[i].Nth = 1 + h.Sum64()%8
		}
	}
	active.Store(p)
	return func() { active.CompareAndSwap(p, nil) }
}

// Enabled reports whether a plan is active. Sites with setup cost can use
// it to skip work; Hit already checks it.
func Enabled() bool { return active.Load() != nil }

// Hit is the runtime hook instrumented sites call. With no active plan it
// is a single atomic load. With a plan, it advances the site's hit
// counter and fires the matching fault, if any: returning an injected
// error, panicking, sleeping, hanging until ctx is done, or invoking a
// hook. ctx bounds KindDelay and KindHang; sites without a meaningful
// context should pass context.Background() (an armed KindHang would then
// block forever, which such sites document).
func Hit(ctx context.Context, site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.hit(ctx, site)
}

func (p *plan) hit(ctx context.Context, site string) error {
	p.mu.Lock()
	p.hits[site]++
	h := p.hits[site]
	var f *Fault
	for i := range p.faults {
		r := &p.faults[i]
		if r.Site != site {
			continue
		}
		if (r.Repeat && h >= r.Nth) || (!r.Repeat && h == r.Nth && !p.fired[i]) {
			p.fired[i] = true
			f = r
			break
		}
	}
	p.mu.Unlock()
	if f == nil {
		return nil
	}
	switch f.Kind {
	case KindError:
		return &Error{Site: site, Hit: h}
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s (hit %d)", site, h))
	case KindDelay:
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
		return nil
	case KindHang:
		<-ctx.Done()
		return ctx.Err()
	case KindHook:
		if f.Hook != nil {
			f.Hook()
		}
		return nil
	}
	return fmt.Errorf("faultinject: unknown fault kind %v at %s", f.Kind, site)
}

// Hits returns the active plan's hit count for a site (0 when no plan is
// active) — test telemetry, not control flow.
func Hits(site string) uint64 {
	p := active.Load()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[site]
}
