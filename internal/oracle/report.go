package oracle

import (
	"fmt"
	"strings"

	"repro/internal/interp"
)

// Axis names which matrix axis a divergence was found along.
type Axis string

const (
	// AxisLayout means two cells at the same optimization level — differing
	// only in seed and/or allocator — disagreed. Layout leaked into program
	// behaviour: a runtime or randomization bug.
	AxisLayout Axis = "layout"
	// AxisOptimization means two optimization levels disagreed on the
	// architectural digest: a compiler pass changed observable behaviour.
	AxisOptimization Axis = "optimization"
	// AxisEngine means two cells differing only in execution engine —
	// compiled versus tree-walk — disagreed. The engines are required to be
	// byte-identical in every digest, so this is an interpreter bug, not a
	// program or randomization bug.
	AxisEngine Axis = "engine"
)

// Divergence is a structured semantic-invariance violation. It implements
// error so Verify can return it directly; Report renders the full
// human-readable form with the first diverging retired instruction and a
// window of surrounding events from both runs.
type Divergence struct {
	Program string
	Axis    Axis
	// Ref and Got are the two disagreeing cells; Ref is the matrix's
	// reference cell for the comparison.
	Ref, Got Cell
	// RefDigest and GotDigest are the cells' full digests.
	RefDigest, GotDigest interp.Digest
	// Index is the position of the first diverging event in the compared
	// sequence (all events on the layout axis, observable events only on
	// the optimization axis), or -1 when the traces agree for their whole
	// retained length — the divergence then lies beyond the trace capacity.
	Index int
	// RefEvent and GotEvent are the first diverging events; one is nil when
	// that run's trace ended first (e.g. it trapped earlier).
	RefEvent, GotEvent *interp.Event
	// RefWindow and GotWindow are up to 2*Window+1 events surrounding the
	// divergence in each trace.
	RefWindow, GotWindow []interp.Event
}

func (d *Divergence) Error() string {
	at := "beyond the retained trace window"
	switch {
	case d.RefEvent != nil && d.GotEvent != nil:
		at = fmt.Sprintf("first diverging retired instruction: step %d (%s) vs step %d (%s)",
			d.RefEvent.Step, d.RefEvent.Kind, d.GotEvent.Step, d.GotEvent.Kind)
	case d.RefEvent != nil:
		at = fmt.Sprintf("first diverging retired instruction: step %d (%s) with no counterpart — the other run ended first",
			d.RefEvent.Step, d.RefEvent.Kind)
	case d.GotEvent != nil:
		at = fmt.Sprintf("first diverging retired instruction: step %d (%s) with no counterpart — the reference run ended first",
			d.GotEvent.Step, d.GotEvent.Kind)
	}
	return fmt.Sprintf("oracle: %s: semantic divergence on the %s axis between [%v] and [%v]: %s",
		d.Program, d.Axis, d.Ref, d.Got, at)
}

// Report renders the divergence with windowed event traces from both runs.
func (d *Divergence) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", d.Error())
	fmt.Fprintf(&sb, "  ref [%v]: arch=%016x exec=%016x steps=%d\n",
		d.Ref, d.RefDigest.Arch, d.RefDigest.Exec, d.RefDigest.Steps)
	fmt.Fprintf(&sb, "  got [%v]: arch=%016x exec=%016x steps=%d\n",
		d.Got, d.GotDigest.Arch, d.GotDigest.Exec, d.GotDigest.Steps)
	if d.Index < 0 {
		sb.WriteString("  traces agree for their full retained length; raise Options.TraceCap to localize\n")
		return sb.String()
	}
	writeWindow := func(label string, ev *interp.Event, win []interp.Event) {
		fmt.Fprintf(&sb, "  %s window:\n", label)
		if len(win) == 0 {
			sb.WriteString("    (no events: run ended before the divergence point)\n")
			return
		}
		for i := range win {
			mark := "   "
			if ev != nil && win[i] == *ev {
				mark = ">>>"
			}
			fmt.Fprintf(&sb, "    %s %v\n", mark, win[i])
		}
	}
	writeWindow("ref", d.RefEvent, d.RefWindow)
	writeWindow("got", d.GotEvent, d.GotWindow)
	return sb.String()
}

// observables filters a trace down to architecturally visible events — the
// only events comparable across optimization levels.
func observables(events []interp.Event) []interp.Event {
	var out []interp.Event
	for _, e := range events {
		switch e.Kind {
		case interp.EvSink, interp.EvExit, interp.EvTrap:
			out = append(out, e)
		}
	}
	return out
}

// sameEvent compares two events under an axis: on the layout and engine
// axes the whole event including its retired step must match; across
// optimization levels steps legitimately differ, so only the observable
// payload is compared.
func sameEvent(a, b interp.Event, axis Axis) bool {
	if axis == AxisLayout || axis == AxisEngine {
		return a == b
	}
	return a.Kind == b.Kind && a.Loc == b.Loc && a.Val == b.Val
}

// localize re-runs two diverging cells with tracing recorders and pins the
// first diverging event. Infrastructure errors during the re-run (which
// already succeeded once) are returned as plain errors.
func (v *verifier) localize(ref, got Cell, refDigest, gotDigest interp.Digest, axis Axis) (*Divergence, error) {
	refRec := interp.NewTracer(v.opts.TraceCap)
	if err := v.runCell(ref, refRec); err != nil {
		return nil, fmt.Errorf("oracle: re-running %v to localize divergence: %w", ref, err)
	}
	gotRec := interp.NewTracer(v.opts.TraceCap)
	if err := v.runCell(got, gotRec); err != nil {
		return nil, fmt.Errorf("oracle: re-running %v to localize divergence: %w", got, err)
	}
	refTrace, gotTrace := refRec.Digest().Events, gotRec.Digest().Events
	if axis == AxisOptimization {
		refTrace, gotTrace = observables(refTrace), observables(gotTrace)
	}

	d := &Divergence{
		Program:   v.name,
		Axis:      axis,
		Ref:       ref,
		Got:       got,
		RefDigest: refDigest,
		GotDigest: gotDigest,
		Index:     -1,
	}
	n := len(refTrace)
	if len(gotTrace) < n {
		n = len(gotTrace)
	}
	idx := -1
	for i := 0; i < n; i++ {
		if !sameEvent(refTrace[i], gotTrace[i], axis) {
			idx = i
			break
		}
	}
	if idx == -1 && len(refTrace) != len(gotTrace) {
		// Shared prefix, one trace longer: the divergence is the first
		// unmatched event of the longer trace.
		idx = n
	}
	if idx == -1 {
		// Hashes disagreed but retained traces agree: divergence beyond the
		// trace capacity.
		return d, nil
	}
	d.Index = idx
	if idx < len(refTrace) {
		d.RefEvent = &refTrace[idx]
	}
	if idx < len(gotTrace) {
		d.GotEvent = &gotTrace[idx]
	}
	d.RefWindow = window(refTrace, idx, v.opts.Window)
	d.GotWindow = window(gotTrace, idx, v.opts.Window)
	return d, nil
}

// window slices up to w events on each side of idx.
func window(events []interp.Event, idx, w int) []interp.Event {
	lo := idx - w
	if lo < 0 {
		lo = 0
	}
	hi := idx + w + 1
	if hi > len(events) {
		hi = len(events)
	}
	if lo >= hi {
		return nil
	}
	return events[lo:hi]
}
