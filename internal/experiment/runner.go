// Package experiment orchestrates the paper's evaluation: it compiles
// benchmarks at the requested optimization levels, runs them repeatedly
// under native or STABILIZER runtimes, collects execution-time samples, and
// formats the tables and figures of §5 and §6.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/spec"
)

// Config describes one experimental cell: how a benchmark is built and run.
type Config struct {
	// Scale sizes the workload (1.0 = full evaluation size).
	Scale float64
	// Level is the optimization level (default O2, the paper's baseline).
	Level compiler.OptLevel
	// Stabilizer, if non-nil, runs the program under the STABILIZER
	// runtime with these options (the per-run seed overrides Seed).
	Stabilizer *core.Options
	// RandomLinkOrder permutes the link order per run (the Figure 6
	// baseline); otherwise the identity order is used.
	RandomLinkOrder bool
	// EnvSize is the simulated environment block size in bytes.
	EnvSize uint64
	// Noise is the relative standard deviation of the multiplicative
	// system-noise term applied to cycle counts (OS jitter on a real
	// machine; the simulator is otherwise deterministic). Negative
	// disables it; zero selects DefaultNoise; values above 1 (a sigma
	// exceeding the measurement itself) are rejected by CompileBench.
	Noise float64
	// MaxSteps caps retired instructions per run (safety net).
	MaxSteps uint64
	// Profile enables per-function cycle attribution in RunResult.Profile.
	Profile bool
	// Engine selects the interpreter execution engine (default compiled;
	// walk is the differential reference). Both engines produce identical
	// samples — the cross-engine oracle axis enforces it — so the engine is
	// deliberately not part of cellKey: a checkpoint collected under one
	// engine replays correctly under the other. Only host-side throughput
	// (RunResult.HostSeconds) differs.
	Engine interp.Engine
	// Throughput enables host wall-clock measurement of each interpreter
	// run (RunResult.HostSeconds). Off by default: host time is the one
	// nondeterministic quantity a run can carry, so golden collections keep
	// it zeroed and stay bit-identical across re-runs. Throughput cells get
	// their own checkpoint key — a replay reports the stored host time
	// rather than silently serving zeros from a golden cell.
	Throughput bool
}

// DefaultNoise is the default relative sigma of run-to-run system noise.
const DefaultNoise = 0.0025

// defaultEngine is the process-wide engine a zero-valued Config.Engine
// resolves to. interp.EngineCompiled is the zero value, so "unset" and
// "compiled" are indistinguishable by design: an explicit Config.Engine =
// EngineWalk always wins, and SetDefaultEngine only matters for callers
// that leave the field alone (the experiment CLIs' -engine flag).
var defaultEngine atomic.Int32

// SetDefaultEngine routes every run whose Config doesn't pick an engine to
// eng. Safe to call concurrently; samples are engine-independent either
// way, so this only changes host-side execution speed.
func SetDefaultEngine(eng interp.Engine) { defaultEngine.Store(int32(eng)) }

// effectiveEngine resolves a Config's engine against the process default.
func effectiveEngine(cfg Config) interp.Engine {
	if cfg.Engine != interp.EngineCompiled {
		return cfg.Engine
	}
	return interp.Engine(defaultEngine.Load())
}

// validate rejects configurations that would silently produce garbage
// samples instead of failing loudly.
func (cfg Config) validate() error {
	if math.IsNaN(cfg.Noise) || math.IsInf(cfg.Noise, 0) || cfg.Noise > 1 {
		return fmt.Errorf("experiment: Noise=%v is not a usable relative stddev: "+
			"use a negative value to disable noise, 0 for the default (%g), or a value in (0, 1]",
			cfg.Noise, DefaultNoise)
	}
	if cfg.Scale < 0 || math.IsNaN(cfg.Scale) || math.IsInf(cfg.Scale, 0) {
		return fmt.Errorf("experiment: Scale=%v must be a nonnegative finite workload scale", cfg.Scale)
	}
	return nil
}

// Compiled is a benchmark compiled under one configuration, ready to run
// many times with different seeds. The Module may be shared with other
// Compiled values (see CompileBench) and is never written after compile, so
// concurrent Runs are safe.
type Compiled struct {
	Bench  spec.Benchmark
	Module *ir.Module
	Cfg    Config
}

// CompileBench builds and compiles the benchmark for the configuration.
// Compiled modules are cached per benchmark×scale×level×stabilize, so
// repeated cells (the same benchmark at the same level across sweep points)
// link from one module instead of recompiling.
func CompileBench(b spec.Benchmark, cfg Config) (*Compiled, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m, err := compileCached(b, cfg.Scale, compiler.Options{
		Level:     cfg.Level,
		Stabilize: cfg.Stabilizer != nil,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: compile %s: %w", b.Name, err)
	}
	return &Compiled{Bench: b, Module: m, Cfg: cfg}, nil
}

// RunResult is one execution's measurements.
type RunResult struct {
	Seconds      float64 // noisy simulated wall time (the measured quantity)
	Cycles       uint64  // raw cycle count before noise
	Instructions uint64
	Output       uint64
	// Runtime activity (zero for native runs).
	Rerands          uint64
	Relocations      uint64
	AdaptiveTriggers uint64
	// Counters is the machine's perf-stat snapshot at program exit.
	Counters machine.Counters
	// Profile is per-function exclusive cycles (nil unless Config.Profile).
	Profile []uint64
	// HostSeconds is the host wall-clock time of the interpreter run —
	// simulator throughput telemetry (engine-dependent), never part of the
	// simulated measurements and never folded into golden outputs. Zero
	// unless Config.Throughput is set.
	HostSeconds float64 `json:"HostSeconds,omitempty"`
}

// Run executes the compiled benchmark once with the given seed. The seed
// determines every random choice of the run: link order (if randomized),
// layout randomization, and the noise draw.
func (c *Compiled) Run(seed uint64) (RunResult, error) {
	return c.RunCtx(context.Background(), seed)
}

// RunCtx is Run with cancellation: the interpreter polls ctx between
// instruction strides, so a cell watchdog or shutdown signal aborts a
// runaway run mid-execution instead of waiting for it to finish. The
// result for a given seed is identical to Run's whenever the run is
// allowed to complete.
func (c *Compiled) RunCtx(ctx context.Context, seed uint64) (RunResult, error) {
	res, _, err := c.runCtx(ctx, seed, false)
	return res, err
}

// ProfileRun is RunCtx with a layout-attribution profiler attached: the
// returned Profile attributes the run's machine-counter deltas to the
// executing call stack and carries the set-conflict report for the run's
// actual (post-randomization) layout. The observer only snapshots counters
// — it never touches the simulated machine — so the RunResult is identical
// to RunCtx's for the same seed.
func (c *Compiled) ProfileRun(ctx context.Context, seed uint64) (RunResult, *obs.Profile, error) {
	return c.runCtx(ctx, seed, true)
}

func (c *Compiled) runCtx(ctx context.Context, seed uint64, profile bool) (RunResult, *obs.Profile, error) {
	r := rng.NewMarsaglia(seed ^ 0x5ab1112e)
	as := mem.NewAddressSpaceEnv(c.Cfg.EnvSize)
	// mmap ASLR is on for every run, native or stabilized, as on a stock
	// Linux kernel: large allocations land at a fresh random base each run.
	aslr := r.Split()
	as.SetASLR(aslr.Intn)

	order := compiler.DefaultOrder(len(c.Module.Funcs))
	if c.Cfg.RandomLinkOrder {
		order = compiler.RandomOrder(len(c.Module.Funcs), r.Split())
	}
	img, err := compiler.Link(c.Module, order, as)
	if err != nil {
		return RunResult{}, nil, err
	}
	mcfg := machine.DefaultConfig()
	mach := machine.New(mcfg)
	// Every run gets a fresh physical page assignment, as on a real OS.
	mach.SetPhysicalSeed(r.Next64())

	var rt interp.Runtime
	var st *core.Stabilizer
	if c.Cfg.Stabilizer != nil {
		opts := *c.Cfg.Stabilizer
		opts.Seed = r.Next64()
		var err error
		st, err = core.New(c.Module, mach, as, img.FuncAddrs, img.GlobalAddrs, opts)
		if err != nil {
			return RunResult{}, nil, err
		}
		rt = st
	} else {
		// Native runs get the fine-grained coalescing allocator in the role
		// of libc malloc; STABILIZER's power-of-two base then shows the
		// size-class waste the paper attributes cactusADM's overhead to.
		rt = &interp.NativeRuntime{
			FuncAddrs:   img.FuncAddrs,
			GlobalAddrs: img.GlobalAddrs,
			Stack:       as.StackBase(),
			Heap:        heap.NewTLSF(as, 1<<22),
			Mach:        mach,
		}
	}

	var interrupt func() error
	if ctx.Done() != nil {
		interrupt = ctx.Err
	}
	var prof *obs.Profiler
	iopts := interp.Options{
		Machine:   mach,
		Runtime:   rt,
		MaxSteps:  c.Cfg.MaxSteps,
		Profile:   c.Cfg.Profile,
		Interrupt: interrupt,
		Engine:    effectiveEngine(c.Cfg),
	}
	if profile {
		prof = obs.NewProfiler(c.Module, mcfg)
		iopts.Observer = prof
	}
	hostStart := time.Now()
	res, err := interp.Run(c.Module, iopts)
	hostElapsed := time.Since(hostStart)
	if err != nil {
		return RunResult{}, nil, fmt.Errorf("experiment: run %s: %w", c.Bench.Name, err)
	}

	noise := c.Cfg.Noise
	if noise == 0 {
		noise = DefaultNoise
	}
	seconds := res.Seconds
	if noise > 0 {
		seconds *= 1 + noise*r.NormFloat64()
	}
	out := RunResult{
		Seconds:      seconds,
		Cycles:       res.Cycles,
		Instructions: res.Instructions,
		Output:       res.Output,
		Counters:     mach.Snapshot(),
		Profile:      res.Profile,
	}
	if c.Cfg.Throughput {
		out.HostSeconds = hostElapsed.Seconds()
	}
	if st != nil {
		out.Rerands = st.Stats.Rerands
		out.Relocations = st.Stats.Relocations
		out.AdaptiveTriggers = st.Stats.AdaptiveTriggers
	}
	var p *obs.Profile
	if prof != nil {
		// The runtime is still alive here, so the captured layout is the
		// run's actual one — under randomization, the final placement.
		prof.CaptureLayout(rt.CodeBase, rt.GlobalAddr)
		p = prof.Profile()
	}
	return out, p, nil
}

// SampleSet is the outcome of a batch of runs of one cell.
type SampleSet struct {
	// Seconds[i] is the measured time of seed seedBase+i.
	Seconds []float64
	// Results[i] is the full measurement of seed seedBase+i.
	Results []RunResult
	// Counters is the perf-stat aggregate: every run's snapshot summed.
	Counters machine.Counters
}

// cellLabel names the cell for progress lines.
func (c *Compiled) cellLabel() string {
	rt := "native"
	if c.Cfg.Stabilizer != nil {
		rt = "stab:" + c.Cfg.Stabilizer.EnabledString()
	}
	return fmt.Sprintf("%s %s %s", c.Bench.Name, c.Cfg.Level, rt)
}

// cellKey fingerprints the cell for checkpointing. It delegates to the
// exported CellKey so checkpoint keys and result-store keys provably share
// one definition (a drift test pins the equivalence).
func (c *Compiled) cellKey(runs int, seedBase uint64) string {
	return CellKey(c.Bench.Name, c.Cfg, runs, seedBase)
}

// sampleSetFrom rebuilds a SampleSet from per-run results (fresh or
// replayed from a checkpoint — the two are indistinguishable).
func sampleSetFrom(results []RunResult) *SampleSet {
	ss := &SampleSet{Seconds: make([]float64, len(results)), Results: results}
	for i := range results {
		ss.Seconds[i] = results[i].Seconds
		ss.Counters = ss.Counters.Add(results[i].Counters)
	}
	return ss
}

// Collect runs the benchmark `runs` times with seeds seedBase, seedBase+1, …
// sharded across the default pool. Each seed's result lands in its own
// slot, so the output is bit-identical to a sequential loop regardless of
// worker count. The first failing seed cancels the remaining work and its
// error is returned.
//
// Collect is the fault-tolerance boundary of the engine. If ctx carries a
// checkpoint (WithCheckpoint), a completed cell is replayed from disk and
// a fresh one is flushed on success. If ctx carries a raised drain flag
// (NotifyShutdown's first signal), the cell is not started and ErrStopped
// is returned. A cell that fails with a transient error or a watchdog
// timeout (SetCellTimeout) is retried with capped backoff up to
// SetCellRetries times; the final failure is a *CellError naming the cell
// and the attempt count.
func (c *Compiled) Collect(ctx context.Context, runs int, seedBase uint64) (*SampleSet, error) {
	return c.collect(ctx, NewPool(0), runs, seedBase)
}

func (c *Compiled) collect(ctx context.Context, pool *Pool, runs int, seedBase uint64) (*SampleSet, error) {
	label := c.cellLabel()
	endSpan := obsTrace().Span("cell", label, map[string]any{"runs": runs})
	defer endSpan()
	cp := CheckpointFrom(ctx)
	cs := CellStoreFrom(ctx)
	key := c.cellKey(runs, seedBase)
	if cs != nil {
		if results := cs.Lookup(key, runs, seedBase); results != nil {
			obsMetrics().Counter("cellstore.hits").Inc()
			obsLog().Info("cell served from result store", obsF("cell", label), obsF("runs", runs))
			return sampleSetFrom(results), nil
		}
		obsMetrics().Counter("cellstore.misses").Inc()
	}
	if cp != nil {
		if results := cp.Lookup(key, runs, seedBase); results != nil {
			obsLog().Info("cell replayed from checkpoint", obsF("cell", label), obsF("runs", runs))
			// Write a checkpoint hit through to the result store so resumed
			// local campaigns populate the shared store too.
			if cs != nil {
				if serr := cs.Store(ctx, key, runs, seedBase, results); serr != nil {
					warnCell(label, "experiment: result store: %v (cell stays checkpoint-local)", serr)
				}
			}
			return sampleSetFrom(results), nil
		}
	}
	if StoreOnly(ctx) {
		return nil, &StoreMissError{Label: label, Key: key}
	}
	if Draining(ctx) {
		return nil, fmt.Errorf("experiment: cell %s not started: %w", label, ErrStopped)
	}

	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= 1+CellRetries(); attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		if attempt > 1 {
			obsMetrics().Counter("cell.retries").Inc()
			obsLog().Warn("retrying cell after transient failure",
				obsF("cell", label), obsF("attempt", attempt), obsF("err", lastErr.Error()))
		}
		attempts = attempt
		ss, err := c.collectOnce(ctx, pool, label, attempt, runs, seedBase)
		if err == nil {
			recordAttempts(label, attempts)
			if cp != nil {
				if serr := cp.Store(ctx, key, runs, seedBase, ss.Results); serr != nil {
					warnCell(label, "experiment: checkpoint cell: %v (cell will re-run on resume)", serr)
				}
			}
			if cs != nil {
				if serr := cs.Store(ctx, key, runs, seedBase, ss.Results); serr != nil {
					warnCell(label, "experiment: result store: %v (cell will re-run next campaign)", serr)
				}
			}
			obsLog().Info("cell collected", obsF("cell", label), obsF("runs", runs), obsF("attempts", attempts))
			return ss, nil
		}
		lastErr = err
		if errors.Is(err, context.DeadlineExceeded) && CellTimeout() > 0 {
			obsMetrics().Counter("watchdog.interrupts").Inc()
			obsLog().Warn("watchdog interrupted cell",
				obsF("cell", label), obsF("attempt", attempt), obsF("timeout", CellTimeout().String()))
		}
		if !retryable(err) {
			break
		}
		if attempt <= CellRetries() {
			if serr := sleepCtx(ctx, backoffDelay(attempt)); serr != nil {
				break
			}
		}
	}
	recordAttempts(label, attempts)
	obsLog().Error("cell failed", obsF("cell", label), obsF("attempts", attempts), obsF("err", fmt.Sprint(lastErr)))
	return nil, &CellError{Label: label, Attempts: attempts, Err: lastErr}
}

// collectOnce is one collection attempt of the cell under the watchdog
// deadline. The attempt number annotates progress lines on retries. A
// panic anywhere in the attempt — including in cell setup, which runs on
// the caller's goroutine rather than inside a pool worker — is recovered
// into a *PanicError so no fault can kill the process.
func (c *Compiled) collectOnce(ctx context.Context, pool *Pool, label string, attempt, runs int, seedBase uint64) (ss *SampleSet, err error) {
	defer func() {
		if r := recover(); r != nil {
			ss, err = nil, &PanicError{Label: label, Index: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	if err := faultinject.Hit(ctx, faultinject.SiteCellStart); err != nil {
		return nil, err
	}
	if d := CellTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if attempt > 1 {
		label = fmt.Sprintf("%s (attempt %d)", label, attempt)
	}
	results := make([]RunResult, runs)
	err = pool.ForEachLabeled(ctx, label, runs, func(rctx context.Context, i int) error {
		r, err := c.RunCtx(rctx, seedBase+uint64(i))
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sampleSetFrom(results), nil
}

// Samples runs the benchmark `runs` times with seeds seedBase, seedBase+1, …
// and returns the measured times in seconds. Runs execute in parallel on
// the default pool; see Collect for the determinism guarantee.
func (c *Compiled) Samples(runs int, seedBase uint64) ([]float64, error) {
	ss, err := c.Collect(context.Background(), runs, seedBase)
	if err != nil {
		return nil, err
	}
	return ss.Seconds, nil
}
