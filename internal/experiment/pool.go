package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// The evaluation needs hundreds of independent runs per benchmark×config
// cell. Every run is fully determined by its seed and shares no mutable
// state (compiled modules are read-only after compiler.Compile), so sample
// collection parallelizes perfectly: the Pool shards a seed range across
// goroutines while each result lands in the slot its seed owns, making
// parallel output bit-identical to the sequential loop it replaced.

// defaultWorkers is the package-wide worker count used by NewPool(0).
// It starts from SZ_PARALLEL (falling back to GOMAXPROCS) and is
// overridable with SetParallelism (the cmds' -j flag).
var defaultWorkers atomic.Int64

func init() {
	defaultWorkers.Store(int64(envParallelism()))
}

// envParallelism resolves the environment-level default worker count.
func envParallelism() int {
	if s := os.Getenv("SZ_PARALLEL"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Parallelism returns the current default worker count.
func Parallelism() int { return int(defaultWorkers.Load()) }

// SetParallelism overrides the default worker count for pools built with
// NewPool(0). n <= 0 restores the SZ_PARALLEL / GOMAXPROCS default.
func SetParallelism(n int) {
	if n <= 0 {
		n = envParallelism()
	}
	defaultWorkers.Store(int64(n))
}

var (
	progressMu sync.Mutex
	progressW  io.Writer
)

// SetProgress directs per-cell progress/throughput lines (runs completed,
// runs/sec, ETA) to w for pools without their own writer. nil (the
// default) disables them.
//
// Deprecated: the global writer makes concurrently running pools (parallel
// tests, nested sweeps) interleave their lines. Give each pool its own
// writer with Pool.WithProgress instead; this shim remains as the fallback
// for pools that never got one.
func SetProgress(w io.Writer) {
	progressMu.Lock()
	progressW = w
	progressMu.Unlock()
}

func progressWriter() io.Writer {
	progressMu.Lock()
	defer progressMu.Unlock()
	return progressW
}

// Pool executes indexed work items across a fixed set of goroutines.
type Pool struct {
	workers     int
	progress    io.Writer
	hasProgress bool // distinguishes "explicitly disabled (nil)" from "unset"
}

// NewPool builds a pool with the given worker count; workers <= 0 uses the
// package default (SZ_PARALLEL, -j, or GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = Parallelism()
	}
	return &Pool{workers: workers}
}

// WithProgress returns a copy of the pool whose progress lines go to w —
// w == nil explicitly silences the pool, overriding the deprecated global
// SetProgress fallback. The receiver is unchanged.
func (p *Pool) WithProgress(w io.Writer) *Pool {
	q := *p
	q.progress = w
	q.hasProgress = true
	return &q
}

// progressDest resolves this pool's progress writer: its own if one was
// set (even nil), else the deprecated global.
func (p *Pool) progressDest() io.Writer {
	if p.hasProgress {
		return p.progress
	}
	return progressWriter()
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// PanicError is a panic recovered in a pool worker, converted to an error
// so one bad cell fails the sweep instead of killing the process. It
// carries the cell label and item index that panicked plus the stack
// captured at the recovery point.
type PanicError struct {
	Label string // cell label ("" for unlabeled pools)
	Index int    // work-item index that panicked
	Value any    // recovered panic value
	Stack []byte // goroutine stack at recovery
}

func (e *PanicError) Error() string {
	// Index < 0 means the panic was recovered at the cell boundary rather
	// than inside a work item.
	where := fmt.Sprintf("item %d", e.Index)
	if e.Index < 0 {
		where = "setup"
	}
	if e.Label != "" {
		where = fmt.Sprintf("cell %q, %s", e.Label, where)
	}
	return fmt.Sprintf("experiment: panic in pool worker (%s): %v\n%s", where, e.Value, e.Stack)
}

// safeCall runs one work item with panic isolation: a panic in fn (or in
// an injected fault) becomes a *PanicError return instead of unwinding
// past the worker goroutine.
func safeCall(ctx context.Context, label string, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Label: label, Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	if err := faultinject.Hit(ctx, faultinject.SitePoolWorker); err != nil {
		return err
	}
	return fn(ctx, i)
}

// ForEach runs fn(ctx, i) for every i in [0, n), sharding the index range
// into contiguous blocks, one per worker — with seed-indexed work this is
// seed-range sharding. The first fn error cancels ctx for all workers and
// is returned; slots already written stay written. Because every item
// writes only state owned by its own index, results are identical to a
// sequential loop regardless of worker count.
//
// Two error classes get special handling: a panic in fn is recovered into
// a *PanicError (cancelling the rest of the pool, not the process), and
// an error matching ErrStopped stops dispatch of further items WITHOUT
// cancelling ctx, so sibling items already in flight drain to completion
// before ErrStopped is returned.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	return p.forEach(ctx, "", n, fn)
}

// ForEachLabeled is ForEach with a cell label for progress reporting
// (enabled via SetProgress).
func (p *Pool) ForEachLabeled(ctx context.Context, label string, n int, fn func(ctx context.Context, i int) error) error {
	return p.forEach(ctx, label, n, fn)
}

func (p *Pool) forEach(parent context.Context, label string, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return parent.Err()
	}
	prog := p.newProgress(label, n)
	met := obsMetrics()
	met.Counter("pool.cells.started").Inc()
	met.Gauge("pool.workers").Set(float64(p.workers))
	cellStart := time.Now()
	defer func() {
		// Wall-clock throughput is real but not reproducible: non-golden.
		met.Histogram("pool.cell.wall_seconds").NonGolden().Observe(time.Since(cellStart).Seconds())
		met.Counter("pool.cells.completed").Inc()
	}()
	runDone := met.Counter("pool.runs.completed")
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Sequential path: same iteration order as the historical loops.
		for i := 0; i < n; i++ {
			if err := parent.Err(); err != nil {
				return err
			}
			if err := safeCall(parent, label, i, fn); err != nil {
				return err
			}
			runDone.Inc()
			prog.step()
		}
		prog.done()
		return nil
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		stopping atomic.Bool // drain: stop dispatching, let in-flight finish
		stopOnce sync.Once
		stopErr  error
	)
	queueWait := met.Histogram("pool.queue.wait_seconds").NonGolden()
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Time from dispatch to this shard actually starting: scheduler
			// queue wait. Wall-clock, hence non-golden.
			queueWait.Observe(time.Since(cellStart).Seconds())
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil || stopping.Load() {
					return
				}
				if err := safeCall(ctx, label, i, fn); err != nil {
					if errors.Is(err, ErrStopped) {
						// A drained item is not a failure: record it and
						// stop dispatching, but leave ctx alive so sibling
						// workers finish their current items.
						stopOnce.Do(func() { stopErr = err })
						stopping.Store(true)
						return
					}
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
				runDone.Inc()
				prog.step()
			}
		}()
	}
	wg.Wait()
	prog.done()
	if firstErr != nil {
		return firstErr
	}
	if stopErr != nil {
		return stopErr
	}
	return parent.Err()
}

// progress tracks one cell's completion count and emits throttled
// throughput lines. A nil *progress (reporting disabled) is inert.
type progress struct {
	w     io.Writer
	label string
	total int64
	start time.Time
	count atomic.Int64
	last  atomic.Int64 // unix nanos of the most recent report
}

// progressEvery throttles reporting; quick cells stay silent.
const progressEvery = 500 * time.Millisecond

func (p *Pool) newProgress(label string, total int) *progress {
	w := p.progressDest()
	if w == nil || label == "" {
		return nil
	}
	pr := &progress{w: w, label: label, total: int64(total), start: time.Now()}
	pr.last.Store(pr.start.UnixNano())
	return pr
}

func (p *progress) step() {
	if p == nil {
		return
	}
	n := p.count.Add(1)
	now := time.Now()
	last := p.last.Load()
	if now.UnixNano()-last < int64(progressEvery) {
		return
	}
	if !p.last.CompareAndSwap(last, now.UnixNano()) {
		return // another worker just reported
	}
	elapsed := now.Sub(p.start).Seconds()
	rate := float64(n) / elapsed
	eta := float64(p.total-n) / rate
	fmt.Fprintf(p.w, "  [%s] %d/%d runs  %.1f runs/s  ETA %.1fs\n",
		p.label, n, p.total, rate, eta)
}

func (p *progress) done() {
	if p == nil {
		return
	}
	elapsed := time.Since(p.start)
	if elapsed < progressEvery {
		return
	}
	n := p.count.Load()
	fmt.Fprintf(p.w, "  [%s] %d/%d runs in %s  (%.1f runs/s)\n",
		p.label, n, p.total, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
}
