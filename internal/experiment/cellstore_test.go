package experiment

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/spec"
)

// TestCellKeyNoDrift pins the satellite guarantee that checkpoint keys and
// store keys share one definition: the unexported method the checkpoint
// layer uses and the exported CellKey helper must agree on every
// configuration shape that changes the fingerprint.
func TestCellKeyNoDrift(t *testing.T) {
	b, _ := spec.ByName("astar")
	stab := core.AllRandomizations(0)
	cfgs := []Config{
		{},
		{Scale: 0.25},
		{Level: compiler.O3},
		{Stabilizer: &stab},
		{RandomLinkOrder: true, EnvSize: 4096},
		{Noise: -1, MaxSteps: 1 << 20},
		{Profile: true},
		{Throughput: true},
		{Scale: 0.5, Level: compiler.O1, Noise: 0.01, Throughput: true},
	}
	seen := map[string]bool{}
	for i, cfg := range cfgs {
		cc, err := CompileBench(b, cfg)
		if err != nil {
			t.Fatalf("cfg %d: compile: %v", i, err)
		}
		for _, rc := range []struct {
			runs int
			base uint64
		}{{3, 7}, {8, 900913}} {
			got := cc.cellKey(rc.runs, rc.base)
			want := CellKey(b.Name, cfg, rc.runs, rc.base)
			if got != want {
				t.Errorf("cfg %d: key drift:\n  checkpoint: %s\n  exported:   %s", i, got, want)
			}
			if seen[got] {
				t.Errorf("cfg %d: key %q collides with another test configuration", i, got)
			}
			seen[got] = true
		}
	}
	// The zero-scale normalization must match CompileBench's.
	if CellKey(b.Name, Config{}, 3, 7) != CellKey(b.Name, Config{Scale: 1.0}, 3, 7) {
		t.Errorf("CellKey does not normalize Scale=0 to 1.0")
	}
}

// memSource is an in-memory CellSource for tests.
type memSource struct {
	mu      sync.Mutex
	cells   map[string][]RunResult
	lookups int
	hits    int
	stores  int
	fail    bool // Store returns an error when set
}

func newMemSource() *memSource { return &memSource{cells: map[string][]RunResult{}} }

func (m *memSource) Lookup(key string, runs int, seedBase uint64) []RunResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lookups++
	r, ok := m.cells[key]
	if !ok || len(r) != runs {
		return nil
	}
	m.hits++
	return r
}

func (m *memSource) Store(_ context.Context, key string, runs int, seedBase uint64, results []RunResult) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail {
		return fmt.Errorf("memSource: injected store failure")
	}
	m.stores++
	m.cells[key] = results
	return nil
}

// TestCellStoreDedupe collects the same cell twice under a shared result
// store: the second collection must be served entirely from the store and
// return results identical to the computed ones.
func TestCellStoreDedupe(t *testing.T) {
	b, _ := spec.ByName("astar")
	cc, err := CompileBench(b, Config{Scale: 0.05})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	src := newMemSource()
	ctx := WithCellStore(context.Background(), src)

	first, err := cc.Collect(ctx, 4, 100)
	if err != nil {
		t.Fatalf("first collect: %v", err)
	}
	if src.stores != 1 || src.hits != 0 {
		t.Fatalf("after first collect: stores=%d hits=%d, want 1/0", src.stores, src.hits)
	}
	second, err := cc.Collect(ctx, 4, 100)
	if err != nil {
		t.Fatalf("second collect: %v", err)
	}
	if src.hits != 1 {
		t.Fatalf("second collect did not hit the store (hits=%d)", src.hits)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatalf("store-served results differ from computed results")
	}

	// A store failure must not fail the collection.
	src.fail = true
	if _, err := cc.Collect(ctx, 4, 200); err != nil {
		t.Fatalf("collect with failing store: %v", err)
	}
}

// TestStoreOnlyMiss asserts that store-only collection refuses to compute:
// a cell absent from the store is a *StoreMissError, and a present cell is
// served without running anything new.
func TestStoreOnlyMiss(t *testing.T) {
	b, _ := spec.ByName("astar")
	cc, err := CompileBench(b, Config{Scale: 0.05})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	src := newMemSource()
	ctx := WithCellStore(context.Background(), src)

	if _, err := cc.Collect(WithStoreOnly(ctx), 4, 100); err == nil {
		t.Fatalf("store-only collect of an absent cell succeeded")
	} else {
		var miss *StoreMissError
		if !errors.As(err, &miss) {
			t.Fatalf("store-only miss returned %T (%v), want *StoreMissError", err, err)
		}
	}

	if _, err := cc.Collect(ctx, 4, 100); err != nil { // populate
		t.Fatalf("populate: %v", err)
	}
	ss, err := cc.Collect(WithStoreOnly(ctx), 4, 100)
	if err != nil {
		t.Fatalf("store-only collect of a present cell: %v", err)
	}
	if len(ss.Seconds) != 4 {
		t.Fatalf("store-only collect returned %d samples, want 4", len(ss.Seconds))
	}
}

// TestCheckpointWritesThroughToStore asserts that a checkpoint hit
// populates the result store, so resumed local campaigns feed the farm.
func TestCheckpointWritesThroughToStore(t *testing.T) {
	b, _ := spec.ByName("astar")
	cc, err := CompileBench(b, Config{Scale: 0.05})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cp, err := OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// First pass: checkpoint only.
	if _, err := cc.Collect(WithCheckpoint(context.Background(), cp), 3, 50); err != nil {
		t.Fatalf("collect: %v", err)
	}
	// Second pass: checkpoint + empty store. The cell must come from the
	// checkpoint and be written through to the store.
	src := newMemSource()
	ctx := WithCellStore(WithCheckpoint(context.Background(), cp), src)
	if _, err := cc.Collect(ctx, 3, 50); err != nil {
		t.Fatalf("collect: %v", err)
	}
	if src.stores != 1 {
		t.Fatalf("checkpoint hit did not write through to store (stores=%d)", src.stores)
	}
}
