// Package profcli implements the layout-attribution profiler CLI. It is
// the shared engine behind cmd/szprof and the `stabilizer prof`
// subcommand: compile one benchmark, run it under the profiling observer
// for a range of seeds, and report where the machine's cycles and cache
// misses went — per function, per call stack (folded stacks and a
// Perfetto flame chart on the simulated-cycle axis), and per cache set
// (which function pairs collide, the paper's §5.2 explanation made
// checkable).
package profcli

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/spec"
)

// Exit codes: 0 success, 1 run/validation failure, 2 usage error.
const (
	exitOK    = 0
	exitFail  = 1
	exitUsage = 2
)

// Main runs the profiler CLI with the given arguments and returns the
// process exit code. Parameterized on the output writers so tests can
// drive it without a subprocess.
func Main(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("szprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchName := fs.String("bench", "", "benchmark name (suite, C++ set, or quickstart examples)")
	seed := fs.Uint64("seed", 1, "base seed; run i uses seed+i")
	runs := fs.Int("runs", 1, "number of profiled runs to merge")
	level := fs.Int("O", 2, "optimization level (0-3)")
	scale := fs.Float64("scale", 1.0, "workload scale")
	code := fs.Bool("code", false, "randomize code layout")
	stack := fs.Bool("stack", false, "randomize stack frames")
	heapR := fs.Bool("heap", false, "randomize heap allocations")
	all := fs.Bool("all", false, "shorthand for -code -stack -heap -rerand")
	rerand := fs.Bool("rerand", false, "re-randomize periodically")
	interval := fs.Uint64("interval", 25_000, "re-randomization interval (cycles)")
	topN := fs.Int("top", 12, "rows in the function table and conflict report (0 = all)")
	folded := fs.String("folded", "", "write folded call stacks (flamegraph.pl/speedscope format) to this file")
	trace := fs.String("trace", "", "write a Perfetto flame chart (trace-event JSON, 1 µs = 1 cycle) to this file")
	conflicts := fs.Bool("conflicts", true, "print the cache-set conflict report")
	engine := fs.String("engine", "", "interpreter engine: compiled (default) or walk")
	validate := fs.String("validate-trace", "", "validate a trace-event JSON file and exit (no benchmark run)")
	fs.Usage = func() {
		fmt.Fprint(stderr, `szprof — layout-attribution profiler

  szprof -bench name [-runs n] [-seed n] [-O 0..3] [-scale f]
         [-code] [-stack] [-heap] [-rerand] [-all] [-interval n]
         [-top n] [-folded out.folded] [-trace out.json] [-conflicts=false]
  szprof -validate-trace file.json

Attributes per-window machine-counter deltas (cycles, cache misses,
branch mispredicts) to the executing call stack and reports which
function pairs collide in the same cache sets under the run's actual
(post-randomization) layout. All profile output is deterministic for a
fixed seed. -validate-trace checks any Chrome trace-event JSON file
(including -trace output and the engines' -trace files) and exits 0/1.

Flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "szprof: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}

	if *validate != "" {
		return validateTraceFile(*validate, stdout, stderr)
	}

	if *benchName == "" {
		fmt.Fprintln(stderr, "szprof: -bench is required (or -validate-trace)")
		fs.Usage()
		return exitUsage
	}
	b, ok := lookupBench(*benchName)
	if !ok {
		fmt.Fprintf(stderr, "szprof: unknown benchmark %q; valid: %s\n", *benchName, benchNames())
		return exitUsage
	}
	optLevel, err := compiler.ParseLevel(*level)
	if err != nil {
		fmt.Fprintf(stderr, "szprof: %v\n", err)
		return exitUsage
	}
	if *runs < 1 {
		fmt.Fprintf(stderr, "szprof: -runs %d: need at least 1\n", *runs)
		return exitUsage
	}
	if *all {
		*code, *stack, *heapR, *rerand = true, true, true, true
	}
	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(stderr, "szprof: %v\n", err)
		return exitUsage
	}

	// Noise only perturbs the reported seconds, never the counters the
	// profiler attributes; it is disabled here so the one timing line we
	// print is the raw deterministic cycle count.
	cfg := experiment.Config{Scale: *scale, Level: optLevel, Noise: -1, Engine: eng}
	if *code || *stack || *heapR {
		cfg.Stabilizer = &core.Options{
			Code: *code, Stack: *stack, Heap: *heapR,
			Rerandomize: *rerand, Interval: *interval,
		}
	}
	cc, err := experiment.CompileBench(b, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "szprof: %v\n", err)
		return exitFail
	}

	profiles := make([]*obs.Profile, 0, *runs)
	var totalCycles, totalInstrs uint64
	for i := 0; i < *runs; i++ {
		res, p, err := cc.ProfileRun(context.Background(), *seed+uint64(i))
		if err != nil {
			fmt.Fprintf(stderr, "szprof: run %d (seed %d): %v\n", i, *seed+uint64(i), err)
			return exitFail
		}
		totalCycles += res.Cycles
		totalInstrs += res.Instructions
		profiles = append(profiles, p)
	}
	merged := obs.MergeProfiles(profiles)

	rt := "native"
	if cfg.Stabilizer != nil {
		rt = "stab:" + cfg.Stabilizer.EnabledString()
	}
	fmt.Fprintf(stdout, "%s %s %s  %d run(s), seeds %d..%d  %d cycles, %d instructions\n\n",
		b.Name, optLevel, rt, *runs, *seed, *seed+uint64(*runs)-1, totalCycles, totalInstrs)
	fmt.Fprint(stdout, merged.Table(*topN))
	if *conflicts {
		fmt.Fprintf(stdout, "\nCache-set conflicts (layout of seed %d):\n", *seed)
		fmt.Fprint(stdout, merged.ConflictReport(*topN))
	}

	if *folded != "" {
		if err := os.WriteFile(*folded, []byte(merged.FoldedStacks()), 0o644); err != nil {
			fmt.Fprintf(stderr, "szprof: %v\n", err)
			return exitFail
		}
		fmt.Fprintf(stderr, "szprof: wrote folded stacks to %s\n", *folded)
	}
	if *trace != "" {
		var buf bytes.Buffer
		if err := obs.WriteTraceJSON(&buf, merged.FlameEvents()); err != nil {
			fmt.Fprintf(stderr, "szprof: %v\n", err)
			return exitFail
		}
		// Self-check before writing: the flame chart must be valid
		// trace-event JSON or Perfetto will silently drop tracks.
		if err := obs.ValidateTrace(buf.Bytes()); err != nil {
			fmt.Fprintf(stderr, "szprof: generated trace is invalid: %v\n", err)
			return exitFail
		}
		if err := os.WriteFile(*trace, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(stderr, "szprof: %v\n", err)
			return exitFail
		}
		fmt.Fprintf(stderr, "szprof: wrote flame chart to %s (open in ui.perfetto.dev; read µs as cycles)\n", *trace)
	}
	return exitOK
}

// validateTraceFile implements -validate-trace: parse and structurally
// check a Chrome trace-event JSON file. CI runs this over every trace
// artifact the engines emit.
func validateTraceFile(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "szprof: %v\n", err)
		return exitFail
	}
	if err := obs.ValidateTrace(data); err != nil {
		fmt.Fprintf(stderr, "szprof: %s: INVALID: %v\n", path, err)
		return exitFail
	}
	fmt.Fprintf(stdout, "szprof: %s: valid trace-event JSON\n", path)
	return exitOK
}

// lookupBench resolves a name across the full suite (C and C++) and the
// quickstart example programs.
func lookupBench(name string) (spec.Benchmark, bool) {
	if b, ok := spec.ByNameFull(name); ok {
		return b, true
	}
	for _, b := range spec.Examples() {
		if b.Name == name {
			return b, true
		}
	}
	return spec.Benchmark{}, false
}

// benchNames lists every profilable benchmark for error messages.
func benchNames() string {
	var names []string
	for _, b := range spec.FullSuite() {
		names = append(names, b.Name)
	}
	for _, b := range spec.Examples() {
		names = append(names, b.Name)
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
