package obs_test

// The tentpole acceptance test for the layout-attribution profiler: link
// two hot functions into colliding L1I sets on purpose, check that the
// profiler (a) attributes the majority of the run's L1I misses to that
// pair and (b) names the pair in the set-conflict report — then run the
// same program under STABILIZER code randomization and check the
// attributed misses collapse. This is §5.2's "layout pathology →
// microarchitectural mechanism" story made into an executable check.

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obs"
)

// colliderModule builds: two identical hot hash functions called
// alternately from a tight loop. Which cache sets they land in is decided
// by the caller's placement, not the module.
func colliderModule() *ir.Module {
	mb := ir.NewModuleBuilder("collider")
	hot := func(name string) int32 {
		f := mb.Func(name, 1)
		v := f.Mov(f.Param(0))
		for r := 0; r < 24; r++ {
			m := f.Mul(v, f.ConstI(int64(2654435761+r*37)))
			v = f.Xor(m, f.Shr(m, f.ConstI(int64(7+r%13))))
		}
		f.Ret(v)
		return f.Index()
	}
	hotA := hot("hotA")
	hotB := hot("hotB")
	main := mb.Func("main", 0)
	acc := main.ConstI(12345)
	main.LoopN(300, func(i ir.Reg) {
		main.MovTo(acc, main.Call(hotA, main.Add(acc, i)))
		main.MovTo(acc, main.Call(hotB, acc))
	})
	main.Sink(acc)
	main.Ret(ir.NoReg)
	return mb.Module()
}

// directMappedL1I is the default machine with a direct-mapped L1I, so two
// functions one cache-period apart evict each other on every alternation.
func directMappedL1I() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.L1I.Ways = 1
	return cfg
}

func fnIndex(t *testing.T, m *ir.Module, name string) int {
	t.Helper()
	for i, f := range m.Funcs {
		if f.Name == name {
			return i
		}
	}
	t.Fatalf("function %s not found", name)
	return -1
}

// runCollider executes the collider once and profiles it. alias places
// hotB exactly one L1I period above hotA (guaranteed set collision);
// stabilize instead hands layout to STABILIZER's code randomization.
func runCollider(t *testing.T, alias, stabilize bool, seed uint64) *obs.Profile {
	t.Helper()
	cfg := directMappedL1I()
	m, err := compiler.Compile(colliderModule(), compiler.Options{Level: compiler.O0, Stabilize: stabilize})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	as := mem.NewAddressSpaceEnv(0)
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	mach := machine.New(cfg)
	mach.SetPhysicalSeed(seed)

	var rt interp.Runtime
	if stabilize {
		st, err := core.New(m, mach, as, img.FuncAddrs, img.GlobalAddrs, core.Options{Code: true, Seed: seed})
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		rt = st
	} else {
		funcAddrs := append([]mem.Addr(nil), img.FuncAddrs...)
		if alias {
			// One full L1I period apart: with Ways=1 the period is the
			// cache size, so every line of hotB evicts the same-set line
			// of hotA and vice versa.
			funcAddrs[fnIndex(t, m, "hotB")] = funcAddrs[fnIndex(t, m, "hotA")] + mem.Addr(cfg.L1I.Size)
		}
		rt = &interp.NativeRuntime{
			FuncAddrs:   funcAddrs,
			GlobalAddrs: img.GlobalAddrs,
			Stack:       as.StackBase(),
			Heap:        heap.NewTLSF(as, 1<<22),
			Mach:        mach,
		}
	}

	prof := obs.NewProfiler(m, cfg)
	if _, err := interp.Run(m, interp.Options{Machine: mach, Runtime: rt, Observer: prof}); err != nil {
		t.Fatalf("run: %v", err)
	}
	prof.CaptureLayout(rt.CodeBase, rt.GlobalAddr)
	return prof.Profile()
}

func pairL1IMisses(t *testing.T, p *obs.Profile) uint64 {
	t.Helper()
	var sum uint64
	for i, name := range p.FuncNames {
		if name == "hotA" || name == "hotB" {
			sum += p.PerFn[i].L1IMisses
		}
	}
	return sum
}

func TestProfilerAttributesL1ISetConflict(t *testing.T) {
	p := runCollider(t, true, false, 1)

	// The aliased pair must own the majority of the run's L1I misses:
	// every alternation refetches the other function's lines.
	pair := pairL1IMisses(t, p)
	if p.Total.L1IMisses == 0 {
		t.Fatal("no L1I misses recorded at all")
	}
	if pair*2 < p.Total.L1IMisses {
		t.Errorf("aliased pair owns %d of %d L1I misses; want a majority", pair, p.Total.L1IMisses)
	}
	// 300 iterations × two functions refetching several lines each: the
	// thrash must dwarf the compulsory misses of a cold start.
	if pair < 500 {
		t.Errorf("aliased pair L1I misses = %d; want the alternation thrash (>= 500)", pair)
	}

	// The conflict report must name the colliding pair, at the top.
	conflicts := p.ConflictsFor("L1I")
	if len(conflicts) == 0 {
		t.Fatal("no L1I conflicts reported for a deliberately aliased layout")
	}
	top := conflicts[0]
	if top.A != "hotA" || top.B != "hotB" {
		t.Errorf("top L1I conflict is %s <-> %s; want hotA <-> hotB", top.A, top.B)
	}
	if top.Kind != "code" {
		t.Errorf("top L1I conflict kind = %q; want code", top.Kind)
	}
	if top.SharedSets == 0 || top.Misses == 0 {
		t.Errorf("top conflict has SharedSets=%d Misses=%d; want both nonzero", top.SharedSets, top.Misses)
	}
}

func TestCodeRandomizationBreaksConflict(t *testing.T) {
	native := runCollider(t, true, false, 1)
	nativePair := pairL1IMisses(t, native)

	// Same program under STABILIZER code randomization: layout is now a
	// random draw, and the deliberate aliasing is gone. The attributed
	// misses must collapse (compulsory misses remain).
	randomized := runCollider(t, false, true, 1)
	randPair := pairL1IMisses(t, randomized)

	if randPair*4 > nativePair {
		t.Errorf("code randomization left %d pair L1I misses vs %d aliased; want at least a 4x drop",
			randPair, nativePair)
	}
}

func TestProfileDeterministicAcrossRuns(t *testing.T) {
	a := runCollider(t, true, false, 7)
	b := runCollider(t, true, false, 7)
	if a.FoldedStacks() != b.FoldedStacks() {
		t.Error("folded stacks differ between identical runs")
	}
	if a.Total != b.Total {
		t.Errorf("profile totals differ between identical runs:\n%+v\n%+v", a.Total, b.Total)
	}
}
