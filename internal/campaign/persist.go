package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// PersistSchema versions the coordinator's durable campaign documents.
// Documents with another schema are skipped at load with a warning — an
// older coordinator must never misread a newer document as state.
const PersistSchema = 1

// persistedCampaign is one campaign's durable record, written through the
// store's atomic state area ("campaigns/", beside blocks/) on every state
// transition. It captures everything the scheduler cannot rederive: the
// spec, each cell's scheduling state and attempt count, and the lease
// table — including retired (expired) leases, so late completions posted
// against a pre-crash lease still resolve after a restart. The event log
// and the assembled artifact are deliberately absent: events are bounded
// in-memory telemetry, and the artifact is rebuilt from the store.
type persistedCampaign struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	Spec   Spec   `json:"spec"`
	State  string `json:"state"`
	Err    string `json:"err,omitempty"`
	// Trace is the campaign's distributed trace ID. Journaling it is what
	// keeps one trace across a failover: the promoted coordinator restores
	// it instead of minting a new one. Optional (older documents predate
	// it); a restored campaign without one gets a fresh ID.
	Trace string `json:"trace,omitempty"`
	// Submitted anchors queue-wait derivation (optional, unix nanos).
	Submitted int64            `json:"submitted_unix_nano,omitempty"`
	Cells     []persistedCell  `json:"cells"`
	Leases    []persistedLease `json:"leases,omitempty"`
}

type persistedCell struct {
	Bench    string `json:"bench"`
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	FromHit  bool   `json:"from_hit,omitempty"`
	Lease    uint64 `json:"lease,omitempty"`
	Err      string `json:"err,omitempty"`
	// FirstLeased is when the cell's first lease was granted (unix nanos,
	// 0 = never leased); Prov is the completing attempt's measurement
	// pedigree. Both optional — observability state, carried so a
	// restarted coordinator can still serve provenance and queue waits.
	FirstLeased int64             `json:"first_leased_unix_nano,omitempty"`
	Prov        *bench.Provenance `json:"prov,omitempty"`
}

type persistedLease struct {
	ID       uint64 `json:"id"`
	Bench    string `json:"bench"`
	Worker   string `json:"worker"`
	Deadline int64  `json:"deadline_unix_nano"`
	Expired  bool   `json:"expired,omitempty"`
	// Attempt freezes which cell attempt this lease represents (optional;
	// 0 in older documents falls back to the cell's live attempt count).
	Attempt int `json:"attempt,omitempty"`
}

// record snapshots a campaign (and its leases) into its durable form.
// Must be called with c.mu held.
func (c *Coordinator) recordLocked(camp *campaignState) persistedCampaign {
	rec := persistedCampaign{
		Schema: PersistSchema,
		ID:     camp.id,
		Spec:   camp.spec,
		State:  camp.state,
		Err:    camp.err,
		Trace:  camp.trace,
	}
	if !camp.submitted.IsZero() {
		rec.Submitted = camp.submitted.UnixNano()
	}
	for _, cell := range camp.cells {
		pc := persistedCell{
			Bench: cell.Bench, State: cell.state, Attempts: cell.attempts,
			FromHit: cell.fromHit, Lease: cell.lease, Err: cell.err,
			Prov: cell.prov,
		}
		if !cell.firstGrant.IsZero() {
			pc.FirstLeased = cell.firstGrant.UnixNano()
		}
		rec.Cells = append(rec.Cells, pc)
	}
	for _, l := range c.leases {
		if l.campaign != camp {
			continue
		}
		rec.Leases = append(rec.Leases, persistedLease{
			ID: l.id, Bench: l.cell.Bench, Worker: l.worker,
			Deadline: l.deadline.UnixNano(), Expired: l.expired,
			Attempt: l.attempt,
		})
	}
	return rec
}

// persistLocked journals a campaign's current state through the store's
// atomic write layer. A failed write degrades durability, not scheduling:
// it is logged and counted, and the next transition retries. A fenced
// write — this coordinator's epoch superseded by a promoted standby — is
// refused outright: the successor replayed this journal at promotion, and
// a deposed writer must not clobber the successor's newer records. Must be
// called with c.mu held.
func (c *Coordinator) persistLocked(camp *campaignState) {
	if c.area == nil {
		return
	}
	if err := faultinject.Hit(context.Background(), faultinject.SiteCoordPersist); err != nil {
		c.metrics().Counter("campaign.persist.errors").NonGolden().Inc()
		c.logger().Error("journal write faulted", obs.F("campaign", camp.id), obs.F("err", err.Error()))
		return
	}
	if c.opts.Fence != nil {
		if err := c.opts.Fence.Check(); err != nil {
			c.metrics().Counter("campaign.persist.fenced").NonGolden().Inc()
			c.logger().Error("journal write refused: coordinator deposed by a newer fencing epoch",
				obs.F("campaign", camp.id), obs.F("err", err.Error()))
			return
		}
	}
	buf, err := json.MarshalIndent(c.recordLocked(camp), "", "  ")
	if err == nil {
		err = c.area.Save(camp.id, append(buf, '\n'))
	}
	if err != nil {
		c.metrics().Counter("campaign.persist.errors").NonGolden().Inc()
		c.logger().Error("persisting campaign state failed; coordinator state is in-memory until the next transition",
			obs.F("campaign", camp.id), obs.F("err", err.Error()))
		return
	}
	c.metrics().Counter("campaign.persist.writes").NonGolden().Inc()
}

// restore rebuilds one campaign from its durable record. The cells are
// rederived from the spec (the derivation is deterministic and pinned by
// test) and married to the persisted scheduling state by benchmark name; a
// record whose cells no longer match the derivation — a suite change under
// a live store — fails the campaign rather than mis-scheduling it.
func (c *Coordinator) restore(rec persistedCampaign) (*campaignState, error) {
	if rec.Schema != PersistSchema {
		return nil, fmt.Errorf("campaign %s: persisted schema %d, this build reads %d", rec.ID, rec.Schema, PersistSchema)
	}
	camp := &campaignState{
		id: rec.ID, spec: rec.Spec, tenant: tenantOf(rec.Spec), state: rec.State, err: rec.Err,
		events: newEventRing(c.eventCap), trace: rec.Trace,
	}
	if camp.trace == "" {
		camp.trace = obs.NewTraceID() // pre-trace document
	}
	if rec.Submitted != 0 {
		camp.submitted = time.Unix(0, rec.Submitted)
	}
	byBench := map[string]persistedCell{}
	for _, pc := range rec.Cells {
		byBench[pc.Bench] = pc
	}
	for _, cs := range rec.Spec.Cells() {
		pc, ok := byBench[cs.Bench]
		if !ok {
			return nil, fmt.Errorf("campaign %s: persisted state has no cell %q", rec.ID, cs.Bench)
		}
		st := &cellState{
			CellSpec: cs, state: pc.State, attempts: pc.Attempts,
			fromHit: pc.FromHit, lease: pc.Lease, err: pc.Err,
			prov: pc.Prov,
		}
		if pc.FirstLeased != 0 {
			st.firstGrant = time.Unix(0, pc.FirstLeased)
		}
		switch st.state {
		case cellPending, cellLeased, cellDone, cellFailed:
		default:
			return nil, fmt.Errorf("campaign %s: cell %s has unknown state %q", rec.ID, cs.Bench, pc.State)
		}
		camp.cells = append(camp.cells, st)
	}
	if len(camp.cells) != len(rec.Cells) {
		return nil, fmt.Errorf("campaign %s: %d persisted cells for %d derived", rec.ID, len(rec.Cells), len(camp.cells))
	}
	cellByBench := map[string]*cellState{}
	for _, cell := range camp.cells {
		cellByBench[cell.Bench] = cell
	}
	for _, pl := range rec.Leases {
		cell, ok := cellByBench[pl.Bench]
		if !ok {
			return nil, fmt.Errorf("campaign %s: lease %d names unknown cell %q", rec.ID, pl.ID, pl.Bench)
		}
		attempt := pl.Attempt
		if attempt == 0 {
			attempt = cell.attempts
		}
		c.leases[pl.ID] = &lease{
			id: pl.ID, campaign: camp, cell: cell, worker: pl.Worker,
			deadline: time.Unix(0, pl.Deadline), expired: pl.Expired,
			attempt: attempt,
		}
		if pl.ID > c.nextLease {
			c.nextLease = pl.ID
		}
	}
	return camp, nil
}

// loadCampaigns restores every persisted campaign at coordinator start:
// open campaigns resume scheduling exactly where the previous process
// stopped, stale leases re-expire through the ordinary lazy-expiry path,
// and cells whose store block landed before the crash (but whose state
// transition did not) are recovered as done — the store is the source of
// truth for completed work, so a crash can never double-count or lose a
// cell. Called from NewCoordinator before the coordinator is shared, so no
// locking is needed.
func (c *Coordinator) loadCampaigns() error {
	names, err := c.area.List()
	if err != nil {
		return err
	}
	for _, name := range names {
		buf, err := c.area.Load(name)
		if err != nil || buf == nil {
			c.metrics().Counter("campaign.docs.skipped").NonGolden().Inc()
			c.logger().Warn("unreadable campaign document skipped", obs.F("campaign", name))
			continue
		}
		var rec persistedCampaign
		if err := json.Unmarshal(buf, &rec); err != nil {
			c.metrics().Counter("campaign.docs.skipped").NonGolden().Inc()
			c.logger().Warn("corrupt campaign document skipped",
				obs.F("campaign", name), obs.F("err", err.Error()))
			continue
		}
		camp, err := c.restore(rec)
		if err != nil {
			c.metrics().Counter("campaign.docs.skipped").NonGolden().Inc()
			c.logger().Warn("campaign document failed to restore",
				obs.F("campaign", name), obs.F("err", err.Error()))
			continue
		}
		recovered := 0
		if camp.state == StateRunning {
			for _, cell := range camp.cells {
				if cell.state == cellDone || cell.state == cellFailed {
					continue
				}
				if results := c.opts.Store.Get(cell.StoreKey, cell.Runs, cell.SeedBase); results != nil {
					cell.state = cellDone
					cell.err = ""
					recovered++
				}
			}
		}
		c.campaigns = append(c.campaigns, camp)
		c.byID[camp.id] = camp
		if n := campNumber(camp.id); n > c.nextCamp {
			c.nextCamp = n
		}
		c.eventLocked(camp, "campaign restored from durable state",
			obs.F("state", camp.state), obs.F("cells", len(camp.cells)),
			obs.F("recovered_from_store", recovered))
		c.refreshLocked(camp)
		c.persistLocked(camp)
		c.metrics().Counter("campaign.restored").NonGolden().Inc()
	}
	// Campaign files are listed lexically; ids are zero-padded so that
	// order matches submission order until the counter outgrows the
	// padding — re-sort numerically so it holds beyond that too.
	sortCampaigns(c.campaigns)
	return nil
}

// campNumber extracts the numeric part of a campaign id ("c0042" -> 42);
// foreign ids sort first.
func campNumber(id string) uint64 {
	n, err := strconv.ParseUint(strings.TrimPrefix(id, "c"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func sortCampaigns(camps []*campaignState) {
	for i := 1; i < len(camps); i++ {
		for j := i; j > 0 && campNumber(camps[j-1].id) > campNumber(camps[j].id); j-- {
			camps[j-1], camps[j] = camps[j], camps[j-1]
		}
	}
}
