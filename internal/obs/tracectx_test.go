package obs

import (
	"context"
	"net/http"
	"testing"
)

func TestTraceContextHeaderRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: SpanID("c0001", "astar", 2)}
	h := http.Header{}
	tc.Inject(h)
	if h.Get(HeaderTrace) != tc.TraceID || h.Get(HeaderSpan) != tc.SpanID {
		t.Fatalf("inject: headers = %v, want trace=%s span=%s", h, tc.TraceID, tc.SpanID)
	}
	got := ExtractTrace(h)
	if got != tc {
		t.Fatalf("extract = %+v, want %+v", got, tc)
	}
}

func TestTraceContextZeroInjectsNothing(t *testing.T) {
	h := http.Header{}
	TraceContext{}.Inject(h)
	if len(h) != 0 {
		t.Fatalf("zero context stamped headers: %v", h)
	}
	if ExtractTrace(h).Valid() {
		t.Fatal("empty headers extracted a valid trace")
	}
}

func TestTraceContextViaContext(t *testing.T) {
	tc := TraceContext{TraceID: "abc", SpanID: "c0001/bzip2#1"}
	ctx := WithTraceContext(context.Background(), tc)
	if got := TraceContextFrom(ctx); got != tc {
		t.Fatalf("TraceContextFrom = %+v, want %+v", got, tc)
	}
	if TraceContextFrom(context.Background()).Valid() {
		t.Fatal("bare context carries a trace")
	}
}

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q: want 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("trace id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestSpanIDDeterministic(t *testing.T) {
	if SpanID("c0002", "astar", 3) != "c0002/astar#3" {
		t.Fatalf("SpanID = %q", SpanID("c0002", "astar", 3))
	}
}
