// Command szprof is the layout-attribution profiler: it runs one benchmark
// under the profiling observer and reports per-function counter
// attribution, folded call stacks, a Perfetto flame chart on the
// simulated-cycle axis, and the cache-set conflict report for the run's
// actual layout. `szprof -validate-trace file.json` structurally checks
// any Chrome trace-event JSON file (used by CI on the engines' -trace
// output). See internal/profcli for the implementation, which is shared
// with the `stabilizer prof` subcommand.
package main

import (
	"os"

	"repro/internal/profcli"
)

func main() {
	os.Exit(profcli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
