package experiment

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/obs"
	"repro/internal/spec"
)

// withScope installs a fresh observability scope for one test and removes
// it afterwards, resetting the compile cache so its hit/miss counters
// start from zero.
func withScope(t *testing.T) *obs.Scope {
	t.Helper()
	ResetCompileCache()
	scope := obs.NewScope()
	SetObs(scope)
	t.Cleanup(func() {
		SetObs(nil)
		ResetCompileCache()
	})
	return scope
}

// TestProfileRunMatchesRunCtx is the observer's non-interference contract:
// attaching the profiler must not change the measurement, and the profile
// must conserve the machine's totals (every counted event attributed
// exactly once).
func TestProfileRunMatchesRunCtx(t *testing.T) {
	b, _ := spec.ByName("astar")
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := cc.RunCtx(context.Background(), 11)
	if err != nil {
		t.Fatal(err)
	}
	profiled, p, err := cc.ProfileRun(context.Background(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, profiled) {
		t.Errorf("profiling changed the run result:\n%+v\n%+v", plain, profiled)
	}
	if p == nil {
		t.Fatal("ProfileRun returned no profile")
	}
	if p.Total != plain.Counters {
		t.Errorf("profile total != machine counters (attribution leaks):\n%+v\n%+v", p.Total, plain.Counters)
	}
	var perFnCycles uint64
	for _, c := range p.PerFn {
		perFnCycles += c.Cycles
	}
	if perFnCycles != p.Total.Cycles {
		t.Errorf("per-function cycles sum to %d, total is %d", perFnCycles, p.Total.Cycles)
	}
}

// TestMetricsSnapshotByteIdenticalAcrossWorkers pins the -metrics
// determinism contract: the golden snapshot of a fixed-seed collection is
// byte-identical at any pool width.
func TestMetricsSnapshotByteIdenticalAcrossWorkers(t *testing.T) {
	collect := func(workers int) []byte {
		scope := withScope(t)
		b, _ := spec.ByName("astar")
		cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cc.collect(context.Background(), NewPool(workers), 12, 500); err != nil {
			t.Fatal(err)
		}
		buf, err := scope.Metrics.Snapshot(false).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	seq := collect(1)
	par := collect(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("golden metrics differ between -j1 and -j8:\n%s\n%s", seq, par)
	}
	// Sanity: the snapshot actually carries the engine counters.
	for _, want := range []string{"pool.runs.completed", "compile.cache.misses"} {
		if !strings.Contains(string(seq), want) {
			t.Errorf("snapshot missing %s:\n%s", want, seq)
		}
	}
}

// TestEngineSpansValidate runs a cell under a scope and checks the tracer
// output is loadable trace-event JSON with the expected span names.
func TestEngineSpansValidate(t *testing.T) {
	scope := withScope(t)
	b, _ := spec.ByName("astar")
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Collect(context.Background(), 3, 900); err != nil {
		t.Fatal(err)
	}
	events := scope.Trace.Events()
	cats := map[string]bool{}
	for _, ev := range events {
		cats[ev.Cat] = true
	}
	if !cats["compile"] || !cats["cell"] {
		t.Errorf("expected compile and cell spans, got categories %v", cats)
	}
	var buf bytes.Buffer
	if err := obs.WriteTraceJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(buf.Bytes()); err != nil {
		t.Errorf("engine trace does not validate: %v", err)
	}
}

// TestWarnCellRoutesToLogger checks the structured-logging satellite: with
// a scope installed, engine warnings become JSONL records labeled with the
// cell; without one they fall back to the plain-text writer.
func TestWarnCellRoutesToLogger(t *testing.T) {
	scope := withScope(t)
	var buf bytes.Buffer
	scope.Log = obs.NewLogger(&buf, obs.LevelInfo)
	warnCell("astar -O2 native", "experiment: checkpoint cell: %v", "disk full")
	line := buf.String()
	if !strings.Contains(line, `"level":"warn"`) ||
		!strings.Contains(line, `"cell":"astar -O2 native"`) ||
		!strings.Contains(line, "disk full") {
		t.Errorf("warnCell JSONL line missing level/cell/msg: %s", line)
	}

	SetObs(nil)
	var plain bytes.Buffer
	SetProgress(&plain)
	defer SetProgress(nil)
	warnCell("astar -O2 native", "experiment: checkpoint cell: %v", "disk full")
	if !strings.Contains(plain.String(), "[astar -O2 native]") {
		t.Errorf("fallback warnCell line missing cell label: %s", plain.String())
	}
}

// TestPoolScopedProgressWriter covers the WithProgress satellite: each
// pool writes its own stream, nil explicitly silences, and the deprecated
// global remains the fallback.
func TestPoolScopedProgressWriter(t *testing.T) {
	var global, local bytes.Buffer
	SetProgress(&global)
	defer SetProgress(nil)

	p := NewPool(2)
	if got := p.progressDest(); got != &global {
		t.Errorf("pool without own writer should fall back to the global")
	}
	pl := p.WithProgress(&local)
	if got := pl.progressDest(); got != &local {
		t.Errorf("WithProgress writer not used")
	}
	if got := p.progressDest(); got != &global {
		t.Errorf("WithProgress mutated the receiver")
	}
	silent := p.WithProgress(nil)
	if got := silent.progressDest(); got != nil {
		t.Errorf("WithProgress(nil) should silence the pool, got %v", got)
	}
}
