package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestExactSignedRankCDFSmallCases(t *testing.T) {
	// n=3: sums 0..6 with counts 1,1,1,2,1,1,1 over 8 assignments.
	cases := []struct {
		w    float64
		want float64
	}{
		{0, 1.0 / 8}, {1, 2.0 / 8}, {2, 3.0 / 8}, {3, 5.0 / 8},
		{4, 6.0 / 8}, {5, 7.0 / 8}, {6, 1.0},
	}
	for _, c := range cases {
		if got := exactSignedRankCDF(c.w, 3); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(W<=%v | n=3) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestExactSignedRankCriticalValue(t *testing.T) {
	// Published table: for n=10 at two-sided alpha=0.05 the critical value
	// is W=8: P(W+ <= 8)*2 must be just under 0.05, and W=9 just over.
	p8 := 2 * exactSignedRankCDF(8, 10)
	p9 := 2 * exactSignedRankCDF(9, 10)
	if p8 > 0.05 {
		t.Fatalf("P(W<=8)*2 = %v, should be <= 0.05", p8)
	}
	if p9 <= 0.05 {
		t.Fatalf("P(W<=9)*2 = %v, should exceed 0.05", p9)
	}
}

func TestWilcoxonExactMatchesApproxForLargeN(t *testing.T) {
	r := rng.NewMarsaglia(81)
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = 0.4 + r.NormFloat64()
	}
	exact := WilcoxonSignedRankExact(xs, ys) // falls back (n > threshold)
	approx := WilcoxonSignedRank(xs, ys)
	if exact.P != approx.P {
		t.Fatalf("large-n exact path should delegate: %v vs %v", exact.P, approx.P)
	}
}

func TestWilcoxonExactSmallSample(t *testing.T) {
	// Clear one-directional differences, no ties: n=8, all positive
	// differences -> W+ = 36, the maximum; two-sided exact p = 2/2^8.
	xs := []float64{5, 6, 7, 8, 9, 10, 11, 12}
	ys := []float64{4, 4.9, 5.7, 6.4, 7, 7.5, 7.9, 8.2}
	res := WilcoxonSignedRankExact(xs, ys)
	want := 2.0 / 256
	if math.Abs(res.P-want) > 1e-12 {
		t.Fatalf("all-positive n=8 exact p = %v, want %v", res.P, want)
	}
	if !res.Significant(0.05) {
		t.Fatal("clear difference not significant")
	}
}

func TestWilcoxonExactNullCalibration(t *testing.T) {
	r := rng.NewMarsaglia(83)
	rejections := 0
	const trials = 2000
	for k := 0; k < trials; k++ {
		xs := make([]float64, 12)
		ys := make([]float64, 12)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		if WilcoxonSignedRankExact(xs, ys).Significant(0.05) {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	// The exact test is conservative by discreteness; the rate must not
	// exceed nominal.
	if rate > 0.055 {
		t.Fatalf("exact Wilcoxon type-I rate %.3f exceeds 0.05", rate)
	}
	if rate < 0.01 {
		t.Fatalf("exact Wilcoxon type-I rate %.3f implausibly low", rate)
	}
}

func TestOneSampleT(t *testing.T) {
	xs := []float64{5.1, 4.9, 5.2, 5.0, 4.8, 5.1, 5.0, 4.9}
	if res := OneSampleT(xs, 5.0); res.Significant(0.05) {
		t.Fatalf("mean ~5 vs mu=5 rejected: p=%v", res.P)
	}
	if res := OneSampleT(xs, 6.0); !res.Significant(0.001) {
		t.Fatalf("mean ~5 vs mu=6 not rejected: p=%v", res.P)
	}
	if !math.IsNaN(OneSampleT([]float64{1}, 0).P) {
		t.Fatal("single sample accepted")
	}
	res := OneSampleT([]float64{2, 2, 2}, 2)
	if res.P != 1 {
		t.Fatalf("constant-at-mu p = %v, want 1", res.P)
	}
}
