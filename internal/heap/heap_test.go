package heap

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/rng"
)

func TestSizeClass(t *testing.T) {
	cases := []struct {
		size uint64
		cls  int
	}{
		{0, 0}, {1, 0}, {16, 0}, {17, 1}, {32, 1}, {33, 2}, {64, 2},
		{1024, 6}, {1 << 20, 16},
	}
	for _, c := range cases {
		if got := sizeClass(c.size); got != c.cls {
			t.Errorf("sizeClass(%d) = %d, want %d", c.size, got, c.cls)
		}
	}
}

func TestClassSizeCoversRequest(t *testing.T) {
	f := func(sz uint32) bool {
		size := uint64(sz)%(1<<20) + 1
		c := sizeClass(size)
		return classSize(c) >= size && (c == 0 || classSize(c-1) < size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// exerciseAllocator runs a deterministic alloc/free workload and checks the
// fundamental invariants: alignment, no overlap among live objects, and no
// double-handout.
func exerciseAllocator(t *testing.T, a Allocator) {
	t.Helper()
	r := rng.NewMarsaglia(1234)
	type obj struct {
		addr mem.Addr
		size uint64
	}
	var live []obj
	for step := 0; step < 4000; step++ {
		if len(live) > 0 && (r.Intn(2) == 0 || len(live) > 500) {
			i := r.Intn(len(live))
			a.Free(live[i].addr)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint64(r.Intn(2000) + 1)
		addr := a.Alloc(size)
		if uint64(addr)%MinAlign != 0 {
			t.Fatalf("%s: address %#x not %d-aligned", a.Name(), uint64(addr), MinAlign)
		}
		for _, o := range live {
			if addr < o.addr+mem.Addr(o.size) && o.addr < addr+mem.Addr(size) {
				t.Fatalf("%s: allocation [%#x,%d) overlaps live [%#x,%d)",
					a.Name(), uint64(addr), size, uint64(o.addr), o.size)
			}
		}
		live = append(live, obj{addr, size})
	}
}

func TestSegregatedInvariants(t *testing.T) {
	exerciseAllocator(t, NewSegregated(mem.NewAddressSpace()))
}

func TestTLSFInvariants(t *testing.T) {
	a := NewTLSF(mem.NewAddressSpace(), 1<<22)
	exerciseAllocator(t, a)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDieHardInvariants(t *testing.T) {
	exerciseAllocator(t, NewDieHard(mem.NewAddressSpace(), rng.NewMarsaglia(7)))
}

func TestShuffleInvariants(t *testing.T) {
	as := mem.NewAddressSpace()
	exerciseAllocator(t, NewShuffle(NewSegregated(as), rng.NewMarsaglia(7), DefaultShuffleN))
}

func TestShuffleOverTLSFInvariants(t *testing.T) {
	as := mem.NewAddressSpace()
	exerciseAllocator(t, NewShuffle(NewTLSF(as, 1<<22), rng.NewMarsaglia(7), DefaultShuffleN))
}

func TestSegregatedReusesFreedMemory(t *testing.T) {
	s := NewSegregated(mem.NewAddressSpace())
	a := s.Alloc(64)
	s.Free(a)
	b := s.Alloc(64)
	if a != b {
		t.Fatalf("segregated LIFO reuse broken: freed %#x, got %#x", uint64(a), uint64(b))
	}
}

func TestSegregatedFreeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("free of unknown address did not panic")
		}
	}()
	NewSegregated(mem.NewAddressSpace()).Free(0xdead0)
}

func TestSegregatedLargeObject(t *testing.T) {
	s := NewSegregated(mem.NewAddressSpace())
	a := s.Alloc(64 << 20)
	s.Free(a) // must not panic
}

func TestTLSFCoalescing(t *testing.T) {
	tl := NewTLSF(mem.NewAddressSpace(), 1<<20)
	a := tl.Alloc(128)
	b := tl.Alloc(128)
	c := tl.Alloc(128)
	tl.Free(a)
	tl.Free(c)
	tl.Free(b) // should merge all three with the wilderness
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// After full coalescing a pool-sized allocation must succeed without
	// growing: count mapped regions before and after.
	as2 := mem.NewAddressSpace()
	tl2 := NewTLSF(as2, 1<<20)
	x := tl2.Alloc(1 << 12)
	tl2.Free(x)
	before := len(as2.Mapped())
	tl2.Alloc(1<<20 - 64)
	if len(as2.Mapped()) != before {
		t.Fatal("TLSF grew despite a fully coalesced pool")
	}
}

func TestTLSFGrowth(t *testing.T) {
	tl := NewTLSF(mem.NewAddressSpace(), 1<<16)
	var addrs []mem.Addr
	for i := 0; i < 100; i++ {
		addrs = append(addrs, tl.Alloc(4096))
	}
	for _, a := range addrs {
		tl.Free(a)
	}
	if err := tl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTLSFDoubleFreePanics(t *testing.T) {
	tl := NewTLSF(mem.NewAddressSpace(), 1<<20)
	a := tl.Alloc(64)
	tl.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	tl.Free(a)
}

func TestTLSFRandomWorkloadProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tl := NewTLSF(mem.NewAddressSpace(), 1<<20)
		r := rng.NewMarsaglia(seed)
		var live []mem.Addr
		for i := 0; i < 300; i++ {
			if len(live) > 0 && r.Intn(2) == 0 {
				j := r.Intn(len(live))
				tl.Free(live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				live = append(live, tl.Alloc(uint64(r.Intn(8192)+1)))
			}
		}
		return tl.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDieHardNoImmediateReuse(t *testing.T) {
	// DieHard's defining property: a freed address is unlikely to be
	// returned by the very next allocation.
	d := NewDieHard(mem.NewAddressSpace(), rng.NewMarsaglia(3))
	reused := 0
	for i := 0; i < 200; i++ {
		a := d.Alloc(64)
		d.Free(a)
		if d.Alloc(64) == a {
			reused++
		}
	}
	if reused > 5 {
		t.Fatalf("diehard reused the freed address %d/200 times", reused)
	}
}

func TestShuffleDisplacesBaseOrder(t *testing.T) {
	// The shuffling layer must break the base allocator's deterministic
	// bump order: consecutive allocations should rarely be adjacent.
	as := mem.NewAddressSpace()
	sh := NewShuffle(NewSegregated(as), rng.NewMarsaglia(5), DefaultShuffleN)
	prev := sh.Alloc(64)
	adjacent := 0
	for i := 0; i < 500; i++ {
		cur := sh.Alloc(64)
		if cur == prev+64 {
			adjacent++
		}
		prev = cur
	}
	if adjacent > 25 {
		t.Fatalf("shuffled heap produced %d/500 sequential allocations", adjacent)
	}
}

func TestShufflePermutationProperty(t *testing.T) {
	// Every address handed out by the layer came from the base allocator,
	// and the layer never hands out the same address twice while live.
	as := mem.NewAddressSpace()
	base := NewSegregated(as)
	sh := NewShuffle(base, rng.NewMarsaglia(11), 16)
	seen := map[mem.Addr]bool{}
	var live []mem.Addr
	r := rng.NewMarsaglia(12)
	for i := 0; i < 2000; i++ {
		if len(live) > 0 && r.Intn(3) == 0 {
			j := r.Intn(len(live))
			sh.Free(live[j])
			delete(seen, live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		a := sh.Alloc(48)
		if seen[a] {
			t.Fatalf("address %#x handed out while live", uint64(a))
		}
		seen[a] = true
		live = append(live, a)
	}
}

func TestShuffleLargeObjectBypass(t *testing.T) {
	as := mem.NewAddressSpace()
	sh := NewShuffle(NewSegregated(as), rng.NewMarsaglia(1), DefaultShuffleN)
	a := sh.Alloc(32 << 20)
	sh.Free(a) // must not panic
}

func TestShuffleFreeUnknownPanics(t *testing.T) {
	as := mem.NewAddressSpace()
	sh := NewShuffle(NewSegregated(as), rng.NewMarsaglia(1), DefaultShuffleN)
	defer func() {
		if recover() == nil {
			t.Fatal("free of unknown address did not panic")
		}
	}()
	sh.Free(0x12340)
}

func BenchmarkSegregatedAllocFree(b *testing.B) {
	s := NewSegregated(mem.NewAddressSpace())
	for i := 0; i < b.N; i++ {
		s.Free(s.Alloc(64))
	}
}

func BenchmarkTLSFAllocFree(b *testing.B) {
	tl := NewTLSF(mem.NewAddressSpace(), 1<<24)
	for i := 0; i < b.N; i++ {
		tl.Free(tl.Alloc(64))
	}
}

func BenchmarkShuffleAllocFree(b *testing.B) {
	sh := NewShuffle(NewSegregated(mem.NewAddressSpace()), rng.NewMarsaglia(1), DefaultShuffleN)
	for i := 0; i < b.N; i++ {
		sh.Free(sh.Alloc(64))
	}
}
