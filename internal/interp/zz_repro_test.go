package interp_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/ir"
)

// Repro for suspected propagateCopies staleness: a Mov destination later
// redefined by a non-Mov op.
func TestStaleCopyRepro(t *testing.T) {
	mb := ir.NewModuleBuilder("repro")
	f := mb.Func("main", 0)
	c5 := f.ConstI(5)
	c3 := f.ConstI(3)
	c4 := f.ConstI(4)
	d := f.Mov(c5)
	_ = f.Add(c3, c4)
	f.Sink(d)
	f.Ret(ir.NoReg)
	m := mb.Module()

	out, err := compiler.Compile(m, compiler.Options{Level: compiler.O0, Stabilize: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Find the Mov and the Add in main's entry block; redefine the Mov's
	// destination with the Add.
	blk := out.Funcs[out.Entry()].Blocks[0]
	var movDst ir.Reg = ir.NoReg
	addIdx := -1
	for i := range blk.Instrs {
		switch blk.Instrs[i].Op {
		case ir.OpMov:
			movDst = blk.Instrs[i].Dst
		case ir.OpAdd:
			addIdx = i
		}
	}
	if movDst == ir.NoReg || addIdx < 0 {
		t.Skipf("shape not preserved by compile: mov=%v addIdx=%d instrs=%+v", movDst, addIdx, blk.Instrs)
	}
	blk.Instrs[addIdx].Dst = movDst

	walk := runEngine(t, out, 1 /* EngineWalk */, false, 7, nil)
	comp := runEngine(t, out, 0 /* EngineCompiled */, false, 7, nil)
	if walk.err != nil || comp.err != nil {
		t.Fatalf("errs: walk=%v comp=%v", walk.err, comp.err)
	}
	if walk.res.Output != comp.res.Output {
		t.Fatalf("OUTPUT DIVERGENCE: walk=%#x compiled=%#x", walk.res.Output, comp.res.Output)
	}
}
