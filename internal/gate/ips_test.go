package gate

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// withIPS returns a copy of the artifact carrying per-run instruction counts
// and host times such that each benchmark's throughput is exactly the given
// instructions-per-second value.
func withIPS(a *bench.Artifact, engine string, ips map[string]struct {
	Instr uint64
	IPS   float64
}) *bench.Artifact {
	buf, err := a.Encode()
	if err != nil {
		panic(err)
	}
	out, err := bench.ReadBytes(buf)
	if err != nil {
		panic(err)
	}
	out.Meta.Engine = engine
	for i := range out.Benchmarks {
		b := &out.Benchmarks[i]
		spec, ok := ips[b.Name]
		if !ok {
			continue
		}
		for range b.Seconds {
			b.Instructions = append(b.Instructions, spec.Instr)
			b.HostSeconds = append(b.HostSeconds, float64(spec.Instr)/spec.IPS)
		}
	}
	if err := out.Validate(); err != nil {
		panic(err)
	}
	return out
}

// TestThroughputGate pins the IPS floor: headline selection by heaviest
// baseline workload, pass/fail around the ratio, the summary section, and
// the engine tag staying out of comparability.
func TestThroughputGate(t *testing.T) {
	base := synthetic(20, map[string]float64{"cactusADM": 2.0, "astar": 0.5})
	// cactusADM is the heavier workload and must be the implicit headline.
	old := withIPS(base, "walk", map[string]struct {
		Instr uint64
		IPS   float64
	}{
		"cactusADM": {Instr: 9_000_000, IPS: 1e6},
		"astar":     {Instr: 1_000_000, IPS: 2e6},
	})
	new := withIPS(base, "compiled", map[string]struct {
		Instr uint64
		IPS   float64
	}{
		"cactusADM": {Instr: 9_000_000, IPS: 6e6}, // 6x
		"astar":     {Instr: 1_000_000, IPS: 4e6}, // 2x
	})

	rep, err := Compare(old, new, Options{MinIPSRatio: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IPSBenchmark != "cactusADM" {
		t.Fatalf("headline %q, want cactusADM (heaviest baseline workload)", rep.IPSBenchmark)
	}
	if rep.IPSRatio < 5.9 || rep.IPSRatio > 6.1 {
		t.Fatalf("IPS ratio %v, want ~6", rep.IPSRatio)
	}
	if rep.IPSFail || rep.Fail {
		t.Fatalf("6x throughput failed a 5x floor: %+v", rep)
	}
	tbl := rep.Table()
	for _, want := range []string{"Simulator throughput", "cactusADM", "throughput gate", "meets"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}

	// A floor above the measured ratio fails the gate — and only via the
	// throughput arm, not the statistical rows.
	rep, err = Compare(old, new, Options{MinIPSRatio: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IPSFail || !rep.Fail || rep.Failures != 0 {
		t.Fatalf("6x throughput passed a 7x floor: %+v", rep)
	}
	if !strings.Contains(rep.Table(), "GATE FAIL: throughput") {
		t.Errorf("fail table does not name the throughput gate:\n%s", rep.Table())
	}

	// An explicit headline overrides the heuristic.
	rep, err = Compare(old, new, Options{MinIPSRatio: 1.5, IPSBench: "astar"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IPSBenchmark != "astar" || rep.IPSFail {
		t.Fatalf("explicit headline: %+v", rep)
	}
	if _, err := Compare(old, new, Options{MinIPSRatio: 1.5, IPSBench: "nosuch"}); err == nil {
		t.Fatal("unknown IPSBench did not error")
	}

	// Without host timing the floor is an error, not a silent pass.
	if _, err := Compare(base, base, Options{MinIPSRatio: 5}); err == nil {
		t.Fatal("MinIPSRatio without host timing did not error")
	}

	// Differing engine tags alone never make artifacts incomparable, and
	// without a floor the IPS section is informational only.
	rep, err = Compare(old, new, Options{})
	if err != nil {
		t.Fatalf("engine tags broke comparability: %v", err)
	}
	if rep.Fail {
		t.Fatalf("informational IPS failed the gate: %+v", rep)
	}
	if !strings.Contains(rep.Table(), "Simulator throughput") {
		t.Errorf("IPS rows missing from informational table:\n%s", rep.Table())
	}
}
