package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Client is the farm protocol's HTTP client, shared by workers, the szfarm
// CLI, and tests. Every exchange passes through a named fault-injection
// site (net.submit, net.acquire, …) and a bounded retry loop: transient
// failures — transport errors, 5xx, 429 — are retried with capped
// exponential backoff and jitter; other 4xx are returned immediately.
// Retried completions carry an idempotency key (set by the worker), so a
// completion whose response was lost is deduplicated server-side rather
// than burning a cell attempt.
//
// For a high-availability farm, Server may list several coordinators
// (comma-separated). The client talks to one at a time; when an exchange
// fails retryably it reprobes every listed server's /v1/coordinator
// endpoint and fails over to the one reporting itself active with the
// highest fencing epoch — the promoted standby — inside the same bounded
// retry loop. A standby answers protocol requests with 503 + Retry-After,
// which is retryable, so a client that guessed wrong converges on the
// active coordinator without special cases.
type Client struct {
	// Server is one or more coordinator base URLs, comma-separated, e.g.
	// "http://localhost:8713" or "http://a:8713,http://b:8713".
	Server string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds tries per exchange (default 5; 1 disables retry).
	MaxAttempts int
	// RetryBase is the first backoff delay (default 50ms, doubling per
	// attempt, capped at 2s). Tests shrink it.
	RetryBase time.Duration

	// mu guards the failover state below.
	mu sync.Mutex
	// servers is Server split on commas (parsed lazily); active indexes
	// the one currently receiving requests.
	servers []string
	active  int
	// obsHolder/obsEpoch record the coordinator identity and fencing epoch
	// from the most recent response's X-Sz-* headers, so CLIs and chaos
	// logs can attribute events across a failover.
	obsHolder string
	obsEpoch  uint64
}

// NewClient returns a client for the coordinator(s) at the given base
// URL(s), comma-separated.
func NewClient(server string) *Client {
	return &Client{Server: server}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// serverList parses Server on first use. Single-server configurations pay
// nothing beyond the parse.
func (c *Client) serverList() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.servers == nil {
		for _, s := range strings.Split(c.Server, ",") {
			if s = strings.TrimRight(strings.TrimSpace(s), "/"); s != "" {
				c.servers = append(c.servers, s)
			}
		}
		if c.servers == nil {
			c.servers = []string{""}
		}
	}
	return c.servers
}

// base returns the server currently receiving requests.
func (c *Client) base() string {
	list := c.serverList()
	c.mu.Lock()
	defer c.mu.Unlock()
	return list[c.active%len(list)]
}

// observe records the answering coordinator's identity headers.
func (c *Client) observe(resp *http.Response) {
	holder := resp.Header.Get(HeaderCoordinator)
	if holder == "" {
		return
	}
	epoch, _ := strconv.ParseUint(resp.Header.Get(HeaderEpoch), 10, 64)
	c.mu.Lock()
	c.obsHolder, c.obsEpoch = holder, epoch
	c.mu.Unlock()
}

// ObservedCoordinator reports the identity and fencing epoch of the last
// coordinator that answered this client ("" / 0 before any exchange).
func (c *Client) ObservedCoordinator() (holder string, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.obsHolder, c.obsEpoch
}

// reprobe asks every listed server who it is and switches to the best
// answer: active role first, then highest fencing epoch. With nobody
// answering "active" (mid-election) the current choice stands — the retry
// loop's backoff covers the promotion window. Single-server clients skip
// the probe entirely.
func (c *Client) reprobe(ctx context.Context) {
	list := c.serverList()
	if len(list) < 2 {
		return
	}
	best, bestEpoch := -1, uint64(0)
	for i, server := range list {
		info, err := c.probeOne(ctx, server)
		if err != nil || info.Role != RoleActive {
			continue
		}
		if best < 0 || info.Epoch > bestEpoch {
			best, bestEpoch = i, info.Epoch
		}
	}
	if best >= 0 {
		c.mu.Lock()
		c.active = best
		c.mu.Unlock()
	}
}

// probeOne fetches one server's /v1/coordinator document (single attempt,
// no retry — the caller is already inside a retry loop).
func (c *Client) probeOne(ctx context.Context, server string) (CoordinatorInfo, error) {
	var info CoordinatorInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, server+"/v1/coordinator", nil)
	if err != nil {
		return info, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return info, &StatusError{Code: resp.StatusCode, Message: resp.Status}
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&info)
	return info, err
}

// Coordinator reports the currently-selected server's role, identity, and
// fencing epoch.
func (c *Client) Coordinator(ctx context.Context) (CoordinatorInfo, error) {
	return c.probeOne(ctx, c.base())
}

// Scaling fetches the coordinator's autoscaling signals.
func (c *Client) Scaling(ctx context.Context) (ScalingReport, error) {
	var out ScalingReport
	err := c.doJSON(ctx, faultinject.SiteNetStatus, http.MethodGet, "/v1/scaling", nil, &out)
	return out, err
}

const retryBackoffCap = 2 * time.Second

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 5
}

func (c *Client) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return 50 * time.Millisecond
}

// retryableError reports whether an exchange failure is worth retrying:
// transport-level failures (the request may never have arrived, or the
// response was lost) and explicitly transient statuses. Every other status
// is a definitive answer from the coordinator — 410 Gone on a heartbeat,
// for instance, is a signal, not a failure.
func retryableError(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusTooManyRequests || se.Code/100 == 5
	}
	return true
}

// doJSON performs a JSON exchange with retries. The site names this
// exchange for fault injection. A retryable failure against a multi-server
// list triggers a coordinator reprobe before the next attempt, so a
// failover (dead active, promoted standby) resolves inside the ordinary
// retry budget.
func (c *Client) doJSON(ctx context.Context, site, method, path string, in, out any) error {
	attempts := c.maxAttempts()
	for attempt := 0; ; attempt++ {
		err := c.doJSONOnce(ctx, site, method, path, in, out)
		if err == nil || attempt >= attempts-1 || !retryableError(err) || ctx.Err() != nil {
			return err
		}
		delay := c.retryBase() << attempt
		if delay > retryBackoffCap {
			delay = retryBackoffCap
		}
		// A server-suggested Retry-After overrides the schedule; the jitter
		// spreads synchronized retries from a worker fleet.
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > 0 {
			delay = se.RetryAfter
		}
		delay += time.Duration(rand.Int63n(int64(delay)/2 + 1))
		if serr := sleepCtx(ctx, delay); serr != nil {
			return err
		}
		c.reprobe(ctx)
	}
}

// doJSONOnce runs one exchange through the site's injected network fault,
// if any: a drop fails before sending (request lost), an injected status
// fails without sending (upstream 5xx), a duplicate sends the request twice
// and discards the first response (retransmission reaching the server
// twice), and a torn response lets the server process the request but loses
// the reply — the case idempotency keys exist for.
func (c *Client) doJSONOnce(ctx context.Context, site, method, path string, in, out any) error {
	nf := faultinject.Protocol(ctx, site)
	switch {
	case nf.Drop:
		return fmt.Errorf("campaign: %s: injected request drop", site)
	case nf.Status != 0:
		return &StatusError{Code: nf.Status, Message: "injected upstream error"}
	case nf.Duplicate:
		_ = c.exchange(ctx, method, path, in, nil, false)
	case nf.Torn:
		return c.exchange(ctx, method, path, in, out, true)
	}
	return c.exchange(ctx, method, path, in, out, false)
}

// exchange is one raw JSON request/response. A non-2xx status is returned
// as a *StatusError carrying the server's error message. With torn set,
// the response is discarded after the server has handled the request and a
// transport-style error is returned instead.
func (c *Client) exchange(ctx context.Context, method, path string, in, out any, torn bool) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("campaign: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base()+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's trace context (a worker's leased span, usually)
	// so coordinator-side logs join the distributed trace.
	obs.TraceContextFrom(ctx).Inject(req.Header)
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	c.observe(resp)
	if torn {
		return fmt.Errorf("campaign: %s %s: injected torn response", method, path)
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		se := &StatusError{Code: resp.StatusCode, Message: msg}
		se.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		return se
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// retryAfterCap bounds how long a server-directed Retry-After may stall a
// client: the ceiling for delays the server asked for, distinct from (and
// higher than) retryBackoffCap, which governs the client's own schedule. A
// misbehaving or miscalibrated server cannot park a worker fleet for
// minutes.
const retryAfterCap = 30 * time.Second

// parseRetryAfter reads a Retry-After header in either RFC 9110 form —
// delay-seconds or an HTTP-date — clamped to [0, retryAfterCap]. Malformed
// values and dates in the past yield 0 (no server-directed delay).
func parseRetryAfter(s string, now time.Time) time.Duration {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(s); err == nil {
		d = time.Duration(secs) * time.Second
	} else if t, perr := http.ParseTime(s); perr == nil {
		d = t.Sub(now)
	}
	if d < 0 {
		d = 0
	}
	if d > retryAfterCap {
		d = retryAfterCap
	}
	return d
}

// StatusError is a non-2xx farm response.
type StatusError struct {
	Code    int
	Message string
	// RetryAfter carries the server's Retry-After hint on 429 responses.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("campaign: server returned %d: %s", e.Code, e.Message)
}

// Submit posts a campaign spec. A retried submission whose first attempt
// actually landed creates a second campaign over the same cells; that is
// benign — the store dedupes the work — but callers wanting exactly-one
// should check StatusAll after an ambiguous failure.
func (c *Client) Submit(ctx context.Context, spec Spec) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.doJSON(ctx, faultinject.SiteNetSubmit, http.MethodPost, "/v1/campaigns", spec, &out)
	return out, err
}

// Status fetches one campaign's status.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var out Status
	err := c.doJSON(ctx, faultinject.SiteNetStatus, http.MethodGet, "/v1/campaigns/"+id, nil, &out)
	return out, err
}

// StatusAll fetches every campaign's summary.
func (c *Client) StatusAll(ctx context.Context) ([]Status, error) {
	var out []Status
	err := c.doJSON(ctx, faultinject.SiteNetStatus, http.MethodGet, "/v1/campaigns", nil, &out)
	return out, err
}

// Artifact fetches a completed campaign's merged artifact bytes.
func (c *Client) Artifact(ctx context.Context, id string) ([]byte, error) {
	return c.artifact(ctx, id, "")
}

// ArtifactProvenance fetches the artifact with per-cell provenance blocks
// attached (worker, coordinator, attempts, timings). The provenance is
// non-golden decoration: stripping it recovers the plain artifact bytes.
func (c *Client) ArtifactProvenance(ctx context.Context, id string) ([]byte, error) {
	return c.artifact(ctx, id, "?provenance=1")
}

func (c *Client) artifact(ctx context.Context, id, query string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base()+"/v1/campaigns/"+id+"/artifact"+query, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	c.observe(resp)
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.Unmarshal(buf, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return nil, &StatusError{Code: resp.StatusCode, Message: msg}
	}
	return buf, nil
}

// Events fetches a campaign's JSONL event log. Without follow it is one
// page: whatever the coordinator's event ring currently holds. With follow
// it polls the ring by cursor until the campaign is terminal, writing new
// lines to w as they arrive; the cursor survives a coordinator failover
// (the promoted standby's ring restarts, and the cursor headers report the
// jump as a drop). When the ring wrapped past the cursor, a comment line
//
//	# gap=N events dropped (ring wrapped; raise -event-cap)
//
// marks the hole, so a consumer knows the stream is incomplete rather than
// silently missing lines. The durable per-campaign journal (szfarm
// timeline) has no such gaps.
func (c *Client) Events(ctx context.Context, id string, follow bool, w io.Writer) error {
	page, err := c.eventsPage(ctx, id, 0)
	if err != nil {
		return err
	}
	if follow && page.dropped > 0 {
		fmt.Fprintf(w, "# gap=%d events dropped (ring wrapped; raise -event-cap)\n", page.dropped)
	}
	if _, err := w.Write(page.buf); err != nil {
		return err
	}
	if !follow {
		return nil
	}
	for !page.terminal {
		if err := sleepCtx(ctx, 500*time.Millisecond); err != nil {
			return err
		}
		next, err := c.eventsPage(ctx, id, page.next)
		if err != nil {
			return err
		}
		if next.dropped > 0 {
			fmt.Fprintf(w, "# gap=%d events dropped (ring wrapped; raise -event-cap)\n", next.dropped)
		}
		if _, err := w.Write(next.buf); err != nil {
			return err
		}
		page = next
	}
	return nil
}

// eventsResult is one page of a campaign's event ring plus its cursor
// metadata, decoded from the X-Sz-Events-* headers.
type eventsResult struct {
	buf      []byte
	next     int
	dropped  int
	terminal bool
}

// eventsPage fetches the event lines at or after cursor from (0 = oldest
// retained).
func (c *Client) eventsPage(ctx context.Context, id string, from int) (eventsResult, error) {
	var page eventsResult
	url := c.base() + "/v1/campaigns/" + id + "/events"
	if from > 0 {
		url += "?since=" + strconv.Itoa(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return page, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return page, err
	}
	defer resp.Body.Close()
	c.observe(resp)
	if resp.StatusCode/100 != 2 {
		return page, &StatusError{Code: resp.StatusCode, Message: resp.Status}
	}
	page.buf, err = io.ReadAll(resp.Body)
	if err != nil {
		return page, err
	}
	page.next, _ = strconv.Atoi(resp.Header.Get(HeaderEventsNext))
	page.dropped, _ = strconv.Atoi(resp.Header.Get(HeaderEventsDropped))
	page.terminal = resp.Header.Get(HeaderEventsTerminal) == "1"
	return page, nil
}

// Acquire requests a lease.
func (c *Client) Acquire(ctx context.Context, worker string) (AcquireResponse, error) {
	var out AcquireResponse
	err := c.doJSON(ctx, faultinject.SiteNetAcquire, http.MethodPost, "/v1/leases",
		map[string]string{"worker": worker}, &out)
	return out, err
}

// Heartbeat extends a lease; ok=false means the lease is gone and the
// worker should abandon the cell.
func (c *Client) Heartbeat(ctx context.Context, leaseID uint64) (ok bool, err error) {
	err = c.doJSON(ctx, faultinject.SiteNetHeartbeat, http.MethodPost, fmt.Sprintf("/v1/leases/%d/heartbeat", leaseID), map[string]any{}, nil)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusGone {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// Complete posts a finished cell. Callers should set req.IdempotencyKey so
// retried posts are deduplicated server-side; the worker uses the lease id,
// which is single-use.
func (c *Client) Complete(ctx context.Context, leaseID uint64, req CompleteRequest) error {
	return c.doJSON(ctx, faultinject.SiteNetComplete, http.MethodPost, fmt.Sprintf("/v1/leases/%d/complete", leaseID), req, nil)
}

// Release hands a lease back to the coordinator without burning an attempt
// — the drain path. ok=false means the lease was already gone, which a
// draining worker can ignore.
func (c *Client) Release(ctx context.Context, leaseID uint64, worker string) (ok bool, err error) {
	err = c.doJSON(ctx, faultinject.SiteNetRelease, http.MethodPost,
		fmt.Sprintf("/v1/leases/%d/release", leaseID), map[string]string{"worker": worker}, nil)
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusGone {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// WaitDone polls a campaign until it reaches a terminal state; it returns
// the final status (whose State distinguishes done from failed).
func (c *Client) WaitDone(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return Status{}, err
		}
		if st.State != StateRunning {
			return st, nil
		}
		if err := sleepCtx(ctx, poll); err != nil {
			return st, err
		}
	}
}
