package ir

// FuncAlign is the alignment of function start addresses, matching the
// 16-byte alignment common x86-64 compilers use.
const FuncAlign = 16

// funcHeaderSize models the prologue bytes before the first block
// (push rbp; mov rbp,rsp; frame adjustment).
const funcHeaderSize = 8

// ComputeSizes fills in the modeled encoded size and offset of every block
// and the total size of every function. Layout consumers (the linker and
// the STABILIZER code heap) and the interpreter's fetch accounting depend on
// these values, so every pipeline runs this after its last transformation.
func ComputeSizes(m *Module) {
	for _, f := range m.Funcs {
		off := uint64(funcHeaderSize)
		for _, b := range f.Blocks {
			b.Off = off
			sz, live := uint64(0), uint64(0)
			for _, in := range b.Instrs {
				sz += in.Op.EncodedSize()
				if in.Op != OpNop {
					live++
				}
			}
			sz += b.Term.EncodedSize()
			b.Size = sz
			b.Live = live
			off += sz
		}
		// Round the function footprint up to its alignment.
		f.Size = (off + FuncAlign - 1) &^ (FuncAlign - 1)
	}
}
