package experiment

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// Per-cell fault-tolerance policy: a watchdog deadline so one pathological
// seed cannot hang a sweep, and bounded retries with capped backoff for
// failures that are transient by construction (injected faults, watchdog
// timeouts). Real run errors are deterministic — the same seed would fail
// the same way — so they are never retried.

// cellTimeoutNs is the per-cell watchdog deadline in nanoseconds; 0
// disables it. Set from the cmds' -cell-timeout flag.
var cellTimeoutNs atomic.Int64

// SetCellTimeout sets the per-cell watchdog deadline. Each cell
// (one benchmark × config × seed range) must finish a collection attempt
// within d or it is aborted with context.DeadlineExceeded (and retried,
// timeouts being presumed transient). d <= 0 disables the watchdog.
func SetCellTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	cellTimeoutNs.Store(int64(d))
}

// CellTimeout returns the current per-cell watchdog deadline (0 = off).
func CellTimeout() time.Duration { return time.Duration(cellTimeoutNs.Load()) }

// DefaultCellTimeout derives a generous watchdog deadline from the
// workload scale: proportional to the work in a cell, with a floor so
// tiny scales aren't flaky on loaded machines.
func DefaultCellTimeout(scale float64) time.Duration {
	if scale <= 0 {
		scale = 1
	}
	d := time.Duration(scale * float64(5*time.Minute))
	if d < 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// defaultCellRetries is the default number of extra attempts after a
// transient cell failure.
const defaultCellRetries = 2

var cellRetries atomic.Int64

func init() { cellRetries.Store(defaultCellRetries) }

// SetCellRetries sets how many times a cell is retried after a transient
// failure (injected fault or watchdog timeout). n < 0 restores the
// default; 0 disables retries.
func SetCellRetries(n int) {
	if n < 0 {
		n = defaultCellRetries
	}
	cellRetries.Store(int64(n))
}

// CellRetries returns the current retry budget per cell.
func CellRetries() int { return int(cellRetries.Load()) }

// Retry backoff: attempt k waits min(base << (k-1), cap) before rerunning.
const (
	cellRetryBase = 50 * time.Millisecond
	cellRetryCap  = 2 * time.Second
)

func backoffDelay(attempt int) time.Duration {
	d := cellRetryBase << (attempt - 1)
	if d > cellRetryCap || d <= 0 {
		d = cellRetryCap
	}
	return d
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable classifies a cell failure: injected-transient errors and
// watchdog timeouts are worth retrying; cancellation, panics, and real
// run errors are not (deterministic runs would fail identically).
func retryable(err error) bool {
	return faultinject.Transient(err) || errors.Is(err, context.DeadlineExceeded)
}

// CellError is a cell failure annotated with the cell's label and how
// many attempts were made; the underlying cause (e.g. a *PanicError or
// *interp.StepBudgetError) unwraps.
type CellError struct {
	Label    string
	Attempts int
	Err      error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("experiment: cell %s failed after %d attempt(s): %v", e.Label, e.Attempts, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Retry telemetry for final reports: label → attempts used by the most
// recent collection of that cell.
var retryLog = struct {
	mu       sync.Mutex
	attempts map[string]int
}{attempts: map[string]int{}}

func recordAttempts(label string, attempts int) {
	if attempts <= 1 {
		return
	}
	retryLog.mu.Lock()
	retryLog.attempts[label] = attempts
	retryLog.mu.Unlock()
}

// RetryReport summarizes cells that needed more than one attempt, one
// line per cell, sorted by label. Empty string when every cell succeeded
// first try.
func RetryReport() string {
	retryLog.mu.Lock()
	defer retryLog.mu.Unlock()
	if len(retryLog.attempts) == 0 {
		return ""
	}
	labels := make([]string, 0, len(retryLog.attempts))
	for l := range retryLog.attempts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	fmt.Fprintf(&b, "cells retried (%d):\n", len(labels))
	for _, l := range labels {
		fmt.Fprintf(&b, "  [%s] %d attempts\n", l, retryLog.attempts[l])
	}
	return b.String()
}

// ResetRetryReport clears the retry telemetry (tests).
func ResetRetryReport() {
	retryLog.mu.Lock()
	retryLog.attempts = map[string]int{}
	retryLog.mu.Unlock()
}
