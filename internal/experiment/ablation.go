package experiment

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/stats"
)

// IntervalRow is one point of the re-randomization interval ablation.
type IntervalRow struct {
	// Interval in cycles; 0 means one-time randomization (no timer).
	Interval uint64
	// PeriodsPerRun is the mean number of randomization periods per run.
	PeriodsPerRun float64
	// SWp is the Shapiro-Wilk p-value of the run-time distribution.
	SWp float64
	// CV is the coefficient of variation of the samples.
	CV float64
	// MeanOverhead is mean time relative to the one-time configuration.
	MeanOverhead float64
}

// IntervalAblation tests the paper's §4 claim that normality emerges once a
// run spans enough randomization periods ("30 is typical" for the Central
// Limit Theorem): it sweeps the re-randomization interval on one benchmark
// and reports how the execution-time distribution changes.
type IntervalAblation struct {
	Benchmark string
	Rows      []IntervalRow
	Runs      int
}

// IntervalAblationOptions configures the sweep.
type IntervalAblationOptions struct {
	Benchmark string // default astar (the paper's cleanest normality flip)
	Scale     float64
	Runs      int
	Seed      uint64
	Intervals []uint64 // 0 = one-time; default a 2x-spaced sweep
}

func (o *IntervalAblationOptions) defaults() {
	if o.Benchmark == "" {
		o.Benchmark = "astar"
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Runs == 0 {
		o.Runs = 30
	}
	if o.Intervals == nil {
		o.Intervals = []uint64{0, 800_000, 400_000, 200_000, 100_000, 50_000, 25_000, 12_500}
	}
}

// RerandInterval runs the sweep.
func RerandInterval(ctx context.Context, opts IntervalAblationOptions) (*IntervalAblation, error) {
	opts.defaults()
	b, ok := spec.ByName(opts.Benchmark)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown benchmark %q", opts.Benchmark)
	}
	res := &IntervalAblation{Benchmark: opts.Benchmark, Runs: opts.Runs}
	// Sweep points run in parallel; MeanOverhead is relative to the first
	// point's mean, so it is filled in afterwards in sweep order.
	rows := make([]IntervalRow, len(opts.Intervals))
	means := make([]float64, len(opts.Intervals))
	pool := NewPool(0)
	err := pool.ForEach(ctx, len(opts.Intervals), func(ctx context.Context, ii int) error {
		interval := opts.Intervals[ii]
		st := core.Options{Code: true, Stack: true, Heap: true}
		if interval > 0 {
			st.Rerandomize = true
			st.Interval = interval
		}
		cc, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2, Stabilizer: &st})
		if err != nil {
			return err
		}
		ss, err := cc.Collect(ctx, opts.Runs, opts.Seed+uint64(ii)*1000)
		if err != nil {
			return err
		}
		var cycles float64
		for _, r := range ss.Results {
			cycles += float64(r.Cycles)
		}
		cycles /= float64(opts.Runs)
		mean := stats.Mean(ss.Seconds)
		periods := 1.0
		if interval > 0 {
			periods = cycles / float64(interval)
		}
		means[ii] = mean
		rows[ii] = IntervalRow{
			Interval:      interval,
			PeriodsPerRun: periods,
			SWp:           stats.ShapiroWilk(ss.Seconds).P,
			CV:            stats.StdDev(ss.Seconds) / mean,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	baseMean := means[0]
	for ii := range rows {
		rows[ii].MeanOverhead = means[ii]/baseMean - 1
	}
	res.Rows = rows
	return res, nil
}

// Table renders the sweep.
func (r *IntervalAblation) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Re-randomization interval ablation (%s, %d runs): §4 predicts\n", r.Benchmark, r.Runs)
	fmt.Fprintf(&sb, "normality once a run spans ~30 randomization periods\n")
	fmt.Fprintf(&sb, "%12s %12s %12s %8s %10s\n", "interval", "periods/run", "ShapiroW p", "CV", "overhead")
	for _, row := range r.Rows {
		label := "one-time"
		if row.Interval > 0 {
			label = fmt.Sprintf("%d", row.Interval)
		}
		mark := " "
		if row.SWp < 0.05 {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%12s %12.1f %11.3f%s %7.2f%% %+9.1f%%\n",
			label, row.PeriodsPerRun, row.SWp, mark, row.CV*100, row.MeanOverhead*100)
	}
	sb.WriteString("(* = non-normal at p < 0.05)\n")
	return sb.String()
}

// ShuffleDepthRow is one point of the shuffling-depth overhead sweep.
type ShuffleDepthRow struct {
	Label    string
	Overhead float64 // vs native
	CV       float64
}

// ShuffleDepthAblation tests §3.2's cost claim: N must be large enough to
// randomize the index bits, but "values that are too large will increase
// overhead with no added benefit."
type ShuffleDepthAblation struct {
	Benchmark string
	Rows      []ShuffleDepthRow
	Runs      int
}

// ShuffleDepthOptions configures the sweep.
type ShuffleDepthOptions struct {
	Benchmark string // default mcf (heap-bound)
	Scale     float64
	Runs      int
	Seed      uint64
	Depths    []int
}

func (o *ShuffleDepthOptions) defaults() {
	if o.Benchmark == "" {
		o.Benchmark = "mcf"
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Runs == 0 {
		o.Runs = 15
	}
	if o.Depths == nil {
		o.Depths = []int{1, 16, 64, 256, 1024, 4096}
	}
}

// ShuffleDepth runs the sweep.
func ShuffleDepth(ctx context.Context, opts ShuffleDepthOptions) (*ShuffleDepthAblation, error) {
	opts.defaults()
	b, ok := spec.ByName(opts.Benchmark)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown benchmark %q", opts.Benchmark)
	}
	res := &ShuffleDepthAblation{Benchmark: opts.Benchmark, Runs: opts.Runs}

	nat, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2})
	if err != nil {
		return nil, err
	}
	nss, err := nat.Collect(ctx, opts.Runs, opts.Seed)
	if err != nil {
		return nil, err
	}
	base := stats.Mean(nss.Seconds)

	// Every heap configuration is an independent cell; sweep them in
	// parallel with slot-indexed rows. The substrate comparisons of
	// §3.2/§7 ride along: TLSF under the shuffle, and the original DieHard
	// configuration. Seed offsets are preserved from the sequential sweep.
	type cell struct {
		label string
		st    core.Options
		di    int
	}
	cells := make([]cell, 0, len(opts.Depths)+2)
	for di, depth := range opts.Depths {
		cells = append(cells, cell{fmt.Sprintf("shuffle(N=%d)", depth), core.Options{Heap: true, ShuffleN: depth}, di})
	}
	cells = append(cells,
		cell{"shuffle(tlsf)", core.Options{Heap: true, UseTLSF: true}, len(opts.Depths) + 1},
		cell{"diehard", core.Options{Heap: true, UseDieHard: true}, len(opts.Depths) + 2})

	rows := make([]ShuffleDepthRow, len(cells))
	pool := NewPool(0)
	err = pool.ForEach(ctx, len(cells), func(ctx context.Context, i int) error {
		c := cells[i]
		st := c.st
		cc, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2, Stabilizer: &st})
		if err != nil {
			return err
		}
		ss, err := cc.Collect(ctx, opts.Runs, opts.Seed+uint64(c.di+1)*500)
		if err != nil {
			return err
		}
		rows[i] = ShuffleDepthRow{
			Label:    c.label,
			Overhead: stats.Mean(ss.Seconds)/base - 1,
			CV:       stats.StdDev(ss.Seconds) / stats.Mean(ss.Seconds),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the sweep.
func (r *ShuffleDepthAblation) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Shuffling-depth / substrate ablation (%s, heap randomization only, %d runs)\n", r.Benchmark, r.Runs)
	fmt.Fprintf(&sb, "%16s %12s %8s\n", "heap", "overhead", "CV")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%16s %+11.1f%% %7.2f%%\n", row.Label, row.Overhead*100, row.CV*100)
	}
	return sb.String()
}

// AdaptiveRow compares one re-randomization policy.
type AdaptiveRow struct {
	Policy   string
	Mean     float64
	CV       float64
	Rerands  float64 // mean re-randomizations per run
	Triggers float64 // mean adaptive triggers per run
}

// AdaptiveAblation compares the §8 adaptive policy ("sampling with
// performance counters could ... trigger a complete or partial
// re-randomization") against one-time and fixed-interval randomization.
type AdaptiveAblation struct {
	Benchmark string
	Rows      []AdaptiveRow
	Runs      int
}

// AdaptiveOptions configures the comparison.
type AdaptiveOptions struct {
	Benchmark string
	Scale     float64
	Runs      int
	Seed      uint64
	Interval  uint64
}

func (o *AdaptiveOptions) defaults() {
	if o.Benchmark == "" {
		o.Benchmark = "astar"
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Runs == 0 {
		o.Runs = 20
	}
	if o.Interval == 0 {
		o.Interval = 100_000
	}
}

// Adaptive runs the comparison. The fixed and adaptive policies share the
// same base interval, so any difference comes from the early triggers.
func Adaptive(ctx context.Context, opts AdaptiveOptions) (*AdaptiveAblation, error) {
	opts.defaults()
	b, ok := spec.ByName(opts.Benchmark)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown benchmark %q", opts.Benchmark)
	}
	res := &AdaptiveAblation{Benchmark: opts.Benchmark, Runs: opts.Runs}

	policies := []struct {
		name string
		opts core.Options
	}{
		{"one-time", core.Options{Code: true, Stack: true, Heap: true}},
		{"fixed", core.Options{Code: true, Stack: true, Heap: true,
			Rerandomize: true, Interval: opts.Interval}},
		{"adaptive", core.Options{Code: true, Stack: true, Heap: true,
			Rerandomize: true, Interval: opts.Interval, Adaptive: true}},
	}
	rows := make([]AdaptiveRow, len(policies))
	pool := NewPool(0)
	err := pool.ForEach(ctx, len(policies), func(ctx context.Context, pi int) error {
		p := policies[pi]
		cc, err := CompileBench(b, Config{Scale: opts.Scale, Level: compiler.O2, Stabilizer: &p.opts})
		if err != nil {
			return err
		}
		ss, err := cc.Collect(ctx, opts.Runs, opts.Seed+uint64(pi)*1000)
		if err != nil {
			return err
		}
		var rerands, triggers float64
		for _, r := range ss.Results {
			rerands += float64(r.Rerands)
			triggers += float64(r.AdaptiveTriggers)
		}
		rows[pi] = AdaptiveRow{
			Policy:   p.name,
			Mean:     stats.Mean(ss.Seconds),
			CV:       stats.StdDev(ss.Seconds) / stats.Mean(ss.Seconds),
			Rerands:  rerands / float64(opts.Runs),
			Triggers: triggers / float64(opts.Runs),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the comparison.
func (r *AdaptiveAblation) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Adaptive re-randomization (§8 extension) on %s (%d runs)\n", r.Benchmark, r.Runs)
	fmt.Fprintf(&sb, "%10s %12s %8s %12s %12s\n", "policy", "mean (s)", "CV", "rerands/run", "triggers/run")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%10s %12.6f %7.2f%% %12.1f %12.1f\n",
			row.Policy, row.Mean, row.CV*100, row.Rerands, row.Triggers)
	}
	return sb.String()
}
