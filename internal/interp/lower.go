// Lowering for the compiled execution engine.
//
// lowered() turns an *ir.Module into a flat, pre-decoded instruction stream:
// every IR instruction becomes one cinstr — a plain struct holding the
// opcode plus its operand registers, immediates, and, wherever the IR makes
// them static, byte offsets, word indices, and bounds-check outcomes
// resolved at lowering time. The compiled driver executes cinstrs through a
// single switch (compiled.go's runOps), so dispatch is a jump table instead
// of an indirect closure call per instruction.
//
// Before emission each function runs through two register-only passes:
//
//   - copy propagation: reads through a Mov are renamed to the Mov's source
//     while the copy relation provably holds (within one block, source not
//     yet redefined);
//   - dead-code elimination: charge-free register ops (constants, moves,
//     add/sub/logic/compares — anything with no machine cost, no trap, and
//     no recorder event) whose result is never read are dropped.
//
// Both passes are invisible to every observer the engines are pinned on:
// registers themselves are unobservable, the deleted ops charge no cycles
// and record no events, and steps/Retire accounting uses the original
// block's Live count, never the lowered stream's length. The *ir.Module is
// never modified — the walk engine keeps executing the original program.
//
// Hot opcode pairs are fused into superinstructions: a comparison feeding
// the block's conditional branch folds into the terminator, and a second
// register-ALU op or store piggybacks in a cinstr's op2 slot (the load+op
// and op+store superinstructions), saving a dispatch round per pair while
// executing in exactly the original order.
//
// Lowering is execution-independent: it captures only module constants,
// never run state, so one lowered module is shared by every concurrent run
// (the experiment pool's workers all execute the same *ir.Module). The
// cache is bounded; eviction only costs re-lowering.
package interp

import (
	"math/bits"
	"sync"

	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/trap"
)

// copcode is a lowered opcode. The ALU values double as op2 (secondary)
// opcodes in a fused superinstruction.
type copcode uint8

const (
	copNone copcode = iota // op2 only: no fused secondary

	// Register ALU. d,a,b operands; copConstI carries the value in x.
	copConstI
	copMov
	copAdd
	copSub
	copMul
	copDiv
	copRem
	copAnd
	copOr
	copXor
	copShl
	copShr
	copFAdd
	copFSub
	copFMul
	copFDiv
	copCmpEQ
	copCmpLT
	copCmpLE
	copFCmpLT
	copI2F
	copF2I

	// Globals. Static (in-bounds proven at lowering): a=global, x=byteOff.
	// Dynamic: a=index reg, b2=global, x=word count, imm=base offset.
	// Loads write d; stores read the value from b.
	copLoadG
	copLoadGF
	copStoreG
	copStoreGF
	copLoadGD
	copLoadGFD
	copStoreGD
	copStoreGFD

	// Stack slots. Static: x=frame offset (slot.Off+byteOff); stores also
	// carry a=slot symbol and imm=byteOff for the recorder. Dynamic: a=index
	// reg, b2=symbol, imm=base offset, x=pool index of {slot.Off, slot.Size}.
	// Loads write d; stores read the value from b.
	copLoadS
	copLoadSF
	copStoreS
	copStoreSF
	copLoadSD
	copLoadSFD
	copStoreSD
	copStoreSFD

	// Heap. a=pointer reg, b=index reg (-1 for none), imm=base offset.
	// Loads write d; stores read the value from d (as in the IR).
	copLoadH
	copLoadHF
	copStoreH
	copStoreHF

	copAlloc // d, x=size
	copFree  // a
	copSink  // a
	copSinkF // a
	copSlow  // x=index into lowFunc.slow (static out-of-bounds, unknown ops)
)

// cinstr is one lowered instruction: primary op plus an optional fused
// secondary in op2 (executed immediately after, in original program order).
// Secondary operands ride in d2/a2/b2; secondary stores reuse x/imm, which
// fusion only allows when the primary leaves them free.
type cinstr struct {
	op, op2    copcode
	d, a, b    int32
	d2, a2, b2 int32
	imm        int64
	x          uint64
}

// slowOp is the escape hatch for rare, pre-decided outcomes (static
// out-of-bounds traps with the walk engine's exact report, unknown opcodes).
type slowOp func(en *cvm, fr *cframe)

// lowModule is a module lowered for the compiled engine.
type lowModule struct {
	m     *ir.Module
	funcs []*lowFunc
}

// lowFunc is one function's flat form.
type lowFunc struct {
	fn         int
	f          *ir.Function
	blocks     []lowBlock
	numRegs    int
	stackWords int
	pool       []uint64 // operand overflow: {slot.Off, slot.Size} pairs
	slow       []slowOp
}

// lowBlock is one basic block: segments of straight-line cinstrs separated
// by control instructions (calls, throws), plus the lowered terminator.
type lowBlock struct {
	off  uint64 // static byte offset (overridden by runtime BlockOffsets)
	size uint64
	live uint64
	segs []lowSeg
	// plain holds the ops of a block whose only segment is straight-line —
	// the common shape — letting exec skip the segment scaffolding.
	plain []cinstr
	term  lowTerm
}

// segKind says how a segment ends.
type segKind uint8

const (
	segPlain segKind = iota // falls through to the next segment / terminator
	segCall                 // ends in a call (possibly an invoke)
	segThrow                // ends in a throw
)

// lowSeg is a run of straight-line cinstrs with at most one trailing
// control instruction, which the block driver handles directly.
type lowSeg struct {
	ops   []cinstr
	kind  segKind
	call  lowCall
	throw int32 // exception value register (segThrow)
}

// lowCall is a pre-decoded call site.
type lowCall struct {
	callee  int
	dst     int32    // result register, -1 for none
	args    []int32  // caller-frame argument registers
	pcOff   mem.Addr // call-site offset within the block (slot index × 5)
	handler int32    // invoke handler block, -1 for none
}

// lowTerm is a pre-decoded terminator. When fused is not OpNop, the block's
// trailing comparison has been folded into the branch (the compare+branch
// superinstruction): the driver evaluates it, writes cmpDst (successor
// blocks may read it), and branches on the result without a dispatch.
type lowTerm struct {
	kind    ir.TermKind
	cond    int32
	then    int32
	els     int32
	val     int32 // return value register, -1 for none
	encSize uint64

	fused              ir.Op
	cmpDst, cmpA, cmpB int32
}

// Lowered modules are cached and shared across runs; the cache is bounded
// so pathological module churn (fuzzing) cannot accumulate memory.
var (
	lowerMu    sync.Mutex
	lowerCache = map[*ir.Module]*lowModule{}
)

const lowerCacheCap = 256

// lowered returns the module's flat form, lowering it on first use. Modules
// are immutable after compilation (see experiment.Compiled), which is what
// makes the cache sound.
func lowered(m *ir.Module) *lowModule {
	lowerMu.Lock()
	lm := lowerCache[m]
	lowerMu.Unlock()
	if lm != nil {
		return lm
	}
	lm = lowerModule(m)
	lowerMu.Lock()
	if prev := lowerCache[m]; prev != nil {
		lm = prev // another worker lowered it concurrently; share theirs
	} else {
		if len(lowerCache) >= lowerCacheCap {
			clear(lowerCache)
		}
		lowerCache[m] = lm
	}
	lowerMu.Unlock()
	return lm
}

func lowerModule(m *ir.Module) *lowModule {
	lm := &lowModule{m: m, funcs: make([]*lowFunc, len(m.Funcs))}
	for fi, f := range m.Funcs {
		lm.funcs[fi] = lowerFunc(m, f, fi)
	}
	return lm
}

func lowerFunc(m *ir.Module, f *ir.Function, fnIdx int) *lowFunc {
	lf := &lowFunc{
		fn:         fnIdx,
		f:          f,
		blocks:     make([]lowBlock, len(f.Blocks)),
		numRegs:    f.NumRegs,
		stackWords: int((f.FrameSize - 16) / 8),
	}
	sb := cloneBlocks(f)
	propagateCopies(f, sb)
	liveIn := liveness(f, sb)
	if coalesceCopies(f, sb, liveIn) {
		// Registers were renamed; the live-in sets for dead-code elimination
		// must be recomputed over the rewritten blocks.
		liveIn = liveness(f, sb)
	}
	deadCode(f, sb, liveIn)
	for bi, b := range f.Blocks {
		lf.blocks[bi] = lf.lowerBlock(m, f, fnIdx, b, &sb[bi])
	}
	return lf
}

// scratchBlock is a mutable copy of one block the register passes work on.
// The original *ir.Module is shared with the walk engine and never touched.
type scratchBlock struct {
	instrs []ir.Instr
	term   ir.Terminator
}

func cloneBlocks(f *ir.Function) []scratchBlock {
	out := make([]scratchBlock, len(f.Blocks))
	for bi, b := range f.Blocks {
		instrs := make([]ir.Instr, len(b.Instrs))
		copy(instrs, b.Instrs)
		for i := range instrs {
			if len(instrs[i].Args) > 0 {
				args := make([]ir.Reg, len(instrs[i].Args))
				copy(args, instrs[i].Args)
				instrs[i].Args = args
			}
		}
		out[bi] = scratchBlock{instrs: instrs, term: b.Term}
	}
	return out
}

// instrReads calls fn for every register the instruction reads. Note the
// two IR quirks: stores read their value from B except heap stores, which
// read it from Dst; and an unknown opcode reads nothing (it can only abort
// the run, so register state at that point is unobservable).
func instrReads(in *ir.Instr, fn func(ir.Reg)) {
	switch in.Op {
	case ir.OpMov, ir.OpI2F, ir.OpF2I, ir.OpFree, ir.OpThrow, ir.OpSink, ir.OpSinkF:
		fn(in.A)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpCmpEQ, ir.OpCmpLT, ir.OpCmpLE, ir.OpFCmpLT:
		fn(in.A)
		fn(in.B)
	case ir.OpLoadG, ir.OpLoadGF, ir.OpLoadS, ir.OpLoadSF:
		if in.A != ir.NoReg {
			fn(in.A)
		}
	case ir.OpStoreG, ir.OpStoreGF, ir.OpStoreS, ir.OpStoreSF:
		if in.A != ir.NoReg {
			fn(in.A)
		}
		fn(in.B)
	case ir.OpLoadH, ir.OpLoadHF:
		fn(in.A)
		if in.B != ir.NoReg {
			fn(in.B)
		}
	case ir.OpStoreH, ir.OpStoreHF:
		fn(in.A)
		if in.B != ir.NoReg {
			fn(in.B)
		}
		fn(in.Dst) // the value register rides in Dst for heap stores
	case ir.OpCall:
		for _, a := range in.Args {
			fn(a)
		}
	}
}

// instrDef returns the register the instruction writes, or NoReg. Heap
// stores do not define Dst — they read it (see instrReads).
func instrDef(in *ir.Instr) ir.Reg {
	switch in.Op {
	case ir.OpConstI, ir.OpConstF, ir.OpMov,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpCmpEQ, ir.OpCmpLT, ir.OpCmpLE, ir.OpFCmpLT,
		ir.OpI2F, ir.OpF2I,
		ir.OpLoadG, ir.OpLoadGF, ir.OpLoadS, ir.OpLoadSF,
		ir.OpLoadH, ir.OpLoadHF,
		ir.OpAlloc, ir.OpCall:
		return in.Dst
	}
	return ir.NoReg
}

// renameReads rewrites every register read through the current copy table.
func renameReads(in *ir.Instr, val []ir.Reg) {
	switch in.Op {
	case ir.OpMov, ir.OpI2F, ir.OpF2I, ir.OpFree, ir.OpThrow, ir.OpSink, ir.OpSinkF:
		in.A = val[in.A]
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpCmpEQ, ir.OpCmpLT, ir.OpCmpLE, ir.OpFCmpLT:
		in.A = val[in.A]
		in.B = val[in.B]
	case ir.OpLoadG, ir.OpLoadGF, ir.OpLoadS, ir.OpLoadSF:
		if in.A != ir.NoReg {
			in.A = val[in.A]
		}
	case ir.OpStoreG, ir.OpStoreGF, ir.OpStoreS, ir.OpStoreSF:
		if in.A != ir.NoReg {
			in.A = val[in.A]
		}
		in.B = val[in.B]
	case ir.OpLoadH, ir.OpLoadHF:
		in.A = val[in.A]
		if in.B != ir.NoReg {
			in.B = val[in.B]
		}
	case ir.OpStoreH, ir.OpStoreHF:
		in.A = val[in.A]
		if in.B != ir.NoReg {
			in.B = val[in.B]
		}
		in.Dst = val[in.Dst]
	case ir.OpCall:
		for i, a := range in.Args {
			in.Args[i] = val[a]
		}
	}
}

// propagateCopies renames reads through still-valid Mov copies, block by
// block. val[r] is the register that provably holds the same value as r
// right now (identity by default). The Movs themselves are kept — deadCode
// removes the ones whose results no longer have readers — so a register
// whose copy relation is invalidated by a later write to the source still
// holds the correct value at run time.
func propagateCopies(f *ir.Function, blocks []scratchBlock) {
	val := make([]ir.Reg, f.NumRegs)
	kill := func(d ir.Reg) {
		// A write to d invalidates both directions of every copy relation
		// involving d: registers that aliased d, and — when d was itself a
		// Mov destination later redefined by a non-Mov op — d's own mapping
		// to the Mov source, which now holds a different value.
		val[d] = d
		for i := range val {
			if val[i] == d {
				val[i] = ir.Reg(i)
			}
		}
	}
	for bi := range blocks {
		sb := &blocks[bi]
		for i := range val {
			val[i] = ir.Reg(i)
		}
		for ii := range sb.instrs {
			in := &sb.instrs[ii]
			if in.Op == ir.OpNop {
				continue
			}
			renameReads(in, val)
			if in.Op == ir.OpMov {
				src, d := in.A, in.Dst
				kill(d)
				if src != d {
					val[d] = src
				}
				continue
			}
			if d := instrDef(in); d != ir.NoReg {
				kill(d)
			}
		}
		if sb.term.Kind == ir.TermBr && sb.term.Cond != ir.NoReg {
			sb.term.Cond = val[sb.term.Cond]
		}
		if sb.term.Kind == ir.TermRet && sb.term.Val != ir.NoReg {
			sb.term.Val = val[sb.term.Val]
		}
	}
}

// bitset is a dense register set for the liveness pass.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) get(i ir.Reg) bool { return s[uint(i)/64]&(1<<(uint(i)%64)) != 0 }
func (s bitset) set(i ir.Reg)      { s[uint(i)/64] |= 1 << (uint(i) % 64) }
func (s bitset) clr(i ir.Reg)      { s[uint(i)/64] &^= 1 << (uint(i) % 64) }

func (s bitset) clearAll() { clear(s) }

// or merges t into s and reports whether s changed.
func (s bitset) or(t bitset) bool {
	changed := false
	for i, w := range t {
		if s[i]|w != s[i] {
			s[i] |= w
			changed = true
		}
	}
	return changed
}

// termLiveOut seeds live with everything live at the end of the block: the
// union of the successors' live-in sets plus the terminator's own reads.
func termLiveOut(t *ir.Terminator, live bitset, liveIn []bitset) {
	switch t.Kind {
	case ir.TermJmp:
		live.or(liveIn[t.Then])
	case ir.TermBr:
		live.or(liveIn[t.Then])
		live.or(liveIn[t.Else])
		if t.Cond != ir.NoReg {
			live.set(t.Cond)
		}
	case ir.TermRet:
		if t.Val != ir.NoReg {
			live.set(t.Val)
		}
	}
}

// blockTransfer runs the backward liveness transfer over one block's
// instructions, mutating live in place. An invoke (call with a handler) is
// a mid-block exit: the handler's live-in joins at the call site, so values
// the handler reads stay live across the instructions before the call.
func blockTransfer(sb *scratchBlock, live bitset, liveIn []bitset) {
	for ii := len(sb.instrs) - 1; ii >= 0; ii-- {
		in := &sb.instrs[ii]
		if in.Op == ir.OpNop {
			continue
		}
		if d := instrDef(in); d != ir.NoReg {
			live.clr(d)
		}
		if in.Op == ir.OpCall && in.Imm != 0 {
			if h := int(in.Imm) - 1; h >= 0 && h < len(liveIn) {
				live.or(liveIn[h])
			}
		}
		instrReads(in, func(r ir.Reg) { live.set(r) })
	}
}

// liveness computes per-block live-in sets by iterating the backward
// transfer to a fixpoint.
func liveness(f *ir.Function, blocks []scratchBlock) []bitset {
	liveIn := make([]bitset, len(blocks))
	for i := range liveIn {
		liveIn[i] = newBitset(f.NumRegs)
	}
	tmp := newBitset(f.NumRegs)
	for changed := true; changed; {
		changed = false
		for bi := len(blocks) - 1; bi >= 0; bi-- {
			sb := &blocks[bi]
			tmp.clearAll()
			termLiveOut(&sb.term, tmp, liveIn)
			blockTransfer(sb, tmp, liveIn)
			if liveIn[bi].or(tmp) {
				changed = true
			}
		}
	}
	return liveIn
}

// coalesceMaxRegs bounds the interference matrix (n² bits); functions with
// more registers skip coalescing rather than pay quadratic memory.
const coalesceMaxRegs = 2048

// coalesceCopies merges copy-related registers that never simultaneously
// hold different live values — classic Chaitin-style copy coalescing over an
// interference graph. The Movs that remain after per-block copy propagation
// are almost all loop-carried shuffles (mov i, i_next at the bottom of a
// loop body), which propagateCopies cannot touch because the relation spans
// blocks. Coalescing the two sides into one register turns those Movs into
// self-copies, which are dropped outright.
//
// Soundness: registers are invisible to every observer the engines are
// pinned on, a Mov charges no machine cost and records no event, and
// steps/Retire accounting uses the original block's Live count — so a
// removed self-copy changes nothing any digest, Observer snapshot, or trap
// can see. The interference graph is built with the same conservative
// liveness as blockTransfer (invoke handlers join mid-block), and a def adds
// edges whether or not its result is live, so a later clobber of either
// register forbids the merge.
//
// Argument registers keep their indices — call() writes arguments into
// registers 0..Params-1 of the callee frame — so a class containing a param
// is represented by that param, and two params never merge.
func coalesceCopies(f *ir.Function, blocks []scratchBlock, liveIn []bitset) bool {
	n := f.NumRegs
	if n == 0 || n > coalesceMaxRegs {
		return false
	}
	itf := make([]bitset, n)
	for i := range itf {
		itf[i] = newBitset(n)
	}
	live := newBitset(n)
	// addEdges marks d as interfering with everything currently live except
	// itself and (for a Mov) its source, which holds the same value.
	addEdges := func(d, src ir.Reg) {
		for i, w := range live {
			for w != 0 {
				r := ir.Reg(i*64 + bits.TrailingZeros64(w))
				w &= w - 1
				if r != d && r != src {
					itf[d].set(r)
					itf[r].set(d)
				}
			}
		}
	}
	for bi := range blocks {
		sb := &blocks[bi]
		live.clearAll()
		termLiveOut(&sb.term, live, liveIn)
		for ii := len(sb.instrs) - 1; ii >= 0; ii-- {
			in := &sb.instrs[ii]
			if in.Op == ir.OpNop {
				continue
			}
			if in.Op == ir.OpCall && in.Imm != 0 {
				// The handler's live-in is live across the call on the
				// exception path; folding it in before the def's edges keeps
				// the graph conservative.
				if h := int(in.Imm) - 1; h >= 0 && h < len(liveIn) {
					live.or(liveIn[h])
				}
			}
			if d := instrDef(in); d != ir.NoReg {
				src := ir.NoReg
				if in.Op == ir.OpMov {
					src = in.A
				}
				addEdges(d, src)
				live.clr(d)
			}
			instrReads(in, func(r ir.Reg) { live.set(r) })
		}
	}
	// Params are defined at entry by call() with the argument values — which
	// persist in their slots even when the param itself is dead, unlike
	// ordinary registers, which read as zero until first written. A register
	// that is live-in at entry (read before any def, i.e. its value is that
	// implicit zero) must therefore never share a slot with a param.
	if len(blocks) > 0 {
		live.clearAll()
		live.or(liveIn[0])
		for p := 0; p < f.Params; p++ {
			addEdges(ir.Reg(p), ir.NoReg)
		}
	}

	// Union-find over registers; path-halving find. Merge order is program
	// order of the Movs, so lowering stays deterministic.
	rep := make([]ir.Reg, n)
	for i := range rep {
		rep[i] = ir.Reg(i)
	}
	find := func(r ir.Reg) ir.Reg {
		for rep[r] != r {
			rep[r] = rep[rep[r]]
			r = rep[r]
		}
		return r
	}
	isParam := func(r ir.Reg) bool { return int(r) < f.Params }
	changed := false
	for bi := range blocks {
		for ii := range blocks[bi].instrs {
			in := &blocks[bi].instrs[ii]
			if in.Op != ir.OpMov {
				continue
			}
			ra, rb := find(in.Dst), find(in.A)
			if ra == rb {
				changed = true // already one class: the Mov nops in rewrite
				continue
			}
			if (isParam(ra) && isParam(rb)) || itf[ra].get(rb) {
				continue
			}
			// Keep a param — else the smaller index — as representative.
			if isParam(rb) || (!isParam(ra) && rb < ra) {
				ra, rb = rb, ra
			}
			rep[rb] = ra
			itf[ra].or(itf[rb])
			// Mirror rb's edges onto ra to keep the matrix symmetric for
			// later union tests.
			for i, w := range itf[rb] {
				for w != 0 {
					r := ir.Reg(i*64 + bits.TrailingZeros64(w))
					w &= w - 1
					itf[r].set(ra)
				}
			}
			changed = true
		}
	}
	if !changed {
		return false
	}

	// Rewrite every operand through its class representative; Movs whose two
	// sides landed in one class become self-copies and are dropped.
	table := make([]ir.Reg, n)
	for i := range table {
		table[i] = find(ir.Reg(i))
	}
	for bi := range blocks {
		sb := &blocks[bi]
		for ii := range sb.instrs {
			in := &sb.instrs[ii]
			if in.Op == ir.OpNop {
				continue
			}
			renameReads(in, table)
			if d := instrDef(in); d != ir.NoReg {
				in.Dst = table[d]
			}
			if in.Op == ir.OpMov && in.Dst == in.A {
				in.Op = ir.OpNop
			}
		}
		if sb.term.Kind == ir.TermBr && sb.term.Cond != ir.NoReg {
			sb.term.Cond = table[sb.term.Cond]
		}
		if sb.term.Kind == ir.TermRet && sb.term.Val != ir.NoReg {
			sb.term.Val = table[sb.term.Val]
		}
	}
	return true
}

// deletable reports whether the op may be removed when its result is dead:
// it must charge no machine cost (no Stall, no memory access, no Retire
// beyond the block-granular count, which never looks at the lowered
// stream), never trap, and record no event. Note Mul/Div/Rem, the float
// multiplies/divides, and the conversions all Stall and so must stay.
func deletable(o ir.Op) bool {
	switch o {
	case ir.OpConstI, ir.OpConstF, ir.OpMov,
		ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpFAdd, ir.OpFSub,
		ir.OpCmpEQ, ir.OpCmpLT, ir.OpCmpLE, ir.OpFCmpLT:
		return true
	}
	return false
}

// deadCode removes charge-free register ops whose results are never read —
// mostly the Movs that propagateCopies just renamed every reader away from.
// Deleted ops become Nops so instruction indices (which call-site PC
// offsets are derived from) stay stable.
func deadCode(f *ir.Function, blocks []scratchBlock, liveIn []bitset) {
	live := newBitset(f.NumRegs)
	for bi := range blocks {
		sb := &blocks[bi]
		live.clearAll()
		termLiveOut(&sb.term, live, liveIn)
		for ii := len(sb.instrs) - 1; ii >= 0; ii-- {
			in := &sb.instrs[ii]
			if in.Op == ir.OpNop {
				continue
			}
			if deletable(in.Op) && in.Dst != ir.NoReg && !live.get(in.Dst) {
				in.Op = ir.OpNop
				continue
			}
			if d := instrDef(in); d != ir.NoReg {
				live.clr(d)
			}
			if in.Op == ir.OpCall && in.Imm != 0 {
				if h := int(in.Imm) - 1; h >= 0 && h < len(liveIn) {
					live.or(liveIn[h])
				}
			}
			instrReads(in, func(r ir.Reg) { live.set(r) })
		}
	}
}

func isCmp(o ir.Op) bool {
	switch o {
	case ir.OpCmpEQ, ir.OpCmpLT, ir.OpCmpLE, ir.OpFCmpLT:
		return true
	}
	return false
}

// lastLiveIdx returns the index of the block's last non-nop instruction.
func lastLiveIdx(instrs []ir.Instr) int {
	for i := len(instrs) - 1; i >= 0; i-- {
		if instrs[i].Op != ir.OpNop {
			return i
		}
	}
	return -1
}

func (lf *lowFunc) lowerBlock(m *ir.Module, f *ir.Function, fnIdx int, b *ir.Block, sb *scratchBlock) lowBlock {
	lb := lowBlock{off: b.Off, size: b.Size, live: b.Live}
	lt := lowTerm{
		kind:    sb.term.Kind,
		cond:    int32(sb.term.Cond),
		then:    int32(sb.term.Then),
		els:     int32(sb.term.Else),
		val:     int32(sb.term.Val),
		encSize: b.Term.EncodedSize(),
		fused:   ir.OpNop,
	}

	// Compare+branch superinstruction: a trailing comparison that feeds the
	// conditional terminator folds into it. The comparison's register write
	// is kept (a successor block may read it); only the dispatch is saved.
	consumed := -1
	if sb.term.Kind == ir.TermBr {
		if li := lastLiveIdx(sb.instrs); li >= 0 {
			in := &sb.instrs[li]
			if isCmp(in.Op) && in.Dst == sb.term.Cond {
				lt.fused = in.Op
				lt.cmpDst, lt.cmpA, lt.cmpB = int32(in.Dst), int32(in.A), int32(in.B)
				consumed = li
			}
		}
	}

	var cur lowSeg
	endSeg := func(kind segKind) {
		cur.kind = kind
		cur.ops = fuseOps(cur.ops)
		lb.segs = append(lb.segs, cur)
		cur = lowSeg{}
	}
	for idx := range sb.instrs {
		in := &sb.instrs[idx]
		if in.Op == ir.OpNop || idx == consumed {
			continue
		}
		switch in.Op {
		case ir.OpCall:
			args := make([]int32, len(in.Args))
			for i, a := range in.Args {
				args[i] = int32(a)
			}
			cur.call = lowCall{
				callee:  int(in.Sym),
				dst:     int32(in.Dst),
				args:    args,
				pcOff:   mem.Addr(idx) * 5, // slot index over all slots, as the walk engine counts
				handler: int32(in.Imm) - 1,
			}
			endSeg(segCall)
		case ir.OpThrow:
			cur.throw = int32(in.A)
			endSeg(segThrow)
		default:
			cur.ops = append(cur.ops, lf.emit(m, f, in))
		}
	}
	if len(cur.ops) > 0 {
		endSeg(segPlain)
	}
	if len(lb.segs) == 1 && lb.segs[0].kind == segPlain {
		lb.plain = lb.segs[0].ops
	}
	lb.term = lt
	return lb
}

// emit pre-decodes one straight-line instruction. The runOps bodies these
// opcodes select mirror the walk engine's switch arms exactly — same
// machine charges in the same order, same recorder events, same trap kinds
// and messages — with operand decoding and statically resolvable address
// arithmetic done here instead of per execution.
func (lf *lowFunc) emit(m *ir.Module, f *ir.Function, in *ir.Instr) cinstr {
	d, a, b := int32(in.Dst), int32(in.A), int32(in.B)
	imm := in.Imm
	switch in.Op {
	case ir.OpConstI, ir.OpConstF:
		return cinstr{op: copConstI, d: d, x: uint64(imm)}
	case ir.OpMov:
		return cinstr{op: copMov, d: d, a: a}
	case ir.OpAdd:
		return cinstr{op: copAdd, d: d, a: a, b: b}
	case ir.OpSub:
		return cinstr{op: copSub, d: d, a: a, b: b}
	case ir.OpMul:
		return cinstr{op: copMul, d: d, a: a, b: b}
	case ir.OpDiv:
		return cinstr{op: copDiv, d: d, a: a, b: b}
	case ir.OpRem:
		return cinstr{op: copRem, d: d, a: a, b: b}
	case ir.OpAnd:
		return cinstr{op: copAnd, d: d, a: a, b: b}
	case ir.OpOr:
		return cinstr{op: copOr, d: d, a: a, b: b}
	case ir.OpXor:
		return cinstr{op: copXor, d: d, a: a, b: b}
	case ir.OpShl:
		return cinstr{op: copShl, d: d, a: a, b: b}
	case ir.OpShr:
		return cinstr{op: copShr, d: d, a: a, b: b}
	case ir.OpFAdd:
		return cinstr{op: copFAdd, d: d, a: a, b: b}
	case ir.OpFSub:
		return cinstr{op: copFSub, d: d, a: a, b: b}
	case ir.OpFMul:
		return cinstr{op: copFMul, d: d, a: a, b: b}
	case ir.OpFDiv:
		return cinstr{op: copFDiv, d: d, a: a, b: b}
	case ir.OpCmpEQ:
		return cinstr{op: copCmpEQ, d: d, a: a, b: b}
	case ir.OpCmpLT:
		return cinstr{op: copCmpLT, d: d, a: a, b: b}
	case ir.OpCmpLE:
		return cinstr{op: copCmpLE, d: d, a: a, b: b}
	case ir.OpFCmpLT:
		return cinstr{op: copFCmpLT, d: d, a: a, b: b}
	case ir.OpI2F:
		return cinstr{op: copI2F, d: d, a: a}
	case ir.OpF2I:
		return cinstr{op: copF2I, d: d, a: a}

	case ir.OpLoadG, ir.OpLoadGF, ir.OpStoreG, ir.OpStoreGF:
		return lf.emitGlobal(m, in)
	case ir.OpLoadS, ir.OpLoadSF, ir.OpStoreS, ir.OpStoreSF:
		return lf.emitStack(f, in)

	case ir.OpLoadH:
		return cinstr{op: copLoadH, d: d, a: a, b: b, imm: imm}
	case ir.OpLoadHF:
		return cinstr{op: copLoadHF, d: d, a: a, b: b, imm: imm}
	case ir.OpStoreH:
		return cinstr{op: copStoreH, d: d, a: a, b: b, imm: imm}
	case ir.OpStoreHF:
		return cinstr{op: copStoreHF, d: d, a: a, b: b, imm: imm}

	case ir.OpAlloc:
		return cinstr{op: copAlloc, d: d, x: uint64(imm)}
	case ir.OpFree:
		return cinstr{op: copFree, a: a}
	case ir.OpSink:
		return cinstr{op: copSink, a: a}
	case ir.OpSinkF:
		return cinstr{op: copSinkF, a: a}
	}

	// Unknown opcode: fail at execution time with the walk engine's error,
	// not at lowering time — an unreachable bad instruction must not break
	// a program that never executes it.
	fname, op := f.Name, in.Op
	return lf.emitSlow(func(en *cvm, fr *cframe) {
		en.failf("%s: unimplemented opcode %v", fname, op)
	})
}

func (lf *lowFunc) emitSlow(fn slowOp) cinstr {
	lf.slow = append(lf.slow, fn)
	return cinstr{op: copSlow, x: uint64(len(lf.slow) - 1)}
}

// emitGlobal pre-decodes a global access. With a static offset the bounds
// check — against the global's fixed word count — resolves at lowering
// time: in-bounds sites skip it entirely, out-of-bounds sites lower to an
// unconditional trap with the walk engine's exact report.
func (lf *lowFunc) emitGlobal(m *ir.Module, in *ir.Instr) cinstr {
	g := int32(in.Sym)
	words := int64(m.Globals[g].Size / 8)
	isFloat := in.Op.IsFloat()
	store := in.Op.IsStore()

	if in.A == ir.NoReg {
		byteOff := in.Imm
		if w := byteOff / 8; byteOff < 0 || w >= words || byteOff%8 != 0 {
			gname := m.Globals[g].Name
			return lf.emitSlow(func(en *cvm, fr *cframe) {
				en.trap(trap.OutOfBounds, "global %s access at byte %d outside %d bytes",
					gname, byteOff, words*8)
			})
		}
		op := copLoadG
		switch {
		case store && isFloat:
			op = copStoreGF
		case store:
			op = copStoreG
		case isFloat:
			op = copLoadGF
		}
		return cinstr{op: op, d: int32(in.Dst), a: g, b: int32(in.B), x: uint64(byteOff)}
	}

	op := copLoadGD
	switch {
	case store && isFloat:
		op = copStoreGFD
	case store:
		op = copStoreGD
	case isFloat:
		op = copLoadGFD
	}
	return cinstr{op: op, d: int32(in.Dst), a: int32(in.A), b: int32(in.B),
		b2: g, imm: in.Imm, x: uint64(words)}
}

// emitStack pre-decodes a frame access. Slot offset and size are fixed by
// Finalize, so with a static index both the bounds check and the in-frame
// word index resolve at lowering time; only the frame base is per-call.
// Dynamic-index sites park {slot.Off, slot.Size} in the function's operand
// pool (they need two full words, which a cinstr has no room for).
func (lf *lowFunc) emitStack(f *ir.Function, in *ir.Instr) cinstr {
	sym := int32(in.Sym)
	slot := f.Slots[sym]
	isFloat := in.Op.IsFloat()
	store := in.Op.IsStore()

	if in.A == ir.NoReg {
		byteOff := in.Imm
		if byteOff < 0 || uint64(byteOff) >= slot.Size || byteOff%8 != 0 {
			fname, slotName, slotSize := f.Name, slot.Name, slot.Size
			return lf.emitSlow(func(en *cvm, fr *cframe) {
				en.trap(trap.OutOfBounds, "%s: stack slot %s access at byte %d outside %d bytes",
					fname, slotName, byteOff, slotSize)
			})
		}
		addrOff := slot.Off + uint64(byteOff)
		op := copLoadS
		switch {
		case store && isFloat:
			op = copStoreSF
		case store:
			op = copStoreS
		case isFloat:
			op = copLoadSF
		}
		return cinstr{op: op, d: int32(in.Dst), a: sym, b: int32(in.B),
			imm: byteOff, x: addrOff}
	}

	pi := uint64(len(lf.pool))
	lf.pool = append(lf.pool, slot.Off, slot.Size)
	op := copLoadSD
	switch {
	case store && isFloat:
		op = copStoreSFD
	case store:
		op = copStoreSD
	case isFloat:
		op = copLoadSFD
	}
	return cinstr{op: op, d: int32(in.Dst), a: int32(in.A), b: int32(in.B),
		b2: sym, imm: in.Imm, x: pi}
}

// Field-usage masks drive superinstruction fusion: a secondary op may move
// into a primary's op2 slot only when the fields it needs (beyond d2/a2/b2,
// which are secondary-only) are not used by the primary.
const (
	fmX     uint8 = 1 << iota // uses x
	fmImm                     // uses imm
	fmRegs2                   // uses d2/a2/b2 (dynamic-index ops)
	fmNever                   // never hosts a secondary
)

func fieldmask(op copcode) uint8 {
	switch op {
	case copConstI, copLoadG, copLoadGF, copStoreG, copStoreGF, copAlloc:
		return fmX
	case copLoadS, copLoadSF:
		return fmX // imm is carried but unused by loads
	case copStoreS, copStoreSF:
		return fmX | fmImm
	case copLoadGD, copLoadGFD, copStoreGD, copStoreGFD,
		copLoadSD, copLoadSFD, copStoreSD, copStoreSFD:
		return fmX | fmImm | fmRegs2
	case copLoadH, copLoadHF, copStoreH, copStoreHF:
		return fmImm
	case copSlow:
		return fmNever | fmX | fmImm | fmRegs2
	}
	return 0 // pure register ops
}

// secNeeds returns the fields a fused secondary occupies, and whether the
// opcode can ride in an op2 slot at all. All secondaries take d2/a2/b2;
// secondary stores additionally reuse x and/or imm.
func secNeeds(op copcode) (uint8, bool) {
	switch op {
	case copMov, copAdd, copSub, copMul, copDiv, copRem,
		copAnd, copOr, copXor, copShl, copShr,
		copFAdd, copFSub, copFMul, copFDiv,
		copCmpEQ, copCmpLT, copCmpLE, copFCmpLT, copI2F, copF2I,
		copSink, copSinkF, copFree:
		return fmRegs2, true
	case copConstI:
		return fmRegs2 | fmX, true
	case copLoadS, copLoadSF:
		return fmRegs2 | fmX, true
	case copStoreS, copStoreSF:
		return fmRegs2 | fmX | fmImm, true
	case copLoadG, copLoadGF, copStoreG, copStoreGF:
		return fmRegs2 | fmX, true
	case copLoadH, copLoadHF:
		return fmRegs2 | fmImm, true
	case copStoreH, copStoreHF:
		return fmRegs2 | fmImm, true
	}
	return 0, false
}

// fuseOps folds eligible adjacent pairs into one cinstr (the load+op,
// op+op, and op+store superinstructions). The secondary executes
// immediately after the primary in runOps, so every machine charge,
// recorder event, and trap fires in exactly the original order; only the
// dispatch round is saved. If the primary traps, the secondary never runs —
// just as the unfused second op never would have.
func fuseOps(code []cinstr) []cinstr {
	out := code[:0]
	for i := 0; i < len(code); i++ {
		cur := code[i]
		if i+1 < len(code) && cur.op2 == copNone {
			nx := &code[i+1]
			if needs, ok := secNeeds(nx.op); ok && fieldmask(cur.op)&(needs|fmNever) == 0 {
				cur.op2 = nx.op
				switch nx.op {
				case copConstI:
					cur.d2, cur.x = nx.d, nx.x
				case copLoadS, copLoadSF:
					cur.d2, cur.x = nx.d, nx.x
				case copStoreS, copStoreSF:
					cur.d2, cur.a2 = nx.b, nx.a // value, slot symbol
					cur.x, cur.imm = nx.x, nx.imm
				case copLoadG, copLoadGF:
					cur.d2, cur.a2 = nx.d, nx.a // dest, global
					cur.x = nx.x
				case copStoreG, copStoreGF:
					cur.d2, cur.a2 = nx.b, nx.a // value, global
					cur.x = nx.x
				case copLoadH, copLoadHF:
					cur.d2, cur.a2, cur.b2 = nx.d, nx.a, nx.b // dest, pointer, index
					cur.imm = nx.imm
				case copStoreH, copStoreHF:
					cur.d2, cur.a2, cur.b2 = nx.d, nx.a, nx.b // value, pointer, index
					cur.imm = nx.imm
				default: // register ALU, sink, free
					cur.d2, cur.a2, cur.b2 = nx.d, nx.a, nx.b
				}
				i++
			}
		}
		out = append(out, cur)
	}
	return out
}
