package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
)

// A Checkpoint persists completed cells of a sweep as schema-versioned
// JSON files so an interrupted campaign can resume without re-running
// finished work. Determinism is what makes this sound: a cell is keyed by
// its full configuration fingerprint (benchmark, scale, level, stabilizer
// options, link order, env, noise, budget, runs, seed base), and the same
// key always re-collects to the same samples — so replaying stored
// results is indistinguishable from re-running them, and the final
// artifacts of a resumed sweep are byte-identical to an uninterrupted
// one. Carried through sweeps via context (WithCheckpoint), so every
// Collect-based cell checkpoints without touching sweep signatures.

// CheckpointSchema versions the cell-file layout; files with another
// schema are ignored (treated as a miss) rather than trusted.
const CheckpointSchema = 1

// cellFile is the on-disk form of one completed cell.
type cellFile struct {
	Schema   int         `json:"schema"`
	Key      string      `json:"key"`
	Runs     int         `json:"runs"`
	SeedBase uint64      `json:"seed_base"`
	Results  []RunResult `json:"results"`
}

// Checkpoint is a directory of completed-cell files. Methods are safe for
// concurrent use by pool workers.
type Checkpoint struct {
	dir    string
	mu     sync.Mutex
	stored int
	reused int
}

// OpenCheckpoint opens (creating if needed) a checkpoint directory.
func OpenCheckpoint(dir string) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: checkpoint dir: %w", err)
	}
	return &Checkpoint{dir: dir}, nil
}

// Dir returns the checkpoint directory.
func (cp *Checkpoint) Dir() string { return cp.dir }

// cellPath maps a cell key to its file. The name hashes the key; the key
// itself is stored inside the file and verified on lookup, so a hash
// collision degrades to a miss, never to wrong data.
func (cp *Checkpoint) cellPath(key string) string {
	h := fnv.New64a()
	io.WriteString(h, key)
	return filepath.Join(cp.dir, fmt.Sprintf("cell-%016x.json", h.Sum64()))
}

// Lookup returns the stored results for a cell, or nil when absent.
// Unreadable, corrupt, or mismatched files are a miss with a warning, not
// an error: re-collection is deterministic, so dropping a bad file is
// always safe.
func (cp *Checkpoint) Lookup(key string, runs int, seedBase uint64) []RunResult {
	done := obsTrace().Span("checkpoint", "lookup", nil)
	defer done()
	path := cp.cellPath(key)
	buf, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			warnf("experiment: checkpoint: %v (cell will re-run)", err)
		}
		obsMetrics().Counter("checkpoint.lookup.misses").Inc()
		return nil
	}
	obsMetrics().Counter("checkpoint.read_bytes").Add(uint64(len(buf)))
	var f cellFile
	miss := func() []RunResult {
		obsMetrics().Counter("checkpoint.lookup.misses").Inc()
		return nil
	}
	if err := json.Unmarshal(buf, &f); err != nil {
		warnf("experiment: checkpoint: %s: corrupt cell file: %v (cell will re-run)", path, err)
		return miss()
	}
	switch {
	case f.Schema != CheckpointSchema:
		warnf("experiment: checkpoint: %s: schema %d, this build reads %d (cell will re-run)", path, f.Schema, CheckpointSchema)
		return miss()
	case f.Key != key:
		// Hash collision or stale directory from another configuration.
		return miss()
	case f.Runs != runs || f.SeedBase != seedBase || len(f.Results) != runs:
		warnf("experiment: checkpoint: %s: run range mismatch (cell will re-run)", path)
		return miss()
	}
	cp.mu.Lock()
	cp.reused++
	cp.mu.Unlock()
	obsMetrics().Counter("checkpoint.lookup.hits").Inc()
	return f.Results
}

// Store writes a completed cell atomically (temp file + rename), so a
// crash or injected fault mid-write can never leave a truncated cell
// behind — the file either has the old complete contents or the new.
func (cp *Checkpoint) Store(ctx context.Context, key string, runs int, seedBase uint64, results []RunResult) (err error) {
	done := obsTrace().Span("checkpoint", "store", nil)
	defer done()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment: checkpoint store panicked: %v", r)
		}
	}()
	if err := faultinject.Hit(ctx, faultinject.SiteCheckpointStore); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(&cellFile{
		Schema:   CheckpointSchema,
		Key:      key,
		Runs:     runs,
		SeedBase: seedBase,
		Results:  results,
	}, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	tmp, err := os.CreateTemp(cp.dir, "cell-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), cp.cellPath(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	cp.mu.Lock()
	cp.stored++
	cp.mu.Unlock()
	obsMetrics().Counter("checkpoint.write_bytes").Add(uint64(len(buf)))
	return nil
}

// Stats reports how many cells this checkpoint stored and reused.
func (cp *Checkpoint) Stats() (stored, reused int) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.stored, cp.reused
}

type checkpointKeyType struct{}

var checkpointKey checkpointKeyType

// WithCheckpoint returns a context carrying cp; every Collect under that
// context reuses completed cells and flushes new ones as they finish.
func WithCheckpoint(ctx context.Context, cp *Checkpoint) context.Context {
	return context.WithValue(ctx, checkpointKey, cp)
}

// CheckpointFrom returns the checkpoint carried by ctx, or nil.
func CheckpointFrom(ctx context.Context) *Checkpoint {
	cp, _ := ctx.Value(checkpointKey).(*Checkpoint)
	return cp
}

// warnf reports a non-fatal infrastructure problem. Warnings never fail a
// sweep. With an observability scope installed (SetObs) that carries a
// logger, the warning becomes a structured JSONL line at warn level;
// otherwise it falls back to the progress writer (stderr when none is set).
func warnf(format string, args ...any) {
	warnCell("", format, args...)
}

// warnCell is warnf with a cell label attached as a structured field (and
// a plain-text prefix on the fallback path).
func warnCell(label, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if lg := obsLog(); lg != nil {
		if label != "" {
			lg.Warn(msg, obsF("cell", label))
		} else {
			lg.Warn(msg)
		}
		return
	}
	w := progressWriter()
	if w == nil {
		w = os.Stderr
	}
	if label != "" {
		fmt.Fprintf(w, "[%s] %s\n", label, msg)
	} else {
		fmt.Fprintln(w, msg)
	}
}
