// Opteval: the paper's headline use case (§6) on a subset of the suite —
// does -O3 actually beat -O2, or is the difference noise?
//
// Runs four benchmarks at -O1/-O2/-O3 under full STABILIZER randomization,
// applies per-benchmark significance tests, and a within-subjects ANOVA
// across the subset.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/experiment"
	"repro/internal/spec"
)

func main() {
	var subset []spec.Benchmark
	for _, name := range []string{"astar", "libquantum", "milc", "namd"} {
		b, ok := spec.ByName(name)
		if !ok {
			log.Fatalf("missing benchmark %s", name)
		}
		subset = append(subset, b)
	}

	res, err := experiment.Speedup(context.Background(), experiment.SpeedupOptions{
		Scale: 0.5,
		Runs:  20,
		Seed:  99,
		Suite: subset,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Figure())
	fmt.Println()
	fmt.Print(res.ANOVATable())
	fmt.Println("\nCompare with the paper's conclusion: the impact of -O3 over -O2")
	fmt.Println("is indistinguishable from random noise.")
}
