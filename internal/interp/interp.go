// Package interp executes IR programs against the simulated machine.
//
// The interpreter is the meeting point of the reproduction: program
// semantics (which are layout-independent) come from the IR; performance
// (which is layout-dependent) comes from the addresses the active Runtime
// assigns to code, stack frames, and heap objects, fed through the machine
// model. Running the same program under different Runtimes — the native
// static layout versus the STABILIZER runtime — must produce identical
// Output but different Cycles.
package interp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/trap"
)

// Runtime supplies layout and runtime services to an executing program. The
// interpreter calls it for every address decision; implementations decide
// whether layout is static (NativeRuntime) or randomized (the STABILIZER
// runtime in internal/core).
type Runtime interface {
	// CodeBase returns the address function fn's code currently starts at.
	CodeBase(fn int) mem.Addr
	// BlockOffsets returns per-block offsets (relative to CodeBase) for the
	// current copy of fn, or nil when blocks sit at their static offsets.
	// A runtime doing basic-block-granularity randomization (the paper's
	// §8 extension) returns the current copy's permutation; the interpreter
	// snapshots it together with CodeBase at activation entry, so an
	// activation keeps executing its own copy even if the function is
	// re-randomized while it sleeps on the stack.
	BlockOffsets(fn int) []uint64
	// GlobalAddr returns the address of global g.
	GlobalAddr(g int) mem.Addr
	// StackBase returns the address the stack grows down from.
	StackBase() mem.Addr
	// BeforeCall runs just before control transfers to fn. It may charge
	// runtime costs on the machine (traps, relocation, pad-table loads)
	// and returns the padding in bytes inserted below the caller's frame.
	BeforeCall(fn int) (pad uint64)
	// RelocCall returns the relocation-table slot a call from curFn to
	// callee reads, or ok=false if the call is direct.
	RelocCall(curFn, callee int) (slot mem.Addr, ok bool)
	// RelocGlobal returns the relocation-table slot an access from curFn
	// to global g reads, or ok=false if the access is absolute.
	RelocGlobal(curFn, g int) (slot mem.Addr, ok bool)
	// Alloc and Free implement the program's heap, charging their own
	// costs on the machine. Allocator misuse and exhaustion are reported
	// as *trap.TrapError values, which the interpreter stamps with the
	// retired-instruction index and surfaces as program faults.
	Alloc(size uint64) (mem.Addr, error)
	Free(addr mem.Addr) error
	// Tick runs at every block boundary so the runtime can react to the
	// passage of simulated time (re-randomization timers). stack yields
	// the return addresses currently on the simulated call stack, for the
	// code garbage collector.
	Tick(stack func() []mem.Addr)
}

// Heap pointer encoding: bit 62 tags a value as a heap pointer; bits 61..32
// hold the object handle; bits 31..0 the byte offset.
const (
	ptrTag      = uint64(1) << 62
	ptrHandleSh = 32
	ptrOffMask  = (uint64(1) << 32) - 1
)

// IsPointer reports whether a raw register value is an encoded heap pointer.
func IsPointer(v uint64) bool { return v&ptrTag != 0 }

type heapObject struct {
	addr mem.Addr
	data []uint64
	size uint64
	live bool
}

// Options configures one execution.
type Options struct {
	Machine *machine.Machine
	Runtime Runtime
	// MaxSteps bounds retired instructions (0 means the default of 1e9);
	// exceeding it aborts with a *StepBudgetError, catching runaway
	// programs.
	MaxSteps uint64
	// StackLimit bounds stack depth in bytes (default 8 MiB).
	StackLimit uint64
	// Profile enables per-function cycle attribution (Result.Profile).
	Profile bool
	// Interrupt, if non-nil, is polled every interruptStride retired
	// steps; a non-nil return aborts the run with that error. This is the
	// step-budget hook watchdogs use to stop a run whose context expired
	// without waiting for the (much larger) MaxSteps budget.
	Interrupt func() error
	// Record, if non-nil, accumulates the run's architectural digest (see
	// digest.go). A Recorder must not be reused across runs.
	Record *Recorder
	// Observer, if non-nil, receives windowed machine-counter deltas
	// attributed to the executing call stack. Windows close at every block
	// boundary and around calls, so each delta belongs to exactly one
	// function; summed over a run the deltas equal the machine's totals.
	// internal/obs.Profiler satisfies this.
	Observer Observer
	// Engine selects the execution strategy (default EngineCompiled). Both
	// engines produce identical results; EngineWalk is the differential
	// reference.
	Engine Engine
}

// Observer receives per-window machine counter deltas during execution.
// stack holds function indices, outermost first; it is reused between
// calls and must not be retained.
type Observer interface {
	ProfileWindow(stack []int, delta machine.Counters)
}

// interruptStride is how many retired steps pass between Interrupt polls:
// frequent enough that a watchdog kills a pathological run promptly,
// sparse enough that the poll is invisible in the interpreter's profile.
const interruptStride = 16384

// Result reports one execution.
type Result struct {
	Output       uint64 // order-sensitive checksum of all Sink values
	Cycles       uint64
	Instructions uint64
	Seconds      float64
	// Profile holds per-function cycle attribution when Options.Profile is
	// set: Profile[fn] is the cycles spent executing fn's own blocks
	// (exclusive of callees).
	Profile []uint64
}

// interpreter is the per-run state.
type interp struct {
	m       *ir.Module
	mach    *machine.Machine
	rt      Runtime
	opts    Options
	globals [][]uint64
	objects []heapObject
	freeObj []int // recycled handles

	sp        mem.Addr
	stackLow  mem.Addr
	output    uint64
	steps     uint64
	rec       *Recorder
	nextPoll  uint64 // step count at which Interrupt is polled next
	callStack []callRecord
	ras       []mem.Addr // modeled return-address stack (16 entries)
	profile   []uint64   // per-function exclusive cycles (nil unless profiling)
	obs       Observer
	obsLast   machine.Counters // counter state at the last observer flush
	obsStack  []int            // reusable stack buffer passed to the observer
}

// rasDepth is the modeled hardware return-address stack depth.
const rasDepth = 16

type callRecord struct {
	fn    int
	retPC mem.Addr
}

var (
	// ErrMaxSteps reports that the instruction budget was exhausted. Runs
	// actually fail with a *StepBudgetError, which matches this sentinel
	// through errors.Is while carrying the retired step count.
	ErrMaxSteps = errors.New("interp: instruction budget exhausted")
	// ErrStackOverflow reports simulated stack exhaustion.
	ErrStackOverflow = errors.New("interp: stack overflow")
)

// UncaughtError reports that an exception escaped main. It is a program
// outcome, not an infrastructure failure: the oracle treats it like a trap
// (the exit event is already folded into the digest) rather than aborting
// the differential matrix.
type UncaughtError struct {
	// Value is the exception value that escaped.
	Value uint64
}

func (e *UncaughtError) Error() string {
	return fmt.Sprintf("interp: uncaught exception with value %#x", e.Value)
}

// StepBudgetError is the structured form of ErrMaxSteps: it reports how
// many steps had retired and what the budget was when the run was cut
// off, so a pool worker's failure identifies the runaway cell precisely
// instead of surfacing a bare sentinel.
type StepBudgetError struct {
	// Steps is the retired instruction count when the budget fired.
	Steps uint64
	// Budget is the configured MaxSteps limit.
	Budget uint64
}

func (e *StepBudgetError) Error() string {
	return fmt.Sprintf("interp: instruction budget exhausted: %d steps retired (budget %d)", e.Steps, e.Budget)
}

// Is lets errors.Is(err, ErrMaxSteps) keep working for callers that only
// care that the budget fired.
func (e *StepBudgetError) Is(target error) bool { return target == ErrMaxSteps }

// Run executes module m under the given options and returns the result.
// The module must have been finalized and sized (ir.ComputeSizes). The
// execution strategy is chosen by Options.Engine; results are identical
// either way.
func Run(m *ir.Module, opts Options) (Result, error) {
	if opts.Machine == nil || opts.Runtime == nil {
		return Result{}, errors.New("interp: Machine and Runtime are required")
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 1e9
	}
	if opts.StackLimit == 0 {
		opts.StackLimit = 8 << 20
	}
	for fi, f := range m.Funcs {
		if f.Size == 0 {
			return Result{}, fmt.Errorf("interp: function %d (%s) has no size; run ir.ComputeSizes", fi, f.Name)
		}
	}
	if opts.Engine == EngineCompiled {
		return runCompiled(m, opts)
	}
	return runWalk(m, opts)
}

// runWalk executes via the tree-walk engine (the differential reference).
func runWalk(m *ir.Module, opts Options) (res Result, err error) {
	it := &interp{m: m, mach: opts.Machine, rt: opts.Runtime, opts: opts,
		rec: opts.Record}
	if opts.Profile {
		it.profile = make([]uint64, len(m.Funcs))
	}
	if opts.Observer != nil {
		it.obs = opts.Observer
		// The first window measures from here, not from machine zero, so a
		// reused machine doesn't leak pre-run counters into the profile.
		it.obsLast = opts.Machine.Snapshot()
	}
	it.globals = make([][]uint64, len(m.Globals))
	for i, g := range m.Globals {
		words := make([]uint64, g.Size/8)
		for j, v := range g.Init {
			if j < len(words) {
				words[j] = uint64(v)
			}
		}
		it.globals[i] = words
	}
	it.sp = opts.Runtime.StackBase()
	it.stackLow = it.sp - mem.Addr(opts.StackLimit)

	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(runError); ok {
				err = e.err
				// A program fault is architecturally observable: fold the
				// trap kind into the digest so fault-equivalence can be
				// asserted across the matrix.
				if it.rec != nil {
					if tr := trap.AsTrap(err); tr != nil {
						it.rec.observe(it.steps, EvTrap, uint64(tr.Kind), 0)
					}
				}
				return
			}
			panic(r)
		}
	}()

	entry := m.Entry()
	ret, exc := it.call(entry, nil, 0)
	if exc != nil {
		if it.rec != nil {
			it.rec.observe(it.steps, EvExit, 1, *exc)
		}
		return Result{}, &UncaughtError{Value: *exc}
	}
	if it.rec != nil {
		it.rec.observe(it.steps, EvExit, 0, ret)
	}

	return Result{
		Output:       it.output,
		Cycles:       it.mach.Cycles,
		Instructions: it.mach.Instructions,
		Seconds:      it.mach.Seconds(),
		Profile:      it.profile,
	}, nil
}

// runError carries an error through panic/recover so deep recursion can
// abort cleanly.
type runError struct{ err error }

func (it *interp) fail(err error) {
	panic(runError{err})
}

func (it *interp) failf(format string, args ...any) {
	it.fail(fmt.Errorf("interp: "+format, args...))
}

// curFnName names the currently executing function, for trap reports.
func (it *interp) curFnName() string {
	if n := len(it.callStack); n > 0 {
		return it.m.Funcs[it.callStack[n-1].fn].Name
	}
	return ""
}

// trap aborts the run with a typed program fault stamped with the current
// retired-instruction index — the layout-invariant coordinate the oracle's
// fault-equivalence check compares across the matrix.
func (it *interp) trap(kind trap.Kind, format string, args ...any) {
	tr := trap.New(kind, format, args...)
	tr.Step = it.steps
	tr.Fn = it.curFnName()
	it.fail(tr)
}

// runtimeErr surfaces an error returned by the Runtime's allocator: typed
// traps are stamped with the interpreter's coordinates and become program
// faults; anything else propagates as an infrastructure error.
func (it *interp) runtimeErr(err error) {
	if tr := trap.AsTrap(err); tr != nil {
		tr.Step = it.steps
		tr.Fn = it.curFnName()
	}
	it.fail(err)
}

// obsFlush closes the current observer window: the counter delta since the
// last flush is attributed to the current call stack. Callers place flushes
// so that every window's leaf is the function that did the work.
func (it *interp) obsFlush() {
	if it.obs == nil {
		return
	}
	cur := it.mach.Snapshot()
	delta := cur.Sub(it.obsLast)
	it.obsLast = cur
	it.obsStack = it.obsStack[:0]
	for _, c := range it.callStack {
		it.obsStack = append(it.obsStack, c.fn)
	}
	it.obs.ProfileWindow(it.obsStack, delta)
}

// returnAddrs snapshots the return addresses on the simulated stack, for the
// STABILIZER code garbage collector's stack walk.
func (it *interp) returnAddrs() []mem.Addr {
	out := make([]mem.Addr, len(it.callStack))
	for i, c := range it.callStack {
		out[i] = c.retPC
	}
	return out
}

// unwindCost is the modeled per-frame cost of exception unwinding (table
// lookup plus register restoration), charged on top of the frame's memory
// traffic.
const unwindCost = 60

// call transfers control to function fn with the given argument values and
// returns its result. callerPC is the simulated address of the call site
// (zero for the entry call). A non-nil second result is an in-flight
// exception unwinding through this frame.
func (it *interp) call(fn int, args []uint64, callerPC mem.Addr) (uint64, *uint64) {
	f := it.m.Funcs[fn]
	if len(args) != f.Params {
		it.failf("call to %s with %d args, want %d", f.Name, len(args), f.Params)
	}

	// The call record is pushed before BeforeCall so a runtime stack walk
	// during trap handling sees the caller's return address, exactly as the
	// hardware stack would at the time the trap fires (§3.3).
	it.callStack = append(it.callStack, callRecord{fn: fn, retPC: callerPC})

	pad := it.rt.BeforeCall(fn)
	codeBase := it.rt.CodeBase(fn)
	blockOffs := it.rt.BlockOffsets(fn)

	// Frame layout (Figure 4): padding below the caller's frame, then the
	// return address and frame pointer, then this frame's slots.
	frameTop := it.sp - mem.Addr(pad)
	frameBase := frameTop - mem.Addr(f.FrameSize)
	if frameBase < it.stackLow {
		it.fail(ErrStackOverflow)
	}
	savedSP := it.sp
	it.sp = frameBase

	// Push the return address (frame pointers are omitted, as optimizing
	// compilers do).
	it.mach.Data(frameTop-8, 8)
	it.mach.Retire(1)

	// Return-address stack: hardware predicts returns from a small LIFO;
	// overflow drops the oldest entry, which will mispredict on its return.
	if len(it.ras) == rasDepth {
		copy(it.ras, it.ras[1:])
		it.ras = it.ras[:rasDepth-1]
	}
	it.ras = append(it.ras, callerPC)

	regs := make([]uint64, f.NumRegs)
	copy(regs, args)
	stack := make([]uint64, (f.FrameSize-16)/8)

	ret, exc := it.exec(fn, f, codeBase, blockOffs, frameBase, regs, stack)
	if exc != nil {
		// Unwind: the runtime walks this frame's metadata and restores
		// state; the return address is read but not branched through.
		it.mach.Data(frameTop-8, 8)
		it.mach.Stall(unwindCost)
		if n := len(it.ras); n > 0 {
			it.ras = it.ras[:n-1]
		}
		// Unwind costs belong to the frame being unwound.
		it.obsFlush()
		it.callStack = it.callStack[:len(it.callStack)-1]
		it.sp = savedSP
		return 0, exc
	}

	// Pop: reload the return address and branch back.
	it.mach.Data(frameTop-8, 8)
	it.mach.Retire(1)
	// Returns predict through the RAS, not the BTB: correct unless the
	// entry was displaced by overflow.
	if n := len(it.ras); n > 0 && it.ras[n-1] == callerPC {
		it.ras = it.ras[:n-1]
	} else {
		it.mach.Stall(it.mach.Costs.Mispredict)
		if n > 0 {
			it.ras = it.ras[:n-1]
		}
	}
	if callerPC != 0 && !mem.Below4G(it.rt.CodeBase(fn)) {
		// Returning out of high memory uses the slow jump sequence (§3.5).
		it.mach.Stall(it.mach.Costs.SlowJump)
	}

	// Frame pop costs close out the callee's last window; the caller's next
	// window starts clean after the pop.
	it.obsFlush()
	it.callStack = it.callStack[:len(it.callStack)-1]
	it.sp = savedSP
	return ret, nil
}

// exec runs the body of one activation.
func (it *interp) exec(fn int, f *ir.Function, codeBase mem.Addr, blockOffs []uint64, frameBase mem.Addr, regs, stack []uint64) (uint64, *uint64) {
	bi := 0
	var blockStart uint64
	for {
		if it.profile != nil {
			blockStart = it.mach.Cycles
		}
		b := f.Blocks[bi]
		off := b.Off
		if blockOffs != nil {
			off = blockOffs[bi]
		}
		blockPC := codeBase + mem.Addr(off)
		it.mach.Fetch(blockPC, b.Size)
		it.rt.Tick(it.returnAddrs)

		n := b.Live
		it.steps += n + 1 // +1 for the terminator, so empty loops still hit the budget
		if it.steps > it.opts.MaxSteps {
			it.fail(&StepBudgetError{Steps: it.steps, Budget: it.opts.MaxSteps})
		}
		if it.opts.Interrupt != nil && it.steps >= it.nextPoll {
			it.nextPoll = it.steps + interruptStride
			if err := it.opts.Interrupt(); err != nil {
				it.fail(err)
			}
		}
		it.mach.Retire(n)

		jumped := false
	instrs:
		for idx := range b.Instrs {
			in := &b.Instrs[idx]
			switch in.Op {
			case ir.OpNop:
				// deleted instruction

			case ir.OpConstI, ir.OpConstF:
				regs[in.Dst] = uint64(in.Imm)
			case ir.OpMov:
				regs[in.Dst] = regs[in.A]

			case ir.OpAdd:
				regs[in.Dst] = uint64(int64(regs[in.A]) + int64(regs[in.B]))
			case ir.OpSub:
				regs[in.Dst] = uint64(int64(regs[in.A]) - int64(regs[in.B]))
			case ir.OpMul:
				it.mach.Stall(2)
				regs[in.Dst] = uint64(int64(regs[in.A]) * int64(regs[in.B]))
			case ir.OpDiv:
				it.mach.Stall(20)
				regs[in.Dst] = uint64(safeDiv(int64(regs[in.A]), int64(regs[in.B])))
			case ir.OpRem:
				it.mach.Stall(20)
				regs[in.Dst] = uint64(safeRem(int64(regs[in.A]), int64(regs[in.B])))
			case ir.OpAnd:
				regs[in.Dst] = regs[in.A] & regs[in.B]
			case ir.OpOr:
				regs[in.Dst] = regs[in.A] | regs[in.B]
			case ir.OpXor:
				regs[in.Dst] = regs[in.A] ^ regs[in.B]
			case ir.OpShl:
				regs[in.Dst] = regs[in.A] << (regs[in.B] & 63)
			case ir.OpShr:
				regs[in.Dst] = regs[in.A] >> (regs[in.B] & 63)

			case ir.OpFAdd:
				regs[in.Dst] = fbits(f2(regs[in.A]) + f2(regs[in.B]))
			case ir.OpFSub:
				regs[in.Dst] = fbits(f2(regs[in.A]) - f2(regs[in.B]))
			case ir.OpFMul:
				it.mach.Stall(2)
				regs[in.Dst] = fbits(f2(regs[in.A]) * f2(regs[in.B]))
			case ir.OpFDiv:
				it.mach.Stall(12)
				regs[in.Dst] = fbits(safeFDiv(f2(regs[in.A]), f2(regs[in.B])))

			case ir.OpCmpEQ:
				regs[in.Dst] = b2u(int64(regs[in.A]) == int64(regs[in.B]))
			case ir.OpCmpLT:
				regs[in.Dst] = b2u(int64(regs[in.A]) < int64(regs[in.B]))
			case ir.OpCmpLE:
				regs[in.Dst] = b2u(int64(regs[in.A]) <= int64(regs[in.B]))
			case ir.OpFCmpLT:
				regs[in.Dst] = b2u(f2(regs[in.A]) < f2(regs[in.B]))

			case ir.OpI2F:
				it.mach.Stall(3)
				regs[in.Dst] = fbits(float64(int64(regs[in.A])))
			case ir.OpF2I:
				it.mach.Stall(3)
				regs[in.Dst] = uint64(safeF2I(f2(regs[in.A])))

			case ir.OpLoadG, ir.OpLoadGF:
				regs[in.Dst] = it.globalAccess(fn, in, regs, false)
			case ir.OpStoreG, ir.OpStoreGF:
				it.globalAccess(fn, in, regs, true)

			case ir.OpLoadS, ir.OpLoadSF:
				regs[in.Dst] = it.stackAccess(fn, f, frameBase, in, regs, stack, false)
			case ir.OpStoreS, ir.OpStoreSF:
				it.stackAccess(fn, f, frameBase, in, regs, stack, true)

			case ir.OpLoadH, ir.OpLoadHF:
				regs[in.Dst] = it.heapAccess(fn, in, regs, false)
			case ir.OpStoreH, ir.OpStoreHF:
				it.heapAccess(fn, in, regs, true)

			case ir.OpAlloc:
				regs[in.Dst] = it.alloc(uint64(in.Imm))
			case ir.OpFree:
				it.free(regs[in.A])

			case ir.OpCall:
				callee := int(in.Sym)
				if it.rec != nil {
					it.rec.record(it.steps, EvCall, uint64(callee), 0, 0)
				}
				// Distinguish call sites within a block: the BTB and the
				// return-address records key on the site address.
				callPC := blockPC + mem.Addr(idx)*5
				if slot, ok := it.rt.RelocCall(fn, callee); ok {
					// Indirect call through the relocation table: one extra
					// load instruction, then an indirect transfer predicted
					// by the BTB.
					it.mach.Data(slot, 8)
					it.mach.Retire(1)
					it.mach.IndirectBranch(callPC, it.rt.CodeBase(callee))
				}
				args := make([]uint64, len(in.Args))
				for ai, a := range in.Args {
					args[ai] = regs[a]
				}
				if it.profile != nil {
					// Close this block's attribution window before the
					// callee runs, and reopen it after, so callee cycles
					// are not double-counted against the caller.
					it.profile[fn] += it.mach.Cycles - blockStart
				}
				// Close the observer window at the call site too: the call
				// setup so far (relocation load, argument staging) belongs
				// to the caller; everything from here until the callee's
				// first flush belongs to the callee.
				it.obsFlush()
				v, exc := it.call(callee, args, callPC)
				if it.profile != nil {
					blockStart = it.mach.Cycles
				}
				if exc != nil {
					if in.Imm != 0 {
						// Invoke: land in the handler with the exception
						// value in the result register.
						if in.Dst != ir.NoReg {
							regs[in.Dst] = *exc
						}
						bi = int(in.Imm) - 1
						jumped = true
						break instrs
					}
					return 0, exc // propagate
				}
				if in.Dst != ir.NoReg {
					regs[in.Dst] = v
				}

			case ir.OpThrow:
				v := regs[in.A]
				if it.rec != nil {
					it.rec.record(it.steps, EvThrow, 0, 0, v)
				}
				return 0, &v

			case ir.OpSink:
				v := regs[in.A]
				if liveBaseVal(it.objects, v) {
					it.trap(trap.InvalidPointer,
						"%s sinks a heap pointer; output would be layout-dependent", f.Name)
				}
				if it.rec != nil {
					it.rec.observe(it.steps, EvSink, 0, v)
				}
				it.output = it.output*1099511628211 + v
			case ir.OpSinkF:
				if it.rec != nil {
					it.rec.observe(it.steps, EvSink, 0, regs[in.A])
				}
				it.output = it.output*1099511628211 + regs[in.A]

			default:
				it.failf("%s: unimplemented opcode %v", f.Name, in.Op)
			}
		}

		if it.profile != nil {
			// Exclusive attribution: callees account for themselves, so
			// subtract nothing — OpCall's nested exec already advanced the
			// clock under the callee's id; what remains here is this
			// block's own cost plus runtime services charged while it ran.
			it.profile[fn] += it.mach.Cycles - blockStart
		}
		it.obsFlush()
		if jumped {
			continue // control transferred to an exception handler
		}
		term := b.Term
		termPC := blockPC + mem.Addr(b.Size) - mem.Addr(term.EncodedSize())
		switch term.Kind {
		case ir.TermJmp:
			bi = term.Then
		case ir.TermBr:
			taken := regs[term.Cond] != 0
			it.mach.CondBranch(termPC, taken)
			it.mach.Retire(1)
			if taken {
				bi = term.Then
			} else {
				bi = term.Else
			}
		case ir.TermRet:
			it.mach.Retire(1)
			if term.Val == ir.NoReg {
				return 0, nil
			}
			return regs[term.Val], nil
		default:
			it.failf("%s: unterminated block %d", f.Name, bi)
		}
	}
}

// globalAccess performs a load or store on a global, charging the memory
// system (and the relocation-table indirection, if the runtime imposes one).
func (it *interp) globalAccess(fn int, in *ir.Instr, regs []uint64, store bool) uint64 {
	g := int(in.Sym)
	idx := int64(0)
	if in.A != ir.NoReg {
		idx = int64(regs[in.A])
	}
	byteOff := in.Imm + idx*8
	words := it.globals[g]
	w := byteOff / 8
	if byteOff < 0 || w >= int64(len(words)) || byteOff%8 != 0 {
		it.trap(trap.OutOfBounds, "global %s access at byte %d outside %d bytes",
			it.m.Globals[g].Name, byteOff, len(words)*8)
	}
	if slot, ok := it.rt.RelocGlobal(fn, g); ok {
		// The table indirection is one extra load instruction (§3.3).
		it.mach.Data(slot, 8)
		it.mach.Retire(1)
	}
	addr := it.rt.GlobalAddr(g) + mem.Addr(byteOff)
	it.mach.Data(addr, 8)
	if in.Op.IsFloat() && uint64(addr)%16 != 0 {
		it.mach.Stall(it.mach.Costs.UnalignedFP)
	}
	if store {
		if it.rec != nil {
			it.rec.record(it.steps, EvStoreGlobal, uint64(g), uint64(byteOff), regs[in.B])
		}
		words[w] = regs[in.B]
		return 0
	}
	return words[w]
}

// stackAccess performs a load or store on the current frame.
func (it *interp) stackAccess(fn int, f *ir.Function, frameBase mem.Addr, in *ir.Instr, regs, stack []uint64, store bool) uint64 {
	slot := f.Slots[in.Sym]
	idx := int64(0)
	if in.A != ir.NoReg {
		idx = int64(regs[in.A])
	}
	byteOff := in.Imm + idx*8
	if byteOff < 0 || uint64(byteOff) >= slot.Size || byteOff%8 != 0 {
		it.trap(trap.OutOfBounds, "%s: stack slot %s access at byte %d outside %d bytes",
			f.Name, slot.Name, byteOff, slot.Size)
	}
	addr := frameBase + mem.Addr(slot.Off) + mem.Addr(byteOff)
	it.mach.Data(addr, 8)
	if in.Op.IsFloat() && uint64(addr)%16 != 0 {
		it.mach.Stall(it.mach.Costs.UnalignedFP)
	}
	w := (slot.Off + uint64(byteOff)) / 8
	if store {
		if it.rec != nil {
			// The slot symbol plus function index is a layout-invariant
			// coordinate; the frame address never enters the digest.
			it.rec.record(it.steps, EvStoreStack,
				uint64(fn)<<32|uint64(in.Sym), uint64(byteOff), regs[in.B])
		}
		stack[w] = regs[in.B]
		return 0
	}
	return stack[w]
}

// heapAccess performs a load or store through a heap pointer.
func (it *interp) heapAccess(fn int, in *ir.Instr, regs []uint64, store bool) uint64 {
	ptr := regs[in.A]
	if !IsPointer(ptr) {
		it.trap(trap.InvalidPointer, "heap access through non-pointer value %#x", ptr)
	}
	idx := int64(0)
	if in.B != ir.NoReg {
		idx = int64(regs[in.B])
	}
	handle := int((ptr &^ ptrTag) >> ptrHandleSh)
	baseOff := int64(ptr & ptrOffMask)
	byteOff := baseOff + in.Imm + idx*8
	if handle >= len(it.objects) {
		it.trap(trap.InvalidPointer, "heap access through invalid handle %d", handle)
	}
	obj := &it.objects[handle]
	if !obj.live {
		it.trap(trap.UseAfterFree, "heap use after free (handle %d)", handle)
	}
	w := byteOff / 8
	if byteOff < 0 || uint64(byteOff) >= obj.size || byteOff%8 != 0 {
		it.trap(trap.OutOfBounds, "heap access at byte %d outside object of %d bytes", byteOff, obj.size)
	}
	addr := obj.addr + mem.Addr(byteOff)
	it.mach.Data(addr, 8)
	if in.Op.IsFloat() && uint64(addr)%16 != 0 {
		it.mach.Stall(it.mach.Costs.UnalignedFP)
	}
	if store {
		if it.rec != nil {
			// Handles are assigned in allocation order and recycled LIFO,
			// so they are identical across layouts; the object's simulated
			// address never enters the digest.
			it.rec.record(it.steps, EvStoreHeap, uint64(handle), uint64(byteOff), regs[in.Dst])
		}
		obj.data[w] = regs[in.Dst] // value register rides in Dst for StoreH
		return 0
	}
	return obj.data[w]
}

// alloc creates a heap object via the runtime's allocator.
func (it *interp) alloc(size uint64) uint64 {
	if size == 0 {
		size = 8
	}
	size = (size + 7) &^ 7
	addr, err := it.rt.Alloc(size)
	if err != nil {
		it.runtimeErr(err)
	}
	var handle int
	if n := len(it.freeObj); n > 0 {
		handle = it.freeObj[n-1]
		it.freeObj = it.freeObj[:n-1]
		it.objects[handle] = heapObject{addr: addr, data: make([]uint64, size/8), size: size, live: true}
	} else {
		handle = len(it.objects)
		it.objects = append(it.objects, heapObject{addr: addr, data: make([]uint64, size/8), size: size, live: true})
	}
	if handle >= 1<<30 {
		it.trap(trap.OutOfMemory, "too many heap objects")
	}
	if it.rec != nil {
		it.rec.record(it.steps, EvAlloc, uint64(handle), 0, size)
	}
	return ptrTag | uint64(handle)<<ptrHandleSh
}

// free releases a heap object.
func (it *interp) free(ptr uint64) {
	if !IsPointer(ptr) {
		it.trap(trap.InvalidFree, "free of non-pointer value %#x", ptr)
	}
	if ptr&ptrOffMask != 0 {
		it.trap(trap.InvalidFree, "free of interior pointer (offset %d)", ptr&ptrOffMask)
	}
	handle := int((ptr &^ ptrTag) >> ptrHandleSh)
	if handle >= len(it.objects) {
		it.trap(trap.InvalidFree, "free of invalid handle %d", handle)
	}
	if !it.objects[handle].live {
		it.trap(trap.DoubleFree, "double free (handle %d)", handle)
	}
	obj := &it.objects[handle]
	if err := it.rt.Free(obj.addr); err != nil {
		it.runtimeErr(err)
	}
	if it.rec != nil {
		it.rec.record(it.steps, EvFree, uint64(handle), 0, 0)
	}
	obj.live = false
	obj.data = nil
	it.freeObj = append(it.freeObj, handle)
}

// liveBaseVal reports whether v is exactly the base encoding of a live heap
// object — the values Sink must reject as layout-dependent output. It is
// equivalent to membership in a set maintained across alloc/free: a live
// base pointer has the tag bit, a zero offset, and a live in-range handle;
// no other bit pattern was ever handed out by alloc. (Values with bit 63
// set decode to handles ≥ 2³¹, beyond the object-count trap threshold, so
// the range check rejects them.)
func liveBaseVal(objects []heapObject, v uint64) bool {
	if v&ptrTag == 0 || v&ptrOffMask != 0 {
		return false
	}
	h := (v &^ ptrTag) >> ptrHandleSh
	return h < uint64(len(objects)) && objects[h].live
}

func f2(v uint64) float64 { return math.Float64frombits(v) }
func fbits(v float64) uint64 {
	return math.Float64bits(v)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func safeDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	if a == math.MinInt64 && b == -1 {
		return a
	}
	return a / b
}

func safeRem(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	if a == math.MinInt64 && b == -1 {
		return 0
	}
	return a % b
}

func safeFDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func safeF2I(f float64) int64 {
	if math.IsNaN(f) {
		return 0
	}
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	if f <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(f)
}
