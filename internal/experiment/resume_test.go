package experiment

// Checkpoint/resume tests: an interrupted sweep, resumed against the same
// checkpoint directory, must reproduce the uninterrupted sweep exactly —
// at any worker count — and no fault or corruption in the checkpoint
// layer may fail a sweep or feed it wrong data.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/faultinject"
)

// TestResumeCheckpointRoundTrip stores one cell and replays it: the
// replayed SampleSet must be deeply equal to the fresh one (the JSON
// round trip loses nothing), and Stats must account for both directions.
func TestResumeCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cp, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := subset(t, "astar")[0]
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithCheckpoint(context.Background(), cp)
	fresh, err := cc.Collect(ctx, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	if stored, reused := cp.Stats(); stored != 1 || reused != 0 {
		t.Fatalf("stats after first collect: stored=%d reused=%d, want 1/0", stored, reused)
	}
	replayed, err := cc.Collect(ctx, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, fresh) {
		t.Error("replayed cell differs from the fresh collection")
	}
	if stored, reused := cp.Stats(); stored != 1 || reused != 1 {
		t.Fatalf("stats after replay: stored=%d reused=%d, want 1/1", stored, reused)
	}
	// A different seed base is a different cell — never served from the
	// stored one.
	other, err := cc.Collect(ctx, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(other.Seconds, fresh.Seconds) {
		t.Error("different seed base replayed the stored cell")
	}
}

// TestResumeToleratesCorruptCheckpoint truncates and garbage-fills cell
// files: lookups must degrade to a miss (cell re-runs, same results),
// never to an error or wrong data, and the re-run must heal the file.
func TestResumeToleratesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cp, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := subset(t, "astar")[0]
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithCheckpoint(context.Background(), cp)
	fresh, err := cc.Collect(ctx, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := filepath.Glob(filepath.Join(dir, "cell-*.json"))
	if err != nil || len(cells) != 1 {
		t.Fatalf("cell files %v (err %v), want exactly one", cells, err)
	}
	for _, garbage := range []string{"", "{not json", `{"schema": 99, "key": "x"}`} {
		if err := os.WriteFile(cells[0], []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		cp2, err := OpenCheckpoint(dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cc.Collect(WithCheckpoint(context.Background(), cp2), 3, 41)
		if err != nil {
			t.Fatalf("corrupt cell file %q failed the sweep: %v", garbage, err)
		}
		if !reflect.DeepEqual(got, fresh) {
			t.Fatalf("re-run after corruption %q produced different samples", garbage)
		}
		if stored, reused := cp2.Stats(); stored != 1 || reused != 0 {
			t.Fatalf("corruption %q: stored=%d reused=%d, want re-store 1/0", garbage, stored, reused)
		}
	}
}

// TestResumeCheckpointStoreFaultIsHarmless injects a failure into the
// checkpoint store: the sweep still succeeds (a checkpoint is an
// optimization, not a dependency), nothing half-written is left behind,
// and the next run simply stores the cell again.
func TestResumeCheckpointStoreFaultIsHarmless(t *testing.T) {
	dir := t.TempDir()
	cp, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := subset(t, "astar")[0]
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []faultinject.Kind{faultinject.KindError, faultinject.KindPanic} {
		deactivate := faultinject.Activate(1, faultinject.Fault{
			Site: faultinject.SiteCheckpointStore, Nth: 1, Kind: kind,
		})
		_, err = cc.Collect(WithCheckpoint(context.Background(), cp), 3, 51)
		deactivate()
		if err != nil {
			t.Fatalf("store fault %v failed the sweep: %v", kind, err)
		}
		files, _ := filepath.Glob(filepath.Join(dir, "*"))
		if len(files) != 0 {
			t.Fatalf("store fault %v left files behind: %v", kind, files)
		}
	}
	// With no plan active the cell stores normally.
	if _, err := cc.Collect(WithCheckpoint(context.Background(), cp), 3, 51); err != nil {
		t.Fatal(err)
	}
	if stored, _ := cp.Stats(); stored != 1 {
		t.Fatalf("stored %d cells after recovery, want 1", stored)
	}
}

// TestResumeAfterDrainMatchesUninterrupted is the acceptance test for the
// whole crash-safety story: a sweep is drained mid-flight at a
// deterministic point (a KindHook fault raising the drain flag, standing
// in for the first SIGINT), completed cells land in the checkpoint, and a
// resumed run — at a different worker count — produces a result deeply
// equal to an uninterrupted sweep.
func TestResumeAfterDrainMatchesUninterrupted(t *testing.T) {
	opts := NormalityOptions{
		Scale: testScale,
		Runs:  4,
		Seed:  61,
		Suite: subset(t, "astar", "libquantum"),
	}

	var uninterrupted *NormalityResult
	var err error
	withParallelism(t, 1, func() {
		uninterrupted, err = Normality(context.Background(), opts)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: drain raised at the start of the 2nd cell (of 4:
	// two configurations per benchmark). The in-flight cell finishes and
	// checkpoints; the remaining benchmark is never started.
	dir := t.TempDir()
	cp, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, drain := WithDrain(WithCheckpoint(context.Background(), cp))
	deactivate := faultinject.Activate(1, faultinject.Fault{
		Site: faultinject.SiteCellStart, Nth: 2, Kind: faultinject.KindHook, Hook: drain,
	})
	withParallelism(t, 1, func() {
		_, err = Normality(ctx, opts)
	})
	deactivate()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("drained sweep returned %v, want ErrStopped", err)
	}
	if !strings.Contains(err.Error(), "-resume") {
		t.Errorf("drain error %q does not point at -resume", err)
	}
	stored, _ := cp.Stats()
	if stored == 0 || stored >= 4 {
		t.Fatalf("drained sweep stored %d of 4 cells, want a strict subset", stored)
	}

	// Resume at a different worker count: stored cells replay, the rest
	// collect fresh, and the result matches the uninterrupted sweep.
	cp2, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	var resumed *NormalityResult
	withParallelism(t, 4, func() {
		resumed, err = Normality(WithCheckpoint(context.Background(), cp2), opts)
	})
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if !reflect.DeepEqual(resumed, uninterrupted) {
		t.Error("resumed sweep differs from the uninterrupted sweep")
	}
	stored2, reused2 := cp2.Stats()
	if reused2 != stored || stored2 != 4-stored {
		t.Errorf("resume stats stored=%d reused=%d, want %d/%d", stored2, reused2, 4-stored, stored)
	}

	// A third pass replays everything.
	cp3, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	var replayed *NormalityResult
	withParallelism(t, 2, func() {
		replayed, err = Normality(WithCheckpoint(context.Background(), cp3), opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, uninterrupted) {
		t.Error("fully-replayed sweep differs from the uninterrupted sweep")
	}
	if stored3, reused3 := cp3.Stats(); stored3 != 0 || reused3 != 4 {
		t.Errorf("replay stats stored=%d reused=%d, want 0/4", stored3, reused3)
	}
}

// TestResumeDrainStopsParallelSweepCleanly drains a parallel sweep: the
// pool must report ErrStopped without cancelling in-flight cells, and the
// checkpointed subset must be valid cells an undisturbed resume can use.
func TestResumeDrainStopsParallelSweepCleanly(t *testing.T) {
	opts := NormalityOptions{
		Scale: testScale,
		Runs:  3,
		Seed:  71,
		Suite: subset(t, "astar", "libquantum", "mcf"),
	}
	dir := t.TempDir()
	cp, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, drain := WithDrain(WithCheckpoint(context.Background(), cp))
	deactivate := faultinject.Activate(1, faultinject.Fault{
		Site: faultinject.SiteCellStart, Nth: 1, Kind: faultinject.KindHook, Hook: drain,
	})
	withParallelism(t, 3, func() {
		_, err = Normality(ctx, opts)
	})
	deactivate()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("drained parallel sweep returned %v, want ErrStopped", err)
	}
	// Whatever was checkpointed must replay cleanly on resume.
	cp2, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	var resumed, fresh *NormalityResult
	withParallelism(t, 1, func() {
		resumed, err = Normality(WithCheckpoint(context.Background(), cp2), opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	withParallelism(t, 1, func() {
		fresh, err = Normality(context.Background(), opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, fresh) {
		t.Error("resume after parallel drain differs from a fresh sweep")
	}
}
