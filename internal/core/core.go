// Package core implements the STABILIZER runtime — the paper's primary
// contribution. It randomizes (and periodically re-randomizes) the placement
// of code, stack frames, and heap objects while a program executes on the
// simulated machine.
//
// The runtime follows §3 of the paper closely:
//
//   - Code is randomized per function. At startup every relocatable function
//     is "trapped" (the paper writes an int3 over its first byte); the first
//     call relocates it into a shuffled code heap mapped below 4 GiB, builds
//     its relocation table immediately after the body, and patches the old
//     entry point with a jump.
//   - A timer re-randomizes: all live functions are trapped again, their old
//     locations go onto a pile, and the next trap garbage-collects the pile
//     by walking the stack and freeing every location no return address
//     points into.
//   - Calls and global accesses from relocated code go through the
//     function-adjacent relocation table (the indirection is a real memory
//     access on the simulated machine, so it has its honest cost).
//   - The stack is randomized by padding each call with a pad drawn from a
//     per-function 256-entry pad table (scaled by 16 for alignment); the
//     tables are refilled with fresh random bytes at every re-randomization.
//   - The heap is randomized by the shuffling layer of internal/heap.
//
// Every randomization can be enabled independently (§2.5). The timer is a
// cycle-count interval: simulated time has no wall clock, so the paper's
// 500 ms default scales down to keep ≳30 re-randomizations per run — the
// sample count the Central Limit Theorem argument needs.
package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/rng"
)

// Options selects which randomizations run and how.
type Options struct {
	// Code, Stack, and Heap enable the three randomizations independently.
	Code  bool
	Stack bool
	Heap  bool
	// Rerandomize enables periodic re-randomization; without it layout is
	// randomized once at startup (the "one-time" configuration of Figure 5).
	Rerandomize bool
	// Interval is the re-randomization period in simulated cycles
	// (default 100 000 — the paper's 500 ms scaled to simulated run lengths).
	Interval uint64
	// ShuffleN is the shuffling-layer depth (default heap.DefaultShuffleN).
	ShuffleN int
	// Seed drives all randomization; equal seeds give equal layouts.
	Seed uint64
	// UseTLSF selects the TLSF base allocator instead of the segregated one.
	UseTLSF bool
	// UseDieHard uses the DieHard-style randomized allocator directly as
	// the heap, as STABILIZER's original implementation did (§3.2, §7).
	// DieHard needs no shuffling layer — it is fully randomized — but its
	// lack of reuse and sparse placement "can lead to substantial
	// overhead". Takes precedence over UseTLSF when Heap is set.
	UseDieHard bool
	// FineGrainCode randomizes code at basic-block granularity: each
	// relocation also permutes the function's blocks, stitching them with
	// explicit jumps. This is the paper's proposed §8 extension
	// ("STABILIZER could relocate individual basic blocks at runtime"),
	// which additionally randomizes intra-function branch-predictor and
	// I-cache relationships. Requires Code.
	FineGrainCode bool
	// Adaptive implements the paper's other §8 proposal: "sampling with
	// performance counters could be used to detect layout-related
	// performance problems like cache misses and branch mispredictions.
	// When STABILIZER detects these problems, it could trigger a complete
	// or partial re-randomization." With Adaptive set, the runtime samples
	// I-cache miss and misprediction rates every Interval/4 cycles and
	// fires an early re-randomization when the current window exceeds
	// AdaptiveFactor times the running average. Requires Rerandomize.
	Adaptive bool
	// AdaptiveFactor is the trigger threshold (default 1.5).
	AdaptiveFactor float64
}

// AllRandomizations returns the full configuration the paper calls
// "code.heap.stack" with re-randomization on.
func AllRandomizations(seed uint64) Options {
	return Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Seed: seed}
}

// EnabledString renders the configuration the way Figure 6 labels it, e.g.
// "code.heap.stack".
func (o Options) EnabledString() string {
	s := ""
	add := func(on bool, name string) {
		if !on {
			return
		}
		if s != "" {
			s += "."
		}
		s += name
	}
	add(o.Code, "code")
	add(o.Heap, "heap")
	add(o.Stack, "stack")
	if s == "" {
		return "none"
	}
	return s
}

// Costs models the runtime's own overheads in cycles.
type Costs struct {
	Trap        uint64 // SIGTRAP delivery + handler entry
	RelocPer16B uint64 // function copy cost per 16 bytes
	TimerFixed  uint64 // timer signal handling
	TimerPerFn  uint64 // per-function work in the timer handler
	PadExtra    uint64 // extra instructions per call for stack padding
	ShuffleMall uint64 // extra malloc work in the shuffling layer
	ShuffleFree uint64 // extra free work in the shuffling layer
}

// DefaultCosts returns the calibrated runtime cost model.
func DefaultCosts() Costs {
	// Trap and timer costs are scaled to the compressed re-randomization
	// interval: the paper re-randomizes every 500 ms (~1.6e9 cycles), this
	// reproduction every ~1e5 simulated cycles, so charging literal
	// microsecond-scale signal costs would overstate the runtime's share of
	// execution by four orders of magnitude.
	return Costs{
		Trap:        40,
		RelocPer16B: 1,
		TimerFixed:  100,
		TimerPerFn:  2,
		PadExtra:    3,
		ShuffleMall: 8,
		ShuffleFree: 6,
	}
}

type funcState struct {
	cur        mem.Addr // where the function currently executes
	allocBase  mem.Addr // code-heap block backing it (0 if static/piled)
	allocSize  uint64
	relocTable mem.Addr // address of its relocation table (0 before reloc)
	trapped    bool
	// blockOff holds per-copy block offsets under fine-grain code
	// randomization; nil means blocks sit at their static offsets.
	blockOff []uint64
}

type pileEntry struct {
	base mem.Addr
	size uint64
}

// Stabilizer is the runtime; it implements interp.Runtime.
type Stabilizer struct {
	m    *ir.Module
	mach *machine.Machine
	as   *mem.AddressSpace
	opts Options
	cost Costs

	rStack *rng.Marsaglia
	rCode  *rng.Marsaglia

	staticFuncs []mem.Addr
	globals     []mem.Addr
	stackBase   mem.Addr

	codeHeap heap.Allocator
	funcs    []funcState
	slots    [][]int32 // slots[fn][sym] = relocation slot index, -1 if none
	slotCnt  []int

	pile       []pileEntry
	gcPending  bool
	nextRerand uint64
	timerArmed bool
	stackFn    func() []mem.Addr // most recent interpreter stack walker

	// Adaptive sampling state.
	nextSample   uint64
	sampleWindow uint64
	lastSample   counterSnapshot
	rateEWMA     float64
	ewmaPrimed   bool
	coolingDown  bool // skip the comparison right after a re-randomization

	padTables  [][]uint8
	padIndex   []uint8
	padTblAddr []mem.Addr

	heapAlloc heap.Allocator

	// Stats counts runtime events for tests and reports.
	Stats struct {
		Traps            uint64
		Relocations      uint64
		Rerands          uint64
		GCFreed          uint64
		GCKept           uint64
		AdaptiveTriggers uint64
	}
}

// counterSnapshot captures the machine counters an adaptive sample compares.
type counterSnapshot struct {
	instructions uint64
	l1iMisses    uint64
	mispredicts  uint64
}

func (s *Stabilizer) snapshot() counterSnapshot {
	return counterSnapshot{
		instructions: s.mach.Instructions,
		l1iMisses:    s.mach.L1I.Misses,
		mispredicts:  s.mach.BP.DirectionMispredicts + s.mach.BP.TargetMispredicts,
	}
}

const (
	padTableSize  = 256
	padIndexSize  = 8 // one index byte, padded for alignment
	relocSlotSize = 8
)

// New builds a Stabilizer runtime for module m. The module should be
// compiled with compiler.Options.Stabilize when any randomization is enabled
// (the szc driver does this). staticFuncs and globalAddrs come from the
// static linker image; the runtime needs them for unrandomized
// configurations and for globals, which never move.
func New(m *ir.Module, mach *machine.Machine, as *mem.AddressSpace,
	staticFuncs, globalAddrs []mem.Addr, opts Options) (*Stabilizer, error) {

	if len(staticFuncs) != len(m.Funcs) || len(globalAddrs) != len(m.Globals) {
		return nil, fmt.Errorf("core: image does not match module (%d/%d funcs, %d/%d globals)",
			len(staticFuncs), len(m.Funcs), len(globalAddrs), len(m.Globals))
	}
	if opts.Interval == 0 {
		opts.Interval = 100_000
	}
	if opts.ShuffleN == 0 {
		opts.ShuffleN = heap.DefaultShuffleN
	}
	if opts.AdaptiveFactor == 0 {
		opts.AdaptiveFactor = 1.5
	}
	master := rng.NewMarsaglia(opts.Seed)
	s := &Stabilizer{
		m:           m,
		mach:        mach,
		as:          as,
		opts:        opts,
		cost:        DefaultCosts(),
		rStack:      master.Split(),
		rCode:       master.Split(),
		staticFuncs: staticFuncs,
		globals:     globalAddrs,
		stackBase:   as.StackBase(),
		funcs:       make([]funcState, len(m.Funcs)),
		timerArmed:  opts.Rerandomize,
	}
	rHeap := master.Split()

	// Heap: with heap randomization on, the shuffling layer wraps the
	// power-of-two size-segregated base (or TLSF, §3.2); with it off, the
	// program keeps the ordinary fine-grained allocator, as an
	// unrandomized build keeps libc malloc.
	switch {
	case opts.Heap && opts.UseDieHard:
		s.heapAlloc = heap.NewDieHard(as, rHeap)
	case opts.Heap:
		var base heap.Allocator
		if opts.UseTLSF {
			base = heap.NewTLSF(as, 1<<22)
		} else {
			base = heap.NewSegregated(as)
		}
		s.heapAlloc = heap.NewShuffle(base, rHeap, opts.ShuffleN)
	default:
		s.heapAlloc = heap.NewTLSF(as, 1<<22)
	}

	// Code: a shuffled heap of executable memory below 4 GiB (§3.3, §3.5).
	for fi := range s.funcs {
		s.funcs[fi].cur = staticFuncs[fi]
	}
	if opts.Code {
		s.codeHeap = heap.NewShuffle(heap.NewSegregatedAt(as, mem.MapLow32), s.rCode.Split(), opts.ShuffleN)
		s.buildRelocSlots()
		// Initialization (Figure 3a): every relocatable function starts
		// trapped at its static location.
		for fi := range s.funcs {
			s.funcs[fi].trapped = !m.Funcs[fi].NoRelocate
		}
	}
	s.nextRerand = mach.Cycles + opts.Interval
	if opts.Adaptive {
		s.sampleWindow = opts.Interval / 4
		if s.sampleWindow == 0 {
			s.sampleWindow = 1
		}
		s.nextSample = mach.Cycles + s.sampleWindow
		s.lastSample = counterSnapshot{}
	}

	// Stack: per-function pad tables with simulated addresses, so loading a
	// pad is a real (cache-visible) memory access. Many functions mean many
	// tables — the working-set pressure behind the paper's gobmk/gcc/
	// perlbench overhead (§5.2).
	if opts.Stack {
		n := len(m.Funcs)
		s.padTables = make([][]uint8, n)
		s.padIndex = make([]uint8, n)
		s.padTblAddr = make([]mem.Addr, n)
		region, err := as.Map(uint64(n)*(padTableSize+padIndexSize), mem.MapAnywhere)
		if err != nil {
			return nil, fmt.Errorf("core: mapping pad tables: %w", err)
		}
		for fi := 0; fi < n; fi++ {
			s.padTables[fi] = make([]uint8, padTableSize)
			s.padTblAddr[fi] = region.Base + mem.Addr(fi*(padTableSize+padIndexSize))
		}
		s.refillPadTables()
	}
	return s, nil
}

// buildRelocSlots assigns each function's referenced symbols (callees and
// globals) consecutive slots in its relocation table. Two copies of a
// function never share a table (§3.3), but the slot layout is fixed per
// function.
func (s *Stabilizer) buildRelocSlots() {
	nf, ng := len(s.m.Funcs), len(s.m.Globals)
	s.slots = make([][]int32, nf)
	s.slotCnt = make([]int, nf)
	for fi, f := range s.m.Funcs {
		tbl := make([]int32, nf+ng)
		for i := range tbl {
			tbl[i] = -1
		}
		n := int32(0)
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpCall:
					if tbl[in.Sym] == -1 {
						tbl[in.Sym] = n
						n++
					}
				case ir.OpLoadG, ir.OpStoreG, ir.OpLoadGF, ir.OpStoreGF:
					if tbl[nf+int(in.Sym)] == -1 {
						tbl[nf+int(in.Sym)] = n
						n++
					}
				}
			}
		}
		s.slots[fi] = tbl
		s.slotCnt[fi] = int(n)
	}
}

// CodeBase implements interp.Runtime.
func (s *Stabilizer) CodeBase(fn int) mem.Addr { return s.funcs[fn].cur }

// BlockOffsets implements interp.Runtime: under fine-grain code
// randomization each copy of a function has its own block permutation, and
// permuteBlocks allocates a fresh slice per copy, so snapshots taken by
// in-flight activations stay valid.
func (s *Stabilizer) BlockOffsets(fn int) []uint64 { return s.funcs[fn].blockOff }

// GlobalAddr implements interp.Runtime; globals never move.
func (s *Stabilizer) GlobalAddr(g int) mem.Addr { return s.globals[g] }

// StackBase implements interp.Runtime.
func (s *Stabilizer) StackBase() mem.Addr { return s.stackBase }

// BeforeCall implements interp.Runtime: it is the trap site (relocation on
// demand) and the stack pad site.
func (s *Stabilizer) BeforeCall(fn int) uint64 {
	if s.opts.Code && s.funcs[fn].trapped {
		s.handleTrap(fn)
	}
	var pad uint64
	if s.opts.Stack {
		// Figure 4: load the index byte, load the index-th pad byte,
		// increment the index (wrapping), scale by 16.
		idx := s.padIndex[fn]
		s.mach.Data(s.padTblAddr[fn]+padTableSize, 1)  // index byte
		s.mach.Data(s.padTblAddr[fn]+mem.Addr(idx), 1) // pad entry
		s.mach.Retire(s.cost.PadExtra)                 // inserted instructions
		pad = uint64(s.padTables[fn][idx]) * 16
		s.padIndex[fn] = idx + 1 // uint8 wraparound is the paper's wraparound
	}
	return pad
}

// handleTrap relocates fn into the code heap (Figure 3b), running the pile
// garbage collector first if a re-randomization is pending (Figure 3d).
func (s *Stabilizer) handleTrap(fn int) {
	st := &s.funcs[fn]
	s.Stats.Traps++
	s.mach.Stall(s.cost.Trap)

	if s.gcPending {
		s.collectPile()
		s.gcPending = false
	}

	f := s.m.Funcs[fn]
	bodySize := f.Size
	if s.opts.FineGrainCode {
		// Permuted blocks need an explicit jump where fall-through used to
		// suffice: ~5 bytes of stitch per block.
		bodySize += uint64(len(f.Blocks)) * blockStitchSize
	}
	size := bodySize + uint64(s.slotCnt[fn])*relocSlotSize
	base, err := s.codeHeap.Alloc(size)
	if err != nil {
		// The code heap is runtime-internal: its demand is bounded by the
		// module's code size, so failure here is a driver bug (e.g. an
		// artificially tiny map budget), never program behavior.
		panic(fmt.Sprintf("core: code heap allocation failed: %v", err))
	}
	// Copy the body and build the relocation table at its end.
	s.mach.Stall(s.cost.RelocPer16B * (size + 15) / 16)

	st.cur = base
	st.allocBase = base
	st.allocSize = size
	st.relocTable = base + mem.Addr(bodySize)
	st.trapped = false
	if s.opts.FineGrainCode {
		st.blockOff = s.permuteBlocks(f)
	}
	s.Stats.Relocations++
}

// blockStitchSize is the modeled jmp rel32 each permuted block ends with.
const blockStitchSize = 5

// permuteBlocks lays the function's blocks out in a random order and returns
// the per-block offsets of this copy.
func (s *Stabilizer) permuteBlocks(f *ir.Function) []uint64 {
	n := len(f.Blocks)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	s.rCode.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	offs := make([]uint64, n)
	cur := uint64(funcHeaderSize)
	for _, bi := range order {
		offs[bi] = cur
		cur += f.Blocks[bi].Size + blockStitchSize
	}
	return offs
}

// funcHeaderSize mirrors the prologue bytes the size model reserves.
const funcHeaderSize = 8

// collectPile frees piled code locations that no stack return address pins
// (the mark phase of §3.3's simple collector).
func (s *Stabilizer) collectPile() {
	if len(s.pile) == 0 {
		return
	}
	var stack []mem.Addr
	if s.stackFn != nil {
		stack = s.stackFn()
	}
	kept := s.pile[:0]
	for _, e := range s.pile {
		onStack := false
		for _, ra := range stack {
			if ra >= e.base && ra < e.base+mem.Addr(e.size) {
				onStack = true
				break
			}
		}
		if onStack {
			kept = append(kept, e)
			s.Stats.GCKept++
		} else {
			if err := s.codeHeap.Free(e.base); err != nil {
				panic(fmt.Sprintf("core: code heap free failed: %v", err))
			}
			s.Stats.GCFreed++
		}
	}
	s.pile = kept
}

// Tick implements interp.Runtime: the re-randomization timer (Figure 3c)
// and, when enabled, the §8 adaptive counter sampler.
func (s *Stabilizer) Tick(stack func() []mem.Addr) {
	s.stackFn = stack
	if !s.timerArmed {
		return
	}
	if s.opts.Adaptive && s.mach.Cycles >= s.nextSample {
		s.adaptiveSample()
	}
	if s.mach.Cycles < s.nextRerand {
		return
	}
	s.rerandomize()
}

// adaptiveSample compares this window's layout-problem rate (I-cache misses
// and mispredictions per instruction) against a running average; a spike
// means the current random layout is unlucky, and re-randomizing now is
// cheaper than living with it until the timer.
func (s *Stabilizer) adaptiveSample() {
	s.nextSample = s.mach.Cycles + s.sampleWindow
	cur := s.snapshot()
	dInstr := cur.instructions - s.lastSample.instructions
	dBad := (cur.l1iMisses - s.lastSample.l1iMisses) +
		(cur.mispredicts - s.lastSample.mispredicts)
	s.lastSample = cur
	if dInstr < 1000 {
		return // too little progress to estimate a rate
	}
	rate := float64(dBad) / float64(dInstr)
	if s.coolingDown {
		// The window right after a re-randomization is cold-cache warmup;
		// comparing it against the baseline would re-trigger forever.
		s.coolingDown = false
		return
	}
	if !s.ewmaPrimed {
		s.rateEWMA = rate
		s.ewmaPrimed = true
		return
	}
	if rate > s.opts.AdaptiveFactor*s.rateEWMA && s.rateEWMA > 0 {
		s.Stats.AdaptiveTriggers++
		s.rerandomize()
		return
	}
	s.rateEWMA = 0.875*s.rateEWMA + 0.125*rate
}

// rerandomize is the §3.3 timer body: trap all live functions, pile their
// memory, refill pad tables, and rearm the timer.
func (s *Stabilizer) rerandomize() {
	s.nextRerand = s.mach.Cycles + s.opts.Interval
	s.Stats.Rerands++
	s.mach.Stall(s.cost.TimerFixed)
	s.coolingDown = true

	if s.opts.Code {
		// Trap every relocated function; its memory goes on the pile and is
		// freed once no return address pins it.
		live := uint64(0)
		for fi := range s.funcs {
			st := &s.funcs[fi]
			if s.m.Funcs[fi].NoRelocate {
				continue
			}
			if st.allocBase != 0 {
				s.pile = append(s.pile, pileEntry{base: st.allocBase, size: st.allocSize})
				st.allocBase = 0
			}
			st.trapped = true
			live++
		}
		s.gcPending = true
		s.mach.Stall(s.cost.TimerPerFn * live)
	}
	if s.opts.Stack {
		s.refillPadTables()
		s.mach.Stall(s.cost.TimerPerFn * uint64(len(s.padTables)))
	}
}

// refillPadTables fills every function's pad table with fresh random bytes.
func (s *Stabilizer) refillPadTables() {
	for fi := range s.padTables {
		tbl := s.padTables[fi]
		for i := 0; i < len(tbl); i += 4 {
			v := s.rStack.Next()
			tbl[i] = uint8(v)
			tbl[i+1] = uint8(v >> 8)
			tbl[i+2] = uint8(v >> 16)
			tbl[i+3] = uint8(v >> 24)
		}
	}
}

// RelocCall implements interp.Runtime: calls from relocated code go through
// the caller's relocation table.
func (s *Stabilizer) RelocCall(curFn, callee int) (mem.Addr, bool) {
	if !s.opts.Code {
		return 0, false
	}
	st := &s.funcs[curFn]
	if st.relocTable == 0 {
		return 0, false // caller not relocated (NoRelocate functions)
	}
	slot := s.slots[curFn][callee]
	if slot < 0 {
		return 0, false
	}
	return st.relocTable + mem.Addr(slot)*relocSlotSize, true
}

// RelocGlobal implements interp.Runtime.
func (s *Stabilizer) RelocGlobal(curFn, g int) (mem.Addr, bool) {
	if !s.opts.Code {
		return 0, false
	}
	st := &s.funcs[curFn]
	if st.relocTable == 0 {
		return 0, false
	}
	slot := s.slots[curFn][len(s.m.Funcs)+g]
	if slot < 0 {
		return 0, false
	}
	return st.relocTable + mem.Addr(slot)*relocSlotSize, true
}

// Alloc implements interp.Runtime. Allocator faults (exhaustion) propagate
// as typed traps for the interpreter to surface.
func (s *Stabilizer) Alloc(size uint64) (mem.Addr, error) {
	s.mach.Stall(interp.MallocCost)
	if s.opts.Heap {
		s.mach.Stall(s.cost.ShuffleMall)
	}
	return s.heapAlloc.Alloc(size)
}

// Free implements interp.Runtime.
func (s *Stabilizer) Free(addr mem.Addr) error {
	s.mach.Stall(interp.FreeCost)
	if s.opts.Heap {
		s.mach.Stall(s.cost.ShuffleFree)
	}
	return s.heapAlloc.Free(addr)
}

// SetHeapAllocator replaces the program heap. The semantic-invariance
// oracle uses this to sweep the allocator axis of its matrix (and its tests
// to inject deliberately layout-dependent allocators) without duplicating
// the Options plumbing.
func (s *Stabilizer) SetHeapAllocator(a heap.Allocator) { s.heapAlloc = a }
