package nist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// goodBits returns n bits from a strong generator (SplitMix via Marsaglia's
// 64-bit output is fine for these tests).
func goodBits(n int, seed uint64) *Bits {
	r := rng.NewMarsaglia(seed)
	b := NewBits(n)
	for b.Len() < n {
		b.Append(r.Next64(), 64)
	}
	return b
}

func TestBitsAppendAndRead(t *testing.T) {
	b := NewBits(16)
	b.Append(0b1011, 4)
	b.Append(0b0, 2)
	want := []int{1, 1, 0, 1, 0, 0}
	if b.Len() != 6 {
		t.Fatalf("len %d", b.Len())
	}
	for i, w := range want {
		if b.Bit(i) != w {
			t.Fatalf("bit %d = %d, want %d", i, b.Bit(i), w)
		}
	}
	if b.Ones() != 3 {
		t.Fatalf("ones %d", b.Ones())
	}
}

func TestBitsFromValuesExtractsRange(t *testing.T) {
	// Value with known bits: extract bits 6..17.
	v := uint64(0b101010101010) << 6
	b := BitsFromValues([]uint64{v}, 6, 17)
	if b.Len() != 12 {
		t.Fatalf("len %d", b.Len())
	}
	for i := 0; i < 12; i++ {
		want := (0b101010101010 >> i) & 1
		if b.Bit(i) != want {
			t.Fatalf("bit %d = %d, want %d", i, b.Bit(i), want)
		}
	}
}

func TestSuitePassesOnGoodGenerator(t *testing.T) {
	// p-values are uniform under the null, so any single (seed, test) pair
	// can dip below 0.05; require each test to pass for a clear majority
	// of seeds, which a good generator satisfies overwhelmingly.
	const seeds = 9
	passCount := map[string]int{}
	for seed := uint64(0); seed < seeds; seed++ {
		b := goodBits(1<<16, 1000+seed)
		for _, res := range Suite(b) {
			if math.IsNaN(res.P) {
				t.Fatalf("%s: NaN p-value", res.Name)
			}
			if res.Pass() {
				passCount[res.Name]++
			}
		}
	}
	for name, n := range passCount {
		if n < seeds-2 {
			t.Errorf("%s passed only %d/%d seeds on a good generator", name, n, seeds)
		}
	}
	if len(passCount) != 7 {
		t.Fatalf("expected 7 tests, saw %d", len(passCount))
	}
}

func TestFrequencyFailsOnBiasedStream(t *testing.T) {
	b := NewBits(10000)
	r := rng.NewMarsaglia(1)
	for i := 0; i < 10000; i++ {
		// 60% ones.
		if r.Float64() < 0.6 {
			b.Append(1, 1)
		} else {
			b.Append(0, 1)
		}
	}
	if Frequency(b).Pass() {
		t.Fatal("frequency test passed a stream with 60 percent ones")
	}
}

func TestRunsFailsOnAlternatingStream(t *testing.T) {
	b := NewBits(10000)
	for i := 0; i < 10000; i++ {
		b.Append(uint64(i%2), 1)
	}
	if Runs(b).Pass() {
		t.Fatal("runs test passed a strictly alternating stream")
	}
}

func TestBlockFrequencyFailsOnClusteredStream(t *testing.T) {
	b := NewBits(1 << 14)
	for i := 0; i < 1<<14; i++ {
		// Alternate all-ones and all-zeros 128-bit blocks: globally
		// balanced but catastrophic per block.
		b.Append(uint64((i/128)%2), 1)
	}
	if BlockFrequency(b, 128).Pass() {
		t.Fatal("block frequency passed clustered stream")
	}
}

func TestCumulativeSumsFailsOnDriftingStream(t *testing.T) {
	b := NewBits(10000)
	r := rng.NewMarsaglia(5)
	for i := 0; i < 10000; i++ {
		if r.Float64() < 0.53 {
			b.Append(1, 1)
		} else {
			b.Append(0, 1)
		}
	}
	if CumulativeSums(b).Pass() {
		t.Fatal("cusum passed a drifting stream")
	}
}

func TestLongestRunFailsOnRunFreeStream(t *testing.T) {
	// A stream with no run of ones longer than 2 is badly non-random for
	// the longest-run statistic.
	b := NewBits(1 << 14)
	for i := 0; i < 1<<14; i++ {
		b.Append(uint64(1-((i/2)%2)), 1) // 1,1,0,0,1,1,...
	}
	if LongestRun(b).Pass() {
		t.Fatal("longest-run passed a max-run-2 stream")
	}
}

func TestFFTFailsOnPeriodicStream(t *testing.T) {
	b := NewBits(1 << 14)
	for i := 0; i < 1<<14; i++ {
		bit := uint64(0)
		if i%8 < 2 {
			bit = 1
		}
		b.Append(bit, 1)
	}
	if FFT(b).Pass() {
		t.Fatal("spectral test passed a periodic stream")
	}
}

func TestRankFailsOnLowRankStream(t *testing.T) {
	// Repeat each 32-bit row 32 times: every matrix has rank 1.
	b := NewBits(40 * 1024)
	r := rng.NewMarsaglia(9)
	for m := 0; m < 40; m++ {
		row := r.Next64()
		for i := 0; i < 32; i++ {
			b.Append(row, 32)
		}
	}
	if Rank(b).Pass() {
		t.Fatal("rank test passed rank-1 matrices")
	}
}

func TestRank32(t *testing.T) {
	var id [32]uint32
	for i := range id {
		id[i] = 1 << uint(i)
	}
	if rank32(id) != 32 {
		t.Fatal("identity not full rank")
	}
	var zero [32]uint32
	if rank32(zero) != 0 {
		t.Fatal("zero matrix has nonzero rank")
	}
	var dup [32]uint32
	for i := range dup {
		dup[i] = 0xdeadbeef
	}
	if rank32(dup) != 1 {
		t.Fatal("duplicated rows should have rank 1")
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := rng.NewMarsaglia(11)
	const n = 64
	x := make([]complex128, n)
	ref := make([]complex128, n)
	for i := range x {
		v := complex(r.Float64()-0.5, 0)
		x[i] = v
		ref[i] = v
	}
	fft(x)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / n
			sum += ref[j] * complex(math.Cos(angle), math.Sin(angle))
		}
		if d := sum - x[k]; math.Abs(real(d)) > 1e-9 || math.Abs(imag(d)) > 1e-9 {
			t.Fatalf("FFT[%d] = %v, naive DFT = %v", k, x[k], sum)
		}
	}
}

func TestLrand48PassesSixTests(t *testing.T) {
	// §3.2: lrand48 passes Frequency, BlockFrequency, CumulativeSums, Runs,
	// LongestRun, and FFT. (The paper reports it fails only Rank; with a
	// single stream Rank is borderline, so this test pins the six passes.)
	l := rng.NewLrand48(12345)
	vals := make([]uint64, 12000)
	for i := range vals {
		vals[i] = uint64(l.Next())
	}
	b := BitsFromValues(vals, 6, 17)
	for _, res := range Suite(b)[:6] {
		if !res.Pass() {
			t.Errorf("lrand48 failed %s: p=%v", res.Name, res.P)
		}
	}
}
