// Package obs is the observability layer of the reproduction: a metrics
// registry (counters, gauges, log-bucketed histograms), a leveled
// structured JSONL logger, a span tracer emitting Chrome trace-event JSON,
// and the layout-attribution profiler that turns the machine model's
// counters into per-function diagnoses.
//
// The paper explains randomization's effects by pointing at specific
// microarchitectural mechanisms — cache-set conflicts, branch-predictor
// aliasing, TLB pressure (§5.2). The profiler in this package makes those
// explanations checkable in the substrate: it attributes per-window machine
// counter deltas to the executing function (and call stack), and its
// set-conflict report names the function pairs whose code or data collide
// in the same cache sets.
//
// Determinism discipline: everything derived from the simulated machine
// (profiles, folded stacks, flame-chart events on the simulated-cycle time
// axis, counter aggregates) is deterministic under a fixed seed and
// byte-identical at any worker count. Wall-clock measurements exist too —
// engine span durations, cell throughput — but they are confined to
// clearly marked non-golden fields (histograms registered with NonGolden,
// the tracer's wall-clock timestamps, logger fields suffixed "_nongolden")
// and are excluded from golden artifact encodings by default.
package obs

import "io"

// Scope bundles the three observability sinks a component needs: where to
// count, where to log, and where to trace. Any field may be nil; the
// helpers on each type are nil-receiver safe, so a partially constructed
// scope costs nothing on the disabled paths.
type Scope struct {
	Metrics *Registry
	Log     *Logger
	Trace   *Tracer
}

// NewScope returns a scope with a fresh registry and tracer and a logger
// that discards output (swap in NewLogger(w, level) to keep a run log).
func NewScope() *Scope {
	return &Scope{
		Metrics: NewRegistry(),
		Log:     NewLogger(io.Discard, LevelInfo),
		Trace:   NewTracer(),
	}
}
