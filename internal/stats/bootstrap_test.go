package stats

import (
	"math"
	"testing"
)

// symmetricSample returns n deterministic values following a normal shape:
// the quantiles of N(mu, sigma) at evenly spaced probabilities.
func symmetricSample(n int, mu, sigma float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		p := (float64(i) + 0.5) / float64(n)
		xs[i] = mu + sigma*NormalQuantile(p)
	}
	return xs
}

// skewedSample returns n deterministic lognormal-shaped values.
func skewedSample(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		p := (float64(i) + 0.5) / float64(n)
		xs[i] = math.Exp(NormalQuantile(p))
	}
	return xs
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := symmetricSample(40, 10, 2)
	a := BootstrapCI(xs, Mean, 500, 0.95, 7)
	b := BootstrapCI(xs, Mean, 500, 0.95, 7)
	if a != b {
		t.Errorf("same seed gave different intervals: %+v vs %+v", a, b)
	}
	c := BootstrapCI(xs, Mean, 500, 0.95, 8)
	if a == c {
		t.Errorf("different seeds gave identical intervals: %+v", a)
	}
}

func TestBootstrapCIHalfWidthMatchesNormalTheory(t *testing.T) {
	// For the mean of a well-behaved sample the 95% percentile bootstrap CI
	// should approximate mean ± 1.96·s/√n.
	xs := symmetricSample(100, 50, 5)
	iv := BootstrapCI(xs, Mean, 4000, 0.95, 1)
	m := Mean(xs)
	if !iv.Contains(m) {
		t.Fatalf("CI %+v does not contain the sample mean %v", iv, m)
	}
	want := 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	if hw := iv.HalfWidth(); math.Abs(hw-want) > 0.25*want {
		t.Errorf("half-width %.4f, normal theory %.4f", hw, want)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	iv := BootstrapCI([]float64{3, 3, 3, 3}, Mean, 100, 0.95, 1)
	if iv.Lo != 3 || iv.Hi != 3 {
		t.Errorf("constant sample: got %+v, want [3, 3]", iv)
	}
	iv = BootstrapCI(nil, Mean, 100, 0.95, 1)
	if !math.IsNaN(iv.Lo) || !math.IsNaN(iv.Hi) {
		t.Errorf("empty sample: got %+v, want NaNs", iv)
	}
}

func TestBootstrapBCaCI(t *testing.T) {
	// Symmetric data: BCa stays close to the percentile interval.
	sym := symmetricSample(60, 20, 3)
	perc := BootstrapCI(sym, Mean, 3000, 0.95, 3)
	bca := BootstrapBCaCI(sym, Mean, 3000, 0.95, 3)
	if !bca.Contains(Mean(sym)) {
		t.Fatalf("BCa %+v does not contain the mean", bca)
	}
	if d := math.Abs(bca.Lo-perc.Lo) + math.Abs(bca.Hi-perc.Hi); d > perc.HalfWidth() {
		t.Errorf("BCa %+v far from percentile %+v on symmetric data", bca, perc)
	}

	// Right-skewed data: the bias correction and acceleration shift both
	// endpoints toward the long (right) tail.
	skew := skewedSample(60)
	perc = BootstrapCI(skew, Mean, 3000, 0.95, 3)
	bca = BootstrapBCaCI(skew, Mean, 3000, 0.95, 3)
	if bca.Hi < perc.Hi {
		t.Errorf("BCa upper %.4f below percentile upper %.4f on right-skewed data", bca.Hi, perc.Hi)
	}
	if bca.Lo < perc.Lo {
		t.Errorf("BCa lower %.4f below percentile lower %.4f on right-skewed data", bca.Lo, perc.Lo)
	}
}

func TestBootstrapRatioCI(t *testing.T) {
	// Identical samples: both intervals must contain 1.
	xs := symmetricSample(30, 1, 0.01)
	perc, bca := BootstrapRatioCI(xs, xs, 2000, 0.95, 5)
	if !perc.Contains(1) || !bca.Contains(1) {
		t.Errorf("identical samples: percentile %+v, BCa %+v should contain 1", perc, bca)
	}

	// A 5% slowdown with small noise: both intervals exclude 1 and sit
	// near 1/1.05.
	slow := make([]float64, len(xs))
	for i, x := range xs {
		slow[i] = 1.05 * x
	}
	perc, bca = BootstrapRatioCI(xs, slow, 2000, 0.95, 5)
	want := 1 / 1.05
	for _, iv := range []Interval{perc, bca} {
		if iv.Contains(1) {
			t.Errorf("5%% slowdown: interval %+v should exclude 1", iv)
		}
		if !iv.Contains(want) || iv.HalfWidth() > 0.02 {
			t.Errorf("interval %+v should tightly cover %.4f", iv, want)
		}
	}

	// Determinism.
	p2, b2 := BootstrapRatioCI(xs, slow, 2000, 0.95, 5)
	if p2 != perc || b2 != bca {
		t.Errorf("ratio CI not deterministic")
	}
}
