package core_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
)

// buildProgram returns a compiled, stabilized module with several functions,
// heap churn, globals, and floating point.
func buildProgram(t *testing.T) *ir.Module {
	t.Helper()
	mb := ir.NewModuleBuilder("prog")
	gsum := mb.Global("gsum", 8)
	gtab := mb.GlobalInit("gtab", []int64{2, 7, 1, 8, 2, 8, 1, 8})

	mix := mb.Func("mix", 2)
	a, b := mix.Param(0), mix.Param(1)
	h := mix.Xor(mix.Mul(a, mix.ConstI(31)), b)
	mix.Ret(mix.Xor(h, mix.Shr(h, mix.ConstI(7))))

	fphase := mb.Func("fphase", 1)
	x := fphase.I2F(fphase.Param(0))
	y := fphase.FMul(x, fphase.ConstF(1.25))
	fphase.Ret(fphase.F2I(fphase.FAdd(y, fphase.ConstF(0.5))))

	work := mb.Func("work", 1)
	buf := work.Slot("buf", 64)
	n := work.Param(0)
	acc := work.ConstI(0)
	work.Loop(n, func(i ir.Reg) {
		idx := work.Rem(i, work.ConstI(8))
		work.StoreS(buf, 0, idx, work.Call(mix.Index(), i, idx))
		work.MovTo(acc, work.Add(acc, work.LoadS(buf, 0, idx)))
	})
	work.Ret(acc)

	main := mb.Func("main", 0)
	total := main.ConstI(0)
	main.LoopN(120, func(i ir.Reg) {
		p := main.Alloc(96)
		main.StoreH(p, 0, ir.NoReg, i)
		g := main.LoadG(gtab, 0, main.Rem(i, main.ConstI(8)))
		w := main.Call(work.Index(), main.Add(g, main.ConstI(12)))
		fv := main.Call(fphase.Index(), i)
		main.MovTo(total, main.Add(total, main.Add(w, main.Add(fv, main.LoadH(p, 0, ir.NoReg)))))
		main.Free(p)
	})
	main.StoreG(gsum, 0, ir.NoReg, total)
	main.Sink(main.LoadG(gsum, 0, ir.NoReg))
	main.Ret(ir.NoReg)

	// -O1: the -O2 inliner would collapse this small program into main,
	// leaving nothing to relocate (the paper's single-function caveat, §4).
	m, err := compiler.Compile(mb.Module(), compiler.Options{Level: compiler.O1, Stabilize: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runWith executes m under a Stabilizer with the given options and returns
// the result plus the runtime for stats inspection.
func runWith(t *testing.T, m *ir.Module, opts core.Options) (interp.Result, *core.Stabilizer) {
	t.Helper()
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(machine.DefaultConfig())
	st, err := core.New(m, mach, as, img.FuncAddrs, img.GlobalAddrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: st})
	if err != nil {
		t.Fatalf("stabilized run failed (%s): %v", opts.EnabledString(), err)
	}
	return res, st
}

// runNative executes m with the plain static runtime.
func runNative(t *testing.T, m *ir.Module) interp.Result {
	t.Helper()
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.New(machine.DefaultConfig())
	res, err := interp.Run(m, interp.Options{Machine: mach, Runtime: &interp.NativeRuntime{
		FuncAddrs:   img.FuncAddrs,
		GlobalAddrs: img.GlobalAddrs,
		Stack:       as.StackBase(),
		Heap:        heap.NewSegregated(as),
		Mach:        mach,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOutputUnchangedUnderEveryConfiguration(t *testing.T) {
	m := buildProgram(t)
	ref := runNative(t, m)
	configs := []core.Options{
		{Code: true, Seed: 1},
		{Stack: true, Seed: 1},
		{Heap: true, Seed: 1},
		{Code: true, Stack: true, Seed: 1},
		{Code: true, Heap: true, Stack: true, Seed: 1},
		{Code: true, Heap: true, Stack: true, Rerandomize: true, Interval: 20_000, Seed: 1},
		{Code: true, Heap: true, Stack: true, Rerandomize: true, Interval: 20_000, Seed: 2, UseTLSF: true},
	}
	for _, cfg := range configs {
		res, _ := runWith(t, m, cfg)
		if res.Output != ref.Output {
			t.Errorf("config %s rerand=%v changed output: %#x != %#x",
				cfg.EnabledString(), cfg.Rerandomize, res.Output, ref.Output)
		}
	}
}

func TestCodeRandomizationRelocatesOnDemand(t *testing.T) {
	m := buildProgram(t)
	_, st := runWith(t, m, core.Options{Code: true, Seed: 3})
	if st.Stats.Relocations == 0 || st.Stats.Traps == 0 {
		t.Fatalf("no relocations happened: %+v", st.Stats)
	}
	// Without re-randomization each called function relocates exactly once.
	if st.Stats.Relocations != st.Stats.Traps {
		t.Fatalf("traps (%d) != relocations (%d)", st.Stats.Traps, st.Stats.Relocations)
	}
	if st.Stats.Rerands != 0 {
		t.Fatal("re-randomization fired without being enabled")
	}
}

func TestFunctionsMoveToCodeHeap(t *testing.T) {
	m := buildProgram(t)
	_, st := runWith(t, m, core.Options{Code: true, Seed: 4})
	mainIdx := m.Entry()
	addr := st.CodeBase(mainIdx)
	if addr == mem.CodeBase || addr < mem.MmapLow32 {
		t.Fatalf("main still at/near static address %#x", uint64(addr))
	}
	if !mem.Below4G(addr) {
		t.Fatalf("relocated main above 4 GiB (%#x) while low memory was available", uint64(addr))
	}
}

func TestNoRelocateFunctionsStayPut(t *testing.T) {
	m := buildProgram(t)
	i2f := m.FuncIndex("__sz_i2f")
	if i2f < 0 {
		t.Skip("program has no conversion outlines")
	}
	as := mem.NewAddressSpace()
	img, _ := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	mach := machine.New(machine.DefaultConfig())
	st, err := core.New(m, mach, as, img.FuncAddrs, img.GlobalAddrs,
		core.Options{Code: true, Rerandomize: true, Interval: 10_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(m, interp.Options{Machine: mach, Runtime: st}); err != nil {
		t.Fatal(err)
	}
	if st.CodeBase(i2f) != img.FuncAddrs[i2f] {
		t.Fatal("NoRelocate conversion function was moved")
	}
}

func TestRerandomizationFiresAndGCs(t *testing.T) {
	m := buildProgram(t)
	res, st := runWith(t, m, core.Options{
		Code: true, Stack: true, Heap: true,
		Rerandomize: true, Interval: 10_000, Seed: 6,
	})
	minRerands := res.Cycles / 10_000 / 2 // at least half the scheduled ticks
	if st.Stats.Rerands < minRerands {
		t.Fatalf("only %d re-randomizations over %d cycles", st.Stats.Rerands, res.Cycles)
	}
	if st.Stats.Relocations <= st.Stats.Rerands {
		t.Fatalf("too few relocations (%d) for %d re-randomizations",
			st.Stats.Relocations, st.Stats.Rerands)
	}
	if st.Stats.GCFreed == 0 {
		t.Fatal("code GC never freed anything")
	}
}

func TestRerandomizationMovesFunctions(t *testing.T) {
	m := buildProgram(t)
	as := mem.NewAddressSpace()
	img, _ := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	mach := machine.New(machine.DefaultConfig())
	st, err := core.New(m, mach, as, img.FuncAddrs, img.GlobalAddrs,
		core.Options{Code: true, Rerandomize: true, Interval: 5_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(m, interp.Options{Machine: mach, Runtime: st}); err != nil {
		t.Fatal(err)
	}
	// With dozens of re-randomizations, main must have moved from wherever
	// its first relocation put it. We can't observe history directly, but
	// relocations >> functions implies movement.
	if st.Stats.Relocations < 3*uint64(len(m.Funcs)) {
		t.Fatalf("expected many relocations, got %d for %d functions",
			st.Stats.Relocations, len(m.Funcs))
	}
}

func TestStackPadsVaryAndAreAligned(t *testing.T) {
	m := buildProgram(t)
	as := mem.NewAddressSpace()
	img, _ := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	mach := machine.New(machine.DefaultConfig())
	st, err := core.New(m, mach, as, img.FuncAddrs, img.GlobalAddrs,
		core.Options{Stack: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	fn := m.Entry()
	for i := 0; i < 300; i++ {
		pad := st.BeforeCall(fn)
		if pad%16 != 0 {
			t.Fatalf("pad %d not 16-byte aligned", pad)
		}
		if pad > 255*16 {
			t.Fatalf("pad %d exceeds a page", pad)
		}
		seen[pad] = true
	}
	if len(seen) < 20 {
		t.Fatalf("only %d distinct pads in 300 calls", len(seen))
	}
}

func TestSeedsReproduceLayouts(t *testing.T) {
	m := buildProgram(t)
	r1, _ := runWith(t, m, core.AllRandomizations(42))
	r2, _ := runWith(t, m, core.AllRandomizations(42))
	if r1.Cycles != r2.Cycles {
		t.Fatalf("same seed, different cycles: %d vs %d", r1.Cycles, r2.Cycles)
	}
	r3, _ := runWith(t, m, core.AllRandomizations(43))
	if r3.Cycles == r1.Cycles {
		t.Fatal("different seeds produced identical cycle counts — randomization inert?")
	}
}

func TestDifferentSeedsDifferentLayoutCosts(t *testing.T) {
	// One-time randomization across seeds is exactly "sampling the space of
	// layouts": cycle counts must vary.
	m := buildProgram(t)
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		r, _ := runWith(t, m, core.Options{Code: true, Stack: true, Heap: true, Seed: seed})
		seen[r.Cycles] = true
	}
	if len(seen) < 6 {
		t.Fatalf("only %d distinct cycle counts across 8 layouts", len(seen))
	}
}

func TestStabilizerOverheadIsBounded(t *testing.T) {
	m := buildProgram(t)
	native := runNative(t, m)
	stab, _ := runWith(t, m, core.Options{
		Code: true, Stack: true, Heap: true, Rerandomize: true,
		Interval: 50_000, Seed: 9,
	})
	overhead := float64(stab.Cycles)/float64(native.Cycles) - 1
	if overhead < 0 {
		t.Logf("note: stabilized run faster than native (%.1f%%) — lucky layouts happen", overhead*100)
	}
	if overhead > 1.0 {
		t.Fatalf("overhead %.0f%% is far beyond the paper's <40%% worst case", overhead*100)
	}
}

func TestEnabledString(t *testing.T) {
	cases := []struct {
		o    core.Options
		want string
	}{
		{core.Options{}, "none"},
		{core.Options{Code: true}, "code"},
		{core.Options{Code: true, Stack: true}, "code.stack"},
		{core.Options{Code: true, Heap: true, Stack: true}, "code.heap.stack"},
	}
	for _, c := range cases {
		if got := c.o.EnabledString(); got != c.want {
			t.Errorf("EnabledString() = %q, want %q", got, c.want)
		}
	}
}

func TestImageMismatchRejected(t *testing.T) {
	m := buildProgram(t)
	mach := machine.New(machine.DefaultConfig())
	as := mem.NewAddressSpace()
	_, err := core.New(m, mach, as, nil, nil, core.Options{})
	if err == nil {
		t.Fatal("mismatched image accepted")
	}
}

func TestFineGrainCodeRandomization(t *testing.T) {
	m := buildProgram(t)
	ref := runNative(t, m)
	opts := core.Options{Code: true, FineGrainCode: true, Rerandomize: true, Interval: 10_000, Seed: 11}
	res, st := runWith(t, m, opts)
	if res.Output != ref.Output {
		t.Fatalf("fine-grain randomization changed output: %#x != %#x", res.Output, ref.Output)
	}
	if st.Stats.Relocations == 0 {
		t.Fatal("no relocations under fine-grain mode")
	}
	// Block offsets must exist for relocated functions and differ from the
	// static layout for at least some multi-block function.
	moved := false
	for fi, f := range m.Funcs {
		offs := st.BlockOffsets(fi)
		if offs == nil {
			continue
		}
		if len(offs) != len(f.Blocks) {
			t.Fatalf("fn %d: %d offsets for %d blocks", fi, len(offs), len(f.Blocks))
		}
		for bi, b := range f.Blocks {
			if offs[bi] != b.Off {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("no block ever moved from its static offset")
	}
}

func TestFineGrainOffsetsDisjoint(t *testing.T) {
	m := buildProgram(t)
	_, st := runWith(t, m, core.Options{Code: true, FineGrainCode: true, Seed: 12})
	for fi, f := range m.Funcs {
		offs := st.BlockOffsets(fi)
		if offs == nil {
			continue
		}
		// No two blocks of one copy may overlap.
		type span struct{ lo, hi uint64 }
		var spans []span
		for bi, b := range f.Blocks {
			spans = append(spans, span{offs[bi], offs[bi] + b.Size})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.lo < b.hi && b.lo < a.hi && a.lo != a.hi && b.lo != b.hi {
					t.Fatalf("fn %d: blocks %d and %d overlap: %+v %+v", fi, i, j, a, b)
				}
			}
		}
	}
}

func TestAdaptiveRerandomization(t *testing.T) {
	m := buildProgram(t)
	ref := runNative(t, m)
	opts := core.Options{
		Code: true, Stack: true, Heap: true,
		Rerandomize: true, Interval: 40_000,
		Adaptive: true, Seed: 21,
	}
	res, st := runWith(t, m, opts)
	if res.Output != ref.Output {
		t.Fatalf("adaptive mode changed output: %#x != %#x", res.Output, ref.Output)
	}
	if st.Stats.Rerands == 0 {
		t.Fatal("no re-randomizations under adaptive mode")
	}
	// Adaptive triggers are opportunistic: allow zero, but when they fire
	// they must be counted inside the rerand total.
	if st.Stats.AdaptiveTriggers > st.Stats.Rerands {
		t.Fatalf("adaptive triggers (%d) exceed rerands (%d)",
			st.Stats.AdaptiveTriggers, st.Stats.Rerands)
	}
}

func TestAdaptiveTriggersOnPhaseChange(t *testing.T) {
	// A program with a benign phase followed by a miss-heavy phase: the
	// sampler's baseline settles during phase one, so the phase-two rate
	// spike must fire an early re-randomization.
	mb := ir.NewModuleBuilder("phases")
	big := mb.Global("big", 512<<10)
	main := mb.Func("main", 0)
	acc := main.ConstI(1)
	// Phase 1: pure arithmetic, near-zero miss rate.
	main.LoopN(30_000, func(i ir.Reg) {
		main.MovTo(acc, main.Add(main.Mul(acc, main.ConstI(33)), i))
	})
	// Phase 2: a large strided sweep, suddenly miss-heavy.
	main.LoopN(30_000, func(i ir.Reg) {
		idx := main.Rem(main.Mul(i, main.ConstI(97)), main.ConstI((512<<10)/8))
		v := main.LoadG(big, 0, idx)
		main.StoreG(big, 0, idx, main.Add(v, i))
		main.MovTo(acc, main.Xor(acc, v))
	})
	main.Sink(acc)
	main.Ret(ir.NoReg)
	m, err := compiler.Compile(mb.Module(), compiler.Options{Level: compiler.O1, Stabilize: true})
	if err != nil {
		t.Fatal(err)
	}

	var triggers uint64
	for seed := uint64(0); seed < 4; seed++ {
		_, st := runWith(t, m, core.Options{
			Code: true, Rerandomize: true, Interval: 200_000,
			Adaptive: true, AdaptiveFactor: 1.3, Seed: seed,
		})
		triggers += st.Stats.AdaptiveTriggers
	}
	if triggers == 0 {
		t.Fatal("adaptive sampler missed the phase change on every seed")
	}
}

func TestHeapSubstrateOptions(t *testing.T) {
	m := buildProgram(t)
	ref := runNative(t, m)
	configs := []core.Options{
		{Heap: true, UseDieHard: true, Seed: 31},
		{Heap: true, UseTLSF: true, Seed: 31},
		{Code: true, Heap: true, Stack: true, UseDieHard: true, Rerandomize: true, Interval: 20_000, Seed: 32},
	}
	var cycles []uint64
	for _, cfg := range configs {
		res, _ := runWith(t, m, cfg)
		if res.Output != ref.Output {
			t.Errorf("substrate %+v changed output", cfg)
		}
		cycles = append(cycles, res.Cycles)
	}
	// DieHard's no-reuse policy must cost more than the shuffled TLSF on a
	// churn-heavy program.
	if cycles[0] <= cycles[1] {
		t.Logf("note: diehard (%d cycles) not slower than tlsf (%d) on this program", cycles[0], cycles[1])
	}
}

func TestStatsExposedThroughExperimentPath(t *testing.T) {
	// The runtime's Stats must reflect what happened even with every
	// feature enabled at once (fine-grain + adaptive + all randomizations).
	m := buildProgram(t)
	opts := core.Options{
		Code: true, Stack: true, Heap: true,
		Rerandomize: true, Interval: 15_000,
		FineGrainCode: true, Adaptive: true, Seed: 77,
	}
	res, st := runWith(t, m, opts)
	if res.Output == 0 {
		t.Fatal("no output")
	}
	if st.Stats.Relocations == 0 || st.Stats.Rerands == 0 {
		t.Fatalf("stats empty: %+v", st.Stats)
	}
}
