package experiment

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// writeCSV writes rows to dir/name.csv.
func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// WriteCSV dumps the Table 1 data plus per-benchmark QQ series (Figure 5)
// into dir.
func (r *NormalityResult) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Benchmark, f64(row.SWOnce), f64(row.SWRerand),
			f64(row.BrownForsythe), f64(row.VarianceChange),
		})
	}
	if err := writeCSV(dir, "table1_normality",
		[]string{"benchmark", "sw_once_p", "sw_rerand_p", "brown_forsythe_p", "variance_change"}, rows); err != nil {
		return err
	}
	var qq [][]string
	for _, row := range r.Rows {
		for i := range row.QQOnce {
			qq = append(qq, []string{
				row.Benchmark, f64(row.QQOnce[i].Theoretical),
				f64(row.QQOnce[i].Observed), f64(row.QQRerand[i].Observed),
			})
		}
	}
	return writeCSV(dir, "fig5_qq",
		[]string{"benchmark", "theoretical", "observed_once", "observed_rerand"}, qq)
}

// WriteCSV dumps Figure 6 into dir.
func (r *OverheadResult) WriteCSV(dir string) error {
	header := append([]string{"benchmark"}, r.Configs...)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rec := []string{row.Benchmark}
		for _, o := range row.Overhead {
			rec = append(rec, f64(o))
		}
		rows = append(rows, rec)
	}
	return writeCSV(dir, "fig6_overhead", header, rows)
}

// WriteCSV dumps Figure 7 into dir.
func (r *SpeedupResult) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Benchmark,
			f64(row.SpeedupO2), fmt.Sprint(row.SignificantO2), f64(row.PO2),
			f64(row.SpeedupO3), fmt.Sprint(row.SignificantO3), f64(row.PO3),
		})
	}
	return writeCSV(dir, "fig7_speedup",
		[]string{"benchmark", "speedup_o2", "sig_o2", "p_o2", "speedup_o3", "sig_o3", "p_o3"}, rows)
}

// WriteCSV dumps the link-order experiment into dir.
func (r *LinkOrderResult) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Benchmark, f64(row.Best), f64(row.Worst), f64(row.Default), f64(row.MaxDegradation),
		})
	}
	return writeCSV(dir, "e1_linkorder",
		[]string{"benchmark", "best_s", "worst_s", "default_s", "max_degradation"}, rows)
}

// WriteCSV dumps the env-size sweep into dir.
func (r *EnvSizeResult) WriteCSV(dir string) error {
	var rows [][]string
	for _, row := range r.Rows {
		for i, s := range row.Seconds {
			rows = append(rows, []string{
				row.Benchmark, strconv.FormatUint(r.EnvSizes[i], 10), f64(s),
			})
		}
	}
	return writeCSV(dir, "e2_envsize", []string{"benchmark", "env_bytes", "seconds"}, rows)
}

// WriteCSV dumps the NIST table into dir.
func (r *NISTResult) WriteCSV(dir string) error {
	header := []string{"source"}
	for _, res := range r.Rows[0].Results {
		header = append(header, res.Name)
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rec := []string{row.Source}
		for _, res := range row.Results {
			rec = append(rec, f64(res.P))
		}
		rows = append(rows, rec)
	}
	return writeCSV(dir, "e3_nist", header, rows)
}

// WriteCSV dumps the interval ablation into dir.
func (r *IntervalAblation) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			strconv.FormatUint(row.Interval, 10), f64(row.PeriodsPerRun),
			f64(row.SWp), f64(row.CV), f64(row.MeanOverhead),
		})
	}
	return writeCSV(dir, "e9_interval",
		[]string{"interval_cycles", "periods_per_run", "sw_p", "cv", "overhead"}, rows)
}

// WriteCSV dumps the shuffle-depth/substrate ablation into dir.
func (r *ShuffleDepthAblation) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Label, f64(row.Overhead), f64(row.CV)})
	}
	return writeCSV(dir, "e10_shuffledepth", []string{"heap", "overhead", "cv"}, rows)
}

// WriteCSV dumps the adaptive-policy comparison into dir.
func (r *AdaptiveAblation) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy, f64(row.Mean), f64(row.CV), f64(row.Rerands), f64(row.Triggers),
		})
	}
	return writeCSV(dir, "e11_adaptive",
		[]string{"policy", "mean_s", "cv", "rerands_per_run", "triggers_per_run"}, rows)
}
