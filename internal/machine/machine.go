package machine

import (
	"repro/internal/mem"
	"repro/internal/rng"
)

// CostModel holds the cycle penalties charged for microarchitectural events.
// Values approximate the paper's Core i3-550 (3.2 GHz, 32 KiB L1, 256 KiB
// L2, 4 MiB shared L3).
type CostModel struct {
	BaseCycle   uint64 // per retired instruction
	L1Miss      uint64 // L1 miss that hits L2
	L2Miss      uint64 // L2 miss that hits L3
	L3Miss      uint64 // miss to DRAM
	TLBMiss     uint64 // page walk
	Mispredict  uint64 // direction or target misprediction
	SlowJump    uint64 // push+ret 64-bit jump (when code is above 4 GiB, §3.5)
	UnalignedFP uint64 // alignment-sensitive FP op on a misaligned operand
}

// DefaultCosts returns the cost model used throughout the evaluation.
func DefaultCosts() CostModel {
	return CostModel{
		BaseCycle:   1,
		L1Miss:      10,
		L2Miss:      25,
		L3Miss:      150,
		TLBMiss:     30,
		Mispredict:  15,
		SlowJump:    20,
		UnalignedFP: 8,
	}
}

// Config describes a complete machine.
type Config struct {
	L1I, L1D, L2, L3 CacheConfig
	TLBEntries       int
	TLBWays          int
	PredictorEntries int
	BTBEntries       int
	Costs            CostModel
	ClockHz          float64
}

// DefaultConfig mirrors the paper's evaluation machine: per-core 32 KiB L1s
// and 256 KiB L2, a shared 4 MiB L3, running at 3.2 GHz.
func DefaultConfig() Config {
	return Config{
		L1I:              CacheConfig{Name: "L1I", Size: 32 << 10, LineSize: 64, Ways: 4},
		L1D:              CacheConfig{Name: "L1D", Size: 32 << 10, LineSize: 64, Ways: 8},
		L2:               CacheConfig{Name: "L2", Size: 256 << 10, LineSize: 64, Ways: 8},
		L3:               CacheConfig{Name: "L3", Size: 4 << 20, LineSize: 64, Ways: 16},
		TLBEntries:       64,
		TLBWays:          4,
		PredictorEntries: 1024,
		BTBEntries:       512,
		Costs:            DefaultCosts(),
		ClockHz:          3.2e9,
	}
}

// Core2Config models the Intel Core 2 the paper's NIST experiment ran on
// (§3.2): no L3, a large shared L2 (4 MiB, 16-way) whose index bits span
// 6–17 — which is why the paper feeds those bits to the randomness tests.
// The Config keeps this reproduction's two-level L2/L3 interface by modeling
// the Core 2's L2 as the L3 slot with a small mid-level cache in between.
func Core2Config() Config {
	return Config{
		L1I: CacheConfig{Name: "L1I", Size: 32 << 10, LineSize: 64, Ways: 8},
		L1D: CacheConfig{Name: "L1D", Size: 32 << 10, LineSize: 64, Ways: 8},
		// The Core 2 has no private mid-level cache; a small stand-in keeps
		// the hierarchy shape without materially filtering accesses.
		L2:               CacheConfig{Name: "L2", Size: 64 << 10, LineSize: 64, Ways: 8},
		L3:               CacheConfig{Name: "L2-shared", Size: 4 << 20, LineSize: 64, Ways: 16},
		TLBEntries:       256,
		TLBWays:          4,
		PredictorEntries: 2048,
		BTBEntries:       2048,
		Costs:            DefaultCosts(),
		ClockHz:          2.4e9,
	}
}

// Machine is one simulated core plus its memory hierarchy. All costs
// accumulate into Cycles.
type Machine struct {
	L1I, L1D, L2, L3 *Cache
	TLB              *Cache
	BP               *BranchPredictor
	Costs            CostModel
	ClockHz          float64

	Cycles       uint64
	Instructions uint64

	// Physical translation state: L1 caches and the TLB are virtually
	// indexed (VIPT with a 4 KiB-period index), but L2 and L3 are
	// physically indexed, and the OS assigns physical frames essentially
	// at random. frames memoizes the per-run page -> frame assignment;
	// nil means identity mapping (virtual == physical), the default.
	// frameCache is a direct-mapped lookaside in front of the map; entries
	// key on page+1 so the zero value never matches a real page.
	frames     map[uint64]uint64
	frameRNG   *rng.Marsaglia
	frameCache [frameCacheLen]frameCacheEntry
}

// frameCacheLen sizes translate's lookaside; a working set beyond this many
// distinct pages just falls back to the memoizing map.
const frameCacheLen = 1024

type frameCacheEntry struct {
	page1 uint64 // page number + 1; 0 = empty
	frame uint64
}

// physFrameBits bounds simulated physical memory (2^18 frames = 1 GiB).
const physFrameBits = 18

// colorBits is the number of low page-number bits the frame allocator
// preserves (page coloring). 3 bits cover the L2's 8-page index period, so
// L2 conflict behaviour follows virtual placement; the L3's higher index
// bits remain at the mercy of the (random) frame allocator.
const colorBits = 3

// SetPhysicalSeed enables randomized page-to-frame assignment for this run,
// modeling the OS's physical allocator with classic page coloring: a frame
// always shares the page's low colorBits (so the L2 sees virtual-equivalent
// indexing, as OS page coloring guarantees), while higher frame bits are
// random (so L3 set placement varies per run). Two runs with the same seed
// see the same frames; without a call, translation is the identity. This is
// a real source of run-to-run variance on hardware — and part of why layout
// luck in large, never-moved allocations (cactusADM's grids) persists for a
// whole run no matter what the virtual-layout randomizer does.
func (m *Machine) SetPhysicalSeed(seed uint64) {
	m.frames = make(map[uint64]uint64)
	m.frameRNG = rng.NewMarsaglia(seed)
	m.frameCache = [frameCacheLen]frameCacheEntry{}
}

// translate maps a virtual address to its simulated physical address.
func (m *Machine) translate(a mem.Addr) mem.Addr {
	if m.frames == nil {
		return a
	}
	page := uint64(a) / mem.PageSize
	e := &m.frameCache[page&(frameCacheLen-1)]
	if e.page1 != page+1 {
		frame, ok := m.frames[page]
		if !ok {
			high := m.frameRNG.Uint64n(1 << (physFrameBits - colorBits))
			frame = high<<colorBits | page&(1<<colorBits-1)
			m.frames[page] = frame
		}
		e.page1, e.frame = page+1, frame
	}
	return mem.Addr(e.frame*mem.PageSize + uint64(a)%mem.PageSize)
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	return &Machine{
		L1I:     NewCache(cfg.L1I),
		L1D:     NewCache(cfg.L1D),
		L2:      NewCache(cfg.L2),
		L3:      NewCache(cfg.L3),
		TLB:     NewTLB(cfg.TLBEntries, cfg.TLBWays),
		BP:      NewBranchPredictor(cfg.PredictorEntries, cfg.BTBEntries),
		Costs:   cfg.Costs,
		ClockHz: cfg.ClockHz,
	}
}

// Retire charges the base cost for n retired instructions.
func (m *Machine) Retire(n uint64) {
	m.Instructions += n
	m.Cycles += n * m.Costs.BaseCycle
}

// memAccess runs one address through TLB + the data or instruction hierarchy
// and charges the resulting penalty.
func (m *Machine) memAccess(a mem.Addr, l1 *Cache) {
	if !m.TLB.Access(a) {
		m.Cycles += m.Costs.TLBMiss
	}
	if l1.Access(a) {
		return
	}
	phys := m.translate(a)
	if m.L2.Access(phys) {
		m.Cycles += m.Costs.L1Miss
		return
	}
	if m.L3.Access(phys) {
		m.Cycles += m.Costs.L1Miss + m.Costs.L2Miss
		return
	}
	m.Cycles += m.Costs.L1Miss + m.Costs.L2Miss + m.Costs.L3Miss
}

// Data performs a data access (load or store) of size bytes at a. Accesses
// are charged per cache line spanned.
func (m *Machine) Data(a mem.Addr, size uint64) {
	line := m.L1D.LineSize()
	first := uint64(a) &^ (line - 1)
	last := (uint64(a) + size - 1) &^ (line - 1)
	for l := first; ; l += line {
		m.memAccess(mem.Addr(l), m.L1D)
		if l >= last {
			break
		}
	}
}

// Fetch charges instruction fetch for the code bytes in [a, a+size).
func (m *Machine) Fetch(a mem.Addr, size uint64) {
	line := m.L1I.LineSize()
	first := uint64(a) &^ (line - 1)
	last := (uint64(a) + size - 1) &^ (line - 1)
	for l := first; ; l += line {
		m.memAccess(mem.Addr(l), m.L1I)
		if l >= last {
			break
		}
	}
}

// CondBranch records a conditional branch at pc with the given outcome.
func (m *Machine) CondBranch(pc mem.Addr, taken bool) {
	if m.BP.Conditional(pc, taken) {
		m.Cycles += m.Costs.Mispredict
	}
}

// IndirectBranch records an indirect transfer (call/return through memory).
func (m *Machine) IndirectBranch(pc, target mem.Addr) {
	if m.BP.Indirect(pc, target) {
		m.Cycles += m.Costs.Mispredict
	}
	if !mem.Below4G(target) {
		// Far targets need the push+ret jump sequence (§3.5).
		m.Cycles += m.Costs.SlowJump
	}
}

// Stall charges n raw cycles (used for modeled runtime work such as trap
// handling and relocation copies).
func (m *Machine) Stall(n uint64) { m.Cycles += n }

// Seconds converts the accumulated cycle count to simulated wall time.
func (m *Machine) Seconds() float64 { return float64(m.Cycles) / m.ClockHz }

// ResetCounters zeroes all statistics (cycles, instruction count, cache and
// predictor counters) while keeping learned microarchitectural state.
func (m *Machine) ResetCounters() {
	m.Cycles, m.Instructions = 0, 0
	m.L1I.ResetCounters()
	m.L1D.ResetCounters()
	m.L2.ResetCounters()
	m.L3.ResetCounters()
	m.TLB.ResetCounters()
	m.BP.ResetCounters()
}
