// Package bench persists benchmark runs as versioned JSON artifacts and
// collects new ones through the parallel experiment engine. An artifact is
// the durable unit of the repo's performance evaluation: the raw
// per-benchmark samples plus everything needed to reproduce or merge them
// (seed, scale, optimization level, stabilizer configuration, commit).
// internal/gate compares two artifacts; cmd/szgate is the CLI.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/machine"
)

// SchemaVersion is bumped whenever the artifact layout changes; Read
// accepts every schema back to minSchemaVersion (older schemas are strict
// subsets: schema 2 added the optional metrics summary block; schema 3
// added per-run retired-instruction counts, the informational engine tag,
// and the non-golden host-seconds telemetry) and rejects anything newer
// than this build understands.
const SchemaVersion = 3

// minSchemaVersion is the oldest artifact schema this build still reads.
const minSchemaVersion = 1

// Unit values for Meta.Unit.
const (
	// UnitSimulatedSeconds marks samples measured by the simulator's cycle
	// clock (deterministic given the seed).
	UnitSimulatedSeconds = "simulated-seconds"
	// UnitWallSeconds marks samples measured with a host wall clock (the
	// testing.B harness's regeneration times).
	UnitWallSeconds = "wall-seconds"
)

// Meta describes how an artifact's samples were produced. Two artifacts are
// comparable when everything except Commit matches.
type Meta struct {
	Schema     int     `json:"schema"`
	Unit       string  `json:"unit"`
	Seed       uint64  `json:"seed"`
	Scale      float64 `json:"scale"`
	Level      string  `json:"level"`
	Stabilizer string  `json:"stabilizer"` // "native" or core.Options.EnabledString()
	Noise      float64 `json:"noise"`
	Commit     string  `json:"commit,omitempty"`
	// Engine records which interpreter engine collected the samples
	// (schema ≥ 3; empty means compiled, the default). It is informational:
	// both engines produce identical simulated samples, so it is excluded
	// from comparability — a walk-engine artifact gates against a
	// compiled-engine baseline.
	Engine string `json:"engine,omitempty"`
}

// Stopped values for adaptive collection.
const (
	StoppedFixed  = "fixed"  // fixed run count, no adaptive stopping
	StoppedTarget = "target" // CI half-width target reached
	StoppedBudget = "budget" // run budget exhausted first
)

// Benchmark is one benchmark's sample set inside an artifact.
type Benchmark struct {
	Name     string    `json:"name"`
	SeedBase uint64    `json:"seed_base"`
	Runs     int       `json:"runs"`
	Seconds  []float64 `json:"seconds"`
	Cycles   []uint64  `json:"cycles,omitempty"`
	// Instructions holds per-run retired-instruction counts (schema ≥ 3).
	// Deterministic for a fixed seed, hence part of the golden artifact;
	// together with HostSeconds it yields simulator throughput.
	Instructions []uint64 `json:"instructions,omitempty"`
	// HostSeconds holds per-run host wall-clock interpreter times. Host
	// timing is machine- and engine-dependent telemetry — never golden —
	// so the JSON key carries the repo's _nongolden marker and collection
	// only fills it when CollectOptions.Throughput asks for it.
	HostSeconds []float64 `json:"host_seconds_nongolden,omitempty"`
	// Provenance is the farm's measurement pedigree for this entry
	// (schema ≥ 3): which worker computed the samples, under which
	// coordinator incarnation, after how many lease attempts, and how
	// long the cell waited and ran. Every field is environmental — the
	// JSON key carries the repo's _nongolden marker, the coordinator
	// attaches the block only when asked (?provenance=1), and golden
	// byte-identity checks strip it first.
	Provenance *Provenance `json:"provenance_nongolden,omitempty"`
	// Adaptive-stopping outcome (empty for fixed-count collection).
	Stopped string `json:"stopped,omitempty"`
	// RelHalfWidth is the achieved bootstrap CI half-width on the mean,
	// relative to the mean, at the stopping point (adaptive mode only).
	RelHalfWidth float64 `json:"rel_half_width,omitempty"`
}

// Provenance records where one benchmark's samples came from in a farm
// campaign — the measurement pedigree Kalibera-style statistics want
// alongside the raw numbers. The trace and span tie the entry back to
// the campaign's distributed trace; the rest identifies the worker, the
// coordinator epoch that accepted the completion, and the cell's
// scheduling history. All of it is environmental (non-golden).
type Provenance struct {
	Trace            string  `json:"trace,omitempty"`
	Span             string  `json:"span,omitempty"`
	Worker           string  `json:"worker,omitempty"`
	Coordinator      string  `json:"coordinator,omitempty"`
	Epoch            uint64  `json:"epoch,omitempty"`
	Attempts         int     `json:"attempts,omitempty"`
	StoreHit         bool    `json:"store_hit,omitempty"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
	RunSeconds       float64 `json:"run_seconds,omitempty"`
}

// StripProvenance removes every benchmark's provenance block — the
// inverse of the coordinator's ?provenance=1 decoration, used when
// checking a decorated artifact against golden bytes.
func (a *Artifact) StripProvenance() {
	for i := range a.Benchmarks {
		a.Benchmarks[i].Provenance = nil
	}
}

// MetricsSummary is the optional (schema ≥ 2) machine-counter aggregate of
// a collection: every run's perf-stat snapshot summed over all benchmarks.
// Sums of per-run counters are order-independent and the per-run counters
// ride in checkpoint cell files, so the block is deterministic for a fixed
// seed at any worker count and across checkpoint resumes — it is part of
// the golden artifact, unlike wall-clock telemetry.
type MetricsSummary struct {
	TotalRuns int              `json:"total_runs"`
	Counters  machine.Counters `json:"counters"`
}

// add folds another summary into s.
func (s *MetricsSummary) add(o MetricsSummary) {
	s.TotalRuns += o.TotalRuns
	s.Counters = s.Counters.Add(o.Counters)
}

// Artifact is one collection run: metadata plus per-benchmark samples.
type Artifact struct {
	Meta       Meta        `json:"meta"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Metrics is the machine-counter summary block; nil in schema-1
	// artifacts and in collections that disabled it.
	Metrics *MetricsSummary `json:"metrics,omitempty"`
}

// Find returns the named benchmark entry, or nil.
func (a *Artifact) Find(name string) *Benchmark {
	for i := range a.Benchmarks {
		if a.Benchmarks[i].Name == name {
			return &a.Benchmarks[i]
		}
	}
	return nil
}

// normalize puts the artifact in canonical form: benchmarks sorted by name.
// Serialization is deterministic after normalization (struct fields encode
// in declaration order, floats in Go's shortest round-trip form), which is
// what makes Write→Read→Write byte-identical.
func (a *Artifact) normalize() {
	sort.Slice(a.Benchmarks, func(i, j int) bool {
		return a.Benchmarks[i].Name < a.Benchmarks[j].Name
	})
}

// Validate checks the artifact's invariants: a known schema, finite samples
// (JSON cannot carry NaN/Inf), consistent run counts, and unique names.
func (a *Artifact) Validate() error {
	if a.Meta.Schema < minSchemaVersion || a.Meta.Schema > SchemaVersion {
		return fmt.Errorf("bench: artifact schema %d, this build reads %d..%d",
			a.Meta.Schema, minSchemaVersion, SchemaVersion)
	}
	if a.Metrics != nil && a.Meta.Schema < 2 {
		return fmt.Errorf("bench: schema-%d artifact carries a metrics block (needs schema 2)", a.Meta.Schema)
	}
	if a.Meta.Schema < 3 && a.Meta.Engine != "" {
		return fmt.Errorf("bench: schema-%d artifact carries an engine tag (needs schema 3)", a.Meta.Schema)
	}
	if a.Metrics != nil && a.Metrics.TotalRuns < 0 {
		return fmt.Errorf("bench: metrics block has negative total_runs %d", a.Metrics.TotalRuns)
	}
	if a.Meta.Unit == "" {
		return fmt.Errorf("bench: artifact has no unit")
	}
	seen := map[string]bool{}
	for _, b := range a.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("bench: unnamed benchmark entry")
		}
		if seen[b.Name] {
			return fmt.Errorf("bench: duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Runs != len(b.Seconds) {
			return fmt.Errorf("bench: %s: runs=%d but %d samples", b.Name, b.Runs, len(b.Seconds))
		}
		if len(b.Cycles) != 0 && len(b.Cycles) != len(b.Seconds) {
			return fmt.Errorf("bench: %s: %d cycle counts for %d samples", b.Name, len(b.Cycles), len(b.Seconds))
		}
		if len(b.Instructions) != 0 && len(b.Instructions) != len(b.Seconds) {
			return fmt.Errorf("bench: %s: %d instruction counts for %d samples", b.Name, len(b.Instructions), len(b.Seconds))
		}
		if len(b.HostSeconds) != 0 && len(b.HostSeconds) != len(b.Seconds) {
			return fmt.Errorf("bench: %s: %d host times for %d samples", b.Name, len(b.HostSeconds), len(b.Seconds))
		}
		if (len(b.Instructions) != 0 || len(b.HostSeconds) != 0 || b.Provenance != nil) && a.Meta.Schema < 3 {
			return fmt.Errorf("bench: schema-%d artifact carries schema-3 fields (instructions/host times/provenance) in %s", a.Meta.Schema, b.Name)
		}
		for i, h := range b.HostSeconds {
			if math.IsNaN(h) || math.IsInf(h, 0) || h < 0 {
				return fmt.Errorf("bench: %s: host time %d is %v", b.Name, i, h)
			}
		}
		for i, s := range b.Seconds {
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
				return fmt.Errorf("bench: %s: sample %d is %v", b.Name, i, s)
			}
		}
	}
	return nil
}

// Encode returns the canonical serialized form: normalized, two-space
// indented JSON with a trailing newline. Equal artifacts encode to equal
// bytes regardless of the order benchmarks were added in.
func (a *Artifact) Encode() ([]byte, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	a.normalize()
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Write writes the canonical form to w.
func (a *Artifact) Write(w io.Writer) error {
	buf, err := a.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// WriteFile writes the canonical form to path.
func (a *Artifact) WriteFile(path string) error {
	buf, err := a.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// Read parses and validates an artifact.
func Read(r io.Reader) (*Artifact, error) {
	dec := json.NewDecoder(r)
	var a Artifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("bench: decode artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	a.normalize()
	return &a, nil
}

// ReadFile reads and validates the artifact at path.
func ReadFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// ReadBytes parses and validates an artifact from memory.
func ReadBytes(buf []byte) (*Artifact, error) {
	return Read(bytes.NewReader(buf))
}

// Merge combines two artifacts collected under the same configuration into
// one. Benchmarks present in only one input are carried over; a benchmark
// present in both must be a continuation (b's seed base starting where a's
// samples end), and its samples are concatenated — the shape produced by
// extending a run with more samples or sharding a seed range. Commits may
// differ only if one is empty (a partial rerun on the same tree). Master
// seeds may differ — collecting a continuation requires a shifted master
// seed, and the per-benchmark seed-base check is the real guard; the merged
// artifact keeps a's seed.
func Merge(a, b *Artifact) (*Artifact, error) {
	ma, mb := a.Meta, b.Meta
	ca, cb := ma.Commit, mb.Commit
	ma.Commit, mb.Commit = "", ""
	ma.Seed, mb.Seed = 0, 0
	// Schema is a file-format property, not a collection property: a
	// schema-1 artifact extends fine with a schema-2 continuation. The
	// engine tag is informational (both engines collect identical samples),
	// so continuations may switch engines; the merged artifact keeps a's.
	ma.Schema, mb.Schema = 0, 0
	ma.Engine, mb.Engine = "", ""
	if ma != mb {
		return nil, fmt.Errorf("bench: merge: artifacts were collected under different configurations:\n  %+v\n  %+v", ma, mb)
	}
	commit := ca
	switch {
	case ca == cb, cb == "":
	case ca == "":
		commit = cb
	default:
		return nil, fmt.Errorf("bench: merge: artifacts from different commits %q and %q", ca, cb)
	}

	out := &Artifact{Meta: a.Meta}
	out.Meta.Commit = commit
	for _, ba := range a.Benchmarks {
		merged := ba
		if bb := b.Find(ba.Name); bb != nil {
			if bb.SeedBase != ba.SeedBase+uint64(ba.Runs) {
				return nil, fmt.Errorf("bench: merge: %s: second artifact's seed base %d is not a continuation of %d+%d runs",
					ba.Name, bb.SeedBase, ba.SeedBase, ba.Runs)
			}
			if (len(ba.Cycles) == 0) != (len(bb.Cycles) == 0) {
				return nil, fmt.Errorf("bench: merge: %s: one artifact has cycle counts, the other does not", ba.Name)
			}
			if (len(ba.Instructions) == 0) != (len(bb.Instructions) == 0) {
				return nil, fmt.Errorf("bench: merge: %s: one artifact has instruction counts, the other does not", ba.Name)
			}
			merged.Seconds = append(append([]float64(nil), ba.Seconds...), bb.Seconds...)
			merged.Cycles = append(append([]uint64(nil), ba.Cycles...), bb.Cycles...)
			merged.Instructions = append(append([]uint64(nil), ba.Instructions...), bb.Instructions...)
			// Host times are telemetry from two different collection runs;
			// concatenating them would suggest one coherent measurement, so
			// a merge drops them. Provenance goes with them: the merged
			// samples no longer have a single pedigree.
			merged.HostSeconds = nil
			merged.Provenance = nil
			merged.Runs = len(merged.Seconds)
			merged.Stopped, merged.RelHalfWidth = "", 0
		}
		out.Benchmarks = append(out.Benchmarks, merged)
	}
	for _, bb := range b.Benchmarks {
		if a.Find(bb.Name) == nil {
			out.Benchmarks = append(out.Benchmarks, bb)
		}
	}
	// Counter sums compose under concatenation; the block survives a merge
	// only when both halves carried one.
	if a.Metrics != nil && b.Metrics != nil {
		sum := *a.Metrics
		sum.add(*b.Metrics)
		out.Metrics = &sum
		if out.Meta.Schema < 2 {
			out.Meta.Schema = 2
		}
	}
	// The merged artifact needs the newer half's schema if it inherited
	// schema-3 fields (e.g. instruction counts from a carried-over entry).
	if b.Meta.Schema > out.Meta.Schema {
		out.Meta.Schema = b.Meta.Schema
	}
	out.normalize()
	return out, nil
}
