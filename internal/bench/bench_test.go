package bench

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"errors"

	"repro/internal/compiler"
	"repro/internal/experiment"
	"repro/internal/faultinject"
	"repro/internal/spec"
)

const testScale = 0.05

func testSuite(t *testing.T, names ...string) []spec.Benchmark {
	t.Helper()
	var out []spec.Benchmark
	for _, n := range names {
		b, ok := spec.ByName(n)
		if !ok {
			t.Fatalf("unknown benchmark %q", n)
		}
		out = append(out, b)
	}
	return out
}

func sampleArtifact() *Artifact {
	return &Artifact{
		Meta: Meta{Schema: SchemaVersion, Unit: UnitSimulatedSeconds, Seed: 7,
			Scale: 0.5, Level: "-O2", Stabilizer: "native", Noise: 0.0025, Commit: "abc123"},
		Benchmarks: []Benchmark{
			{Name: "mcf", SeedBase: 100, Runs: 3, Seconds: []float64{1.25, 1.251, 1.249}, Cycles: []uint64{10, 11, 12}},
			{Name: "astar", SeedBase: 50, Runs: 2, Seconds: []float64{0.5, 0.501}, Cycles: []uint64{5, 6}},
		},
	}
}

func TestArtifactRoundTripByteIdentical(t *testing.T) {
	a := sampleArtifact()
	buf1, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadBytes(buf1)
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1, buf2) {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", buf1, buf2)
	}
	// Canonical form sorts benchmarks, so add order does not matter.
	if back.Benchmarks[0].Name != "astar" {
		t.Errorf("canonical order: first benchmark = %q, want astar", back.Benchmarks[0].Name)
	}
}

func TestArtifactWriteReadFile(t *testing.T) {
	a := sampleArtifact()
	path := t.TempDir() + "/a.json"
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a.normalize()
	if !reflect.DeepEqual(a, back) {
		t.Errorf("file round trip differs:\n%+v\nvs\n%+v", a, back)
	}
}

func TestArtifactValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Artifact)
		want string
	}{
		{"schema", func(a *Artifact) { a.Meta.Schema = 99 }, "schema"},
		{"unit", func(a *Artifact) { a.Meta.Unit = "" }, "unit"},
		{"dup", func(a *Artifact) { a.Benchmarks[1].Name = "mcf" }, "duplicate"},
		{"runs", func(a *Artifact) { a.Benchmarks[0].Runs = 7 }, "samples"},
		{"cycles", func(a *Artifact) { a.Benchmarks[0].Cycles = a.Benchmarks[0].Cycles[:1] }, "cycle"},
		{"nan", func(a *Artifact) { a.Benchmarks[0].Seconds[0] = math.NaN() }, "sample"},
		{"negative", func(a *Artifact) { a.Benchmarks[0].Seconds[0] = -1 }, "sample"},
	}
	for _, c := range cases {
		a := sampleArtifact()
		c.mut(a)
		err := a.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestMerge(t *testing.T) {
	a := sampleArtifact()
	// A continuation of mcf plus a new benchmark.
	b := &Artifact{
		Meta: a.Meta,
		Benchmarks: []Benchmark{
			{Name: "mcf", SeedBase: 103, Runs: 2, Seconds: []float64{1.252, 1.248}, Cycles: []uint64{13, 14}},
			{Name: "lbm", SeedBase: 900, Runs: 1, Seconds: []float64{2}, Cycles: []uint64{20}},
		},
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Find("mcf"); got == nil || got.Runs != 5 || got.Seconds[3] != 1.252 || got.Cycles[4] != 14 {
		t.Errorf("merged mcf = %+v", got)
	}
	if m.Find("lbm") == nil || m.Find("astar") == nil {
		t.Errorf("merge dropped a benchmark: %+v", m.Benchmarks)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("merged artifact invalid: %v", err)
	}

	// Mismatched configuration refuses.
	c := sampleArtifact()
	c.Meta.Scale = 1.0
	if _, err := Merge(a, c); err == nil {
		t.Error("merge across scales should fail")
	}
	// A shifted master seed is fine when the seed bases continue — that is
	// exactly what `szgate run -seed base+runs` produces for a continuation.
	s := &Artifact{
		Meta: a.Meta,
		Benchmarks: []Benchmark{
			{Name: "mcf", SeedBase: 103, Runs: 1, Seconds: []float64{1.25}, Cycles: []uint64{15}},
		},
	}
	s.Meta.Seed = a.Meta.Seed + 3
	ms, err := Merge(a, s)
	if err != nil {
		t.Fatalf("merge across shifted master seeds: %v", err)
	}
	if ms.Meta.Seed != a.Meta.Seed || ms.Find("mcf").Runs != 4 {
		t.Errorf("shifted-seed merge: seed %d, mcf %+v", ms.Meta.Seed, ms.Find("mcf"))
	}
	// Non-contiguous seed range refuses.
	d := sampleArtifact()
	d.Benchmarks = []Benchmark{{Name: "mcf", SeedBase: 999, Runs: 1, Seconds: []float64{1}, Cycles: []uint64{1}}}
	if _, err := Merge(a, d); err == nil {
		t.Error("merge of a non-continuation seed range should fail")
	}
	// Differing commits refuse unless one is empty.
	e := sampleArtifact()
	e.Benchmarks = nil
	e.Meta.Commit = "zzz"
	if _, err := Merge(a, e); err == nil {
		t.Error("merge across commits should fail")
	}
	e.Meta.Commit = ""
	m2, err := Merge(a, e)
	if err != nil || m2.Meta.Commit != "abc123" {
		t.Errorf("merge with empty commit: %v, commit %q", err, m2.Meta.Commit)
	}
}

// TestMergeDuplicateBlocks pins that merging an artifact with itself — the
// same sample block for the same cell twice — is refused rather than
// silently double-counted: the duplicate's seed base is not a continuation.
func TestMergeDuplicateBlocks(t *testing.T) {
	a := sampleArtifact()
	if _, err := Merge(a, a); err == nil {
		t.Fatal("merging an artifact with itself should fail, not double samples")
	}
	// The same holds for a partial overlap: a block that re-covers part of
	// an existing seed range is not a continuation either.
	dup := sampleArtifact()
	dup.Benchmarks = []Benchmark{
		{Name: "mcf", SeedBase: 101, Runs: 2, Seconds: []float64{1.251, 1.249}, Cycles: []uint64{11, 12}},
	}
	if _, err := Merge(a, dup); err == nil {
		t.Fatal("merging an overlapping seed range should fail")
	}
}

// TestMergeMixedEngines pins that continuations may switch engines (the
// engines are sample-equivalent by the oracle's contract) and the merged
// artifact keeps the first artifact's tag.
func TestMergeMixedEngines(t *testing.T) {
	a := sampleArtifact()
	a.Meta.Engine = "walk"
	b := &Artifact{
		Meta: a.Meta,
		Benchmarks: []Benchmark{
			{Name: "mcf", SeedBase: 103, Runs: 1, Seconds: []float64{1.25}, Cycles: []uint64{13}},
		},
	}
	b.Meta.Engine = "compiled"
	m, err := Merge(a, b)
	if err != nil {
		t.Fatalf("cross-engine merge refused: %v", err)
	}
	if m.Meta.Engine != "walk" {
		t.Fatalf("merged engine tag %q, want the first artifact's %q", m.Meta.Engine, "walk")
	}
	if got := m.Find("mcf"); got == nil || got.Runs != 4 {
		t.Fatalf("cross-engine merged mcf = %+v", got)
	}
}

// TestMergeSchema2IntoSchema3 pins the schema lattice: folding an old
// schema-2 artifact into a schema-3 one (disjoint benchmarks, so the
// schema-3-only per-run fields need not align) yields a valid schema-3
// artifact.
func TestMergeSchema2IntoSchema3(t *testing.T) {
	old := sampleArtifact()
	old.Meta.Schema = 2
	old.Meta.Engine = "" // engine tags need schema 3
	newer := &Artifact{
		Meta: old.Meta,
		Benchmarks: []Benchmark{
			{Name: "lbm", SeedBase: 900, Runs: 2, Seconds: []float64{2, 2.01},
				Cycles: []uint64{20, 21}, Instructions: []uint64{200, 201}},
		},
	}
	newer.Meta.Schema = 3
	newer.Meta.Engine = "compiled"
	for _, order := range []struct {
		name string
		a, b *Artifact
	}{{"old first", old, newer}, {"new first", newer, old}} {
		m, err := Merge(order.a, order.b)
		if err != nil {
			t.Fatalf("%s: merge: %v", order.name, err)
		}
		if m.Meta.Schema != 3 {
			t.Fatalf("%s: merged schema %d, want 3 (carries schema-3 fields)", order.name, m.Meta.Schema)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: merged artifact invalid: %v", order.name, err)
		}
		if m.Find("lbm") == nil || m.Find("mcf") == nil {
			t.Fatalf("%s: merge dropped a benchmark", order.name)
		}
	}
}

func TestCollectDeterministicAcrossWorkers(t *testing.T) {
	suite := testSuite(t, "astar", "libquantum")
	opts := CollectOptions{
		Suite:  suite,
		Config: experiment.Config{Scale: testScale, Level: compiler.O2},
		Runs:   6,
		Seed:   2013,
	}
	experiment.SetParallelism(1)
	seq, err := Collect(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	experiment.SetParallelism(4)
	par, err := Collect(context.Background(), opts)
	experiment.SetParallelism(0)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := seq.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := par.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("artifact differs between -j 1 and -j 4:\n%s\nvs\n%s", b1, b2)
	}
	if got := seq.Find("astar"); got == nil || got.Runs != 6 || len(got.Cycles) != 6 {
		t.Errorf("astar entry = %+v", got)
	}
	if seq.Meta.Level != "-O2" || seq.Meta.Stabilizer != "native" {
		t.Errorf("meta = %+v", seq.Meta)
	}
}

func TestCollectSeedBaseStableAcrossSubsets(t *testing.T) {
	full := testSuite(t, "astar", "libquantum")
	sub := testSuite(t, "libquantum")
	opts := CollectOptions{
		Suite:  full,
		Config: experiment.Config{Scale: testScale, Level: compiler.O2},
		Runs:   3, Seed: 2013,
	}
	a, err := Collect(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Suite = sub
	b, err := Collect(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Find("libquantum"), b.Find("libquantum")) {
		t.Errorf("libquantum samples depend on which suite subset was collected")
	}
}

func TestCollectAdaptive(t *testing.T) {
	suite := testSuite(t, "astar")
	opts := CollectOptions{
		Suite:    suite,
		Config:   experiment.Config{Scale: testScale, Level: compiler.O2},
		Seed:     2013,
		Adaptive: true, TargetRel: 0.002, Confidence: 0.95,
		BatchRuns: 4, MaxRuns: 40,
	}
	a, err := Collect(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	e := a.Find("astar")
	if e == nil {
		t.Fatal("no astar entry")
	}
	if e.Stopped != StoppedTarget && e.Stopped != StoppedBudget {
		t.Errorf("Stopped = %q", e.Stopped)
	}
	if e.Stopped == StoppedTarget && e.RelHalfWidth > opts.TargetRel {
		t.Errorf("stopped at target but half-width %v > %v", e.RelHalfWidth, opts.TargetRel)
	}
	if e.Runs < MinAdaptiveRuns || e.Runs > opts.MaxRuns {
		t.Errorf("adaptive runs = %d outside [%d, %d]", e.Runs, MinAdaptiveRuns, opts.MaxRuns)
	}

	// A looser target must not need more runs than a tighter one, and the
	// whole adaptive trajectory is deterministic.
	opts.TargetRel = 0.05
	loose, err := Collect(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Find("astar").Runs > e.Runs {
		t.Errorf("looser target took more runs: %d > %d", loose.Find("astar").Runs, e.Runs)
	}
	again, err := Collect(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loose, again) {
		t.Errorf("adaptive collection not deterministic")
	}
}

func TestCollectValidatesOptions(t *testing.T) {
	bad := CollectOptions{Runs: -1}
	if _, err := Collect(context.Background(), bad); err == nil {
		t.Error("negative Runs accepted")
	}
	bad = CollectOptions{Adaptive: true, TargetRel: 2}
	if _, err := Collect(context.Background(), bad); err == nil {
		t.Error("TargetRel=2 accepted")
	}
}

// TestResumeArtifactByteIdentical is the end-to-end crash-safety
// acceptance check at the artifact level: a collection drained mid-suite
// (the first-SIGINT path, triggered deterministically via a fault hook),
// then resumed against the same checkpoint directory at a different
// worker count, must encode to exactly the bytes of an uninterrupted
// collection.
func TestResumeArtifactByteIdentical(t *testing.T) {
	opts := CollectOptions{
		Suite:  testSuite(t, "astar", "libquantum"),
		Config: experiment.Config{Scale: testScale, Level: compiler.O2},
		Runs:   5,
		Seed:   81,
	}
	experiment.SetParallelism(1)
	defer experiment.SetParallelism(0)
	fresh, err := Collect(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Encode()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cp, err := experiment.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, drain := experiment.WithDrain(experiment.WithCheckpoint(context.Background(), cp))
	deactivate := faultinject.Activate(1, faultinject.Fault{
		Site: faultinject.SiteCellStart, Nth: 1, Kind: faultinject.KindHook, Hook: drain,
	})
	_, err = Collect(ctx, opts)
	deactivate()
	if !errors.Is(err, experiment.ErrStopped) {
		t.Fatalf("drained collection returned %v, want ErrStopped", err)
	}
	if stored, _ := cp.Stats(); stored != 1 {
		t.Fatalf("drained collection stored %d cells, want 1 (the in-flight benchmark)", stored)
	}

	cp2, err := experiment.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	experiment.SetParallelism(4)
	resumed, err := Collect(experiment.WithCheckpoint(context.Background(), cp2), opts)
	if err != nil {
		t.Fatalf("resumed collection failed: %v", err)
	}
	got, err := resumed.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed artifact is not byte-identical to the uninterrupted one:\n%s\nvs\n%s", got, want)
	}
	if stored, reused := cp2.Stats(); stored != 1 || reused != 1 {
		t.Errorf("resume stats stored=%d reused=%d, want 1/1", stored, reused)
	}
}

func TestProvenanceNonGoldenAndMergeDrop(t *testing.T) {
	a := sampleArtifact()
	golden, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Decorating with provenance then stripping restores golden bytes.
	dec := sampleArtifact()
	dec.Benchmarks[0].Provenance = &Provenance{
		Trace: "deadbeefcafef00d", Span: "c0001/mcf#2", Worker: "w1",
		Coordinator: "coord-a", Epoch: 3, Attempts: 2,
		QueueWaitSeconds: 0.5, RunSeconds: 1.25,
	}
	buf, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, golden) {
		t.Fatal("provenance block did not change encoded bytes (not attached?)")
	}
	if !strings.Contains(string(buf), `"provenance_nongolden"`) {
		t.Fatalf("provenance key missing the _nongolden marker:\n%s", buf)
	}
	back, err := ReadBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if p := back.Find("mcf").Provenance; p == nil || p.Worker != "w1" || p.Attempts != 2 {
		t.Fatalf("provenance did not round-trip: %+v", p)
	}
	back.StripProvenance()
	stripped, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stripped, golden) {
		t.Fatalf("strip(decorated) != golden:\n%s\nvs\n%s", stripped, golden)
	}
	// A schema too old for provenance is rejected.
	old := sampleArtifact()
	old.Meta.Schema = 2
	old.Benchmarks[0].Instructions = nil
	old.Benchmarks[0].Provenance = &Provenance{Worker: "w1"}
	if err := old.Validate(); err == nil || !strings.Contains(err.Error(), "schema-3") {
		t.Fatalf("schema-2 artifact with provenance: Validate = %v", err)
	}
	// Merging continuations drops the pedigree like it drops host times.
	m1 := sampleArtifact()
	m1.Benchmarks[0].Provenance = &Provenance{Worker: "w1"}
	m2 := &Artifact{Meta: m1.Meta, Benchmarks: []Benchmark{
		{Name: "mcf", SeedBase: 103, Runs: 1, Seconds: []float64{1.25}, Cycles: []uint64{10}},
	}}
	merged, err := Merge(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Find("mcf").Provenance != nil {
		t.Fatal("merge kept provenance on a merged entry")
	}
	// Carried-over entries (present in only one half) keep theirs.
	if m1.Benchmarks[1].Name != "astar" {
		t.Fatalf("fixture changed: %v", m1.Benchmarks[1].Name)
	}
	m1.Benchmarks[1].Provenance = &Provenance{Worker: "w2"}
	merged, err = Merge(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if p := merged.Find("astar").Provenance; p == nil || p.Worker != "w2" {
		t.Fatalf("carried-over provenance lost: %+v", p)
	}
}
