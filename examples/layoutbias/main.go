// Layoutbias: demonstrate the two measurement biases from the paper's
// introduction on one benchmark — link order and environment size — and
// show that neither is visible once STABILIZER randomizes layout.
package main

import (
	"fmt"
	"log"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/spec"
	"repro/internal/stats"
)

func main() {
	b, _ := spec.ByName("gobmk")
	const scale = 0.5

	// 1. Link order: the same code, linked in 24 different orders.
	fmt.Println("== link-order bias (gobmk, 24 random orders) ==")
	cl, err := experiment.CompileBench(b, experiment.Config{
		Scale: scale, Level: compiler.O2, RandomLinkOrder: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var best, worst float64
	for o := 0; o < 24; o++ {
		r, err := cl.Run(uint64(o + 1))
		if err != nil {
			log.Fatal(err)
		}
		if best == 0 || r.Seconds < best {
			best = r.Seconds
		}
		if r.Seconds > worst {
			worst = r.Seconds
		}
	}
	fmt.Printf("fastest order %.6fs, slowest %.6fs: changing ONLY the link\n", best, worst)
	fmt.Printf("order moved performance by %.1f%%\n\n", (worst/best-1)*100)

	// 2. Environment size: same binary, different environment block.
	fmt.Println("== environment-size bias (same binary, env 0 vs 3 KiB) ==")
	for _, env := range []uint64{0, 3072} {
		ce, err := experiment.CompileBench(b, experiment.Config{
			Scale: scale, Level: compiler.O2, EnvSize: env,
		})
		if err != nil {
			log.Fatal(err)
		}
		s, err := ce.Samples(8, 500)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("env %4d bytes: mean %.6fs\n", env, stats.Mean(s))
	}
	fmt.Println()

	// 3. Under STABILIZER the link order stops mattering: compare two
	// fixed link orders, each sampled under re-randomization.
	fmt.Println("== the same link orders under STABILIZER ==")
	st := core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Interval: 25_000}
	cs, err := experiment.CompileBench(b, experiment.Config{
		Scale: scale, Level: compiler.O2, Stabilizer: &st, RandomLinkOrder: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	a1, err := cs.Samples(15, 1000)
	if err != nil {
		log.Fatal(err)
	}
	a2, err := cs.Samples(15, 2000)
	if err != nil {
		log.Fatal(err)
	}
	t := stats.WelchT(a1, a2)
	fmt.Printf("order A mean %.6fs, order B mean %.6fs, t-test p = %.3f",
		stats.Mean(a1), stats.Mean(a2), t.P)
	if !t.Significant(0.05) {
		fmt.Println(" -> indistinguishable, as they should be")
	} else {
		fmt.Println()
	}
}
