package compiler

import (
	"fmt"

	"repro/internal/ir"
)

// OptLevel selects a pass pipeline, mirroring the paper's -O1/-O2/-O3
// evaluation (§6).
type OptLevel int

const (
	O0 OptLevel = iota
	O1
	O2
	O3
)

// String returns the conventional flag spelling.
func (o OptLevel) String() string {
	if o < O0 || o > O3 {
		return fmt.Sprintf("-O?(%d)", int(o))
	}
	return [...]string{"-O0", "-O1", "-O2", "-O3"}[o]
}

// ParseLevel validates a numeric -O flag value at the CLI boundary,
// returning an error that lists the valid levels.
func ParseLevel(n int) (OptLevel, error) {
	if n < int(O0) || n > int(O3) {
		return 0, fmt.Errorf("invalid optimization level %d: valid levels are 0 (-O0), 1 (-O1), 2 (-O2), 3 (-O3)", n)
	}
	return OptLevel(n), nil
}

// Levels returns all optimization levels in ascending order, for code that
// sweeps the optimization axis.
func Levels() []OptLevel { return []OptLevel{O0, O1, O2, O3} }

// Pipeline returns the pass sequence for a level.
//
//	-O1: constant folding, basic-block CSE (early-cse), dead code
//	     elimination.
//	-O2: adds basic-block CSE, loop-invariant code motion, and inlining.
//	-O3: adds argument promotion (interprocedural constant propagation),
//	     global CSE, scalar replacement of aggregates, dead global
//	     elimination, and more aggressive inlining.
//
// An unknown level is a configuration error reported to the caller, not a
// panic: levels arrive from CLI flags and config files, so the failure
// belongs to the request, not the process.
func Pipeline(level OptLevel) ([]Pass, error) {
	switch level {
	case O0:
		return nil, nil
	case O1:
		return []Pass{ConstFold{}, LocalCSE{}, DCE{}}, nil
	case O2:
		return []Pass{
			ConstFold{}, LocalCSE{}, DCE{},
			LICM{},
			Inline{Threshold: 176, MaxGrowth: 8192},
			ConstFold{}, LocalCSE{}, DCE{},
		}, nil
	case O3:
		return []Pass{
			ConstFold{}, LocalCSE{}, DCE{},
			LICM{},
			Inline{Threshold: 176, MaxGrowth: 8192},
			ConstFold{}, LocalCSE{}, DCE{},
			Inline{Threshold: 256, MaxGrowth: 16384},
			IPConstProp{},
			ConstFold{}, DCE{},
			GlobalCSE{},
			SRA{},
			DeadGlobals{},
			DCE{},
		}, nil
	default:
		_, err := ParseLevel(int(level))
		return nil, fmt.Errorf("compiler: %w", err)
	}
}

// Options configures a compilation.
type Options struct {
	Level OptLevel
	// Stabilize applies the STABILIZER compiler transformations (§3.3):
	// floating-point constants to globals and outlined conversions. The
	// szc driver sets this when any randomization is enabled.
	Stabilize bool
}

// Compile clones src, runs the configured pipeline plus (optionally) the
// STABILIZER transformations, computes sizes, and validates. The input
// module is never mutated.
func Compile(src *ir.Module, opts Options) (*ir.Module, error) {
	m := src.Clone()
	passes, err := Pipeline(opts.Level)
	if err != nil {
		return nil, err
	}
	for _, p := range passes {
		p.Run(m)
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("compiler: after pass %s: %w", p.Name(), err)
		}
	}
	if opts.Stabilize {
		for _, p := range []Pass{FPConstToGlobal{}, OutlineConversions{}} {
			p.Run(m)
			if err := m.Validate(); err != nil {
				return nil, fmt.Errorf("compiler: after pass %s: %w", p.Name(), err)
			}
		}
	}
	m.Finalize()
	ir.ComputeSizes(m)
	return m, nil
}
