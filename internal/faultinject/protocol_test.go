package faultinject

import (
	"context"
	"testing"
	"time"
)

// TestProtocolKindMapping pins the Kind -> NetFault decision table.
func TestProtocolKindMapping(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		kind Kind
		want NetFault
	}{
		{KindDrop, NetFault{Drop: true}},
		{KindError, NetFault{Drop: true}},
		{KindDup, NetFault{Duplicate: true}},
		{Kind5xx, NetFault{Status: 503}},
		{KindTorn, NetFault{Torn: true}},
	}
	for _, tc := range cases {
		deactivate := Activate(1, Fault{Site: SiteNetComplete, Nth: 1, Kind: tc.kind})
		if got := Protocol(ctx, SiteNetComplete); got != tc.want {
			t.Errorf("%v: Protocol = %+v, want %+v", tc.kind, got, tc.want)
		}
		// The fault fired once; the next request flows clean.
		if got := Protocol(ctx, SiteNetComplete); got != (NetFault{}) {
			t.Errorf("%v: second hit = %+v, want clean", tc.kind, got)
		}
		deactivate()
	}
	// No plan: zero decision.
	if got := Protocol(ctx, SiteNetComplete); got != (NetFault{}) {
		t.Errorf("inactive Protocol = %+v, want zero", got)
	}
}

// TestProtocolDelayRespectsContext: an armed delay at a protocol site turns
// into a drop when the caller's context dies first.
func TestProtocolDelayRespectsContext(t *testing.T) {
	defer Activate(1, Fault{Site: SiteNetAcquire, Nth: 1, Kind: KindDelay, Delay: time.Minute})()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := Protocol(ctx, SiteNetAcquire); !got.Drop {
		t.Fatalf("delay under dead context = %+v, want Drop", got)
	}
}

// TestHitDegradesProtocolKinds: the protocol kinds fired through plain Hit
// behave as transient errors, so arming them at a non-protocol site is
// safe.
func TestHitDegradesProtocolKinds(t *testing.T) {
	for _, k := range []Kind{KindDrop, KindDup, Kind5xx, KindTorn} {
		deactivate := Activate(1, Fault{Site: SitePoolWorker, Nth: 1, Kind: k})
		if err := Hit(context.Background(), SitePoolWorker); err == nil || !Transient(err) {
			t.Errorf("%v at plain site: Hit = %v, want transient error", k, err)
		}
		deactivate()
	}
}

// TestParseFaults covers the SZ_FAULTS wire format.
func TestParseFaults(t *testing.T) {
	faults, err := ParseFaults("net.complete:dup:1; net.acquire:drop:2:repeat ;coord.complete:5xx;cell.start:delay=250ms:4")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []Fault{
		{Site: "net.complete", Kind: KindDup, Nth: 1},
		{Site: "net.acquire", Kind: KindDrop, Nth: 2, Repeat: true},
		{Site: "coord.complete", Kind: Kind5xx},
		{Site: "cell.start", Kind: KindDelay, Nth: 4, Delay: 250 * time.Millisecond},
	}
	if len(faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(faults), len(want))
	}
	for i, w := range want {
		f := faults[i]
		if f.Site != w.Site || f.Kind != w.Kind || f.Nth != w.Nth || f.Repeat != w.Repeat || f.Delay != w.Delay {
			t.Errorf("fault %d = %+v, want %+v", i, f, w)
		}
	}
	for _, bad := range []string{
		"",                      // empty plan
		"net.complete",          // no kind
		"net.complete:quantum",  // unknown kind
		"net.complete:delay",    // delay needs a duration
		"net.complete:drop:x",   // bad ordinal
		"net.complete:drop:1:z", // trailing junk
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}
}

// TestParseKindRoundtrips every kind through its String form.
func TestParseKindRoundtrips(t *testing.T) {
	for k := KindError; k <= KindTorn; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = (%v, %v), want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Errorf("ParseKind accepted an unknown name")
	}
}
