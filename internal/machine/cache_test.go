package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func testCache() *Cache {
	return NewCache(CacheConfig{Name: "test", Size: 1024, LineSize: 64, Ways: 2})
	// 8 sets, 2 ways.
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "a", Size: 1024, LineSize: 60, Ways: 2}, // non-power-of-two line
		{Name: "b", Size: 1024, LineSize: 64, Ways: 0}, // zero ways
		{Name: "c", Size: 1000, LineSize: 64, Ways: 2}, // non-power-of-two sets
		{Name: "d", Size: 64, LineSize: 64, Ways: 2},   // zero sets
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q validated but should not", cfg.Name)
		}
	}
	good := CacheConfig{Name: "g", Size: 32 << 10, LineSize: 64, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := testCache()
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x103f) { // same line
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Fatal("next-line access hit cold")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := testCache() // 8 sets × 2 ways; addresses 512 bytes apart share a set
	const stride = 8 * 64
	a := mem.Addr(0)
	b := mem.Addr(stride)
	d := mem.Addr(2 * stride)
	c.Access(a)
	c.Access(b)
	// Touch a so b becomes LRU.
	c.Access(a)
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Fatal("a evicted but was MRU")
	}
	if c.Probe(b) {
		t.Fatal("b resident but was LRU at eviction")
	}
	if !c.Probe(d) {
		t.Fatal("d not resident after install")
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", c.Evictions)
	}
}

func TestCacheSetMapping(t *testing.T) {
	c := testCache()
	if c.Sets() != 8 {
		t.Fatalf("sets=%d, want 8", c.Sets())
	}
	// Addresses that differ only above the index bits map to the same set.
	if c.SetOf(0x40) != c.SetOf(0x40+8*64) {
		t.Fatal("stride of sets*line did not alias")
	}
	if c.SetOf(0x0) == c.SetOf(0x40) {
		t.Fatal("adjacent lines mapped to the same set")
	}
}

func TestCacheConflictVsCapacity(t *testing.T) {
	// Two addresses in the same set conflict even though the cache is
	// nearly empty — the core mechanism behind layout luck.
	c := testCache()
	const stride = 8 * 64
	addrs := []mem.Addr{0, stride, 2 * stride}
	for round := 0; round < 10; round++ {
		for _, a := range addrs {
			c.Access(a)
		}
	}
	// With 3 lines cycling through a 2-way set in LRU order every access
	// misses after the first round.
	if c.Hits != 0 {
		t.Fatalf("expected pure conflict thrashing, got %d hits", c.Hits)
	}
}

func TestCacheFlush(t *testing.T) {
	c := testCache()
	c.Access(0x1000)
	c.Flush()
	if c.Probe(0x1000) {
		t.Fatal("line survived flush")
	}
}

func TestCacheProbeDoesNotDisturb(t *testing.T) {
	c := testCache()
	c.Access(0x0)
	h, m0 := c.Hits, c.Misses
	c.Probe(0x0)
	c.Probe(0x9999)
	if c.Hits != h || c.Misses != m0 {
		t.Fatal("probe changed counters")
	}
}

func TestCacheAddressZeroResident(t *testing.T) {
	// Address 0 must be representable despite the empty-slot sentinel.
	c := testCache()
	c.Access(0)
	if !c.Probe(0) {
		t.Fatal("line 0 not tracked")
	}
}

func TestCacheAccessIdempotentProperty(t *testing.T) {
	// After any access sequence, accessing the last address again must hit.
	f := func(seq []uint32) bool {
		c := testCache()
		var last mem.Addr
		for _, a := range seq {
			last = mem.Addr(a)
			c.Access(last)
		}
		if len(seq) == 0 {
			return true
		}
		return c.Access(last)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTLBGranularity(t *testing.T) {
	tlb := NewTLB(64, 4)
	if tlb.LineSize() != mem.PageSize {
		t.Fatalf("TLB granularity %d, want page size", tlb.LineSize())
	}
	tlb.Access(0x1000)
	if !tlb.Probe(0x1fff) {
		t.Fatal("same page missed")
	}
	if tlb.Probe(0x2000) {
		t.Fatal("next page resident")
	}
}
