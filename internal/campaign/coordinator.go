package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/experiment"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/store"
)

// Cell states.
const (
	cellPending = "pending"
	cellLeased  = "leased"
	cellDone    = "done"
	cellFailed  = "failed"
)

// Campaign states reported by Status.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Store is the content-addressed result store (required). Every
	// completed cell lands here; every submitted cell is probed here first.
	Store *store.Store
	// LeaseTTL is how long a lease survives without a heartbeat before its
	// cell is requeued (default 30s).
	LeaseTTL time.Duration
	// MaxAttempts caps how many times a cell is leased before the campaign
	// fails (default 3 — one run plus two retries, mirroring the local
	// engine's per-cell retry posture).
	MaxAttempts int
	// MaxPendingCells bounds the open (pending + leased) cells across all
	// running campaigns. A submission that would push past the bound is
	// shed with an *OverloadError (HTTP 429 + Retry-After) instead of
	// growing the queue without limit. Default 10000; negative disables
	// the bound.
	MaxPendingCells int
	// EventLogCap bounds each campaign's in-memory event log: a ring of
	// the most recent lines with a monotonic cursor, so multi-day
	// campaigns cannot grow coordinator memory without limit. Default
	// 4096 lines; the minimum is 16.
	EventLogCap int
	// Identity names this coordinator process in /v1/coordinator reports
	// and the X-SZ-Coordinator response header (default "local"). In an HA
	// pair each process gets a distinct identity so chaos-test logs can
	// attribute events across a failover.
	Identity string
	// Fence, when non-nil, is the coordination lease this coordinator
	// holds on the store (store.Coordination). Every journal write and
	// every completion's store write re-verifies the fencing epoch first;
	// a deposed coordinator — one whose epoch has been superseded by a
	// promoted standby — has the write rejected with *store.FencedError
	// instead of corrupting the successor's state. Nil runs unfenced
	// (single-coordinator deployments and most tests).
	Fence *store.LeaseHandle
	// TenantWeights sets each tenant's share of the weighted round-robin
	// lease scheduler; tenants absent from the map weigh 1. Weights below
	// 1 are treated as 1.
	TenantWeights map[string]int
	// MaxInflightPerTenant caps how many cells one tenant may have leased
	// at once (0 or negative = unlimited). The cap idles a tenant's
	// surplus demand rather than shedding it.
	MaxInflightPerTenant int
	// MaxPendingPerTenant bounds one tenant's open (pending + leased)
	// cells; a submission breaching it is shed with a per-tenant
	// *OverloadError (HTTP 429 + Retry-After) while other tenants keep
	// submitting. 0 or negative = unlimited.
	MaxPendingPerTenant int
	// Obs receives the farm counters and the coordinator log. Counter
	// discipline: store hits/misses and cells completed are golden
	// (deterministic given store contents and the submission sequence);
	// leases granted, heartbeats missed, and requeues depend on worker
	// scheduling and wall-clock timing, so they are registered non-golden.
	Obs *obs.Scope
	// now is the clock, overridable in tests.
	now func() time.Time
}

func (o *CoordinatorOptions) defaults() error {
	if o.Store == nil {
		return fmt.Errorf("campaign: coordinator needs a result store")
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.MaxPendingCells == 0 {
		o.MaxPendingCells = 10000
	}
	if o.EventLogCap <= 0 {
		o.EventLogCap = 4096
	}
	if o.EventLogCap < 16 {
		o.EventLogCap = 16
	}
	if o.Identity == "" {
		o.Identity = "local"
	}
	if o.now == nil {
		o.now = time.Now
	}
	return nil
}

// cellState is one cell's scheduling state.
type cellState struct {
	CellSpec
	state    string
	attempts int    // leases granted so far
	fromHit  bool   // served from the store at submit time
	lease    uint64 // current lease id when leased
	err      string // last failure, for status reporting
	// firstGrant is when the cell's first lease was granted (zero until
	// then); with the campaign's submit time it yields the queue-wait
	// feeding campaign.queue.wait_seconds and the straggler report.
	firstGrant time.Time
	// prov is the measurement pedigree of the completing attempt,
	// attached to the artifact on request (?provenance=1). Non-golden.
	prov *bench.Provenance
}

// campaignState is one submitted campaign.
type campaignState struct {
	id     string
	spec   Spec
	tenant string
	cells  []*cellState
	state  string
	err    string
	// trace is the campaign's distributed trace ID, minted at submission
	// and journaled, so every cell attempt — including ones re-leased by
	// a promoted successor after failover — shares one trace.
	trace string
	// submitted anchors queue-wait measurement (journaled; zero for
	// campaigns restored from pre-trace journals).
	submitted time.Time

	// events is the campaign's bounded JSONL event log (obs wire format);
	// artifact caches the merged artifact bytes once assembled.
	events   *eventRing
	artifact []byte
}

// eventRing is a bounded event log with a monotonic cursor: the last cap
// lines are retained, and every line ever appended has a stable sequence
// number, so a follower that saw lines [0, n) asks for "since n" and keeps
// working across wrap — it just skips the lines the ring dropped.
type eventRing struct {
	lines [][]byte
	head  int // index of the oldest retained line
	n     int // retained count
	seq   int // total lines ever appended; retained are [seq-n, seq)
}

func newEventRing(capLines int) *eventRing {
	return &eventRing{lines: make([][]byte, capLines)}
}

func (r *eventRing) append(line []byte) {
	if r.n < len(r.lines) {
		r.lines[(r.head+r.n)%len(r.lines)] = line
		r.n++
	} else {
		r.lines[r.head] = line
		r.head = (r.head + 1) % len(r.lines)
	}
	r.seq++
}

// since concatenates the retained lines with sequence >= from and returns
// them with the next cursor. A from below the retention window starts at
// the window and reports how many lines the wrap dropped — followers
// surface that as a gap marker instead of silently missing events. A
// from at or past seq returns nothing.
func (r *eventRing) since(from int) (buf []byte, next, dropped int) {
	start := r.seq - r.n
	if from < start {
		dropped = start - from
		from = start
	}
	for i := from; i < r.seq; i++ {
		buf = append(buf, r.lines[(r.head+(i-start))%len(r.lines)]...)
	}
	return buf, r.seq, dropped
}

type lease struct {
	id       uint64
	campaign *campaignState
	cell     *cellState
	worker   string
	deadline time.Time
	expired  bool
	// attempt is the cell attempt this lease represents, frozen at grant
	// time: a late completion against an expired lease must name its own
	// attempt's span, not whatever attempt the cell is on by then.
	attempt int
}

// Coordinator owns campaign scheduling state and serves the farm protocol.
// All HTTP handlers are safe for concurrent use; the state machine is a
// single mutex — farm throughput is bounded by cell compute time, not
// coordination.
type Coordinator struct {
	opts     CoordinatorOptions
	area     *store.StateArea // durable campaign documents (campaigns/ beside blocks/)
	eventCap int

	mu        sync.Mutex
	cond      *sync.Cond // broadcast on any event append / state change
	campaigns []*campaignState
	byID      map[string]*campaignState
	leases    map[uint64]*lease
	nextCamp  uint64
	nextLease uint64

	// idem deduplicates retried completions by idempotency key: a network
	// layer (or an injected fault) that replays a completion gets the
	// original outcome back instead of burning a cell attempt. Bounded to
	// the most recent idemCap keys; keys older than that have long since
	// resolved through the lease table anyway.
	idem      map[string]string // key -> outcome ("" = success)
	idemOrder []string

	// Scheduler and autoscaling state (scheduler.go): smooth-WRR credit
	// per tenant, last-seen time per worker, and a bounded ring of recent
	// completion times for the drain-rate estimate.
	wrrCredit  map[string]int
	workerSeen map[string]time.Time
	recentDone []time.Time
}

// idemCap bounds the idempotency-key window.
const idemCap = 4096

// NewCoordinator builds a coordinator over the given store and restores
// any campaigns persisted by a previous coordinator process on the same
// store directory: open campaigns resume scheduling, their stale leases
// re-expire lazily, and completed-but-unjournaled cells are recovered from
// the store itself.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:       opts,
		eventCap:   opts.EventLogCap,
		byID:       map[string]*campaignState{},
		leases:     map[uint64]*lease{},
		idem:       map[string]string{},
		wrrCredit:  map[string]int{},
		workerSeen: map[string]time.Time{},
	}
	c.cond = sync.NewCond(&c.mu)
	if opts.Obs != nil {
		// Register the timing-dependent farm histograms/counters as
		// non-golden up front so a snapshot taken before any activity
		// already classifies them correctly.
		opts.Obs.Metrics.Counter("campaign.leases.granted").NonGolden()
		opts.Obs.Metrics.Counter("campaign.heartbeats.missed").NonGolden()
		opts.Obs.Metrics.Counter("campaign.requeues").NonGolden()
		opts.Obs.Metrics.Counter("campaign.leases.expired").NonGolden()
		opts.Obs.Metrics.Counter("campaign.leases.churn").NonGolden()
		opts.Obs.Metrics.Histogram("campaign.queue.wait_seconds").NonGolden()
	}
	area, err := opts.Store.StateArea("campaigns")
	if err != nil {
		return nil, err
	}
	c.area = area
	if err := c.loadCampaigns(); err != nil {
		return nil, fmt.Errorf("campaign: restoring persisted campaigns: %w", err)
	}
	return c, nil
}

func (c *Coordinator) metrics() *obs.Registry {
	if c.opts.Obs != nil {
		return c.opts.Obs.Metrics
	}
	return nil
}

func (c *Coordinator) logger() *obs.Logger {
	if c.opts.Obs != nil {
		return c.opts.Obs.Log
	}
	return nil
}

// event appends a JSONL line in the obs wire format to the campaign's
// event log, mirrors it to the coordinator log, and journals it to the
// durable per-campaign event log beside the campaign document. Lines
// carry a wall-clock timestamp (t_wall_ns_nongolden) so the timeline can
// order them; the ring stays the bounded live-follow surface while the
// journal is what `szfarm timeline` reads across restarts, failovers,
// and ring wraps. Must be called with c.mu held.
func (c *Coordinator) eventLocked(camp *campaignState, msg string, fields ...obs.Field) {
	var line lineBuffer
	lg := obs.NewLogger(&line, obs.LevelInfo).WallClock().With(obs.F("campaign", camp.id))
	lg.Info(msg, fields...)
	camp.events.append(line.line)
	c.appendEventJournalLocked(camp, line.line)
	c.logger().Info(msg, append([]obs.Field{obs.F("campaign", camp.id)}, fields...)...)
	c.cond.Broadcast()
}

// appendEventJournalLocked writes one event line to the campaign's
// durable log, fenced like every other shared-store write: a deposed
// coordinator must not interleave its lines with the successor's. Append
// failures are counted, not fatal — the journal is observability, and
// losing a line must never fail the scheduling operation that emitted it.
func (c *Coordinator) appendEventJournalLocked(camp *campaignState, line []byte) {
	if c.area == nil {
		return
	}
	if c.opts.Fence != nil && c.opts.Fence.Check() != nil {
		c.metrics().Counter("campaign.events.unjournaled").NonGolden().Inc()
		return
	}
	if err := c.area.AppendLog(camp.id+".events", line); err != nil {
		c.metrics().Counter("campaign.events.unjournaled").NonGolden().Inc()
	}
}

// lineBuffer captures a single logger line.
type lineBuffer struct{ line []byte }

func (b *lineBuffer) Write(p []byte) (int, error) {
	b.line = append(b.line, p...)
	return len(p), nil
}

// OverloadError sheds a submission the coordinator cannot queue without
// breaching its pending-cell bound — globally, or for one tenant when the
// per-tenant quota is the one breached. The HTTP layer maps it to 429 with
// a Retry-After header; the client backs off and retries. A per-tenant shed
// carries the tenant label so the caller can see other tenants are
// unaffected.
type OverloadError struct {
	Open       int           // open (pending + leased) cells right now
	Limit      int           // the configured bound
	RetryAfter time.Duration // suggested client backoff
	Tenant     string        // non-empty when a per-tenant quota shed this
}

func (e *OverloadError) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("campaign: tenant %s over quota: %d open cells at limit %d; retry in %s",
			e.Tenant, e.Open, e.Limit, e.RetryAfter)
	}
	return fmt.Sprintf("campaign: coordinator overloaded: %d open cells at limit %d; retry in %s",
		e.Open, e.Limit, e.RetryAfter)
}

// fenceErr re-verifies the coordinator's fencing epoch before a write to
// shared state. Unfenced coordinators (Fence == nil) always pass. A
// *store.FencedError means a standby claimed a newer epoch: this
// coordinator is deposed and the write must not happen.
func (c *Coordinator) fenceErr() error {
	if c.opts.Fence == nil {
		return nil
	}
	if err := c.opts.Fence.Check(); err != nil {
		c.metrics().Counter("campaign.fenced.writes").NonGolden().Inc()
		return err
	}
	return nil
}

// openCellsLocked counts cells not yet resolved across running campaigns —
// in total, and for the given tenant ("" skips the per-tenant count).
func (c *Coordinator) openCellsLocked(tenant string) (open, tenantOpen int) {
	for _, camp := range c.campaigns {
		if camp.state != StateRunning {
			continue
		}
		for _, cell := range camp.cells {
			if cell.state == cellPending || cell.state == cellLeased {
				open++
				if camp.tenant == tenant {
					tenantOpen++
				}
			}
		}
	}
	return open, tenantOpen
}

// Submit registers a campaign, probing the store for every cell first:
// already-computed cells are marked done immediately and never dispatched
// (store-first dedupe). Returns the campaign id and how many cells were
// served from the store. A submission whose unserved cells would push the
// open-cell count past MaxPendingCells is shed with *OverloadError before
// any state is created.
func (c *Coordinator) Submit(spec Spec) (id string, cells, hits int, err error) {
	if err := spec.Validate(); err != nil {
		return "", 0, 0, err
	}
	if err := c.fenceErr(); err != nil {
		return "", 0, 0, err
	}
	camp := &campaignState{spec: spec, tenant: tenantOf(spec), state: StateRunning,
		events: newEventRing(c.eventCap), trace: obs.NewTraceID()}
	for _, cs := range spec.Cells() {
		st := &cellState{CellSpec: cs, state: cellPending}
		// The probe uses Get, not a cheaper existence check, so a corrupt
		// block degrades to a recompute here rather than a failed assembly
		// later.
		if results := c.opts.Store.Get(cs.StoreKey, cs.Runs, cs.SeedBase); results != nil {
			st.state = cellDone
			st.fromHit = true
			hits++
			c.metrics().Counter("campaign.store.hits").Inc()
		} else {
			c.metrics().Counter("campaign.store.misses").Inc()
		}
		camp.cells = append(camp.cells, st)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	open, tenantOpen := c.openCellsLocked(camp.tenant)
	adding := len(camp.cells) - hits
	if lim := c.opts.MaxPendingCells; lim > 0 && open+adding > lim {
		c.metrics().Counter("campaign.overload.shed").NonGolden().Inc()
		return "", 0, 0, &OverloadError{Open: open, Limit: lim, RetryAfter: 5 * time.Second}
	}
	if lim := c.opts.MaxPendingPerTenant; lim > 0 && tenantOpen+adding > lim {
		c.metrics().Counter("campaign.overload.shed_tenant").NonGolden().Inc()
		return "", 0, 0, &OverloadError{Open: tenantOpen, Limit: lim, RetryAfter: 5 * time.Second, Tenant: camp.tenant}
	}
	c.nextCamp++
	camp.id = fmt.Sprintf("c%04d", c.nextCamp)
	camp.submitted = c.opts.now()
	c.campaigns = append(c.campaigns, camp)
	c.byID[camp.id] = camp
	c.eventLocked(camp, "campaign submitted",
		obs.F("cells", len(camp.cells)), obs.F("store_hits", hits),
		obs.F("runs", spec.Runs), obs.F("seed", spec.Seed),
		obs.F("tenant", camp.tenant), obs.F("trace", camp.trace))
	c.refreshLocked(camp)
	c.persistLocked(camp)
	return camp.id, len(camp.cells), hits, nil
}

// refreshLocked recomputes a campaign's terminal state and, on completion,
// emits the completion event. Must be called with c.mu held.
func (c *Coordinator) refreshLocked(camp *campaignState) {
	if camp.state != StateRunning {
		return
	}
	done := 0
	for _, cell := range camp.cells {
		switch cell.state {
		case cellFailed:
			camp.state = StateFailed
			camp.err = fmt.Sprintf("cell %s failed after %d attempts: %s", cell.Bench, cell.attempts, cell.err)
			c.eventLocked(camp, "campaign failed", obs.F("cell", cell.Bench), obs.F("err", cell.err))
			return
		case cellDone:
			done++
		}
	}
	if done == len(camp.cells) {
		camp.state = StateDone
		c.eventLocked(camp, "campaign complete", obs.F("cells", done))
	}
	c.cond.Broadcast()
}

// expireLocked requeues cells whose leases have missed their deadline.
// Called lazily from every scheduling entry point; must hold c.mu.
func (c *Coordinator) expireLocked() {
	now := c.opts.now()
	for id, l := range c.leases {
		if l.expired || now.Before(l.deadline) {
			continue
		}
		// The lease is retired, not deleted: a worker that was merely slow
		// can still post its (deterministic, therefore correct) results
		// against the expired lease, and the done-state guard makes the
		// duplicate a no-op.
		l.expired = true
		c.metrics().Counter("campaign.heartbeats.missed").Inc()
		c.metrics().Counter("campaign.leases.expired").Inc()
		if l.cell.state != cellLeased || l.cell.lease != id {
			c.persistLocked(l.campaign) // journal the retirement itself
			continue                    // cell already completed by a late post or re-lease
		}
		c.eventLocked(l.campaign, "lease expired", obs.F("cell", l.cell.Bench),
			obs.F("worker", l.worker), obs.F("attempt", l.cell.attempts),
			obs.F("trace", l.campaign.trace),
			obs.F("span", obs.SpanID(l.campaign.id, l.cell.Bench, l.attempt)))
		c.requeueLocked(l.campaign, l.cell, "lease expired (worker presumed dead)")
		c.persistLocked(l.campaign)
	}
}

// requeueLocked puts a leased cell back in the queue or fails it when its
// attempts are exhausted. Must hold c.mu.
func (c *Coordinator) requeueLocked(camp *campaignState, cell *cellState, reason string) {
	cell.lease = 0
	cell.err = reason
	if cell.attempts >= c.opts.MaxAttempts {
		cell.state = cellFailed
		c.refreshLocked(camp)
		return
	}
	cell.state = cellPending
	c.metrics().Counter("campaign.requeues").Inc()
	// Churn counts lease turnover that produced no completion — expiries,
	// drains, and error requeues — the "wasted lease" signal an operator
	// watches for flapping workers.
	c.metrics().Counter("campaign.leases.churn").Inc()
	c.eventLocked(camp, "cell requeued", obs.F("cell", cell.Bench),
		obs.F("attempt", cell.attempts), obs.F("reason", reason),
		obs.F("trace", camp.trace))
}

// Lease is the work grant the coordinator hands a worker.
type Lease struct {
	ID       uint64            `json:"id"`
	Campaign string            `json:"campaign"`
	Bench    string            `json:"bench"`
	Runs     int               `json:"runs"`
	SeedBase uint64            `json:"seed_base"`
	Config   experiment.Config `json:"config"`
	// TTLSeconds is how often the worker must heartbeat (it should do so at
	// a fraction of this).
	TTLSeconds float64 `json:"ttl_seconds"`
	Attempt    int     `json:"attempt"`
	// Trace is the campaign's distributed trace ID and Span names this
	// cell attempt within it; the worker carries both back on every
	// heartbeat and completion via the X-Sz-Trace/X-Sz-Span headers.
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
}

// AcquireResponse answers a lease request. A nil Lease with Remaining > 0
// means "all work is leased out, poll again"; Remaining == 0 means the
// farm is idle.
type AcquireResponse struct {
	Lease *Lease `json:"lease,omitempty"`
	// Remaining counts cells not yet done or failed across all campaigns
	// (pending + leased), so idle-exiting workers can tell "nothing left"
	// from "nothing for me right now".
	Remaining int `json:"remaining"`
}

// Acquire grants a pending cell to the worker — chosen by the weighted
// round-robin tenant scheduler in scheduler.go — or reports how much work
// remains in flight.
func (c *Coordinator) Acquire(worker string) AcquireResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	if worker != "" {
		c.workerSeen[worker] = c.opts.now()
	}
	grant, remaining := c.scheduleLocked(worker)
	resp := AcquireResponse{Remaining: remaining}
	if grant != nil {
		c.persistLocked(grant.campaign)
		resp.Lease = &Lease{
			ID:         grant.id,
			Campaign:   grant.campaign.id,
			Bench:      grant.cell.Bench,
			Runs:       grant.cell.Runs,
			SeedBase:   grant.cell.SeedBase,
			Config:     grant.campaign.spec.Config,
			TTLSeconds: c.opts.LeaseTTL.Seconds(),
			Attempt:    grant.cell.attempts,
			Trace:      grant.campaign.trace,
			Span:       obs.SpanID(grant.campaign.id, grant.cell.Bench, grant.attempt),
		}
	}
	return resp
}

// Heartbeat extends a lease. Returns false when the lease is unknown or
// already expired — the worker should abandon the cell (a successor lease
// may already be running it; determinism makes the duplicate harmless, but
// abandoning saves the wasted work).
func (c *Coordinator) Heartbeat(leaseID uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	l, ok := c.leases[leaseID]
	if !ok || l.expired {
		return false
	}
	l.deadline = c.opts.now().Add(c.opts.LeaseTTL)
	c.workerSeen[l.worker] = c.opts.now()
	return true
}

// CompleteRequest posts a finished (or failed) cell back.
type CompleteRequest struct {
	Worker  string                 `json:"worker"`
	Results []experiment.RunResult `json:"results,omitempty"`
	// Error, when non-empty, reports a compute failure; the cell is
	// requeued or failed.
	Error string `json:"error,omitempty"`
	// Events carries the worker's per-cell JSONL telemetry lines (obs wire
	// format), folded into the campaign's event stream.
	Events []json.RawMessage `json:"events,omitempty"`
	// IdempotencyKey, when non-empty, deduplicates retried posts of this
	// completion: a retry after a lost response returns the original
	// outcome instead of reprocessing (and instead of surfacing "unknown
	// lease" for an already-resolved one). The farm client derives it from
	// the lease id, which is single-use.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Trace and Span identify the attempt in the campaign's distributed
	// trace. The HTTP layer fills them from the X-Sz-Trace/X-Sz-Span
	// request headers (headers win over the body); the coordinator falls
	// back to its own lease-derived values when both are absent.
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
	// SpanRecord is the worker's timing record for the attempt — the
	// distributed half of the campaign trace, folded into the event log
	// for timeline reconstruction and into the artifact's provenance.
	SpanRecord *SpanRecord `json:"span_record,omitempty"`
}

// SpanRecord is one worker-side cell-attempt span: when the attempt
// started and finished on the worker's clock. Wall-clock by nature, so
// everything here is non-golden telemetry; it never touches the golden
// artifact path.
type SpanRecord struct {
	Trace       string `json:"trace,omitempty"`
	Span        string `json:"span,omitempty"`
	Worker      string `json:"worker,omitempty"`
	StartUnixNs int64  `json:"start_unix_ns"`
	EndUnixNs   int64  `json:"end_unix_ns"`
}

// RunSeconds is the span's duration (clamped at zero).
func (s *SpanRecord) RunSeconds() float64 {
	if s == nil || s.EndUnixNs <= s.StartUnixNs {
		return 0
	}
	return float64(s.EndUnixNs-s.StartUnixNs) / 1e9
}

// recordIdemLocked remembers a completion outcome under its idempotency
// key, evicting the oldest key past the window. Must hold c.mu.
func (c *Coordinator) recordIdemLocked(key, outcome string) {
	if key == "" {
		return
	}
	if _, seen := c.idem[key]; !seen {
		c.idemOrder = append(c.idemOrder, key)
		if len(c.idemOrder) > idemCap {
			delete(c.idem, c.idemOrder[0])
			c.idemOrder = c.idemOrder[1:]
		}
	}
	c.idem[key] = outcome
}

// Complete resolves a lease. Late completions (expired lease, cell already
// re-leased or done) are accepted when they carry valid results — the cell
// is deterministic, so any completion is the completion; the store's
// immutability makes duplicates no-ops. Retried posts carrying an
// idempotency key already seen return the first post's outcome.
func (c *Coordinator) Complete(leaseID uint64, req CompleteRequest) error {
	c.mu.Lock()
	if outcome, seen := c.idem[req.IdempotencyKey]; req.IdempotencyKey != "" && seen {
		c.metrics().Counter("campaign.completions.deduped").NonGolden().Inc()
		c.mu.Unlock()
		if outcome == "" {
			return nil
		}
		return fmt.Errorf("%s", outcome)
	}
	l, ok := c.leases[leaseID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("campaign: unknown or expired lease %d", leaseID)
	}
	camp, cell := l.campaign, l.cell
	delete(c.leases, leaseID)
	// The attempt's trace identity: headers/body win, the lease is the
	// fallback, so even a bare post lands in the right trace.
	trace, span := req.Trace, req.Span
	if trace == "" {
		trace = camp.trace
	}
	if span == "" {
		span = obs.SpanID(camp.id, cell.Bench, l.attempt)
	}
	for _, raw := range req.Events {
		line := append(append([]byte(nil), raw...), '\n')
		camp.events.append(line)
		c.appendEventJournalLocked(camp, line)
	}
	if sr := req.SpanRecord; sr != nil {
		// The worker's timing record becomes a first-class event so the
		// timeline can draw the worker-side span without a second channel.
		c.eventLocked(camp, "cell span", obs.F("cell", cell.Bench),
			obs.F("worker", req.Worker), obs.F("attempt", l.attempt),
			obs.F("trace", trace), obs.F("span", span),
			obs.F("start_unix_ns", sr.StartUnixNs), obs.F("end_unix_ns", sr.EndUnixNs))
	}

	if req.Error != "" {
		c.eventLocked(camp, "cell failed on worker", obs.F("cell", cell.Bench),
			obs.F("worker", req.Worker), obs.F("err", req.Error),
			obs.F("trace", trace), obs.F("span", span))
		if cell.state == cellLeased && cell.lease == leaseID {
			c.requeueLocked(camp, cell, req.Error)
		}
		c.recordIdemLocked(req.IdempotencyKey, "")
		c.persistLocked(camp)
		c.mu.Unlock()
		return nil
	}
	if len(req.Results) != cell.Runs {
		err := fmt.Errorf("campaign: cell %s: %d results for %d runs", cell.Bench, len(req.Results), cell.Runs)
		c.recordIdemLocked(req.IdempotencyKey, err.Error())
		c.mu.Unlock()
		return err
	}
	// Persist outside the scheduling decision but inside one logical
	// completion: the store write is what makes the cell durable. A crash
	// between the Put and the state journal below loses only the
	// transition, never the work — restart recovers the cell as done from
	// the store block itself.
	storeKey, runs, seedBase := cell.StoreKey, cell.Runs, cell.SeedBase
	c.mu.Unlock()
	// The fencing epoch is re-verified immediately before the store write:
	// a deposed coordinator must not write blocks (or journal state) the
	// promoted one no longer expects. Not recorded under the idempotency
	// key — the worker's retry should land on the new active coordinator,
	// which restored this lease from the journal and completes it there.
	if err := c.fenceErr(); err != nil {
		return err
	}
	if err := c.opts.Store.Put(storeKey, runs, seedBase, req.Results); err != nil {
		// Deliberately not recorded under the idempotency key: a retry of
		// this post should retry the store write.
		return fmt.Errorf("campaign: storing cell %s: %w", cell.Bench, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cell.state != cellDone {
		cell.state = cellDone
		cell.err = ""
		cell.prov = &bench.Provenance{
			Trace:       trace,
			Span:        span,
			Worker:      req.Worker,
			Coordinator: c.opts.Identity,
			Attempts:    cell.attempts,
			RunSeconds:  req.SpanRecord.RunSeconds(),
		}
		if c.opts.Fence != nil {
			cell.prov.Epoch = c.opts.Fence.Epoch()
		}
		if !camp.submitted.IsZero() && !cell.firstGrant.IsZero() {
			cell.prov.QueueWaitSeconds = cell.firstGrant.Sub(camp.submitted).Seconds()
		}
		c.metrics().Counter("campaign.cells.completed").Inc()
		c.noteCompletionLocked()
		c.eventLocked(camp, "cell complete", obs.F("cell", cell.Bench),
			obs.F("worker", req.Worker), obs.F("runs", runs),
			obs.F("trace", trace), obs.F("span", span))
		c.refreshLocked(camp)
	}
	c.recordIdemLocked(req.IdempotencyKey, "")
	c.persistLocked(camp)
	return nil
}

// Release hands a leased cell back to the queue without burning one of its
// attempts — the drain path: a worker told to shut down returns its
// in-flight lease immediately instead of letting it idle until TTL expiry
// delays the requeue, and the abandonment is not a failure, so the attempt
// count is restored. Returns false for an unknown or already-expired lease.
func (c *Coordinator) Release(leaseID uint64, worker string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[leaseID]
	if !ok || l.expired {
		return false
	}
	l.expired = true
	if l.cell.state == cellLeased && l.cell.lease == leaseID {
		if l.cell.attempts > 0 {
			l.cell.attempts--
		}
		l.cell.lease = 0
		l.cell.state = cellPending
		c.metrics().Counter("campaign.leases.released").NonGolden().Inc()
		c.metrics().Counter("campaign.leases.churn").Inc()
		c.eventLocked(l.campaign, "lease released (worker draining)",
			obs.F("cell", l.cell.Bench), obs.F("worker", worker),
			obs.F("trace", l.campaign.trace),
			obs.F("span", obs.SpanID(l.campaign.id, l.cell.Bench, l.attempt)))
	}
	c.persistLocked(l.campaign)
	return true
}

// CellStatus is one cell's scheduling state in a status report.
type CellStatus struct {
	Bench    string `json:"bench"`
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	StoreHit bool   `json:"store_hit"`
	Error    string `json:"error,omitempty"`
}

// Status is a campaign's progress snapshot.
type Status struct {
	ID        string       `json:"id"`
	Tenant    string       `json:"tenant,omitempty"`
	State     string       `json:"state"`
	Cells     int          `json:"cells"`
	Done      int          `json:"done"`
	Pending   int          `json:"pending"`
	Leased    int          `json:"leased"`
	Failed    int          `json:"failed"`
	StoreHits int          `json:"store_hits"`
	Error     string       `json:"error,omitempty"`
	Detail    []CellStatus `json:"detail,omitempty"`
}

// Status reports one campaign (detail included), or false if unknown.
func (c *Coordinator) Status(id string) (Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	camp, ok := c.byID[id]
	if !ok {
		return Status{}, false
	}
	return c.statusLocked(camp, true), true
}

// StatusAll summarizes every campaign in submission order.
func (c *Coordinator) StatusAll() []Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	out := make([]Status, 0, len(c.campaigns))
	for _, camp := range c.campaigns {
		out = append(out, c.statusLocked(camp, false))
	}
	return out
}

func (c *Coordinator) statusLocked(camp *campaignState, detail bool) Status {
	st := Status{ID: camp.id, Tenant: camp.tenant, State: camp.state, Cells: len(camp.cells), Error: camp.err}
	for _, cell := range camp.cells {
		switch cell.state {
		case cellDone:
			st.Done++
		case cellPending:
			st.Pending++
		case cellLeased:
			st.Leased++
		case cellFailed:
			st.Failed++
		}
		if cell.fromHit {
			st.StoreHits++
		}
		if detail {
			st.Detail = append(st.Detail, CellStatus{
				Bench: cell.Bench, State: cell.state, Attempts: cell.attempts,
				StoreHit: cell.fromHit, Error: cell.err,
			})
		}
	}
	return st
}

// Artifact assembles (and caches) a completed campaign's merged artifact by
// running the ordinary collection path in store-only mode: the exact code
// that builds a local artifact, with the compute branch forbidden. This is
// the mechanism behind the byte-identity guarantee — there is no separate
// "merge" implementation to drift.
func (c *Coordinator) Artifact(ctx context.Context, id string) ([]byte, error) {
	c.mu.Lock()
	camp, ok := c.byID[id]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("campaign: unknown campaign %q", id)
	}
	if camp.state != StateDone {
		state := camp.state
		c.mu.Unlock()
		return nil, fmt.Errorf("campaign: %s is %s, artifact available once done", id, state)
	}
	if camp.artifact != nil {
		buf := camp.artifact
		c.mu.Unlock()
		return buf, nil
	}
	spec := camp.spec
	c.mu.Unlock()

	opts, err := spec.CollectOptions()
	if err != nil {
		return nil, err
	}
	ctx = experiment.WithStoreOnly(experiment.WithCellStore(ctx, c.opts.Store.Cells(spec.Config.Engine)))
	art, err := bench.Collect(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("campaign: assembling %s from store: %w", id, err)
	}
	buf, err := art.Encode()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	camp.artifact = buf
	c.mu.Unlock()
	return buf, nil
}

// Events returns the campaign's event log as JSONL bytes from monotonic
// cursor `from`, with the next cursor, how many lines a ring wrap dropped
// before the window, and whether the campaign is terminal. The cursor
// counts lines ever appended, not lines retained: a follower whose cursor
// fell behind a ring wrap resumes at the oldest retained line and learns
// the size of the gap (the durable event journal still has the dropped
// lines — the ring is the bounded live surface). Used by the streaming
// handler; also convenient for tests.
func (c *Coordinator) events(id string, from int) (buf []byte, next, dropped int, terminal, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	camp, ok := c.byID[id]
	if !ok {
		return nil, 0, 0, true, false
	}
	buf, next, dropped = camp.events.since(from)
	return buf, next, dropped, camp.state != StateRunning, true
}

// EventJournal reads a campaign's durable event log from the store —
// every line ever emitted, across restarts and failovers, torn tail
// dropped. This is the timeline's preferred source; the in-memory ring
// only retains the most recent EventLogCap lines.
func (c *Coordinator) EventJournal(id string) ([]byte, error) {
	if c.area == nil {
		return nil, fmt.Errorf("campaign: no durable state area")
	}
	return c.area.LoadLog(id + ".events")
}

// Handler returns the coordinator's HTTP API.
//
//	POST /v1/campaigns                submit a Spec -> {id, cells, store_hits}
//	GET  /v1/campaigns                all campaign statuses
//	GET  /v1/campaigns/{id}           one campaign's status (with cell detail)
//	GET  /v1/campaigns/{id}/artifact  merged artifact (campaign must be done)
//	GET  /v1/campaigns/{id}/events    JSONL event stream; ?follow=1 streams
//	                                  until the campaign is terminal
//	POST /v1/leases                   {worker} -> AcquireResponse
//	POST /v1/leases/{id}/heartbeat    extend the lease
//	POST /v1/leases/{id}/complete     CompleteRequest
//	POST /v1/leases/{id}/release      {worker}; drain path, returns the cell
//	GET  /v1/coordinator              this process's role, identity, and
//	                                  fencing epoch (failover probe target)
//	GET  /v1/scaling                  autoscaling signals (ScalingReport)
//	GET  /metrics                     Prometheus text exposition (includes
//	                                  non-golden series; operational surface)
//	GET  /healthz                     liveness probe
//
// Every response carries X-SZ-Coordinator (identity) and X-SZ-Epoch
// (fencing epoch, 0 when unfenced) headers so clients can attribute
// exchanges across a failover. Submission overload surfaces as 429 with a
// Retry-After header; a fenced (deposed-coordinator) write surfaces as 503
// so the client retries against the promoted coordinator. The acquire and
// complete handlers carry fault-injection sites (coord.acquire,
// coord.complete) for chaos tests.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "store_blocks": c.opts.Store.Len()})
	})
	mux.HandleFunc("GET /v1/coordinator", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Info())
	})
	mux.HandleFunc("GET /v1/scaling", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Scaling())
	})
	mux.Handle("GET /metrics", c.metricsHandler())
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		id, cells, hits, err := c.Submit(spec)
		if err != nil {
			var over *OverloadError
			if errors.As(err, &over) {
				w.Header().Set("Retry-After", strconv.Itoa(int(over.RetryAfter/time.Second)))
				httpError(w, http.StatusTooManyRequests, err)
				return
			}
			var fenced *store.FencedError
			if errors.As(err, &fenced) {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, err)
				return
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, SubmitResponse{ID: id, Cells: cells, StoreHits: hits})
	})
	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.StatusAll())
	})
	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := c.Status(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/campaigns/{id}/artifact", func(w http.ResponseWriter, r *http.Request) {
		buf, err := c.Artifact(r.Context(), r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		// ?provenance=1 decorates a copy with each cell's measurement
		// pedigree; the cached plain artifact — the golden bytes — is
		// never touched.
		if r.URL.Query().Get("provenance") == "1" {
			if buf, err = c.decorateProvenance(r.PathValue("id"), buf); err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	})
	mux.HandleFunc("GET /v1/campaigns/{id}/events", c.handleEvents)
	mux.HandleFunc("POST /v1/leases", func(w http.ResponseWriter, r *http.Request) {
		if err := faultinject.Hit(r.Context(), faultinject.SiteCoordAcquire); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		var req struct {
			Worker string `json:"worker"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding lease request: %w", err))
			return
		}
		resp := c.Acquire(req.Worker)
		if resp.Lease != nil {
			// The grant's trace context rides the response headers too, so
			// transport-level tooling sees the same identifiers as the body.
			obs.TraceContext{TraceID: resp.Lease.Trace, SpanID: resp.Lease.Span}.Inject(w.Header())
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad lease id: %w", err))
			return
		}
		if !c.Heartbeat(id) {
			httpError(w, http.StatusGone, fmt.Errorf("lease %d expired or unknown", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("POST /v1/leases/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		if err := faultinject.Hit(r.Context(), faultinject.SiteCoordComplete); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad lease id: %w", err))
			return
		}
		var req CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding completion: %w", err))
			return
		}
		if tc := obs.ExtractTrace(r.Header); tc.Valid() {
			req.Trace, req.Span = tc.TraceID, tc.SpanID
		}
		if err := c.Complete(id, req); err != nil {
			// A fenced completion is retryable — the worker should reprobe
			// and post to the promoted coordinator, which restored this
			// lease from the journal. Everything else is terminal for the
			// lease (gone).
			var fenced *store.FencedError
			if errors.As(err, &fenced) {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, err)
				return
			}
			httpError(w, http.StatusGone, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("POST /v1/leases/{id}/release", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad lease id: %w", err))
			return
		}
		var req struct {
			Worker string `json:"worker"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding release: %w", err))
			return
		}
		if !c.Release(id, req.Worker) {
			httpError(w, http.StatusGone, fmt.Errorf("lease %d expired or unknown", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return c.withCoordHeaders(mux)
}

// withCoordHeaders stamps every response with this coordinator's identity
// and fencing epoch, so clients and chaos-test logs can attribute an
// exchange to a specific coordinator incarnation across a failover.
func (c *Coordinator) withCoordHeaders(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderCoordinator, c.opts.Identity)
		var epoch uint64
		if c.opts.Fence != nil {
			epoch = c.opts.Fence.Epoch()
		}
		w.Header().Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
		// Echo the caller's trace context so both halves of every exchange
		// carry the same identifiers.
		obs.ExtractTrace(r.Header).Inject(w.Header())
		next.ServeHTTP(w, r)
	})
}

// metricsHandler serves the coordinator's registry in Prometheus text
// format, refreshing the derived operational gauges (backlog, inflight,
// lease utilization, per-tenant queue depths) from the scaling report
// first so a scrape always sees current queue state.
func (c *Coordinator) metricsHandler() http.Handler {
	inner := c.metrics().PromHandler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.refreshGauges()
		inner.ServeHTTP(w, r)
	})
}

// refreshGauges derives the operational gauges from the scaling report.
// Gauges are environmental (never golden), so the tenant label rides in
// the registry key and surfaces as a Prometheus label.
func (c *Coordinator) refreshGauges() {
	m := c.metrics()
	if m == nil {
		return
	}
	rep := c.Scaling()
	m.Gauge("campaign.backlog").Set(float64(rep.Backlog))
	m.Gauge("campaign.inflight").Set(float64(rep.Inflight))
	m.Gauge("campaign.workers.live").Set(float64(rep.Workers))
	m.Gauge("campaign.lease.utilization").Set(rep.LeaseUtilization)
	m.Gauge("campaign.completions.per_second").Set(rep.CompletionsPerSecond)
	// The scaling report only lists tenants with running campaigns; a
	// tenant whose queue just drained must go to zero, not disappear from
	// the scrape — so derive the tenant set from every known campaign.
	perTenant := map[string]TenantScaling{}
	for _, ts := range rep.Tenants {
		perTenant[ts.Tenant] = ts
	}
	c.mu.Lock()
	for _, camp := range c.campaigns {
		if _, ok := perTenant[camp.tenant]; !ok {
			perTenant[camp.tenant] = TenantScaling{Tenant: camp.tenant, Weight: c.tenantWeight(camp.tenant)}
		}
	}
	c.mu.Unlock()
	for tenant, ts := range perTenant {
		m.Gauge(`campaign.tenant.pending{tenant="` + tenant + `"}`).Set(float64(ts.Pending))
		m.Gauge(`campaign.tenant.inflight{tenant="` + tenant + `"}`).Set(float64(ts.Inflight))
		m.Gauge(`campaign.tenant.weight{tenant="` + tenant + `"}`).Set(float64(ts.Weight))
	}
}

// decorateProvenance attaches each cell's measurement pedigree to a copy
// of the campaign's (already-assembled) artifact. Store-hit cells carry a
// minimal block — the samples were deduplicated, so their pedigree is
// the store itself.
func (c *Coordinator) decorateProvenance(id string, plain []byte) ([]byte, error) {
	art, err := bench.ReadBytes(plain)
	if err != nil {
		return nil, fmt.Errorf("campaign: decoding %s artifact: %w", id, err)
	}
	c.mu.Lock()
	camp, ok := c.byID[id]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("campaign: unknown campaign %q", id)
	}
	prov := make(map[string]*bench.Provenance, len(camp.cells))
	for _, cell := range camp.cells {
		switch {
		case cell.prov != nil:
			cp := *cell.prov
			prov[cell.Bench] = &cp
		case cell.fromHit:
			prov[cell.Bench] = &bench.Provenance{Trace: camp.trace, StoreHit: true}
		}
	}
	c.mu.Unlock()
	for i := range art.Benchmarks {
		art.Benchmarks[i].Provenance = prov[art.Benchmarks[i].Name]
	}
	return art.Encode()
}

// Response headers identifying the answering coordinator.
const (
	HeaderCoordinator = "X-Sz-Coordinator"
	HeaderEpoch       = "X-Sz-Epoch"
)

// CoordinatorInfo answers GET /v1/coordinator: which process answered,
// its role, and the coordination-lease epoch it holds (or observes, for a
// standby). Clients probe this endpoint across their server list to find
// the active coordinator after a failover.
type CoordinatorInfo struct {
	// Role is RoleActive or RoleStandby.
	Role string `json:"role"`
	// Self identifies the answering process.
	Self string `json:"self"`
	// Holder identifies the lease holder (== Self when Role is active).
	Holder string `json:"holder,omitempty"`
	// Epoch is the fencing epoch (0 when unfenced).
	Epoch uint64 `json:"epoch"`
	// LeaseExpiresInS is the observed heartbeat headroom (standby reports
	// only; the active holder renews its own lease).
	LeaseExpiresInS float64 `json:"lease_expires_in_s,omitempty"`
	// StoreBlocks sizes the shared store, a cheap liveness signal.
	StoreBlocks int `json:"store_blocks"`
}

// Coordinator roles reported by /v1/coordinator.
const (
	RoleActive  = "active"
	RoleStandby = "standby"
)

// Info reports this coordinator's identity and fencing epoch. A bare
// Coordinator is always active (standby processes answer through HAServer,
// which has no Coordinator until promotion).
func (c *Coordinator) Info() CoordinatorInfo {
	info := CoordinatorInfo{
		Role: RoleActive, Self: c.opts.Identity, Holder: c.opts.Identity,
		StoreBlocks: c.opts.Store.Len(),
	}
	if c.opts.Fence != nil {
		info.Epoch = c.opts.Fence.Epoch()
		info.Holder = c.opts.Fence.Holder()
	}
	return info
}

// Event-cursor response headers. A one-shot page (?since=N) answers with
// the next cursor to poll from, how many lines a ring wrap dropped before
// the window (the client renders that as a gap marker), and whether the
// campaign is terminal — together they make a poll loop that follows a
// campaign to completion without holding a connection open.
const (
	HeaderEventsNext     = "X-Sz-Events-Next"
	HeaderEventsDropped  = "X-Sz-Events-Dropped"
	HeaderEventsTerminal = "X-Sz-Events-Terminal"
)

// handleEvents streams a campaign's JSONL event log. ?since=N starts the
// page at cursor N; the response carries the cursor headers above. With
// ?follow=1 the response stays open, flushing new lines as they appear,
// until the campaign reaches a terminal state or the client goes away.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	follow := r.URL.Query().Get("follow") == "1"
	from := 0
	if s := r.URL.Query().Get("since"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad since cursor %q", s))
			return
		}
		from = n
	}
	buf, next, dropped, terminal, ok := c.events(id, from)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.Header().Set(HeaderEventsNext, strconv.Itoa(next))
	w.Header().Set(HeaderEventsDropped, strconv.Itoa(dropped))
	w.Header().Set(HeaderEventsTerminal, boolHeader(terminal))
	flusher, _ := w.(http.Flusher)
	for {
		if len(buf) > 0 {
			if _, err := w.Write(buf); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		from = next
		if !follow || terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-c.waitEvents(from):
		}
		buf, next, _, terminal, ok = c.events(id, from)
		if !ok {
			return
		}
	}
}

func boolHeader(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// waitEvents returns a channel that closes when the event log may have
// grown past n lines (or on a coarse timeout so lazy lease expiry still
// advances while a follower is attached).
func (c *Coordinator) waitEvents(n int) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		timeout := time.AfterFunc(time.Second, func() { c.cond.Broadcast() })
		defer timeout.Stop()
		c.mu.Lock()
		defer c.mu.Unlock()
		c.cond.Wait()
	}()
	return ch
}

// SubmitResponse answers a campaign submission.
type SubmitResponse struct {
	ID        string `json:"id"`
	Cells     int    `json:"cells"`
	StoreHits int    `json:"store_hits"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
