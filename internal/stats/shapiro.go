package stats

import (
	"math"
	"sort"
)

// ShapiroWilk tests the null hypothesis that xs was drawn from a normal
// distribution, using Royston's 1995 algorithm (AS R94) — the test behind
// Table 1 and the normality screening of §6. Valid for 3 <= n <= 5000.
//
// The returned TestResult carries the W statistic and the p-value; a p-value
// below alpha rejects normality.
func ShapiroWilk(xs []float64) TestResult {
	n := len(xs)
	if n < 3 {
		return TestResult{P: math.NaN()}
	}
	x := append([]float64(nil), xs...)
	sort.Float64s(x)
	if x[0] == x[n-1] {
		return TestResult{P: math.NaN()} // zero range
	}
	fn := float64(n)

	// Expected normal order statistics (Blom approximation).
	m := make([]float64, n)
	ssumm2 := 0.0
	for i := 0; i < n; i++ {
		m[i] = NormalQuantile((float64(i+1) - 0.375) / (fn + 0.25))
		ssumm2 += m[i] * m[i]
	}

	// Weights: polynomial-corrected end weights (Royston), interior scaled.
	a := make([]float64, n)
	rsn := 1 / math.Sqrt(fn)
	c := make([]float64, n)
	norm := math.Sqrt(ssumm2)
	for i := range m {
		c[i] = m[i] / norm
	}
	if n > 5 {
		an := -2.706056*pow5(rsn) + 4.434685*pow4(rsn) - 2.071190*pow3(rsn) -
			0.147981*rsn*rsn + 0.221157*rsn + c[n-1]
		an1 := -3.582633*pow5(rsn) + 5.682633*pow4(rsn) - 1.752461*pow3(rsn) -
			0.293762*rsn*rsn + 0.042981*rsn + c[n-2]
		phi := (ssumm2 - 2*m[n-1]*m[n-1] - 2*m[n-2]*m[n-2]) /
			(1 - 2*an*an - 2*an1*an1)
		a[n-1], a[n-2] = an, an1
		a[0], a[1] = -an, -an1
		sp := math.Sqrt(phi)
		for i := 2; i < n-2; i++ {
			a[i] = m[i] / sp
		}
	} else {
		an := -2.706056*pow5(rsn) + 4.434685*pow4(rsn) - 2.071190*pow3(rsn) -
			0.147981*rsn*rsn + 0.221157*rsn + c[n-1]
		phi := (ssumm2 - 2*m[n-1]*m[n-1]) / (1 - 2*an*an)
		a[n-1] = an
		a[0] = -an
		sp := math.Sqrt(phi)
		for i := 1; i < n-1; i++ {
			a[i] = m[i] / sp
		}
	}

	// W statistic.
	mean := Mean(x)
	num, den := 0.0, 0.0
	for i := range x {
		num += a[i] * x[i]
		den += (x[i] - mean) * (x[i] - mean)
	}
	w := num * num / den
	if w > 1 {
		w = 1
	}

	// P-value via Royston's normalizing transformations.
	var z float64
	switch {
	case n == 3:
		// Exact: p = (6/pi) * (asin(sqrt(W)) - asin(sqrt(0.75))).
		p := 6 / math.Pi * (math.Asin(math.Sqrt(w)) - math.Asin(math.Sqrt(0.75)))
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		return TestResult{Statistic: w, P: p, DF: fn}
	case n <= 11:
		gamma := -2.273 + 0.459*fn
		wt := -math.Log(gamma - math.Log(1-w))
		mu := 0.5440 - 0.39978*fn + 0.025054*fn*fn - 0.0006714*fn*fn*fn
		sigma := math.Exp(1.3822 - 0.77857*fn + 0.062767*fn*fn - 0.0020322*fn*fn*fn)
		z = (wt - mu) / sigma
	default:
		u := math.Log(fn)
		wt := math.Log(1 - w)
		mu := -1.5861 - 0.31082*u - 0.083751*u*u + 0.0038915*u*u*u
		sigma := math.Exp(-0.4803 - 0.082676*u + 0.0030302*u*u)
		z = (wt - mu) / sigma
	}
	p := 1 - NormalCDF(z)
	return TestResult{Statistic: w, P: p, DF: fn}
}

func pow3(x float64) float64 { return x * x * x }
func pow4(x float64) float64 { return x * x * x * x }
func pow5(x float64) float64 { return x * x * x * x * x }
