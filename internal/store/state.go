package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// StateArea is a named directory of small JSON documents beside the block
// tree — the coordinator's durable campaign state lives in the "campaigns"
// area. Documents are written through the store's atomic temp+rename layer,
// so a crash mid-save never leaves a torn document: readers see the old
// version or the new one, nothing in between. Names are restricted to a
// filename-safe alphabet because they become file names verbatim.
type StateArea struct {
	dir string
	s   *Store
}

// StateArea returns (creating if needed) the named state area. The area
// lives at <store dir>/<name>/, beside blocks/.
func (s *Store) StateArea(name string) (*StateArea, error) {
	if err := validStateName(name); err != nil {
		return nil, err
	}
	dir := filepath.Join(s.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: state area %s: %w", name, err)
	}
	return &StateArea{dir: dir, s: s}, nil
}

// validStateName guards area and document names: they become path
// components, so only a conservative alphabet is allowed.
func validStateName(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty state name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("store: state name %q: %q not allowed", name, r)
		}
	}
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("store: state name %q may not start with a dot", name)
	}
	return nil
}

func (a *StateArea) path(name string) (string, error) {
	if err := validStateName(name); err != nil {
		return "", err
	}
	return filepath.Join(a.dir, name+".json"), nil
}

// Save writes one document atomically (temp + rename).
func (a *StateArea) Save(name string, data []byte) error {
	path, err := a.path(name)
	if err != nil {
		return err
	}
	if err := atomicWrite(path, data); err != nil {
		return fmt.Errorf("store: saving state %s: %w", name, err)
	}
	return nil
}

// Load reads one document; a missing document is (nil, nil), not an error.
func (a *StateArea) Load(name string) ([]byte, error) {
	path, err := a.path(name)
	if err != nil {
		return nil, err
	}
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: loading state %s: %w", name, err)
	}
	return buf, nil
}

// List returns the area's document names, sorted, so restart-time loads
// are order-deterministic.
func (a *StateArea) List() ([]string, error) {
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing state area: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names, nil
}

// AppendLog appends one line to the named append-only log, stored as
// <name>.jsonl beside the area's documents (the .jsonl suffix keeps logs
// out of List, which only returns .json documents). Unlike Save, appends
// are not atomic — a crash can tear the final line — so LoadLog drops an
// unterminated tail. The coordinator's durable per-campaign event
// journal lives here: it is what lets `szfarm timeline` reconstruct a
// campaign across restarts, failovers, and event-ring wraps.
func (a *StateArea) AppendLog(name string, line []byte) error {
	if err := validStateName(name); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(a.dir, name+".jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: appending log %s: %w", name, err)
	}
	if len(line) == 0 || line[len(line)-1] != '\n' {
		line = append(append([]byte(nil), line...), '\n')
	}
	_, werr := f.Write(line)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("store: appending log %s: %w", name, werr)
	}
	if cerr != nil {
		return fmt.Errorf("store: appending log %s: %w", name, cerr)
	}
	return nil
}

// LoadLog reads the named append-only log; a missing log is (nil, nil).
// A torn final line — the crash window AppendLog documents — is dropped,
// so callers always see whole lines.
func (a *StateArea) LoadLog(name string) ([]byte, error) {
	if err := validStateName(name); err != nil {
		return nil, err
	}
	buf, err := os.ReadFile(filepath.Join(a.dir, name+".jsonl"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: loading log %s: %w", name, err)
	}
	if i := bytes.LastIndexByte(buf, '\n'); i < 0 {
		return nil, nil
	} else if i != len(buf)-1 {
		buf = buf[:i+1]
	}
	return buf, nil
}

// Delete removes one document; deleting a missing document is a no-op.
func (a *StateArea) Delete(name string) error {
	path, err := a.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: deleting state %s: %w", name, err)
	}
	return nil
}
