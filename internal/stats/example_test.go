package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleWelchT shows the paper's §2.4 workflow: decide whether a change
// shifted performance, given samples from both versions.
func ExampleWelchT() {
	before := []float64{10.1, 10.3, 9.9, 10.2, 10.0, 10.1, 10.2, 9.8, 10.0, 10.1}
	after := []float64{9.6, 9.8, 9.5, 9.7, 9.6, 9.5, 9.8, 9.6, 9.7, 9.5}
	res := stats.WelchT(before, after)
	fmt.Printf("significant at 95%%: %v\n", res.Significant(0.05))
	// Output:
	// significant at 95%: true
}

// ExampleShapiroWilk screens samples for normality before choosing a
// parametric test, as §6 prescribes.
func ExampleShapiroWilk() {
	// A clearly skewed sample: mostly small values with a heavy tail.
	skewed := []float64{1, 1.1, 0.9, 1.2, 1, 1.1, 0.95, 1.05, 1, 9, 8.5, 1.1,
		0.9, 1, 1.15, 0.85, 1.02, 0.97, 1.03, 7.9}
	res := stats.ShapiroWilk(skewed)
	fmt.Printf("normal: %v\n", !res.Significant(0.05))
	// Output:
	// normal: false
}

// ExampleRepeatedMeasuresANOVA evaluates a treatment across benchmarks, each
// serving as its own control (§6.1).
func ExampleRepeatedMeasuresANOVA() {
	// Three benchmarks, two treatments; the treatment consistently helps.
	data := [][]float64{
		{12.0, 11.5}, // benchmark A: before, after
		{55.0, 54.4},
		{8.0, 7.55},
	}
	res := stats.RepeatedMeasuresANOVA(data)
	fmt.Printf("df = (%g, %g), significant: %v\n",
		res.DFTreatment, res.DFError, res.Significant(0.05))
	// Output:
	// df = (1, 2), significant: true
}

// ExampleNormalQuantile computes the critical values used throughout the
// paper's hypothesis tests.
func ExampleNormalQuantile() {
	fmt.Printf("z(0.975) = %.2f\n", stats.NormalQuantile(0.975))
	// Output:
	// z(0.975) = 1.96
}
