package stats

import (
	"math"
	"sort"
)

// ksPValue evaluates the asymptotic Kolmogorov distribution complement
// Q(λ) = 2 Σ (-1)^{k-1} e^{-2k²λ²}, the p-value for the scaled KS statistic.
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := 2 * math.Pow(-1, float64(k-1)) * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// KolmogorovSmirnovNormal tests xs against a normal distribution with the
// sample's own mean and standard deviation (a Lilliefors-style composite
// test; the asymptotic p-value is conservative for estimated parameters, so
// a rejection is trustworthy while a borderline acceptance is optimistic —
// Shapiro-Wilk remains the primary normality screen, as in the paper).
func KolmogorovSmirnovNormal(xs []float64) TestResult {
	n := len(xs)
	if n < 4 {
		return TestResult{P: math.NaN()}
	}
	m, sd := Mean(xs), StdDev(xs)
	if sd == 0 {
		return TestResult{P: math.NaN()}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	d := 0.0
	for i, x := range s {
		f := NormalCDF((x - m) / sd)
		upper := float64(i+1)/float64(n) - f
		lower := f - float64(i)/float64(n)
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	fn := float64(n)
	lambda := (math.Sqrt(fn) + 0.12 + 0.11/math.Sqrt(fn)) * d
	return TestResult{Statistic: d, P: ksPValue(lambda), DF: fn}
}

// KolmogorovSmirnov2 is the two-sample KS test: the null hypothesis is that
// xs and ys come from the same continuous distribution.
func KolmogorovSmirnov2(xs, ys []float64) TestResult {
	nx, ny := len(xs), len(ys)
	if nx < 4 || ny < 4 {
		return TestResult{P: math.NaN()}
	}
	sx := append([]float64(nil), xs...)
	sy := append([]float64(nil), ys...)
	sort.Float64s(sx)
	sort.Float64s(sy)
	d := 0.0
	i, j := 0, 0
	for i < nx && j < ny {
		if sx[i] <= sy[j] {
			i++
		} else {
			j++
		}
		diff := math.Abs(float64(i)/float64(nx) - float64(j)/float64(ny))
		if diff > d {
			d = diff
		}
	}
	ne := float64(nx) * float64(ny) / float64(nx+ny)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return TestResult{Statistic: d, P: ksPValue(lambda), DF: float64(nx + ny)}
}
