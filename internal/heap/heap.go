// Package heap implements the simulated heap allocators from §3.2 of the
// paper: a power-of-two size-segregated base allocator, a TLSF (two-level
// segregated fits) base allocator, a DieHard-style randomized allocator, and
// STABILIZER's shuffling layer that wraps a base allocator to randomize the
// addresses it returns.
//
// Allocators hand out simulated addresses obtained from a mem.AddressSpace;
// object contents live in interpreter structures, so allocators only manage
// address arithmetic and free lists — exactly the part whose policy decides
// memory layout.
//
// Misuse by the program under measurement (double free, free of an address
// the allocator never issued) and resource exhaustion are reported as typed
// *trap.TrapError values, never panics, so the interpreter can surface them
// as structured program faults and the semantic-invariance oracle can assert
// that a trapping program traps identically under every layout.
package heap

import (
	"repro/internal/mem"
	"repro/internal/trap"
)

// Allocator is a simulated malloc/free pair.
type Allocator interface {
	// Alloc returns the simulated address of a new object of the given
	// size in bytes. Addresses are at least 16-byte aligned. Exhaustion is
	// reported as an out-of-memory *trap.TrapError.
	Alloc(size uint64) (mem.Addr, error)
	// Free releases an address previously returned by Alloc. Freeing an
	// already-freed or never-issued address returns a double-free or
	// unknown-free *trap.TrapError respectively.
	Free(addr mem.Addr) error
	// Name identifies the allocator in experiment output.
	Name() string
}

// MinAlign is the minimum alignment of every allocation.
const MinAlign = 16

// sizeClass returns the power-of-two size class index for a request:
// class i holds objects of 2^(i+4) bytes (16, 32, 64, ...).
func sizeClass(size uint64) int {
	if size == 0 {
		size = 1
	}
	c := 0
	s := uint64(MinAlign)
	for s < size {
		s <<= 1
		c++
	}
	return c
}

// classSize returns the byte size of class c.
func classSize(c int) uint64 { return MinAlign << c }

const (
	numClasses = 18 // 16 B .. 2 MiB
	chunkSize  = 1 << 16
)

// freeTrap classifies a free of an address not currently live: one the
// allocator issued and already released is a double free; anything else was
// never handed out at all. Every allocator records released addresses in a
// freed set (cleared when an address is re-issued) so the classification is
// uniform across policies, including TLSF coalescing and shuffle swapping.
func freeTrap(freed map[mem.Addr]bool, addr mem.Addr, name string) error {
	if freed[addr] {
		return trap.New(trap.DoubleFree, "heap: %s double free of %#x", name, uint64(addr))
	}
	return trap.New(trap.UnknownFree, "heap: %s free of unknown address %#x", name, uint64(addr))
}

// Segregated is the power-of-two, size-segregated base allocator the paper
// uses by default. Freed objects go to a per-class LIFO free list and are
// preferentially reused — the conventional locality-friendly policy that
// makes heap layout deterministic and history-dependent.
type Segregated struct {
	as    *mem.AddressSpace
	flag  mem.MapFlag
	free  [numClasses][]mem.Addr
	curs  [numClasses]mem.Addr // bump cursor within the current chunk
	lim   [numClasses]mem.Addr
	sizes map[mem.Addr]int // live object -> class
	large map[mem.Addr]bool
	freed map[mem.Addr]bool // released and not re-issued
}

// NewSegregated returns a segregated allocator drawing from as.
func NewSegregated(as *mem.AddressSpace) *Segregated {
	return NewSegregatedAt(as, mem.MapAnywhere)
}

// NewSegregatedAt returns a segregated allocator whose chunks are mapped
// with the given placement flag. The STABILIZER code heap uses MapLow32 so
// relocated functions stay reachable by 32-bit jumps (§3.5).
func NewSegregatedAt(as *mem.AddressSpace, flag mem.MapFlag) *Segregated {
	return &Segregated{
		as:    as,
		flag:  flag,
		sizes: make(map[mem.Addr]int),
		large: make(map[mem.Addr]bool),
		freed: make(map[mem.Addr]bool),
	}
}

// Name implements Allocator.
func (s *Segregated) Name() string { return "segregated" }

// Alloc implements Allocator. Requests beyond the largest class are mapped
// directly (rounded to pages), like real malloc's mmap path.
func (s *Segregated) Alloc(size uint64) (mem.Addr, error) {
	c := sizeClass(size)
	if c >= numClasses {
		r, err := s.as.Map(size, s.flag)
		if err != nil {
			return 0, err
		}
		s.large[r.Base] = true
		delete(s.freed, r.Base)
		return r.Base, nil
	}
	if n := len(s.free[c]); n > 0 {
		a := s.free[c][n-1]
		s.free[c] = s.free[c][:n-1]
		s.sizes[a] = c
		delete(s.freed, a)
		return a, nil
	}
	if s.curs[c] == s.lim[c] {
		r, err := s.as.Map(chunkSize, s.flag)
		if err != nil {
			return 0, err
		}
		s.curs[c], s.lim[c] = r.Base, r.End()
	}
	a := s.curs[c]
	s.curs[c] += mem.Addr(classSize(c))
	s.sizes[a] = c
	return a, nil
}

// Free implements Allocator.
func (s *Segregated) Free(addr mem.Addr) error {
	if s.large[addr] {
		delete(s.large, addr)
		s.freed[addr] = true
		return nil // large mappings are not recycled
	}
	c, ok := s.sizes[addr]
	if !ok {
		return freeTrap(s.freed, addr, "segregated")
	}
	delete(s.sizes, addr)
	s.free[c] = append(s.free[c], addr)
	s.freed[addr] = true
	return nil
}

// SizeOf returns the usable size of a live object (its class size), used by
// wrapping layers.
func (s *Segregated) SizeOf(addr mem.Addr) (uint64, bool) {
	if c, ok := s.sizes[addr]; ok {
		return classSize(c), true
	}
	if s.large[addr] {
		return 0, true
	}
	return 0, false
}
