package experiment

import (
	"fmt"
	"math"
	"strings"
)

// barChart renders labeled horizontal bars, the terminal rendition of the
// paper's bar figures. Negative values extend left of the axis.
func barChart(title string, labels []string, values []float64, format func(float64) string, width int) string {
	if width <= 0 {
		width = 48
	}
	maxAbs := 0.0
	maxLabel := 0
	for i, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteString("\n")
	}
	for i, v := range values {
		n := int(math.Round(math.Abs(v) / maxAbs * float64(width)))
		bar := strings.Repeat("#", n)
		if v < 0 {
			bar = strings.Repeat("-", n)
		}
		fmt.Fprintf(&sb, "%-*s |%-*s %s\n", maxLabel, labels[i], width, bar, format(v))
	}
	return sb.String()
}

// Chart renders Figure 6 as a bar chart of the full-randomization overhead.
func (r *OverheadResult) Chart() string {
	rows := append([]OverheadRow(nil), r.Rows...)
	last := len(r.Configs) - 1
	// Sort ascending, as the paper's figure is.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].Overhead[last] < rows[j-1].Overhead[last]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	labels := make([]string, len(rows))
	values := make([]float64, len(rows))
	for i, row := range rows {
		labels[i] = row.Benchmark
		values[i] = row.Overhead[last]
	}
	return barChart(
		fmt.Sprintf("Figure 6 (bars): %s overhead vs randomized link order", r.Configs[last]),
		labels, values,
		func(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }, 48)
}

// Chart renders Figure 7 as two bar groups (speedup minus 1, so bars grow
// from the 1.0 line as in the paper).
func (r *SpeedupResult) Chart() string {
	labels := make([]string, len(r.Rows))
	o2 := make([]float64, len(r.Rows))
	o3 := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = row.Benchmark
		o2[i] = row.SpeedupO2 - 1
		o3[i] = row.SpeedupO3 - 1
	}
	pct := func(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }
	return barChart("Figure 7 (bars): -O2 over -O1 (speedup-1)", labels, o2, pct, 48) +
		"\n" +
		barChart("Figure 7 (bars): -O3 over -O2 (speedup-1)", labels, o3, pct, 48)
}

// Chart renders the link-order spread as bars of worst/best degradation.
func (r *LinkOrderResult) Chart() string {
	rows := append([]LinkOrderRow(nil), r.Rows...)
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].MaxDegradation > rows[j-1].MaxDegradation; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	labels := make([]string, len(rows))
	values := make([]float64, len(rows))
	for i, row := range rows {
		labels[i] = row.Benchmark
		values[i] = row.MaxDegradation
	}
	return barChart("Link-order bias (bars): worst/best - 1 across random orders",
		labels, values,
		func(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }, 48)
}
