// Package oracle is the semantic-invariance guard: it executes one program
// across a matrix of randomization seeds, optimization levels, and heap
// allocators and asserts that every cell exhibits the same architectural
// behaviour.
//
// The guarantee STABILIZER's statistics rest on is that randomization changes
// *where* code and data live, never *what* the program computes (§2, §3). The
// oracle checks that guarantee differentially, using the interpreter's
// layout-invariant digests (interp.Recorder):
//
//   - Within a fixed optimization level, every (seed, allocator) cell must
//     produce an identical Exec digest — the same stores, allocations, frees,
//     calls, and throws at the same retired-instruction indices.
//   - Across optimization levels, the Arch digest — sinks, exit status, trap
//     kind — must be identical: passes may add or remove instructions but
//     never change output.
//
// A program fault is a valid outcome as long as it is *equivalent*: the same
// trap kind folded into every cell's digest (and, within a level, at the same
// retired step). A run that traps under one allocator but exits cleanly under
// another is exactly the layout-dependent bug the oracle exists to catch.
//
// On mismatch the two diverging cells are re-executed with tracing recorders
// and the report names the first diverging retired instruction with a window
// of surrounding events from both runs.
package oracle

import (
	"errors"
	"fmt"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/trap"
)

// AllocatorNames lists the heap-allocator policies the oracle sweeps by
// default: the segregated-fit base, TLSF, DieHard, and the shuffling layer
// over segregated fit.
var AllocatorNames = []string{"segregated", "tlsf", "diehard", "shuffle"}

// seedSalt decorrelates oracle cell RNG streams from the experiment
// engine's (which salts with 0x5ab1112e).
const seedSalt = 0x6f7261636c65 // "oracle"

// Options configures a verification matrix.
type Options struct {
	// Seeds are the randomization seeds to sweep (default 1, 2, 3).
	Seeds []uint64
	// Levels are the optimization levels to sweep (default O0..O3).
	Levels []compiler.OptLevel
	// Allocators are the heap policies to sweep, by name (default
	// AllocatorNames).
	Allocators []string
	// Engines are the execution engines to sweep (default both: compiled
	// and walk). The engine is a within-level axis like seed and allocator:
	// every cell of a level must produce the same Exec digest regardless of
	// which engine ran it, which pins the compiled engine to the tree-walk
	// reference byte for byte.
	Engines []interp.Engine
	// MaxSteps bounds each cell's retired instructions (default 200e6).
	// Exhausting it is an infrastructure error, not a divergence.
	MaxSteps uint64
	// Interval is the re-randomization period in simulated cycles (default
	// 20 000 — much shorter than the experiment default so even small
	// programs cross several re-randomizations).
	Interval uint64
	// Window is how many events of context surround the first diverging
	// event in a report (default 8).
	Window int
	// TraceCap bounds the events retained during a divergence re-run
	// (default 65536).
	TraceCap int

	// wrapAlloc, when set by tests, wraps each cell's heap allocator. It is
	// the hook the oracle's own tests use to plant layout-dependent bugs.
	wrapAlloc func(heap.Allocator) heap.Allocator
}

func (o *Options) defaults() {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	if len(o.Levels) == 0 {
		o.Levels = compiler.Levels()
	}
	if len(o.Allocators) == 0 {
		o.Allocators = AllocatorNames
	}
	if len(o.Engines) == 0 {
		o.Engines = interp.Engines()
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 200_000_000
	}
	if o.Interval == 0 {
		o.Interval = 20_000
	}
	if o.Window == 0 {
		o.Window = 8
	}
	if o.TraceCap == 0 {
		o.TraceCap = 1 << 16
	}
}

// Cell identifies one point of the verification matrix.
type Cell struct {
	Program   string
	Seed      uint64
	Level     compiler.OptLevel
	Allocator string
	Engine    interp.Engine
}

func (c Cell) String() string {
	return fmt.Sprintf("%s seed=%d %s alloc=%s engine=%s", c.Program, c.Seed, c.Level, c.Allocator, c.Engine)
}

// Result summarizes a passed verification.
type Result struct {
	Program string
	// Cells is the number of matrix cells executed.
	Cells int
	// Arch is the program's architectural digest (identical in every cell,
	// or verification would have failed).
	Arch uint64
	// Exec maps each optimization level to its execution digest.
	Exec map[compiler.OptLevel]uint64
}

// Verify compiles src at every level in opts (with the STABILIZER
// transformations applied, since cells run under the full runtime) and
// differentially executes the matrix. It returns a *Divergence error if any
// two cells disagree, or a plain error for infrastructure failures (compile
// errors, step-budget exhaustion, stack overflow).
func Verify(name string, src *ir.Module, opts Options) (*Result, error) {
	opts.defaults()
	mods := make(map[compiler.OptLevel]*ir.Module, len(opts.Levels))
	for _, lv := range opts.Levels {
		m, err := compiler.Compile(src, compiler.Options{Level: lv, Stabilize: true})
		if err != nil {
			return nil, fmt.Errorf("oracle: compiling %s at %s: %w", name, lv, err)
		}
		mods[lv] = m
	}
	return VerifyCompiled(name, mods, opts)
}

// VerifyCompiled runs the matrix over pre-compiled modules (one per level,
// compiled with Stabilize set). Callers with their own compile cache — the
// experiment engine — use this entry point.
func VerifyCompiled(name string, mods map[compiler.OptLevel]*ir.Module, opts Options) (*Result, error) {
	opts.defaults()
	v := &verifier{name: name, mods: mods, opts: opts}
	res := &Result{Program: name, Exec: make(map[compiler.OptLevel]uint64, len(opts.Levels))}

	// Layout axes: within each level, every (seed, allocator) cell must
	// match the level's first cell instruction-for-instruction.
	type levelRef struct {
		cell   Cell
		digest interp.Digest
	}
	var refs []levelRef
	for _, lv := range opts.Levels {
		if mods[lv] == nil {
			return nil, fmt.Errorf("oracle: %s: no module compiled for %s", name, lv)
		}
		var ref *levelRef
		for _, seed := range opts.Seeds {
			for _, al := range opts.Allocators {
				for _, eng := range opts.Engines {
					cell := Cell{Program: name, Seed: seed, Level: lv, Allocator: al, Engine: eng}
					rec := interp.NewRecorder()
					if err := v.runCell(cell, rec); err != nil {
						return nil, fmt.Errorf("oracle: %v: %w", cell, err)
					}
					d := rec.Digest()
					res.Cells++
					if ref == nil {
						ref = &levelRef{cell: cell, digest: d}
						continue
					}
					if d.Exec != ref.digest.Exec {
						// Attribute the divergence to the engine axis only
						// when the engines alone differ; otherwise layout
						// (seed/allocator) is the moving part.
						axis := AxisLayout
						if ref.cell.Seed == cell.Seed && ref.cell.Allocator == cell.Allocator {
							axis = AxisEngine
						}
						div, err := v.localize(ref.cell, cell, ref.digest, d, axis)
						if err != nil {
							return nil, err
						}
						return nil, div
					}
				}
			}
		}
		res.Exec[lv] = ref.digest.Exec
		refs = append(refs, *ref)
	}

	// Optimization axis: the architectural digest must agree across levels.
	base := refs[0]
	for _, r := range refs[1:] {
		if r.digest.Arch != base.digest.Arch {
			div, err := v.localize(base.cell, r.cell, base.digest, r.digest, AxisOptimization)
			if err != nil {
				return nil, err
			}
			return nil, div
		}
	}
	res.Arch = base.digest.Arch
	return res, nil
}

type verifier struct {
	name string
	mods map[compiler.OptLevel]*ir.Module
	opts Options
}

// buildAllocator constructs a heap policy by name.
func buildAllocator(name string, as *mem.AddressSpace, r *rng.Marsaglia) (heap.Allocator, error) {
	switch name {
	case "segregated":
		return heap.NewSegregated(as), nil
	case "tlsf":
		return heap.NewTLSF(as, 1<<22), nil
	case "diehard":
		return heap.NewDieHard(as, r), nil
	case "shuffle":
		return heap.NewShuffle(heap.NewSegregated(as), r, heap.DefaultShuffleN), nil
	default:
		return nil, fmt.Errorf("unknown allocator %q (valid: segregated, tlsf, diehard, shuffle)", name)
	}
}

// runCell executes one matrix cell into rec. The construction mirrors the
// experiment engine's run cells — seeded ASLR, random link order, seeded
// physical state, the full STABILIZER runtime with re-randomization — except
// that the heap allocator is swapped per the cell's axis value. A clean run,
// a program trap, and an uncaught exception are all valid outcomes (each is
// folded into the digest); any other failure is an infrastructure error.
func (v *verifier) runCell(cell Cell, rec *interp.Recorder) error {
	mod := v.mods[cell.Level]
	r := rng.NewMarsaglia(cell.Seed ^ seedSalt)
	as := mem.NewAddressSpace()
	as.SetASLR(r.Split().Intn)
	img, err := compiler.Link(mod, compiler.RandomOrder(len(mod.Funcs), r.Split()), as)
	if err != nil {
		return fmt.Errorf("link: %w", err)
	}
	mach := machine.New(machine.DefaultConfig())
	mach.SetPhysicalSeed(r.Next64())
	st, err := core.New(mod, mach, as, img.FuncAddrs, img.GlobalAddrs, core.Options{
		Code: true, Stack: true, Heap: true,
		Rerandomize: true,
		Interval:    v.opts.Interval,
		Seed:        r.Next64(),
	})
	if err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	alloc, err := buildAllocator(cell.Allocator, as, r.Split())
	if err != nil {
		return err
	}
	if v.opts.wrapAlloc != nil {
		alloc = v.opts.wrapAlloc(alloc)
	}
	st.SetHeapAllocator(alloc)

	_, err = interp.Run(mod, interp.Options{
		Machine:  mach,
		Runtime:  st,
		MaxSteps: v.opts.MaxSteps,
		Record:   rec,
		Engine:   cell.Engine,
	})
	return classify(err)
}

// classify separates program outcomes (fine: they are in the digest) from
// infrastructure failures (fatal: the matrix cannot be compared).
func classify(err error) error {
	if err == nil {
		return nil
	}
	if tr := trap.AsTrap(err); tr != nil {
		return nil // program fault, recorded as EvTrap
	}
	var ue *interp.UncaughtError
	if errors.As(err, &ue) {
		return nil // program outcome, recorded as EvExit status 1
	}
	return err
}
