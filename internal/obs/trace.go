package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceEvent is one event in the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). Ts and Dur are in microseconds; the
// profiler's flame charts reinterpret the microsecond axis as simulated
// cycles (1 µs = 1 cycle), which keeps them deterministic.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer records spans on the wall clock for the engine's compile / cell /
// checkpoint / verify phases. Spans get distinct tid lanes so overlapping
// work renders as parallel rows in Perfetto. Wall-clock traces are
// non-golden by nature: load them to see where a campaign spent its time,
// not to diff across runs. A nil *Tracer is inert.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []TraceEvent
	lanes  []bool
}

// NewTracer returns a tracer with its epoch at now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Span opens a span and returns the closure that closes it; defer it.
// args may be nil.
func (t *Tracer) Span(cat, name string, args map[string]any) func() {
	if t == nil {
		return func() {}
	}
	start := time.Since(t.start)
	lane := t.acquireLane()
	return func() {
		dur := time.Since(t.start) - start
		t.mu.Lock()
		t.events = append(t.events, TraceEvent{
			Name: name, Cat: cat, Ph: "X",
			Ts:  float64(start.Microseconds()),
			Dur: float64(dur.Microseconds()),
			Pid: 1, Tid: lane, Args: args,
		})
		t.lanes[lane-1] = false
		t.mu.Unlock()
	}
}

// Instant records a zero-duration instant event.
func (t *Tracer) Instant(cat, name string, args map[string]any) {
	if t == nil {
		return
	}
	ts := float64(time.Since(t.start).Microseconds())
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "i",
		Ts: ts, Pid: 1, Tid: 1, Args: args,
	})
	t.mu.Unlock()
}

// acquireLane reserves the lowest free tid lane.
func (t *Tracer) acquireLane() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, busy := range t.lanes {
		if !busy {
			t.lanes[i] = true
			return int64(i + 1)
		}
	}
	t.lanes = append(t.lanes, true)
	return int64(len(t.lanes))
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteTraceJSON writes events in the Chrome trace-event JSON object form
// ({"traceEvents": [...]}), one event per line for diffability. The byte
// output is a pure function of the event list.
func WriteTraceJSON(w io.Writer, events []TraceEvent) error {
	var buf bytes.Buffer
	buf.WriteString("{\"traceEvents\": [\n")
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("obs: encode trace event %d: %w", i, err)
		}
		buf.WriteString("  ")
		buf.Write(b)
		if i < len(events)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// validPhases is the set of trace-event phase codes this repo emits or
// accepts: duration (B/E), complete (X), instant (i/I), counter (C), and
// metadata (M).
var validPhases = map[string]bool{
	"B": true, "E": true, "X": true, "i": true, "I": true, "C": true, "M": true,
}

// ValidateTrace checks data against the Chrome trace-event format: either
// a JSON array of events or an object with a traceEvents array; every
// event must carry a known ph, numeric ts/pid/tid (metadata events are
// exempt from ts), a name where the phase requires one, a non-negative dur
// on complete events, and B/E events must nest and balance per (pid, tid)
// track. Returns nil when the trace is loadable.
func ValidateTrace(data []byte) error {
	var events []map[string]json.RawMessage
	if err := json.Unmarshal(data, &events); err != nil {
		var obj struct {
			TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
		}
		if err2 := json.Unmarshal(data, &obj); err2 != nil {
			return fmt.Errorf("obs: trace is neither a JSON event array nor a traceEvents object: %v", err2)
		}
		if obj.TraceEvents == nil {
			return fmt.Errorf("obs: trace object has no traceEvents array")
		}
		events = obj.TraceEvents
	}

	type track struct{ pid, tid int64 }
	open := map[track][]string{}
	for i, ev := range events {
		ph, err := stringField(ev, "ph")
		if err != nil {
			return fmt.Errorf("obs: trace event %d: %v", i, err)
		}
		if !validPhases[ph] {
			return fmt.Errorf("obs: trace event %d: unknown phase %q", i, ph)
		}
		pid, err := intField(ev, "pid")
		if err != nil {
			return fmt.Errorf("obs: trace event %d: %v", i, err)
		}
		tid, err := intField(ev, "tid")
		if err != nil {
			return fmt.Errorf("obs: trace event %d: %v", i, err)
		}
		if ph != "M" {
			if _, err := numField(ev, "ts"); err != nil {
				return fmt.Errorf("obs: trace event %d: %v", i, err)
			}
		}
		name, _ := stringField(ev, "name")
		switch ph {
		case "B", "X", "i", "I", "C", "M":
			if name == "" {
				return fmt.Errorf("obs: trace event %d (ph=%s): missing name", i, ph)
			}
		}
		if ph == "X" {
			if raw, ok := ev["dur"]; ok {
				var dur float64
				if err := json.Unmarshal(raw, &dur); err != nil || dur < 0 {
					return fmt.Errorf("obs: trace event %d: complete event has invalid dur %s", i, raw)
				}
			}
		}
		tr := track{pid, tid}
		switch ph {
		case "B":
			open[tr] = append(open[tr], name)
		case "E":
			stack := open[tr]
			if len(stack) == 0 {
				return fmt.Errorf("obs: trace event %d: E with no open B on pid=%d tid=%d", i, pid, tid)
			}
			if name != "" && stack[len(stack)-1] != name {
				return fmt.Errorf("obs: trace event %d: E %q closes B %q on pid=%d tid=%d (mismatched nesting)",
					i, name, stack[len(stack)-1], pid, tid)
			}
			open[tr] = stack[:len(stack)-1]
		}
	}
	for tr, stack := range open {
		if len(stack) > 0 {
			return fmt.Errorf("obs: trace leaves %d unclosed B event(s) on pid=%d tid=%d (innermost %q)",
				len(stack), tr.pid, tr.tid, stack[len(stack)-1])
		}
	}
	return nil
}

func stringField(ev map[string]json.RawMessage, key string) (string, error) {
	raw, ok := ev[key]
	if !ok {
		return "", fmt.Errorf("missing %s", key)
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return "", fmt.Errorf("%s is not a string: %s", key, raw)
	}
	return s, nil
}

func numField(ev map[string]json.RawMessage, key string) (float64, error) {
	raw, ok := ev[key]
	if !ok {
		return 0, fmt.Errorf("missing %s", key)
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, fmt.Errorf("%s is not a number: %s", key, raw)
	}
	return v, nil
}

func intField(ev map[string]json.RawMessage, key string) (int64, error) {
	v, err := numField(ev, key)
	if err != nil {
		return 0, err
	}
	if v != float64(int64(v)) {
		return 0, fmt.Errorf("%s is not an integer: %v", key, v)
	}
	return int64(v), nil
}
