package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// ErrStopped is returned by sweeps that stopped early because a drain was
// requested (first SIGINT/SIGTERM, or a test-driven stop). Cells finished
// before the drain are flushed to the checkpoint, so a rerun with -resume
// picks up where the sweep left off. Pool.ForEach treats it as "stop
// dispatching" rather than "cancel everything".
var ErrStopped = errors.New("experiment: sweep stopped early (drained); rerun with -resume to continue")

// drainFlag is the raisable stop request carried through a context.
type drainFlag struct{ raised atomic.Bool }

type drainKeyType struct{}

var drainKey drainKeyType

// WithDrain returns a context carrying a drain flag plus the function
// that raises it. Cells that start after the flag is raised fail fast
// with ErrStopped; cells already in flight finish and flush normally.
func WithDrain(ctx context.Context) (context.Context, func()) {
	f := &drainFlag{}
	return context.WithValue(ctx, drainKey, f), func() { f.raised.Store(true) }
}

// Draining reports whether ctx carries a raised drain flag.
func Draining(ctx context.Context) bool {
	f, ok := ctx.Value(drainKey).(*drainFlag)
	return ok && f.raised.Load()
}

// NotifyShutdown installs the shutdown policy for long sweeps: the first
// SIGINT/SIGTERM raises the drain flag — in-flight cells finish, their
// results are checkpointed, and the sweep returns ErrStopped — while a
// second signal cancels the context outright. Progress notes go to w
// (nil silences them). The returned stop function releases the signal
// handler and cancels the context; defer it.
func NotifyShutdown(parent context.Context, w io.Writer) (context.Context, context.CancelFunc) {
	ctx, drain := WithDrain(parent)
	ctx, cancel := context.WithCancel(ctx)
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer signal.Stop(sig)
		select {
		case <-ctx.Done():
			return
		case s := <-sig:
			if w != nil {
				fmt.Fprintf(w, "\n%v: draining — in-flight cells will finish and checkpoint (signal again to abort)\n", s)
			}
			drain()
		}
		select {
		case <-ctx.Done():
		case s := <-sig:
			if w != nil {
				fmt.Fprintf(w, "\n%v: aborting now\n", s)
			}
			cancel()
		}
	}()
	return ctx, func() {
		cancel()
		signal.Stop(sig)
	}
}
