package obs

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.cells.completed").Add(7)
	r.Counter("campaign.leases.granted").NonGolden().Add(9)
	r.Gauge(`campaign.tenant.pending{tenant="ci"}`).Set(3)
	r.Gauge(`campaign.tenant.pending{tenant="default"}`).Set(5)
	h := r.Histogram("campaign.queue.wait_seconds").NonGolden()
	h.Observe(0.25)
	h.Observe(0.3)
	h.Observe(100)
	h.Observe(0) // underflow bucket

	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot(true)); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	series, err := ParseProm(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}

	if series["sz_campaign_cells_completed"] != 7 {
		t.Fatalf("counter = %v, want 7\n%s", series["sz_campaign_cells_completed"], text)
	}
	if series["sz_campaign_leases_granted"] != 9 {
		t.Fatalf("non-golden counter missing from exposition\n%s", text)
	}
	if series[`sz_campaign_tenant_pending{tenant="ci"}`] != 3 ||
		series[`sz_campaign_tenant_pending{tenant="default"}`] != 5 {
		t.Fatalf("labeled gauges wrong\n%s", text)
	}
	if series["sz_campaign_queue_wait_seconds_count"] != 4 {
		t.Fatalf("histogram count = %v, want 4\n%s", series["sz_campaign_queue_wait_seconds_count"], text)
	}
	if series[`sz_campaign_queue_wait_seconds_bucket{le="+Inf"}`] != 4 {
		t.Fatalf("+Inf bucket must equal count\n%s", text)
	}
	// One TYPE line per family, and the tenant gauge family appears once.
	if n := strings.Count(text, "# TYPE sz_campaign_tenant_pending gauge"); n != 1 {
		t.Fatalf("tenant gauge TYPE lines = %d, want 1\n%s", n, text)
	}

	// Buckets are cumulative: each successive bound's value never decreases.
	var last float64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "sz_campaign_queue_wait_seconds_bucket") {
			continue
		}
		v := series[line[:strings.LastIndexByte(line, ' ')]]
		if v < last {
			t.Fatalf("bucket series not cumulative at %q\n%s", line, text)
		}
		last = v
	}

	// Deterministic rendering: same snapshot, same bytes.
	var buf2 bytes.Buffer
	if err := WriteProm(&buf2, r.Snapshot(true)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two renders of the same snapshot differ")
	}
}

func TestPromHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("worker.cells.completed").NonGolden().Inc()
	srv := httptest.NewServer(r.PromHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series, err := ParseProm(body)
	if err != nil {
		t.Fatal(err)
	}
	if series["sz_worker_cells_completed"] != 1 {
		t.Fatalf("series = %v", series)
	}
}

func TestPromHandlerNilRegistry(t *testing.T) {
	var r *Registry
	rec := httptest.NewRecorder()
	r.PromHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if _, err := ParseProm(rec.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestParsePromRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"sz_ok\n",                  // no value
		"1bad_name 3\n",            // name starts with a digit
		"sz_ok notanumber\n",       // bad value
		"# TYPE sz_ok spaceship\n", // unknown type
		"# BOGUS sz_ok counter\n",  // unknown comment kind
	} {
		if _, err := ParseProm([]byte(bad)); err == nil {
			t.Fatalf("ParseProm accepted %q", bad)
		}
	}
}
