package campaign

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// HAServer makes a coordinator highly available: two (or more) `szfarm
// serve` processes point at the same store, race for its coordination
// lease (store.Coordination), and exactly one — the active — builds a
// Coordinator and serves the farm protocol. The rest are standbys: they
// answer /healthz and /v1/coordinator so clients can probe them, reject
// everything else with 503 + Retry-After, and poll the lease with a
// jittered interval. When the active dies (kill -9, partition) its
// heartbeat expires and a standby promotes: it claims the next fencing
// epoch, replays the campaign journal, and re-probes the store — the exact
// restart path a single coordinator uses — while the deposed process's
// late writes are rejected by its stale epoch.
//
// The roles are symmetric: every process runs the same loop, so a deposed
// active demotes back to standby and may later promote again.
type HAServer struct {
	opts  HAOptions
	coord *store.Coordination

	mu     sync.RWMutex
	role   string
	epoch  uint64
	active *Coordinator
	h      http.Handler
	info   store.LeaseInfo // last observed lease state while standby
}

// HAOptions configures an HAServer.
type HAOptions struct {
	// Coordinator configures the Coordinator built at each promotion.
	// Identity and Fence are set by the HAServer; Store is required.
	Coordinator CoordinatorOptions
	// Identity names this process in the lease, the /v1/coordinator
	// report, and response headers (required; distinct per process).
	Identity string
	// CoordTTL is the coordination-lease TTL: how long after the active's
	// last heartbeat a standby may take over (default 15s). The active
	// renews at a jittered CoordTTL/3.
	CoordTTL time.Duration
	// Poll is the standby's lease-poll interval (default CoordTTL/3),
	// jittered so multiple standbys don't race in lockstep.
	Poll time.Duration
	// Obs receives the election log and counters (all non-golden: election
	// timing is wall-clock).
	Obs *obs.Scope
	// now is the clock, overridable in tests.
	now func() time.Time
}

func (o *HAOptions) defaults() error {
	if o.Coordinator.Store == nil {
		return fmt.Errorf("campaign: HA server needs a result store")
	}
	if o.Identity == "" {
		return fmt.Errorf("campaign: HA server needs a distinct identity")
	}
	if o.CoordTTL <= 0 {
		o.CoordTTL = 15 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = o.CoordTTL / 3
	}
	if o.now == nil {
		o.now = time.Now
	}
	return nil
}

// NewHAServer builds the server in the standby role; Run drives the
// election.
func NewHAServer(opts HAOptions) (*HAServer, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	return &HAServer{
		opts:  opts,
		coord: opts.Coordinator.Store.Coordination(),
		role:  RoleStandby,
	}, nil
}

func (s *HAServer) logger() *obs.Logger {
	if s.opts.Obs != nil {
		return s.opts.Obs.Log
	}
	return nil
}

func (s *HAServer) metrics() *obs.Registry {
	if s.opts.Obs != nil {
		return s.opts.Obs.Metrics
	}
	return nil
}

// Role reports the current role (RoleActive or RoleStandby).
func (s *HAServer) Role() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.role
}

// Coordinator returns the active Coordinator, or nil while standby —
// mainly for tests poking at promoted state.
func (s *HAServer) Coordinator() *Coordinator {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.active
}

// ServeHTTP dispatches by role: the active coordinator's full handler, or
// the standby surface (probe endpoints + 503 for everything else).
func (s *HAServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	role, h, epoch, info := s.role, s.h, s.epoch, s.info
	s.mu.RUnlock()
	if role == RoleActive && h != nil {
		h.ServeHTTP(w, r)
		return
	}
	w.Header().Set(HeaderCoordinator, s.opts.Identity)
	w.Header().Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "role": RoleStandby})
	case r.Method == http.MethodGet && r.URL.Path == "/v1/coordinator":
		ci := CoordinatorInfo{
			Role: RoleStandby, Self: s.opts.Identity,
			Holder: info.Holder, Epoch: info.Epoch,
			LeaseExpiresInS: info.ExpiresIn.Seconds(),
			StoreBlocks:     s.opts.Coordinator.Store.Len(),
		}
		writeJSON(w, http.StatusOK, ci)
	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		// A standby is still a process worth scraping: its ha.* counters
		// (promotions, depositions, renewals) are how an operator sees an
		// election happening. Nil-safe — PromHandler on a nil registry
		// serves an empty exposition.
		var reg *obs.Registry
		if s.opts.Obs != nil {
			reg = s.opts.Obs.Metrics
		}
		reg.PromHandler().ServeHTTP(w, r)
	default:
		// Retryable by design: the client's failover loop reprobes and
		// lands on the active coordinator (or waits out an election).
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.Poll/time.Second)+1))
		httpError(w, http.StatusServiceUnavailable,
			fmt.Errorf("campaign: %s is standby; lease epoch %d held by %s", s.opts.Identity, info.Epoch, info.Holder))
	}
}

// Run drives the election until ctx is cancelled: poll as standby, promote
// on acquisition, renew while active, demote when deposed. On cancellation
// an active server releases the lease so its peer can take over without
// waiting out the TTL.
func (s *HAServer) Run(ctx context.Context) error {
	if s.opts.Obs != nil {
		s.metrics().Counter("ha.promotions").NonGolden()
		s.metrics().Counter("ha.depositions").NonGolden()
	}
	for {
		handle, err := s.standby(ctx)
		if err != nil {
			return err
		}
		if handle == nil {
			return nil // ctx cancelled while standby
		}
		if err := s.promote(ctx, handle); err != nil {
			return err
		}
		if ctx.Err() != nil {
			return nil
		}
		// Deposed: fall through and poll again as standby.
	}
}

// standby polls the coordination lease until it acquires it (returning the
// handle) or ctx ends (returning nil).
func (s *HAServer) standby(ctx context.Context) (*store.LeaseHandle, error) {
	for {
		if ctx.Err() != nil {
			return nil, nil
		}
		handle, info, err := s.coord.TryAcquire(s.opts.Identity, s.opts.CoordTTL, s.opts.now())
		if err != nil {
			// Acquisition failures (including injected lease.acquire
			// faults) are retried on the poll cadence, not fatal: the store
			// may be briefly unwritable.
			s.logger().Warn("lease acquisition failed", obs.F("id", s.opts.Identity), obs.F("err", err.Error()))
		}
		if handle != nil {
			return handle, nil
		}
		s.mu.Lock()
		s.info = info
		s.mu.Unlock()
		if err := sleepCtx(ctx, jitterDur(s.opts.Poll)); err != nil {
			return nil, nil
		}
	}
}

// promote builds the fenced Coordinator (journal replay + store re-probe)
// and renews the lease until deposed or cancelled. Returns nil on
// deposition (the caller demotes and keeps polling) and on cancellation.
func (s *HAServer) promote(ctx context.Context, handle *store.LeaseHandle) error {
	copts := s.opts.Coordinator
	copts.Identity = s.opts.Identity
	copts.Fence = handle
	if copts.LeaseTTL <= 0 {
		// Worker-lease expiry must outlive an election, or every failover
		// also burns an attempt on every inflight cell.
		copts.LeaseTTL = 2 * s.opts.CoordTTL
	}
	active, err := NewCoordinator(copts)
	if err != nil {
		// Promotion failed (corrupt journal area, store error): give the
		// lease back so the peer can try, and surface the error — this
		// process cannot serve.
		_ = handle.Release(s.opts.now())
		return fmt.Errorf("campaign: promoting %s at epoch %d: %w", s.opts.Identity, handle.Epoch(), err)
	}
	s.mu.Lock()
	s.role, s.epoch, s.active, s.h = RoleActive, handle.Epoch(), active, active.Handler()
	s.mu.Unlock()
	s.metrics().Counter("ha.promotions").Inc()
	s.logger().Info("promoted to active coordinator",
		obs.F("id", s.opts.Identity), obs.F("epoch", handle.Epoch()))

	defer func() {
		s.mu.Lock()
		s.role, s.active, s.h = RoleStandby, nil, nil
		s.mu.Unlock()
	}()

	lastRenewed := s.opts.now()
	for {
		if err := sleepCtx(ctx, jitterDur(s.opts.CoordTTL/3)); err != nil {
			// Graceful shutdown: hand the lease over immediately.
			_ = handle.Release(s.opts.now())
			s.logger().Info("released coordination lease on shutdown",
				obs.F("id", s.opts.Identity), obs.F("epoch", handle.Epoch()))
			return nil
		}
		now := s.opts.now()
		err := handle.Renew(s.opts.CoordTTL, now)
		var fenced *store.FencedError
		switch {
		case err == nil:
			lastRenewed = now
		case errors.As(err, &fenced):
			// Deposed outright: a peer claimed a newer epoch.
			s.metrics().Counter("ha.depositions").Inc()
			s.logger().Warn("deposed: coordination lease superseded",
				obs.F("id", s.opts.Identity), obs.F("our_epoch", fenced.OurEpoch),
				obs.F("epoch", fenced.Epoch), obs.F("holder", fenced.Holder))
			return nil
		case now.Sub(lastRenewed) > s.opts.CoordTTL:
			// Renewals have failed for longer than the TTL: this process can
			// no longer prove it holds the lease (a standby may be promoting
			// right now), so it must self-depose rather than keep serving.
			s.metrics().Counter("ha.depositions").Inc()
			s.logger().Warn("self-deposing: lease renewals failing past TTL",
				obs.F("id", s.opts.Identity), obs.F("err", err.Error()))
			return nil
		default:
			s.logger().Warn("lease renewal failed (will retry)",
				obs.F("id", s.opts.Identity), obs.F("err", err.Error()))
		}
	}
}
