// Command szgate is the statistically sound benchmark regression gate:
// it collects benchmark runs into durable JSON artifacts and compares two
// artifacts with the statistics the paper argues for (test selection by
// normality screening, bootstrap effect-size confidence intervals,
// Benjamini-Hochberg correction across the suite).
//
// Usage:
//
//	szgate run [-o bench.json] [-runs n | -adaptive [-target f] [-max n]]
//	           [-scale f] [-seed n] [-level 0..3] [-stabilize] [-noise f]
//	           [-engine compiled|walk] [-throughput] [-store dir]
//	           [-bench name[,name...]] [-cxx] [-quick] [-j n] [-commit sha]
//	           [-metrics file [-metrics-full]] [-trace file]
//	           [-log file [-log-level lvl]]
//	szgate compare old.json new.json [-alpha f] [-threshold f] [-boot n]
//	           [-min-ips-ratio f [-ips-bench name]]
//	szgate compare -store dir [collection flags] old.json
//	szgate show artifact.json
//	szgate show -store dir [collection flags]
//	szgate merge -o out.json a.json b.json [c.json ...]
//
// `run` writes an artifact; identical seeds give byte-identical artifacts at
// any -j. With -store, completed cells also land in a content-addressed
// result store (shared with the szfarm benchmarking farm) and reruns are
// served from it; `compare -store` and `show -store` assemble an artifact
// from such a store in store-only mode — byte-identical to the artifact
// `run` would have written, so the gate verdict cannot depend on where the
// samples came from. `compare` prints the gate table and distinguishes its exit codes
// so CI can tell a regression from a broken run: 0 means the gate passed,
// 1 means it failed (a BH-corrected regression whose slowdown exceeds
// -threshold), and 2 means an infrastructure error (unreadable artifact,
// schema mismatch, incomparable configurations). `show` summarizes one
// artifact; `merge` combines artifacts collected under the same
// configuration (extra samples must continue the seed range; disjoint
// benchmark subsets just union).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/gate"
	"repro/internal/interp"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/store"
)

// Exit codes. Gate failure and infrastructure breakage are distinct so a
// CI pipeline can fail a merge on the former and retry/alert on the latter.
const (
	exitOK       = 0
	exitGateFail = 1
	exitInfra    = 2
	exitStopped  = 130 // interrupted by SIGINT/SIGTERM after draining
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitInfra)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "compare":
		code, err := cmdCompare(os.Args[2:], os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "szgate: %v\n", err)
		}
		os.Exit(code)
	case "show":
		err = cmdShow(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "szgate: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(exitInfra)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "szgate: %v\n", err)
		if errors.Is(err, experiment.ErrStopped) {
			os.Exit(exitStopped)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `szgate — benchmark artifact collection and regression gating

  szgate run      collect an artifact (deterministic given -seed, any -j)
  szgate compare  gate new.json against old.json; exit 1 on regression
  szgate show     summarize one artifact
  szgate merge    combine artifacts collected under the same configuration

Run 'szgate <subcommand> -h' for flags.
`)
}

// specFlags are the flags that pin a collection's cells — everything a
// store key is derived from. Shared by `run` (which computes the cells)
// and the -store modes of compare/show (which assemble the same cells
// from a content-addressed result store, so the flag names must agree).
// seedName is "seed" except in compare, where -seed is already the
// bootstrap seed and the master seed is -collect-seed.
type specFlags struct {
	runs      *int
	scale     *float64
	seed      *uint64
	level     *int
	stabilize *bool
	noise     *float64
	engine    *string
	benches   *string
	cxx       *bool
}

func addSpecFlags(fs *flag.FlagSet, seedName string) *specFlags {
	return &specFlags{
		runs:      fs.Int("runs", 20, "runs per benchmark (fixed mode; adaptive start)"),
		scale:     fs.Float64("scale", 1.0, "workload scale"),
		seed:      fs.Uint64(seedName, 2013, "master seed"),
		level:     fs.Int("level", 2, "optimization level (0-3)"),
		stabilize: fs.Bool("stabilize", false, "run under full STABILIZER randomization"),
		noise:     fs.Float64("noise", 0, "relative system-noise sigma (0 = default, negative disables)"),
		engine:    fs.String("engine", "", "interpreter engine: compiled (default) or walk"),
		benches:   fs.String("bench", "", "comma-separated benchmark subset (default: all)"),
		cxx:       fs.Bool("cxx", false, "include the five C++ benchmarks"),
	}
}

// config resolves the flags into an experiment configuration.
func (f *specFlags) config() (experiment.Config, error) {
	optLevel, err := compiler.ParseLevel(*f.level)
	if err != nil {
		return experiment.Config{}, err
	}
	if *f.runs < 1 {
		return experiment.Config{}, fmt.Errorf("-runs %d: need at least 1", *f.runs)
	}
	if *f.scale <= 0 {
		return experiment.Config{}, fmt.Errorf("-scale %v: must be positive", *f.scale)
	}
	eng, err := interp.ParseEngine(*f.engine)
	if err != nil {
		return experiment.Config{}, err
	}
	cfg := experiment.Config{Scale: *f.scale, Level: optLevel, Noise: *f.noise, Engine: eng}
	if *f.stabilize {
		cfg.Stabilizer = &core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Interval: 25_000}
	}
	return cfg, nil
}

func (f *specFlags) suite() ([]spec.Benchmark, error) {
	return pickSuite(*f.benches, *f.cxx)
}

// storeArtifact assembles the artifact the collection flags describe from
// a result store in store-only mode: the ordinary collection path with the
// compute branch forbidden, so the bytes match a local `run` exactly. A
// missing cell is an error (the store does not silently compute); every
// cell is probed up front so the error names the missing keys — the thing
// an operator needs to resubmit or recompute — rather than just the first.
func storeArtifact(ctx context.Context, dir string, sf *specFlags, commit string) (*bench.Artifact, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	cfg, err := sf.config()
	if err != nil {
		return nil, err
	}
	suite, err := sf.suite()
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, b := range suite {
		key := store.KeyFor(b.Name, cfg, *sf.runs, bench.SeedBase(*sf.seed, b.Name))
		if st.Get(key, *sf.runs, bench.SeedBase(*sf.seed, b.Name)) == nil {
			missing = append(missing, key)
		}
	}
	if len(missing) > 0 {
		const maxListed = 10
		listed := missing
		extra := ""
		if len(listed) > maxListed {
			extra = fmt.Sprintf("\n  ... and %d more", len(listed)-maxListed)
			listed = listed[:maxListed]
		}
		return nil, fmt.Errorf("store %s is missing %d of %d cells:\n  %s%s",
			dir, len(missing), len(suite), strings.Join(listed, "\n  "), extra)
	}
	ctx = experiment.WithStoreOnly(experiment.WithCellStore(ctx, st.Cells(cfg.Engine)))
	return bench.Collect(ctx, bench.CollectOptions{
		Suite:  suite,
		Config: cfg,
		Runs:   *sf.runs,
		Seed:   *sf.seed,
		Commit: commit,
	})
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("szgate run", flag.ExitOnError)
	out := fs.String("o", "bench.json", "output artifact path (- for stdout)")
	sf := addSpecFlags(fs, "seed")
	throughput := fs.Bool("throughput", false, "record per-run host wall-clock times (non-golden; enables IPS gating in compare)")
	quick := fs.Bool("quick", false, "CI mode: scale 0.2, 8 runs")
	adaptive := fs.Bool("adaptive", false, "adaptive stopping: sample until the CI half-width target")
	target := fs.Float64("target", 0.005, "adaptive: target relative CI half-width on the mean")
	maxRuns := fs.Int("max", 200, "adaptive: run budget per benchmark")
	batch := fs.Int("batch", 10, "adaptive: runs added per round")
	jobs := fs.Int("j", 0, "parallel workers (0 = $SZ_PARALLEL or GOMAXPROCS); identical artifacts at any value")
	progress := fs.Bool("progress", true, "write per-cell progress lines to stderr")
	commit := fs.String("commit", "", "commit label (default: git rev-parse --short HEAD, if available)")
	checkpoint := fs.String("checkpoint", "", "flush completed cells to this directory and reuse them on rerun (crash-safe)")
	storeDir := fs.String("store", "", "content-addressed result store directory: completed cells are stored, already-stored cells are served without recomputing")
	metricsOut := fs.String("metrics", "", "write an engine-metrics snapshot (JSON) to this file at exit; golden fields only, byte-identical at any -j")
	metricsFull := fs.Bool("metrics-full", false, "include wall-clock histograms and gauges in -metrics (real but not reproducible)")
	traceOut := fs.String("trace", "", "write engine spans as Chrome trace-event JSON to this file at exit")
	logOut := fs.String("log", "", "write the structured JSONL run log to this file")
	logLevel := fs.String("log-level", "info", "minimum -log level: debug, info, warn, error")
	fs.Parse(args)

	if *quick {
		*sf.scale = 0.2
		*sf.runs = 8
	}
	cfg, err := sf.config()
	if err != nil {
		return err
	}
	experiment.SetParallelism(*jobs)
	if *progress {
		experiment.SetProgress(os.Stderr)
	}
	flushObs, err := experiment.InstallObs(experiment.ObsFiles{
		Metrics: *metricsOut, Full: *metricsFull,
		Trace: *traceOut,
		Log:   *logOut, LogLevel: *logLevel,
	})
	if err != nil {
		return err
	}
	// Telemetry is written on every exit path: a failed collection still
	// leaves its metrics, trace, and log behind for diagnosis.
	defer func() {
		if ferr := flushObs(); ferr != nil {
			fmt.Fprintf(os.Stderr, "szgate: writing telemetry: %v\n", ferr)
		}
	}()

	suite, err := sf.suite()
	if err != nil {
		return err
	}
	if *commit == "" {
		*commit = gitCommit()
	}
	ctx, stop := experiment.NotifyShutdown(context.Background(), os.Stderr)
	defer stop()
	if *checkpoint != "" {
		cp, err := experiment.OpenCheckpoint(*checkpoint)
		if err != nil {
			return err
		}
		ctx = experiment.WithCheckpoint(ctx, cp)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		ctx = experiment.WithCellStore(ctx, st.Cells(cfg.Engine))
	}
	art, err := bench.Collect(ctx, bench.CollectOptions{
		Suite:  suite,
		Config: cfg,
		Runs:   *sf.runs,
		Seed:   *sf.seed,
		Commit: *commit,

		Throughput: *throughput,

		Adaptive:  *adaptive,
		TargetRel: *target,
		MaxRuns:   *maxRuns,
		BatchRuns: *batch,
	})
	if err != nil {
		return err
	}
	if *out == "-" {
		return art.Write(os.Stdout)
	}
	if err := art.WriteFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "szgate: wrote %s (%d benchmarks)\n", *out, len(art.Benchmarks))
	return nil
}

// cmdCompare gates new.json against old.json and returns the process exit
// code: exitOK (pass), exitGateFail (statistically confirmed regression),
// or exitInfra (unreadable artifact, schema mismatch, incomparable
// configurations — a broken run, not a regression). Separated from main
// and parameterized on the output writer so tests can drive it.
func cmdCompare(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("szgate compare", flag.ContinueOnError)
	alpha := fs.Float64("alpha", 0.05, "significance level for BH-corrected p-values")
	threshold := fs.Float64("threshold", 0.01, "minimum slowdown a significant regression needs to fail the gate")
	boot := fs.Int("boot", 2000, "bootstrap replicates")
	confidence := fs.Float64("confidence", 0.95, "bootstrap CI level")
	seed := fs.Uint64("seed", 1, "bootstrap seed")
	minIPS := fs.Float64("min-ips-ratio", 0, "throughput floor: fail unless new/old retired-instructions-per-second ratio reaches this (0 disables; needs -throughput artifacts)")
	ipsBench := fs.String("ips-bench", "", "headline benchmark for -min-ips-ratio (default: heaviest baseline workload)")
	storeDir := fs.String("store", "", "assemble the new artifact from this result store (store-only) instead of a new.json file; the collection flags select its cells")
	sf := addSpecFlags(fs, "collect-seed")
	commit := fs.String("commit", "", "commit label for the store-assembled artifact")
	if err := fs.Parse(args); err != nil {
		return exitInfra, nil // flag package already printed the problem
	}
	var new *bench.Artifact
	var err error
	switch {
	case *storeDir != "":
		if fs.NArg() != 1 {
			return exitInfra, fmt.Errorf("usage: szgate compare -store dir [collection flags] old.json")
		}
		// A cell missing from the store is infrastructure (the campaign that
		// should have filled it did not run), never a gate verdict.
		new, err = storeArtifact(context.Background(), *storeDir, sf, *commit)
		if err != nil {
			return exitInfra, err
		}
	default:
		if fs.NArg() != 2 {
			return exitInfra, fmt.Errorf("usage: szgate compare [flags] old.json new.json")
		}
		new, err = bench.ReadFile(fs.Arg(1))
		if err != nil {
			return exitInfra, err
		}
	}
	old, err := bench.ReadFile(fs.Arg(0))
	if err != nil {
		return exitInfra, err
	}
	rep, err := gate.Compare(old, new, gate.Options{
		Alpha: *alpha, Threshold: *threshold,
		Bootstrap: *boot, Confidence: *confidence, Seed: *seed,
		MinIPSRatio: *minIPS, IPSBench: *ipsBench,
	})
	if err != nil {
		// Compare only rejects inputs it cannot soundly gate (different
		// configurations, disjoint benchmarks): infrastructure, not a
		// performance verdict.
		return exitInfra, err
	}
	fmt.Fprint(w, rep.Table())
	if rep.Fail {
		return exitGateFail, nil
	}
	return exitOK, nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("szgate show", flag.ExitOnError)
	storeDir := fs.String("store", "", "assemble the artifact from this result store (store-only; the collection flags select its cells) instead of reading a file")
	sf := addSpecFlags(fs, "seed")
	fs.Parse(args)
	var art *bench.Artifact
	var err error
	name := ""
	if *storeDir != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("usage: szgate show -store dir [collection flags]")
		}
		art, err = storeArtifact(context.Background(), *storeDir, sf, "")
		name = *storeDir + " (store)"
	} else {
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: szgate show artifact.json")
		}
		name = fs.Arg(0)
		art, err = bench.ReadFile(name)
	}
	if err != nil {
		return err
	}
	m := art.Meta
	fmt.Printf("artifact: %s  schema %d\n", name, m.Schema)
	fmt.Printf("config:   scale %g  %s  %s  noise %g  seed %d", m.Scale, m.Level, m.Stabilizer, m.Noise, m.Seed)
	if m.Commit != "" {
		fmt.Printf("  commit %s", m.Commit)
	}
	fmt.Printf("  (%s)\n", m.Unit)
	fmt.Printf("%-12s %5s %12s %12s %8s %10s\n", "Benchmark", "runs", "mean (s)", "median (s)", "cv", "stopped")
	for _, b := range art.Benchmarks {
		mean := stats.Mean(b.Seconds)
		cv := stats.StdDev(b.Seconds) / mean
		stopped := b.Stopped
		if stopped == "" {
			stopped = bench.StoppedFixed
		}
		fmt.Printf("%-12s %5d %12.6f %12.6f %7.3f%% %10s\n",
			b.Name, b.Runs, mean, stats.Median(b.Seconds), cv*100, stopped)
		if p := b.Provenance; p != nil {
			// Present only on farm artifacts fetched with -provenance: the
			// cell's measurement pedigree, non-golden by construction.
			switch {
			case p.StoreHit:
				fmt.Printf("  provenance: store hit  trace %s\n", p.Trace)
			default:
				fmt.Printf("  provenance: worker %s via %s (epoch %d)  attempts %d  queue_wait %.2fs  run %.2fs  trace %s\n",
					p.Worker, p.Coordinator, p.Epoch, p.Attempts, p.QueueWaitSeconds, p.RunSeconds, p.Trace)
			}
		}
	}
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("szgate merge", flag.ExitOnError)
	out := fs.String("o", "-", "output artifact path (- for stdout)")
	fs.Parse(args)
	if fs.NArg() < 2 {
		return fmt.Errorf("usage: szgate merge -o out.json a.json b.json [c.json ...]")
	}
	acc, err := bench.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, path := range fs.Args()[1:] {
		next, err := bench.ReadFile(path)
		if err != nil {
			return err
		}
		if acc, err = bench.Merge(acc, next); err != nil {
			return err
		}
	}
	if *out == "-" {
		return acc.Write(os.Stdout)
	}
	return acc.WriteFile(*out)
}

// pickSuite resolves -bench/-cxx into a benchmark list, rejecting unknown
// names with the valid set.
func pickSuite(names string, cxx bool) ([]spec.Benchmark, error) {
	suite := spec.Suite()
	if cxx {
		suite = spec.FullSuite()
	}
	if names == "" {
		return suite, nil
	}
	byName := map[string]spec.Benchmark{}
	var valid []string
	for _, b := range suite {
		byName[b.Name] = b
		valid = append(valid, b.Name)
	}
	var out []spec.Benchmark
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		b, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q; valid: %s", n, strings.Join(valid, ", "))
		}
		out = append(out, b)
	}
	return out, nil
}

// gitCommit best-effort labels artifacts with the working tree's revision.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
