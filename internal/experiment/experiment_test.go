package experiment

import (
	"context"
	"encoding/xml"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/stats"
)

const testScale = 0.1

// subset returns a small, fast benchmark subset for integration tests.
func subset(t *testing.T, names ...string) []spec.Benchmark {
	t.Helper()
	out := make([]spec.Benchmark, 0, len(names))
	for _, n := range names {
		b, ok := spec.ByName(n)
		if !ok {
			t.Fatalf("unknown benchmark %s", n)
		}
		out = append(out, b)
	}
	return out
}

func TestRunDeterministicPerSeed(t *testing.T) {
	b, _ := spec.ByName("astar")
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := cc.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cc.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seconds != r2.Seconds || r1.Cycles != r2.Cycles || r1.Output != r2.Output {
		t.Fatalf("same seed gave different results: %+v vs %+v", r1, r2)
	}
	r3, err := cc.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Seconds == r1.Seconds {
		t.Fatal("different seeds gave identical times — noise and layout inert?")
	}
	if r3.Output != r1.Output {
		t.Fatal("output depends on seed")
	}
}

func TestNoiseControls(t *testing.T) {
	b, _ := spec.ByName("lbm")
	noiseless, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2, Noise: -1})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := noiseless.Run(1)
	r2, _ := noiseless.Run(1)
	if r1.Seconds != r2.Seconds {
		t.Fatal("noise applied despite being disabled")
	}
	if float64(r1.Cycles)/3.2e9 != r1.Seconds {
		t.Fatal("noiseless Seconds should equal Cycles/clock")
	}
}

func TestStabilizedRunsUseRuntime(t *testing.T) {
	b, _ := spec.ByName("mcf")
	st := core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Interval: 10_000}
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2, Stabilizer: &st})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := cc.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := nat.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Output != rn.Output {
		t.Fatal("stabilized output differs from native")
	}
	if rs.Cycles == rn.Cycles {
		t.Fatal("stabilized run cost identical to native — runtime inert?")
	}
}

func TestNormalityExperiment(t *testing.T) {
	res, err := Normality(context.Background(), NormalityOptions{
		Scale: testScale, Runs: 8, Seed: 1,
		Suite: subset(t, "astar", "lbm"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.SamplesOnce) != 8 || len(row.SamplesRerand) != 8 {
			t.Fatalf("%s: wrong sample counts", row.Benchmark)
		}
		if len(row.QQOnce) != 8 {
			t.Fatalf("%s: QQ data missing", row.Benchmark)
		}
		if math.IsNaN(row.SWOnce) || math.IsNaN(row.SWRerand) {
			t.Fatalf("%s: NaN p-values", row.Benchmark)
		}
	}
	tbl := res.Table()
	for _, want := range []string{"astar", "lbm", "Shapiro-Wilk"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q", want)
		}
	}
	if !strings.Contains(res.QQFigure("astar"), "theoretical") {
		t.Error("QQ figure malformed")
	}
	if !strings.Contains(res.QQFigure("nope"), "unknown") {
		t.Error("QQ figure should reject unknown benchmarks")
	}
	if !strings.Contains(res.Summary(), "non-normal") {
		t.Error("summary malformed")
	}
}

func TestOverheadExperiment(t *testing.T) {
	res, err := Overhead(context.Background(), OverheadOptions{
		Scale: testScale, Runs: 6, Seed: 1,
		Suite: subset(t, "perlbench", "lbm"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Configs) != 3 {
		t.Fatalf("rows=%d configs=%d", len(res.Rows), len(res.Configs))
	}
	if res.Configs[2] != "code.heap.stack" {
		t.Fatalf("config label %q", res.Configs[2])
	}
	// perlbench (many functions) must show clearly more overhead than lbm.
	var perl, lbm float64
	for _, row := range res.Rows {
		if row.Benchmark == "perlbench" {
			perl = row.Overhead[2]
		} else {
			lbm = row.Overhead[2]
		}
	}
	if perl <= lbm {
		t.Errorf("perlbench overhead (%.1f%%) not above lbm (%.1f%%)", perl*100, lbm*100)
	}
	if !strings.Contains(res.Figure(), "median overhead") {
		t.Error("figure missing median line")
	}
	if m := res.MedianOverhead(); math.IsNaN(m) {
		t.Error("median is NaN")
	}
}

func TestSpeedupExperiment(t *testing.T) {
	res, err := Speedup(context.Background(), SpeedupOptions{
		Scale: testScale, Runs: 6, Seed: 1,
		Suite: subset(t, "gromacs", "libquantum", "sjeng"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SpeedupO2 <= 0 || row.SpeedupO3 <= 0 {
			t.Errorf("%s: nonpositive speedups", row.Benchmark)
		}
	}
	if res.ANOVAO2.DFError != 2 { // 3 subjects, 2 treatments
		t.Errorf("ANOVA df wrong: %v", res.ANOVAO2.DFError)
	}
	if !strings.Contains(res.Figure(), "O2/O1") || !strings.Contains(res.ANOVATable(), "ANOVA") {
		t.Error("speedup output malformed")
	}
}

func TestLinkOrderExperiment(t *testing.T) {
	res, err := LinkOrder(context.Background(), LinkOrderOptions{
		Scale: testScale, Orders: 6, Runs: 2, Seed: 1,
		Suite: subset(t, "gobmk"),
	})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Worst < row.Best {
		t.Fatal("worst faster than best")
	}
	if row.MaxDegradation < 0 {
		t.Fatal("negative degradation")
	}
	if !strings.Contains(res.Table(), "worst/best") {
		t.Error("table malformed")
	}
}

func TestEnvSizeExperiment(t *testing.T) {
	res, err := EnvSize(context.Background(), EnvSizeOptions{
		Scale: testScale, Runs: 2, Seed: 1,
		EnvSizes: []uint64{0, 2048},
		Suite:    subset(t, "sjeng"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows[0].Seconds) != 2 {
		t.Fatalf("points: %d", len(res.Rows[0].Seconds))
	}
	if !strings.Contains(res.Table(), "sjeng") {
		t.Error("table malformed")
	}
}

func TestNISTExperiment(t *testing.T) {
	res, err := NIST(context.Background(), NISTOptions{Values: 6000, Seed: 3, ShuffleN: []int{1, 256}})
	if err != nil {
		t.Fatal(err)
	}
	// lrand48, DieHard, segregated, shuffle(1), shuffle(256).
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	passCount := func(i int) int {
		n := 0
		for _, r := range res.Rows[i].Results {
			if r.Pass() {
				n++
			}
		}
		return n
	}
	// The shape that matters: the deep shuffle passes more tests than the
	// raw base allocator.
	if passCount(4) <= passCount(2) {
		t.Errorf("shuffle(256) passes %d tests, base %d — randomization invisible",
			passCount(4), passCount(2))
	}
	if !strings.Contains(res.Table(), "lrand48") {
		t.Error("table malformed")
	}
}

func TestSamplesLengthAndVariation(t *testing.T) {
	b, _ := spec.ByName("namd")
	cc, err := CompileBench(b, Config{Scale: testScale, Level: compiler.O1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cc.Samples(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 10 {
		t.Fatalf("got %d samples", len(s))
	}
	if stats.StdDev(s) == 0 {
		t.Fatal("no run-to-run variation")
	}
}

func TestPhasesExperiment(t *testing.T) {
	r, err := Phases(context.Background(), PhasesOptions{Scale: 0.15, Runs: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.PhaseCount < 2 {
		t.Fatalf("phase detector found %d phases in the phased program", r.PhaseCount)
	}
	if math.IsNaN(r.SWOnce) || math.IsNaN(r.SWRerand) {
		t.Fatal("NaN normality p-values")
	}
	if !strings.Contains(r.Table(), "Phase behavior") {
		t.Fatal("table malformed")
	}
}

func TestAdaptiveExperiment(t *testing.T) {
	r, err := Adaptive(context.Background(), AdaptiveOptions{Scale: 0.15, Runs: 5, Seed: 5, Interval: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d policies", len(r.Rows))
	}
	if r.Rows[0].Policy != "one-time" || r.Rows[2].Policy != "adaptive" {
		t.Fatalf("policy order wrong: %+v", r.Rows)
	}
	if r.Rows[0].Rerands != 0 {
		t.Fatal("one-time policy re-randomized")
	}
	if r.Rows[1].Rerands == 0 {
		t.Fatal("fixed policy never re-randomized")
	}
	if !strings.Contains(r.Table(), "policy") {
		t.Fatal("table malformed")
	}
}

func TestIntervalAblationSmoke(t *testing.T) {
	r, err := RerandInterval(context.Background(), IntervalAblationOptions{
		Scale: 0.15, Runs: 6, Seed: 5,
		Intervals: []uint64{0, 50_000, 10_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	if r.Rows[0].PeriodsPerRun != 1 {
		t.Fatal("one-time row should report 1 period")
	}
	if r.Rows[2].PeriodsPerRun <= r.Rows[1].PeriodsPerRun {
		t.Fatal("smaller interval should give more periods")
	}
	if !strings.Contains(r.Table(), "periods/run") {
		t.Fatal("table malformed")
	}
}

func TestShuffleDepthSmoke(t *testing.T) {
	r, err := ShuffleDepth(context.Background(), ShuffleDepthOptions{
		Scale: 0.15, Runs: 4, Seed: 5, Depths: []int{1, 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 depth rows + tlsf + diehard.
	if len(r.Rows) != 4 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	last := r.Rows[len(r.Rows)-1]
	if last.Label != "diehard" {
		t.Fatalf("last row %q, want diehard", last.Label)
	}
	// DieHard's no-reuse policy must be the costliest heap configuration.
	for _, row := range r.Rows[:len(r.Rows)-1] {
		if row.Overhead >= last.Overhead {
			t.Fatalf("diehard (%.1f%%) not the most expensive (vs %s %.1f%%)",
				last.Overhead*100, row.Label, row.Overhead*100)
		}
	}
}

func TestCSVAndSVGWriters(t *testing.T) {
	dir := t.TempDir()
	r, err := Normality(context.Background(), NormalityOptions{
		Scale: 0.1, Runs: 6, Seed: 1, Suite: subset(t, "astar"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSVG(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table1_normality.csv", "fig5_qq.csv", "fig5_qq_astar.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
	// SVG must be well-formed enough to parse as XML.
	raw, _ := os.ReadFile(filepath.Join(dir, "fig5_qq_astar.svg"))
	var doc interface{}
	if err := xml.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("SVG not valid XML: %v", err)
	}
}

func TestChartRendering(t *testing.T) {
	r, err := Overhead(context.Background(), OverheadOptions{
		Scale: 0.1, Runs: 3, Seed: 1, Suite: subset(t, "astar", "lbm"),
	})
	if err != nil {
		t.Fatal(err)
	}
	chart := r.Chart()
	if !strings.Contains(chart, "astar") || !strings.Contains(chart, "#") {
		t.Fatalf("chart malformed:\n%s", chart)
	}
}

func TestDeploymentExperiment(t *testing.T) {
	r, err := Deployment(context.Background(), DeploymentOptions{
		Scale: 0.2, Samples: 12, Seed: 3, Suite: subset(t, "gobmk"),
	})
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.NativeWorst < row.NativeP95 || row.NativeP95 < row.NativeMedian {
		t.Fatal("native quantiles out of order")
	}
	if row.StabWorst < row.StabP95 || row.StabP95 < row.StabMedian {
		t.Fatal("stabilized quantiles out of order")
	}
	// The core claim: re-randomization tightens the worst-case tail.
	nativeTail := row.NativeWorst / row.NativeMedian
	stabTail := row.StabWorst / row.StabMedian
	if stabTail >= nativeTail {
		t.Logf("note: tail not tightened at this tiny scale (%.3f vs %.3f)", stabTail, nativeTail)
	}
	if !strings.Contains(r.Table(), "worst/med") {
		t.Fatal("table malformed")
	}
}
