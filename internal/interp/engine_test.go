package interp_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
)

// The cross-engine differential suite: the compiled engine must be
// indistinguishable from the tree-walk reference to every observer — the
// Result (output, cycles, instructions, profile), the Recorder digest, the
// machine's full counter snapshot, and the Observer's window stream. These
// tests pin that equivalence over hand-built fixtures (covering traps,
// exceptions, budget aborts, and stack overflow), generated programs, and
// both the native and the full STABILIZER runtime.

// windowObs records every observer window verbatim.
type windowObs struct {
	windows []struct {
		stack []int
		delta machine.Counters
	}
}

func (w *windowObs) ProfileWindow(stack []int, delta machine.Counters) {
	w.windows = append(w.windows, struct {
		stack []int
		delta machine.Counters
	}{append([]int(nil), stack...), delta})
}

// engineObservation is everything one run exposes.
type engineObservation struct {
	res      interp.Result
	err      error
	digest   interp.Digest
	counters machine.Counters
	obs      *windowObs
}

// runEngine executes m (already finalized and sized) under one engine with
// a fresh machine and runtime. With stabilize set, the full STABILIZER
// runtime — code/stack/heap randomization with re-randomization — is used;
// otherwise the native static layout.
func runEngine(t *testing.T, m *ir.Module, eng interp.Engine, stabilize bool, seed uint64, tune func(*interp.Options)) engineObservation {
	t.Helper()
	as := mem.NewAddressSpace()
	img, err := compiler.Link(m, compiler.DefaultOrder(len(m.Funcs)), as)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	mach := machine.New(machine.DefaultConfig())
	mach.SetPhysicalSeed(seed)
	var rt interp.Runtime
	if stabilize {
		st, err := core.New(m, mach, as, img.FuncAddrs, img.GlobalAddrs, core.Options{
			Code: true, Stack: true, Heap: true,
			Rerandomize: true, Interval: 2_000, FineGrainCode: true, Seed: seed,
		})
		if err != nil {
			t.Fatalf("core: %v", err)
		}
		rt = st
	} else {
		rt = &interp.NativeRuntime{
			FuncAddrs:   img.FuncAddrs,
			GlobalAddrs: img.GlobalAddrs,
			Stack:       as.StackBase(),
			Heap:        heap.NewSegregated(as),
			Mach:        mach,
		}
	}
	obs := &windowObs{}
	o := interp.Options{
		Machine:  mach,
		Runtime:  rt,
		Engine:   eng,
		Profile:  true,
		Record:   interp.NewRecorder(),
		Observer: obs,
	}
	if tune != nil {
		tune(&o)
	}
	res, err := interp.Run(m, o)
	return engineObservation{res: res, err: err, digest: o.Record.Digest(), counters: mach.Snapshot(), obs: obs}
}

// diffEngines runs m under both engines in the same configuration and
// fails on any observable difference.
func diffEngines(t *testing.T, name string, m *ir.Module, stabilize bool, seed uint64, tune func(*interp.Options)) {
	t.Helper()
	walk := runEngine(t, m, interp.EngineWalk, stabilize, seed, tune)
	comp := runEngine(t, m, interp.EngineCompiled, stabilize, seed, tune)

	switch {
	case (walk.err == nil) != (comp.err == nil):
		t.Fatalf("%s: error divergence: walk=%v compiled=%v", name, walk.err, comp.err)
	case walk.err != nil && walk.err.Error() != comp.err.Error():
		t.Fatalf("%s: error text divergence:\n  walk:     %v\n  compiled: %v", name, walk.err, comp.err)
	}
	if !reflect.DeepEqual(walk.res, comp.res) {
		t.Fatalf("%s: result divergence:\n  walk:     %+v\n  compiled: %+v", name, walk.res, comp.res)
	}
	if walk.digest.Arch != comp.digest.Arch || walk.digest.Exec != comp.digest.Exec || walk.digest.Steps != comp.digest.Steps {
		t.Fatalf("%s: digest divergence:\n  walk:     arch=%016x exec=%016x steps=%d\n  compiled: arch=%016x exec=%016x steps=%d",
			name, walk.digest.Arch, walk.digest.Exec, walk.digest.Steps,
			comp.digest.Arch, comp.digest.Exec, comp.digest.Steps)
	}
	if walk.counters != comp.counters {
		t.Fatalf("%s: machine counter divergence:\n  walk:\n%v\n  compiled:\n%v", name, walk.counters, comp.counters)
	}
	if !reflect.DeepEqual(walk.obs.windows, comp.obs.windows) {
		if len(walk.obs.windows) != len(comp.obs.windows) {
			t.Fatalf("%s: observer window count divergence: walk=%d compiled=%d",
				name, len(walk.obs.windows), len(comp.obs.windows))
		}
		for i := range walk.obs.windows {
			if !reflect.DeepEqual(walk.obs.windows[i], comp.obs.windows[i]) {
				t.Fatalf("%s: observer window %d diverged:\n  walk:     %+v\n  compiled: %+v",
					name, i, walk.obs.windows[i], comp.obs.windows[i])
			}
		}
	}
}

// prepared compiles a fixture at the given level (stabilized so the core
// runtime can host it) and finalizes sizes.
func prepared(t *testing.T, m *ir.Module, lv compiler.OptLevel) *ir.Module {
	t.Helper()
	out, err := compiler.Compile(m, compiler.Options{Level: lv, Stabilize: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return out
}

// budgetFixture spins forever, exercising the StepBudgetError path.
func budgetFixture() *ir.Module {
	mb := ir.NewModuleBuilder("spin")
	f := mb.Func("main", 0)
	loop := f.NewBlock()
	f.Jmp(loop)
	f.SetBlock(loop)
	f.Jmp(loop)
	return mb.Module()
}

// overflowFixture recurses without bound, exercising ErrStackOverflow.
func overflowFixture() *ir.Module {
	mb := ir.NewModuleBuilder("deep")
	f := mb.Func("main", 0)
	g := mb.Func("down", 1)
	f.Ret(f.Call(g.Index(), f.ConstI(0)))
	g.Slot("pad", 256)
	g.Ret(g.Call(g.Index(), g.Param(0)))
	return mb.Module()
}

func TestEnginesMatchOnFixtures(t *testing.T) {
	fixtures := []struct {
		name  string
		build func() *ir.Module
	}{
		{"digestA", digestFixtureA},
		{"digestB-doublefree", digestFixtureB},
		{"thrower", buildThrower},
	}
	for _, fx := range fixtures {
		for _, lv := range []compiler.OptLevel{compiler.O0, compiler.O2} {
			m := prepared(t, fx.build(), lv)
			for _, stab := range []bool{false, true} {
				diffEngines(t, fmt.Sprintf("%s/%s/stab=%v", fx.name, lv, stab), m, stab, 7, nil)
			}
		}
	}
}

func TestEnginesMatchOnGeneratedPrograms(t *testing.T) {
	for _, seed := range []uint64{5, 21, 301, 8191} {
		cfg := ir.GenConfig{Faults: seed%2 == 1}
		for _, lv := range []compiler.OptLevel{compiler.O1, compiler.O3} {
			m := prepared(t, ir.Generate(seed, cfg), lv)
			for _, stab := range []bool{false, true} {
				diffEngines(t, fmt.Sprintf("gen%d/%s/stab=%v", seed, lv, stab), m, stab, seed, nil)
			}
		}
	}
}

func TestEnginesMatchOnBudgetAbort(t *testing.T) {
	m := prepared(t, budgetFixture(), compiler.O0)
	tune := func(o *interp.Options) { o.MaxSteps = 10_000 }
	for _, stab := range []bool{false, true} {
		diffEngines(t, fmt.Sprintf("budget/stab=%v", stab), m, stab, 3, tune)
	}
	// And the error is the structured budget error under both engines.
	for _, eng := range interp.Engines() {
		got := runEngine(t, m, eng, false, 3, tune)
		if !errors.Is(got.err, interp.ErrMaxSteps) {
			t.Fatalf("engine %s: budget abort surfaced as %v", eng, got.err)
		}
	}
}

func TestEnginesMatchOnStackOverflow(t *testing.T) {
	m := prepared(t, overflowFixture(), compiler.O0)
	tune := func(o *interp.Options) { o.StackLimit = 1 << 16 }
	for _, stab := range []bool{false, true} {
		diffEngines(t, fmt.Sprintf("overflow/stab=%v", stab), m, stab, 11, tune)
	}
	for _, eng := range interp.Engines() {
		got := runEngine(t, m, eng, false, 11, tune)
		if !errors.Is(got.err, interp.ErrStackOverflow) {
			t.Fatalf("engine %s: overflow surfaced as %v", eng, got.err)
		}
	}
}

// TestStaleCopyRepro is the regression fixture for propagateCopies
// staleness: a Mov destination later redefined by a non-Mov op must not be
// rewritten to the Mov's (now stale) source. Both engines must agree on
// the output; the oracle fuzz corpus carries a generated twin of this
// shape (testdata/fuzz/FuzzEngineDifferential).
func TestStaleCopyRepro(t *testing.T) {
	mb := ir.NewModuleBuilder("repro")
	f := mb.Func("main", 0)
	c5 := f.ConstI(5)
	c3 := f.ConstI(3)
	c4 := f.ConstI(4)
	d := f.Mov(c5)
	_ = f.Add(c3, c4)
	f.Sink(d)
	f.Ret(ir.NoReg)
	m := mb.Module()

	out, err := compiler.Compile(m, compiler.Options{Level: compiler.O0, Stabilize: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Find the Mov and the Add in main's entry block; redefine the Mov's
	// destination with the Add.
	blk := out.Funcs[out.Entry()].Blocks[0]
	movDst := ir.NoReg
	addIdx := -1
	for i := range blk.Instrs {
		switch blk.Instrs[i].Op {
		case ir.OpMov:
			movDst = blk.Instrs[i].Dst
		case ir.OpAdd:
			addIdx = i
		}
	}
	if movDst == ir.NoReg || addIdx < 0 {
		t.Skipf("shape not preserved by compile: mov=%v addIdx=%d instrs=%+v", movDst, addIdx, blk.Instrs)
	}
	blk.Instrs[addIdx].Dst = movDst

	walk := runEngine(t, out, interp.EngineWalk, false, 7, nil)
	comp := runEngine(t, out, interp.EngineCompiled, false, 7, nil)
	if walk.err != nil || comp.err != nil {
		t.Fatalf("errs: walk=%v comp=%v", walk.err, comp.err)
	}
	if walk.res.Output != comp.res.Output {
		t.Fatalf("output divergence: walk=%#x compiled=%#x", walk.res.Output, comp.res.Output)
	}
}

// TestEngineFlagParsing pins the -engine flag surface.
func TestEngineFlagParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want interp.Engine
		ok   bool
	}{
		{"compiled", interp.EngineCompiled, true},
		{"", interp.EngineCompiled, true},
		{"walk", interp.EngineWalk, true},
		{"jit", 0, false},
	} {
		got, err := interp.ParseEngine(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Fatalf("ParseEngine(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if interp.EngineCompiled.String() != "compiled" || interp.EngineWalk.String() != "walk" {
		t.Fatal("engine String() spellings changed")
	}
}
