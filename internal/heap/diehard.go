package heap

import (
	"repro/internal/mem"
	"repro/internal/rng"
)

// DieHard is a miniature DieHard-style randomized allocator: per size class
// it holds bitmap-managed regions sized far larger than needed, and
// satisfies each request by probing random slots until a free one is found.
// Unlike conventional allocators it never prefers recently-freed memory, and
// its sparse, random placement inflates TLB pressure — the overhead the
// paper cites as the reason STABILIZER moved to a shuffled segregated heap.
//
// As in DieHard proper, a size class that reaches half occupancy grows by
// doubling (a fresh region with as many slots as the class already has),
// keeping random probing O(1) in expectation. Exhaustion is therefore only
// reachable through the address space's Map budget, and surfaces as the same
// out-of-memory trap every other allocator reports.
type DieHard struct {
	as    *mem.AddressSpace
	r     *rng.Marsaglia
	cls   [numClasses]*dieHardClass
	sizes map[mem.Addr]int
	large map[mem.Addr]bool
	freed map[mem.Addr]bool
}

type dieHardClass struct {
	subs  []dieHardSub
	slots uint64 // total slots across subs
	used  uint64
}

type dieHardSub struct {
	region mem.Region
	bitmap []uint64
	slots  uint64
}

// dieHardSlots is the number of slots in a size class's first region. With
// an occupancy cap of 1/2 (enforced by doubling) the allocator stays O(1)
// in expectation.
const dieHardSlots = 1 << 14

// NewDieHard returns a DieHard-style allocator drawing from as and taking
// randomness from r.
func NewDieHard(as *mem.AddressSpace, r *rng.Marsaglia) *DieHard {
	return &DieHard{
		as:    as,
		r:     r,
		sizes: make(map[mem.Addr]int),
		large: make(map[mem.Addr]bool),
		freed: make(map[mem.Addr]bool),
	}
}

// Name implements Allocator.
func (d *DieHard) Name() string { return "diehard" }

// grow adds a region to class c, doubling its slot count (or creating the
// first region).
func (d *DieHard) grow(c int) error {
	dc := d.cls[c]
	n := dc.slots
	if n == 0 {
		n = dieHardSlots
	}
	r, err := d.as.Map(classSize(c)*n, mem.MapAnywhere)
	if err != nil {
		return err
	}
	dc.subs = append(dc.subs, dieHardSub{
		region: r,
		bitmap: make([]uint64, n/64),
		slots:  n,
	})
	dc.slots += n
	return nil
}

// Alloc implements Allocator by random probing.
func (d *DieHard) Alloc(size uint64) (mem.Addr, error) {
	c := sizeClass(size)
	if c >= numClasses {
		r, err := d.as.Map(size, mem.MapAnywhere)
		if err != nil {
			return 0, err
		}
		d.large[r.Base] = true
		delete(d.freed, r.Base)
		return r.Base, nil
	}
	if d.cls[c] == nil {
		d.cls[c] = &dieHardClass{}
	}
	dc := d.cls[c]
	if dc.used*2 >= dc.slots {
		if err := d.grow(c); err != nil {
			return 0, err
		}
	}
	for {
		slot := d.r.Uint64n(dc.slots)
		sub := &dc.subs[0]
		for i := range dc.subs {
			if slot < dc.subs[i].slots {
				sub = &dc.subs[i]
				break
			}
			slot -= dc.subs[i].slots
		}
		w, b := slot/64, slot%64
		if sub.bitmap[w]&(1<<b) == 0 {
			sub.bitmap[w] |= 1 << b
			dc.used++
			a := sub.region.Base + mem.Addr(slot*classSize(c))
			d.sizes[a] = c
			delete(d.freed, a)
			return a, nil
		}
	}
}

// Free implements Allocator.
func (d *DieHard) Free(addr mem.Addr) error {
	if d.large[addr] {
		delete(d.large, addr)
		d.freed[addr] = true
		return nil
	}
	c, ok := d.sizes[addr]
	if !ok {
		return freeTrap(d.freed, addr, "diehard")
	}
	delete(d.sizes, addr)
	d.freed[addr] = true
	dc := d.cls[c]
	for i := range dc.subs {
		sub := &dc.subs[i]
		span := mem.Addr(sub.slots * classSize(c))
		if addr < sub.region.Base || addr >= sub.region.Base+span {
			continue
		}
		slot := uint64(addr-sub.region.Base) / classSize(c)
		w, b := slot/64, slot%64
		sub.bitmap[w] &^= 1 << b
		dc.used--
		return nil
	}
	// sizes said the class exists but no region contains the address: the
	// allocator's own books are corrupt.
	panic("heap: diehard size table inconsistent with regions")
}
