package experiment

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/stats"
)

// NormalityRow is one benchmark's entry in Table 1 plus the QQ data behind
// its Figure 5 panel.
type NormalityRow struct {
	Benchmark string
	// Shapiro-Wilk p-values for execution times under one-time
	// randomization and under re-randomization (Table 1 columns 2–3).
	SWOnce, SWRerand float64
	// Brown-Forsythe p-value for equality of variance between the two
	// sample sets (Table 1 column 4).
	BrownForsythe float64
	// Variance direction: negative means re-randomization reduced variance
	// (the regression-to-the-mean effect of §5.1).
	VarianceChange float64
	// QQ plot points (Figure 5): both sample sets shifted to zero mean and
	// normalized by the re-randomized standard deviation.
	QQOnce, QQRerand []stats.QQPoint

	SamplesOnce, SamplesRerand []float64
}

// NormalityResult is the full Table 1 / Figure 5 reproduction.
type NormalityResult struct {
	Rows []NormalityRow
	Runs int
}

// NormalityOptions configures the experiment.
type NormalityOptions struct {
	Scale    float64
	Runs     int // per configuration (30 in the paper)
	Seed     uint64
	Interval uint64 // re-randomization interval
	Level    compiler.OptLevel
	Suite    []spec.Benchmark // default: full suite
}

func (o *NormalityOptions) defaults() {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Runs == 0 {
		o.Runs = 30
	}
	if o.Interval == 0 {
		o.Interval = 25_000
	}
	if o.Suite == nil {
		o.Suite = spec.Suite()
	}
	if o.Level == 0 {
		o.Level = compiler.O2
	}
}

// Normality runs every benchmark 'Runs' times with one-time randomization
// and with re-randomization, reproducing Table 1 and Figure 5. Benchmarks
// (and their runs) execute in parallel on the default pool; both stabilized
// configurations share one compiled module via the compile cache.
func Normality(ctx context.Context, opts NormalityOptions) (*NormalityResult, error) {
	opts.defaults()
	res := &NormalityResult{Runs: opts.Runs}
	rows := make([]NormalityRow, len(opts.Suite))
	pool := NewPool(0)
	err := pool.ForEach(ctx, len(opts.Suite), func(ctx context.Context, bi int) error {
		b := opts.Suite[bi]
		onceOpts := core.Options{Code: true, Stack: true, Heap: true}
		co, err := CompileBench(b, Config{Scale: opts.Scale, Level: opts.Level, Stabilizer: &onceOpts})
		if err != nil {
			return err
		}
		once, err := co.Collect(ctx, opts.Runs, opts.Seed+uint64(bi)*1000)
		if err != nil {
			return err
		}

		rrOpts := core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Interval: opts.Interval}
		cr, err := CompileBench(b, Config{Scale: opts.Scale, Level: opts.Level, Stabilizer: &rrOpts})
		if err != nil {
			return err
		}
		rerand, err := cr.Collect(ctx, opts.Runs, opts.Seed+uint64(bi)*1000+500)
		if err != nil {
			return err
		}

		refStd := stats.StdDev(rerand.Seconds)
		rows[bi] = NormalityRow{
			Benchmark:      b.Name,
			SWOnce:         stats.ShapiroWilk(once.Seconds).P,
			SWRerand:       stats.ShapiroWilk(rerand.Seconds).P,
			BrownForsythe:  stats.BrownForsythe(once.Seconds, rerand.Seconds).P,
			VarianceChange: stats.Variance(rerand.Seconds) - stats.Variance(once.Seconds),
			QQOnce:         stats.QQNormal(once.Seconds, refStd),
			QQRerand:       stats.QQNormal(rerand.Seconds, refStd),
			SamplesOnce:    once.Seconds,
			SamplesRerand:  rerand.Seconds,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the Table 1 reproduction. Bold in the paper marks p < 0.05;
// here an asterisk does.
func (r *NormalityResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Shapiro-Wilk normality and Brown-Forsythe variance tests (%d runs)\n", r.Runs)
	fmt.Fprintf(&sb, "%-12s %14s %14s %16s\n", "Benchmark", "SW Randomized", "SW Re-rand.", "Brown-Forsythe")
	star := func(p float64) string {
		if p < 0.05 {
			return "*"
		}
		return " "
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %13.3f%s %13.3f%s %15.3f%s\n",
			row.Benchmark,
			row.SWOnce, star(row.SWOnce),
			row.SWRerand, star(row.SWRerand),
			row.BrownForsythe, star(row.BrownForsythe))
	}
	sb.WriteString("(* = p < 0.05: non-normal / unequal variance)\n")
	return sb.String()
}

// QQFigure renders a text version of Figure 5 for one benchmark: paired
// columns of theoretical and observed quantiles.
func (r *NormalityResult) QQFigure(benchmark string) string {
	for _, row := range r.Rows {
		if row.Benchmark != benchmark {
			continue
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "Figure 5 (%s): normal QQ data, normalized to re-randomized stddev\n", benchmark)
		fmt.Fprintf(&sb, "%10s %18s %18s\n", "theoretical", "one-time observed", "re-rand observed")
		for i := range row.QQOnce {
			fmt.Fprintf(&sb, "%10.3f %18.3f %18.3f\n",
				row.QQOnce[i].Theoretical, row.QQOnce[i].Observed, row.QQRerand[i].Observed)
		}
		return sb.String()
	}
	return "unknown benchmark: " + benchmark
}

// Summary counts, mirroring the prose of §5.1.
func (r *NormalityResult) Summary() string {
	nonNormalOnce, nonNormalRerand, varReduced := 0, 0, 0
	var onceNames, rerandNames []string
	for _, row := range r.Rows {
		if row.SWOnce < 0.05 {
			nonNormalOnce++
			onceNames = append(onceNames, row.Benchmark)
		}
		if row.SWRerand < 0.05 {
			nonNormalRerand++
			rerandNames = append(rerandNames, row.Benchmark)
		}
		if row.BrownForsythe < 0.05 && row.VarianceChange < 0 {
			varReduced++
		}
	}
	return fmt.Sprintf(
		"non-normal with one-time randomization: %d of %d (%s)\n"+
			"non-normal with re-randomization:       %d of %d (%s)\n"+
			"significant variance reduction from re-randomization: %d\n",
		nonNormalOnce, len(r.Rows), strings.Join(onceNames, ", "),
		nonNormalRerand, len(r.Rows), strings.Join(rerandNames, ", "),
		varReduced)
}
