package stats

import (
	"math"
	"testing"
)

// Golden values computed with R (effsize 0.8.1) and SciPy 1.11; see each
// case's comment for the generating expression.

func TestCohensDGolden(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
		want   float64
	}{
		// (mean(y)-mean(x))/sqrt(((4)*2.5+(4)*10)/8) = 3/2.5
		{"simple", []float64{1, 2, 3, 4, 5}, []float64{2, 4, 6, 8, 10}, 1.2},
		// equal variances 0.1, shift 0.3: 0.3/sqrt(0.1) = 0.9486833
		{"shift", []float64{2.1, 2.3, 2.5, 2.7, 2.9}, []float64{2.4, 2.6, 2.8, 3.0, 3.2}, 0.9486833},
		// symmetric: swapping the samples flips the sign
		{"negative", []float64{2, 4, 6, 8, 10}, []float64{1, 2, 3, 4, 5}, -1.2},
	}
	for _, c := range cases {
		if got := CohensD(c.xs, c.ys); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("%s: CohensD = %.7f, want %.7f", c.name, got, c.want)
		}
	}
	if d := CohensD([]float64{1}, []float64{1, 2}); !math.IsNaN(d) {
		t.Errorf("CohensD on n=1 sample = %v, want NaN", d)
	}
	if d := CohensD([]float64{3, 3, 3}, []float64{5, 5, 5}); !math.IsNaN(d) {
		t.Errorf("CohensD with zero pooled variance = %v, want NaN", d)
	}
}

func TestCliffsDeltaGolden(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
		want   float64
	}{
		// effsize::cliff.delta(c(2,4,6,8,10), c(1,2,3,4,5)) = 0.6
		{"dominant", []float64{1, 2, 3, 4, 5}, []float64{2, 4, 6, 8, 10}, 0.6},
		// 8 wins, 0 losses, 1 tie out of 9 pairs
		{"tie", []float64{1, 2, 3}, []float64{3, 4, 5}, 8.0 / 9},
		{"complete", []float64{10, 11}, []float64{1, 2}, -1},
		{"equal", []float64{7, 7}, []float64{7, 7}, 0},
	}
	for _, c := range cases {
		if got := CliffsDelta(c.xs, c.ys); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: CliffsDelta = %.7f, want %.7f", c.name, got, c.want)
		}
	}
	if d := CliffsDelta(nil, []float64{1}); !math.IsNaN(d) {
		t.Errorf("CliffsDelta on empty sample = %v, want NaN", d)
	}
}
