package experiment

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/nist"
	"repro/internal/rng"
)

// NISTRow is one generator's row in the §3.2 randomness table.
type NISTRow struct {
	Source  string
	Results []nist.Result
}

// NISTResult reproduces the §3.2 randomness evaluation: the NIST suite run
// on lrand48 output, DieHard allocation addresses, and shuffled-heap
// allocation addresses for several values of N, using only the cache index
// bits (6–17).
type NISTResult struct {
	Rows         []NISTRow
	Values       int // addresses/draws per stream
	LoBit, HiBit int
}

// NISTOptions configures the experiment.
type NISTOptions struct {
	Values   int // number of values per stream (default 12000)
	Seed     uint64
	ShuffleN []int // shuffled-heap depths to test (default 1, 16, 256)
	// LoBit..HiBit is the extracted bit range. The paper uses 6-17 (the
	// Core 2's L2 index bits); this reproduction's simulated machine is an
	// i3-550 whose L1 index bits are 6-11 and whose L2 index bits are 6-14,
	// so the default here is 6-13 — the range the shuffling layer is sized
	// to randomize (N=256 well-covers it for small size classes; larger N
	// "will increase overhead with no added benefit", §3.2).
	LoBit, HiBit int
}

func (o *NISTOptions) defaults() {
	if o.Values == 0 {
		o.Values = 12000
	}
	if o.ShuffleN == nil {
		o.ShuffleN = []int{1, 16, 256}
	}
	if o.HiBit == 0 {
		o.LoBit, o.HiBit = 6, 13
	}
}

// allocStream collects allocation addresses from a steady-state churn
// workload: a large primed population of 64-byte objects (so the heap
// footprint spans all the index bits) with FIFO lifetimes — the oldest
// object dies at each step, as in a generational workload. With a
// deterministic base allocator this feeds reuse in a regular order, so any
// randomness in the recorded addresses is the layer's doing.
func allocStream(a heap.Allocator, n int) []uint64 {
	const population = 8192
	const size = 64
	// The workload is balanced by construction, so allocator faults here
	// are harness bugs, not data.
	alloc := func() mem.Addr {
		addr, err := a.Alloc(size)
		if err != nil {
			panic(fmt.Sprintf("experiment: NIST alloc stream: %v", err))
		}
		return addr
	}
	live := make([]mem.Addr, 0, population)
	for i := 0; i < population; i++ {
		live = append(live, alloc())
	}
	out := make([]uint64, 0, n)
	head := 0
	for len(out) < n {
		if err := a.Free(live[head]); err != nil {
			panic(fmt.Sprintf("experiment: NIST alloc stream: %v", err))
		}
		addr := alloc()
		live[head] = addr
		head = (head + 1) % population
		out = append(out, uint64(addr))
	}
	return out
}

// NIST runs the table. Every row is an independent stream (its own RNG and
// allocator) plus its own NIST suite evaluation, so rows populate in
// parallel on the default pool, landing in table order by index.
func NIST(ctx context.Context, opts NISTOptions) (*NISTResult, error) {
	opts.defaults()
	res := &NISTResult{Values: opts.Values, LoBit: opts.LoBit, HiBit: opts.HiBit}

	type rowSpec struct {
		source string
		stream func() []uint64
	}
	specs := []rowSpec{
		// libc lrand48.
		{"lrand48", func() []uint64 {
			l := rng.NewLrand48(uint32(opts.Seed) | 1)
			vals := make([]uint64, opts.Values)
			for i := range vals {
				vals[i] = uint64(l.Next())
			}
			return vals
		}},
		// DieHard allocation addresses.
		{"DieHard", func() []uint64 {
			dh := heap.NewDieHard(mem.NewAddressSpace(), rng.NewMarsaglia(opts.Seed+1))
			return allocStream(dh, opts.Values)
		}},
		// Unshuffled base allocator: the control showing the randomness
		// comes from the shuffling layer, not the workload.
		{"segregated", func() []uint64 {
			return allocStream(heap.NewSegregated(mem.NewAddressSpace()), opts.Values)
		}},
	}
	// Shuffled segregated heap at each depth.
	for _, n := range opts.ShuffleN {
		specs = append(specs, rowSpec{fmt.Sprintf("shuffle(N=%d)", n), func() []uint64 {
			sh := heap.NewShuffle(heap.NewSegregated(mem.NewAddressSpace()), rng.NewMarsaglia(opts.Seed+uint64(n)+3), n)
			return allocStream(sh, opts.Values)
		}})
	}

	rows := make([]NISTRow, len(specs))
	pool := NewPool(0)
	err := pool.ForEach(ctx, len(specs), func(_ context.Context, i int) error {
		rows[i] = NISTRow{
			Source:  specs[i].source,
			Results: nist.Suite(nist.BitsFromValues(specs[i].stream(), opts.LoBit, opts.HiBit)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the results with pass/fail at 95% confidence.
func (r *NISTResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "NIST SP 800-22 results on address/index bits %d-%d (%d values per stream)\n", r.LoBit, r.HiBit, r.Values)
	fmt.Fprintf(&sb, "%-16s", "Source")
	for _, res := range r.Rows[0].Results {
		fmt.Fprintf(&sb, " %14s", res.Name)
	}
	sb.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-16s", row.Source)
		for _, res := range row.Results {
			mark := "pass"
			if !res.Pass() {
				mark = "FAIL"
			}
			fmt.Fprintf(&sb, " %8.3f %4s", res.P, mark)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
