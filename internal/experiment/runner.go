// Package experiment orchestrates the paper's evaluation: it compiles
// benchmarks at the requested optimization levels, runs them repeatedly
// under native or STABILIZER runtimes, collects execution-time samples, and
// formats the tables and figures of §5 and §6.
package experiment

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/spec"
)

// Config describes one experimental cell: how a benchmark is built and run.
type Config struct {
	// Scale sizes the workload (1.0 = full evaluation size).
	Scale float64
	// Level is the optimization level (default O2, the paper's baseline).
	Level compiler.OptLevel
	// Stabilizer, if non-nil, runs the program under the STABILIZER
	// runtime with these options (the per-run seed overrides Seed).
	Stabilizer *core.Options
	// RandomLinkOrder permutes the link order per run (the Figure 6
	// baseline); otherwise the identity order is used.
	RandomLinkOrder bool
	// EnvSize is the simulated environment block size in bytes.
	EnvSize uint64
	// Noise is the relative standard deviation of the multiplicative
	// system-noise term applied to cycle counts (OS jitter on a real
	// machine; the simulator is otherwise deterministic). Negative
	// disables it; zero selects DefaultNoise.
	Noise float64
	// MaxSteps caps retired instructions per run (safety net).
	MaxSteps uint64
	// Profile enables per-function cycle attribution in RunResult.Profile.
	Profile bool
}

// DefaultNoise is the default relative sigma of run-to-run system noise.
const DefaultNoise = 0.0025

// Compiled is a benchmark compiled under one configuration, ready to run
// many times with different seeds.
type Compiled struct {
	Bench  spec.Benchmark
	Module *ir.Module
	Cfg    Config
}

// CompileBench builds and compiles the benchmark once for the configuration.
func CompileBench(b spec.Benchmark, cfg Config) (*Compiled, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	src := b.Build(cfg.Scale)
	m, err := compiler.Compile(src, compiler.Options{
		Level:     cfg.Level,
		Stabilize: cfg.Stabilizer != nil,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: compile %s: %w", b.Name, err)
	}
	return &Compiled{Bench: b, Module: m, Cfg: cfg}, nil
}

// RunResult is one execution's measurements.
type RunResult struct {
	Seconds      float64 // noisy simulated wall time (the measured quantity)
	Cycles       uint64  // raw cycle count before noise
	Instructions uint64
	Output       uint64
	// Runtime activity (zero for native runs).
	Rerands          uint64
	Relocations      uint64
	AdaptiveTriggers uint64
	// Counters is the machine's perf-stat snapshot at program exit.
	Counters machine.Counters
	// Profile is per-function exclusive cycles (nil unless Config.Profile).
	Profile []uint64
}

// Run executes the compiled benchmark once with the given seed. The seed
// determines every random choice of the run: link order (if randomized),
// layout randomization, and the noise draw.
func (c *Compiled) Run(seed uint64) (RunResult, error) {
	r := rng.NewMarsaglia(seed ^ 0x5ab1112e)
	as := mem.NewAddressSpaceEnv(c.Cfg.EnvSize)
	// mmap ASLR is on for every run, native or stabilized, as on a stock
	// Linux kernel: large allocations land at a fresh random base each run.
	aslr := r.Split()
	as.SetASLR(aslr.Intn)

	order := compiler.DefaultOrder(len(c.Module.Funcs))
	if c.Cfg.RandomLinkOrder {
		order = compiler.RandomOrder(len(c.Module.Funcs), r.Split())
	}
	img, err := compiler.Link(c.Module, order, as)
	if err != nil {
		return RunResult{}, err
	}
	mach := machine.New(machine.DefaultConfig())
	// Every run gets a fresh physical page assignment, as on a real OS.
	mach.SetPhysicalSeed(r.Next64())

	var rt interp.Runtime
	var st *core.Stabilizer
	if c.Cfg.Stabilizer != nil {
		opts := *c.Cfg.Stabilizer
		opts.Seed = r.Next64()
		var err error
		st, err = core.New(c.Module, mach, as, img.FuncAddrs, img.GlobalAddrs, opts)
		if err != nil {
			return RunResult{}, err
		}
		rt = st
	} else {
		// Native runs get the fine-grained coalescing allocator in the role
		// of libc malloc; STABILIZER's power-of-two base then shows the
		// size-class waste the paper attributes cactusADM's overhead to.
		rt = &interp.NativeRuntime{
			FuncAddrs:   img.FuncAddrs,
			GlobalAddrs: img.GlobalAddrs,
			Stack:       as.StackBase(),
			Heap:        heap.NewTLSF(as, 1<<22),
			Mach:        mach,
		}
	}

	res, err := interp.Run(c.Module, interp.Options{
		Machine:  mach,
		Runtime:  rt,
		MaxSteps: c.Cfg.MaxSteps,
		Profile:  c.Cfg.Profile,
	})
	if err != nil {
		return RunResult{}, fmt.Errorf("experiment: run %s: %w", c.Bench.Name, err)
	}

	noise := c.Cfg.Noise
	if noise == 0 {
		noise = DefaultNoise
	}
	seconds := res.Seconds
	if noise > 0 {
		seconds *= 1 + noise*r.NormFloat64()
	}
	out := RunResult{
		Seconds:      seconds,
		Cycles:       res.Cycles,
		Instructions: res.Instructions,
		Output:       res.Output,
		Counters:     mach.Snapshot(),
		Profile:      res.Profile,
	}
	if st != nil {
		out.Rerands = st.Stats.Rerands
		out.Relocations = st.Stats.Relocations
		out.AdaptiveTriggers = st.Stats.AdaptiveTriggers
	}
	return out, nil
}

// Samples runs the benchmark `runs` times with seeds seedBase, seedBase+1, …
// and returns the measured times in seconds.
func (c *Compiled) Samples(runs int, seedBase uint64) ([]float64, error) {
	out := make([]float64, runs)
	for i := 0; i < runs; i++ {
		r, err := c.Run(seedBase + uint64(i))
		if err != nil {
			return nil, err
		}
		out[i] = r.Seconds
	}
	return out, nil
}
