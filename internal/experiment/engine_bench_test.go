package experiment

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/spec"
)

// benchEngine measures simulator throughput — retired instructions per host
// second — for one engine on the headline benchmark (cactusADM, the paper's
// worst-case workload). The reported instr/s metric is what the CI perf job
// gates on via szgate; this benchmark is the local, pprof-friendly view of
// the same number:
//
//	go test -run xx -bench BenchmarkEngine ./internal/experiment/ -cpuprofile cpu.prof
func benchEngine(b *testing.B, eng interp.Engine) {
	bm, ok := spec.ByName("cactusADM")
	if !ok {
		b.Fatal("cactusADM missing from suite")
	}
	cc, err := CompileBench(bm, Config{Scale: 0.2, Level: compiler.O2, Noise: -1, Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	// One warm-up run pays the per-module lowering and compile caches.
	if _, err := cc.Run(1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		r, err := cc.Run(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		instr += r.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
}

func BenchmarkEngineCompiled(b *testing.B) { benchEngine(b, interp.EngineCompiled) }
func BenchmarkEngineWalk(b *testing.B)     { benchEngine(b, interp.EngineWalk) }
