package campaign

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/store"
)

// testSpec is a small two-benchmark campaign, cheap enough to compute
// several times in one test run.
func testSpec() Spec {
	return Spec{
		Benchmarks: []string{"astar", "bzip2"},
		Config:     experiment.Config{Scale: 0.05},
		Runs:       3,
		Seed:       2013,
	}
}

// newFarm builds a coordinator over a fresh store and serves it over a
// loopback HTTP server.
func newFarm(t *testing.T, opts CoordinatorOptions) (*Coordinator, *store.Store, *Client) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	opts.Store = st
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, st, NewClient(ts.URL)
}

// runWorkers runs n idle-exiting workers against the client and waits for
// all of them to drain the farm.
func runWorkers(t *testing.T, client *Client, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{
			Client:   client,
			Name:     "w" + string(rune('0'+i)),
			Poll:     10 * time.Millisecond,
			IdleExit: true,
			Obs:      obs.NewScope(),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", w.Name, err)
			}
		}()
	}
	wg.Wait()
}

// TestFarmByteIdentity pins the headline property: a campaign's merged
// artifact is byte-identical whether computed locally, by 1 worker, by 4
// concurrent workers, or served entirely from store hits.
func TestFarmByteIdentity(t *testing.T) {
	spec := testSpec()

	// Baseline: the ordinary local collection path.
	opts, err := spec.CollectOptions()
	if err != nil {
		t.Fatalf("collect options: %v", err)
	}
	art, err := bench.Collect(context.Background(), opts)
	if err != nil {
		t.Fatalf("local collect: %v", err)
	}
	baseline, err := art.Encode()
	if err != nil {
		t.Fatalf("encode baseline: %v", err)
	}

	for _, workers := range []int{1, 4} {
		c, _, client := newFarm(t, CoordinatorOptions{Obs: obs.NewScope()})
		resp, err := client.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("%d workers: submit: %v", workers, err)
		}
		if resp.Cells != len(spec.Benchmarks) || resp.StoreHits != 0 {
			t.Fatalf("%d workers: submit cells=%d hits=%d, want %d/0",
				workers, resp.Cells, resp.StoreHits, len(spec.Benchmarks))
		}
		runWorkers(t, client, workers)

		st, err := client.WaitDone(context.Background(), resp.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("%d workers: wait: %v", workers, err)
		}
		if st.State != StateDone {
			t.Fatalf("%d workers: campaign state %q: %+v", workers, st.State, st)
		}
		merged, err := client.Artifact(context.Background(), resp.ID)
		if err != nil {
			t.Fatalf("%d workers: artifact: %v", workers, err)
		}
		if !bytes.Equal(merged, baseline) {
			t.Fatalf("%d workers: merged artifact differs from local collection\nfarm:\n%s\nlocal:\n%s",
				workers, merged, baseline)
		}

		// Resubmitting the identical campaign must be served entirely from
		// the store: done immediately, zero leases, identical bytes.
		resp2, err := client.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("resubmit: %v", err)
		}
		if resp2.StoreHits != resp2.Cells {
			t.Fatalf("resubmit store hits=%d, want all %d cells", resp2.StoreHits, resp2.Cells)
		}
		st2, err := client.Status(context.Background(), resp2.ID)
		if err != nil {
			t.Fatalf("resubmit status: %v", err)
		}
		if st2.State != StateDone || st2.Done != resp2.Cells {
			t.Fatalf("resubmitted campaign not immediately done: %+v", st2)
		}
		merged2, err := client.Artifact(context.Background(), resp2.ID)
		if err != nil {
			t.Fatalf("resubmit artifact: %v", err)
		}
		if !bytes.Equal(merged2, baseline) {
			t.Fatalf("store-hit artifact differs from local collection")
		}
		// The second submission must not have granted any lease.
		if got := c.metrics().Counter("campaign.leases.granted").Value(); got != uint64(resp.Cells) {
			t.Fatalf("leases granted = %d, want %d (resubmission must not dispatch)", got, resp.Cells)
		}
	}
}

// TestFarmEvents checks the campaign event stream is obs-wire JSONL and
// records the submission and completion.
func TestFarmEvents(t *testing.T) {
	_, _, client := newFarm(t, CoordinatorOptions{Obs: obs.NewScope()})
	resp, err := client.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	runWorkers(t, client, 2)
	var buf bytes.Buffer
	if err := client.Events(context.Background(), resp.ID, false, &buf); err != nil {
		t.Fatalf("events: %v", err)
	}
	log := buf.String()
	for _, want := range []string{
		`"msg":"campaign submitted"`,
		`"msg":"lease granted"`,
		`"msg":"cell computed"`, // worker telemetry folded into the stream
		`"msg":"campaign complete"`,
	} {
		if !strings.Contains(log, want) {
			t.Fatalf("event log missing %s:\n%s", want, log)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(log), "\n") {
		if !strings.HasPrefix(line, `{"`) || !strings.HasSuffix(line, "}") {
			t.Fatalf("event line is not a JSON object: %q", line)
		}
	}
}

// fakeResults builds deterministic placeholder results for scheduling
// tests that never assemble an artifact.
func fakeResults(n int) []experiment.RunResult {
	out := make([]experiment.RunResult, n)
	for i := range out {
		out[i] = experiment.RunResult{Seconds: float64(i) + 1, Cycles: uint64(i) + 10}
	}
	return out
}

// TestWorkerErrorRequeuesThenFails drives a cell through the retry cap:
// each reported failure requeues until MaxAttempts, then the campaign
// fails.
func TestWorkerErrorRequeuesThenFails(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	c, err := NewCoordinator(CoordinatorOptions{Store: st, MaxAttempts: 3, Obs: obs.NewScope()})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	spec := testSpec()
	spec.Benchmarks = []string{"astar"}
	id, _, _, err := c.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	for attempt := 1; attempt <= 3; attempt++ {
		resp := c.Acquire("flaky")
		if resp.Lease == nil {
			t.Fatalf("attempt %d: no lease granted", attempt)
		}
		if resp.Lease.Attempt != attempt {
			t.Fatalf("lease attempt = %d, want %d", resp.Lease.Attempt, attempt)
		}
		if err := c.Complete(resp.Lease.ID, CompleteRequest{Worker: "flaky", Error: "boom"}); err != nil {
			t.Fatalf("attempt %d: complete: %v", attempt, err)
		}
		status, _ := c.Status(id)
		if attempt < 3 {
			if status.Pending != 1 {
				t.Fatalf("attempt %d: cell not requeued: %+v", attempt, status)
			}
		} else if status.State != StateFailed || status.Failed != 1 {
			t.Fatalf("campaign not failed after %d attempts: %+v", attempt, status)
		}
	}
	if got := c.metrics().Counter("campaign.requeues").Value(); got != 2 {
		t.Fatalf("requeues = %d, want 2", got)
	}
	// A failed farm reports no work remaining, so idle-exit workers drain.
	if resp := c.Acquire("flaky"); resp.Lease != nil || resp.Remaining != 0 {
		t.Fatalf("failed campaign still dispatches: %+v", resp)
	}
}

// TestLeaseExpiryRequeues advances an injected clock past the lease TTL
// and checks the cell is requeued for another worker — and that the
// original worker's late completion is still accepted.
func TestLeaseExpiryRequeues(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	clock := time.Unix(1700000000, 0)
	c, err := NewCoordinator(CoordinatorOptions{
		Store: st, LeaseTTL: 30 * time.Second, Obs: obs.NewScope(),
		now: func() time.Time { return clock },
	})
	if err != nil {
		t.Fatalf("new coordinator: %v", err)
	}
	spec := testSpec()
	spec.Benchmarks = []string{"astar"}
	id, _, _, err := c.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	first := c.Acquire("slow")
	if first.Lease == nil {
		t.Fatalf("no lease granted")
	}
	// Heartbeats extend the deadline.
	clock = clock.Add(20 * time.Second)
	if !c.Heartbeat(first.Lease.ID) {
		t.Fatalf("in-TTL heartbeat rejected")
	}
	// Silence past the TTL expires the lease and requeues the cell.
	clock = clock.Add(31 * time.Second)
	second := c.Acquire("fast")
	if second.Lease == nil {
		t.Fatalf("expired cell not re-leased")
	}
	if second.Lease.Attempt != 2 {
		t.Fatalf("re-lease attempt = %d, want 2", second.Lease.Attempt)
	}
	if c.Heartbeat(first.Lease.ID) {
		t.Fatalf("expired lease accepted a heartbeat")
	}
	if got := c.metrics().Counter("campaign.heartbeats.missed").Value(); got != 1 {
		t.Fatalf("heartbeats.missed = %d, want 1", got)
	}

	// The slow worker finishes anyway: its results are deterministic, so the
	// late completion resolves the cell.
	if err := c.Complete(first.Lease.ID, CompleteRequest{Worker: "slow", Results: fakeResults(spec.Runs)}); err != nil {
		t.Fatalf("late completion rejected: %v", err)
	}
	status, _ := c.Status(id)
	if status.State != StateDone {
		t.Fatalf("campaign not done after late completion: %+v", status)
	}
	// The second worker's duplicate completion is a no-op, not an error.
	if err := c.Complete(second.Lease.ID, CompleteRequest{Worker: "fast", Results: fakeResults(spec.Runs)}); err != nil {
		t.Fatalf("duplicate completion rejected: %v", err)
	}
	if got := c.metrics().Counter("campaign.cells.completed").Value(); got != 1 {
		t.Fatalf("cells.completed = %d, want 1 (duplicate must not double-count)", got)
	}
}

// TestSpecValidation covers the farm's submission guards.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no benchmarks", func(s *Spec) { s.Benchmarks = nil }},
		{"duplicate benchmark", func(s *Spec) { s.Benchmarks = []string{"astar", "astar"} }},
		{"unknown benchmark", func(s *Spec) { s.Benchmarks = []string{"nonesuch"} }},
		{"zero runs", func(s *Spec) { s.Runs = 0 }},
		{"throughput", func(s *Spec) { s.Config.Throughput = true }},
		{"profile", func(s *Spec) { s.Config.Profile = true }},
	}
	for _, tc := range cases {
		spec := testSpec()
		tc.mut(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
		}
	}
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestCellsMatchLocalDerivation checks the coordinator shards with exactly
// the local collection's seed derivation and checkpoint key.
func TestCellsMatchLocalDerivation(t *testing.T) {
	spec := testSpec()
	cells := spec.Cells()
	if len(cells) != len(spec.Benchmarks) {
		t.Fatalf("got %d cells for %d benchmarks", len(cells), len(spec.Benchmarks))
	}
	for i, cell := range cells {
		name := spec.Benchmarks[i]
		if cell.SeedBase != bench.SeedBase(spec.Seed, name) {
			t.Errorf("%s: seed base %d != bench.SeedBase", name, cell.SeedBase)
		}
		if want := experiment.CellKey(name, spec.Config, spec.Runs, cell.SeedBase); cell.CellKey != want {
			t.Errorf("%s: cell key %q != experiment.CellKey %q", name, cell.CellKey, want)
		}
		if !strings.HasPrefix(cell.StoreKey, cell.CellKey) {
			t.Errorf("%s: store key %q does not extend cell key", name, cell.StoreKey)
		}
	}
}
