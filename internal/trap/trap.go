// Package trap defines the typed program-fault taxonomy shared by the
// simulated substrate (internal/mem, internal/heap, internal/interp).
//
// A trap is a fault the *program under measurement* triggered — a double
// free, an out-of-bounds access, allocator exhaustion. Before this package
// existed those conditions panicked inside the allocators, killing the
// whole experiment process; now they surface as structured errors the
// interpreter converts into program faults. That distinction is what lets
// the semantic-invariance oracle (internal/oracle) assert
// *fault-equivalence*: a program that traps must trap with the same Kind
// at the same retired-instruction index under every layout randomization,
// exactly as its outputs must match when it does not trap.
package trap

import "fmt"

// Kind classifies a program fault.
type Kind uint8

const (
	// DoubleFree is a free of a pointer that is already in the freed state.
	DoubleFree Kind = iota + 1
	// UnknownFree is a free of an address the allocator never issued.
	UnknownFree
	// InvalidFree is a free through a value that is not a heap pointer, or
	// through an interior pointer.
	InvalidFree
	// UseAfterFree is an access through a pointer whose object was freed.
	UseAfterFree
	// OutOfBounds is an access outside an object's, global's, or stack
	// slot's extent.
	OutOfBounds
	// InvalidPointer is a heap access through a value that is not a heap
	// pointer, or an attempt to make a heap pointer architecturally
	// observable (sinking it would leak layout into program output).
	InvalidPointer
	// OutOfMemory is allocator or address-space exhaustion.
	OutOfMemory
	// InvalidMap is a simulated mmap with an unknown placement flag.
	InvalidMap
)

var kindNames = map[Kind]string{
	DoubleFree:     "double-free",
	UnknownFree:    "unknown-free",
	InvalidFree:    "invalid-free",
	UseAfterFree:   "use-after-free",
	OutOfBounds:    "out-of-bounds",
	InvalidPointer: "invalid-pointer",
	OutOfMemory:    "out-of-memory",
	InvalidMap:     "invalid-map",
}

// String returns the kind's report spelling.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("trap-kind(%d)", uint8(k))
}

// TrapError is a structured program fault. Allocators and the address
// space construct it with Kind and Detail; the interpreter stamps Step and
// Fn when the fault crosses into program execution, pinning the fault to a
// layout-invariant retired-instruction index.
type TrapError struct {
	// Kind classifies the fault.
	Kind Kind
	// Step is the retired-instruction counter at the fault (0 until the
	// interpreter stamps it; allocator-level unit tests see 0).
	Step uint64
	// Fn names the function that was executing ("" outside the interpreter).
	Fn string
	// Detail is the human-readable specifics (addresses, sizes, handles).
	Detail string
}

// New builds a TrapError with a formatted detail string.
func New(kind Kind, format string, args ...any) *TrapError {
	return &TrapError{Kind: kind, Detail: fmt.Sprintf(format, args...)}
}

func (e *TrapError) Error() string {
	s := "trap: " + e.Kind.String()
	if e.Fn != "" {
		s += " in " + e.Fn
	}
	if e.Step != 0 {
		s += fmt.Sprintf(" at step %d", e.Step)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Is reports kind equality, so errors.Is(err, &TrapError{Kind: k}) matches
// any trap of kind k regardless of step, function, or detail.
func (e *TrapError) Is(target error) bool {
	t, ok := target.(*TrapError)
	return ok && t.Kind == e.Kind
}

// AsTrap unwraps err to a *TrapError, or nil if it is not a program fault.
func AsTrap(err error) *TrapError {
	for err != nil {
		if t, ok := err.(*TrapError); ok {
			return t
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil
		}
		err = u.Unwrap()
	}
	return nil
}
