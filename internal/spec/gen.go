// Package spec defines the 18-benchmark synthetic suite standing in for the
// SPEC CPU2006 subset the paper evaluates (§5): the C benchmarks astar,
// bzip2, gcc, gobmk, h264ref, hmmer, lbm, libquantum, mcf, milc, perlbench,
// sjeng, sphinx3 and the Fortran benchmarks cactusADM, gromacs, namd, wrf,
// zeusmp.
//
// Each synthetic benchmark is a real program in the reproduction's IR — it
// computes actual values whose checksum must be layout-invariant — whose
// structure encodes the traits the paper calls out for its namesake:
// function counts (gobmk, gcc, and perlbench have many functions, §5.2),
// heap behaviour (cactusADM allocates large arrays at startup, §5.2 and §4),
// floating-point and alignment sensitivity (hmmer, §5.1), pointer chasing
// (mcf), and so on.
//
// Kernels are emitted unrolled and wide on purpose: layout effects on a real
// machine come from hot code bodies of tens of kilobytes competing for
// I-cache sets and from hundreds of branch sites competing for predictor
// slots. A ten-instruction loop has no layout luck to sample; a four-way
// unrolled kernel with dozens of distinct branch sites does.
package spec

import (
	"fmt"

	"repro/internal/ir"
)

// lcgStep emits x' = x*6364136223846793005 + 1442695040888963407, the
// deterministic in-program source of "random" data every benchmark uses for
// data-dependent control flow.
func lcgStep(f *ir.FuncBuilder, x ir.Reg) ir.Reg {
	return f.Add(f.Mul(x, f.ConstI(6364136223846793005)), f.ConstI(1442695040888963407))
}

// addHashChain adds n integer hash functions (each a few mixing rounds,
// ~150 bytes of code) and returns their indices. Call-heavy benchmarks route
// work through them; their number inflates the function count (and, under
// STABILIZER, the number of stack pad tables).
func addHashChain(mb *ir.ModuleBuilder, prefix string, n int) []int32 {
	idx := make([]int32, n)
	for i := 0; i < n; i++ {
		f := mb.Func(fmt.Sprintf("%s_h%d", prefix, i), 1)
		v := f.Mov(f.Param(0))
		// Four mixing rounds with per-function constants.
		for r := 0; r < 4; r++ {
			m1 := f.Mul(v, f.ConstI(int64(2654435761+i*2+r*977)))
			switch (i + r) % 4 {
			case 0:
				v = f.Xor(m1, f.Shr(m1, f.ConstI(13)))
			case 1:
				v = f.Add(m1, f.Shr(m1, f.ConstI(int64(7+(i+r)%5))))
			case 2:
				v = f.Xor(f.Shl(m1, f.ConstI(3)), f.Shr(m1, f.ConstI(17)))
			default:
				v = f.Sub(f.Xor(m1, f.ConstI(int64(i)*0x9e37+int64(r))), f.Shr(m1, f.ConstI(11)))
			}
		}
		f.Ret(v)
		idx[i] = f.Index()
	}
	return idx
}

// sweepUnroll is the unroll factor of addArraySweep bodies.
const sweepUnroll = 8

// addArraySweep adds a function walking a global array with a given stride,
// eight elements per iteration (so one call to the sweep covers
// 8*n elements). Regular array codes (lbm, libquantum, bzip2) are built
// from these; the unrolled body is ~0.5 KiB of hot code.
func addArraySweep(mb *ir.ModuleBuilder, name string, g int32, words, stride int64) int32 {
	f := mb.Func(name, 1)
	n := f.Param(0)
	acc := f.ConstI(0)
	pos := f.ConstI(0)
	f.Loop(n, func(i ir.Reg) {
		p := f.Mov(pos)
		for u := 0; u < sweepUnroll; u++ {
			v := f.LoadG(g, 0, p)
			f.StoreG(g, 0, p, f.Add(v, f.Xor(i, f.ConstI(int64(u)))))
			mixed := f.Add(v, f.Add(p, f.Shr(v, f.ConstI(int64(u%7+1)))))
			f.MovTo(acc, f.Xor(f.Mul(acc, f.ConstI(131)), mixed))
			f.MovTo(p, f.Rem(f.Add(p, f.ConstI(stride)), f.ConstI(words)))
		}
		f.MovTo(pos, p)
	})
	f.Ret(acc)
	return f.Index()
}

// addPointerChase adds two functions: one that builds n 32-byte heap nodes
// linked in a scrambled (cache-hostile) order — real mcf arcs have no
// allocation-order locality — and one that chases the links four nodes per
// iteration. The build function returns a node-table pointer whose first
// entry is the chase's start node.
func addPointerChase(mb *ir.ModuleBuilder, prefix string) (build, chase int32) {
	b := mb.Func(prefix+"_build", 1)
	n := b.Param(0)
	table := b.Alloc(1 << 20) // up to 128k node slots
	b.Loop(n, func(j ir.Reg) {
		node := b.Alloc(32)
		b.StoreH(node, 8, ir.NoReg, b.Add(j, b.ConstI(1)))
		b.StoreH(node, 16, ir.NoReg, b.Xor(j, b.ConstI(0x5a5a)))
		b.StoreH(table, 0, j, node)
	})
	// Link j -> (j*40503 + 7) mod n: a fixed scramble, identical under
	// every layout.
	b.Loop(n, func(j ir.Reg) {
		node := b.LoadH(table, 0, j)
		k := b.Rem(b.Add(b.Mul(j, b.ConstI(40503)), b.ConstI(7)), n)
		b.StoreH(node, 0, ir.NoReg, b.LoadH(table, 0, k))
	})
	b.Ret(table)

	c := mb.Func(prefix+"_chase", 2)
	p := c.LoadH(c.Param(0), 0, ir.NoReg)
	steps := c.Param(1)
	acc := c.ConstI(0)
	c.Loop(steps, func(i ir.Reg) {
		for u := 0; u < 4; u++ {
			v := c.LoadH(p, 8, ir.NoReg)
			w := c.LoadH(p, 16, ir.NoReg)
			c.MovTo(acc, c.Add(acc, c.Xor(v, c.Shr(w, c.ConstI(int64(u+1))))))
			c.MovTo(p, c.LoadH(p, 0, ir.NoReg))
		}
	})
	c.Ret(acc)
	return b.Index(), c.Index()
}

// addInterleavedStencil adds a kernel reading one element from each of k
// grids per step (cactusADM's many-fields-per-grid-point pattern). With the
// grids' base addresses drawn by the allocator, the number that collide in
// the same cache sets is per-run placement luck — luck that persists for the
// whole run because the grids are never freed.
func addInterleavedStencil(mb *ir.ModuleBuilder, name string, k int) int32 {
	f := mb.Func(name, 4) // (table, base, words, iters)
	table, base, words, iters := f.Param(0), f.Param(1), f.Param(2), f.Param(3)
	acc := f.ConstF(0.5)
	f.Loop(iters, func(it ir.Reg) {
		idx := f.Rem(it, words)
		for j := 0; j < k; j++ {
			g := f.LoadH(table, int64(j)*8, base)
			v := f.LoadHF(g, 0, idx)
			// Contractive update keeps values bounded and layout-free.
			nacc := f.FAdd(f.FMul(acc, f.ConstF(0.5)), f.FMul(v, f.ConstF(0.25)))
			f.MovTo(acc, nacc)
			f.StoreHF(g, 0, idx, f.FAdd(f.FMul(v, f.ConstF(0.75)), f.FMul(nacc, f.ConstF(0.125))))
		}
	})
	f.Ret(f.F2I(f.FMul(acc, f.ConstF(512))))
	return f.Index()
}

// addFPKernel adds a floating-point stencil over a heap array: a daxpy-like
// sweep, four elements per iteration, with constant coefficients (which
// become relocation-table globals under STABILIZER) and int/float
// conversions (outlined under STABILIZER).
func addFPKernel(mb *ir.ModuleBuilder, name string, misalign bool) int32 {
	f := mb.Func(name, 3) // (ptr, words, iters)
	ptr, words, iters := f.Param(0), f.Param(1), f.Param(2)
	off := int64(0)
	if misalign {
		// Alignment-sensitive FP: every second element sits on an odd
		// 8-byte boundary relative to 16 (hmmer's trait, §5.1).
		off = 8
	}
	acc := f.ConstF(0)
	f.Loop(iters, func(it ir.Reg) {
		idx := f.Rem(f.Mul(it, f.ConstI(4)), f.Sub(words, f.ConstI(8)))
		for u := 0; u < 4; u++ {
			a := f.LoadHF(ptr, int64(u)*8, idx)
			bv := f.LoadHF(ptr, off+int64(u)*8, idx)
			v := f.FAdd(f.FMul(a, f.ConstF(0.7319+float64(u)*0.01)), f.FMul(bv, f.ConstF(0.2681)))
			f.StoreHF(ptr, int64(u)*8, idx, v)
			f.MovTo(acc, f.FAdd(f.FMul(acc, f.ConstF(0.5)), v))
		}
	})
	// Convert to a stable integer digest: quantize.
	q := f.F2I(f.FMul(acc, f.ConstF(4096)))
	f.Ret(q)
	return f.Index()
}

// addBranchMaze adds a branchy decision kernel (sjeng/gobmk-style): `width`
// separate chain functions, each a run of `depth` biased data-dependent
// branches, called in turn by a driver. The branches are biased (≈81/19)
// with per-site direction, so a bimodal predictor handles each well in
// isolation — but when two opposite-bias sites from *different* functions
// alias onto one counter, they thrash it. Which sites collide depends on
// where the placement puts each chain function, which is exactly the branch
// aliasing the paper credits for code-randomization effects (§5.2). The
// chains must be separate functions: sites within one function keep fixed
// relative offsets, so only cross-function placement can change aliasing.
func addBranchMaze(mb *ir.ModuleBuilder, name string, depth, width int) int32 {
	chains := make([]int32, width)
	for w := 0; w < width; w++ {
		c := mb.Func(fmt.Sprintf("%s_c%d", name, w), 1)
		bit := c.Mov(c.Param(0))
		acc := c.ConstI(int64(w))
		for d := 0; d < depth; d++ {
			nib := c.And(c.Shr(bit, c.ConstI(int64((d*3+w*5)%41+1))), c.ConstI(15))
			var cond ir.Reg
			if (d+w)%2 == 0 {
				cond = c.CmpLT(nib, c.ConstI(13)) // mostly taken
			} else {
				cond = c.CmpLT(c.ConstI(12), nib) // mostly not taken
			}
			c.If(cond, func() {
				c.MovTo(acc, c.Add(acc, c.ConstI(int64(d*7+w*3+1))))
			}, func() {
				c.MovTo(acc, c.Xor(acc, c.ConstI(int64(d*13+w*11+5))))
			})
		}
		c.Ret(acc)
		chains[w] = c.Index()
	}

	f := mb.Func(name, 2) // (seed, rounds)
	seed, rounds := f.Param(0), f.Param(1)
	x := f.Mov(seed)
	acc := f.ConstI(0)
	f.Loop(rounds, func(i ir.Reg) {
		f.MovTo(x, lcgStep(f, x))
		for _, chain := range chains {
			f.MovTo(acc, f.Add(acc, f.Call(chain, x)))
		}
	})
	f.Ret(acc)
	return f.Index()
}

// addDispatch adds a dispatcher that calls one of the given functions per
// iteration, selected by the LCG — an indirect-flavored call pattern
// (perlbench/gcc-style interpreter loops) whose selection chain is itself a
// row of predictor-hungry branch sites.
func addDispatch(mb *ir.ModuleBuilder, name string, targets []int32) int32 {
	f := mb.Func(name, 2) // (seed, rounds)
	seed, rounds := f.Param(0), f.Param(1)
	x := f.Mov(seed)
	acc := f.ConstI(0)
	f.Loop(rounds, func(i ir.Reg) {
		f.MovTo(x, lcgStep(f, x))
		sel := f.Rem(f.Shr(x, f.ConstI(33)), f.ConstI(int64(len(targets))))
		cur := f.Mov(acc)
		for ti, target := range targets {
			cond := f.CmpEQ(sel, f.ConstI(int64(ti)))
			f.If(cond, func() {
				f.MovTo(cur, f.Add(cur, f.Call(target, x)))
			}, nil)
		}
		f.MovTo(acc, cur)
	})
	f.Ret(acc)
	return f.Index()
}

// addHeapChurn adds a function performing alloc/free churn across several
// size classes with short object lifetimes — the generational behaviour §4
// relies on for heap re-randomization to bite.
func addHeapChurn(mb *ir.ModuleBuilder, name string, sizes []int64) int32 {
	f := mb.Func(name, 2) // (seed, rounds)
	seed, rounds := f.Param(0), f.Param(1)
	x := f.Mov(seed)
	acc := f.ConstI(0)
	f.Loop(rounds, func(i ir.Reg) {
		f.MovTo(x, lcgStep(f, x))
		for _, size := range sizes {
			p := f.Alloc(size)
			words := size / 8
			f.StoreH(p, 0, ir.NoReg, x)
			f.StoreH(p, (words-1)*8, ir.NoReg, i)
			a := f.LoadH(p, 0, ir.NoReg)
			bv := f.LoadH(p, (words-1)*8, ir.NoReg)
			f.MovTo(acc, f.Add(acc, f.Xor(a, bv)))
			f.Free(p)
		}
	})
	f.Ret(acc)
	return f.Index()
}

// addStackHeavy adds a function with a large frame-resident buffer that it
// fills and reduces per call, four slots per iteration — stack-layout
// sensitive work (gcc/perlbench style recursion over big frames).
func addStackHeavy(mb *ir.ModuleBuilder, name string, bufWords int64) int32 {
	f := mb.Func(name, 1)
	x := f.Param(0)
	buf := f.Slot("buf", uint64(bufWords*8))
	v := f.Mov(x)
	f.LoopN(bufWords/4, func(i ir.Reg) {
		base := f.Mul(i, f.ConstI(4))
		for u := 0; u < 4; u++ {
			f.MovTo(v, lcgStep(f, v))
			f.StoreS(buf, int64(u)*8, base, v)
		}
	})
	acc := f.ConstI(0)
	f.LoopN(bufWords/4, func(i ir.Reg) {
		base := f.Mul(i, f.ConstI(4))
		for u := 0; u < 4; u++ {
			f.MovTo(acc, f.Xor(acc, f.LoadS(buf, int64(u)*8, base)))
		}
	})
	f.Ret(acc)
	return f.Index()
}

// addMatMulFP adds a small dense float matrix multiply over one heap
// allocation holding A, B, and C back to back (namd/gromacs-style compute).
func addMatMulFP(mb *ir.ModuleBuilder, name string, dim int64) int32 {
	f := mb.Func(name, 1) // (ptr) -> digest
	ptr := f.Param(0)
	n := f.ConstI(dim)
	nn := f.Mul(n, n)
	// C[i][j] += A[i][k] * B[k][j]; matrices are row-major, consecutive.
	f.LoopN(dim, func(i ir.Reg) {
		rowA := f.Mul(i, n)
		rowC := f.Add(f.Add(nn, nn), rowA)
		f.LoopN(dim, func(j ir.Reg) {
			acc := f.ConstF(0)
			f.LoopN(dim/2, func(k2 ir.Reg) {
				k := f.Mul(k2, f.ConstI(2))
				for u := int64(0); u < 2; u++ {
					a := f.LoadHF(ptr, u*8, f.Add(rowA, k))
					b := f.LoadHF(ptr, 0, f.Add(nn, f.Add(f.Mul(f.Add(k, f.ConstI(u)), n), j)))
					f.MovTo(acc, f.FAdd(acc, f.FMul(a, b)))
				}
			})
			f.StoreHF(ptr, 0, f.Add(rowC, j), acc)
		})
	})
	// Digest the C diagonal.
	d := f.ConstF(0)
	f.LoopN(dim, func(i ir.Reg) {
		c := f.LoadHF(ptr, 0, f.Add(f.Add(nn, nn), f.Add(f.Mul(i, n), i)))
		f.MovTo(d, f.FAdd(d, c))
	})
	f.Ret(f.F2I(f.FMul(d, f.ConstF(1024))))
	return f.Index()
}
