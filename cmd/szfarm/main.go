// Command szfarm is the distributed benchmarking farm: a coordinator that
// shards a campaign's cells across worker processes over HTTP/JSON, backed
// by the same content-addressed result store `szgate run -store` writes.
// Every completed cell lands in the store, so a cell is computed once ever
// — across workers, campaigns, and resubmissions — and a repeated campaign
// is served entirely from store hits.
//
// Usage:
//
//	szfarm serve    -store dir [-addr :8713] [-identity name] [-coord-ttl 15s]
//	                [-lease-ttl 30s] [-max-attempts 3] [-max-pending n]
//	                [-tenant-weights t=w,...] [-tenant-max-inflight n]
//	                [-tenant-max-pending n] [-event-cap n]
//	szfarm work     -server url[,url...] [-name id] [-j n] [-poll d] [-idle-exit]
//	                [-metrics-addr :9713]
//	szfarm submit   -server url[,url...] [-runs n] [-scale f] [-seed n]
//	                [-level 0..3] [-stabilize] [-noise f]
//	                [-engine compiled|walk] [-bench name[,name...]] [-cxx]
//	                [-commit sha] [-tenant name] [-wait [-o artifact.json]]
//	szfarm status   -server url[,url...] [-id cNNNN] [-json]
//	szfarm events   -server url -id cNNNN [-follow]
//	szfarm artifact -server url -id cNNNN [-o artifact.json] [-provenance]
//	szfarm timeline (-server url | -store dir) -id cNNNN [-o trace.json]
//	szfarm gc       -store dir [-dry-run] [-force] [-json]
//
// Observability: every coordinator (active or standby) serves Prometheus
// text metrics on GET /metrics, and workers do the same on -metrics-addr.
// Each campaign carries a trace ID minted at submission and journaled with
// the campaign state, so one distributed trace spans lease grant → compute
// → completion even across a coordinator failover; leases and completions
// carry X-Sz-Trace/X-Sz-Span headers. `szfarm timeline` reconstructs a
// campaign's durable event journal into a Chrome trace (load it in
// Perfetto) plus a critical-path/straggler report, and `szfarm artifact
// -provenance` decorates the merged artifact with each cell's measurement
// pedigree — a non-golden overlay that strips back to the golden bytes.
//
// Campaign artifacts are assembled by the ordinary collection path in
// store-only mode, so they are byte-identical to what `szgate run` with the
// same flags would have written — no matter how many workers computed the
// cells or how many came from prior store hits.
//
// The coordinator persists campaign state under <store>/campaigns/ on every
// transition: a crashed (even kill -9'd) coordinator restarted against the
// same -store resumes its open campaigns with no lost or double-counted
// cells. Two serve processes may share one -store for high availability:
// they race for the store's coordination lease, exactly one is active at a
// time, and a killed active is replaced by its standby within ~2× the
// -coord-ttl — clients and workers given the comma-separated server list
// fail over automatically, and the deposed process's late writes are
// rejected by its stale fencing epoch. Chaos jobs arm protocol fault
// injection through the environment: SZ_FAULTS="site:kind[:nth[:repeat]];..."
// (sites net.*, coord.*, lease.*; kinds drop, dup, 5xx, torn, error,
// delay=<dur>), seeded by SZ_FAULT_SEED.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if err := armFaults(); err != nil {
		fmt.Fprintf(os.Stderr, "szfarm: %v\n", err)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "work":
		err = cmdWork(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "events":
		err = cmdEvents(os.Args[2:])
	case "artifact":
		err = cmdArtifact(os.Args[2:])
	case "timeline":
		err = cmdTimeline(os.Args[2:])
	case "gc":
		err = cmdGC(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "szfarm: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "szfarm: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `szfarm — distributed benchmarking farm over a content-addressed store

  szfarm serve     run the coordinator (owns the result store)
  szfarm work      run a worker against a coordinator
  szfarm submit    submit a campaign; -wait fetches the merged artifact
  szfarm status    show campaign progress
  szfarm events    print a campaign's JSONL event log
  szfarm artifact  fetch a completed campaign's merged artifact
  szfarm timeline  reconstruct a campaign's execution timeline (Chrome trace)
  szfarm gc        evict stale blocks from a result store

Run 'szfarm <subcommand> -h' for flags. Set SZ_FAULTS (and SZ_FAULT_SEED)
to arm protocol fault injection for chaos testing.
`)
}

// armFaults activates the process-wide fault-injection plan described by
// $SZ_FAULTS ("site:kind[:nth[:repeat]];...", see internal/faultinject), so
// chaos jobs can arm unmodified szfarm binaries through the environment.
func armFaults() error {
	planSpec := os.Getenv("SZ_FAULTS")
	if planSpec == "" {
		return nil
	}
	faults, err := faultinject.ParseFaults(planSpec)
	if err != nil {
		return fmt.Errorf("SZ_FAULTS: %w", err)
	}
	seed := uint64(1)
	if s := os.Getenv("SZ_FAULT_SEED"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return fmt.Errorf("SZ_FAULT_SEED: %w", err)
		}
		seed = n
	}
	faultinject.Activate(seed, faults...)
	fmt.Fprintf(os.Stderr, "szfarm: fault injection armed: %s (seed %d)\n", planSpec, seed)
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("szfarm serve", flag.ExitOnError)
	storeDir := fs.String("store", "", "result store directory (required; created if missing)")
	addr := fs.String("addr", ":8713", "listen address")
	identity := fs.String("identity", "", "coordinator identity in the coordination lease and logs (default: hostname:addr)")
	coordTTL := fs.Duration("coord-ttl", 15*time.Second, "coordination-lease TTL; a standby takes over this long after the active's last heartbeat")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "lease expiry without a heartbeat; dead workers' cells requeue after this")
	maxAttempts := fs.Int("max-attempts", 3, "lease attempts per cell before the campaign fails")
	maxPending := fs.Int("max-pending", 0, "open-cell bound before submissions shed with 429 (0 = default 10000, negative disables)")
	tenantWeights := fs.String("tenant-weights", "", "weighted-round-robin tenant shares, e.g. ci=5,default=1")
	tenantMaxInflight := fs.Int("tenant-max-inflight", 0, "max leased cells per tenant (0 = unlimited)")
	tenantMaxPending := fs.Int("tenant-max-pending", 0, "open-cell bound per tenant before that tenant's submissions shed with 429 (0 = unlimited)")
	eventCap := fs.Int("event-cap", 0, "per-campaign event ring size in lines (0 = default 4096)")
	fs.Parse(args)
	if *storeDir == "" {
		return fmt.Errorf("serve needs -store")
	}
	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		return err
	}
	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	if *identity == "" {
		host, herr := os.Hostname()
		if herr != nil {
			host = "szfarm"
		}
		*identity = host + *addr
	}
	scope := obs.NewScope()
	scope.Log = obs.NewLogger(os.Stderr, obs.LevelInfo)
	// Store counters (hits, writes, GC) share the coordinator's registry so
	// one /metrics scrape covers the whole process.
	st.Obs = scope
	ha, err := campaign.NewHAServer(campaign.HAOptions{
		Coordinator: campaign.CoordinatorOptions{
			Store: st, LeaseTTL: *leaseTTL, MaxAttempts: *maxAttempts,
			MaxPendingCells: *maxPending, EventLogCap: *eventCap, Obs: scope,
			TenantWeights:        weights,
			MaxInflightPerTenant: *tenantMaxInflight,
			MaxPendingPerTenant:  *tenantMaxPending,
		},
		Identity: *identity,
		CoordTTL: *coordTTL,
		Obs:      scope,
	})
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: *addr, Handler: ha}
	// Unlike a collection sweep, the coordinator has no in-process compute
	// to drain — workers post in-flight completions against the store, and
	// everything else is recoverable — so the first signal shuts down. The
	// election loop releases the coordination lease on the way out, letting
	// a standby promote without waiting out the TTL.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	electionDone := make(chan error, 1)
	go func() { electionDone <- ha.Run(ctx) }()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	fmt.Fprintf(os.Stderr, "szfarm: %s serving on %s, store %s (%d blocks), coordination lease ttl %s\n",
		*identity, *addr, *storeDir, st.Len(), *coordTTL)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		stop()
		<-electionDone
		return err
	}
	return <-electionDone
}

// parseTenantWeights reads "tenant=weight,..." into the scheduler's weight
// map.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant-weights: %q is not tenant=weight", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tenant-weights: %q needs a positive integer weight", pair)
		}
		weights[name] = w
	}
	return weights, nil
}

func cmdWork(args []string) error {
	fs := flag.NewFlagSet("szfarm work", flag.ExitOnError)
	server := fs.String("server", "", "coordinator base URL(s), comma-separated for failover (required)")
	name := fs.String("name", "", "worker name in leases and events (default: hostname)")
	jobs := fs.Int("j", 0, "parallel runs within a cell (0 = $SZ_PARALLEL or GOMAXPROCS)")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle poll interval")
	idleExit := fs.Bool("idle-exit", false, "exit when the farm reports no remaining work")
	metricsAddr := fs.String("metrics-addr", "", "serve worker metrics (GET /metrics, Prometheus text) on this address")
	fs.Parse(args)
	if *server == "" {
		return fmt.Errorf("work needs -server")
	}
	if *name == "" {
		if host, err := os.Hostname(); err == nil {
			*name = host
		} else {
			*name = "worker"
		}
	}
	experiment.SetParallelism(*jobs)
	scope := obs.NewScope()
	scope.Log = obs.NewLogger(os.Stderr, obs.LevelInfo)
	ctx, stop := experiment.NotifyShutdown(context.Background(), os.Stderr)
	defer stop()
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", scope.Metrics.PromHandler())
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"ok": true, "role": "worker"}`)
		})
		go func() {
			// Best-effort: a worker whose metrics port is taken keeps
			// computing; the scrape is lost, not the work.
			if merr := http.ListenAndServe(*metricsAddr, mux); merr != nil {
				scope.Log.Warn("worker metrics listener failed", obs.F("addr", *metricsAddr), obs.F("err", merr.Error()))
			}
		}()
		fmt.Fprintf(os.Stderr, "szfarm: worker metrics on %s\n", *metricsAddr)
	}
	w := &campaign.Worker{
		Client:   campaign.NewClient(*server),
		Name:     *name,
		Poll:     *poll,
		IdleExit: *idleExit,
		Obs:      scope,
	}
	err := w.Run(ctx)
	if errors.Is(err, context.Canceled) {
		return nil // clean signal-driven exit
	}
	return err
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("szfarm submit", flag.ExitOnError)
	server := fs.String("server", "", "coordinator base URL(s), comma-separated for failover (required)")
	runs := fs.Int("runs", 20, "runs per benchmark")
	scale := fs.Float64("scale", 1.0, "workload scale")
	seed := fs.Uint64("seed", 2013, "master seed")
	level := fs.Int("level", 2, "optimization level (0-3)")
	stabilize := fs.Bool("stabilize", false, "run under full STABILIZER randomization")
	noise := fs.Float64("noise", 0, "relative system-noise sigma (0 = default, negative disables)")
	engine := fs.String("engine", "", "interpreter engine: compiled (default) or walk")
	benches := fs.String("bench", "", "comma-separated benchmark subset (default: all)")
	cxx := fs.Bool("cxx", false, "include the five C++ benchmarks")
	commit := fs.String("commit", "", "commit label for the merged artifact")
	tenant := fs.String("tenant", "", "tenant label for fair scheduling and quotas (default: \"default\")")
	wait := fs.Bool("wait", false, "poll until the campaign is done")
	out := fs.String("o", "", "with -wait: write the merged artifact here (- for stdout)")
	poll := fs.Duration("poll", 500*time.Millisecond, "-wait poll interval")
	fs.Parse(args)
	if *server == "" {
		return fmt.Errorf("submit needs -server")
	}
	optLevel, err := compiler.ParseLevel(*level)
	if err != nil {
		return err
	}
	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		return err
	}
	cfg := experiment.Config{Scale: *scale, Level: optLevel, Noise: *noise, Engine: eng}
	if *stabilize {
		cfg.Stabilizer = &core.Options{Code: true, Stack: true, Heap: true, Rerandomize: true, Interval: 25_000}
	}
	names, err := pickNames(*benches, *cxx)
	if err != nil {
		return err
	}
	camp := campaign.Spec{
		Benchmarks: names,
		Config:     cfg,
		Runs:       *runs,
		Seed:       *seed,
		Commit:     *commit,
		Tenant:     *tenant,
	}
	if err := camp.Validate(); err != nil {
		return err
	}

	client := campaign.NewClient(*server)
	ctx, stopSig := experiment.NotifyShutdown(context.Background(), os.Stderr)
	defer stopSig()
	resp, err := client.Submit(ctx, camp)
	if err != nil {
		return err
	}
	// Machine-greppable: the CI smoke job asserts store_hits == cells on
	// resubmission; the trailing coordinator identity and fencing epoch let
	// chaos-test logs attribute the exchange across a failover.
	fmt.Printf("szfarm: submitted %s cells=%d store_hits=%d%s\n", resp.ID, resp.Cells, resp.StoreHits, observedSuffix(client))
	if !*wait {
		return nil
	}
	st, err := client.WaitDone(ctx, resp.ID, *poll)
	if err != nil {
		return err
	}
	if st.State != campaign.StateDone {
		return fmt.Errorf("campaign %s %s: %s", resp.ID, st.State, st.Error)
	}
	fmt.Printf("szfarm: campaign %s done (%d cells, %d store hits)%s\n", resp.ID, st.Cells, st.StoreHits, observedSuffix(client))
	if *out == "" {
		return nil
	}
	buf, err := client.Artifact(ctx, resp.ID)
	if err != nil {
		return err
	}
	if *out == "-" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "szfarm: wrote %s\n", *out)
	return nil
}

// observedSuffix formats the coordinator identity and fencing epoch the
// client last observed, for appending to human/grep output lines.
func observedSuffix(client *campaign.Client) string {
	holder, epoch := client.ObservedCoordinator()
	if holder == "" {
		return ""
	}
	return fmt.Sprintf(" coordinator=%s epoch=%d", holder, epoch)
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("szfarm status", flag.ExitOnError)
	server := fs.String("server", "", "coordinator base URL(s), comma-separated (required)")
	id := fs.String("id", "", "campaign id (default: summarize all)")
	jsonOut := fs.Bool("json", false, "print a JSON document: coordinator identity/epoch, scaling signals, campaigns")
	fs.Parse(args)
	if *server == "" {
		return fmt.Errorf("status needs -server")
	}
	client := campaign.NewClient(*server)
	ctx := context.Background()
	if *jsonOut {
		return statusJSON(ctx, client, *id)
	}
	if *id != "" {
		st, err := client.Status(ctx, *id)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s  %d/%d done (%d store hits, %d pending, %d leased, %d failed)\n",
			st.ID, st.State, st.Done, st.Cells, st.StoreHits, st.Pending, st.Leased, st.Failed)
		for _, cell := range st.Detail {
			line := fmt.Sprintf("  %-12s %-8s attempts=%d", cell.Bench, cell.State, cell.Attempts)
			if cell.StoreHit {
				line += " (store hit)"
			}
			if cell.Error != "" {
				line += "  err: " + cell.Error
			}
			fmt.Println(line)
		}
		if st.Error != "" {
			fmt.Printf("  error: %s\n", st.Error)
		}
		return nil
	}
	all, err := client.StatusAll(ctx)
	if err != nil {
		return err
	}
	if len(all) == 0 {
		fmt.Println("no campaigns")
		return nil
	}
	for _, st := range all {
		fmt.Printf("%s: %-7s %d/%d done (%d store hits)\n", st.ID, st.State, st.Done, st.Cells, st.StoreHits)
	}
	// The operator's queue view: overall load plus per-tenant depths, from
	// the same signals an autoscaler reads via -json.
	if rep, serr := client.Scaling(ctx); serr == nil {
		fmt.Printf("farm: backlog=%d inflight=%d workers=%d lease_utilization=%.2f completions_per_s=%.2f",
			rep.Backlog, rep.Inflight, rep.Workers, rep.LeaseUtilization, rep.CompletionsPerSecond)
		if rep.EstimatedDrainSeconds > 0 {
			fmt.Printf(" est_drain_s=%.1f", rep.EstimatedDrainSeconds)
		}
		fmt.Println()
		for _, ts := range rep.Tenants {
			fmt.Printf("  tenant %-12s weight=%d pending=%d inflight=%d campaigns=%d\n",
				ts.Tenant, ts.Weight, ts.Pending, ts.Inflight, ts.Campaigns)
		}
	}
	if suffix := observedSuffix(client); suffix != "" {
		fmt.Printf("szfarm:%s\n", suffix)
	}
	return nil
}

// statusJSON emits one machine-readable document: who answered (identity +
// fencing epoch), the autoscaling signals, and the campaign statuses — the
// `szfarm status -json` surface autoscalers and chaos-test logs consume.
func statusJSON(ctx context.Context, client *campaign.Client, id string) error {
	doc := struct {
		Coordinator campaign.CoordinatorInfo `json:"coordinator"`
		Scaling     campaign.ScalingReport   `json:"scaling"`
		Campaigns   []campaign.Status        `json:"campaigns"`
	}{}
	var err error
	if id != "" {
		var st campaign.Status
		if st, err = client.Status(ctx, id); err == nil {
			doc.Campaigns = []campaign.Status{st}
		}
	} else {
		doc.Campaigns, err = client.StatusAll(ctx)
	}
	if err != nil {
		return err
	}
	if doc.Scaling, err = client.Scaling(ctx); err != nil {
		return err
	}
	if doc.Coordinator, err = client.Coordinator(ctx); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func cmdEvents(args []string) error {
	fs := flag.NewFlagSet("szfarm events", flag.ExitOnError)
	server := fs.String("server", "", "coordinator base URL (required)")
	id := fs.String("id", "", "campaign id (required)")
	follow := fs.Bool("follow", false, "stream until the campaign is terminal")
	fs.Parse(args)
	if *server == "" || *id == "" {
		return fmt.Errorf("events needs -server and -id")
	}
	ctx, stop := experiment.NotifyShutdown(context.Background(), os.Stderr)
	defer stop()
	err := campaign.NewClient(*server).Events(ctx, *id, *follow, os.Stdout)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

func cmdArtifact(args []string) error {
	fs := flag.NewFlagSet("szfarm artifact", flag.ExitOnError)
	server := fs.String("server", "", "coordinator base URL (required)")
	id := fs.String("id", "", "campaign id (required)")
	out := fs.String("o", "-", "output path (- for stdout)")
	provenance := fs.Bool("provenance", false, "attach per-cell measurement pedigree (non-golden; szgate show prints it)")
	fs.Parse(args)
	if *server == "" || *id == "" {
		return fmt.Errorf("artifact needs -server and -id")
	}
	ctx, stop := experiment.NotifyShutdown(context.Background(), os.Stderr)
	defer stop()
	client := campaign.NewClient(*server)
	fetch := client.Artifact
	if *provenance {
		fetch = client.ArtifactProvenance
	}
	buf, err := fetch(ctx, *id)
	if err != nil {
		return err
	}
	if *out == "-" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "szfarm: wrote %s\n", *out)
	return nil
}

// cmdTimeline reconstructs a campaign's execution timeline. With -store it
// reads the complete durable event journal (<store>/campaigns/<id>.events.jsonl
// — every line across restarts and failovers); with -server it reads the
// coordinator's in-memory event ring, which only retains the most recent
// -event-cap lines. The trace is validated before it is written, so a file
// that lands on disk is guaranteed to load in Perfetto/chrome://tracing.
func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("szfarm timeline", flag.ExitOnError)
	server := fs.String("server", "", "coordinator base URL (reads the in-memory event ring)")
	storeDir := fs.String("store", "", "store directory (reads the complete durable journal)")
	id := fs.String("id", "", "campaign id (required)")
	out := fs.String("o", "", "write the Chrome trace JSON here (- for stdout)")
	report := fs.Bool("report", true, "print the critical-path/straggler report")
	jsonOut := fs.Bool("json", false, "print the report as JSON instead of text")
	fs.Parse(args)
	if *id == "" || (*server == "") == (*storeDir == "") {
		return fmt.Errorf("timeline needs -id and exactly one of -server or -store")
	}
	var journal []byte
	var err error
	if *storeDir != "" {
		st, serr := store.Open(*storeDir)
		if serr != nil {
			return serr
		}
		area, serr := st.StateArea("campaigns")
		if serr != nil {
			return serr
		}
		if journal, err = area.LoadLog(*id + ".events"); err != nil {
			return err
		}
		if journal == nil {
			return fmt.Errorf("no event journal for campaign %s in %s", *id, *storeDir)
		}
	} else {
		var buf bytes.Buffer
		ctx, stop := experiment.NotifyShutdown(context.Background(), os.Stderr)
		defer stop()
		if err = campaign.NewClient(*server).Events(ctx, *id, false, &buf); err != nil {
			return err
		}
		journal = buf.Bytes()
	}
	tl, err := campaign.BuildTimeline(journal, *id)
	if err != nil {
		return err
	}
	trace, err := tl.EncodeTrace()
	if err != nil {
		return err
	}
	if err := obs.ValidateTrace(trace); err != nil {
		return fmt.Errorf("reconstructed trace failed validation: %w", err)
	}
	switch *out {
	case "":
	case "-":
		if _, err := os.Stdout.Write(trace); err != nil {
			return err
		}
	default:
		if err := os.WriteFile(*out, trace, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "szfarm: wrote %s (%d trace events)\n", *out, len(tl.Events))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tl.Report)
	}
	if *report && *out != "-" {
		fmt.Print(tl.Report.Render())
	}
	return nil
}

func cmdGC(args []string) error {
	fs := flag.NewFlagSet("szfarm gc", flag.ExitOnError)
	storeDir := fs.String("store", "", "result store directory (required)")
	dryRun := fs.Bool("dry-run", false, "report what would be evicted without touching the store")
	force := fs.Bool("force", false, "run even when the store's coordination lease is held by a live coordinator")
	sample := fs.Int("sample", 10, "evicted-key sample size in the report (negative disables)")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	fs.Parse(args)
	if *storeDir == "" {
		return fmt.Errorf("gc needs -store")
	}
	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	rep, err := st.GC(store.GCOptions{DryRun: *dryRun, SampleKeys: *sample, Force: *force})
	if err != nil {
		var held *store.LeaseHeldError
		if errors.As(err, &held) {
			return fmt.Errorf("%w\n(use -force to override, or stop the coordinator first)", err)
		}
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	mode := ""
	if rep.DryRun {
		mode = " (dry run)"
	}
	fmt.Printf("szfarm: gc%s: scanned=%d kept=%d evicted=%d quarantined=%d bytes_reclaimed=%d\n",
		mode, rep.Scanned, rep.Kept, rep.Evicted, rep.Quarantined, rep.BytesReclaimed)
	for _, key := range rep.EvictedSample {
		fmt.Printf("  evicted: %s\n", key)
	}
	return nil
}

// pickNames resolves -bench/-cxx into benchmark names, rejecting unknown
// ones with the valid set.
func pickNames(names string, cxx bool) ([]string, error) {
	suite := spec.Suite()
	if cxx {
		suite = spec.FullSuite()
	}
	if names == "" {
		return campaign.SuiteNames(suite), nil
	}
	valid := map[string]bool{}
	for _, b := range suite {
		valid[b.Name] = true
	}
	var out []string
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if !valid[n] {
			return nil, fmt.Errorf("unknown benchmark %q; valid: %s", n, strings.Join(campaign.SuiteNames(suite), ", "))
		}
		out = append(out, n)
	}
	return out, nil
}
