package stats

import "math"

// ANOVAResult reports a one-way repeated-measures (within-subjects) ANOVA:
// the variance partition of §6.1.
type ANOVAResult struct {
	FValue float64
	P      float64

	DFTreatment float64
	DFError     float64

	SSSubjects  float64 // variance between benchmarks (excluded from the test)
	SSTreatment float64 // variance explained by the treatment
	SSError     float64 // residual (treatment × subject interaction)
}

// Significant reports rejection at level alpha.
func (r ANOVAResult) Significant(alpha float64) bool {
	return !math.IsNaN(r.P) && r.P < alpha
}

// RepeatedMeasuresANOVA runs a one-way within-subjects ANOVA.
//
// data[s][t] is the response of subject s (a benchmark) under treatment t
// (an optimization level); every subject must have every treatment. Using
// subjects as their own controls removes between-benchmark variance from the
// error term, exactly as "a one-way analysis of variance within subjects
// [ensures] execution times are only compared between runs of the same
// benchmark" (§6.1).
//
// When each cell holds several runs, pass the per-cell means (the classical
// unreplicated RM-ANOVA); the experiment harness does this.
func RepeatedMeasuresANOVA(data [][]float64) ANOVAResult {
	s := len(data)
	if s < 2 {
		return ANOVAResult{P: math.NaN(), FValue: math.NaN()}
	}
	t := len(data[0])
	if t < 2 {
		return ANOVAResult{P: math.NaN(), FValue: math.NaN()}
	}
	for _, row := range data {
		if len(row) != t {
			return ANOVAResult{P: math.NaN(), FValue: math.NaN()}
		}
	}
	fs, ft := float64(s), float64(t)

	grand := 0.0
	for _, row := range data {
		for _, v := range row {
			grand += v
		}
	}
	grand /= fs * ft

	// Marginal means.
	subjMean := make([]float64, s)
	treatMean := make([]float64, t)
	for i, row := range data {
		for j, v := range row {
			subjMean[i] += v
			treatMean[j] += v
		}
	}
	for i := range subjMean {
		subjMean[i] /= ft
	}
	for j := range treatMean {
		treatMean[j] /= fs
	}

	ssSubj, ssTreat, ssErr := 0.0, 0.0, 0.0
	for i := range subjMean {
		d := subjMean[i] - grand
		ssSubj += ft * d * d
	}
	for j := range treatMean {
		d := treatMean[j] - grand
		ssTreat += fs * d * d
	}
	for i, row := range data {
		for j, v := range row {
			r := v - subjMean[i] - treatMean[j] + grand
			ssErr += r * r
		}
	}

	dfT := ft - 1
	dfE := (fs - 1) * (ft - 1)
	msT := ssTreat / dfT
	msE := ssErr / dfE
	res := ANOVAResult{
		DFTreatment: dfT,
		DFError:     dfE,
		SSSubjects:  ssSubj,
		SSTreatment: ssTreat,
		SSError:     ssErr,
	}
	if msE == 0 {
		res.FValue = math.Inf(1)
		res.P = 0
		return res
	}
	res.FValue = msT / msE
	res.P = 1 - FCDF(res.FValue, dfT, dfE)
	return res
}
