// Package mem models the simulated 64-bit address space in which every
// program in this reproduction runs.
//
// The paper's layout effects are functions of concrete addresses, so the
// substrate needs a faithful notion of where things live: a static code
// segment populated by the linker, a globals segment, an mmap region used by
// the heap allocators and by STABILIZER's code heap (including a MAP_32BIT
// analogue for cheap jumps, §3.5), and a downward-growing stack whose base is
// displaced by the size of the environment block — the mechanism behind the
// Mytkowicz et al. environment-variable bias that the paper cites.
package mem

import (
	"repro/internal/trap"
)

// Addr is a simulated virtual address.
type Addr uint64

// PageSize is the simulated page size (4 KiB, as on the paper's test system).
const PageSize = 4096

// Canonical segment bases, loosely mirroring a classic x86-64 Linux layout.
const (
	CodeBase    Addr = 0x0000000000400000 // static text segment
	GlobalsBase Addr = 0x0000000000600000 // data/bss
	MmapBase    Addr = 0x0000000010000000 // bottom of the mmap region
	MmapLow32   Addr = 0x0000000040000000 // start of MAP_32BIT allocations
	MmapHigh    Addr = 0x00007f0000000000 // high mmap area (beyond 32-bit reach)
	StackTop    Addr = 0x00007fffffffe000 // top of stack before the env block
)

// Page returns the page number containing a.
func (a Addr) Page() uint64 { return uint64(a) / PageSize }

// AlignUp rounds a up to the next multiple of align (a power of two).
func (a Addr) AlignUp(align uint64) Addr {
	return Addr((uint64(a) + align - 1) &^ (align - 1))
}

// Region is a contiguous range of simulated memory.
type Region struct {
	Base Addr
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// MapFlag selects where Map places a region, mirroring mmap flags.
type MapFlag int

const (
	// MapAnywhere places the region at the current mmap cursor.
	MapAnywhere MapFlag = iota
	// MapLow32 places the region below 4 GiB so that 32-bit jump encodings
	// can reach it (MAP_32BIT). Low memory is finite; when exhausted, Map
	// falls back to high memory and the caller pays the slow-jump cost.
	MapLow32
	// MapHigh places the region in the high mmap area.
	MapHigh
)

// AddressSpace is a simulated process address space. It tracks segment
// cursors and mapped regions; it does not store data — programs in this
// reproduction carry their state in interpreter structures, and the machine
// model only needs addresses.
type AddressSpace struct {
	codeCursor  Addr
	globCursor  Addr
	mmapCursor  Addr
	low32Cursor Addr
	highCursor  Addr
	low32Limit  Addr
	stackBase   Addr // after env displacement; stack grows down from here
	mapped      []Region
	mappedBytes uint64
	mapLimit    uint64          // total Map budget in bytes; 0 = unlimited
	aslr        func(n int) int // random page-gap source; nil = deterministic
}

// SetASLR makes Map insert a random gap of up to 256 pages before each
// region, modeling mmap address randomization. STABILIZER's heap
// randomization enables this so that large allocations — which bypass the
// shuffling layer ("STABILIZER cannot break apart large heap allocations",
// §4) — still draw one random placement per run, as mmap ASLR gives them on
// a real system. intn must return a uniform value in [0, n).
func (as *AddressSpace) SetASLR(intn func(n int) int) { as.aslr = intn }

// NewAddressSpace returns an address space with an empty environment block.
func NewAddressSpace() *AddressSpace {
	return NewAddressSpaceEnv(0)
}

// NewAddressSpaceEnv returns an address space whose environment block
// occupies envSize bytes above the stack. As on a real system, the
// environment is copied onto the top of the stack at exec time, so its size
// displaces the stack base downward (rounded to 16-byte alignment). This is
// the knob the env-size bias experiment turns.
func NewAddressSpaceEnv(envSize uint64) *AddressSpace {
	displacement := (envSize + 15) &^ 15
	return &AddressSpace{
		codeCursor:  CodeBase,
		globCursor:  GlobalsBase,
		mmapCursor:  MmapBase,
		low32Cursor: MmapLow32,
		highCursor:  MmapHigh,
		low32Limit:  Addr(1) << 32,
		stackBase:   StackTop - Addr(displacement),
	}
}

// StackBase returns the address the stack grows down from.
func (as *AddressSpace) StackBase() Addr { return as.stackBase }

// PlaceCode reserves size bytes in the static code segment with the given
// alignment and returns the base address. The static linker uses this to lay
// out functions in link order.
func (as *AddressSpace) PlaceCode(size, align uint64) Addr {
	base := as.codeCursor.AlignUp(align)
	as.codeCursor = base + Addr(size)
	return base
}

// PlaceGlobal reserves size bytes in the globals segment.
func (as *AddressSpace) PlaceGlobal(size, align uint64) Addr {
	base := as.globCursor.AlignUp(align)
	as.globCursor = base + Addr(size)
	return base
}

// Map reserves a region of the mmap area. size is rounded up to whole pages.
// With MapLow32, low memory is used until exhausted, then the request
// silently falls back to high memory (the caller can detect this from the
// returned address; see Below4G).
//
// Map fails with a typed *trap.TrapError instead of panicking: an unknown
// placement flag is an invalid-map fault, and exceeding the optional
// SetMapLimit budget is an out-of-memory fault. Both surface through the
// allocators as structured program faults the interpreter can report.
func (as *AddressSpace) Map(size uint64, flag MapFlag) (Region, error) {
	switch flag {
	case MapAnywhere, MapLow32, MapHigh:
	default:
		return Region{}, trap.New(trap.InvalidMap, "mem: unknown map flag %d", flag)
	}
	size = (size + PageSize - 1) &^ (PageSize - 1)
	if as.mapLimit != 0 && as.mappedBytes+size > as.mapLimit {
		return Region{}, trap.New(trap.OutOfMemory,
			"mem: map of %d bytes exceeds the %d-byte budget (%d already mapped)",
			size, as.mapLimit, as.mappedBytes)
	}
	if as.aslr != nil {
		gap := Addr(as.aslr(256)) * PageSize
		switch flag {
		case MapAnywhere:
			as.mmapCursor += gap
		case MapLow32:
			as.low32Cursor += gap
		case MapHigh:
			as.highCursor += gap
		}
	}
	var base Addr
	switch flag {
	case MapAnywhere:
		base = as.mmapCursor
		as.mmapCursor += Addr(size)
	case MapLow32:
		if as.low32Cursor+Addr(size) <= as.low32Limit {
			base = as.low32Cursor
			as.low32Cursor += Addr(size)
		} else {
			base = as.highCursor
			as.highCursor += Addr(size)
		}
	case MapHigh:
		base = as.highCursor
		as.highCursor += Addr(size)
	}
	r := Region{Base: base, Size: size}
	as.mapped = append(as.mapped, r)
	as.mappedBytes += size
	return r, nil
}

// SetMapLimit caps the total bytes Map may hand out; further requests fail
// with an out-of-memory trap. 0 (the default) removes the cap. The oracle's
// allocator-exhaustion tests use this to make OOM reachable at small sizes.
func (as *AddressSpace) SetMapLimit(bytes uint64) { as.mapLimit = bytes }

// SetLow32Limit constrains the MAP_32BIT area, for tests that need to force
// exhaustion of low memory.
func (as *AddressSpace) SetLow32Limit(limit Addr) { as.low32Limit = limit }

// Mapped returns the regions handed out by Map, in allocation order.
func (as *AddressSpace) Mapped() []Region { return as.mapped }

// Below4G reports whether a is reachable with a 32-bit absolute encoding.
func Below4G(a Addr) bool { return a < 1<<32 }
