package machine

import (
	"testing"

	"repro/internal/mem"
)

func TestBranchPredictorLearnsLoop(t *testing.T) {
	bp := NewBranchPredictor(4096, 1024)
	pc := mem.Addr(0x400100)
	// A loop branch taken 100 times then not taken: a bimodal predictor
	// should mispredict at most twice (initial training + loop exit).
	miss := 0
	for i := 0; i < 100; i++ {
		if bp.Conditional(pc, true) {
			miss++
		}
	}
	if bp.Conditional(pc, false) {
		miss++
	}
	if miss > 2 {
		t.Fatalf("loop branch mispredicted %d times", miss)
	}
}

func TestBranchPredictorAliasing(t *testing.T) {
	bp := NewBranchPredictor(16, 16) // tiny tables to force aliasing
	// Two branches whose indices collide and with opposite biases thrash
	// each other's counter.
	a := mem.Addr(0x1000)
	b := a + 16*4 // same counter index: (pc>>2) mod 16
	if (uint64(a)>>2)&15 != (uint64(b)>>2)&15 {
		t.Fatal("test addresses do not alias")
	}
	for i := 0; i < 50; i++ {
		bp.Conditional(a, true)
		bp.Conditional(b, false)
	}
	aliased := bp.DirectionMispredicts
	// Now the same workload with non-aliasing addresses.
	bp2 := NewBranchPredictor(16, 16)
	c := mem.Addr(0x1004) // different index
	for i := 0; i < 50; i++ {
		bp2.Conditional(a, true)
		bp2.Conditional(c, false)
	}
	if aliased <= bp2.DirectionMispredicts {
		t.Fatalf("aliasing (%d mispredicts) not worse than non-aliasing (%d)",
			aliased, bp2.DirectionMispredicts)
	}
}

func TestBTBTargetPrediction(t *testing.T) {
	bp := NewBranchPredictor(16, 16)
	pc, target := mem.Addr(0x2000), mem.Addr(0x400000)
	if !bp.Indirect(pc, target) {
		t.Fatal("cold BTB lookup predicted correctly")
	}
	if bp.Indirect(pc, target) {
		t.Fatal("warm BTB lookup mispredicted")
	}
	if !bp.Indirect(pc, target+64) {
		t.Fatal("changed target not mispredicted")
	}
}

func TestMachineRetire(t *testing.T) {
	m := New(DefaultConfig())
	m.Retire(100)
	if m.Cycles != 100 || m.Instructions != 100 {
		t.Fatalf("cycles=%d instrs=%d after retiring 100", m.Cycles, m.Instructions)
	}
}

func TestMachineDataMissCosts(t *testing.T) {
	m := New(DefaultConfig())
	costs := m.Costs
	m.Data(0x10000000, 8)
	// Cold access: TLB miss + L1+L2+L3 misses.
	want := costs.TLBMiss + costs.L1Miss + costs.L2Miss + costs.L3Miss
	if m.Cycles != want {
		t.Fatalf("cold data access cost %d, want %d", m.Cycles, want)
	}
	m.Cycles = 0
	m.Data(0x10000000, 8)
	if m.Cycles != 0 {
		t.Fatalf("warm data access cost %d, want 0", m.Cycles)
	}
}

func TestMachineDataSpansLines(t *testing.T) {
	m := New(DefaultConfig())
	m.Data(0x1003c, 8) // crosses a 64-byte boundary
	if m.L1D.Misses != 2 {
		t.Fatalf("line-crossing access missed %d lines, want 2", m.L1D.Misses)
	}
}

func TestMachineFetchUsesICache(t *testing.T) {
	m := New(DefaultConfig())
	m.Fetch(0x400000, 32)
	if m.L1I.Misses != 1 || m.L1D.Misses != 0 {
		t.Fatalf("fetch went to wrong cache: L1I misses=%d L1D misses=%d",
			m.L1I.Misses, m.L1D.Misses)
	}
}

func TestMachineL2SharedBetweenCodeAndData(t *testing.T) {
	m := New(DefaultConfig())
	m.Fetch(0x400000, 8)
	m.Cycles = 0
	// A data access to the same line: misses L1D but hits the shared L2.
	m.Data(0x400000, 8)
	want := m.Costs.L1Miss // TLB warm, L2 hit
	if m.Cycles != want {
		t.Fatalf("shared-L2 access cost %d, want %d", m.Cycles, want)
	}
}

func TestMachineIndirectFarJumpCost(t *testing.T) {
	m := New(DefaultConfig())
	near := mem.Addr(0x40000000)
	far := mem.Addr(0x7f0000000000)
	m.IndirectBranch(0x1000, near)
	nearCost := m.Cycles
	m.Cycles = 0
	m.IndirectBranch(0x2000, far)
	if m.Cycles != nearCost+m.Costs.SlowJump {
		t.Fatalf("far jump cost %d, want near cost %d plus slow-jump %d",
			m.Cycles, nearCost, m.Costs.SlowJump)
	}
}

func TestMachineSecondsConversion(t *testing.T) {
	m := New(DefaultConfig())
	m.Stall(3_200_000_000)
	if s := m.Seconds(); s < 0.999 || s > 1.001 {
		t.Fatalf("3.2e9 cycles = %v seconds, want 1.0", s)
	}
}

func TestMachineResetCounters(t *testing.T) {
	m := New(DefaultConfig())
	m.Data(0x1000, 8)
	m.Retire(10)
	m.CondBranch(0x400000, true)
	m.ResetCounters()
	if m.Cycles != 0 || m.Instructions != 0 || m.L1D.Misses != 0 || m.BP.Lookups != 0 {
		t.Fatal("counters survived reset")
	}
	// Learned state survives: the line is still resident.
	if !m.L1D.Probe(0x1000) {
		t.Fatal("reset flushed cache contents")
	}
}

func TestLayoutLuckEndToEnd(t *testing.T) {
	// The central premise: the same access pattern with different layouts
	// costs different amounts. Two hot arrays placed set-aligned conflict;
	// offset by one line they coexist.
	run := func(b mem.Addr) uint64 {
		m := New(DefaultConfig())
		a := mem.Addr(0x10000000)
		for i := 0; i < 10000; i++ {
			m.Data(a, 8)
			m.Data(b, 8)
		}
		return m.Cycles
	}
	l1Span := mem.Addr(32 << 10) // addresses 32 KiB apart share an L1D set
	conflictFree := run(0x10000000 + 64)
	// 8-way L1D: need 8 extra conflicting lines to overflow a set; a single
	// pair won't thrash. Use many aliasing addresses instead.
	runMany := func(stride mem.Addr) uint64 {
		m := New(DefaultConfig())
		for i := 0; i < 2000; i++ {
			for j := 0; j < 10; j++ {
				m.Data(0x10000000+mem.Addr(j)*stride, 8)
			}
		}
		return m.Cycles
	}
	thrash := runMany(l1Span)
	spread := runMany(64)
	if thrash <= spread {
		t.Fatalf("set-aliased layout (%d cycles) not slower than spread layout (%d)",
			thrash, spread)
	}
	_ = conflictFree
}

func TestCore2Config(t *testing.T) {
	m := New(Core2Config())
	// The shared last-level cache's index bits must span 6..17: 4 MiB,
	// 16 ways, 64 B lines -> 4096 sets -> index bits 6..17 inclusive.
	if m.L3.Sets() != 4096 {
		t.Fatalf("Core 2 shared cache has %d sets, want 4096", m.L3.Sets())
	}
	// Sanity: runs and charges cycles.
	m.Retire(10)
	m.Data(0x1000, 8)
	if m.Cycles == 0 {
		t.Fatal("no cycles charged")
	}
	if m.ClockHz != 2.4e9 {
		t.Fatal("wrong clock")
	}
}
