package experiment

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// svgCanvas accumulates SVG elements with a y-axis pointing up in data
// space, mapped onto a fixed-size canvas with margins.
type svgCanvas struct {
	w, h          float64
	marginL       float64
	marginB       float64
	marginT       float64
	marginR       float64
	xmin, xmax    float64
	ymin, ymax    float64
	body          strings.Builder
	title, xl, yl string
}

func newSVG(title, xlabel, ylabel string, xmin, xmax, ymin, ymax float64) *svgCanvas {
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return &svgCanvas{
		w: 720, h: 480, marginL: 70, marginB: 60, marginT: 40, marginR: 20,
		xmin: xmin, xmax: xmax, ymin: ymin, ymax: ymax,
		title: title, xl: xlabel, yl: ylabel,
	}
}

func (c *svgCanvas) x(v float64) float64 {
	return c.marginL + (v-c.xmin)/(c.xmax-c.xmin)*(c.w-c.marginL-c.marginR)
}

func (c *svgCanvas) y(v float64) float64 {
	return c.h - c.marginB - (v-c.ymin)/(c.ymax-c.ymin)*(c.h-c.marginB-c.marginT)
}

func (c *svgCanvas) circle(x, y, r float64, fill string) {
	fmt.Fprintf(&c.body, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n",
		c.x(x), c.y(y), r, fill)
}

func (c *svgCanvas) line(x1, y1, x2, y2 float64, stroke string, width float64, dash string) {
	d := ""
	if dash != "" {
		d = fmt.Sprintf(` stroke-dasharray="%s"`, dash)
	}
	fmt.Fprintf(&c.body, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"%s/>`+"\n",
		c.x(x1), c.y(y1), c.x(x2), c.y(y2), stroke, width, d)
}

func (c *svgCanvas) rect(x, y, wData, hData float64, fill string) {
	px, py := c.x(x), c.y(y+hData)
	pw := c.x(x+wData) - c.x(x)
	ph := c.y(y) - c.y(y+hData)
	fmt.Fprintf(&c.body, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
		px, py, pw, ph, fill)
}

func (c *svgCanvas) textAt(px, py float64, size float64, anchor, s string) {
	fmt.Fprintf(&c.body, `<text x="%.1f" y="%.1f" font-size="%.0f" font-family="sans-serif" text-anchor="%s">%s</text>`+"\n",
		px, py, size, anchor, svgEscape(s))
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// render assembles the document with axes and labels.
func (c *svgCanvas) render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		c.w, c.h, c.w, c.h)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		c.marginL, c.h-c.marginB, c.w-c.marginR, c.h-c.marginB)
	fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		c.marginL, c.marginT, c.marginL, c.h-c.marginB)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := c.xmin + (c.xmax-c.xmin)*float64(i)/4
		fy := c.ymin + (c.ymax-c.ymin)*float64(i)/4
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
			c.x(fx), c.h-c.marginB+16, trimNum(fx))
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif" text-anchor="end">%s</text>`+"\n",
			c.marginL-6, c.y(fy)+4, trimNum(fy))
	}
	// Labels and title.
	fmt.Fprintf(&sb, `<text x="%.1f" y="20" font-size="15" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
		c.w/2, svgEscape(c.title))
	fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="12" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
		c.w/2, c.h-14, svgEscape(c.xl))
	fmt.Fprintf(&sb, `<text x="16" y="%.1f" font-size="12" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		c.h/2, c.h/2, svgEscape(c.yl))
	sb.WriteString(c.body.String())
	sb.WriteString("</svg>\n")
	return sb.String()
}

func trimNum(v float64) string {
	if math.Abs(v) >= 100 || v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func writeSVGFile(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".svg"), []byte(content), 0o644)
}

// WriteSVG renders each benchmark's Figure 5 QQ panel into dir.
func (r *NormalityResult) WriteSVG(dir string) error {
	for _, row := range r.Rows {
		lo, hi := -3.0, 3.0
		for _, p := range row.QQOnce {
			lo = math.Min(lo, math.Min(p.Theoretical, p.Observed))
			hi = math.Max(hi, math.Max(p.Theoretical, p.Observed))
		}
		for _, p := range row.QQRerand {
			lo = math.Min(lo, p.Observed)
			hi = math.Max(hi, p.Observed)
		}
		c := newSVG("Figure 5: "+row.Benchmark+" (QQ, normalized)",
			"normal quantile", "observed quantile", lo, hi, lo, hi)
		c.line(lo, lo, hi, hi, "#999999", 1, "4,3")
		for _, p := range row.QQOnce {
			c.circle(p.Theoretical, p.Observed, 3, "#d62728")
		}
		for _, p := range row.QQRerand {
			c.circle(p.Theoretical, p.Observed, 3, "#1f77b4")
		}
		c.textAt(c.w-160, 50, 12, "start", "red: one-time")
		c.textAt(c.w-160, 66, 12, "start", "blue: re-randomized")
		if err := writeSVGFile(dir, "fig5_qq_"+row.Benchmark, c.render()); err != nil {
			return err
		}
	}
	return nil
}

// WriteSVG renders Figure 6 as horizontal bars into dir.
func (r *OverheadResult) WriteSVG(dir string) error {
	last := len(r.Configs) - 1
	rows := append([]OverheadRow(nil), r.Rows...)
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].Overhead[last] < rows[j-1].Overhead[last]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	maxV := 0.0
	for _, row := range rows {
		maxV = math.Max(maxV, row.Overhead[last])
	}
	c := newSVG("Figure 6: overhead of "+r.Configs[last]+" vs randomized link order",
		"overhead", "", 0, maxV*1.1, 0, float64(len(rows)))
	for i, row := range rows {
		y := float64(len(rows)-1-i) + 0.2
		c.rect(0, y, row.Overhead[last], 0.6, "#1f77b4")
		c.textAt(c.marginL-4, c.y(y+0.3)+4, 11, "end", row.Benchmark)
		c.textAt(c.x(row.Overhead[last])+4, c.y(y+0.3)+4, 11, "start",
			fmt.Sprintf("%+.1f%%", row.Overhead[last]*100))
	}
	return writeSVGFile(dir, "fig6_overhead", c.render())
}

// WriteSVG renders Figure 7 into dir: paired bars per benchmark around the
// 1.0 line.
func (r *SpeedupResult) WriteSVG(dir string) error {
	lo, hi := 0.95, 1.05
	for _, row := range r.Rows {
		lo = math.Min(lo, math.Min(row.SpeedupO2, row.SpeedupO3))
		hi = math.Max(hi, math.Max(row.SpeedupO2, row.SpeedupO3))
	}
	c := newSVG("Figure 7: speedup under STABILIZER", "", "speedup",
		0, float64(len(r.Rows)), lo-0.02, hi+0.02)
	c.line(0, 1, float64(len(r.Rows)), 1, "#999999", 1, "4,3")
	for i, row := range r.Rows {
		x := float64(i)
		colO2, colO3 := "#bbbbbb", "#dddddd"
		if row.SignificantO2 {
			colO2 = "#1f77b4"
		}
		if row.SignificantO3 {
			colO3 = "#d62728"
		}
		c.rect(x+0.12, math.Min(1, row.SpeedupO2), 0.32, math.Abs(row.SpeedupO2-1), colO2)
		c.rect(x+0.54, math.Min(1, row.SpeedupO3), 0.32, math.Abs(row.SpeedupO3-1), colO3)
		px := c.x(x + 0.5)
		fmt.Fprintf(&c.body,
			`<text x="%.1f" y="%.1f" font-size="10" font-family="sans-serif" text-anchor="end" transform="rotate(-60 %.1f %.1f)">%s</text>`+"\n",
			px, c.h-c.marginB+14, px, c.h-c.marginB+14, svgEscape(row.Benchmark))
	}
	c.textAt(c.w-220, 50, 12, "start", "blue: O2/O1 (filled = significant)")
	c.textAt(c.w-220, 66, 12, "start", "red: O3/O2 (filled = significant)")
	return writeSVGFile(dir, "fig7_speedup", c.render())
}

// WriteSVG renders the interval ablation as a CV-vs-periods line chart.
func (r *IntervalAblation) WriteSVG(dir string) error {
	maxP, maxCV := 1.0, 0.0
	for _, row := range r.Rows {
		maxP = math.Max(maxP, row.PeriodsPerRun)
		maxCV = math.Max(maxCV, row.CV)
	}
	c := newSVG("Re-randomization periods vs run-time variation ("+r.Benchmark+")",
		"randomization periods per run (log2 spacing)", "coefficient of variation",
		0, math.Log2(maxP)+0.5, 0, maxCV*1.1)
	var prevX, prevY float64
	for i, row := range r.Rows {
		x := 0.0
		if row.PeriodsPerRun > 1 {
			x = math.Log2(row.PeriodsPerRun)
		}
		c.circle(x, row.CV, 4, "#1f77b4")
		if i > 0 {
			c.line(prevX, prevY, x, row.CV, "#1f77b4", 1.5, "")
		}
		prevX, prevY = x, row.CV
	}
	return writeSVGFile(dir, "e9_interval", c.render())
}
